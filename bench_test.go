// Package goldilocks_bench holds the top-level benchmark harness: one
// benchmark per evaluation artifact of the paper (Tables 1-3, Figures
// 6-7), the ablation benchmarks for the design choices called out in
// DESIGN.md, and detector microbenchmarks.
//
// Run with: go test -bench=. -benchmem
//
// The Table benchmarks time test-scale workload instances (full-scale
// numbers are produced by cmd/racebench, which runs each configuration
// once rather than b.N times).
package goldilocks_bench

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"goldilocks/internal/bench"
	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/basic"
	"goldilocks/internal/detectors/eraser"
	"goldilocks/internal/event"
	"goldilocks/internal/explore"
	"goldilocks/internal/hb"
	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
	"goldilocks/internal/obs"
	"goldilocks/internal/scenarios"
	"goldilocks/internal/tracegen"
)

// BenchmarkTable1 times every workload in every Table 1 configuration.
func BenchmarkTable1(b *testing.B) {
	for _, w := range bench.Table1Workloads() {
		for _, mode := range []bench.Mode{bench.Uninstrumented, bench.NoStatic, bench.WithChord, bench.WithRcc} {
			b.Run(w.Name+"/"+string(mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m, err := bench.Run(w, bench.RunOptions{Mode: mode})
					if err != nil {
						b.Fatal(err)
					}
					if m.Races != 0 {
						b.Fatalf("races = %d", m.Races)
					}
				}
			})
		}
	}
}

// BenchmarkTable2 times the coverage-measurement runs of Table 2 (the
// deterministic instrumented executions under each static analysis).
func BenchmarkTable2(b *testing.B) {
	for _, w := range bench.Table1Workloads() {
		for _, mode := range []bench.Mode{bench.WithChord, bench.WithRcc} {
			b.Run(w.Name+"/"+string(mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bench.Run(w, bench.RunOptions{Mode: mode, Deterministic: true, Seed: 1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3 times the transactional Multiset against the
// uninstrumented baseline for the paper's thread counts (test scale).
func BenchmarkTable3(b *testing.B) {
	for _, threads := range []int{5, 10, 20, 50} {
		for _, mode := range []bench.Mode{bench.Uninstrumented, bench.NoStatic} {
			b.Run(fmt.Sprintf("threads=%d/%s", threads, mode), func(b *testing.B) {
				w := bench.MultisetWorkload(threads, 6)
				for i := 0; i < b.N; i++ {
					m, err := bench.Run(w, bench.RunOptions{Mode: mode})
					if err != nil {
						b.Fatal(err)
					}
					if m.Races != 0 {
						b.Fatalf("races = %d", m.Races)
					}
				}
			})
		}
	}
}

// BenchmarkFigure6 and BenchmarkFigure7 time the spec-engine lockset
// evolution replays behind the two figures.
func BenchmarkFigure6(b *testing.B) {
	tr := scenarios.Ownership().Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rs := detect.RunTrace(core.NewSpecEngine(), tr); len(rs) != 0 {
			b.Fatal("race on Example 2")
		}
	}
}

// BenchmarkFigure7 replays the Example 3 transaction trace.
func BenchmarkFigure7(b *testing.B) {
	tr := scenarios.TxList().Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rs := detect.RunTrace(core.NewSpecEngine(), tr); len(rs) != 0 {
			b.Fatal("race on Example 3")
		}
	}
}

// traceCorpus builds a reusable set of random traces for detector
// microbenchmarks.
func traceCorpus(n int, cfg tracegen.Config) []*event.Trace {
	out := make([]*event.Trace, n)
	for i := range out {
		out[i] = tracegen.FromSeedConfig(int64(i), cfg)
	}
	return out
}

// BenchmarkDetectorComparison replays identical traces through
// Goldilocks (optimized and spec), the vector-clock detector, and the
// Eraser-style baselines — the cost-per-action comparison behind the
// paper's "precision does not cost performance" claim.
func BenchmarkDetectorComparison(b *testing.B) {
	cfg := tracegen.Default()
	cfg.Steps = 400
	traces := traceCorpus(20, cfg)
	actions := 0
	for _, tr := range traces {
		actions += tr.Len()
	}
	detectors := map[string]func() detect.Detector{
		"goldilocks":      func() detect.Detector { return core.New() },
		"goldilocks-spec": func() detect.Detector { return core.NewSpecEngine() },
		"vectorclock":     func() detect.Detector { return hb.NewDetector() },
		"eraser":          func() detect.Detector { return eraser.New() },
		"basic-lockset":   func() detect.Detector { return basic.New() },
	}
	for name, mk := range detectors {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, tr := range traces {
					detect.RunTrace(mk(), tr)
				}
			}
			b.ReportMetric(float64(actions), "actions/op")
		})
	}
}

// BenchmarkAblationShortCircuits measures what the three short-circuit
// checks and the transactions check buy on a lock-heavy trace mix.
func BenchmarkAblationShortCircuits(b *testing.B) {
	cfg := tracegen.Default()
	cfg.Steps = 400
	cfg.SyncBias = 0.6
	traces := traceCorpus(20, cfg)
	configs := map[string]func(*core.Options){
		"all":    func(o *core.Options) {},
		"noSC1":  func(o *core.Options) { o.SC1 = false },
		"noSC2":  func(o *core.Options) { o.SC2 = false },
		"noSC3":  func(o *core.Options) { o.SC3 = false },
		"noXact": func(o *core.Options) { o.XactSC = false },
		"none": func(o *core.Options) {
			o.SC1, o.SC2, o.SC3, o.XactSC = false, false, false, false
		},
	}
	for name, tweak := range configs {
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			tweak(&opts)
			b.ReportAllocs()
			var walked uint64
			for i := 0; i < b.N; i++ {
				for _, tr := range traces {
					e := core.NewEngine(opts)
					detect.RunTrace(e, tr)
					walked += e.Stats().WalkCells
				}
			}
			b.ReportMetric(float64(walked)/float64(b.N), "cells-walked/op")
		})
	}
}

// BenchmarkAblationLazyGC measures the event-list garbage collector and
// partially-eager evaluation under a long-running sync-heavy load.
func BenchmarkAblationLazyGC(b *testing.B) {
	mkTrace := func() *event.Trace {
		bld := event.NewBuilder()
		bld.Fork(1, 2)
		bld.Write(1, 10, 0) // early access pins the list without eager advance
		for i := 0; i < 4000; i++ {
			bld.Acquire(1, 20)
			bld.Release(1, 20)
			if i%100 == 99 {
				bld.Acquire(2, 20)
				bld.Read(2, 10, 0)
				bld.Release(2, 20)
			}
		}
		return bld.Trace()
	}
	tr := mkTrace()
	configs := map[string]core.Options{}
	eager := core.DefaultOptions()
	eager.GCThreshold = 512
	eager.GCTrimFraction = 0.25
	configs["gc+eager"] = eager
	noEager := eager
	noEager.PartialEager = false
	configs["gc-noeager"] = noEager
	noGC := core.DefaultOptions()
	noGC.GCThreshold = 0
	configs["nogc"] = noGC
	for name, opts := range configs {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var retained int
			for i := 0; i < b.N; i++ {
				e := core.NewEngine(opts)
				if rs := detect.RunTrace(e, tr); len(rs) != 0 {
					b.Fatal("unexpected race")
				}
				retained = e.ListLen()
			}
			b.ReportMetric(float64(retained), "cells-retained")
		})
	}
}

// BenchmarkAblationTxnAware compares treating transactions as
// high-level commit actions against exposing their lock-based
// implementation to the detector (the paper reports the latter costs
// more than 10x on Multiset).
func BenchmarkAblationTxnAware(b *testing.B) {
	cases := map[string]bench.Workload{
		"commit-aware":   bench.MultisetWorkload(5, 6),
		"lock-oblivious": bench.MultisetLockWorkload(5, 6),
	}
	for name, w := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := bench.Run(w, bench.RunOptions{Mode: bench.NoStatic})
				if err != nil {
					b.Fatal(err)
				}
				if m.Races != 0 {
					b.Fatalf("races = %d", m.Races)
				}
			}
		})
	}
}

// BenchmarkEngineHotPaths microbenchmarks the per-access cost of the
// optimized engine in the regimes that matter: same-thread re-access
// (SC1), lock-disciplined sharing (SC2), and cross-thread handoff (full
// lockset computation).
func BenchmarkEngineHotPaths(b *testing.B) {
	b.Run("sameThread", func(b *testing.B) {
		e := core.New()
		e.Write(1, 10, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Read(1, 10, 0)
		}
	})
	b.Run("lockDiscipline", func(b *testing.B) {
		e := core.New()
		e.Sync(event.Fork(1, 2))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := event.Tid(1 + i%2)
			e.Sync(event.Acquire(t, 20))
			e.Write(t, 10, 0)
			e.Sync(event.Release(t, 20))
		}
	})
	b.Run("volatileHandoff", func(b *testing.B) {
		e := core.New()
		e.Sync(event.Fork(1, 2))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := event.Tid(1 + i%2)
			e.Write(t, 10, 0)
			e.Sync(event.VolatileWrite(t, 1, 0))
			u := event.Tid(1 + (i+1)%2)
			e.Sync(event.VolatileRead(u, 1, 0))
		}
	})
}

// BenchmarkParallelAccess measures whether disjoint-variable accesses
// really proceed in parallel (the KL(o,d) claim of Section 5): each
// worker hammers its own variable under its own lock, so the only
// shared state is the engine's own concurrency skeleton (sharded
// variable table, lock-free tail snapshots, per-thread lock records).
// Throughput should rise near-linearly with GOMAXPROCS; before the
// de-serialization refactor it was flat. The "shared" variant is the
// opposite extreme — every worker on one variable — and is expected to
// serialize on that variable's own mutex.
func BenchmarkParallelAccess(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("disjoint/procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			e := core.New()
			var nextWorker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := nextWorker.Add(1)
				t := event.Tid(id)
				obj := event.Addr(1000 + id)
				i := 0
				for pb.Next() {
					e.Write(t, obj, event.FieldID(i%4))
					e.Read(t, obj, event.FieldID(i%4))
					i++
				}
			})
		})
		b.Run(fmt.Sprintf("shared/procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			e := core.New()
			var nextWorker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				t := event.Tid(nextWorker.Add(1))
				for pb.Next() {
					e.Read(t, 42, 0) // reads only: no cross-reader checks
				}
			})
		})
	}
}

// BenchmarkTelemetry prices the observability layer on the lock-
// disciplined hot path. "disabled" (no Telemetry attached) must match
// the numbers BenchmarkEngineHotPaths/lockDiscipline reported before
// the layer existed — with telemetry off, every instrumentation site
// reduces to one nil check and allocates nothing. "enabled" adds the
// atomic counter increments and the walk-depth histogram; "traced"
// additionally records lockset transitions for the accessed variable
// (the worst case: filter match on every access).
func BenchmarkTelemetry(b *testing.B) {
	run := func(b *testing.B, tel *obs.Telemetry) {
		opts := core.DefaultOptions()
		opts.Telemetry = tel
		e := core.NewEngine(opts)
		e.Sync(event.Fork(1, 2))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := event.Tid(1 + i%2)
			e.Sync(event.Acquire(t, 20))
			e.Write(t, 10, 0)
			e.Sync(event.Release(t, 20))
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, obs.NewTelemetry()) })
	b.Run("traced", func(b *testing.B) {
		tel := obs.NewTelemetry()
		tel.Trace.Enable("o10.f0")
		run(b, tel)
	})
}

// BenchmarkTracer prices the pipeline tracer the same way: "disabled"
// (a nil *obs.Tracer, exactly what a daemon built with -trace-sample 0
// carries) must reduce every instrumentation site to one nil check with
// zero allocations, so the ingest hot path is unchanged when tracing is
// off. "enabled" pays the sampling counter on every record plus a
// histogram observe on the sampled ones.
func BenchmarkTracer(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var tr *obs.Tracer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tr.Sample() {
				tr.Observe(obs.StageApply, time.Microsecond)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tr := obs.NewTracer(1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tr.Sample() {
				tr.Observe(obs.StageApply, time.Microsecond)
			}
		}
	})
}

// BenchmarkContention mixes the regimes: mostly-disjoint accesses with
// a configurable fraction of accesses to one shared lock-protected
// variable, plus the acquire/release traffic that keeps the
// synchronization event list (the one intentionally serialized
// structure) in the loop.
func BenchmarkContention(b *testing.B) {
	for _, procs := range []int{1, 4, 8} {
		for _, sharedPct := range []int{0, 10, 50} {
			b.Run(fmt.Sprintf("procs=%d/shared=%d%%", procs, sharedPct), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				e := core.New()
				var nextWorker atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					id := nextWorker.Add(1)
					t := event.Tid(id)
					own := event.Addr(2000 + id)
					i := 0
					for pb.Next() {
						if sharedPct > 0 && i%100 < sharedPct {
							e.Sync(event.Acquire(t, 77))
							e.Write(t, 99, 0)
							e.Sync(event.Release(t, 77))
						} else {
							e.Write(t, own, 0)
						}
						i++
					}
				})
			})
		}
	}
}

// BenchmarkScheduleExploration measures systematic exploration
// throughput (schedules per op) on a small always-racy program.
func BenchmarkScheduleExploration(b *testing.B) {
	src := `
class D { int v; }
class Main {
	D d;
	void racer() { d.v = 1; }
	void main() {
		d = new D();
		thread t = spawn this.racer();
		d.v = 2;
		join(t);
	}
}
`
	prog := mj.MustCheck(src)
	_ = prog
	body := func(c jrt.Chooser) int {
		p := mj.MustCheck(src)
		rt := jrt.NewRuntime(jrt.Config{Detector: core.New(), Policy: jrt.Log, Mode: jrt.Deterministic, Chooser: c})
		interp, err := mj.NewInterp(p, mj.InterpConfig{Runtime: rt})
		if err != nil {
			b.Fatal(err)
		}
		races, err := interp.Run()
		if err != nil {
			b.Fatal(err)
		}
		return len(races)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := explore.Schedules(explore.Options{MaxSchedules: 50}, body, nil)
		if res.Racy == 0 {
			b.Fatal("no races found")
		}
	}
}

// BenchmarkRecordReplay measures the recording detector's overhead and
// the offline replay cost on a workload run.
func BenchmarkRecordReplay(b *testing.B) {
	w := bench.Table1Workloads()[5] // philo: sync-heavy, small
	for i := 0; i < b.N; i++ {
		prog := mj.MustCheck(w.Instantiate(false))
		rec := jrt.Record(core.New())
		rt := jrt.NewRuntime(jrt.Config{Detector: rec, Policy: jrt.Log, Mode: jrt.Deterministic, Seed: 1})
		interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := interp.Run(); err != nil {
			b.Fatal(err)
		}
		tr := rec.Trace()
		if rs := detect.RunTrace(core.New(), tr); len(rs) != 0 {
			b.Fatal("replay raced")
		}
	}
}
