#!/usr/bin/env bash
# Chaos drill for the clustered detection service (docs/SERVICE.md),
# run by the CI cluster job with goldilocksd built under the Go race
# detector:
#
#  1. a 3-node fleet is started with checkpoint replication (K=2) and a
#     fast failure detector;
#  2. goldilocksctl drill streams half of every seed-corpus trace into
#     failover-aware fleet sessions, SIGKILLs one node mid-corpus,
#     finishes streaming through client failover, and requires every
#     session to converge to exactly the executable specification's
#     verdicts and Figure 5 rule fires — zero divergences, zero
#     caller-visible errors, at least one real failover;
#  3. the surviving fleet's status and the /cluster/metrics rollup are
#     sanity-checked.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR1=127.0.0.1:7981
ADDR2=127.0.0.1:7982
ADDR3=127.0.0.1:7983
METRICS1=127.0.0.1:7984
CLUSTER="$ADDR1,$ADDR2,$ADDR3"
WORK="$(mktemp -d)"
BIN="$WORK/bin"
declare -a PIDS=()

# Per-step timeout guard: a hung node or ctl call fails the job in
# bounded time.
STEP_TIMEOUT="${STEP_TIMEOUT:-120}"
T() { timeout "$STEP_TIMEOUT" "$@"; }

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill -KILL "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build (daemons under -race)"
go build -race -o "$BIN/goldilocksd" ./cmd/goldilocksd
go build -o "$BIN/goldilocksctl" ./cmd/goldilocksctl

start_node() {
    n="$1"; addr="$2"; shift 2
    # Every record traced and a per-node flight dir: after the SIGKILL
    # drill each survivor's flight recorder is collected and must show
    # the failover promotions it performed. Checkpoint every action:
    # the corpus traces are 3-16 events and only half streams before
    # the kill, so anything coarser leaves the victim's sessions with
    # no replicas to promote.
    "$BIN/goldilocksd" -addr "$addr" \
        -cluster "$CLUSTER" -join "$addr" -replicas 2 \
        -checkpoint-dir "$WORK/ckpt$n" -checkpoint-every 1 \
        -probe-interval 100ms -probe-timeout 500ms -suspect-after 2 \
        -trace-sample 1 -flight-dir "$WORK/flight$n" \
        "$@" >>"$WORK/node$n.log" 2>&1 &
    PIDS+=($!)
    disown $! # the drill SIGKILLs nodes; keep bash's job reaper quiet
}

echo "== start 3-node fleet"
start_node 1 "$ADDR1" -metrics-addr "$METRICS1"
start_node 2 "$ADDR2"
start_node 3 "$ADDR3"

for i in $(seq 1 50); do
    up="$(T "$BIN/goldilocksctl" -cluster "$CLUSTER" status 2>/dev/null | awk '$2 == "up"' | wc -l)"
    [ "$up" -eq 3 ] && break
    [ "$i" -eq 50 ] && { echo "FAIL: fleet did not become ready"; cat "$WORK"/node*.log; exit 1; }
    sleep 0.2
done
echo "   all 3 nodes up"

echo "== chaos drill: SIGKILL $ADDR2 (pid ${PIDS[1]}) mid-corpus"
T "$BIN/goldilocksctl" -cluster "$CLUSTER" drill \
    -kill-pid "${PIDS[1]}" -kill-addr "$ADDR2" \
    -corpus internal/conformance/testdata | tee "$WORK/drill.txt"
grep -q " 0 divergences" "$WORK/drill.txt" || {
    echo "FAIL: drill reported divergences"; cat "$WORK"/node*.log; exit 1; }
# The default mixed mode must have migrated SIGKILLed streams of both
# wire formats — a drill where either count is zero exercised only one
# codec's failover path.
grep -Eq "\([1-9][0-9]* binary, [1-9][0-9]* json wire\)" "$WORK/drill.txt" || {
    echo "FAIL: drill did not mix binary and json wire sessions"; cat "$WORK/drill.txt"; exit 1; }

echo "== surviving fleet status"
T "$BIN/goldilocksctl" -cluster "$CLUSTER" status | tee "$WORK/status.txt"
[ "$(awk '$2 == "up"' "$WORK/status.txt" | wc -l)" -eq 2 ] || {
    echo "FAIL: expected 2 surviving nodes"; exit 1; }
grep -q "$ADDR2 .*DOWN" "$WORK/status.txt" || {
    echo "FAIL: victim $ADDR2 not reported DOWN"; exit 1; }

echo "== cluster metrics rollup"
T curl -sf "http://$METRICS1/cluster/metrics" -o "$WORK/rollup.prom"
grep -q 'goldilocksd_cluster_nodes 3' "$WORK/rollup.prom" || {
    echo "FAIL: rollup missing fleet size"; cat "$WORK/rollup.prom"; exit 1; }
grep -q 'goldilocksd_cluster_nodes_up 2' "$WORK/rollup.prom" || {
    echo "FAIL: rollup does not show 2 nodes up"; cat "$WORK/rollup.prom"; exit 1; }
grep -q "goldilocksd_sessions_total{node=\"$ADDR1\"}" "$WORK/rollup.prom" || {
    echo "FAIL: rollup missing per-node samples"; cat "$WORK/rollup.prom"; exit 1; }

# The ctl rollup must agree with the HTTP endpoint.
T "$BIN/goldilocksctl" -cluster "$CLUSTER" metrics | grep -q 'goldilocksd_cluster_nodes_up 2' || {
    echo "FAIL: goldilocksctl metrics rollup disagrees"; exit 1; }

echo "== collect survivors' flight recorders"
T "$BIN/goldilocksctl" -cluster "$CLUSTER" flight -out "$WORK/flightdumps" \
    -reason post-drill | tee "$WORK/flight.txt"
dumps="$(ls "$WORK/flightdumps"/*.flight.jsonl 2>/dev/null | wc -l)"
[ "$dumps" -eq 2 ] || {
    echo "FAIL: collected $dumps flight dumps from 2 survivors"; exit 1; }
promotions=0
for dump in "$WORK/flightdumps"/*.flight.jsonl; do
    head -1 "$dump" | grep -q '"format":"goldilocks-flight"' || {
        echo "FAIL: $dump has a bad header"; head -1 "$dump"; exit 1; }
    n="$(grep -c '"k":"promote"' "$dump" || true)"
    echo "   $(basename "$dump"): $(wc -l <"$dump") lines, $n promotions"
    promotions=$((promotions + n))
done
# The SIGKILLed node owned sessions; their replicas were promoted on
# the survivors, and the recorders must have witnessed that.
[ "$promotions" -ge 1 ] || {
    echo "FAIL: no failover promotions in any survivor's flight dump"
    cat "$WORK/flightdumps"/*.flight.jsonl; exit 1; }

echo "PASS: cluster drill"
