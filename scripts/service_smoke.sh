#!/usr/bin/env bash
# End-to-end drill for the detection service (docs/SERVICE.md), run by
# the CI service job with goldilocksd built under the Go race detector:
#
#  1. verdict parity: every seed-corpus trace and two recorded MJ
#     traces replay through a live daemon with the same race count and
#     exit code as the in-process detector;
#  2. durability: a session is interrupted mid-trace, the daemon is
#     SIGTERMed (checkpoints written), restarted, and the resumed
#     session converges on the uninterrupted verdicts;
#  3. the per-session metrics are scraped and sanity-checked.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:7991
METRICS=127.0.0.1:7992
WORK="$(mktemp -d)"
BIN="$WORK/bin"
CKPT="$WORK/ckpt"
DAEMON_PID=""

# Per-step timeout guard: a hung daemon or client must fail the job in
# bounded time, not eat the CI timeout. Usage: T <cmd...>
STEP_TIMEOUT="${STEP_TIMEOUT:-120}"
T() { timeout "$STEP_TIMEOUT" "$@"; }

cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
    # -trace-sample 1 traces every record so the short smoke run still
    # fills every stage histogram; the flight recorder dumps to a fixed
    # dir so the SIGTERM drill's shutdown dump can be asserted on.
    "$BIN/goldilocksd" -addr "$ADDR" -metrics-addr "$METRICS" \
        -checkpoint-dir "$CKPT" -trace-sample 1 -flight-dir "$WORK/flight" \
        >>"$WORK/daemon.log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 50); do
        curl -sf "http://$METRICS/metrics" -o /dev/null && return 0
        sleep 0.2
    done
    echo "FAIL: daemon did not become ready"; cat "$WORK/daemon.log"; exit 1
}

stop_daemon() {
    kill -TERM "$DAEMON_PID"
    # Bounded wait: a daemon that hangs in shutdown is a bug, not a
    # reason for the job to hang with it.
    for _ in $(seq 1 "$STEP_TIMEOUT"); do
        kill -0 "$DAEMON_PID" 2>/dev/null || break
        sleep 1
    done
    if kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -KILL "$DAEMON_PID" 2>/dev/null || true
        echo "FAIL: daemon did not shut down within ${STEP_TIMEOUT}s"; cat "$WORK/daemon.log"; exit 1
    fi
    rc=0
    wait "$DAEMON_PID" || rc=$?
    DAEMON_PID=""
    if [ $rc -ne 0 ]; then
        echo "FAIL: daemon shutdown exit code $rc"; cat "$WORK/daemon.log"; exit 1
    fi
}

# race_count FILE LABEL: extract "LABEL: N races" from a replay report.
race_count() {
    sed -n "s/^$2: \\([0-9][0-9]*\\) races\$/\\1/p" "$1"
}

echo "== build (daemon under -race)"
go build -race -o "$BIN/goldilocksd" ./cmd/goldilocksd
go build -o "$BIN/goldilocks" ./cmd/goldilocks
go build -o "$BIN/racereplay" ./cmd/racereplay

echo "== record MJ scenario traces"
T "$BIN/goldilocks" -sched det -seed 4 -policy log -record "$WORK/racy.jsonl" examples/mj/racy.mj >/dev/null || [ $? -eq 1 ]
T "$BIN/goldilocks" -sched det -seed 1 -policy log -record "$WORK/txbank.jsonl" examples/mj/txbank.mj >/dev/null || [ $? -eq 1 ]
T "$BIN/goldilocks" -sched det -seed 1 -policy log -record "$WORK/pipeline.jsonl" examples/mj/pipeline.mj >/dev/null || [ $? -eq 1 ]
grep -q '"kind":"send"' "$WORK/pipeline.jsonl" || {
    echo "FAIL: pipeline recording carries no channel events"; exit 1; }

start_daemon

echo "== verdict parity: daemon vs in-process, exit codes included"
for trace in internal/conformance/testdata/ce-*.jsonl "$WORK"/racy.jsonl "$WORK"/txbank.jsonl "$WORK"/pipeline.jsonl; do
    name="$(basename "$trace" .jsonl)"

    set +e
    T "$BIN/racereplay" -detector goldilocks "$trace" >"$WORK/local.txt" 2>&1
    local_rc=$?
    T "$BIN/racereplay" -remote "$ADDR" -session "parity-$name" "$trace" >"$WORK/remote.txt" 2>&1
    remote_rc=$?
    T "$BIN/racereplay" -remote "$ADDR" -wire json -session "parity-json-$name" "$trace" >"$WORK/remote-json.txt" 2>&1
    json_rc=$?
    set -e

    # The default remote path must have negotiated the binary wire; the
    # -wire json leg pins the line-JSON fallback to the same verdicts.
    grep -q "wire format: binary" "$WORK/remote.txt" || {
        echo "FAIL: $name: default remote replay did not negotiate the binary wire"
        cat "$WORK/remote.txt"; exit 1; }
    grep -q "wire format: json" "$WORK/remote-json.txt" || {
        echo "FAIL: $name: -wire json did not force line-JSON"
        cat "$WORK/remote-json.txt"; exit 1; }

    local_n="$(race_count "$WORK/local.txt" goldilocks)"
    remote_n="$(race_count "$WORK/remote.txt" remote)"
    json_n="$(race_count "$WORK/remote-json.txt" remote)"
    if [ "$local_rc" != "$remote_rc" ] || [ "$local_n" != "$remote_n" ] \
        || [ "$local_rc" != "$json_rc" ] || [ "$local_n" != "$json_n" ]; then
        echo "FAIL: $name: local exit=$local_rc races=$local_n, binary exit=$remote_rc races=$remote_n, json exit=$json_rc races=$json_n"
        cat "$WORK/local.txt" "$WORK/remote.txt" "$WORK/remote-json.txt"
        exit 1
    fi
    echo "   $name: $local_n races, exit $local_rc (local == binary wire == json wire)"
done

# drill NAME TRACE [PARTIAL_WIRE RESUME_WIRE]: stream half the trace
# into session NAME, SIGTERM the daemon (checkpoints written), restart
# it, resume the session to completion, and require convergence with
# the uninterrupted verdicts. The optional wire arguments (auto|json)
# pick the format of each leg — a session checkpointed under one wire
# format must resume identically under the other.
drill() {
    name="$1"; drill_trace="$2"; partial_wire="${3:-auto}"; resume_wire="${4:-auto}"
    T "$BIN/racereplay" -detector goldilocks "$drill_trace" >"$WORK/drill-local.txt" 2>&1 || true
    total_actions="$(sed -n 's/^trace: \([0-9][0-9]*\) actions.*/\1/p' "$WORK/drill-local.txt")"
    want_n="$(race_count "$WORK/drill-local.txt" goldilocks)"
    half=$((total_actions / 2))
    [ "$half" -ge 1 ] || { echo "FAIL: $name: drill trace too short ($total_actions actions)"; exit 1; }

    T "$BIN/racereplay" -remote "$ADDR" -wire "$partial_wire" -session "$name" -stop-after "$half" "$drill_trace" \
        >"$WORK/drill-partial.txt" 2>&1 || true
    grep -q "session $name resumable" "$WORK/drill-partial.txt" || {
        echo "FAIL: $name: partial replay did not detach resumably"; cat "$WORK/drill-partial.txt"; exit 1; }
    partial_n="$(sed -n 's/^detached at action [0-9]* (\([0-9][0-9]*\) races so far).*/\1/p' "$WORK/drill-partial.txt")"

    stop_daemon
    ls "$CKPT"/*.ckpt >/dev/null || { echo "FAIL: $name: no checkpoint files written"; exit 1; }
    echo "   daemon checkpointed $(ls "$CKPT"/*.ckpt | wc -l) sessions and exited cleanly"

    start_daemon
    set +e
    T "$BIN/racereplay" -remote "$ADDR" -wire "$resume_wire" -session "$name" "$drill_trace" >"$WORK/drill-resume.txt" 2>&1
    set -e
    grep -q "session $name resumed at action $half" "$WORK/drill-resume.txt" || {
        echo "FAIL: $name: session did not resume at action $half"; cat "$WORK/drill-resume.txt"; exit 1; }
    resume_n="$(race_count "$WORK/drill-resume.txt" remote)"
    if [ $((partial_n + resume_n)) -ne "$want_n" ]; then
        echo "FAIL: $name: drill races: partial $partial_n + resumed $resume_n != uninterrupted $want_n"
        cat "$WORK/drill-partial.txt" "$WORK/drill-resume.txt" "$WORK/drill-local.txt"
        exit 1
    fi
    grep -q "remote session applied $total_actions actions" "$WORK/drill-resume.txt" || {
        echo "FAIL: $name: resumed session did not apply all $total_actions actions"; cat "$WORK/drill-resume.txt"; exit 1; }
    echo "   $name: resumed at $half, converged: $partial_n + $resume_n = $want_n races over $total_actions actions"
}

echo "== restart drill: interrupt mid-session, SIGTERM, restart, resume"
drill drill "$WORK/racy.jsonl"            # binary wire on both legs
drill drill-tx "$WORK/txbank.jsonl"
drill drill-chan "$WORK/pipeline.jsonl"   # channel state must survive the checkpoint
# Cross-format restart: the interrupted stream rode the binary wire,
# the resume is forced to line-JSON (and vice versa) — checkpointed
# session state is wire-format agnostic.
drill drill-bin2json "$WORK/racy.jsonl" auto json
drill drill-json2bin "$WORK/racy.jsonl" json auto

echo "== per-session metrics"
T curl -sf "http://$METRICS/metrics" -o "$WORK/metrics.prom"
grep -q 'goldilocksd_session_applied_total{session="drill"}' "$WORK/metrics.prom" || {
    echo "FAIL: no per-session metrics for the drill session"; exit 1; }
grep -q 'goldilocksd_checkpoints_restored_total' "$WORK/metrics.prom" || {
    echo "FAIL: restore counter missing from scrape"; exit 1; }

echo "== pipeline stage histograms"
for stage in queue_wait apply verdict_flush; do
    n="$(sed -n "s/^goldilocksd_stage_${stage}_us_count \\([0-9][0-9]*\\)\$/\\1/p" "$WORK/metrics.prom")"
    if [ -z "$n" ] || [ "$n" -eq 0 ]; then
        echo "FAIL: stage histogram goldilocksd_stage_${stage}_us observed nothing"
        grep goldilocksd_stage "$WORK/metrics.prom" || true
        exit 1
    fi
    echo "   goldilocksd_stage_${stage}_us: $n samples"
done

stop_daemon

echo "== flight recorder dump on SIGTERM"
DUMP="$WORK/flight/flight-shutdown.jsonl"
[ -s "$DUMP" ] || { echo "FAIL: no shutdown flight dump at $DUMP"; ls -la "$WORK/flight" 2>/dev/null; exit 1; }
head -1 "$DUMP" | grep -q '"format":"goldilocks-flight"' || {
    echo "FAIL: shutdown dump has a bad header"; head -1 "$DUMP"; exit 1; }
grep -q '"k":"attach"' "$DUMP" || {
    echo "FAIL: shutdown dump records no session attaches"; exit 1; }
echo "   $(wc -l <"$DUMP") dump lines, header OK, session lifecycle present"

echo "PASS: service smoke"
