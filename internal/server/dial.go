package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"goldilocks/internal/event"
	"goldilocks/internal/obs"
)

// DialConfig tunes connection establishment and failover.
type DialConfig struct {
	// Attempts bounds how many times a dial is tried before giving up;
	// transport failures (connection refused, handshake I/O) retry with
	// exponential backoff and jitter. Protocol rejections (bad session
	// id, wrong version) never retry. Default 1: fail fast.
	Attempts int
	// BaseDelay is the first backoff step. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 2s.
	MaxDelay time.Duration
	// FailoverTimeout bounds one failover episode in fleet mode: how
	// long a client keeps redialing the fleet after losing its server
	// (the failure detector needs time to declare the node dead and
	// reassign its sessions). Default 30s.
	FailoverTimeout time.Duration
	// MaxRedirects bounds a NOT_OWNER redirect chain within a single
	// connect (ownership can be in flux while the fleet converges).
	// Default 8.
	MaxRedirects int
	// Tracer, when set, samples sent records into pipeline spans (the
	// span id rides the stream record to the server) and observes the
	// client-side stages: record encode and control round-trip time.
	// Nil disables client tracing at zero cost.
	Tracer *obs.Tracer
	// ForceJSON disables the binary wire-format offer, pinning every
	// connection to line-JSON. By default the client offers
	// WireFormatBinary and falls back to line-JSON when the server does
	// not select it (old servers ignore the offer entirely).
	ForceJSON bool
}

func (cfg DialConfig) withDefaults() DialConfig {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 1
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 50 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Second
	}
	if cfg.FailoverTimeout <= 0 {
		cfg.FailoverTimeout = 30 * time.Second
	}
	if cfg.MaxRedirects <= 0 {
		cfg.MaxRedirects = 8
	}
	return cfg
}

// jitterRand adds jitter to backoff delays. Seeded once per process;
// guarded because many clients may back off concurrently.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// backoffDelay returns the delay before retry attempt (0-based):
// base·2^attempt, capped at max, with ±25% jitter so a fleet of
// reconnecting clients does not stampede in lockstep.
func (cfg DialConfig) backoffDelay(attempt int) time.Duration {
	d := cfg.BaseDelay << uint(attempt)
	if d <= 0 || d > cfg.MaxDelay {
		d = cfg.MaxDelay
	}
	jitterMu.Lock()
	f := 0.75 + 0.5*jitterRand.Float64()
	jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryableWelcome reports whether a welcome rejection is worth
// retrying: "already has a live connection" clears once the server
// notices the old connection died, and "shutting down" clears when the
// fleet reassigns the session. Bad session ids and protocol mismatches
// never clear.
func retryableWelcome(msg string) bool {
	return strings.Contains(msg, "live connection") || strings.Contains(msg, "shutting down")
}

// handshakeResult is one attach attempt's outcome. bin records whether
// the server selected the binary wire format for this connection.
type handshakeResult struct {
	conn net.Conn
	br   *bufio.Reader
	w    welcome
	bin  bool
}

// errNotOwner is returned by connectOnce when the node redirected.
type redirectError struct{ owner string }

func (e *redirectError) Error() string { return "redirected to " + e.owner }

// terminalDialError marks rejections that retrying cannot fix.
type terminalDialError struct{ msg string }

func (e *terminalDialError) Error() string { return e.msg }

// connectOnce dials addr and performs the session handshake — offering
// the binary wire format unless offerBin is false — including sending
// the stream header in whichever format the server selected. On
// NOT_OWNER it returns *redirectError with the owner's address
// (possibly empty).
func connectOnce(ctx context.Context, addr, session string, offerBin bool) (*handshakeResult, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	fail := func(err error) (*handshakeResult, error) {
		conn.Close()
		return nil, err
	}
	var formats []string
	if offerBin {
		formats = []string{WireFormatBinary, WireFormatJSON}
	}
	h, err := json.Marshal(hello{Proto: ProtoName, Version: ProtoVersion, Session: session, Formats: formats})
	if err != nil {
		return fail(err)
	}
	if _, err := conn.Write(append(h, '\n')); err != nil {
		return fail(err)
	}
	br := bufio.NewReaderSize(conn, 64*1024)
	line, err := readLine(br)
	if err != nil {
		return fail(fmt.Errorf("server: reading welcome: %w", err))
	}
	var w welcome
	if err := json.Unmarshal(line, &w); err != nil {
		return fail(fmt.Errorf("server: bad welcome: %w", err))
	}
	if w.NotOwner {
		conn.Close()
		return nil, &redirectError{owner: w.Owner}
	}
	if !w.OK {
		msg := fmt.Sprintf("server: rejected session %q: %s", session, w.Error)
		if retryableWelcome(w.Error) {
			return fail(errors.New(msg))
		}
		return fail(&terminalDialError{msg: msg})
	}
	bin := w.Format == WireFormatBinary
	header := event.StreamHeaderLine()
	if bin {
		header = event.BinHeaderFrame()
	}
	if _, err := conn.Write(header); err != nil {
		return fail(err)
	}
	conn.SetDeadline(time.Time{}) // handshake done; streaming has no deadline
	return &handshakeResult{conn: conn, br: br, w: w, bin: bin}, nil
}

// Dial connects to a detection server and opens (or resumes) the named
// session, failing fast on the first error. After a successful Dial the
// caller must check Next: a resumed session has already applied that
// many actions, and the client must stream only the remainder of its
// linearization.
func Dial(addr, session string) (*Client, error) {
	return DialContext(context.Background(), addr, session, DialConfig{})
}

// DialContext connects with bounded retry: cfg.Attempts dials,
// exponential backoff with jitter between them, the whole episode
// bounded by ctx. A daemon that comes up *after* the client starts
// dialing is found by a later attempt. Protocol rejections (invalid
// session, version skew) fail immediately; only transport errors retry.
func DialContext(ctx context.Context, addr, session string, cfg DialConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	var lastErr error
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, cfg.backoffDelay(attempt-1)); err != nil {
				return nil, fmt.Errorf("dialing %s: %w (last error: %v)", addr, err, lastErr)
			}
		}
		res, err := connectOnce(ctx, addr, session, !cfg.ForceJSON)
		if err != nil {
			var term *terminalDialError
			if errors.As(err, &term) {
				return nil, errors.New(term.msg)
			}
			var re *redirectError
			if errors.As(err, &re) {
				return nil, fmt.Errorf("server: not the session owner (use DialFleet; owner %s)", re.owner)
			}
			lastErr = err
			continue
		}
		c := &Client{session: session, next: res.w.Next, resumed: res.w.Resumed, cfg: cfg, tracer: cfg.Tracer}
		c.startConn(res.conn, res.br, res.bin)
		return c, nil
	}
	return nil, fmt.Errorf("dialing %s: %d attempts failed: %w", addr, cfg.Attempts, lastErr)
}

// DialFleet opens (or resumes) a session against a cluster: it tries
// the fleet's nodes — starting from a session-hash guess at the owner —
// follows NOT_OWNER redirects, and retries with exponential backoff and
// jitter until a node accepts or cfg.FailoverTimeout expires. The
// returned client journals everything it sends and transparently fails
// over (reconnect, redirect, replay, dedup) when its node dies.
func DialFleet(ctx context.Context, addrs []string, session string, cfg DialConfig) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("server: empty fleet address list")
	}
	cfg = cfg.withDefaults()
	c := &Client{session: session, fleet: append([]string(nil), addrs...), cfg: cfg, seen: make(map[string]bool), tracer: cfg.Tracer}
	res, err := c.connectFleet(ctx)
	if err != nil {
		return nil, err
	}
	c.next, c.resumed = res.w.Next, res.w.Resumed
	c.base = res.w.Next
	c.startConn(res.conn, res.br, res.bin)
	return c, nil
}

// DialAuto is the CLI-friendly entry: a single address dials directly,
// a comma-separated list dials the fleet with failover enabled.
func DialAuto(ctx context.Context, addr, session string) (*Client, error) {
	return DialAutoConfig(ctx, addr, session, DialConfig{})
}

// DialAutoConfig is DialAuto with an explicit configuration, for
// callers that need to pin the wire format (e.g. -wire json) or tune
// failover without giving up the address-list convenience.
func DialAutoConfig(ctx context.Context, addr, session string, cfg DialConfig) (*Client, error) {
	if strings.Contains(addr, ",") {
		return DialFleet(ctx, splitAddrs(addr), session, cfg)
	}
	return DialContext(ctx, addr, session, cfg)
}

// splitAddrs parses a comma-separated address list.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// connectFleet keeps trying the fleet until a node accepts the session
// or the failover budget expires. Candidate order starts at the
// session's hash point (the likely owner) and follows NOT_OWNER
// redirects from there.
func (c *Client) connectFleet(ctx context.Context) (*handshakeResult, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.FailoverTimeout)
	defer cancel()
	h := fnv.New32a()
	h.Write([]byte(c.session))
	start := int(h.Sum32()) % len(c.fleet)
	if start < 0 {
		start += len(c.fleet)
	}
	var lastErr error
	for round := 0; ; round++ {
		for i := 0; i < len(c.fleet); i++ {
			addr := c.fleet[(start+i)%len(c.fleet)]
			res, err := c.followRedirects(ctx, addr)
			if err == nil {
				return res, nil
			}
			var term *terminalDialError
			if errors.As(err, &term) {
				return nil, errors.New(term.msg)
			}
			lastErr = err
		}
		if err := sleepCtx(ctx, c.cfg.backoffDelay(round)); err != nil {
			return nil, fmt.Errorf("fleet %v: failover budget exhausted: %w (last error: %v)", c.fleet, err, lastErr)
		}
	}
}

// followRedirects dials addr and follows NOT_OWNER redirects up to the
// configured bound.
func (c *Client) followRedirects(ctx context.Context, addr string) (*handshakeResult, error) {
	for hop := 0; hop < c.cfg.MaxRedirects; hop++ {
		res, err := connectOnce(ctx, addr, c.session, !c.cfg.ForceJSON)
		if err == nil {
			return res, nil
		}
		var re *redirectError
		if errors.As(err, &re) && re.owner != "" && re.owner != addr {
			addr = re.owner
			continue
		}
		return nil, err
	}
	return nil, fmt.Errorf("server: redirect chain for session %q exceeded %d hops", c.session, c.cfg.MaxRedirects)
}

// failover reconnects a fleet client after its server died: close the
// old connection, redial the fleet (backoff + redirects), learn the new
// owner's applied prefix, and replay the journal suffix past it. The
// restored engine re-fires verdicts deterministically; readLoop's dedup
// drops the ones this client already collected, so the caller observes
// an uninterrupted session.
func (c *Client) failover(ctx context.Context) error {
	c.conn.Close()
	<-c.done // old read loop has stopped; c.races is quiescent
	res, err := c.connectFleet(ctx)
	if err != nil {
		return err
	}
	next := res.w.Next
	if next < c.base || next > c.base+uint64(len(c.journal)) {
		res.conn.Close()
		return fmt.Errorf("server: session %q resumed at %d, outside this client's journal [%d,%d]",
			c.session, next, c.base, c.base+uint64(len(c.journal)))
	}
	c.failovers++
	c.startConn(res.conn, res.br, res.bin)
	// The journal replays in whatever format the *new* connection
	// negotiated: in a mixed-version fleet a session can migrate from a
	// binary-speaking node to a line-JSON one (or back) mid-stream.
	for _, a := range c.journal[next-c.base:] {
		var rec []byte
		if c.bin {
			c.encBuf = event.AppendEventFrame(c.encBuf[:0], a, 0)
			rec = c.encBuf
		} else {
			var err error
			if rec, err = event.EncodeRecord(a); err != nil {
				return err
			}
		}
		if _, err := c.bw.Write(rec); err != nil {
			// The replacement died too; recurse into another episode.
			return c.failover(ctx)
		}
	}
	return nil
}
