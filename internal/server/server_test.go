package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"goldilocks/internal/conformance"
	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/scenarios"
	"goldilocks/internal/server"
)

// corpusTraces returns the full seed corpus: the Section 2 scenarios
// plus every checked-in conformance counterexample.
func corpusTraces(t *testing.T) map[string]*event.Trace {
	t.Helper()
	out := make(map[string]*event.Trace)
	for _, sc := range scenarios.All() {
		out["scenario-"+sc.Name] = sc.Trace
	}
	entries, err := conformance.LoadCorpus("../conformance/testdata")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	for _, e := range entries {
		out["corpus-"+strings.TrimSuffix(e.Name, ".jsonl")] = e.Trace
	}
	return out
}

// remoteBackend adapts a daemon session to the conformance harness's
// Backend interface.
func remoteBackend(addr, session string) conformance.Backend {
	return func(tr *event.Trace) (conformance.BackendResult, error) {
		races, ack, err := server.StreamTrace(addr, session, tr)
		if err != nil {
			return conformance.BackendResult{}, err
		}
		res := conformance.BackendResult{Races: races}
		if len(ack.RuleFires) == obs.NumRules+1 {
			copy(res.RuleFires[:], ack.RuleFires)
			res.HasRuleFires = true
		}
		return res, nil
	}
}

// TestRemoteParityCorpus is the remote differential-parity acceptance
// gate: every seed-corpus trace streamed through a daemon session must
// yield exactly the in-process verdicts and Figure 5 rule-fire counts.
func TestRemoteParityCorpus(t *testing.T) {
	srv, err := server.New("127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()
	i := 0
	for name, tr := range corpusTraces(t) {
		i++
		session := fmt.Sprintf("parity-%d", i)
		if div := conformance.CheckBackend("remote", remoteBackend(srv.Addr(), session), tr); div != nil {
			t.Errorf("%s: %v", name, div)
		}
	}
}

// TestRemoteParityTinyQueue re-runs parity with a queue and batch of 1,
// so every enqueue exercises the backpressure path (the reader blocks
// on a full queue between each apply).
func TestRemoteParityTinyQueue(t *testing.T) {
	srv, err := server.New("127.0.0.1:0", server.Config{Queue: 1, Batch: 1})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()
	i := 0
	for name, tr := range corpusTraces(t) {
		i++
		session := fmt.Sprintf("tiny-%d", i)
		if div := conformance.CheckBackend("remote-tiny", remoteBackend(srv.Addr(), session), tr); div != nil {
			t.Errorf("%s: %v", name, div)
		}
	}
}

// TestConcurrentSessions streams every corpus trace through the same
// daemon at once, one session per goroutine, and requires every session
// to report exactly its own in-process verdicts — sessions are
// isolated engines, not a shared one.
func TestConcurrentSessions(t *testing.T) {
	srv, err := server.New("127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	i := 0
	for name, tr := range corpusTraces(t) {
		i++
		session := fmt.Sprintf("conc-%d", i)
		wg.Add(1)
		go func(name, session string, tr *event.Trace) {
			defer wg.Done()
			if div := conformance.CheckBackend("remote-concurrent", remoteBackend(srv.Addr(), session), tr); div != nil {
				t.Errorf("%s: %v", name, div)
			}
		}(name, session, tr)
	}
	wg.Wait()
}

func keysOf(races []detect.Race) []string {
	out := make([]string, len(races))
	for i, r := range races {
		out[i] = fmt.Sprintf("%d:%v", r.Pos, r.Var)
	}
	sort.Strings(out)
	return out
}

// TestRestartConvergence kills the daemon mid-session and requires the
// resumed session to converge: stream half a trace, close the server
// (checkpointing to disk), start a fresh server on the same directory,
// resume, stream the rest, and require the union of verdicts plus the
// final engine stats and rule fires to equal an uninterrupted
// in-process run.
func TestRestartConvergence(t *testing.T) {
	dir := t.TempDir()
	for name, tr := range corpusTraces(t) {
		t.Run(name, func(t *testing.T) {
			// Uninterrupted in-process run for ground truth.
			tel := obs.NewTelemetry()
			opts := core.DefaultOptions()
			opts.Telemetry = tel
			eng := core.NewEngine(opts)
			var want []detect.Race
			for i := 0; i < tr.Len(); i++ {
				for _, r := range eng.Step(tr.At(i)) {
					r.Pos = i
					want = append(want, r)
				}
			}
			wantStats := eng.Stats()
			wantFires := tel.RuleFires()

			srv1, err := server.New("127.0.0.1:0", server.Config{CheckpointDir: dir})
			if err != nil {
				t.Fatalf("starting server: %v", err)
			}
			c, err := server.Dial(srv1.Addr(), "restart")
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			half := tr.Len() / 2
			for i := 0; i < half; i++ {
				if err := c.Send(tr.At(i)); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			if _, err := c.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			got := c.Races()
			c.Abandon() // simulate a client surviving the daemon
			if err := srv1.Close(); err != nil {
				t.Fatalf("closing first server: %v", err)
			}

			srv2, err := server.New("127.0.0.1:0", server.Config{CheckpointDir: dir})
			if err != nil {
				t.Fatalf("restarting server: %v", err)
			}
			defer srv2.Close()
			c2, err := server.Dial(srv2.Addr(), "restart")
			if err != nil {
				t.Fatalf("redial: %v", err)
			}
			if !c2.Resumed() || c2.Next() != uint64(half) {
				t.Fatalf("resume state: resumed=%v next=%d, want true/%d", c2.Resumed(), c2.Next(), half)
			}
			for i := half; i < tr.Len(); i++ {
				if err := c2.Send(tr.At(i)); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			ack, err := c2.Close()
			if err != nil {
				t.Fatalf("close: %v", err)
			}
			got = append(got, c2.Races()...)

			if gk, wk := keysOf(got), keysOf(want); !equalStrings(gk, wk) {
				t.Fatalf("races %v, uninterrupted %v", gk, wk)
			}
			if ack.Stats == nil || *ack.Stats != wantStats {
				t.Fatalf("stats diverged\nresumed:       %+v\nuninterrupted: %+v", ack.Stats, wantStats)
			}
			var gotFires [obs.NumRules + 1]uint64
			copy(gotFires[:], ack.RuleFires)
			if gotFires != wantFires {
				t.Fatalf("rule fires %v, uninterrupted %v", gotFires, wantFires)
			}
			if ack.Applied != uint64(tr.Len()) {
				t.Fatalf("applied %d, want %d", ack.Applied, tr.Len())
			}

			// Clean the session so the next subtest starts fresh.
			srv2.Close()
			cleanCheckpointDir(t, dir)
		})
	}
}

// cleanCheckpointDir removes persisted sessions so the next subtest
// starts from an empty daemon.
func cleanCheckpointDir(t *testing.T, dir string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatalf("globbing checkpoints: %v", err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatalf("removing %s: %v", m, err)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSessionExclusive rejects a second live connection to the same
// session.
func TestSessionExclusive(t *testing.T) {
	srv, err := server.New("127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()
	c1, err := server.Dial(srv.Addr(), "excl")
	if err != nil {
		t.Fatalf("first dial: %v", err)
	}
	defer c1.Abandon()
	if _, err := server.Dial(srv.Addr(), "excl"); err == nil {
		t.Fatal("second connection to a live session was accepted")
	}
}

// TestRejectsBadHandshake covers the protocol guards: wrong protocol
// name, wrong version, and invalid session ids are all refused with an
// explanatory welcome.
func TestRejectsBadHandshake(t *testing.T) {
	srv, err := server.New("127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()

	for name, helloLine := range map[string]string{
		"wrong-proto":   `{"proto":"nope","version":1,"session":"a"}`,
		"wrong-version": `{"proto":"goldilocks-service","version":99,"session":"a"}`,
		"bad-session":   `{"proto":"goldilocks-service","version":1,"session":"../escape"}`,
	} {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatalf("%s: dial: %v", name, err)
		}
		fmt.Fprintf(conn, "%s\n", helloLine)
		line, err := bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		if err != nil {
			t.Fatalf("%s: reading welcome: %v", name, err)
		}
		var w struct {
			OK    bool   `json:"ok"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &w); err != nil {
			t.Fatalf("%s: bad welcome %q: %v", name, line, err)
		}
		if w.OK || w.Error == "" {
			t.Errorf("%s: accepted: %q", name, line)
		}
	}
}

// TestCorruptRecordReported requires a checksum-corrupt event record
// to be reported as a protocol error, not silently applied or dropped.
func TestCorruptRecordReported(t *testing.T) {
	srv, err := server.New("127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, `{"proto":"goldilocks-service","version":1,"session":"corrupt"}`+"\n")
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("welcome: %v", err)
	}
	conn.Write(event.StreamHeaderLine())
	fmt.Fprintf(conn, `{"a":{"kind":"read","t":1,"o":1},"crc":"deadbeef"}`+"\n")
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading error reply: %v", err)
	}
	if !strings.Contains(line, "corrupt") {
		t.Fatalf("expected corrupt-record error, got %q", line)
	}
}

// TestSessionMetrics checks the per-session metrics appear in the
// registry with session labels and advance as actions apply.
func TestSessionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := server.New("127.0.0.1:0", server.Config{Registry: reg})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()

	tr := scenarios.All()[0].Trace
	if _, _, err := server.StreamTrace(srv.Addr(), "metrics-a", tr); err != nil {
		t.Fatalf("stream: %v", err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	text := sb.String()
	want := fmt.Sprintf(`goldilocksd_session_applied_total{session="metrics-a"} %d`, tr.Len())
	if !strings.Contains(text, want) {
		t.Fatalf("scrape missing %q:\n%s", want, text)
	}
	if !strings.Contains(text, "goldilocksd_sessions_total 1") {
		t.Fatalf("scrape missing sessions_total:\n%s", text)
	}
}
