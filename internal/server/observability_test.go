package server

// Internal tests for the observability layer: the queue-depth gauge
// under deliberate backpressure, the stage histograms fed by a traced
// client, and the flight recorder's admin scrape. They live inside the
// package because backpressure is only reachable deterministically by
// parking the session worker on an internal control item.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"goldilocks/internal/event"
	"goldilocks/internal/obs"
)

// parkedSession attaches a client session and parks its worker: a
// ctlCkpt item whose unbuffered reply channel nobody reads yet blocks
// the worker after the checkpoint, so everything enqueued afterwards
// stays in the queue. The returned release function unblocks the
// worker.
func parkedSession(t *testing.T, srv *Server, addr, id string) (*Client, *session, func()) {
	t.Helper()
	c, err := DialContext(context.Background(), addr, id, DialConfig{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	srv.mu.Lock()
	sess := srv.sessions[id]
	srv.mu.Unlock()
	if sess == nil {
		t.Fatalf("session %q not registered", id)
	}
	// The session queue is installed when the server reads the client's
	// stream header, which races DialContext returning — poll.
	reply := make(chan ckptResult) // unbuffered: the worker blocks on the send
	deadline := time.Now().Add(5 * time.Second)
	for !sess.tryEnqueue(item{ctl: ctlCkpt, ckpt: reply}) {
		if time.Now().After(deadline) {
			t.Fatal("session queue never came up")
		}
		time.Sleep(time.Millisecond)
	}
	for sess.queueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never drained the control item")
		}
		time.Sleep(time.Millisecond)
	}
	return c, sess, func() { <-reply }
}

// TestQueueDepthGaugeBackpressure pins that a full ingest queue is
// visible in /metrics — the gauge reads the live channel depth, so an
// operator sees backpressure while it is happening, not after — and
// that dropping the session unregisters the gauge.
func TestQueueDepthGaugeBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := New("127.0.0.1:0", Config{Registry: reg, Queue: 4})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()

	c, sess, release := parkedSession(t, srv, srv.Addr(), "qd")

	// Fill the queue to its bound. Exactly Queue items: one more would
	// block tryEnqueue (that block IS the TCP backpressure, but here it
	// would deadlock the test).
	for i := 0; i < 4; i++ {
		if !sess.tryEnqueue(item{a: event.Write(1, 10, 0)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}

	scrape := func() string {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatalf("scrape: %v", err)
		}
		return b.String()
	}
	if want := `goldilocksd_session_queue_depth{session="qd"} 4`; !strings.Contains(scrape(), want) {
		t.Fatalf("scrape missing %q under backpressure:\n%s", want, scrape())
	}

	release()
	if _, err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := srv.DropSession("qd"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if out := scrape(); strings.Contains(out, "goldilocksd_session_queue_depth") {
		t.Fatalf("queue-depth gauge survived session drop:\n%s", out)
	}
}

// TestStageHistogramsEndToEnd runs a traced client against a traced
// server and checks every pipeline stage both sides cover observed
// latency, the registry exports it, and the flight recorder saw the
// session lifecycle.
func TestStageHistogramsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	serverTracer := obs.NewTracer(1)
	flight := obs.NewFlightRecorder(128)
	srv, err := New("127.0.0.1:0", Config{
		Registry: reg, Tracer: serverTracer, Flight: flight,
		Batch: 4, CheckpointDir: t.TempDir(), CheckpointEvery: 8,
	})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()

	clientTracer := obs.NewTracer(1)
	c, err := DialContext(context.Background(), srv.Addr(), "traced", DialConfig{Tracer: clientTracer})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	for i := 0; i < 64; i++ {
		var a event.Action
		switch i % 4 {
		case 0:
			a = event.Acquire(1, 20)
		case 1:
			a = event.Write(1, 10, 0)
		case 2:
			a = event.Read(1, 10, 0)
		default:
			a = event.Release(1, 20)
		}
		if err := c.Send(a); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if _, err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	for _, probe := range []struct {
		tr *obs.Tracer
		st obs.Stage
	}{
		{clientTracer, obs.StageClientEncode},
		{clientTracer, obs.StageWireRTT},
		{serverTracer, obs.StageQueueWait},
		{serverTracer, obs.StageApply},
		{serverTracer, obs.StageVerdictFlush},
		{serverTracer, obs.StageCheckpointWrite},
	} {
		if n := probe.tr.StageHist(probe.st).Count(); n == 0 {
			t.Errorf("stage %s observed nothing", probe.st)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if !strings.Contains(b.String(), "goldilocksd_stage_apply_us_count") {
		t.Fatalf("scrape missing stage histograms:\n%s", b.String())
	}

	evs, _ := flight.Snapshot()
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	for _, want := range []string{"attach", "close", "checkpoint"} {
		if kinds[want] == 0 {
			t.Errorf("flight recorder missing %q events (have %v)", want, kinds)
		}
	}
}

// TestScrapeFlight exercises the admin "flight" verb end to end: the
// scraped bytes parse back as a checksummed dump carrying the session
// lifecycle, and a scrape with a reason also drops a dump on disk.
func TestScrapeFlight(t *testing.T) {
	flightDir := t.TempDir()
	srv, err := New("127.0.0.1:0", Config{
		Registry:  obs.NewRegistry(),
		Flight:    obs.NewFlightRecorder(64),
		FlightDir: flightDir,
		Advertise: "nodeA:1",
	})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()

	c, err := DialContext(context.Background(), srv.Addr(), "fl", DialConfig{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c.Send(event.Write(1, 10, 0)); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	body, err := ScrapeFlight(context.Background(), srv.Addr(), "")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	hdr, evs, err := obs.ReadFlightDump(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("parse dump: %v", err)
	}
	if hdr.Node != "nodeA:1" || hdr.Reason != "scrape" {
		t.Fatalf("header = %+v", hdr)
	}
	found := false
	for _, ev := range evs {
		if ev.Kind == "attach" && ev.Session == "fl" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump missing the attach event: %+v", evs)
	}

	// A reason-bearing scrape persists the dump server-side too.
	if _, err := ScrapeFlight(context.Background(), srv.Addr(), "incident-7"); err != nil {
		t.Fatalf("scrape with reason: %v", err)
	}
	path := fmt.Sprintf("%s/flight-incident-7.jsonl", flightDir)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := readDumpFile(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never wrote %s", path)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A server without a recorder refuses the verb.
	bare, err := New("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatalf("bare server: %v", err)
	}
	defer bare.Close()
	if _, err := ScrapeFlight(context.Background(), bare.Addr(), ""); err == nil {
		t.Fatal("flight verb succeeded without a recorder")
	}
}

func readDumpFile(path string) (obs.FlightHeader, []obs.FlightEvent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return obs.FlightHeader{}, nil, err
	}
	return obs.ReadFlightDump(bytes.NewReader(data))
}
