package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// The admin protocol is how cluster peers and goldilocksctl talk to a
// node, on the same listener as detection sessions: the first line's
// "proto" field selects it. One request line (optionally followed by a
// raw byte body of the declared size), one response line (optionally
// followed by a raw byte body), connection closed. Verbs:
//
//	ping        liveness probe; reply carries the advertised name,
//	            draining state, and session count (failure detector)
//	info        list sessions with applied/race counts
//	checkpoint  pull one session's checkpoint bytes (live sessions are
//	            checkpointed between batches, zero verdicts lost)
//	adopt       install a session from checkpoint bytes (migration)
//	replica     store checkpoint bytes as a follower replica
//	drop        remove a detached session and its local checkpoint
//	drain       stop owning sessions: sever connections, checkpoint
//	            and replicate everything, reply with the session list
//	metrics     pull this node's Prometheus exposition (rollup)
//	flight      pull this node's flight-recorder ring as a checksummed
//	            .jsonl dump; a nonempty reason also triggers a local
//	            dump to the node's flight directory
const AdminProtoName = "goldilocks-cluster"

// AdminProtoVersion is the current admin protocol version.
const AdminProtoVersion = 1

// Admin verbs.
const (
	verbPing       = "ping"
	verbInfo       = "info"
	verbCheckpoint = "checkpoint"
	verbAdopt      = "adopt"
	verbReplica    = "replica"
	verbDrop       = "drop"
	verbDrain      = "drain"
	verbMetrics    = "metrics"
	verbFlight     = "flight"
)

// adminReq is the request line of an admin exchange.
type adminReq struct {
	Proto   string `json:"proto"`
	Version int    `json:"version"`
	Verb    string `json:"verb"`
	Session string `json:"session,omitempty"`
	Reason  string `json:"reason,omitempty"` // with verb flight: also dump locally
	Size    int64  `json:"size,omitempty"`   // body bytes that follow
}

// SessionInfo is one session's progress as reported by info and drain.
type SessionInfo struct {
	ID       string `json:"id"`
	Applied  uint64 `json:"applied"`
	Races    uint64 `json:"races"`
	Attached bool   `json:"attached,omitempty"`
}

// PingInfo is what a liveness probe learns about a node.
type PingInfo struct {
	Node     string `json:"node"`
	Draining bool   `json:"draining,omitempty"`
	Sessions int    `json:"sessions"`
}

// adminResp is the response line of an admin exchange.
type adminResp struct {
	OK       bool          `json:"ok"`
	Error    string        `json:"error,omitempty"`
	Node     string        `json:"node,omitempty"`
	Draining bool          `json:"draining,omitempty"`
	Count    int           `json:"count,omitempty"`
	Applied  uint64        `json:"applied,omitempty"`
	Sessions []SessionInfo `json:"sessions,omitempty"`
	Size     int64         `json:"size,omitempty"` // body bytes that follow
}

// maxAdminBody bounds adopt/replica payloads (a session checkpoint).
const maxAdminBody = 1 << 30

// handleAdmin serves one admin exchange. The request line has already
// been consumed and parsed.
func (s *Server) handleAdmin(req adminReq, br *bufio.Reader, bw *bufio.Writer) {
	reply := func(resp adminResp, body []byte) {
		resp.Size = int64(len(body))
		b, _ := json.Marshal(resp)
		bw.Write(append(b, '\n'))
		bw.Write(body)
		bw.Flush()
	}
	fail := func(format string, args ...any) {
		reply(adminResp{Error: fmt.Sprintf(format, args...)}, nil)
	}
	if req.Version != AdminProtoVersion {
		fail("unsupported admin protocol version %d", req.Version)
		return
	}

	readBody := func() ([]byte, error) {
		if req.Size <= 0 || req.Size > maxAdminBody {
			return nil, fmt.Errorf("bad body size %d", req.Size)
		}
		body := make([]byte, req.Size)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, err
		}
		return body, nil
	}

	switch req.Verb {
	case verbPing:
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		reply(adminResp{OK: true, Node: s.cfg.Advertise, Draining: s.draining.Load(), Count: n}, nil)

	case verbInfo:
		reply(adminResp{OK: true, Node: s.cfg.Advertise, Draining: s.draining.Load(), Sessions: s.sessionInfos()}, nil)

	case verbCheckpoint:
		data, applied, err := s.CheckpointSessionBytes(req.Session)
		if err != nil {
			fail("checkpoint %s: %v", req.Session, err)
			return
		}
		reply(adminResp{OK: true, Applied: applied}, data)

	case verbAdopt:
		body, err := readBody()
		if err != nil {
			fail("adopt: reading body: %v", err)
			return
		}
		applied, err := s.AdoptSession(body)
		if err != nil {
			fail("adopt: %v", err)
			return
		}
		reply(adminResp{OK: true, Applied: applied}, nil)

	case verbReplica:
		body, err := readBody()
		if err != nil {
			fail("replica: reading body: %v", err)
			return
		}
		if !validSessionID(req.Session) {
			fail("replica: invalid session id %q", req.Session)
			return
		}
		if err := s.PutReplica(req.Session, body); err != nil {
			fail("replica %s: %v", req.Session, err)
			return
		}
		reply(adminResp{OK: true}, nil)

	case verbDrop:
		if err := s.DropSession(req.Session); err != nil {
			fail("drop %s: %v", req.Session, err)
			return
		}
		reply(adminResp{OK: true}, nil)

	case verbDrain:
		infos, err := s.Drain()
		if err != nil {
			fail("drain: %v", err)
			return
		}
		reply(adminResp{OK: true, Node: s.cfg.Advertise, Sessions: infos}, nil)

	case verbMetrics:
		if s.cfg.Registry == nil {
			fail("no metrics registry configured")
			return
		}
		var buf safeBuffer
		if err := s.cfg.Registry.WritePrometheus(&buf); err != nil {
			fail("rendering metrics: %v", err)
			return
		}
		reply(adminResp{OK: true, Node: s.cfg.Advertise}, buf.b)

	case verbFlight:
		if s.cfg.Flight == nil {
			fail("no flight recorder configured")
			return
		}
		reason := req.Reason
		if reason == "" {
			reason = "scrape"
		}
		var buf safeBuffer
		if err := s.cfg.Flight.WriteDump(&buf, s.cfg.Advertise, reason); err != nil {
			fail("rendering flight dump: %v", err)
			return
		}
		if req.Reason != "" {
			// A caller-supplied reason marks an incident (conformance
			// divergence, operator drill): keep a local copy too.
			s.autoDumpFlight(req.Reason)
		}
		reply(adminResp{OK: true, Node: s.cfg.Advertise}, buf.b)

	default:
		fail("unknown admin verb %q", req.Verb)
	}
}

// safeBuffer is a minimal bytes buffer (avoids importing bytes just
// for this; WritePrometheus writes sequentially from one goroutine).
type safeBuffer struct{ b []byte }

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// adminCall performs one admin exchange with the node at addr: send the
// request line plus body, read the response line plus body. The context
// deadline bounds the whole exchange.
func adminCall(ctx context.Context, addr string, req adminReq, body []byte) (adminResp, []byte, error) {
	req.Proto, req.Version = AdminProtoName, AdminProtoVersion
	req.Size = int64(len(body))
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return adminResp{}, nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	b, err := json.Marshal(req)
	if err != nil {
		return adminResp{}, nil, err
	}
	bw := bufio.NewWriterSize(conn, 64*1024)
	bw.Write(append(b, '\n'))
	bw.Write(body)
	if err := bw.Flush(); err != nil {
		return adminResp{}, nil, err
	}
	br := bufio.NewReaderSize(conn, 64*1024)
	line, err := readLine(br)
	if err != nil {
		return adminResp{}, nil, fmt.Errorf("reading admin response: %w", err)
	}
	var resp adminResp
	if err := json.Unmarshal(line, &resp); err != nil {
		return adminResp{}, nil, fmt.Errorf("bad admin response: %w", err)
	}
	if !resp.OK {
		if resp.Error == "" {
			resp.Error = "admin request refused"
		}
		return resp, nil, errors.New(resp.Error)
	}
	var respBody []byte
	if resp.Size > 0 {
		if resp.Size > maxAdminBody {
			return resp, nil, fmt.Errorf("admin response body too large (%d bytes)", resp.Size)
		}
		respBody = make([]byte, resp.Size)
		if _, err := io.ReadFull(br, respBody); err != nil {
			return resp, nil, fmt.Errorf("reading admin response body: %w", err)
		}
	}
	return resp, respBody, nil
}

// Ping probes the node at addr and reports its identity, draining
// state, and session count. It is the failure detector's heartbeat.
func Ping(ctx context.Context, addr string) (PingInfo, error) {
	resp, _, err := adminCall(ctx, addr, adminReq{Verb: verbPing}, nil)
	if err != nil {
		return PingInfo{}, err
	}
	return PingInfo{Node: resp.Node, Draining: resp.Draining, Sessions: resp.Count}, nil
}

// Sessions lists the sessions held by the node at addr.
func Sessions(ctx context.Context, addr string) ([]SessionInfo, error) {
	resp, _, err := adminCall(ctx, addr, adminReq{Verb: verbInfo}, nil)
	if err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// PullCheckpoint fetches a checkpoint of the named session from the
// node at addr. A live session is checkpointed between batches, so the
// bytes are a consistent cut with no verdicts lost.
func PullCheckpoint(ctx context.Context, addr, id string) (data []byte, applied uint64, err error) {
	resp, body, err := adminCall(ctx, addr, adminReq{Verb: verbCheckpoint, Session: id}, nil)
	if err != nil {
		return nil, 0, err
	}
	return body, resp.Applied, nil
}

// Adopt installs a session from checkpoint bytes on the node at addr
// (the receiving end of a migration).
func Adopt(ctx context.Context, addr string, data []byte) (applied uint64, err error) {
	resp, _, err := adminCall(ctx, addr, adminReq{Verb: verbAdopt}, data)
	if err != nil {
		return 0, err
	}
	return resp.Applied, nil
}

// PutReplica stores checkpoint bytes as a follower replica of session
// id on the node at addr. Replicas are promoted into live sessions when
// the owner dies and the ring reassigns the session here.
func PutReplica(ctx context.Context, addr, id string, data []byte) error {
	_, _, err := adminCall(ctx, addr, adminReq{Verb: verbReplica, Session: id}, data)
	return err
}

// DropSession removes a detached session (and its checkpoint) from the
// node at addr, the final step of a migration.
func DropSession(ctx context.Context, addr, id string) error {
	_, _, err := adminCall(ctx, addr, adminReq{Verb: verbDrop, Session: id}, nil)
	return err
}

// DrainNode tells the node at addr to stop owning sessions: it severs
// live connections, checkpoints and replicates every session, and
// returns the list for the coordinator to migrate.
func DrainNode(ctx context.Context, addr string) ([]SessionInfo, error) {
	resp, _, err := adminCall(ctx, addr, adminReq{Verb: verbDrain}, nil)
	if err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// ScrapeMetrics pulls the Prometheus exposition of the node at addr
// over the admin protocol (the transport behind the cluster rollup).
func ScrapeMetrics(ctx context.Context, addr string) ([]byte, error) {
	_, body, err := adminCall(ctx, addr, adminReq{Verb: verbMetrics}, nil)
	return body, err
}

// ScrapeFlight pulls the flight-recorder dump of the node at addr. A
// nonempty reason marks an incident: the node also writes a local
// flight-<reason>.jsonl copy to its flight directory.
func ScrapeFlight(ctx context.Context, addr, reason string) ([]byte, error) {
	_, body, err := adminCall(ctx, addr, adminReq{Verb: verbFlight, Reason: reason}, nil)
	return body, err
}

// withTimeout derives a context bounded by d when ctx has no earlier
// deadline.
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}
