package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/regiontrack"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
)

// SessionFormatName identifies a session checkpoint file: one session
// header line followed by an engine checkpoint (see internal/core).
const SessionFormatName = "goldilocks-session"

// SessionFormatVersion is the current session checkpoint version.
const SessionFormatVersion = 1

// sessionHeader is the first line of a session checkpoint file. Serial
// marks a serializability session: the body is then a regiontrack
// checker snapshot (which embeds the engine checkpoint) instead of a
// bare engine snapshot. The field is omitempty, so plain checkpoints
// are byte-identical to version-1 files from before the flag existed.
type sessionHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Session string `json:"session"`
	Applied uint64 `json:"applied"`
	Races   uint64 `json:"races"`
	Serial  bool   `json:"serializability,omitempty"`
}

// Config configures a detection server.
type Config struct {
	// Engine is the per-session engine configuration. Telemetry and
	// Injector are ignored: every session gets its own telemetry bundle
	// so rule-fire counts are per-session. The zero value means
	// core.DefaultOptions.
	Engine core.Options
	// Serializability, when set, runs a RegionTrack-style
	// conflict-serializability checker on top of every session's engine
	// (lock-protected spans count as atomic regions). Race verdicts are
	// unchanged; the final ack additionally carries the serializability
	// summary, and session checkpoints embed the checker's conflict
	// graph so the verdict survives restarts.
	Serializability bool
	// Queue bounds each session's ingest queue (actions decoded but not
	// yet applied). A full queue blocks the connection reader, which
	// pushes back on the producer through TCP flow control instead of
	// buffering without bound. Default 256.
	Queue int
	// Batch is how many queued actions the session worker applies
	// before flushing pending verdicts to the client. Default 64.
	Batch int
	// CheckpointDir, when set, is where Close persists every session's
	// engine state, and where New restores sessions from. Empty
	// disables persistence.
	CheckpointDir string
	// Registry, when set, receives the daemon and per-session metrics
	// (serve it with obs.Serve).
	Registry *obs.Registry
	// Logger, when set, receives one structured record per lifecycle
	// event. Nil means discard.
	Logger *slog.Logger
	// Tracer, when set, samples ingest records into pipeline spans and
	// observes per-stage latency (queue wait, apply, verdict flush,
	// checkpoint write) into its histograms, which New registers in
	// Registry under goldilocksd_stage_*. Nil disables tracing at zero
	// cost. Records arriving with a client-stamped span id are always
	// timed; the server additionally samples unstamped records through
	// Tracer so server-side stages fill in even with untraced clients.
	Tracer *obs.Tracer
	// Flight, when set, records lifecycle events (attach/detach,
	// redirects, promotions, quarantines, rung escalations, sampled rule
	// fires) into a bounded ring dumped on incidents. Nil disables.
	Flight *obs.FlightRecorder
	// FlightDir, when set with Flight, is where incident-triggered dumps
	// (panic quarantine, checkpoint corruption) are written as
	// flight-<reason>.jsonl.
	FlightDir string

	// Advertise is this node's address as cluster peers and clients
	// should reach it (cluster mode; defaults to the bound address).
	Advertise string
	// Router, when set, makes this node part of a cluster: a session
	// attach for a session this node does not own is refused with a
	// NOT_OWNER redirect to the owner. Nil means standalone.
	Router Router
	// ReplicaDir, when set, is where follower replicas of other nodes'
	// session checkpoints are stored (admin "replica" verb). An attach
	// for a session this node owns but does not hold live is promoted
	// from its replica, resuming from the replicated applied prefix.
	ReplicaDir string
	// CheckpointEvery, when positive, checkpoints each session every N
	// applied actions — in addition to the shutdown checkpoint — so a
	// node death loses at most the suffix past the last checkpoint
	// (which the client re-streams idempotently).
	CheckpointEvery int
	// OnCheckpoint, when set, receives every durably written session
	// checkpoint (id, applied count, serialized bytes). The cluster
	// node mirrors the bytes to the session's follower nodes.
	OnCheckpoint func(id string, applied uint64, data []byte)
	// OnDrain, when set, is called when the admin drain verb arrives,
	// before sessions are severed and checkpointed (the cluster node
	// excludes itself from the ring and starts redirecting).
	OnDrain func()
	// Injector, when set, injects faults into checkpoint writes
	// (resilience testing: torn writes via TruncateTraceBytes).
	Injector *resilience.Injector
}

// Router decides which node owns a session (cluster mode). Route
// returns the owner's advertised address and whether this node is the
// owner.
type Router interface {
	Route(session string) (owner string, self bool)
}

// Server is a running detection service.
type Server struct {
	cfg      Config
	ln       net.Listener
	wg       sync.WaitGroup
	draining atomic.Bool

	mu          sync.Mutex
	closing     bool
	sessions    map[string]*session
	conns       map[net.Conn]struct{}
	quarantined []Quarantined

	connsTotal    *obs.Counter
	sessionsTotal *obs.Counter
	ckptsWritten  *obs.Counter
	ckptsRestored *obs.Counter
	ckptsQuarant  *obs.Counter
	replicasHeld  *obs.Counter
	promotions    *obs.Counter
	adoptions     *obs.Counter
	redirects     *obs.Counter
	flightDumps   *obs.Counter
}

// session is one client session: a detection engine plus its progress
// counters. It outlives connections — a client that disconnects (or a
// daemon that restarts with a checkpoint directory) can resume where it
// left off.
type session struct {
	id  string
	eng *core.Engine
	tel *obs.Telemetry
	// rt, when non-nil (Config.Serializability), is the serializability
	// checker wrapping eng; eng is then rt.Engine() and every action
	// steps through rt so the conflict graph stays consistent.
	rt *regiontrack.Checker

	attached bool     // guarded by Server.mu: at most one connection at a time
	conn     net.Conn // guarded by Server.mu: the live connection while attached

	applied atomic.Uint64 // actions applied; also the next global position
	races   atomic.Uint64

	qmu         sync.Mutex
	queue       chan item // live while attached (read by the queue-depth gauge)
	queueClosed bool      // set (under qmu) before the queue is closed

	// Worker-local governor watermarks: the last degradation rung and
	// quarantine count seen, so the flight recorder logs each escalation
	// and quarantine exactly once. Touched only by the session worker.
	lastRung resilience.DegradationRung
	lastQuar uint64
}

// item is one unit of session work: an event record or a control token.
type item struct {
	a      event.Action
	ctl    string          // "" for records
	errMsg string          // with ctl == "err"
	ckpt   chan ckptResult // with ctl == ctlCkpt: reply channel

	span uint64    // nonzero: this record is a sampled trace span
	enq  time.Time // enqueue time, set only for sampled records
}

// ctlCkpt is an internal control item: the session worker checkpoints
// the engine between batches and replies on the item's channel. It is
// how a live session is checkpointed with zero verdicts lost.
const ctlCkpt = "ckpt"

// ckptResult is the session worker's reply to a ctlCkpt item.
type ckptResult struct {
	data    []byte
	applied uint64
	err     error
}

func (s *session) setQueue(q chan item) {
	s.qmu.Lock()
	s.queue = q
	s.queueClosed = false
	s.qmu.Unlock()
}

// markQueueClosed flags the queue as closing so concurrent tryEnqueue
// calls stop using it; the caller closes the channel after this
// returns.
func (s *session) markQueueClosed() {
	s.qmu.Lock()
	s.queueClosed = true
	s.qmu.Unlock()
}

// tryEnqueue delivers an item to the session worker if the session is
// attached with a live queue. The send happens under qmu, which is safe
// against close: the closer must take qmu to mark the queue closed
// first, and the worker keeps draining until then.
func (s *session) tryEnqueue(it item) bool {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.queue == nil || s.queueClosed {
		return false
	}
	s.queue <- it
	return true
}

// step applies one action through the session's detector stack: the
// serializability checker when configured (it forwards to the engine),
// the bare engine otherwise.
func (s *session) step(a event.Action) []detect.Race {
	if s.rt != nil {
		return s.rt.Step(a)
	}
	return s.eng.Step(a)
}

func (s *session) queueDepth() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.queue)
}

// New starts a detection server listening on addr (port 0 picks a free
// port). If cfg.CheckpointDir is set, sessions checkpointed by a
// previous instance are restored before the listener opens.
func New(addr string, cfg Config) (*Server, error) {
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Engine == (core.Options{}) {
		cfg.Engine = core.DefaultOptions()
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	s := &Server{
		cfg:      cfg,
		sessions: make(map[string]*session),
		conns:    make(map[net.Conn]struct{}),
	}
	if reg := cfg.Registry; reg != nil {
		s.connsTotal = reg.Counter("goldilocksd_connections_total")
		s.sessionsTotal = reg.Counter("goldilocksd_sessions_total")
		s.ckptsWritten = reg.Counter("goldilocksd_checkpoints_written_total")
		s.ckptsRestored = reg.Counter("goldilocksd_checkpoints_restored_total")
		s.ckptsQuarant = reg.Counter("goldilocksd_checkpoints_quarantined_total")
		s.replicasHeld = reg.Counter("goldilocksd_replicas_received_total")
		s.promotions = reg.Counter("goldilocksd_sessions_promoted_total")
		s.adoptions = reg.Counter("goldilocksd_sessions_adopted_total")
		s.redirects = reg.Counter("goldilocksd_redirects_total")
		cfg.Tracer.Register(reg, "goldilocksd")
		if cfg.Flight != nil {
			s.flightDumps = reg.Counter("goldilocksd_flight_dumps_total")
			reg.RegisterGaugeFunc("goldilocksd_flight_events", func() float64 {
				return float64(cfg.Flight.Len())
			})
		}
		reg.RegisterGaugeFunc("goldilocksd_sessions_active", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, sess := range s.sessions {
				if sess.attached {
					n++
				}
			}
			return float64(n)
		})
	}
	if cfg.CheckpointDir != "" {
		if err := s.restoreSessions(); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	if s.cfg.Advertise == "" {
		s.cfg.Advertise = ln.Addr().String()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:7777".
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if s.connsTotal != nil {
			s.connsTotal.Inc()
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// validSessionID keeps session ids filesystem- and metrics-label-safe.
func validSessionID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// notOwnerError is attach's refusal in cluster mode: the session hashes
// to another node, whose advertised address the client should redial.
type notOwnerError struct{ owner string }

func (e *notOwnerError) Error() string {
	if e.owner == "" {
		return "not the session owner (owner unknown)"
	}
	return "not the session owner (owner " + e.owner + ")"
}

// attach finds or creates the session and claims it for this
// connection. existed reports whether the session predates this attach
// (the client must then resume from session.applied). In cluster mode
// an attach for a session owned elsewhere fails with *notOwnerError,
// and a session owned here but not held live is promoted from its
// follower replica when one exists.
func (s *Server) attach(id string, conn net.Conn) (sess *session, existed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, false, errors.New("server shutting down")
	}
	if r := s.cfg.Router; r != nil {
		if owner, self := r.Route(id); !self {
			return nil, false, &notOwnerError{owner: owner}
		}
	}
	sess, existed = s.sessions[id]
	if !existed {
		if promoted := s.promoteReplicaLocked(id); promoted != nil {
			sess, existed = promoted, true
		} else {
			sess = s.newSessionLocked(id)
		}
	}
	if sess.attached {
		return nil, false, fmt.Errorf("session %q already has a live connection", id)
	}
	sess.attached = true
	sess.conn = conn
	return sess, existed, nil
}

// newSessionLocked creates a session and registers its metrics. Caller
// holds s.mu.
func (s *Server) newSessionLocked(id string) *session {
	tel := obs.NewTelemetry()
	opts := s.cfg.Engine
	opts.Telemetry = tel
	opts.Injector = nil
	sess := &session{id: id, tel: tel}
	if s.cfg.Serializability {
		sess.rt = regiontrack.New(regiontrack.Options{Engine: opts, LockRegions: true})
		sess.eng = sess.rt.Engine()
	} else {
		sess.eng = core.NewEngine(opts)
	}
	s.sessions[id] = sess
	s.registerSessionMetrics(sess)
	if s.sessionsTotal != nil {
		s.sessionsTotal.Inc()
	}
	return sess
}

func (s *Server) registerSessionMetrics(sess *session) {
	reg := s.cfg.Registry
	if reg == nil {
		return
	}
	label := fmt.Sprintf("{session=%q}", sess.id)
	reg.RegisterGaugeFunc("goldilocksd_session_applied_total"+label, func() float64 {
		return float64(sess.applied.Load())
	})
	reg.RegisterGaugeFunc("goldilocksd_session_races_total"+label, func() float64 {
		return float64(sess.races.Load())
	})
	reg.RegisterGaugeFunc("goldilocksd_session_queue_depth"+label, func() float64 {
		return float64(sess.queueDepth())
	})
	reg.RegisterGaugeFunc("goldilocksd_session_list_len"+label, func() float64 {
		return float64(sess.eng.ListLen())
	})
}

// unregisterSessionMetrics drops a migrated-away session's gauges so
// the scrape stops reporting state this node no longer holds.
func (s *Server) unregisterSessionMetrics(id string) {
	reg := s.cfg.Registry
	if reg == nil {
		return
	}
	label := fmt.Sprintf("{session=%q}", id)
	for _, name := range []string{
		"goldilocksd_session_applied_total", "goldilocksd_session_races_total",
		"goldilocksd_session_queue_depth", "goldilocksd_session_list_len",
	} {
		reg.Unregister(name + label)
	}
}

func (s *Server) detach(sess *session) {
	s.mu.Lock()
	sess.attached = false
	sess.conn = nil
	s.mu.Unlock()
	sess.setQueue(nil)
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handleConn speaks the protocol on one connection: handshake, stream
// header, then records and controls. Decoded work goes to a bounded
// queue drained by the session worker; when the queue is full this
// reader blocks, which is the backpressure path (the producer's writes
// stall on TCP flow control rather than the daemon buffering without
// bound).
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	defer s.dropConn(conn)

	br := bufio.NewReaderSize(conn, 64*1024)
	bw := bufio.NewWriterSize(conn, 64*1024)

	writeWelcome := func(w welcome) {
		b, _ := json.Marshal(w)
		bw.Write(append(b, '\n'))
		bw.Flush()
	}

	line, err := readLine(br)
	if err != nil {
		return
	}
	var h hello
	if err := json.Unmarshal(line, &h); err != nil || (h.Proto != ProtoName && h.Proto != AdminProtoName) {
		writeWelcome(welcome{Error: "not a " + ProtoName + " handshake"})
		return
	}
	if h.Proto == AdminProtoName {
		var req adminReq
		if err := json.Unmarshal(line, &req); err != nil {
			writeWelcome(welcome{Error: "bad admin request"})
			return
		}
		s.handleAdmin(req, br, bw)
		return
	}
	if h.Version != ProtoVersion {
		writeWelcome(welcome{Error: fmt.Sprintf("unsupported protocol version %d", h.Version)})
		return
	}
	if !validSessionID(h.Session) {
		writeWelcome(welcome{Error: "invalid session id (want [A-Za-z0-9._-]{1,64})"})
		return
	}
	format := pickWireFormat(h.Formats)
	sess, existed, err := s.attach(h.Session, conn)
	if err != nil {
		var noe *notOwnerError
		if errors.As(err, &noe) {
			if s.redirects != nil {
				s.redirects.Inc()
			}
			s.flight("redirect", h.Session, "owner "+noe.owner)
			writeWelcome(welcome{Error: err.Error(), NotOwner: true, Owner: noe.owner})
			return
		}
		writeWelcome(welcome{Error: err.Error()})
		return
	}
	defer s.detach(sess)
	w := welcome{OK: true, Resumed: existed, Next: sess.applied.Load()}
	if format == WireFormatBinary {
		// Named only when it deviates from the default, so the welcome a
		// pre-negotiation client sees is byte-identical to before.
		w.Format = format
	}
	writeWelcome(w)
	s.cfg.Logger.Info("session attached", "component", "server", "session", sess.id,
		"resumed", existed, "next", sess.applied.Load(), "format", format)
	s.flight("attach", sess.id, fmt.Sprintf("resumed=%v next=%d format=%s", existed, sess.applied.Load(), format))

	var enc wireEncoder
	var frames *event.FrameReader
	if format == WireFormatBinary {
		enc = &binWire{bw: bw}
		frames = event.NewFrameReader(br)
		// The client opens its stream with the binary header frame.
		typ, body, err := frames.Next()
		if err != nil || typ != event.FrameHeader {
			enc.errMsg(fmt.Sprintf("expected binary stream header frame, got %v", err))
			enc.flush()
			return
		}
		if err := event.CheckBinHeader(body); err != nil {
			enc.errMsg(err.Error())
			enc.flush()
			return
		}
	} else {
		enc = &jsonWire{bw: bw}
		// The client opens its stream with the standard trace header.
		line, err = readLine(br)
		if err != nil {
			return
		}
		if err := event.CheckStreamHeader(line); err != nil {
			enc.errMsg(err.Error())
			enc.flush()
			return
		}
	}

	queue := make(chan item, s.cfg.Queue)
	sess.setQueue(queue)
	// Seed the governor watermarks before the worker starts so a
	// restored or promoted session's pre-existing rung/quarantine state
	// is not re-reported as a fresh transition.
	sess.lastRung = sess.eng.Rung()
	sess.lastQuar = sess.eng.VarsQuarantined()
	workerDone := make(chan struct{})
	go s.sessionWorker(sess, queue, enc, workerDone)

	// closeQueue marks the queue closed (so admin tryEnqueue stops
	// delivering) before closing the channel the worker drains.
	closeQueue := func() {
		sess.markQueueClosed()
		close(queue)
		<-workerDone
	}
	if format == WireFormatBinary {
		s.readFrames(sess, frames, queue, closeQueue)
		return
	}
	for {
		line, err := readLine(br)
		if err != nil {
			// Connection dropped without a close control: the session
			// stays resumable.
			closeQueue()
			s.cfg.Logger.Info("session connection lost", "component", "server",
				"session", sess.id, "applied", sess.applied.Load())
			s.flight("detach", sess.id, fmt.Sprintf("connection lost at %d applied", sess.applied.Load()))
			return
		}
		var ctl ctlMsg
		if err := json.Unmarshal(line, &ctl); err == nil && ctl.Ctl != "" {
			switch ctl.Ctl {
			case ctlFlush:
				queue <- item{ctl: ctlFlush}
				continue
			case ctlClose:
				queue <- item{ctl: ctlClose}
				closeQueue()
				s.cfg.Logger.Info("session closed", "component", "server", "session", sess.id,
					"applied", sess.applied.Load(), "races", sess.races.Load())
				s.flight("close", sess.id, fmt.Sprintf("%d applied, %d races", sess.applied.Load(), sess.races.Load()))
				return
			default:
				queue <- item{ctl: "err", errMsg: fmt.Sprintf("unknown control %q", ctl.Ctl)}
				closeQueue()
				return
			}
		}
		a, span, ok := event.DecodeRecordSpan(line)
		if !ok {
			queue <- item{ctl: "err", errMsg: fmt.Sprintf("corrupt event record (checksum or syntax): %.120q", line)}
			closeQueue()
			return
		}
		it := item{a: a, span: span}
		if span == 0 && s.cfg.Tracer.Sample() {
			// Untraced client: sample server-side so the queue/apply/
			// flush histograms still fill in.
			it.span = s.cfg.Tracer.NextSpan()
		}
		if it.span != 0 {
			it.enq = time.Now()
		}
		queue <- it
	}
}

// readFrames is the binary-protocol ingest loop: the frame-stream
// counterpart of handleConn's line loop, with identical queue,
// control, and teardown semantics.
func (s *Server) readFrames(sess *session, frames *event.FrameReader, queue chan item, closeQueue func()) {
	for {
		typ, body, err := frames.Next()
		if err != nil {
			if err == io.EOF {
				// Connection dropped without a close control: the session
				// stays resumable.
				closeQueue()
				s.cfg.Logger.Info("session connection lost", "component", "server",
					"session", sess.id, "applied", sess.applied.Load())
				s.flight("detach", sess.id, fmt.Sprintf("connection lost at %d applied", sess.applied.Load()))
				return
			}
			queue <- item{ctl: "err", errMsg: fmt.Sprintf("corrupt event frame: %v", err)}
			closeQueue()
			return
		}
		switch typ {
		case event.FrameCtl:
			verb := byte(0)
			if len(body) == 1 {
				verb = body[0]
			}
			switch verb {
			case binCtlFlush:
				queue <- item{ctl: ctlFlush}
				continue
			case binCtlClose:
				queue <- item{ctl: ctlClose}
				closeQueue()
				s.cfg.Logger.Info("session closed", "component", "server", "session", sess.id,
					"applied", sess.applied.Load(), "races", sess.races.Load())
				s.flight("close", sess.id, fmt.Sprintf("%d applied, %d races", sess.applied.Load(), sess.races.Load()))
				return
			default:
				queue <- item{ctl: "err", errMsg: fmt.Sprintf("unknown binary control %d", verb)}
				closeQueue()
				return
			}
		case event.FrameEvent:
			a, span, derr := event.DecodeEventFrame(body)
			if derr != nil {
				queue <- item{ctl: "err", errMsg: fmt.Sprintf("corrupt event frame: %v", derr)}
				closeQueue()
				return
			}
			it := item{a: a, span: span}
			if span == 0 && s.cfg.Tracer.Sample() {
				// Untraced client: sample server-side so the queue/apply/
				// flush histograms still fill in.
				it.span = s.cfg.Tracer.NextSpan()
			}
			if it.span != 0 {
				it.enq = time.Now()
			}
			queue <- it
		default:
			queue <- item{ctl: "err", errMsg: fmt.Sprintf("unexpected frame type 0x%02x", typ)}
			closeQueue()
			return
		}
	}
}

// sessionWorker drains the ingest queue, applies actions to the
// session engine in batches, and pushes verdicts and acks back to the
// client through the connection's negotiated wire encoder. It is the
// only goroutine touching the engine or the encoder while attached.
func (s *Server) sessionWorker(sess *session, queue chan item, enc wireEncoder, done chan struct{}) {
	defer close(done)
	sinceFlush := 0
	tracedInBatch := false
	// flush pushes buffered verdicts to the client; when the batch held
	// a traced record, the flush latency lands in the verdict_flush
	// histogram — on whichever path drained it (batch boundary, idle
	// queue, or a client flush/close control).
	flush := func() {
		if tracedInBatch {
			start := time.Now()
			enc.flush()
			s.cfg.Tracer.Observe(obs.StageVerdictFlush, time.Since(start))
			tracedInBatch = false
		} else {
			enc.flush()
		}
		sinceFlush = 0
	}
	for it := range queue {
		switch it.ctl {
		case "":
			traced := it.span != 0
			var applyStart time.Time
			var firesBefore [obs.NumRules + 1]uint64
			if traced {
				s.cfg.Tracer.Observe(obs.StageQueueWait, time.Since(it.enq))
				if s.cfg.Flight != nil {
					firesBefore = sess.tel.RuleFires()
				}
				applyStart = time.Now()
			}
			pos := sess.applied.Load()
			races := sess.step(it.a)
			if traced {
				s.cfg.Tracer.Observe(obs.StageApply, time.Since(applyStart))
				tracedInBatch = true
				if s.cfg.Flight != nil {
					// Sampled rule fires: log which lockset rules this
					// traced record triggered.
					after := sess.tel.RuleFires()
					for i := 1; i <= obs.NumRules; i++ {
						if after[i] > firesBefore[i] {
							s.cfg.Flight.Record(obs.FlightEvent{
								Component: "server", Kind: "rule-fire", Session: sess.id,
								Span:   it.span,
								Detail: fmt.Sprintf("%s x%d at %d", obs.RuleName(i), after[i]-firesBefore[i], pos),
							})
						}
					}
				}
			}
			for _, r := range races {
				sess.races.Add(1)
				wr, err := encodeRace(r, pos)
				if err != nil {
					enc.errMsg(err.Error())
					continue
				}
				enc.race(wr)
			}
			n := sess.applied.Add(1)
			sinceFlush++
			if sinceFlush >= s.cfg.Batch || len(queue) == 0 {
				// Batched progress ack: the binary protocol volunteers the
				// applied watermark with each batch flush, so clients track
				// progress without control round trips (no-op under JSON).
				enc.progress(n, sess.races.Load())
				flush()
				s.observeGovernor(sess)
			}
			if every := s.cfg.CheckpointEvery; every > 0 && n%uint64(every) == 0 {
				// The worker is the only goroutine touching the engine,
				// so it is quiescent here: checkpoint, persist, and hand
				// the bytes to the replication hook.
				if err := s.checkpointAndReplicate(sess); err != nil {
					s.cfg.Logger.Warn("periodic checkpoint failed", "component", "server",
						"session", sess.id, "err", err)
				}
			}
		case ctlCkpt:
			data, err := sessionSnapshotBytes(sess)
			it.ckpt <- ckptResult{data: data, applied: sess.applied.Load(), err: err}
		case ctlFlush:
			enc.ack(&wireAck{Applied: sess.applied.Load(), Races: sess.races.Load()}, true)
			flush()
		case ctlClose:
			stats := sess.eng.Stats()
			fires := sess.tel.RuleFires()
			ack := &wireAck{
				Applied: sess.applied.Load(), Races: sess.races.Load(),
				Final: true, Stats: &stats, RuleFires: fires[:],
			}
			if sess.rt != nil {
				sum := sess.rt.Summarize()
				ack.Serial = &sum
			}
			enc.ack(ack, true)
			flush()
		case "err":
			enc.errMsg(it.errMsg)
			flush()
		}
	}
}

// readLine reads one newline-terminated line without the terminator.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	return line[:len(line)-1], nil
}

// Close stops accepting connections, severs live ones, waits for every
// session worker to drain, and — with a checkpoint directory configured
// — persists every session so a future instance can resume them. The
// returned error aggregates checkpoint failures.
func (s *Server) Close() error {
	if !s.shutdownConns() {
		return nil
	}
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	var errs []error
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		if err := s.checkpointSession(sess); err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", sess.id, err))
		} else {
			s.cfg.Logger.Info("session checkpointed", "component", "server",
				"session", sess.id, "applied", sess.applied.Load())
		}
	}
	return errors.Join(errs...)
}

// flight records one lifecycle event into the configured flight
// recorder (nil-safe no-op without one).
func (s *Server) flight(kind, session, detail string) {
	s.cfg.Flight.Event("server", kind, session, detail)
}

// observeGovernor flight-records engine governor transitions — rung
// escalations/recoveries and new panic quarantines — comparing against
// the session's worker-local watermarks. A fresh quarantine is an
// incident: it also triggers an automatic flight dump. Called from the
// session worker between batches.
func (s *Server) observeGovernor(sess *session) {
	if s.cfg.Flight == nil {
		return
	}
	if rung := sess.eng.Rung(); rung != sess.lastRung {
		s.flight("rung", sess.id, fmt.Sprintf("%v -> %v", sess.lastRung, rung))
		sess.lastRung = rung
	}
	if q := sess.eng.VarsQuarantined(); q != sess.lastQuar {
		s.flight("panic-quarantine", sess.id, fmt.Sprintf("%d variables quarantined", q))
		sess.lastQuar = q
		s.autoDumpFlight("panic-quarantine")
	}
}

// DumpFlight writes the flight-recorder ring to the configured
// FlightDir as flight-<reason>.jsonl and returns the path.
func (s *Server) DumpFlight(reason string) (string, error) {
	if s.cfg.Flight == nil {
		return "", errors.New("no flight recorder configured")
	}
	if s.cfg.FlightDir == "" {
		return "", errors.New("no flight directory configured")
	}
	path, err := s.cfg.Flight.DumpToDir(s.cfg.FlightDir, s.cfg.Advertise, reason)
	if err != nil {
		return "", err
	}
	if s.flightDumps != nil {
		s.flightDumps.Inc()
	}
	s.cfg.Logger.Info("flight recorder dumped", "component", "server",
		"reason", reason, "path", path)
	return path, nil
}

// autoDumpFlight is the incident-trigger path of DumpFlight:
// best-effort, silently a no-op unless both Flight and FlightDir are
// configured.
func (s *Server) autoDumpFlight(reason string) {
	if s.cfg.Flight == nil || s.cfg.FlightDir == "" {
		return
	}
	if _, err := s.DumpFlight(reason); err != nil {
		s.cfg.Logger.Warn("flight dump failed", "component", "server",
			"reason", reason, "err", err)
	}
}

// sessionSnapshotBytes serializes a session checkpoint — the session
// header line followed by the engine snapshot — into memory. The
// engine must be quiescent (worker context, or a claimed detached
// session).
func sessionSnapshotBytes(sess *session) ([]byte, error) {
	hdr, err := json.Marshal(sessionHeader{
		Format: SessionFormatName, Version: SessionFormatVersion,
		Session: sess.id, Applied: sess.applied.Load(), Races: sess.races.Load(),
		Serial: sess.rt != nil,
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(append(hdr, '\n'))
	if sess.rt != nil {
		// The checker snapshot embeds the engine checkpoint, so one body
		// round-trips both the lockset state and the conflict graph.
		if err := sess.rt.Checkpoint(&buf); err != nil {
			return nil, err
		}
	} else if err := sess.eng.Checkpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeDurable writes dir/<name> atomically and durably: temp file,
// fsync the data, rename, fsync the directory — a snapshot that
// survives power loss, not just a process crash. The configured fault
// injector can tear the data write (resilience testing).
func (s *Server) writeDurable(dir, name string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	w := s.cfg.Injector.WrapTraceWriter(tmp)
	if _, err := w.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// checkpointSession writes dir/<id>.ckpt atomically and durably.
func (s *Server) checkpointSession(sess *session) error {
	data, err := sessionSnapshotBytes(sess)
	if err != nil {
		return err
	}
	return s.persistCheckpoint(sess.id, data)
}

// persistCheckpoint durably writes a serialized session checkpoint to
// the checkpoint directory.
func (s *Server) persistCheckpoint(id string, data []byte) error {
	if err := s.writeDurable(s.cfg.CheckpointDir, id+".ckpt", data); err != nil {
		return err
	}
	if s.ckptsWritten != nil {
		s.ckptsWritten.Inc()
	}
	return nil
}

// checkpointAndReplicate snapshots a session, persists it when a
// checkpoint directory is configured, and hands the bytes to the
// replication hook. Called from the session worker (engine quiescent)
// and from Drain.
func (s *Server) checkpointAndReplicate(sess *session) error {
	start := time.Now()
	data, err := sessionSnapshotBytes(sess)
	if err != nil {
		return err
	}
	if s.cfg.CheckpointDir != "" {
		if err := s.persistCheckpoint(sess.id, data); err != nil {
			return err
		}
	}
	// Checkpoints are rare (every CheckpointEvery actions), so every one
	// is observed rather than sampled.
	s.cfg.Tracer.Observe(obs.StageCheckpointWrite, time.Since(start))
	s.flight("checkpoint", sess.id, fmt.Sprintf("%d bytes at %d applied", len(data), sess.applied.Load()))
	if s.cfg.OnCheckpoint != nil {
		s.cfg.OnCheckpoint(sess.id, sess.applied.Load(), data)
	}
	return nil
}

// Quarantined describes a checkpoint that could not be restored at
// startup (or a replica that could not be promoted): the session is
// set aside — file moved to the quarantine subdirectory, structured
// report recorded — instead of aborting the daemon and taking every
// healthy session down with it.
type Quarantined struct {
	Session string             `json:"session"`
	Path    string             `json:"path"` // where the bad file was moved
	Report  *resilience.Report `json:"report"`
}

// Quarantined returns the checkpoints set aside as corrupt, in the
// order they were found.
func (s *Server) Quarantined() []Quarantined {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Quarantined(nil), s.quarantined...)
}

// quarantineCheckpoint moves a bad checkpoint file into the quarantine
// subdirectory beside it and records a structured report. Callers hold
// no locks.
func (s *Server) quarantineCheckpoint(path, sessionID string, cause error) {
	qdir := filepath.Join(filepath.Dir(path), "quarantine")
	dest := filepath.Join(qdir, filepath.Base(path))
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if err := os.Rename(path, dest); err != nil {
			dest = path // leave it where it is; still quarantined in memory
		}
	} else {
		dest = path
	}
	q := Quarantined{
		Session: sessionID,
		Path:    dest,
		Report: &resilience.Report{
			Kind:   resilience.Corruption,
			Detail: fmt.Sprintf("session %s: checkpoint %s: %v", sessionID, filepath.Base(path), cause),
		},
	}
	s.mu.Lock()
	s.quarantined = append(s.quarantined, q)
	s.mu.Unlock()
	if s.ckptsQuarant != nil {
		s.ckptsQuarant.Inc()
	}
	s.cfg.Logger.Warn("checkpoint quarantined", "component", "server",
		"session", sessionID, "path", dest, "err", cause)
	s.flight("checkpoint-quarantine", sessionID, fmt.Sprintf("%s: %v", dest, cause))
	s.autoDumpFlight("checkpoint-corruption")
}

// restoreSessions loads every session checkpoint in the configured
// directory. A corrupt or torn checkpoint quarantines that one session
// — the file is moved aside and a structured resilience report is
// recorded — rather than aborting daemon startup: one bad snapshot
// must not take every healthy session down with it.
func (s *Server) restoreSessions() error {
	entries, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		path := filepath.Join(s.cfg.CheckpointDir, e.Name())
		sess, err := loadSessionFile(path)
		if err != nil {
			s.quarantineCheckpoint(path, strings.TrimSuffix(e.Name(), ".ckpt"), err)
			continue
		}
		s.mu.Lock()
		s.sessions[sess.id] = sess
		s.registerSessionMetrics(sess)
		s.mu.Unlock()
		if s.ckptsRestored != nil {
			s.ckptsRestored.Inc()
		}
		s.cfg.Logger.Info("session restored", "component", "server", "session", sess.id,
			"applied", sess.applied.Load(), "races", sess.races.Load())
		s.flight("restore", sess.id, fmt.Sprintf("%d applied, %d races", sess.applied.Load(), sess.races.Load()))
	}
	return nil
}

// loadSessionFile reads one session checkpoint file into a detached
// session. It takes no locks; the caller registers the session.
func loadSessionFile(path string) (*session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return loadSession(bufio.NewReaderSize(f, 64*1024))
}

// loadSession decodes a session checkpoint (header line + engine
// snapshot) from r.
func loadSession(br *bufio.Reader) (*session, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("reading session header: %w", err)
	}
	var hdr sessionHeader
	if err := json.Unmarshal(line, &hdr); err != nil || hdr.Format != SessionFormatName {
		return nil, fmt.Errorf("not a %s checkpoint", SessionFormatName)
	}
	if hdr.Version != SessionFormatVersion {
		return nil, fmt.Errorf("unsupported session checkpoint version %d", hdr.Version)
	}
	if !validSessionID(hdr.Session) {
		return nil, fmt.Errorf("invalid session id %q", hdr.Session)
	}
	tel := obs.NewTelemetry()
	sess := &session{id: hdr.Session, tel: tel}
	if hdr.Serial {
		rt, err := regiontrack.Restore(br, core.RestoreAttach{Telemetry: tel})
		if err != nil {
			return nil, err
		}
		sess.rt, sess.eng = rt, rt.Engine()
	} else {
		eng, err := core.RestoreEngine(br, core.RestoreAttach{Telemetry: tel})
		if err != nil {
			return nil, err
		}
		sess.eng = eng
	}
	sess.applied.Store(hdr.Applied)
	sess.races.Store(hdr.Races)
	return sess, nil
}
