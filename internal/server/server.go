package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"goldilocks/internal/core"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
)

// SessionFormatName identifies a session checkpoint file: one session
// header line followed by an engine checkpoint (see internal/core).
const SessionFormatName = "goldilocks-session"

// SessionFormatVersion is the current session checkpoint version.
const SessionFormatVersion = 1

// sessionHeader is the first line of a session checkpoint file.
type sessionHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Session string `json:"session"`
	Applied uint64 `json:"applied"`
	Races   uint64 `json:"races"`
}

// Config configures a detection server.
type Config struct {
	// Engine is the per-session engine configuration. Telemetry and
	// Injector are ignored: every session gets its own telemetry bundle
	// so rule-fire counts are per-session. The zero value means
	// core.DefaultOptions.
	Engine core.Options
	// Queue bounds each session's ingest queue (actions decoded but not
	// yet applied). A full queue blocks the connection reader, which
	// pushes back on the producer through TCP flow control instead of
	// buffering without bound. Default 256.
	Queue int
	// Batch is how many queued actions the session worker applies
	// before flushing pending verdicts to the client. Default 64.
	Batch int
	// CheckpointDir, when set, is where Close persists every session's
	// engine state, and where New restores sessions from. Empty
	// disables persistence.
	CheckpointDir string
	// Registry, when set, receives the daemon and per-session metrics
	// (serve it with obs.Serve).
	Registry *obs.Registry
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// Server is a running detection service.
type Server struct {
	cfg Config
	ln  net.Listener
	wg  sync.WaitGroup

	mu       sync.Mutex
	closing  bool
	sessions map[string]*session
	conns    map[net.Conn]struct{}

	connsTotal    *obs.Counter
	sessionsTotal *obs.Counter
	ckptsWritten  *obs.Counter
	ckptsRestored *obs.Counter
}

// session is one client session: a detection engine plus its progress
// counters. It outlives connections — a client that disconnects (or a
// daemon that restarts with a checkpoint directory) can resume where it
// left off.
type session struct {
	id  string
	eng *core.Engine
	tel *obs.Telemetry

	attached bool // guarded by Server.mu: at most one connection at a time

	applied atomic.Uint64 // actions applied; also the next global position
	races   atomic.Uint64

	qmu   sync.Mutex
	queue chan item // live while attached (read by the queue-depth gauge)
}

// item is one unit of session work: an event record or a control token.
type item struct {
	a      event.Action
	ctl    string // "" for records
	errMsg string // with ctl == "err"
}

func (s *session) setQueue(q chan item) {
	s.qmu.Lock()
	s.queue = q
	s.qmu.Unlock()
}

func (s *session) queueDepth() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.queue)
}

// New starts a detection server listening on addr (port 0 picks a free
// port). If cfg.CheckpointDir is set, sessions checkpointed by a
// previous instance are restored before the listener opens.
func New(addr string, cfg Config) (*Server, error) {
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Engine == (core.Options{}) {
		cfg.Engine = core.DefaultOptions()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:      cfg,
		sessions: make(map[string]*session),
		conns:    make(map[net.Conn]struct{}),
	}
	if reg := cfg.Registry; reg != nil {
		s.connsTotal = reg.Counter("goldilocksd_connections_total")
		s.sessionsTotal = reg.Counter("goldilocksd_sessions_total")
		s.ckptsWritten = reg.Counter("goldilocksd_checkpoints_written_total")
		s.ckptsRestored = reg.Counter("goldilocksd_checkpoints_restored_total")
		reg.RegisterGaugeFunc("goldilocksd_sessions_active", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, sess := range s.sessions {
				if sess.attached {
					n++
				}
			}
			return float64(n)
		})
	}
	if cfg.CheckpointDir != "" {
		if err := s.restoreSessions(); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:7777".
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if s.connsTotal != nil {
			s.connsTotal.Inc()
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// validSessionID keeps session ids filesystem- and metrics-label-safe.
func validSessionID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// attach finds or creates the session and claims it for this
// connection. existed reports whether the session predates this attach
// (the client must then resume from session.applied).
func (s *Server) attach(id string) (sess *session, existed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, false, errors.New("server shutting down")
	}
	sess, existed = s.sessions[id]
	if !existed {
		sess = s.newSessionLocked(id)
	}
	if sess.attached {
		return nil, false, fmt.Errorf("session %q already has a live connection", id)
	}
	sess.attached = true
	return sess, existed, nil
}

// newSessionLocked creates a session and registers its metrics. Caller
// holds s.mu.
func (s *Server) newSessionLocked(id string) *session {
	tel := obs.NewTelemetry()
	opts := s.cfg.Engine
	opts.Telemetry = tel
	opts.Injector = nil
	sess := &session{id: id, eng: core.NewEngine(opts), tel: tel}
	s.sessions[id] = sess
	s.registerSessionMetrics(sess)
	if s.sessionsTotal != nil {
		s.sessionsTotal.Inc()
	}
	return sess
}

func (s *Server) registerSessionMetrics(sess *session) {
	reg := s.cfg.Registry
	if reg == nil {
		return
	}
	label := fmt.Sprintf("{session=%q}", sess.id)
	reg.RegisterGaugeFunc("goldilocksd_session_applied_total"+label, func() float64 {
		return float64(sess.applied.Load())
	})
	reg.RegisterGaugeFunc("goldilocksd_session_races_total"+label, func() float64 {
		return float64(sess.races.Load())
	})
	reg.RegisterGaugeFunc("goldilocksd_session_queue_depth"+label, func() float64 {
		return float64(sess.queueDepth())
	})
	reg.RegisterGaugeFunc("goldilocksd_session_list_len"+label, func() float64 {
		return float64(sess.eng.ListLen())
	})
}

func (s *Server) detach(sess *session) {
	s.mu.Lock()
	sess.attached = false
	s.mu.Unlock()
	sess.setQueue(nil)
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handleConn speaks the protocol on one connection: handshake, stream
// header, then records and controls. Decoded work goes to a bounded
// queue drained by the session worker; when the queue is full this
// reader blocks, which is the backpressure path (the producer's writes
// stall on TCP flow control rather than the daemon buffering without
// bound).
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	defer s.dropConn(conn)

	br := bufio.NewReaderSize(conn, 64*1024)
	bw := bufio.NewWriterSize(conn, 64*1024)

	writeWelcome := func(w welcome) {
		b, _ := json.Marshal(w)
		bw.Write(append(b, '\n'))
		bw.Flush()
	}

	line, err := readLine(br)
	if err != nil {
		return
	}
	var h hello
	if err := json.Unmarshal(line, &h); err != nil || h.Proto != ProtoName {
		writeWelcome(welcome{Error: "not a " + ProtoName + " handshake"})
		return
	}
	if h.Version != ProtoVersion {
		writeWelcome(welcome{Error: fmt.Sprintf("unsupported protocol version %d", h.Version)})
		return
	}
	if !validSessionID(h.Session) {
		writeWelcome(welcome{Error: "invalid session id (want [A-Za-z0-9._-]{1,64})"})
		return
	}
	sess, existed, err := s.attach(h.Session)
	if err != nil {
		writeWelcome(welcome{Error: err.Error()})
		return
	}
	defer s.detach(sess)
	writeWelcome(welcome{OK: true, Resumed: existed, Next: sess.applied.Load()})
	s.cfg.Logf("session %s: attached (resumed=%v, next=%d)", sess.id, existed, sess.applied.Load())

	// The client opens its stream with the standard trace header.
	line, err = readLine(br)
	if err != nil {
		return
	}
	if err := event.CheckStreamHeader(line); err != nil {
		b, _ := json.Marshal(serverMsg{Err: err.Error()})
		bw.Write(append(b, '\n'))
		bw.Flush()
		return
	}

	queue := make(chan item, s.cfg.Queue)
	sess.setQueue(queue)
	workerDone := make(chan struct{})
	go s.sessionWorker(sess, queue, bw, workerDone)

	for {
		line, err := readLine(br)
		if err != nil {
			// Connection dropped without a close control: the session
			// stays resumable.
			close(queue)
			<-workerDone
			s.cfg.Logf("session %s: connection lost at %d applied", sess.id, sess.applied.Load())
			return
		}
		var ctl ctlMsg
		if err := json.Unmarshal(line, &ctl); err == nil && ctl.Ctl != "" {
			switch ctl.Ctl {
			case ctlFlush:
				queue <- item{ctl: ctlFlush}
				continue
			case ctlClose:
				queue <- item{ctl: ctlClose}
				close(queue)
				<-workerDone
				s.cfg.Logf("session %s: closed at %d applied, %d races", sess.id, sess.applied.Load(), sess.races.Load())
				return
			default:
				queue <- item{ctl: "err", errMsg: fmt.Sprintf("unknown control %q", ctl.Ctl)}
				close(queue)
				<-workerDone
				return
			}
		}
		a, ok := event.DecodeRecord(line)
		if !ok {
			queue <- item{ctl: "err", errMsg: fmt.Sprintf("corrupt event record (checksum or syntax): %.120q", line)}
			close(queue)
			<-workerDone
			return
		}
		queue <- item{a: a}
	}
}

// sessionWorker drains the ingest queue, applies actions to the
// session engine in batches, and pushes verdicts and acks back to the
// client. It is the only goroutine touching the engine or the writer
// while attached.
func (s *Server) sessionWorker(sess *session, queue chan item, bw *bufio.Writer, done chan struct{}) {
	defer close(done)
	send := func(m serverMsg) {
		b, err := json.Marshal(m)
		if err != nil {
			return
		}
		bw.Write(append(b, '\n')) // write errors surface at Flush; best-effort
	}
	sinceFlush := 0
	for it := range queue {
		switch it.ctl {
		case "":
			pos := sess.applied.Load()
			for _, r := range sess.eng.Step(it.a) {
				sess.races.Add(1)
				wr, err := encodeRace(r, pos)
				if err != nil {
					send(serverMsg{Err: err.Error()})
					continue
				}
				send(serverMsg{Race: wr})
			}
			sess.applied.Add(1)
			sinceFlush++
			if sinceFlush >= s.cfg.Batch || len(queue) == 0 {
				bw.Flush()
				sinceFlush = 0
			}
		case ctlFlush:
			send(serverMsg{Ack: &wireAck{Applied: sess.applied.Load(), Races: sess.races.Load()}})
			bw.Flush()
			sinceFlush = 0
		case ctlClose:
			stats := sess.eng.Stats()
			fires := sess.tel.RuleFires()
			send(serverMsg{Ack: &wireAck{
				Applied: sess.applied.Load(), Races: sess.races.Load(),
				Final: true, Stats: &stats, RuleFires: fires[:],
			}})
			bw.Flush()
		case "err":
			send(serverMsg{Err: it.errMsg})
			bw.Flush()
		}
	}
}

// readLine reads one newline-terminated line without the terminator.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	return line[:len(line)-1], nil
}

// Close stops accepting connections, severs live ones, waits for every
// session worker to drain, and — with a checkpoint directory configured
// — persists every session so a future instance can resume them. The
// returned error aggregates checkpoint failures.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait() // all handlers and workers drained: sessions quiescent

	if s.cfg.CheckpointDir == "" {
		return nil
	}
	var errs []error
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		if err := s.checkpointSession(sess); err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", sess.id, err))
		} else {
			s.cfg.Logf("session %s: checkpointed at %d applied", sess.id, sess.applied.Load())
		}
	}
	return errors.Join(errs...)
}

// checkpointSession writes dir/<id>.ckpt atomically (temp + rename):
// the session header line, then the engine snapshot.
func (s *Server) checkpointSession(sess *session) error {
	if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
		return err
	}
	hdr, err := json.Marshal(sessionHeader{
		Format: SessionFormatName, Version: SessionFormatVersion,
		Session: sess.id, Applied: sess.applied.Load(), Races: sess.races.Load(),
	})
	if err != nil {
		return err
	}
	final := filepath.Join(s.cfg.CheckpointDir, sess.id+".ckpt")
	tmp, err := os.CreateTemp(s.cfg.CheckpointDir, sess.id+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(hdr, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := sess.eng.Checkpoint(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	if s.ckptsWritten != nil {
		s.ckptsWritten.Inc()
	}
	return nil
}

// restoreSessions loads every session checkpoint in the configured
// directory. A corrupt checkpoint fails server startup: silently
// restarting a session from nothing would produce divergent verdicts.
func (s *Server) restoreSessions() error {
	entries, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		path := filepath.Join(s.cfg.CheckpointDir, e.Name())
		if err := s.restoreSession(path); err != nil {
			return fmt.Errorf("restoring %s: %w", path, err)
		}
	}
	return nil
}

func (s *Server) restoreSession(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64*1024)
	line, err := readLine(br)
	if err != nil {
		return fmt.Errorf("reading session header: %w", err)
	}
	var hdr sessionHeader
	if err := json.Unmarshal(line, &hdr); err != nil || hdr.Format != SessionFormatName {
		return fmt.Errorf("not a %s checkpoint", SessionFormatName)
	}
	if hdr.Version != SessionFormatVersion {
		return fmt.Errorf("unsupported session checkpoint version %d", hdr.Version)
	}
	if !validSessionID(hdr.Session) {
		return fmt.Errorf("invalid session id %q", hdr.Session)
	}
	tel := obs.NewTelemetry()
	eng, err := core.RestoreEngine(br, core.RestoreAttach{Telemetry: tel})
	if err != nil {
		return err
	}
	sess := &session{id: hdr.Session, eng: eng, tel: tel}
	sess.applied.Store(hdr.Applied)
	sess.races.Store(hdr.Races)
	s.mu.Lock()
	s.sessions[hdr.Session] = sess
	s.registerSessionMetrics(sess)
	s.mu.Unlock()
	if s.ckptsRestored != nil {
		s.ckptsRestored.Inc()
	}
	s.cfg.Logf("session %s: restored at %d applied, %d races", sess.id, hdr.Applied, hdr.Races)
	return nil
}
