package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"goldilocks/internal/core"
	"goldilocks/internal/detectors/regiontrack"
	"goldilocks/internal/event"
)

// The binary wire protocol reuses internal/event's frame layout (padded
// uvarint length | type | body | crc32) in both directions. Client to
// server it is exactly the binary trace stream — a header frame, then
// event frames — plus one-byte control frames; server to client the
// frame types below carry races, acks, and errors. Races and the final
// ack's stats are JSON payloads inside their frames: they are rare, so
// only the per-event hot path earns a hand-rolled layout.

// Server-to-client frame types. The client-to-server types
// (event.FrameHeader/FrameEvent/FrameCtl) live in internal/event.
const (
	frameRace byte = 0x10 // body: wireRace JSON
	frameAck  byte = 0x11 // body: flags | uvarint applied | uvarint races | [ackTail JSON]
	frameErr  byte = 0x12 // body: the error message string
)

// Binary control verbs: the one-byte body of an event.FrameCtl frame.
const (
	binCtlFlush byte = 1
	binCtlClose byte = 2
)

// Ack frame flag bits. Solicited marks the reply to a flush/close
// control — the only acks a client round trip may consume. Unsolicited
// acks are the batched progress reports the server volunteers at batch
// boundaries; clients fold them into a watermark instead of the ack
// channel.
const (
	ackFlagFinal     byte = 1 << 0
	ackFlagSolicited byte = 1 << 1
	ackFlagTail      byte = 1 << 2 // an ackTail JSON payload follows
)

// ackTail is the JSON tail of a final ack frame: the engine counters
// and rule-fire counts, too rare and too wide to hand-encode.
type ackTail struct {
	Stats     *core.Stats          `json:"stats,omitempty"`
	RuleFires []uint64             `json:"rule_fires,omitempty"`
	Serial    *regiontrack.Summary `json:"serializability,omitempty"`
}

// wireEncoder abstracts the server-to-client side of one connection so
// the session worker is format-blind. Implementations buffer; flush
// pushes to the socket. Write errors are deliberately swallowed until
// flush, matching the JSON path's best-effort sends.
type wireEncoder interface {
	race(wr *wireRace)
	ack(a *wireAck, solicited bool)
	// progress volunteers an unsolicited progress report at a batch
	// boundary. Only the binary protocol has a frame for it; the JSON
	// encoder must not emit one (an old client's control round trip
	// would consume it as its reply).
	progress(applied, races uint64)
	errMsg(msg string)
	flush() error
}

// jsonWire is the original line-JSON downlink.
type jsonWire struct{ bw *bufio.Writer }

func (w *jsonWire) send(m serverMsg) {
	b, err := json.Marshal(m)
	if err != nil {
		return
	}
	w.bw.Write(append(b, '\n'))
}

func (w *jsonWire) race(wr *wireRace) { w.send(serverMsg{Race: wr}) }
func (w *jsonWire) ack(a *wireAck, solicited bool) {
	w.send(serverMsg{Ack: a})
}
func (w *jsonWire) progress(applied, races uint64) {} // no unsolicited acks in JSON
func (w *jsonWire) errMsg(msg string)              { w.send(serverMsg{Err: msg}) }
func (w *jsonWire) flush() error                   { return w.bw.Flush() }

// binWire is the binary downlink. Frame and body buffers are reused, so
// the steady-state progress-ack path allocates nothing.
type binWire struct {
	bw      *bufio.Writer
	buf     []byte // frame scratch
	scratch []byte // body scratch
}

func (w *binWire) frame(typ byte, body []byte) {
	w.buf = event.AppendFrame(w.buf[:0], typ, body)
	w.bw.Write(w.buf)
}

func (w *binWire) race(wr *wireRace) {
	b, err := json.Marshal(wr)
	if err != nil {
		return
	}
	w.frame(frameRace, b)
}

func (w *binWire) ack(a *wireAck, solicited bool) {
	var flags byte
	if a.Final {
		flags |= ackFlagFinal
	}
	if solicited {
		flags |= ackFlagSolicited
	}
	var tail []byte
	if a.Stats != nil || a.RuleFires != nil || a.Serial != nil {
		if b, err := json.Marshal(ackTail{Stats: a.Stats, RuleFires: a.RuleFires, Serial: a.Serial}); err == nil {
			tail = b
			flags |= ackFlagTail
		}
	}
	body := append(w.scratch[:0], flags)
	body = binary.AppendUvarint(body, a.Applied)
	body = binary.AppendUvarint(body, a.Races)
	body = append(body, tail...)
	w.scratch = body
	w.frame(frameAck, body)
}

func (w *binWire) progress(applied, races uint64) {
	w.ack(&wireAck{Applied: applied, Races: races}, false)
}

func (w *binWire) errMsg(msg string) { w.frame(frameErr, []byte(msg)) }
func (w *binWire) flush() error      { return w.bw.Flush() }

// decodeAckFrame parses an ack frame body into the client's Ack plus
// its routing flags.
func decodeAckFrame(body []byte) (ack Ack, solicited, final bool, err error) {
	if len(body) < 1 {
		return Ack{}, false, false, event.ErrCorruptFrame
	}
	flags := body[0]
	rest := body[1:]
	applied, n := binary.Uvarint(rest)
	if n <= 0 {
		return Ack{}, false, false, event.ErrCorruptFrame
	}
	rest = rest[n:]
	races, n := binary.Uvarint(rest)
	if n <= 0 {
		return Ack{}, false, false, event.ErrCorruptFrame
	}
	rest = rest[n:]
	ack = Ack{Applied: applied, Races: races}
	if flags&ackFlagTail != 0 {
		var tail ackTail
		if err := json.Unmarshal(rest, &tail); err != nil {
			return Ack{}, false, false, fmt.Errorf("server: bad ack tail: %w", err)
		}
		ack.Stats, ack.RuleFires, ack.Serial = tail.Stats, tail.RuleFires, tail.Serial
	}
	return ack, flags&ackFlagSolicited != 0, flags&ackFlagFinal != 0, nil
}

// pickWireFormat selects the wire format for a connection from the
// client's offer: binary when offered, line-JSON otherwise (including
// the empty offer of every pre-negotiation client).
func pickWireFormat(offered []string) string {
	for _, f := range offered {
		if f == WireFormatBinary {
			return WireFormatBinary
		}
	}
	return WireFormatJSON
}
