package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// This file is the node side of cluster operation: follower replicas,
// replica promotion, session adoption (migration), draining, and the
// crash-shaped Kill used by chaos drills. The coordinator lives in
// internal/cluster; it drives these through the admin protocol.

// sessionInfos snapshots every session's progress.
func (s *Server) sessionInfos() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, SessionInfo{
			ID: sess.id, Applied: sess.applied.Load(), Races: sess.races.Load(),
			Attached: sess.attached,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Draining reports whether the node has been told to shed its sessions.
func (s *Server) Draining() bool { return s.draining.Load() }

// replicaPath is where a follower replica of a session checkpoint
// lives.
func (s *Server) replicaPath(id string) string {
	return filepath.Join(s.cfg.ReplicaDir, id+".ckpt")
}

// PutReplica durably stores checkpoint bytes as a follower replica of
// session id. The bytes are validated before they are trusted: a torn
// or corrupt replica is worthless at promotion time, so it is rejected
// now, while the owner can still retry.
func (s *Server) PutReplica(id string, data []byte) error {
	if s.cfg.ReplicaDir == "" {
		return errors.New("no replica directory configured")
	}
	sess, err := loadSession(bufio.NewReader(bytes.NewReader(data)))
	if err != nil {
		return fmt.Errorf("rejecting replica: %w", err)
	}
	if sess.id != id {
		return fmt.Errorf("rejecting replica: checkpoint is for session %q, not %q", sess.id, id)
	}
	if err := s.writeDurable(s.cfg.ReplicaDir, id+".ckpt", data); err != nil {
		return err
	}
	if s.replicasHeld != nil {
		s.replicasHeld.Inc()
	}
	return nil
}

// promoteReplicaLocked turns a follower replica into a live session:
// the node now owns a session it never served (the previous owner
// died), and the replica's applied prefix is where the client resumes.
// Returns nil when there is no replica or it cannot be loaded (the bad
// file is quarantined and the session starts fresh — the client then
// re-streams its full linearization, which converges to the same
// verdicts). Caller holds s.mu.
func (s *Server) promoteReplicaLocked(id string) *session {
	if s.cfg.ReplicaDir == "" {
		return nil
	}
	path := s.replicaPath(id)
	if _, err := os.Stat(path); err != nil {
		return nil
	}
	sess, err := loadSessionFile(path)
	if err != nil {
		// Quarantine without s.mu: quarantineCheckpoint locks it.
		s.mu.Unlock()
		s.quarantineCheckpoint(path, id, err)
		s.mu.Lock()
		return nil
	}
	s.sessions[id] = sess
	s.registerSessionMetrics(sess)
	if s.promotions != nil {
		s.promotions.Inc()
	}
	s.cfg.Logger.Info("session promoted from replica", "component", "server", "session", id,
		"applied", sess.applied.Load(), "races", sess.races.Load())
	s.flight("promote", id, fmt.Sprintf("from replica at %d applied, %d races", sess.applied.Load(), sess.races.Load()))
	return sess
}

// CheckpointSessionBytes serializes a consistent checkpoint of the
// named session. A live session is checkpointed by its worker between
// batches (zero verdicts lost); a detached one is claimed for the
// duration so no client can attach mid-snapshot.
func (s *Server) CheckpointSessionBytes(id string) (data []byte, applied uint64, err error) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return nil, 0, fmt.Errorf("unknown session %q", id)
	}
	if sess.attached {
		s.mu.Unlock()
		reply := make(chan ckptResult, 1)
		if sess.tryEnqueue(item{ctl: ctlCkpt, ckpt: reply}) {
			res := <-reply
			return res.data, res.applied, res.err
		}
		// The connection detached between the check and the enqueue;
		// fall through to the detached path.
		s.mu.Lock()
		if sess.attached {
			s.mu.Unlock()
			return nil, 0, fmt.Errorf("session %q is mid-attach", id)
		}
	}
	// Claim the detached session so no client attaches mid-snapshot.
	sess.attached = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		sess.attached = false
		s.mu.Unlock()
	}()
	data, err = sessionSnapshotBytes(sess)
	return data, sess.applied.Load(), err
}

// AdoptSession installs a session from serialized checkpoint bytes —
// the receiving half of a migration. An attached live session is never
// replaced, and neither is local state that is further along than the
// incoming snapshot.
func (s *Server) AdoptSession(data []byte) (applied uint64, err error) {
	sess, err := loadSession(bufio.NewReader(bytes.NewReader(data)))
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return 0, errors.New("server shutting down")
	}
	if old, ok := s.sessions[sess.id]; ok {
		if old.attached {
			s.mu.Unlock()
			return 0, fmt.Errorf("session %q has a live connection here", sess.id)
		}
		if old.applied.Load() > sess.applied.Load() {
			s.mu.Unlock()
			return 0, fmt.Errorf("session %q: local state at %d applied is ahead of incoming %d",
				sess.id, old.applied.Load(), sess.applied.Load())
		}
	}
	s.sessions[sess.id] = sess
	s.registerSessionMetrics(sess)
	s.mu.Unlock()
	if s.adoptions != nil {
		s.adoptions.Inc()
	}
	if s.cfg.CheckpointDir != "" {
		if err := s.persistCheckpoint(sess.id, data); err != nil {
			s.cfg.Logger.Warn("persisting adopted checkpoint failed", "component", "server",
				"session", sess.id, "err", err)
		}
	}
	s.cfg.Logger.Info("session adopted", "component", "server", "session", sess.id,
		"applied", sess.applied.Load(), "races", sess.races.Load())
	s.flight("adopt", sess.id, fmt.Sprintf("%d applied, %d races", sess.applied.Load(), sess.races.Load()))
	return sess.applied.Load(), nil
}

// DropSession removes a detached session and its local checkpoint and
// replica files — the final step of migrating it elsewhere.
func (s *Server) DropSession(id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("unknown session %q", id)
	}
	if sess.attached {
		s.mu.Unlock()
		return fmt.Errorf("session %q has a live connection", id)
	}
	delete(s.sessions, id)
	s.mu.Unlock()
	s.unregisterSessionMetrics(id)
	if s.cfg.CheckpointDir != "" {
		os.Remove(filepath.Join(s.cfg.CheckpointDir, id+".ckpt"))
	}
	if s.cfg.ReplicaDir != "" {
		os.Remove(s.replicaPath(id))
	}
	s.cfg.Logger.Info("session dropped", "component", "server", "session", id)
	s.flight("drop", id, "")
	return nil
}

// Drain sheds this node's ownership: it starts redirecting attaches
// (via OnDrain, the cluster node marks itself draining), severs live
// session connections, waits for their workers to settle, and
// checkpoints and replicates every session. The returned list is what
// the coordinator migrates to the remaining nodes.
func (s *Server) Drain() ([]SessionInfo, error) {
	s.draining.Store(true)
	if s.cfg.OnDrain != nil {
		s.cfg.OnDrain()
	}
	// Sever the live session connections (admin connections and the
	// listener stay up: the node still answers redirects and pulls).
	s.mu.Lock()
	for _, sess := range s.sessions {
		if sess.attached && sess.conn != nil {
			sess.conn.Close()
		}
	}
	s.mu.Unlock()
	// Wait for the severed workers to drain and detach.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		busy := 0
		for _, sess := range s.sessions {
			if sess.attached {
				busy++
			}
		}
		s.mu.Unlock()
		if busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("drain: %d sessions still attached after 10s", busy)
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	var errs []error
	for _, sess := range sessions {
		if err := s.checkpointAndReplicate(sess); err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", sess.id, err))
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	s.cfg.Logger.Info("drained", "component", "server", "sessions", len(sessions))
	s.flight("drain", "", fmt.Sprintf("%d sessions checkpointed", len(sessions)))
	return s.sessionInfos(), nil
}

// Kill tears the server down the way a crash would: listener and
// connections severed, workers stopped, nothing checkpointed. Chaos
// tests use it to simulate a node death in-process; the on-disk state
// is whatever the periodic checkpoints last persisted.
func (s *Server) Kill() {
	s.shutdownConns()
}

// shutdownConns stops accepting, severs every connection, and waits
// for all handlers and workers to drain. It reports whether this call
// performed the shutdown (false: already down).
func (s *Server) shutdownConns() bool {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return false
	}
	s.closing = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait() // all handlers and workers drained: sessions quiescent
	return true
}
