package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"goldilocks/internal/conformance"
	"goldilocks/internal/core"
	"goldilocks/internal/event"
	"goldilocks/internal/scenarios"
)

// racyScenario returns a scenario the engine reports a race on, so the
// wire tests exercise the verdict path, not just acks.
func racyScenario(t *testing.T) scenarios.Scenario {
	t.Helper()
	for _, sc := range scenarios.All() {
		if sc.Racy {
			return sc
		}
	}
	t.Fatal("no racy scenario in the corpus")
	return scenarios.Scenario{}
}

// streamWith streams sc through a fresh session with the given dial
// config and checks verdict parity plus the negotiated format.
func streamWith(t *testing.T, addr, session string, cfg DialConfig, wantBin bool) {
	t.Helper()
	sc := racyScenario(t)
	c, err := DialContext(context.Background(), addr, session, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if c.Binary() != wantBin {
		t.Fatalf("negotiated binary=%v, want %v", c.Binary(), wantBin)
	}
	for i := 0; i < sc.Trace.Len(); i++ {
		if err := c.Send(sc.Trace.At(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	mid, err := c.Flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	if mid.Applied != uint64(sc.Trace.Len()) {
		t.Fatalf("flush ack applied=%d, want %d", mid.Applied, sc.Trace.Len())
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if !c.Resumed() && ack.Applied != uint64(sc.Trace.Len()) {
		t.Fatalf("final ack applied=%d, want %d", ack.Applied, sc.Trace.Len())
	}
	if ack.Stats == nil || len(ack.RuleFires) == 0 {
		t.Fatalf("final ack missing stats/rule fires: %+v", ack)
	}
	backend := func(*event.Trace) (conformance.BackendResult, error) {
		return conformance.BackendResult{Races: c.Races()}, nil
	}
	if div := conformance.CheckBackend("wire", backend, sc.Trace); div != nil {
		t.Errorf("verdict divergence: %v", div)
	}
}

// TestHandshakeFormatMatrix is the cross-version interop matrix: every
// pairing of (binary-offering client, JSON-pinned client, pre-
// negotiation client) against (current server, pre-negotiation server)
// must land both peers on the same wire format and deliver identical
// verdicts. The two "old" peers are hand-rolled stand-ins speaking the
// protocol exactly as it was before Formats/Format existed.
func TestHandshakeFormatMatrix(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	t.Run("new-client-new-server-binary", func(t *testing.T) {
		streamWith(t, srv.Addr(), "matrix-bin", DialConfig{}, true)
	})
	t.Run("forcejson-client-new-server", func(t *testing.T) {
		streamWith(t, srv.Addr(), "matrix-json", DialConfig{ForceJSON: true}, false)
	})
	t.Run("old-client-new-server", func(t *testing.T) {
		oldClientRoundTrip(t, srv.Addr(), "matrix-old-client")
	})
	t.Run("new-client-old-server", func(t *testing.T) {
		addr := startOldServer(t)
		streamWith(t, addr, "matrix-old-server", DialConfig{}, false)
	})
}

// oldClientRoundTrip speaks the pre-negotiation protocol raw on the
// socket: a hello without Formats, the JSON stream header, line
// records, and a close control. The welcome must not name a format
// (old clients would ignore it, but the byte-identical welcome is the
// compatibility contract) and the verdicts must arrive as line JSON.
func oldClientRoundTrip(t *testing.T, addr, session string) {
	t.Helper()
	sc := racyScenario(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	h, _ := json.Marshal(struct {
		Proto   string `json:"proto"`
		Version int    `json:"version"`
		Session string `json:"session"`
	}{ProtoName, ProtoVersion, session})
	if _, err := conn.Write(append(h, '\n')); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := readLine(br)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(line, []byte(`"format"`)) {
		t.Fatalf("welcome to a pre-negotiation client names a format: %s", line)
	}
	var w welcome
	if err := json.Unmarshal(line, &w); err != nil || !w.OK {
		t.Fatalf("welcome: %s (err %v)", line, err)
	}
	if _, err := conn.Write(event.StreamHeaderLine()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sc.Trace.Len(); i++ {
		rec, err := event.EncodeRecord(sc.Trace.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	ctl, _ := json.Marshal(ctlMsg{Ctl: ctlClose})
	if _, err := conn.Write(append(ctl, '\n')); err != nil {
		t.Fatal(err)
	}
	races := 0
	for {
		line, err := readLine(br)
		if err != nil {
			t.Fatalf("reading server line: %v", err)
		}
		var m serverMsg
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("bad server line %s: %v", line, err)
		}
		switch {
		case m.Err != "":
			t.Fatalf("server error: %s", m.Err)
		case m.Race != nil:
			races++
		case m.Ack != nil && m.Ack.Final:
			if m.Ack.Applied != uint64(sc.Trace.Len()) {
				t.Fatalf("final ack applied=%d, want %d", m.Ack.Applied, sc.Trace.Len())
			}
			if races == 0 {
				t.Fatal("no race verdicts over the legacy protocol")
			}
			return
		}
	}
}

// startOldServer runs a minimal stand-in for a pre-negotiation daemon:
// it ignores unknown hello keys (as encoding/json always has), never
// sets welcome.Format, and speaks only line JSON. A current client
// dialing it must fall back cleanly.
func startOldServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go oldServeConn(conn)
		}
	}()
	return ln.Addr().String()
}

func oldServeConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	line, err := readLine(br)
	if err != nil {
		return
	}
	var h struct {
		Proto   string `json:"proto"`
		Version int    `json:"version"`
		Session string `json:"session"`
	}
	if json.Unmarshal(line, &h) != nil || h.Proto != ProtoName {
		return
	}
	b, _ := json.Marshal(welcome{OK: true})
	bw.Write(append(b, '\n'))
	bw.Flush()
	if line, err = readLine(br); err != nil || event.CheckStreamHeader(line) != nil {
		return
	}
	eng := core.NewEngine(core.DefaultOptions())
	applied, races := uint64(0), uint64(0)
	send := func(m serverMsg) {
		b, _ := json.Marshal(m)
		bw.Write(append(b, '\n'))
	}
	for {
		line, err := readLine(br)
		if err != nil {
			return
		}
		var ctl ctlMsg
		if json.Unmarshal(line, &ctl) == nil && ctl.Ctl != "" {
			stats := eng.Stats()
			send(serverMsg{Ack: &wireAck{
				Applied: applied, Races: races,
				Final: ctl.Ctl == ctlClose, Stats: &stats,
				RuleFires: make([]uint64, 10),
			}})
			bw.Flush()
			if ctl.Ctl == ctlClose {
				return
			}
			continue
		}
		a, _, ok := event.DecodeRecordSpan(line)
		if !ok {
			send(serverMsg{Err: "corrupt record"})
			bw.Flush()
			return
		}
		for _, r := range eng.Step(a) {
			races++
			if wr, err := encodeRace(r, applied); err == nil {
				send(serverMsg{Race: wr})
			}
		}
		applied++
	}
}

// TestBinaryProgressWatermark checks the batched unsolicited acks: a
// binary client learns server progress without issuing a single
// control round trip, and the solicited flush ack is not consumed by
// the watermark path.
func TestBinaryProgressWatermark(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sc := racyScenario(t)
	c, err := DialContext(context.Background(), srv.Addr(), "watermark", DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Binary() {
		t.Fatal("expected a binary connection")
	}
	for i := 0; i < sc.Trace.Len(); i++ {
		if err := c.Send(sc.Trace.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Push the frames without a control: the server's batch-boundary
	// progress acks must advance the watermark on their own.
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if applied, _ := c.Progress(); applied == uint64(sc.Trace.Len()) {
			break
		}
		if time.Now().After(deadline) {
			applied, _ := c.Progress()
			t.Fatalf("progress watermark stuck at %d, want %d", applied, sc.Trace.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The watermark advanced with zero solicited acks outstanding, so
	// this round trip must still get its own reply.
	ack, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Applied != uint64(sc.Trace.Len()) || ack.Stats == nil {
		t.Fatalf("final ack = %+v, want applied %d with stats", ack, sc.Trace.Len())
	}
}

// fuzzSrv is the shared daemon for FuzzHandshake; one per fuzz worker
// process.
var (
	fuzzSrvOnce sync.Once
	fuzzSrvAddr string
)

// FuzzHandshake throws arbitrary bytes at a live daemon's handshake and
// early stream: the server must always answer the first line with a
// welcome (or drop the connection) and never wedge or crash, whatever
// the bytes — truncated hellos, binary frames where JSON belongs, torn
// frames after a valid binary negotiation.
func FuzzHandshake(f *testing.F) {
	okHello, _ := json.Marshal(hello{Proto: ProtoName, Version: ProtoVersion, Session: "fuzz"})
	binHello, _ := json.Marshal(hello{Proto: ProtoName, Version: ProtoVersion, Session: "fuzz",
		Formats: []string{WireFormatBinary}})
	f.Add([]byte("garbage\n"))
	f.Add(append(append([]byte{}, okHello...), '\n'))
	f.Add(append(append(append([]byte{}, okHello...), '\n'), event.StreamHeaderLine()...))
	f.Add(append(append(append([]byte{}, binHello...), '\n'), event.BinHeaderFrame()...))
	// Binary negotiation followed by a torn frame.
	torn := append(append(append([]byte{}, binHello...), '\n'), event.BinHeaderFrame()...)
	torn = append(torn, event.AppendEventFrame(nil, event.Action{Kind: event.KindRead, Thread: 1, Obj: 1}, 0)[:7]...)
	f.Add(torn)
	// JSON negotiation followed by binary frames (format confusion).
	confused := append(append(append([]byte{}, okHello...), '\n'), event.BinHeaderFrame()...)
	f.Add(confused)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzSrvOnce.Do(func() {
			srv, err := New("127.0.0.1:0", Config{Queue: 4, Batch: 2})
			if err != nil {
				t.Fatalf("starting fuzz server: %v", err)
			}
			fuzzSrvAddr = srv.Addr()
		})
		conn, err := net.Dial("tcp", fuzzSrvAddr)
		if err != nil {
			t.Skip("dial failed; server saturated")
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		conn.Write(data)
		if tcp, ok := conn.(*net.TCPConn); ok {
			tcp.CloseWrite()
		}
		// Drain whatever the server says until it closes our connection.
		// A wedged server (no reply, no close) trips the deadline.
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
					t.Fatalf("server wedged on input %q", data)
				}
				return
			}
		}
	})
}

// TestWireFormatNames pins the negotiated format strings: they are the
// cross-version compatibility surface and must never drift.
func TestWireFormatNames(t *testing.T) {
	if WireFormatBinary != "goldilocks-bin" || WireFormatJSON != "goldilocks-json" {
		t.Fatalf("wire format names drifted: %q %q", WireFormatBinary, WireFormatJSON)
	}
	if got := pickWireFormat([]string{"x", WireFormatBinary}); got != WireFormatBinary {
		t.Fatalf("pickWireFormat = %q", got)
	}
	if got := pickWireFormat(nil); got != WireFormatJSON {
		t.Fatalf("pickWireFormat(nil) = %q", got)
	}
	if got := pickWireFormat([]string{"future-format"}); got != WireFormatJSON {
		t.Fatalf("pickWireFormat(unknown) = %q", got)
	}
}
