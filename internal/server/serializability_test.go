package server_test

import (
	"context"
	"reflect"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detectors/regiontrack"
	"goldilocks/internal/event"
	"goldilocks/internal/server"
)

// lostUpdateTrace is a non-serializable schedule: thread 2 commits a
// write of x between thread 1's transactional read and write of x, so
// the serialization graph has a 1->2 edge (r-w) and a 2->1 edge (w-r).
func lostUpdateTrace() *event.Trace {
	x := event.Variable{Obj: 10, Field: 0}
	return event.NewBuilder().
		TxBegin(1).Read(1, 10, 0).
		Commit(2, nil, []event.Variable{x}).
		Commit(1, nil, []event.Variable{x}).TxEnd(1).
		Trace()
}

// disjointTxnTrace interleaves two transactions on disjoint variables:
// serializable in every schedule.
func disjointTxnTrace() *event.Trace {
	return event.NewBuilder().
		TxBegin(1).Read(1, 10, 0).
		TxBegin(2).Read(2, 20, 0).
		Write(1, 10, 0).TxEnd(1).
		Write(2, 20, 0).TxEnd(2).
		Trace()
}

// wantSummary is the uninterrupted in-process ground truth: the same
// checker configuration a Serializability server builds per session.
func wantSummary(tr *event.Trace) regiontrack.Summary {
	opts := regiontrack.DefaultOptions()
	opts.Engine = core.DefaultOptions()
	opts.LockRegions = true
	_, sum := regiontrack.Check(tr, opts)
	return sum
}

// streamSerial streams tr through a fresh session and returns the final
// ack. forceJSON pins the connection to line-JSON so both wire formats'
// Serial plumbing is exercised.
func streamSerial(t *testing.T, addr, session string, tr *event.Trace, forceJSON bool) server.Ack {
	t.Helper()
	c, err := server.DialContext(context.Background(), addr, session, server.DialConfig{ForceJSON: forceJSON})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if c.Binary() == forceJSON {
		t.Fatalf("negotiated binary=%v with forceJSON=%v", c.Binary(), forceJSON)
	}
	for i := 0; i < tr.Len(); i++ {
		if err := c.Send(tr.At(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	return ack
}

// TestSerializabilityFinalAck runs a Serializability daemon and checks
// that the final ack of each session carries exactly the summary an
// in-process RegionTrack checker produces — non-serializable schedules
// flagged with their witnesses, serializable ones vouched for — over
// both wire formats.
func TestSerializabilityFinalAck(t *testing.T) {
	srv, err := server.New("127.0.0.1:0", server.Config{Serializability: true})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()

	cases := []struct {
		name         string
		tr           *event.Trace
		serializable bool
	}{
		{"lost-update", lostUpdateTrace(), false},
		{"disjoint", disjointTxnTrace(), true},
	}
	for _, tc := range cases {
		for _, forceJSON := range []bool{false, true} {
			name := tc.name + "-bin"
			if forceJSON {
				name = tc.name + "-json"
			}
			t.Run(name, func(t *testing.T) {
				ack := streamSerial(t, srv.Addr(), "serial-"+name, tc.tr, forceJSON)
				if ack.Serial == nil {
					t.Fatal("final ack carries no serializability summary")
				}
				if ack.Serial.Serializable != tc.serializable {
					t.Fatalf("serializable=%v, want %v (summary %+v)",
						ack.Serial.Serializable, tc.serializable, ack.Serial)
				}
				if want := wantSummary(tc.tr); !reflect.DeepEqual(*ack.Serial, want) {
					t.Fatalf("summary diverged from in-process checker\nremote: %+v\nlocal:  %+v", *ack.Serial, want)
				}
				if !tc.serializable && ack.Serial.ViolationTotal == 0 {
					t.Fatal("non-serializable schedule reported zero violations")
				}
			})
		}
	}
}

// TestSerializabilityOffByDefault: a plain daemon must not grow a
// summary on its final ack.
func TestSerializabilityOffByDefault(t *testing.T) {
	srv, err := server.New("127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()
	_, ack, err := server.StreamTrace(srv.Addr(), "plain", lostUpdateTrace())
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if ack.Serial != nil {
		t.Fatalf("plain server attached a serializability summary: %+v", ack.Serial)
	}
}

// TestSerializabilityRestartConvergence cuts a Serializability session
// mid-transaction, restarts the daemon from its checkpoint, streams the
// rest, and requires the final summary to equal an uninterrupted run —
// the conflict graph and open-region state must survive the
// checkpoint/restore round trip.
func TestSerializabilityRestartConvergence(t *testing.T) {
	dir := t.TempDir()
	tr := lostUpdateTrace()
	want := wantSummary(tr)
	if want.Serializable {
		t.Fatal("test trace must be non-serializable")
	}

	srv1, err := server.New("127.0.0.1:0", server.Config{CheckpointDir: dir, Serializability: true})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	c, err := server.Dial(srv1.Addr(), "serial-restart")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// Cut after thread 2's commit: thread 1's region is mid-flight and
	// the graph already holds the first half of the cycle.
	half := 3
	for i := 0; i < half; i++ {
		if err := c.Send(tr.At(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if _, err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	c.Abandon()
	if err := srv1.Close(); err != nil {
		t.Fatalf("closing first server: %v", err)
	}

	srv2, err := server.New("127.0.0.1:0", server.Config{CheckpointDir: dir, Serializability: true})
	if err != nil {
		t.Fatalf("restarting server: %v", err)
	}
	defer srv2.Close()
	c2, err := server.Dial(srv2.Addr(), "serial-restart")
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	if !c2.Resumed() || c2.Next() != uint64(half) {
		t.Fatalf("resume state: resumed=%v next=%d, want true/%d", c2.Resumed(), c2.Next(), half)
	}
	for i := half; i < tr.Len(); i++ {
		if err := c2.Send(tr.At(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	ack, err := c2.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if ack.Serial == nil {
		t.Fatal("resumed session's final ack carries no serializability summary")
	}
	if !reflect.DeepEqual(*ack.Serial, want) {
		t.Fatalf("summary diverged after restart\nresumed:       %+v\nuninterrupted: %+v", *ack.Serial, want)
	}
}
