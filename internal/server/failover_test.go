package server_test

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"goldilocks/internal/resilience"
	"goldilocks/internal/scenarios"
	"goldilocks/internal/server"
)

// freePort reserves a port and releases it, so a later listener can
// claim the same address.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserving port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDialContextRetry: the daemon starts AFTER the client begins
// dialing, and bounded retry with backoff still connects — the ordering
// dependency between service and client at boot is gone.
func TestDialContextRetry(t *testing.T) {
	addr := freePort(t)
	started := make(chan *server.Server, 1)
	go func() {
		time.Sleep(250 * time.Millisecond)
		srv, err := server.New(addr, server.Config{})
		if err != nil {
			t.Errorf("starting late server: %v", err)
			started <- nil
			return
		}
		started <- srv
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	c, err := server.DialContext(ctx, addr, "late-boot", server.DialConfig{
		Attempts:  40,
		BaseDelay: 25 * time.Millisecond,
	})
	srv := <-started
	if srv != nil {
		defer srv.Close()
	}
	if err != nil {
		t.Fatalf("DialContext never reached the late server: %v", err)
	}
	sc := scenarios.All()[0]
	for i := 0; i < sc.Trace.Len(); i++ {
		if err := c.Send(sc.Trace.At(i)); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if ack.Applied != uint64(sc.Trace.Len()) {
		t.Fatalf("applied %d, want %d", ack.Applied, sc.Trace.Len())
	}
}

// TestDialContextFailsFastOnRejection: protocol rejections (an invalid
// session id) must not burn the retry budget.
func TestDialContextFailsFastOnRejection(t *testing.T) {
	srv, err := server.New("127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	defer srv.Close()
	start := time.Now()
	_, err = server.DialContext(context.Background(), srv.Addr(), "bad session id!", server.DialConfig{
		Attempts:  10,
		BaseDelay: 200 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("invalid session id accepted")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("rejection took %v; retries were spent on a terminal error", d)
	}
}

// TestTornCheckpointQuarantined is the durability fault-injection gate:
// a crash mid-checkpoint-write (simulated by the resilience injector
// truncating the file) must not poison the next daemon — the torn
// checkpoint is quarantined with a structured report, healthy sessions
// restore, and the damaged session restarts fresh.
func TestTornCheckpointQuarantined(t *testing.T) {
	dir := t.TempDir()
	sc := scenarios.All()[0]

	// Run 1: injector tears every checkpoint write mid-file.
	srv1, err := server.New("127.0.0.1:0", server.Config{
		CheckpointDir: dir,
		Injector:      &resilience.Injector{TruncateTraceBytes: 16},
	})
	if err != nil {
		t.Fatalf("starting server 1: %v", err)
	}
	if _, _, err := server.StreamTrace(srv1.Addr(), "torn", sc.Trace); err != nil {
		t.Fatalf("streaming to server 1: %v", err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatalf("closing server 1: %v", err)
	}

	// Run 2: the torn file is quarantined, startup proceeds, and a
	// healthy session can be created and persisted.
	srv2, err := server.New("127.0.0.1:0", server.Config{CheckpointDir: dir})
	if err != nil {
		t.Fatalf("server 2 refused to start on a torn checkpoint: %v", err)
	}
	qs := srv2.Quarantined()
	if len(qs) != 1 || qs[0].Session != "torn" {
		t.Fatalf("quarantined = %+v, want exactly session \"torn\"", qs)
	}
	if qs[0].Report == nil || qs[0].Report.Kind != resilience.Corruption {
		t.Fatalf("quarantine report = %+v, want Corruption kind", qs[0].Report)
	}
	if _, err := os.Stat(qs[0].Path); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "torn.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("torn checkpoint still in the restore path: %v", err)
	}
	// The damaged session restarts fresh rather than erroring.
	c, err := server.Dial(srv2.Addr(), "torn")
	if err != nil {
		t.Fatalf("re-dialing torn session: %v", err)
	}
	if c.Resumed() || c.Next() != 0 {
		t.Fatalf("torn session resumed=%v next=%d, want a fresh session", c.Resumed(), c.Next())
	}
	c.Abandon()
	if _, _, err := server.StreamTrace(srv2.Addr(), "good", sc.Trace); err != nil {
		t.Fatalf("streaming healthy session: %v", err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatalf("closing server 2: %v", err)
	}

	// Run 3: the healthy checkpoint (written with fsync + dir sync, no
	// injector) restores intact alongside the earlier quarantine.
	srv3, err := server.New("127.0.0.1:0", server.Config{CheckpointDir: dir})
	if err != nil {
		t.Fatalf("starting server 3: %v", err)
	}
	defer srv3.Close()
	if qs := srv3.Quarantined(); len(qs) != 0 {
		t.Fatalf("unexpected quarantines on clean restart: %+v", qs)
	}
	c, err = server.Dial(srv3.Addr(), "good")
	if err != nil {
		t.Fatalf("resuming healthy session: %v", err)
	}
	if !c.Resumed() || c.Next() != uint64(sc.Trace.Len()) {
		t.Fatalf("healthy session resumed=%v next=%d, want resumed at %d", c.Resumed(), c.Next(), sc.Trace.Len())
	}
	c.Abandon()
}

// TestGarbageCheckpointQuarantined: a checkpoint file that is not even
// close to the format (random bytes, not torn JSON) is quarantined the
// same way instead of aborting startup.
func TestGarbageCheckpointQuarantined(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk.ckpt"), []byte{0xde, 0xad, 0xbe, 0xef, '\n', 0x00, 0x01}, 0o644); err != nil {
		t.Fatalf("planting garbage: %v", err)
	}
	srv, err := server.New("127.0.0.1:0", server.Config{CheckpointDir: dir})
	if err != nil {
		t.Fatalf("server refused to start on garbage checkpoint: %v", err)
	}
	defer srv.Close()
	qs := srv.Quarantined()
	if len(qs) != 1 || qs[0].Session != "junk" {
		t.Fatalf("quarantined = %+v, want session \"junk\"", qs)
	}
}

// staticRouter routes every session to one fixed owner.
type staticRouter struct{ self, owner string }

func (r staticRouter) Route(string) (string, bool) { return r.owner, r.owner == r.self }

// TestNotOwnerRedirect: a node that does not own a session refuses the
// attach with the owner's address; a plain Dial surfaces that, and a
// fleet client follows the redirect transparently.
func TestNotOwnerRedirect(t *testing.T) {
	owner, err := server.New("127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatalf("starting owner: %v", err)
	}
	defer owner.Close()
	other, err := server.New("127.0.0.1:0", server.Config{
		Advertise: "wrong-node",
		Router:    staticRouter{self: "wrong-node", owner: owner.Addr()},
	})
	if err != nil {
		t.Fatalf("starting non-owner: %v", err)
	}
	defer other.Close()

	if _, err := server.Dial(other.Addr(), "routed"); err == nil {
		t.Fatal("plain Dial to a non-owner succeeded; want a NOT_OWNER error")
	}

	// A fleet client given only the wrong node still lands on the owner.
	c, err := server.DialFleet(context.Background(), []string{other.Addr()}, "routed", server.DialConfig{})
	if err != nil {
		t.Fatalf("fleet dial did not follow the redirect: %v", err)
	}
	sc := scenarios.All()[0]
	for i := 0; i < sc.Trace.Len(); i++ {
		if err := c.Send(sc.Trace.At(i)); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if ack.Applied != uint64(sc.Trace.Len()) {
		t.Fatalf("applied %d, want %d", ack.Applied, sc.Trace.Len())
	}
	// The session must live on the owner, not the redirecting node.
	infos, err := server.Sessions(context.Background(), owner.Addr())
	if err != nil || len(infos) != 1 || infos[0].ID != "routed" {
		t.Fatalf("owner sessions = %+v (err %v), want [routed]", infos, err)
	}
}
