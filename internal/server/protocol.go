// Package server implements goldilocksd: a long-running detection
// service that accepts the checksummed goldilocks-stream wire format
// over TCP from many concurrent client sessions, runs one core.Engine
// per session, and pushes race verdicts (with provenance) back to the
// clients. Sessions survive connection drops and — with a checkpoint
// directory configured — daemon restarts, via the engine
// checkpoint/restore machinery in internal/core.
//
// The wire protocol is line-delimited JSON in both directions; the
// event records themselves are exactly the checksummed records of the
// .jsonl trace format (event.EncodeRecord), so a recorded trace file
// body can be piped to the daemon verbatim. See docs/SERVICE.md for the
// full protocol and lifecycle story.
package server

import (
	"encoding/json"
	"fmt"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/regiontrack"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
)

// ProtoName identifies the handshake protocol.
const ProtoName = "goldilocks-service"

// ProtoVersion is the current protocol version.
const ProtoVersion = 1

// Wire format names, offered by clients in hello.Formats and selected
// by servers in welcome.Format. The handshake itself is always
// line-JSON; the negotiated format governs everything after the
// welcome. An empty offer or selection means line-JSON — which is how
// cross-version pairs interoperate: an old server ignores the unknown
// Formats key and omits Format from its welcome, an old client never
// offers, and both sides land on WireFormatJSON without either knowing
// the other predates the negotiation.
const (
	// WireFormatJSON is the original line-delimited JSON protocol:
	// event.EncodeRecord lines up, serverMsg lines down.
	WireFormatJSON = "goldilocks-json"
	// WireFormatBinary is the length-prefixed binary protocol: the
	// event.AppendEventFrame framing up (plus one-byte control frames),
	// race/ack/err frames down, with batched unsolicited progress acks.
	WireFormatBinary = "goldilocks-bin"
)

// hello is the first line a client sends. Formats lists the wire
// formats the client can speak beyond the implied line-JSON, in
// preference order.
type hello struct {
	Proto   string   `json:"proto"`
	Version int      `json:"version"`
	Session string   `json:"session"`
	Formats []string `json:"formats,omitempty"`
}

// welcome is the server's reply to a hello. Next is the number of
// actions the session has already applied: a resuming client must skip
// that prefix of its linearization and stream from there. In cluster
// mode a node that does not own the session refuses the attach with
// NotOwner set and, when known, the owner's advertised address — the
// client redials there (see DialFleet).
type welcome struct {
	OK       bool   `json:"ok"`
	Error    string `json:"error,omitempty"`
	Resumed  bool   `json:"resumed,omitempty"`
	Next     uint64 `json:"next"`
	NotOwner bool   `json:"not_owner,omitempty"`
	Owner    string `json:"owner,omitempty"`
	// Format is the wire format the server selected from the client's
	// offer; empty means line-JSON (see WireFormatJSON).
	Format string `json:"format,omitempty"`
}

// ctlMsg is a client control line interleaved with event records.
// Records and controls are distinguished by the "ctl" key, which event
// records never carry.
type ctlMsg struct {
	Ctl string `json:"ctl"`
}

// Control verbs.
const (
	ctlFlush = "flush" // apply everything sent so far, then ack
	ctlClose = "close" // apply everything, send the final ack, end session connection
)

// wireRace is a race verdict pushed to the client, carrying enough to
// rebuild the detect.Race a local engine would have returned: the
// global linearization position, the variable, the completing and
// previous accesses, and the provenance chain.
type wireRace struct {
	Pos     uint64          `json:"pos"`
	Obj     event.Addr      `json:"obj"`
	Field   event.FieldID   `json:"field"`
	Access  json.RawMessage `json:"access"`
	Prev    json.RawMessage `json:"prev,omitempty"`
	HasPrev bool            `json:"has_prev,omitempty"`
	Prov    *obs.Provenance `json:"prov,omitempty"`
}

// wireAck reports session progress. The server sends one in response to
// every flush and close control; Final marks the close ack, which also
// carries the engine's counters.
type wireAck struct {
	Applied   uint64      `json:"applied"`
	Races     uint64      `json:"races"`
	Final     bool        `json:"final,omitempty"`
	Stats     *core.Stats `json:"stats,omitempty"`
	RuleFires []uint64    `json:"rule_fires,omitempty"`
	// Serial is the serializability summary, present on the final ack
	// of sessions running under Config.Serializability.
	Serial *regiontrack.Summary `json:"serializability,omitempty"`
}

// serverMsg is one server-to-client line: exactly one field is set.
type serverMsg struct {
	Race *wireRace `json:"race,omitempty"`
	Ack  *wireAck  `json:"ack,omitempty"`
	Err  string    `json:"error,omitempty"`
}

// encodeRace converts an engine verdict to its wire form. pos is the
// global linearization position of the completing access.
func encodeRace(r detect.Race, pos uint64) (*wireRace, error) {
	access, err := event.MarshalAction(r.Access)
	if err != nil {
		return nil, fmt.Errorf("server: encoding race access: %w", err)
	}
	wr := &wireRace{
		Pos: pos, Obj: r.Var.Obj, Field: r.Var.Field,
		Access: access, HasPrev: r.HasPrev, Prov: r.Prov,
	}
	if r.HasPrev {
		if wr.Prev, err = event.MarshalAction(r.Prev); err != nil {
			return nil, fmt.Errorf("server: encoding race prev: %w", err)
		}
	}
	return wr, nil
}

// decodeRace rebuilds the detect.Race a local run would have produced.
func decodeRace(wr *wireRace) (detect.Race, error) {
	r := detect.Race{
		Var:     event.Variable{Obj: wr.Obj, Field: wr.Field},
		Pos:     int(wr.Pos),
		HasPrev: wr.HasPrev,
		Prov:    wr.Prov,
	}
	var err error
	if r.Access, err = event.UnmarshalAction(wr.Access); err != nil {
		return r, fmt.Errorf("server: decoding race access: %w", err)
	}
	if wr.HasPrev {
		if r.Prev, err = event.UnmarshalAction(wr.Prev); err != nil {
			return r, fmt.Errorf("server: decoding race prev: %w", err)
		}
	}
	return r, nil
}
