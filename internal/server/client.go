package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
)

// Ack is the server's progress report for a session: how many actions
// it has applied and how many races it has reported. The final ack (the
// reply to Close) also carries the engine counters and the Figure 5
// rule-fire counts, which the conformance harness compares against an
// in-process run.
type Ack struct {
	Applied   uint64
	Races     uint64
	Stats     *core.Stats
	RuleFires []uint64
}

// Client is one session's connection to a detection server. Race
// verdicts arrive asynchronously (a background reader collects them);
// Flush and Close provide synchronization points where every action
// sent so far is known to be applied.
type Client struct {
	conn    net.Conn
	bw      *bufio.Writer
	session string
	next    uint64
	resumed bool

	mu    sync.Mutex
	races []detect.Race

	acks    chan Ack
	readErr error // set before acks closes
	errOnce sync.Once
	done    chan struct{}
}

// Dial connects to a detection server and opens (or resumes) the named
// session. After a successful Dial the caller must check Next: a
// resumed session has already applied that many actions, and the client
// must stream only the remainder of its linearization.
func Dial(addr, session string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64*1024),
		session: session,
		acks:    make(chan Ack, 4),
		done:    make(chan struct{}),
	}
	br := bufio.NewReaderSize(conn, 64*1024)

	h, err := json.Marshal(hello{Proto: ProtoName, Version: ProtoVersion, Session: session})
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.bw.Write(append(h, '\n'))
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	line, err := readLine(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: reading welcome: %w", err)
	}
	var w welcome
	if err := json.Unmarshal(line, &w); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: bad welcome: %w", err)
	}
	if !w.OK {
		conn.Close()
		return nil, fmt.Errorf("server: rejected session %q: %s", session, w.Error)
	}
	c.next, c.resumed = w.Next, w.Resumed

	c.bw.Write(event.StreamHeaderLine()) // already newline-terminated
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop(br)
	return c, nil
}

// Session returns the session id.
func (c *Client) Session() string { return c.session }

// Next returns how many actions the session had already applied at
// connect time. A fresh session returns 0; a resumed one returns the
// resume point, and the caller must skip that prefix.
func (c *Client) Next() uint64 { return c.next }

// Resumed reports whether the session predates this connection.
func (c *Client) Resumed() bool { return c.resumed }

// readLoop collects server lines: races into the race list, acks into
// the ack channel. It closes acks on connection end so waiters fail
// fast.
func (c *Client) readLoop(br *bufio.Reader) {
	defer close(c.done)
	defer close(c.acks)
	for {
		line, err := readLine(br)
		if err != nil {
			c.setErr(io.EOF)
			return
		}
		var m serverMsg
		if err := json.Unmarshal(line, &m); err != nil {
			c.setErr(fmt.Errorf("server: bad message: %w", err))
			return
		}
		switch {
		case m.Err != "":
			c.setErr(fmt.Errorf("server: %s", m.Err))
			return
		case m.Race != nil:
			r, err := decodeRace(m.Race)
			if err != nil {
				c.setErr(err)
				return
			}
			c.mu.Lock()
			c.races = append(c.races, r)
			c.mu.Unlock()
		case m.Ack != nil:
			c.acks <- Ack{
				Applied: m.Ack.Applied, Races: m.Ack.Races,
				Stats: m.Ack.Stats, RuleFires: m.Ack.RuleFires,
			}
		}
	}
}

func (c *Client) setErr(err error) {
	c.errOnce.Do(func() { c.readErr = err })
}

// err returns the terminal read error, once the reader has stopped.
func (c *Client) terminalErr() error {
	if c.readErr != nil && c.readErr != io.EOF {
		return c.readErr
	}
	return errors.New("server: connection closed")
}

// Send streams one action to the session. Verdicts for it arrive
// asynchronously; use Flush or Close to synchronize.
func (c *Client) Send(a event.Action) error {
	rec, err := event.EncodeRecord(a)
	if err != nil {
		return err
	}
	if _, err := c.bw.Write(rec); err != nil {
		return err
	}
	return nil
}

// Flush pushes everything sent so far to the server, waits until it is
// applied, and returns the progress ack.
func (c *Client) Flush() (Ack, error) {
	return c.ctlRoundTrip(ctlFlush)
}

// Close ends the session cleanly: every action sent is applied, the
// final ack (with engine stats and rule-fire counts) is returned, and
// the connection is closed. The session remains resumable on the
// server.
func (c *Client) Close() (Ack, error) {
	ack, err := c.ctlRoundTrip(ctlClose)
	c.conn.Close()
	<-c.done
	return ack, err
}

// Abandon severs the connection without a close handshake, as a crashed
// client would. The session stays resumable server-side.
func (c *Client) Abandon() {
	c.conn.Close()
	<-c.done
}

func (c *Client) ctlRoundTrip(verb string) (Ack, error) {
	b, err := json.Marshal(ctlMsg{Ctl: verb})
	if err != nil {
		return Ack{}, err
	}
	c.bw.Write(append(b, '\n'))
	if err := c.bw.Flush(); err != nil {
		return Ack{}, err
	}
	ack, ok := <-c.acks
	if !ok {
		return Ack{}, c.terminalErr()
	}
	return ack, nil
}

// Races returns the verdicts received so far, in arrival order. Race
// positions are global linearization indices, directly comparable to an
// in-process run over the same linearization.
func (c *Client) Races() []detect.Race {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]detect.Race, len(c.races))
	copy(out, c.races)
	return out
}

// StreamTrace is the convenience path used by the replay tools and the
// conformance harness: open (or resume) the session, stream the
// remainder of tr, close, and return the verdicts of this connection
// plus the final ack.
func StreamTrace(addr, sessionID string, tr *event.Trace) ([]detect.Race, Ack, error) {
	c, err := Dial(addr, sessionID)
	if err != nil {
		return nil, Ack{}, err
	}
	start := int(c.Next())
	if start > tr.Len() {
		c.Abandon()
		return nil, Ack{}, fmt.Errorf("server: session %q already at %d, past trace end %d", sessionID, start, tr.Len())
	}
	for i := start; i < tr.Len(); i++ {
		if err := c.Send(tr.At(i)); err != nil {
			c.Abandon()
			return nil, Ack{}, err
		}
	}
	ack, err := c.Close()
	if err != nil {
		return nil, Ack{}, err
	}
	return c.Races(), ack, nil
}
