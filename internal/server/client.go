package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/regiontrack"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
)

// Ack is the server's progress report for a session: how many actions
// it has applied and how many races it has reported. The final ack (the
// reply to Close) also carries the engine counters and the Figure 5
// rule-fire counts, which the conformance harness compares against an
// in-process run.
type Ack struct {
	Applied   uint64
	Races     uint64
	Stats     *core.Stats
	RuleFires []uint64
	// Serial is the serializability summary from a server running with
	// Config.Serializability; nil otherwise.
	Serial *regiontrack.Summary
}

// Client is one session's connection to a detection server. Race
// verdicts arrive asynchronously (a background reader collects them);
// Flush and Close provide synchronization points where every action
// sent so far is known to be applied.
//
// A client opened with DialFleet is failover-aware: it knows every node
// of the cluster, keeps a journal of the actions it has sent, and — when
// the connection or the owning node dies — reconnects with exponential
// backoff and jitter, follows NOT_OWNER redirects to the new owner,
// replays the journal suffix past the server's applied prefix, and
// deduplicates re-fired verdicts. Send, Flush and Close then never
// surface a node death to the caller; only exhausting the failover
// budget does.
type Client struct {
	conn    net.Conn
	bw      *bufio.Writer
	session string
	next    uint64
	resumed bool

	// bin is true when this connection negotiated the binary wire
	// format. It is per-connection state: a failover re-negotiates, so
	// a client can move between a binary-speaking node and a line-JSON
	// one mid-session (mixed-version fleet).
	bin    bool
	encBuf []byte // binary encode scratch, reused across Sends

	// Unsolicited progress acks (binary protocol, batched by the
	// server) land in these watermarks, never in the ack channel.
	progApplied atomic.Uint64
	progRaces   atomic.Uint64

	// Failover state (fleet mode; nil fleet = single-node client).
	fleet     []string
	cfg       DialConfig
	base      uint64         // applied count before journal[0]
	journal   []event.Action // every action sent, for replay after failover
	failovers int

	// tracer, when set (DialConfig.Tracer), samples sent records into
	// pipeline spans: the span id rides the stream record to the server,
	// and the client observes its own stages (encode, control RTT).
	tracer *obs.Tracer

	mu    sync.Mutex
	races []detect.Race
	seen  map[string]bool // race keys, for dedup across failovers

	acks    chan Ack
	readErr error // set before acks closes
	errOnce sync.Once
	done    chan struct{}
}

// Session returns the session id.
func (c *Client) Session() string { return c.session }

// Next returns how many actions the session had already applied at
// connect time. A fresh session returns 0; a resumed one returns the
// resume point, and the caller must skip that prefix.
func (c *Client) Next() uint64 { return c.next }

// Resumed reports whether the session predates this connection.
func (c *Client) Resumed() bool { return c.resumed }

// Failovers returns how many times this client has reconnected after
// losing its server (fleet mode).
func (c *Client) Failovers() int { return c.failovers }

// Binary reports whether the current connection negotiated the binary
// wire format.
func (c *Client) Binary() bool { return c.bin }

// Progress returns the server's last volunteered progress watermark
// (applied actions, races reported). Only the binary protocol batches
// unsolicited progress acks; under line-JSON this stays at the last
// solicited ack's values (zero before the first Flush).
func (c *Client) Progress() (applied, races uint64) {
	return c.progApplied.Load(), c.progRaces.Load()
}

// startConn installs a fresh connection and starts its read loop.
func (c *Client) startConn(conn net.Conn, br *bufio.Reader, bin bool) {
	c.conn = conn
	c.bin = bin
	c.bw = bufio.NewWriterSize(conn, 64*1024)
	c.acks = make(chan Ack, 4)
	c.done = make(chan struct{})
	c.errOnce = sync.Once{}
	c.readErr = nil
	if bin {
		go c.readLoopBin(br, c.acks, c.done)
	} else {
		go c.readLoop(br, c.acks, c.done)
	}
}

// readLoop collects server lines: races into the race list, acks into
// the ack channel. It closes acks on connection end so waiters fail
// fast. In fleet mode a verdict re-fired after a failover (the journal
// suffix is replayed through the restored engine) is recognized by its
// position+variable key and dropped.
func (c *Client) readLoop(br *bufio.Reader, acks chan Ack, done chan struct{}) {
	defer close(done)
	defer close(acks)
	for {
		line, err := readLine(br)
		if err != nil {
			c.setErr(io.EOF)
			return
		}
		var m serverMsg
		if err := json.Unmarshal(line, &m); err != nil {
			c.setErr(fmt.Errorf("server: bad message: %w", err))
			return
		}
		switch {
		case m.Err != "":
			c.setErr(fmt.Errorf("server: %s", m.Err))
			return
		case m.Race != nil:
			if err := c.collectRace(m.Race); err != nil {
				c.setErr(err)
				return
			}
		case m.Ack != nil:
			ack := Ack{
				Applied: m.Ack.Applied, Races: m.Ack.Races,
				Stats: m.Ack.Stats, RuleFires: m.Ack.RuleFires,
				Serial: m.Ack.Serial,
			}
			c.noteProgress(ack)
			acks <- ack
		}
	}
}

// readLoopBin is readLoop for a binary connection: race/ack/err frames
// instead of serverMsg lines. Solicited acks (flush/close replies) go
// to the ack channel; unsolicited batched progress acks only advance
// the watermark — a control round trip must never consume one as its
// reply.
func (c *Client) readLoopBin(br *bufio.Reader, acks chan Ack, done chan struct{}) {
	defer close(done)
	defer close(acks)
	fr := event.NewFrameReader(br)
	for {
		typ, body, err := fr.Next()
		if err != nil {
			c.setErr(io.EOF)
			return
		}
		switch typ {
		case frameErr:
			c.setErr(fmt.Errorf("server: %s", body))
			return
		case frameRace:
			var wr wireRace
			if err := json.Unmarshal(body, &wr); err != nil {
				c.setErr(fmt.Errorf("server: bad race frame: %w", err))
				return
			}
			if err := c.collectRace(&wr); err != nil {
				c.setErr(err)
				return
			}
		case frameAck:
			ack, solicited, _, err := decodeAckFrame(body)
			if err != nil {
				c.setErr(err)
				return
			}
			c.noteProgress(ack)
			if solicited {
				acks <- ack
			}
		default:
			c.setErr(fmt.Errorf("server: unexpected frame type 0x%02x", typ))
			return
		}
	}
}

// collectRace decodes one pushed verdict into the race list, deduping
// re-fired verdicts across failovers (fleet mode).
func (c *Client) collectRace(wr *wireRace) error {
	r, err := decodeRace(wr)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen != nil {
		key := fmt.Sprintf("%d:%v", r.Pos, r.Var)
		if c.seen[key] {
			return nil
		}
		c.seen[key] = true
	}
	c.races = append(c.races, r)
	return nil
}

// noteProgress folds an ack into the progress watermark. Watermarks
// are monotonic: a failover replays the journal suffix, and a stale
// ack from the old connection must not rewind them.
func (c *Client) noteProgress(ack Ack) {
	for {
		cur := c.progApplied.Load()
		if ack.Applied <= cur || c.progApplied.CompareAndSwap(cur, ack.Applied) {
			break
		}
	}
	for {
		cur := c.progRaces.Load()
		if ack.Races <= cur || c.progRaces.CompareAndSwap(cur, ack.Races) {
			break
		}
	}
}

func (c *Client) setErr(err error) {
	c.errOnce.Do(func() { c.readErr = err })
}

// err returns the terminal read error, once the reader has stopped.
func (c *Client) terminalErr() error {
	if c.readErr != nil && c.readErr != io.EOF {
		return c.readErr
	}
	return errors.New("server: connection closed")
}

// Send streams one action to the session. Verdicts for it arrive
// asynchronously; use Flush or Close to synchronize. In fleet mode the
// action is journaled first, so a mid-stream node death is survived by
// reconnecting and replaying.
func (c *Client) Send(a event.Action) error {
	var rec []byte
	var err error
	switch {
	case c.bin && c.tracer.Sample():
		start := time.Now()
		c.encBuf = event.AppendEventFrame(c.encBuf[:0], a, c.tracer.NextSpan())
		rec = c.encBuf
		c.tracer.Observe(obs.StageClientEncode, time.Since(start))
	case c.bin:
		// The reused encode buffer makes the steady-state binary send
		// path allocation-free.
		c.encBuf = event.AppendEventFrame(c.encBuf[:0], a, 0)
		rec = c.encBuf
	case c.tracer.Sample():
		start := time.Now()
		rec, err = event.EncodeRecordSpan(a, c.tracer.NextSpan())
		c.tracer.Observe(obs.StageClientEncode, time.Since(start))
	default:
		rec, err = event.EncodeRecord(a)
	}
	if err != nil {
		return err
	}
	if c.fleet != nil {
		c.journal = append(c.journal, a)
	}
	if _, err := c.bw.Write(rec); err != nil {
		if c.fleet == nil {
			return err
		}
		return c.failover(context.Background())
	}
	return nil
}

// Flush pushes everything sent so far to the server, waits until it is
// applied, and returns the progress ack.
func (c *Client) Flush() (Ack, error) {
	return c.ctlRoundTrip(ctlFlush)
}

// Close ends the session cleanly: every action sent is applied, the
// final ack (with engine stats and rule-fire counts) is returned, and
// the connection is closed. The session remains resumable on the
// server.
func (c *Client) Close() (Ack, error) {
	ack, err := c.ctlRoundTrip(ctlClose)
	c.conn.Close()
	<-c.done
	return ack, err
}

// Abandon severs the connection without a close handshake, as a crashed
// client would. The session stays resumable server-side.
func (c *Client) Abandon() {
	c.conn.Close()
	<-c.done
}

// writeCtl writes the control verb in the connection's wire format
// (buffered; the caller flushes).
func (c *Client) writeCtl(verb string) error {
	if c.bin {
		v := binCtlFlush
		if verb == ctlClose {
			v = binCtlClose
		}
		_, err := c.bw.Write(event.AppendFrame(nil, event.FrameCtl, []byte{v}))
		return err
	}
	b, err := json.Marshal(ctlMsg{Ctl: verb})
	if err != nil {
		return err
	}
	_, err = c.bw.Write(append(b, '\n'))
	return err
}

func (c *Client) ctlRoundTrip(verb string) (Ack, error) {
	for attempt := 0; ; attempt++ {
		var start time.Time
		if c.tracer != nil {
			start = time.Now()
		}
		c.writeCtl(verb)
		flushErr := c.bw.Flush()
		var ack Ack
		ok := false
		if flushErr == nil {
			ack, ok = <-c.acks
		}
		if ok {
			if c.tracer != nil {
				// A control round trip drains everything queued ahead of
				// it, so this RTT bounds end-to-end pipeline latency.
				c.tracer.Observe(obs.StageWireRTT, time.Since(start))
			}
			return ack, nil
		}
		if c.fleet == nil || attempt >= 1 {
			if flushErr != nil {
				return Ack{}, flushErr
			}
			return Ack{}, c.terminalErr()
		}
		// The connection died under the control round trip: fail over
		// (which replays any unapplied journal suffix) and re-issue the
		// control on the new owner.
		if err := c.failover(context.Background()); err != nil {
			return Ack{}, err
		}
	}
}

// Races returns the verdicts received so far, in arrival order. Race
// positions are global linearization indices, directly comparable to an
// in-process run over the same linearization.
func (c *Client) Races() []detect.Race {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]detect.Race, len(c.races))
	copy(out, c.races)
	return out
}

// StreamTrace is the convenience path used by the replay tools and the
// conformance harness: open (or resume) the session, stream the
// remainder of tr, close, and return the verdicts of this connection
// plus the final ack. addr may be a single address or a comma-separated
// fleet list (see DialFleet).
func StreamTrace(addr, sessionID string, tr *event.Trace) ([]detect.Race, Ack, error) {
	c, err := DialAuto(context.Background(), addr, sessionID)
	if err != nil {
		return nil, Ack{}, err
	}
	start := int(c.Next())
	if start > tr.Len() {
		c.Abandon()
		return nil, Ack{}, fmt.Errorf("server: session %q already at %d, past trace end %d", sessionID, start, tr.Len())
	}
	for i := start; i < tr.Len(); i++ {
		if err := c.Send(tr.At(i)); err != nil {
			c.Abandon()
			return nil, Ack{}, err
		}
	}
	ack, err := c.Close()
	if err != nil {
		return nil, Ack{}, err
	}
	return c.Races(), ack, nil
}
