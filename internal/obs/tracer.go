package obs

import (
	"sync/atomic"
	"time"
)

// Stage names one timed segment of the detection service's ingest
// pipeline. A sampled record is stamped with a span id at the client,
// rides the wire inside its stream record, and each stage it crosses
// observes its latency into the matching histogram — together the
// stages account for where an event's end-to-end latency goes:
//
//	client_encode   serializing the record (client, Send)
//	wire_rtt        a flush/close control round trip (client)
//	queue_wait      enqueue to dequeue in the session ingest queue
//	apply           core.Engine.Step for one action (worker)
//	verdict_flush   flushing a batch's verdicts to the client (worker)
//	checkpoint_write  snapshot + durable write of a periodic checkpoint
//	replica_push    mirroring one checkpoint to one ring successor
type Stage uint8

// The pipeline stages, in upstream-to-downstream order.
const (
	StageClientEncode Stage = iota
	StageWireRTT
	StageQueueWait
	StageApply
	StageVerdictFlush
	StageCheckpointWrite
	StageReplicaPush

	// NumStages is the number of pipeline stages.
	NumStages
)

// stageNames index by Stage; used for metric names, so they must stay
// snake_case.
var stageNames = [NumStages]string{
	StageClientEncode:    "client_encode",
	StageWireRTT:         "wire_rtt",
	StageQueueWait:       "queue_wait",
	StageApply:           "apply",
	StageVerdictFlush:    "verdict_flush",
	StageCheckpointWrite: "checkpoint_write",
	StageReplicaPush:     "replica_push",
}

// String returns the stage's snake_case name.
func (st Stage) String() string {
	if st < NumStages {
		return stageNames[st]
	}
	return "unknown"
}

// Tracer is the lock-free sampled span model: Sample decides (one
// atomic add, power-of-two modulus) whether a record becomes a span,
// and Observe records a span's per-stage latency in microseconds into
// fixed exponential histograms. Every method is nil-safe, so the
// disabled path — a nil *Tracer threaded through the pipeline — costs
// one nil check per instrumentation site and allocates nothing
// (BenchmarkTracer pins this).
//
// Sampling is deliberately counter-based, not probabilistic: the same
// stream always selects the same records, which keeps drills and the
// ingest benchmark deterministic.
type Tracer struct {
	mask  uint64        // sample every mask+1 records (power of two)
	n     atomic.Uint64 // records seen by Sample
	spans atomic.Uint64 // span ids handed out
	stage [NumStages]Histogram
}

// NewTracer returns a tracer sampling one record in every (every
// rounded up to a power of two). every <= 0 returns nil — the fully
// disabled tracer.
func NewTracer(every int) *Tracer {
	if every <= 0 {
		return nil
	}
	pow := uint64(1)
	for pow < uint64(every) {
		pow <<= 1
	}
	return &Tracer{mask: pow - 1}
}

// SampleEvery returns the effective sampling interval (0 when nil).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.mask) + 1
}

// Sample reports whether the next record should carry a span. One
// atomic add; nil tracers never sample.
func (t *Tracer) Sample() bool {
	if t == nil {
		return false
	}
	return t.n.Add(1)&t.mask == 0
}

// NextSpan returns a fresh nonzero span id for a sampled record.
func (t *Tracer) NextSpan() uint64 {
	if t == nil {
		return 0
	}
	return t.spans.Add(1)
}

// Observe records a span's latency through one stage. Durations are
// observed in whole microseconds (negative clamps to zero).
func (t *Tracer) Observe(st Stage, d time.Duration) {
	if t == nil || st >= NumStages {
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	t.stage[st].Observe(uint64(us))
}

// StageHist returns the histogram behind one stage (nil tracer: nil).
func (t *Tracer) StageHist(st Stage) *Histogram {
	if t == nil || st >= NumStages {
		return nil
	}
	return &t.stage[st]
}

// Register binds every stage histogram into reg under
// <prefix>_stage_<stage>_us, e.g. goldilocksd_stage_queue_wait_us.
// The names are label-free on purpose: the cluster rollup sums
// label-free goldilocksd_* families into fleet-wide
// goldilocksd_cluster_* aggregates.
func (t *Tracer) Register(reg *Registry, prefix string) {
	if t == nil || reg == nil {
		return
	}
	for st := Stage(0); st < NumStages; st++ {
		reg.RegisterHistogram(prefix+"_stage_"+st.String()+"_us", &t.stage[st])
	}
}
