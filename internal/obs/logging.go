package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// This file is the structured-logging front door for the service-side
// binaries (goldilocksd, goldilocksctl) and internal/cluster: one
// slog.Logger per process, text or JSON handler selected by -log-json,
// level by -log-level, with component/session context carried as attrs
// instead of interpolated into format strings.

// ParseLogLevel maps a -log-level flag value to its slog level. The
// empty string means info.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds the process logger: JSON or logfmt-style text on w,
// records below level dropped at the handler.
func NewLogger(w io.Writer, level slog.Level, jsonOut bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonOut {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// NopLogger returns a logger that discards everything — the default for
// library components whose caller wired no logger. (A hand-rolled
// handler rather than slog.DiscardHandler, which needs a newer language
// version than this module declares.)
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
