package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready for use; a Counter must not be copied after first use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// GaugeFunc is a gauge evaluated at scrape time: /metrics and the JSON
// snapshot call it, so the exported value is always current without the
// instrumented code pushing updates.
type GaugeFunc func() float64

// histBuckets is the number of exponential histogram buckets: bucket i
// counts observations v with upper bound 2^i - 1 (bucket 0: v == 0,
// bucket 1: v ≤ 1, bucket 2: v ≤ 3, ...); the last bucket is +Inf.
const histBuckets = 22

// Histogram is a fixed-layout exponential histogram for small
// non-negative integer observations (walk depths, segment lengths).
// Observe is a pair of atomic adds — cheap enough for the pair-check
// path when telemetry is enabled. The zero value is ready for use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
	count  atomic.Uint64
}

// bucketFor returns the bucket index for observation v.
func bucketFor(v uint64) int {
	i := 0
	for v > 0 && i < histBuckets-1 {
		v >>= 1
		i++
	}
	return i
}

// Observe records one observation of v.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketFor(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// HistBucket is one exported histogram bucket: the cumulative count of
// observations at most UpperBound.
type HistBucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// Buckets returns the cumulative bucket counts, Prometheus-style (each
// bucket includes all smaller ones; the last has UpperBound +Inf).
func (h *Histogram) Buckets() []HistBucket {
	out := make([]HistBucket, 0, histBuckets)
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < histBuckets-1 {
			ub = float64(uint64(1)<<i) - 1 // 0, 1, 3, 7, ...
		}
		out = append(out, HistBucket{UpperBound: ub, Count: cum})
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observations by
// linear interpolation inside the exponential bucket containing the
// target rank. The estimate is exact for bucket boundaries and within
// one bucket's width otherwise — good enough for p50/p99 stage-latency
// reporting, where the buckets are microsecond powers of two. With no
// observations it returns 0; ranks landing in the +Inf bucket return
// that bucket's lower bound.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	cum := float64(0)
	for i := 0; i < histBuckets; i++ {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == 0 {
				return 0 // bucket 0 holds only v == 0
			}
			lo := float64(uint64(1)<<(i-1)) - 1
			hi := float64(uint64(1)<<i) - 1
			if i == histBuckets-1 {
				return lo // +Inf bucket: no finite upper bound to interpolate to
			}
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return 0
}

// SeriesPoint is one sample of a time series.
type SeriesPoint struct {
	UnixMilli int64   `json:"t"`
	Value     float64 `json:"v"`
}

// Series is a fixed-capacity ring buffer of timestamped samples, for
// gauges whose trajectory matters (event-list length, GC-reclaimed
// cells). It is sampled by a Sampler, not by the instrumented code.
type Series struct {
	mu      sync.Mutex
	buf     []SeriesPoint
	next    int
	wrapped bool
}

// NewSeries returns a ring buffer holding the last capacity samples.
func NewSeries(capacity int) *Series {
	if capacity < 1 {
		capacity = 1
	}
	return &Series{buf: make([]SeriesPoint, capacity)}
}

// Add records a sample at the current time.
func (s *Series) Add(v float64) {
	s.mu.Lock()
	s.buf[s.next] = SeriesPoint{UnixMilli: time.Now().UnixMilli(), Value: v}
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.wrapped = true
	}
	s.mu.Unlock()
}

// Points returns the retained samples, oldest first.
func (s *Series) Points() []SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.wrapped {
		out := make([]SeriesPoint, s.next)
		copy(out, s.buf[:s.next])
		return out
	}
	out := make([]SeriesPoint, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Sampler periodically invokes a sampling function (typically one that
// reads gauges and appends to Series ring buffers) until stopped.
type Sampler struct {
	stop chan struct{}
	done chan struct{}
}

// NewSampler starts a goroutine calling fn every interval. fn runs once
// immediately so short-lived processes still record at least one sample.
func NewSampler(interval time.Duration, fn func()) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Sampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		fn()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fn()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Stop halts the sampler and waits for the final sample to finish. It
// is safe to call once; a nil Sampler is a no-op.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}
