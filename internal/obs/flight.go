package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// FlightEvent is one entry of the flight recorder: a structured
// lifecycle event (session attach/detach, NOT_OWNER redirect, replica
// promotion, quarantine, governor rung escalation, sampled rule fire,
// checkpoint, ...) with enough context to reconstruct what the daemon
// was doing in the seconds before an incident. Seq and the timestamp
// are stamped by Record.
type FlightEvent struct {
	Seq       uint64 `json:"seq"`
	UnixMicro int64  `json:"t"`
	Component string `json:"c"`
	Kind      string `json:"k"`
	Session   string `json:"s,omitempty"`
	Node      string `json:"n,omitempty"`
	Span      uint64 `json:"sp,omitempty"`
	Detail    string `json:"d,omitempty"`
}

// FlightRecorder is a bounded ring of recent FlightEvents. Record is a
// mutex-guarded ring append — cheap, but meant for lifecycle edges and
// sampled spans, not the per-access hot path. A nil recorder is fully
// disabled: every method is nil-safe, so call sites need no gating
// beyond the pointer they already hold.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []FlightEvent
	next    int
	wrapped bool
	seq     uint64
	dumps   uint64
}

// NewFlightRecorder returns a ring holding the last capacity events.
// capacity <= 0 returns nil — the disabled recorder.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		return nil
	}
	return &FlightRecorder{buf: make([]FlightEvent, capacity)}
}

// Record appends one event, stamping its sequence number and time.
func (r *FlightRecorder) Record(ev FlightEvent) {
	if r == nil {
		return
	}
	now := time.Now().UnixMicro()
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	ev.UnixMicro = now
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Event is the common-case Record: component, kind, session, detail.
func (r *FlightRecorder) Event(component, kind, session, detail string) {
	r.Record(FlightEvent{Component: component, Kind: kind, Session: session, Detail: detail})
}

// Len returns how many events the ring currently retains.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Snapshot returns the retained events oldest-first, plus how many
// older events the ring has already overwritten.
func (r *FlightRecorder) Snapshot() (events []FlightEvent, overwritten uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		events = append(events, r.buf[:r.next]...)
	} else {
		events = append(events, r.buf[r.next:]...)
		events = append(events, r.buf[:r.next]...)
	}
	return events, r.seq - uint64(len(events))
}

// FlightFormatName identifies a flight-recorder dump file.
const FlightFormatName = "goldilocks-flight"

// FlightFormatVersion is the current dump format version.
const FlightFormatVersion = 1

// FlightHeader is the first line of a dump: what was dumped, where,
// why, and how much of the history the ring had already lost.
type FlightHeader struct {
	Format      string `json:"format"`
	Version     int    `json:"version"`
	Node        string `json:"node,omitempty"`
	Reason      string `json:"reason"`
	DumpedUnix  int64  `json:"dumped_unix_ms"`
	Events      int    `json:"events"`
	Overwritten uint64 `json:"overwritten"`
}

// flightLine is one checksummed dump line after the header, mirroring
// the stream-record shape: the CRC covers the serialized event body, so
// torn writes and bit rot are detected per line.
type flightLine struct {
	Event json.RawMessage `json:"e"`
	CRC   string          `json:"crc"`
}

// WriteDump serializes the ring as a checksummed .jsonl dump: a header
// line, then one CRC-32-guarded line per event, oldest first. The ring
// keeps recording while (and after) a dump is written.
func (r *FlightRecorder) WriteDump(w io.Writer, node, reason string) error {
	events, overwritten := r.Snapshot()
	hdr, err := json.Marshal(FlightHeader{
		Format: FlightFormatName, Version: FlightFormatVersion,
		Node: node, Reason: reason, DumpedUnix: time.Now().UnixMilli(),
		Events: len(events), Overwritten: overwritten,
	})
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	bw.Write(append(hdr, '\n'))
	for _, ev := range events {
		body, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		line, err := json.Marshal(flightLine{Event: body, CRC: fmt.Sprintf("%08x", crc32.ChecksumIEEE(body))})
		if err != nil {
			return err
		}
		bw.Write(append(line, '\n'))
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	r.mu.Lock()
	r.dumps++
	r.mu.Unlock()
	return nil
}

// Dumps returns how many dumps have been written from this ring.
func (r *FlightRecorder) Dumps() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumps
}

// DumpToDir writes the dump atomically to dir/flight-<reason>.jsonl
// (reason sanitized to filename-safe characters; a later dump for the
// same reason replaces the earlier one — the newest evidence wins) and
// returns the path.
func (r *FlightRecorder) DumpToDir(dir, node, reason string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("obs: no flight recorder")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := "flight-" + sanitizeFilename(reason) + ".jsonl"
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if err := r.WriteDump(tmp, node, reason); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// sanitizeFilename maps anything outside [A-Za-z0-9._-] to '-'.
func sanitizeFilename(s string) string {
	if s == "" {
		return "dump"
	}
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			b.WriteRune(c)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// ReadFlightDump parses a dump, verifying every line's checksum. Like
// trace salvage, it returns the longest valid prefix of events; err is
// non-nil when the header is unusable or any line after it is torn or
// checksum-corrupt (the salvaged prefix still comes back).
func ReadFlightDump(rd io.Reader) (FlightHeader, []FlightEvent, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return FlightHeader{}, nil, fmt.Errorf("obs: empty flight dump")
	}
	var hdr FlightHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Format != FlightFormatName {
		return FlightHeader{}, nil, fmt.Errorf("obs: not a %s dump", FlightFormatName)
	}
	if hdr.Version != FlightFormatVersion {
		return hdr, nil, fmt.Errorf("obs: unsupported flight dump version %d", hdr.Version)
	}
	var events []FlightEvent
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var fl flightLine
		if err := json.Unmarshal(line, &fl); err != nil || len(fl.Event) == 0 {
			return hdr, events, fmt.Errorf("obs: corrupt flight dump line after %d events", len(events))
		}
		if fmt.Sprintf("%08x", crc32.ChecksumIEEE(fl.Event)) != fl.CRC {
			return hdr, events, fmt.Errorf("obs: flight dump checksum mismatch after %d events", len(events))
		}
		var ev FlightEvent
		if err := json.Unmarshal(fl.Event, &ev); err != nil {
			return hdr, events, fmt.Errorf("obs: bad flight event after %d events", len(events))
		}
		events = append(events, ev)
	}
	return hdr, events, nil
}
