package obs

import (
	"fmt"

	"goldilocks/internal/event"
)

// Telemetry bundles the engine-side metric sinks: per-rule fire
// counters, the lazy-evaluation walk-depth histogram, per-rule
// walk-effect counters, the shard-contention counter, and the optional
// lockset trace hook. An engine holds a *Telemetry that is nil when
// telemetry is disabled — every instrumentation site is gated on that
// one pointer, so the disabled hot path costs a nil check and nothing
// else.
type Telemetry struct {
	// Rules counts, per Figure 5 rule (index 1..NumRules), how many
	// times the rule was triggered by the processed linearization. One
	// rule fires per action (plus rule 1 per checked plain access and
	// rule 9 once per commit), so the counts are identical for the spec
	// and optimized engines on the same linearization.
	Rules [NumRules + 1]Counter
	// WalkDepth observes, per pair check that needed a traversal, the
	// number of event-list cells visited (SC3 filtered walk plus full
	// walk). The short-circuited checks observe nothing: the histogram
	// count over Stats.PairChecks is the traversal rate.
	WalkDepth Histogram
	// WalkRuleHits counts, per rule, the applications during lazy walks
	// that actually grew a lockset — which rules carry the evaluation
	// work. Unlike Rules this is representation-dependent (memoization
	// and short-circuits skip walks), so it is reported separately.
	WalkRuleHits [NumRules + 1]Counter
	// ShardContention counts variable-table shard lookups that found the
	// shard lock contended (the read lock was not immediately
	// available).
	ShardContention Counter
	// Trace is the optional structured lockset-transition trace.
	Trace *TraceHook
}

// NewTelemetry returns an enabled telemetry bundle whose trace hook is
// allocated but disabled (near-zero cost until TraceHook.Enable).
func NewTelemetry() *Telemetry {
	return &Telemetry{Trace: NewTraceHook(4096)}
}

// Fire counts one firing of rule (1..NumRules).
func (t *Telemetry) Fire(rule int) {
	if rule >= 1 && rule <= NumRules {
		t.Rules[rule].Inc()
	}
}

// FireKind counts the rule triggered by an action of kind k, if any.
func (t *Telemetry) FireKind(k event.Kind) { t.Fire(RuleOf(k)) }

// RuleFires returns the per-rule fire counts indexed 1..NumRules
// (index 0 is always zero).
func (t *Telemetry) RuleFires() [NumRules + 1]uint64 {
	var out [NumRules + 1]uint64
	for i := 1; i <= NumRules; i++ {
		out[i] = t.Rules[i].Load()
	}
	return out
}

// Register binds the telemetry metrics into reg under the goldilocks_
// namespace.
func (t *Telemetry) Register(reg *Registry) {
	for i := 1; i <= NumRules; i++ {
		reg.RegisterCounter(fmt.Sprintf("goldilocks_rule_fires_total{rule=%q}", fmt.Sprint(i)), &t.Rules[i])
		reg.RegisterCounter(fmt.Sprintf("goldilocks_walk_rule_hits_total{rule=%q}", fmt.Sprint(i)), &t.WalkRuleHits[i])
	}
	reg.RegisterHistogram("goldilocks_walk_depth_cells", &t.WalkDepth)
	reg.RegisterCounter("goldilocks_shard_contention_total", &t.ShardContention)
	if t.Trace != nil {
		reg.RegisterGaugeFunc("goldilocks_trace_buffered", func() float64 {
			trs, _ := t.Trace.Snapshot()
			return float64(len(trs))
		})
	}
}
