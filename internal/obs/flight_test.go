package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlightRecorderNilSafety(t *testing.T) {
	var r *FlightRecorder
	r.Record(FlightEvent{Kind: "x"})
	r.Event("c", "k", "s", "d")
	if r.Len() != 0 {
		t.Fatal("nil recorder has events")
	}
	if evs, over := r.Snapshot(); evs != nil || over != 0 {
		t.Fatal("nil recorder snapshot nonempty")
	}
	if r.Dumps() != 0 {
		t.Fatal("nil recorder reports dumps")
	}
	if _, err := r.DumpToDir(t.TempDir(), "n", "r"); err == nil {
		t.Fatal("nil recorder DumpToDir should error")
	}
	if NewFlightRecorder(0) != nil {
		t.Fatal("NewFlightRecorder(0) should return nil")
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Event("server", "attach", fmt.Sprintf("s%d", i), "")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	evs, overwritten := r.Snapshot()
	if len(evs) != 4 || overwritten != 6 {
		t.Fatalf("Snapshot = %d events, %d overwritten; want 4, 6", len(evs), overwritten)
	}
	// Oldest-first, and the retained suffix is the newest four.
	for i, ev := range evs {
		if want := fmt.Sprintf("s%d", 6+i); ev.Session != want {
			t.Fatalf("event %d session = %q, want %q", i, ev.Session, want)
		}
		if ev.Seq != uint64(7+i) {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, 7+i)
		}
		if ev.UnixMicro == 0 {
			t.Fatalf("event %d missing timestamp", i)
		}
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Event("server", "attach", "alpha", "")
	r.Record(FlightEvent{Component: "server", Kind: "rule-fire", Session: "alpha", Span: 42, Detail: "RL x1 at 7"})
	r.Event("cluster", "promote", "beta", "from replica")

	var b bytes.Buffer
	if err := r.WriteDump(&b, "node1:7766", "test"); err != nil {
		t.Fatal(err)
	}
	if r.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", r.Dumps())
	}
	hdr, evs, err := ReadFlightDump(&b)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Format != FlightFormatName || hdr.Version != FlightFormatVersion {
		t.Fatalf("header = %+v", hdr)
	}
	if hdr.Node != "node1:7766" || hdr.Reason != "test" || hdr.Events != 3 || hdr.Overwritten != 0 {
		t.Fatalf("header = %+v", hdr)
	}
	if len(evs) != 3 {
		t.Fatalf("read %d events, want 3", len(evs))
	}
	if evs[1].Span != 42 || evs[1].Kind != "rule-fire" {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if evs[2].Kind != "promote" || evs[2].Component != "cluster" {
		t.Fatalf("event 2 = %+v", evs[2])
	}
}

func TestFlightDumpCorruptionDetected(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Event("server", "attach", "a", "")
	r.Event("server", "detach", "a", "")
	var b bytes.Buffer
	if err := r.WriteDump(&b, "n", "test"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("dump has %d lines, want 3", len(lines))
	}

	// Flip the second event's session inside the checksummed body.
	damaged := strings.Join([]string{lines[0], lines[1], strings.Replace(lines[2], `"s":"a"`, `"s":"b"`, 1)}, "\n")
	hdr, evs, err := ReadFlightDump(strings.NewReader(damaged))
	if err == nil {
		t.Fatal("checksum mismatch not detected")
	}
	if hdr.Events != 2 || len(evs) != 1 {
		t.Fatalf("salvaged %d events, want the valid prefix of 1", len(evs))
	}

	// A non-dump file is rejected outright.
	if _, _, err := ReadFlightDump(strings.NewReader("{\"hello\":1}\n")); err == nil {
		t.Fatal("non-dump header accepted")
	}
	if _, _, err := ReadFlightDump(strings.NewReader("")); err == nil {
		t.Fatal("empty dump accepted")
	}
}

func TestFlightDumpCRCCoversEventBody(t *testing.T) {
	// The crc field must cover exactly the serialized event, so external
	// tools can verify lines independently.
	r := NewFlightRecorder(2)
	r.Event("server", "checkpoint", "s", "")
	var b bytes.Buffer
	if err := r.WriteDump(&b, "", "x"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	var fl struct {
		Event json.RawMessage `json:"e"`
		CRC   string          `json:"crc"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &fl); err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("%08x", crc32.ChecksumIEEE(fl.Event)); fl.CRC != want {
		t.Fatalf("crc = %s, want %s", fl.CRC, want)
	}
}

func TestDumpToDir(t *testing.T) {
	dir := t.TempDir()
	r := NewFlightRecorder(4)
	r.Event("server", "attach", "s", "")
	path, err := r.DumpToDir(dir, "n", "panic quarantine/../x")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "flight-panic-quarantine-..-x.jsonl"); path != want {
		t.Fatalf("path = %s, want %s", path, want)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr, evs, err := ReadFlightDump(f)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Reason != "panic quarantine/../x" || len(evs) != 1 {
		t.Fatalf("hdr = %+v, %d events", hdr, len(evs))
	}

	// Same reason replaces in place rather than accumulating files.
	r.Event("server", "detach", "s", "")
	if _, err := r.DumpToDir(dir, "n", "panic quarantine/../x"); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries after re-dump, want 1", len(ents))
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "": slog.LevelInfo, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
		"INFO": slog.LevelInfo,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel accepted garbage")
	}
}

func TestLoggerOutput(t *testing.T) {
	var b bytes.Buffer
	log := NewLogger(&b, slog.LevelInfo, true).With("component", "test")
	log.Debug("hidden")
	log.Info("visible", "session", "s1")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("debug record emitted at info level")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &rec); err != nil {
		t.Fatalf("log output is not JSON: %v\n%s", err, out)
	}
	if rec["component"] != "test" || rec["session"] != "s1" || rec["msg"] != "visible" {
		t.Fatalf("record = %v", rec)
	}

	b.Reset()
	NewLogger(&b, slog.LevelWarn, false).Warn("text mode")
	if !strings.Contains(b.String(), "text mode") || strings.Contains(b.String(), "{") {
		t.Fatalf("text handler output = %q", b.String())
	}
}

func TestNopLogger(t *testing.T) {
	log := NopLogger()
	log.Info("nothing", "k", "v") // must not panic
	log.With("a", 1).WithGroup("g").Error("still nothing")
}
