package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"goldilocks/internal/event"
)

func TestRuleOf(t *testing.T) {
	cases := []struct {
		kind event.Kind
		rule int
	}{
		{event.KindRelease, RuleRelease},
		{event.KindAcquire, RuleAcquire},
		{event.KindVolatileWrite, RuleVolatileWrite},
		{event.KindVolatileRead, RuleVolatileRead},
		{event.KindFork, RuleFork},
		{event.KindJoin, RuleJoin},
		{event.KindAlloc, RuleAlloc},
		{event.KindCommit, RuleCommit},
		{event.KindRead, 0},
		{event.KindWrite, 0},
	}
	for _, c := range cases {
		if got := RuleOf(c.kind); got != c.rule {
			t.Errorf("RuleOf(%v) = %d, want %d", c.kind, got, c.rule)
		}
	}
	if RuleName(RuleRelease) != "release" || RuleName(0) != "unknown" || RuleName(NumRules+1) != "unknown" {
		t.Errorf("RuleName mapping wrong: %q %q %q", RuleName(RuleRelease), RuleName(0), RuleName(NumRules+1))
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 110 {
		t.Fatalf("Sum = %d, want 110", h.Sum())
	}
	bs := h.Buckets()
	if len(bs) != histBuckets {
		t.Fatalf("len(Buckets) = %d, want %d", len(bs), histBuckets)
	}
	// Cumulative: le=0 holds {0}; le=1 holds {0,1}; le=3 holds {0,1,2,3};
	// le=7 holds {..,4}; the +Inf bucket holds everything.
	wantCum := map[float64]uint64{0: 1, 1: 2, 3: 4, 7: 5}
	for _, b := range bs {
		if want, ok := wantCum[b.UpperBound]; ok && b.Count != want {
			t.Errorf("bucket le=%g count = %d, want %d", b.UpperBound, b.Count, want)
		}
	}
	last := bs[len(bs)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != 6 {
		t.Errorf("last bucket = {%v %d}, want {+Inf 6}", last.UpperBound, last.Count)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(bs); i++ {
		if bs[i].Count < bs[i-1].Count {
			t.Fatalf("buckets not cumulative at %d: %d < %d", i, bs[i].Count, bs[i-1].Count)
		}
	}
}

func TestHistogramMeanEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Fatalf("empty Mean = %v, want 0", h.Mean())
	}
}

func TestSeriesRing(t *testing.T) {
	s := NewSeries(3)
	for i := 1; i <= 5; i++ {
		s.Add(float64(i))
	}
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("len(Points) = %d, want 3", len(pts))
	}
	for i, want := range []float64{3, 4, 5} {
		if pts[i].Value != want {
			t.Errorf("Points[%d].Value = %v, want %v", i, pts[i].Value, want)
		}
	}
}

func TestSampler(t *testing.T) {
	s := NewSeries(16)
	n := 0
	smp := NewSampler(time.Hour, func() { n++; s.Add(float64(n)) })
	smp.Stop()
	// The immediate first sample must have landed before Stop returned.
	if got := len(s.Points()); got != 1 {
		t.Fatalf("samples after immediate run = %d, want 1", got)
	}
	var nilSampler *Sampler
	nilSampler.Stop() // must not panic
}

func TestTraceHookRingAndFilter(t *testing.T) {
	h := NewTraceHook(2)
	if h.Enabled() {
		t.Fatal("new hook should be disabled")
	}
	if h.Match("o1.f0") {
		t.Fatal("disabled hook must not match")
	}
	h.Enable("o1.f0")
	if !h.Match("o1.f0") || h.Match("o2.f0") {
		t.Fatal("filter mismatch")
	}
	for i := uint64(1); i <= 3; i++ {
		h.Record(LocksetTransition{Seq: i, Var: "o1.f0", Rule: RuleRelease, Action: "T1:rel(o9)", Lockset: "{T1}"})
	}
	trs, dropped := h.Snapshot()
	if len(trs) != 2 || trs[0].Seq != 2 || trs[1].Seq != 3 {
		t.Fatalf("ring snapshot = %+v", trs)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	h.Disable()
	if h.Enabled() {
		t.Fatal("hook should be disabled after Disable")
	}
	h.Enable() // empty filter matches everything
	if !h.Match("anything") {
		t.Fatal("empty filter should match all variables")
	}
	var nilHook *TraceHook
	if nilHook.Enabled() {
		t.Fatal("nil hook must report disabled")
	}
}

func TestProvenanceRendering(t *testing.T) {
	p := &Provenance{
		Var:    "o10.f0",
		Prev:   "T1:write(o10.f0)",
		Thread: "T2",
		Base:   "{T1}",
		Steps: []ProvStep{
			{Seq: 4, Action: "T1:rel(o20)", Rule: RuleRelease, After: "{T1, o20.lock}"},
			{Seq: 6, Action: "T3:acq(o20)", Rule: RuleAcquire, After: "{T1, T3, o20.lock}"},
			{Seq: 8, Action: "T3:rel(o21)", Rule: RuleRelease, After: "{T1, T3, o20.lock, o21.lock}"},
		},
		Final: "{T1, T3, o20.lock, o21.lock}",
	}
	if got, want := fmt.Sprint(p.Rules()), "[2 3]"; got != want {
		t.Errorf("Rules = %s, want %s", got, want)
	}
	if got, want := p.Path(), "{T1}→{T1, o20.lock}→{T1, T3, o20.lock}→{T1, T3, o20.lock, o21.lock}"; got != want {
		t.Errorf("Path = %q, want %q", got, want)
	}
	s := p.String()
	for _, frag := range []string{"prev T1:write(o10.f0)", "via rules 2,3", "no synchronization chain reached T2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	p.Elided = 3
	p.Truncated = true
	s = p.String()
	for _, frag := range []string{"(+3 steps elided)", "(origin collected; path truncated)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestRegistryExports(t *testing.T) {
	reg := NewRegistry()
	tel := NewTelemetry()
	tel.Register(reg)
	tel.Fire(RuleRelease)
	tel.Fire(RuleRelease)
	tel.FireKind(event.KindAcquire)
	tel.FireKind(event.KindRead) // no rule; must not count
	tel.WalkDepth.Observe(5)
	tel.ShardContention.Inc()
	reg.RegisterGaugeFunc("goldilocks_list_len", func() float64 { return 42 })
	sr := NewSeries(4)
	sr.Add(1)
	reg.RegisterSeries("goldilocks_list_len_series", sr)

	fires := tel.RuleFires()
	if fires[RuleRelease] != 2 || fires[RuleAcquire] != 1 || fires[RuleFork] != 0 {
		t.Fatalf("RuleFires = %v", fires)
	}

	var js strings.Builder
	if err := reg.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(js.String()), &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v\n%s", err, js.String())
	}
	if v, ok := snap[`goldilocks_rule_fires_total{rule="2"}`].(float64); !ok || v != 2 {
		t.Errorf("JSON rule 2 fires = %v", snap[`goldilocks_rule_fires_total{rule="2"}`])
	}
	if v, ok := snap["goldilocks_list_len"].(float64); !ok || v != 42 {
		t.Errorf("JSON gauge = %v", snap["goldilocks_list_len"])
	}
	if _, ok := snap["goldilocks_list_len_series"]; !ok {
		t.Error("JSON missing series")
	}

	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := prom.String()
	for _, frag := range []string{
		"# TYPE goldilocks_rule_fires_total counter",
		`goldilocks_rule_fires_total{rule="2"} 2`,
		`goldilocks_rule_fires_total{rule="3"} 1`,
		"# TYPE goldilocks_walk_depth_cells histogram",
		`goldilocks_walk_depth_cells_bucket{le="+Inf"} 1`,
		"goldilocks_walk_depth_cells_sum 5",
		"goldilocks_walk_depth_cells_count 1",
		"goldilocks_shard_contention_total 1",
		"goldilocks_list_len 42",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("Prometheus output missing %q\n%s", frag, text)
		}
	}
	// The family TYPE line must appear exactly once despite nine members.
	if n := strings.Count(text, "# TYPE goldilocks_rule_fires_total counter"); n != 1 {
		t.Errorf("TYPE line emitted %d times, want 1", n)
	}
}

func TestRegistryCounterGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total")
	c.Add(7)
	if got := reg.Counter("x_total").Load(); got != 7 {
		t.Fatalf("get-or-create returned a fresh counter: %d", got)
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("goldilocks_up").Inc()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "goldilocks_up 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "goldilocks_up") {
		t.Errorf("/debug/vars = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (len %d)", code, len(body))
	}

	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}
