package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Sample() {
		t.Fatal("nil tracer sampled")
	}
	if tr.NextSpan() != 0 {
		t.Fatal("nil tracer handed out a span id")
	}
	tr.Observe(StageApply, time.Millisecond) // must not panic
	if tr.StageHist(StageApply) != nil {
		t.Fatal("nil tracer returned a histogram")
	}
	if tr.SampleEvery() != 0 {
		t.Fatalf("nil tracer SampleEvery = %d, want 0", tr.SampleEvery())
	}
	tr.Register(NewRegistry(), "x") // must not panic
}

func TestNewTracerDisabled(t *testing.T) {
	if NewTracer(0) != nil || NewTracer(-5) != nil {
		t.Fatal("NewTracer(<=0) should return the nil (disabled) tracer")
	}
}

func TestTracerSamplingInterval(t *testing.T) {
	// 6 rounds up to 8; exactly one in every 8 calls samples.
	tr := NewTracer(6)
	if got := tr.SampleEvery(); got != 8 {
		t.Fatalf("SampleEvery = %d, want 8", got)
	}
	sampled := 0
	for i := 0; i < 8*10; i++ {
		if tr.Sample() {
			sampled++
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 80 records at 1/8, want 10", sampled)
	}
}

func TestTracerSpanIDsNonzeroAndUnique(t *testing.T) {
	tr := NewTracer(1)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := tr.NextSpan()
		if id == 0 {
			t.Fatal("NextSpan returned 0 (reserved for unsampled)")
		}
		if seen[id] {
			t.Fatalf("span id %d repeated", id)
		}
		seen[id] = true
	}
}

func TestTracerObserveAndQuantile(t *testing.T) {
	tr := NewTracer(1)
	for i := 0; i < 1000; i++ {
		tr.Observe(StageQueueWait, time.Duration(i)*time.Microsecond)
	}
	tr.Observe(StageQueueWait, -time.Second) // clamps, not panics
	h := tr.StageHist(StageQueueWait)
	if h.Count() != 1001 {
		t.Fatalf("count = %d, want 1001", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 <= 0 || p50 > 1023 {
		t.Fatalf("p50 = %g out of range for 0..999us observations", p50)
	}
	if p99 < p50 {
		t.Fatalf("p99 %g < p50 %g", p99, p50)
	}
	// Out-of-range stages are ignored, not a panic or corruption.
	tr.Observe(NumStages, time.Second)
	tr.Observe(NumStages+3, time.Second)
	if tr.StageHist(NumStages) != nil {
		t.Fatal("StageHist accepted an out-of-range stage")
	}
}

func TestTracerRegisterNames(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(1)
	tr.Register(reg, "goldilocksd")
	tr.Observe(StageApply, 3*time.Microsecond)

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for st := Stage(0); st < NumStages; st++ {
		want := "goldilocksd_stage_" + st.String() + "_us"
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if !strings.Contains(out, "goldilocksd_stage_apply_us_count 1") {
		t.Errorf("apply histogram count not exported:\n%s", out)
	}
}

func TestStageStringUnknown(t *testing.T) {
	if got := (NumStages + 1).String(); got != "unknown" {
		t.Fatalf("out-of-range Stage.String() = %q, want unknown", got)
	}
}
