package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxProvSteps caps the number of recorded provenance steps. Races at
// the end of very long synchronization segments would otherwise attach
// unbounded reports; the surplus is counted in Elided. Both engines cap
// identically, so determinism across representations is preserved.
const MaxProvSteps = 256

// ProvStep is one effective rule application on the examined
// synchronization path: the action, the rule it fired, and the lockset
// after it.
type ProvStep struct {
	Seq    uint64 `json:"seq"`
	Action string `json:"action"`
	Rule   int    `json:"rule"`
	After  string `json:"after"`
}

// Provenance explains a detected race: the synchronization path the
// detector examined between the previous access and the racing one,
// showing how the variable's lockset evolved and why no release–acquire
// (or transactional) chain reached the accessing thread.
//
// It is reconstructed from the synchronization event list when the race
// is detected — a cold path, since a raced variable is done being
// interesting — and attached to the detect.Race that reaches the
// DataRaceException and the CLI reports.
type Provenance struct {
	// Var is the racing variable, e.g. "o10.f0".
	Var string `json:"var"`
	// Prev renders the previous conflicting access, e.g. "T1:write(o10.f0)".
	Prev string `json:"prev"`
	// Thread is the accessing thread the chain failed to reach, e.g. "T2".
	Thread string `json:"thread"`
	// Base is the variable's lockset just after the previous access.
	Base string `json:"base"`
	// Steps are the rule applications that changed the lockset along the
	// examined path, in synchronization order.
	Steps []ProvStep `json:"steps,omitempty"`
	// Elided counts effective steps beyond MaxProvSteps not recorded.
	Elided int `json:"elided,omitempty"`
	// Final is the lockset at the racing access.
	Final string `json:"final"`
	// Truncated marks a path whose origin cells were already garbage
	// collected: the reconstruction starts from the earliest retained
	// evaluation point instead of the previous access itself.
	Truncated bool `json:"truncated,omitempty"`
}

// Rules returns the distinct rules that fired along the path, in first-
// fired order.
func (p *Provenance) Rules() []int {
	seen := make(map[int]bool, NumRules)
	var out []int
	for _, s := range p.Steps {
		if !seen[s.Rule] {
			seen[s.Rule] = true
			out = append(out, s.Rule)
		}
	}
	return out
}

// Path renders the lockset evolution, e.g. "{T1}→{T1, o20.lock}→{T1, T3, o20.lock}".
func (p *Provenance) Path() string {
	var b strings.Builder
	b.WriteString(p.Base)
	for _, s := range p.Steps {
		b.WriteString("→")
		b.WriteString(s.After)
	}
	return b.String()
}

// String renders the one-line summary printed under a race report, e.g.
//
//	prev T1:write(o10.f0); lockset evolved {T1}→{T1, o20.lock} via rules 2; no synchronization chain reached T2
func (p *Provenance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prev %s; lockset evolved %s", p.Prev, p.Path())
	if rules := p.Rules(); len(rules) > 0 {
		parts := make([]string, len(rules))
		for i, r := range rules {
			parts[i] = strconv.Itoa(r)
		}
		fmt.Fprintf(&b, " via rules %s", strings.Join(parts, ","))
	}
	if p.Elided > 0 {
		fmt.Fprintf(&b, " (+%d steps elided)", p.Elided)
	}
	if p.Truncated {
		b.WriteString(" (origin collected; path truncated)")
	}
	fmt.Fprintf(&b, "; no synchronization chain reached %s", p.Thread)
	return b.String()
}
