package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of metrics, exportable as a JSON
// snapshot (for -stats-json and /debug/vars) and as Prometheus text
// format (for /metrics). Metric names follow Prometheus conventions
// (snake_case with a subsystem prefix) and may carry a label suffix in
// curly braces, e.g. `goldilocks_rule_fires_total{rule="2"}` — the
// exporter groups such families under one TYPE line.
//
// Registration is expected at setup time; reads (scrapes) may be
// concurrent with further registration and with the counters being
// incremented.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]GaugeFunc
	hists    map[string]*Histogram
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]GaugeFunc),
		hists:    make(map[string]*Histogram),
		series:   make(map[string]*Series),
	}
}

// RegisterCounter binds an existing counter under name. It returns c
// for chaining; re-registering a name replaces the binding.
func (r *Registry) RegisterCounter(name string, c *Counter) *Counter {
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
	return c
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// RegisterGaugeFunc binds a scrape-time gauge under name.
func (r *Registry) RegisterGaugeFunc(name string, f GaugeFunc) {
	r.mu.Lock()
	r.gauges[name] = f
	r.mu.Unlock()
}

// Unregister removes the binding under name from every metric kind.
// Scrapes already in flight keep the snapshot they copied; later ones
// no longer see the name. Used when per-session metrics outlive their
// session (a migrated-away or dropped daemon session).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	delete(r.counters, name)
	delete(r.gauges, name)
	delete(r.hists, name)
	delete(r.series, name)
	r.mu.Unlock()
}

// RegisterHistogram binds an existing histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) *Histogram {
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
	return h
}

// RegisterSeries binds a time-series ring buffer under name. Series
// appear in the JSON snapshot only; Prometheus scrapes build their own
// time dimension from the underlying gauges.
func (r *Registry) RegisterSeries(name string, s *Series) *Series {
	r.mu.Lock()
	r.series[name] = s
	r.mu.Unlock()
	return s
}

// snapshotMaps copies the binding maps so exports don't hold the lock
// while formatting.
func (r *Registry) snapshotMaps() (map[string]*Counter, map[string]GaugeFunc, map[string]*Histogram, map[string]*Series) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cs := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		cs[k] = v
	}
	gs := make(map[string]GaugeFunc, len(r.gauges))
	for k, v := range r.gauges {
		gs[k] = v
	}
	hs := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hs[k] = v
	}
	ss := make(map[string]*Series, len(r.series))
	for k, v := range r.series {
		ss[k] = v
	}
	return cs, gs, hs, ss
}

// histSnapshot is the JSON shape of a histogram.
type histSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Mean    float64      `json:"mean"`
	Buckets []HistBucket `json:"buckets"`
}

// Snapshot returns the current value of every metric as a JSON-ready
// map: counters and gauges as numbers, histograms as bucket objects,
// series as point lists.
func (r *Registry) Snapshot() map[string]any {
	cs, gs, hs, ss := r.snapshotMaps()
	out := make(map[string]any, len(cs)+len(gs)+len(hs)+len(ss))
	for name, c := range cs {
		out[name] = c.Load()
	}
	for name, g := range gs {
		out[name] = g()
	}
	for name, h := range hs {
		out[name] = histSnapshot{Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(), Buckets: h.Buckets()}
	}
	for name, s := range ss {
		out[name] = s.Points()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON. Histogram +Inf bucket
// bounds marshal as the string "+Inf" (JSON has no infinity).
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sanitizeJSON(snap))
}

// JSONValue returns the snapshot with non-finite floats already
// replaced, safe to embed in a larger document passed to json.Marshal
// (the composite -stats-json output).
func (r *Registry) JSONValue() any {
	return sanitizeJSON(r.Snapshot())
}

// sanitizeJSON replaces non-finite floats (histogram +Inf bounds) with
// strings so encoding/json does not error.
func sanitizeJSON(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = sanitizeJSON(e)
		}
		return out
	case histSnapshot:
		bs := make([]map[string]any, len(x.Buckets))
		for i, b := range x.Buckets {
			le := any(b.UpperBound)
			if math.IsInf(b.UpperBound, 1) {
				le = "+Inf"
			}
			bs[i] = map[string]any{"le": le, "count": b.Count}
		}
		return map[string]any{"count": x.Count, "sum": x.Sum, "mean": x.Mean, "buckets": bs}
	default:
		return v
	}
}

// baseName strips a {label} suffix: `x_total{rule="2"}` → `x_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4), grouping labeled families under one TYPE
// line and rendering histograms with cumulative le buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	cs, gs, hs, _ := r.snapshotMaps()

	typed := make(map[string]string) // base name -> TYPE already emitted
	emitType := func(name, typ string) string {
		base := baseName(name)
		head := ""
		if typed[base] == "" {
			head = fmt.Sprintf("# TYPE %s %s\n", base, typ)
			typed[base] = typ
		}
		return head
	}

	var b strings.Builder
	for _, name := range sortedKeys(cs) {
		b.WriteString(emitType(name, "counter"))
		fmt.Fprintf(&b, "%s %d\n", name, cs[name].Load())
	}
	for _, name := range sortedKeys(gs) {
		b.WriteString(emitType(name, "gauge"))
		fmt.Fprintf(&b, "%s %v\n", name, gs[name]())
	}
	for _, name := range sortedKeys(hs) {
		h := hs[name]
		base := baseName(name)
		b.WriteString(emitType(name, "histogram"))
		for _, bk := range h.Buckets() {
			le := "+Inf"
			if !math.IsInf(bk.UpperBound, 1) {
				le = fmt.Sprintf("%g", bk.UpperBound)
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", base, le, bk.Count)
		}
		fmt.Fprintf(&b, "%s_sum %d\n", base, h.Sum())
		fmt.Fprintf(&b, "%s_count %d\n", base, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
