// Package obs is the detector telemetry layer: a low-overhead metrics
// registry (atomic counters, gauges, histograms, ring-buffered time
// series), an optional structured lockset-transition trace hook, race
// provenance records, and live introspection endpoints (/metrics in
// Prometheus text format, /debug/vars in JSON, net/http/pprof).
//
// The package deliberately sits below every detector package: it
// imports only internal/event and the standard library, so
// internal/core, internal/jrt, internal/bench and the commands can all
// thread telemetry through without cycles.
//
// Design constraints (see docs/OBSERVABILITY.md):
//
//   - Disabled telemetry must cost the engine's access hot path at most
//     a nil-check branch per instrumentation site and zero allocations;
//     the engine holds a *Telemetry pointer that is nil when telemetry
//     is off, and every site is gated on it.
//   - Enabled telemetry uses only atomic counters on hot paths; ring
//     buffers and string formatting are confined to the trace hook
//     (opt-in per variable filter) and to race provenance (built only
//     when a race is detected, which ends checking for that variable).
//   - Counters must be deterministic: replaying one linearization twice
//     — or through the spec and optimized engines — yields identical
//     per-rule fire counts (TestMetricsDeterminism pins this).
package obs

import "goldilocks/internal/event"

// The canonical numbering of the Figure 5 lockset update rules, used by
// the per-rule fire counters, the trace hook, and provenance records.
// One rule fires per processed action, which makes the counts
// representation-independent: the eager SpecEngine and the lazy
// optimized Engine agree on them for the same linearization.
const (
	// RuleAccess (rule 1): a race-free plain access by t resets
	// LS(o,d) := {t}.
	RuleAccess = 1
	// RuleRelease (rule 2): rel(t, o) — if t ∈ LS, add the lock (o, l).
	RuleRelease = 2
	// RuleAcquire (rule 3): acq(t, o) — if (o, l) ∈ LS, add t.
	RuleAcquire = 3
	// RuleVolatileWrite (rule 4): write(t, o, v) — if t ∈ LS, add (o, v).
	RuleVolatileWrite = 4
	// RuleVolatileRead (rule 5): read(t, o, v) — if (o, v) ∈ LS, add t.
	RuleVolatileRead = 5
	// RuleFork (rule 6): fork(t, u) — if t ∈ LS, add u.
	RuleFork = 6
	// RuleJoin (rule 7): join(t, u) — if u ∈ LS, add t.
	RuleJoin = 7
	// RuleAlloc (rule 8): alloc(t, o) — reset the locksets of o's fields.
	RuleAlloc = 8
	// RuleCommit (rule 9): commit(t, R, W) — the transactional
	// synchronizes-with rule under the configured semantics.
	RuleCommit = 9
	// RuleChanSend (rule 10): send(t, c) — on the message's conveyor-slot
	// element e: if e ∈ LS, add t (acquire the slot's prior recv), then
	// if t ∈ LS, add e (release the message to its recv).
	RuleChanSend = 10
	// RuleChanRecv (rule 11): recv(t, c) — the dual of rule 10 on the
	// same slot element; for a drained closed channel, acquire-only from
	// the channel's closed element.
	RuleChanRecv = 11
	// RuleChanClose (rule 12): close(t, c) — if t ∈ LS, add the channel's
	// closed element (broadcast release to all later drain recvs).
	RuleChanClose = 12

	// NumRules is the count of lockset update rules: the nine Figure 5
	// rules plus the three channel extensions; valid rule numbers are
	// 1..NumRules.
	NumRules = 12
)

// RuleOf maps an action kind to the update rule it triggers, or 0 for
// kinds that trigger none (plain data accesses trigger RuleAccess, but
// only after their happens-before check passes — callers count those at
// the access site, not per action kind).
func RuleOf(k event.Kind) int {
	switch k {
	case event.KindRelease:
		return RuleRelease
	case event.KindAcquire:
		return RuleAcquire
	case event.KindVolatileWrite:
		return RuleVolatileWrite
	case event.KindVolatileRead:
		return RuleVolatileRead
	case event.KindFork:
		return RuleFork
	case event.KindJoin:
		return RuleJoin
	case event.KindAlloc:
		return RuleAlloc
	case event.KindCommit:
		return RuleCommit
	case event.KindChanSend:
		return RuleChanSend
	case event.KindChanRecv:
		return RuleChanRecv
	case event.KindChanClose:
		return RuleChanClose
	}
	return 0
}

// ruleNames index by rule number; 0 is unused.
var ruleNames = [NumRules + 1]string{
	RuleAccess:        "access-reset",
	RuleRelease:       "release",
	RuleAcquire:       "acquire",
	RuleVolatileWrite: "volatile-write",
	RuleVolatileRead:  "volatile-read",
	RuleFork:          "fork",
	RuleJoin:          "join",
	RuleAlloc:         "alloc",
	RuleCommit:        "commit",
	RuleChanSend:      "chan-send",
	RuleChanRecv:      "chan-recv",
	RuleChanClose:     "chan-close",
}

// RuleName returns the short name of a rule number, or "unknown".
func RuleName(rule int) string {
	if rule >= 1 && rule <= NumRules {
		return ruleNames[rule]
	}
	return "unknown"
}
