package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestCloseWaitsForInFlightScrape is the regression test for the
// shutdown bug: Close used http.Server.Close, which tears down in-flight
// /metrics scrapes mid-response. A graceful Close must let a slow
// scrape finish. The slow scraper is simulated by a gauge that blocks
// inside the handler until after Close has been initiated.
func TestCloseWaitsForInFlightScrape(t *testing.T) {
	reg := NewRegistry()
	inHandler := make(chan struct{})
	release := make(chan struct{})
	var once bool
	reg.RegisterGaugeFunc("goldilocks_slow_gauge", func() float64 {
		if !once {
			once = true
			close(inHandler)
			<-release
		}
		return 42
	})

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}

	type result struct {
		body string
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		done <- result{body: string(body), err: err}
	}()

	<-inHandler // the scrape is inside the handler now
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	// Give Shutdown a moment to start draining, then let the scrape
	// complete.
	time.Sleep(20 * time.Millisecond)
	close(release)

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight scrape torn down by Close: %v", r.err)
	}
	if !strings.Contains(r.body, "goldilocks_slow_gauge 42") {
		t.Fatalf("scrape body incomplete: %q", r.body)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCloseFallsBackOnDeadline: a scrape that never finishes must not
// wedge Close forever — past the grace period it falls back to a hard
// close.
func TestCloseFallsBackOnDeadline(t *testing.T) {
	reg := NewRegistry()
	inHandler := make(chan struct{})
	release := make(chan struct{})
	var once bool
	reg.RegisterGaugeFunc("goldilocks_stuck_gauge", func() float64 {
		if !once {
			once = true
			close(inHandler)
			<-release
		}
		return 0
	})

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	srv.SetCloseGrace(50 * time.Millisecond)
	defer close(release)

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err == nil {
			_, err = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()

	<-inHandler
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after fallback: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v; the deadline fallback did not fire", elapsed)
	}
	<-errc // the torn scrape errors out; only liveness matters here
}
