package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux returns the introspection handler tree:
//
//	/metrics       Prometheus text format
//	/debug/vars    JSON snapshot of the registry
//	/debug/pprof/  net/http/pprof profiles
//
// The endpoints expose internal state and profiling data and carry no
// authentication; bind them to localhost or a trusted network only (see
// docs/OBSERVABILITY.md).
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	mux   *http.ServeMux
	grace time.Duration
}

// DefaultCloseGrace is how long Close waits for in-flight scrapes to
// complete before tearing connections down.
const DefaultCloseGrace = 2 * time.Second

// Serve starts the introspection server on addr (e.g. "localhost:6060";
// port 0 picks a free port) and returns immediately. The caller should
// Close it on shutdown.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := NewMux(reg)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, mux: mux, grace: DefaultCloseGrace}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:6060".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle mounts an extra handler on the introspection mux (e.g. the
// cluster-wide /cluster/metrics rollup). http.ServeMux registration is
// safe while serving.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// SetCloseGrace overrides the graceful-shutdown deadline (tests).
func (s *Server) SetCloseGrace(d time.Duration) { s.grace = d }

// Close shuts the server down gracefully: it stops accepting new
// connections and waits up to the grace period for in-flight scrapes to
// finish (a scrape cut off mid-response would hand the collector a torn
// exposition), falling back to a hard close when the deadline expires.
// A nil Server is a no-op.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.grace)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
