package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// LocksetTransition is one structured trace record: a lockset update
// observed for a traced variable, either at an access (rule 1/9 reset)
// or during a lazy-evaluation walk (rules 2–7, 9 growing the set).
type LocksetTransition struct {
	// Seq is the position in the extended synchronization order of the
	// action that caused the transition.
	Seq uint64 `json:"seq"`
	// Var is the variable whose lockset changed, e.g. "o10.f0".
	Var string `json:"var"`
	// Rule is the Figure 5 rule that fired (1..9).
	Rule int `json:"rule"`
	// Action renders the causing action, e.g. "T1:rel(o20)".
	Action string `json:"action"`
	// Lockset renders the lockset after the transition.
	Lockset string `json:"lockset"`
}

func (t LocksetTransition) String() string {
	return fmt.Sprintf("seq=%d %s rule %d (%s) via %s -> %s",
		t.Seq, t.Var, t.Rule, RuleName(t.Rule), t.Action, t.Lockset)
}

// TraceHook is the optional structured trace of lockset transitions:
// a fixed-capacity ring buffer fed by the engine for a filtered set of
// variables. It ships disabled; the only cost on the instrumented path
// while disabled is one atomic bool load (and the engine only reaches
// that load when telemetry as a whole is enabled).
type TraceHook struct {
	enabled atomic.Bool

	mu      sync.Mutex
	filter  map[string]bool // variable names; empty means every variable
	buf     []LocksetTransition
	next    int
	wrapped bool
	dropped uint64 // transitions overwritten after wrap
}

// NewTraceHook returns a hook with the given ring capacity (minimum 1),
// disabled until Enable is called.
func NewTraceHook(capacity int) *TraceHook {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceHook{buf: make([]LocksetTransition, capacity)}
}

// Enable turns the hook on for the named variables (e.g. "o10.f0");
// with no names every variable is traced. Safe to call while the
// engine is running.
func (h *TraceHook) Enable(vars ...string) {
	h.mu.Lock()
	h.filter = make(map[string]bool, len(vars))
	for _, v := range vars {
		h.filter[v] = true
	}
	h.mu.Unlock()
	h.enabled.Store(true)
}

// Disable turns the hook off; the buffered transitions remain readable.
func (h *TraceHook) Disable() { h.enabled.Store(false) }

// Enabled reports whether the hook is recording. A nil hook is
// disabled.
func (h *TraceHook) Enabled() bool { return h != nil && h.enabled.Load() }

// Match reports whether transitions of the named variable are traced.
func (h *TraceHook) Match(varName string) bool {
	if !h.Enabled() {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.filter) == 0 || h.filter[varName]
}

// Record appends one transition, overwriting the oldest past capacity.
func (h *TraceHook) Record(t LocksetTransition) {
	h.mu.Lock()
	if h.wrapped {
		h.dropped++
	}
	h.buf[h.next] = t
	h.next++
	if h.next == len(h.buf) {
		h.next = 0
		h.wrapped = true
	}
	h.mu.Unlock()
}

// Snapshot returns the retained transitions oldest-first and the count
// of older transitions that were overwritten.
func (h *TraceHook) Snapshot() (transitions []LocksetTransition, dropped uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.wrapped {
		out := make([]LocksetTransition, h.next)
		copy(out, h.buf[:h.next])
		return out, h.dropped
	}
	out := make([]LocksetTransition, 0, len(h.buf))
	out = append(out, h.buf[h.next:]...)
	out = append(out, h.buf[:h.next]...)
	return out, h.dropped
}
