package detect_test

import (
	"strings"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
)

func racyTrace() *event.Trace {
	return event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Write(2, 10, 0). // race at 2
		Write(1, 11, 0).
		Write(2, 11, 0). // race at 4
		Trace()
}

func TestRunTraceAssignsPositions(t *testing.T) {
	races := detect.RunTrace(core.New(), racyTrace())
	if len(races) != 2 {
		t.Fatalf("races = %d, want 2", len(races))
	}
	if races[0].Pos != 2 || races[1].Pos != 4 {
		t.Errorf("positions = %d, %d", races[0].Pos, races[1].Pos)
	}
}

func TestFirstRaceStopsEarly(t *testing.T) {
	r := detect.FirstRace(core.New(), racyTrace())
	if r == nil || r.Pos != 2 {
		t.Fatalf("first race = %v", r)
	}
	if r.Var != (event.Variable{Obj: 10, Field: 0}) {
		t.Errorf("var = %v", r.Var)
	}
}

func TestRacyVars(t *testing.T) {
	vars := detect.RacyVars(core.New(), racyTrace())
	if len(vars) != 2 {
		t.Errorf("racy vars = %v", vars)
	}
}

func TestRaceString(t *testing.T) {
	r := detect.Race{
		Var:    event.Variable{Obj: 10, Field: 0},
		Access: event.Write(2, 10, 0),
		Pos:    2,
	}
	if s := r.String(); !strings.Contains(s, "o10.f0") || !strings.Contains(s, "action 2") {
		t.Errorf("String() = %q", s)
	}
	r.Prev = event.Write(1, 10, 0)
	r.HasPrev = true
	if s := r.String(); !strings.Contains(s, "conflicts with") {
		t.Errorf("String() with prev = %q", s)
	}
}
