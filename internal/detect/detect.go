// Package detect defines the interface shared by all dynamic race
// detectors in this repository: the generalized Goldilocks engines
// (internal/core), the vector-clock detector (internal/hb), and the
// Eraser-style baselines (internal/detectors/...).
//
// A detector consumes a linearization of an execution one action at a
// time and reports the race, if any, caused by that action. Precise
// detectors (Goldilocks, vector clock) report exactly the actual races
// as defined in Section 3 of the paper; the Eraser baselines may report
// false positives, which is the precision gap the paper quantifies.
package detect

import (
	"fmt"

	"goldilocks/internal/event"
	"goldilocks/internal/obs"
)

// Race describes a data race detected at an access. Pos is the index in
// the linearization of the access that completed the race (the access a
// DataRaceException would interrupt); Prev describes the earlier
// conflicting access when the detector knows it (the lockset baselines
// do not track it and leave Prev zero). Prov, when the detector supports
// it (both Goldilocks engines do), explains the verdict: the
// synchronization path examined between the two accesses and how the
// variable's lockset evolved along it.
type Race struct {
	Var     event.Variable
	Access  event.Action
	Pos     int
	Prev    event.Action
	HasPrev bool
	Prov    *obs.Provenance
}

func (r *Race) String() string {
	if r.HasPrev {
		return fmt.Sprintf("race on %v at action %d (%v), conflicts with %v", r.Var, r.Pos, r.Access, r.Prev)
	}
	return fmt.Sprintf("race on %v at action %d (%v)", r.Var, r.Pos, r.Access)
}

// Detector is an online race detector over a linearized execution.
type Detector interface {
	// Name identifies the detector in reports and benchmarks.
	Name() string
	// Step processes the next action of the linearization and returns
	// the races it causes (nil or empty when race-free). An action may
	// cause several races at once: a transaction commit checks every
	// variable in its read and write sets.
	Step(a event.Action) []Race
}

// RunTrace drives det over tr and returns every reported race in order.
func RunTrace(det Detector, tr *event.Trace) []Race {
	var out []Race
	for i := 0; i < tr.Len(); i++ {
		rs := det.Step(tr.At(i))
		for _, r := range rs {
			r.Pos = i
			out = append(out, r)
		}
	}
	return out
}

// FirstRace drives det over tr until the first race and returns it, or
// nil if the trace is race-free under det.
func FirstRace(det Detector, tr *event.Trace) *Race {
	for i := 0; i < tr.Len(); i++ {
		rs := det.Step(tr.At(i))
		if len(rs) > 0 {
			r := rs[0]
			r.Pos = i
			return &r
		}
	}
	return nil
}

// RacyVars drives det over the whole trace and returns the set of
// variables reported racy. Checking for a variable is "disabled" after
// its first race, mirroring the paper's measurement methodology.
type racySet map[event.Variable]bool

// RacyVars returns the distinct variables det reports racy on tr.
func RacyVars(det Detector, tr *event.Trace) map[event.Variable]bool {
	out := make(racySet)
	for i := 0; i < tr.Len(); i++ {
		for _, r := range det.Step(tr.At(i)) {
			out[r.Var] = true
		}
	}
	return out
}
