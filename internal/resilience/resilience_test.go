package resilience

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"goldilocks/internal/event"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.ShouldPanic(event.Variable{Obj: 1, Field: 0}) {
		t.Error("nil injector panicked a check")
	}
	if inj.Pressure() != 0 {
		t.Error("nil injector reported pressure")
	}
	var buf bytes.Buffer
	w := inj.WrapTraceWriter(&buf)
	w.Write([]byte("abc"))
	if buf.String() != "abc" {
		t.Error("nil injector altered writes")
	}
}

func TestInjectorPanicOnVars(t *testing.T) {
	v := event.Variable{Obj: 7, Field: 2}
	inj := &Injector{PanicOnVars: []event.Variable{v}}
	if !inj.ShouldPanic(v) {
		t.Error("listed variable not panicked")
	}
	if inj.ShouldPanic(event.Variable{Obj: 7, Field: 3}) {
		t.Error("unlisted variable panicked")
	}
}

func TestInjectorPanicEveryN(t *testing.T) {
	inj := &Injector{PanicEveryN: 3}
	v := event.Variable{Obj: 1, Field: 0}
	hits := 0
	for i := 0; i < 9; i++ {
		if inj.ShouldPanic(v) {
			hits++
		}
	}
	if hits != 3 {
		t.Errorf("PanicEveryN=3 over 9 checks hit %d times, want 3", hits)
	}
}

func TestTruncatingWriter(t *testing.T) {
	inj := &Injector{TruncateTraceBytes: 5}
	var buf bytes.Buffer
	w := inj.WrapTraceWriter(&buf)
	// The caller must observe complete success, as a crashed process
	// would have before the crash.
	for _, chunk := range []string{"abc", "defg", "hij"} {
		n, err := w.Write([]byte(chunk))
		if err != nil || n != len(chunk) {
			t.Fatalf("write(%q) = (%d, %v)", chunk, n, err)
		}
	}
	if got := buf.String(); got != "abcde" {
		t.Errorf("truncated output = %q, want %q", got, "abcde")
	}
}

func TestParseErrorPolicy(t *testing.T) {
	for s, want := range map[string]ErrorPolicy{"quarantine": Quarantine, "abort": Abort} {
		got, err := ParseErrorPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseErrorPolicy(%q) = (%v, %v), want %v", s, got, err, want)
		}
	}
	if _, err := ParseErrorPolicy("explode"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestReportError(t *testing.T) {
	r := &Report{
		Kind: Deadlock,
		Blocked: []ThreadState{
			{Thread: "T1", Held: []string{"o3"}},
			{Thread: "T2", Held: []string{"o5", "o4"}},
		},
		Elapsed: 1500 * time.Millisecond,
	}
	msg := r.Error()
	for _, want := range []string{"deadlock", "T1", "T2", "o3", "o4,o5", "1.5s"} {
		if !strings.Contains(msg, want) {
			t.Errorf("report %q missing %q", msg, want)
		}
	}
	to := &Report{Kind: Timeout, Elapsed: time.Second, Detail: "explored 12 schedules"}
	if msg := to.Error(); !strings.Contains(msg, "timeout") || !strings.Contains(msg, "12 schedules") {
		t.Errorf("timeout report %q", msg)
	}
}

func TestRungStrings(t *testing.T) {
	want := map[DegradationRung]string{
		RungNormal:       "normal",
		RungAggressiveGC: "aggressive-gc",
		RungShedCaches:   "shed-caches",
		RungDegraded:     "degraded",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}
