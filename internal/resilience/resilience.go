// Package resilience is the hardening layer of the detection pipeline.
// The paper's central claim is that DataRaceException turns races into
// recoverable, language-level events; this package extends the same
// philosophy to the detector itself: a detector bug, a deadlocked
// schedule, or unbounded event-list growth must degrade the *detector*,
// never crash the monitored program.
//
// It provides four pieces, threaded through internal/core, internal/jrt
// and the commands:
//
//   - ErrorPolicy: what a recover barrier does with a panicking detector
//     check (quarantine the variable, or abort as before);
//   - DegradationRung: the memory governor's escalation ladder, from
//     normal lazy evaluation down to short-circuit-only checking;
//   - Report: a structured description of a scheduler deadlock or an
//     exploration timeout (blocked threads, held locks, elapsed time),
//     replacing raw-string panics;
//   - Injector: fault injection (forced detector panics, simulated
//     allocation pressure, trace-write truncation) so every recovery
//     path can be exercised end-to-end by tests.
//
// See docs/ROBUSTNESS.md for the operational story.
package resilience

import (
	"fmt"
	"io"
	"sync/atomic"

	"goldilocks/internal/event"
	"goldilocks/internal/report"
)

// ErrorPolicy selects what the detection pipeline does when a detector
// check panics.
type ErrorPolicy uint8

const (
	// Quarantine recovers the panic, stops checking the offending
	// variable, counts it in the stats, and lets the monitored program
	// continue. This is the default: a detector bug costs coverage of
	// one variable, not the process.
	Quarantine ErrorPolicy = iota
	// Abort re-raises the panic (the pre-hardening behaviour), for
	// debugging the detector itself.
	Abort
)

// ParseErrorPolicy parses the -on-detector-error flag values.
func ParseErrorPolicy(s string) (ErrorPolicy, error) {
	switch s {
	case "quarantine":
		return Quarantine, nil
	case "abort":
		return Abort, nil
	}
	return Quarantine, fmt.Errorf("unknown detector-error policy %q (want quarantine or abort)", s)
}

func (p ErrorPolicy) String() string {
	if p == Abort {
		return "abort"
	}
	return "quarantine"
}

// DegradationRung is one step of the memory governor's escalation
// ladder. The governor climbs (never descends) while the event list
// stays over its budget; each rung trades precision or speed for
// bounded memory.
type DegradationRung int32

const (
	// RungNormal: lazy lockset evaluation, GC at Options.GCThreshold.
	RungNormal DegradationRung = iota
	// RungAggressiveGC: collections use an aggressive partially-eager
	// trim (half the list) instead of the configured fraction.
	RungAggressiveGC
	// RungShedCaches: memoized happens-before caches are shed and every
	// Info is advanced to the list tail (a fully-eager sweep), so the
	// whole retained prefix can be freed. Precision is kept; per-sweep
	// cost is O(vars · list).
	RungShedCaches
	// RungDegraded: the event list is frozen and checks fall back to the
	// short-circuits alone; inconclusive checks are assumed ordered.
	// Races that need a lockset walk are missed (Eraser-style
	// imprecision, in the false-negative direction), but memory is hard-
	// bounded and the program keeps running.
	RungDegraded
)

func (r DegradationRung) String() string {
	switch r {
	case RungNormal:
		return "normal"
	case RungAggressiveGC:
		return "aggressive-gc"
	case RungShedCaches:
		return "shed-caches"
	case RungDegraded:
		return "degraded"
	}
	return fmt.Sprintf("rung(%d)", int32(r))
}

// ReportKind discriminates structured failure reports. The concrete
// type lives in the leaf package internal/report so that low-level
// packages (internal/event) can build reports without importing this
// package; the aliases keep every existing call site source-compatible.
type ReportKind = report.Kind

const (
	// Deadlock: every live thread of the deterministic scheduler is
	// blocked.
	Deadlock = report.Deadlock
	// Timeout: a wall-clock budget expired (systematic exploration).
	Timeout = report.Timeout
	// Corruption: persistent state (a checkpoint, a replica, a trace
	// stream record) failed its integrity checks and was quarantined
	// instead of trusted.
	Corruption = report.Corruption
)

// ThreadState describes one blocked thread in a Report. The JSON tags
// shape the -stats-json / introspection exports.
type ThreadState = report.ThreadState

// Report is a structured failure report (scheduler deadlock,
// exploration timeout, persistent-state corruption): what raw-string
// panics used to carry, now machine-readable and recoverable. It
// implements error.
type Report = report.Report

// Injector injects faults into the detection pipeline for resilience
// testing. The zero value (and a nil *Injector) injects nothing; every
// method is nil-receiver safe so production code can consult it
// unconditionally.
type Injector struct {
	// PanicOnVars forces the detector check of each listed variable to
	// panic, exercising the quarantine path.
	PanicOnVars []event.Variable
	// PanicEveryN, when positive, panics on every N-th detector check
	// (counted across all variables).
	PanicEveryN int64
	// ExtraListCells simulates allocation pressure: the memory governor
	// sees the event list as this many cells longer than it really is.
	ExtraListCells int
	// TruncateTraceBytes, when positive, makes writers wrapped by
	// WrapTraceWriter silently discard everything past this many bytes,
	// simulating a crash in the middle of a trace write.
	TruncateTraceBytes int

	checks atomic.Int64
}

// ShouldPanic reports whether the detector check of v must be made to
// fail now.
func (inj *Injector) ShouldPanic(v event.Variable) bool {
	if inj == nil {
		return false
	}
	for _, pv := range inj.PanicOnVars {
		if pv == v {
			return true
		}
	}
	if inj.PanicEveryN > 0 && inj.checks.Add(1)%inj.PanicEveryN == 0 {
		return true
	}
	return false
}

// Pressure returns the simulated extra event-list cells.
func (inj *Injector) Pressure() int {
	if inj == nil {
		return 0
	}
	return inj.ExtraListCells
}

// WrapTraceWriter wraps w so that writes past TruncateTraceBytes are
// silently dropped (byte-exact truncation mid-record, as a crash would
// leave). With no truncation configured it returns w unchanged.
func (inj *Injector) WrapTraceWriter(w io.Writer) io.Writer {
	if inj == nil || inj.TruncateTraceBytes <= 0 {
		return w
	}
	return &truncWriter{w: w, left: inj.TruncateTraceBytes}
}

type truncWriter struct {
	w    io.Writer
	left int
}

// Write forwards at most left bytes and then pretends the rest
// succeeded: the caller sees no error, exactly like a crash after the
// kernel buffered a partial write.
func (t *truncWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		return len(p), nil
	}
	n := len(p)
	if n > t.left {
		n = t.left
	}
	if _, err := t.w.Write(p[:n]); err != nil {
		return 0, err
	}
	t.left -= n
	return len(p), nil
}

// Standard exit codes shared by cmd/goldilocks and cmd/racereplay.
const (
	// ExitClean: run completed, no races.
	ExitClean = 0
	// ExitRace: run completed and at least one race was reported.
	ExitRace = 1
	// ExitUsage: bad flags or arguments.
	ExitUsage = 2
	// ExitRuntime: runtime failure — I/O or parse errors, interpreter
	// errors, scheduler deadlock, exploration timeout.
	ExitRuntime = 3
)
