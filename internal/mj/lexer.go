package mj

import (
	"fmt"
	"strings"
	"unicode"
)

// LexError is a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

// Lex tokenizes src. Comments (// and /* */) are skipped; pragma
// comments of the form //@ ... are turned into the Pragmas list for the
// static analyses.
func Lex(src string) ([]Token, []Pragma, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, l.pragmas, nil
		}
	}
}

// Pragma is a //@ comment, the annotation channel for the RccJava-style
// analysis (e.g. "//@ race_free Data.sum phased").
type Pragma struct {
	Pos  Pos
	Text string
}

type lexer struct {
	src     string
	off     int
	line    int
	col     int
	pragmas []Pragma
}

func (l *lexer) errf(format string, args ...any) error {
	return &LexError{Pos: Pos{l.line, l.col}, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			start := Pos{l.line, l.col}
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			line := l.src[:l.off]
			if i := strings.LastIndexByte(line, '\n'); i >= 0 {
				line = line[i+1:]
			}
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "//@"); ok {
				l.pragmas = append(l.pragmas, Pragma{Pos: start, Text: strings.TrimSpace(rest)})
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil

	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		kind := TokInt
		if l.peek() == '.' && isDigit(l.peek2()) {
			kind = TokFloat
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		return Token{Kind: kind, Text: l.src[start:l.off], Pos: pos}, nil

	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.off >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\n' {
				return Token{}, l.errf("newline in string literal")
			}
			if ch == '\\' {
				if l.off >= len(l.src) {
					return Token{}, l.errf("unterminated escape")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					return Token{}, l.errf("unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: pos}, nil
	}

	two := func(k TokKind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Text: tokNames[k], Pos: pos}, nil
	}
	one := func(k TokKind) (Token, error) {
		l.advance()
		return Token{Kind: k, Text: tokNames[k], Pos: pos}, nil
	}

	switch c {
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ';':
		return one(TokSemi)
	case ',':
		return one(TokComma)
	case '.':
		return one(TokDot)
	case '+':
		return one(TokPlus)
	case '-':
		return one(TokMinus)
	case '*':
		return one(TokStar)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '=':
		if l.peek2() == '=' {
			return two(TokEq)
		}
		return one(TokAssign)
	case '!':
		if l.peek2() == '=' {
			return two(TokNe)
		}
		return one(TokNot)
	case '<':
		if l.peek2() == '=' {
			return two(TokLe)
		}
		return one(TokLt)
	case '>':
		if l.peek2() == '=' {
			return two(TokGe)
		}
		return one(TokGt)
	case '&':
		if l.peek2() == '&' {
			return two(TokAnd)
		}
	case '|':
		if l.peek2() == '|' {
			return two(TokOr)
		}
	}
	return Token{}, l.errf("unexpected character %q", c)
}
