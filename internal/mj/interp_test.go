package mj

import (
	"strings"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/jrt"
)

func detCfg(seed int64) jrt.Config {
	return jrt.Config{Detector: core.New(), Policy: jrt.Throw, Mode: jrt.Deterministic, Seed: seed}
}

// runMJ runs src and fails the test on front-end or runtime error.
func runMJ(t *testing.T, src string, cfg jrt.Config) (races int, out string) {
	t.Helper()
	rs, output, err := RunSource(src, cfg)
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	return len(rs), output
}

func TestInterpArithmeticAndControl(t *testing.T) {
	_, out := runMJ(t, `
class Main {
	int fib(int n) {
		if (n < 2) { return n; }
		return fib(n - 1) + fib(n - 2);
	}
	void main() {
		print(fib(10));
		int sum = 0;
		for (int i = 0; i < 10; i = i + 1) {
			if (i % 2 == 0) { continue; }
			sum = sum + i;
		}
		print(sum);
		print(7 / 2, 7 % 2, -3);
		print(1.5 + 1, 3 * 0.5);
		print("a" + "b");
		print(true && false, true || false, !true);
		print(2 < 3, 3 <= 3, 4 > 5, 5 >= 5, 1 == 1.0, "x" == "x");
	}
}
`, detCfg(1))
	want := "55\n25\n3 1 -3\n2.5 1.5\nab\nfalse true false\ntrue true false true true true\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestInterpObjectsAndArrays(t *testing.T) {
	_, out := runMJ(t, `
class Point { int x; int y;
	int sum() { return x + y; }
}
class Main {
	void main() {
		Point p = new Point();
		p.x = 3;
		p.y = 4;
		print(p.sum());
		int[][] m = new int[2][3];
		m[1][2] = 9;
		print(m.length, m[1].length, m[1][2], m[0][0]);
		Point q = null;
		print(q == null, p == p, p == q);
		string s = "hello";
		print(s.length);
	}
}
`, detCfg(1))
	want := "7\n2 3 9 0\ntrue true false\n5\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestInterpZeroValues(t *testing.T) {
	_, out := runMJ(t, `
class D { int i; double d; boolean b; string s; D next; }
class Main {
	void main() {
		D x = new D();
		print(x.i, x.d, x.b, x.next == null);
		int u;
		print(u);
	}
}
`, detCfg(1))
	want := "0 0 false true\n0\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestInterpNullPointer(t *testing.T) {
	_, _, err := RunSource(`
class D { int v; }
class Main { void main() { D d = null; d.v = 1; } }
`, detCfg(1))
	if err == nil || !strings.Contains(err.Error(), "null") {
		t.Errorf("err = %v, want null dereference", err)
	}
}

func TestInterpDivisionByZero(t *testing.T) {
	_, _, err := RunSource(`
class Main { void main() { int x = 0; print(1 / x); } }
`, detCfg(1))
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestInterpSpawnJoinAndLocking(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		races, out := runMJ(t, `
class Counter {
	int n;
	synchronized void inc() { n = n + 1; }
}
class Main {
	Counter c;
	void work() {
		for (int i = 0; i < 25; i = i + 1) { c.inc(); }
	}
	void main() {
		c = new Counter();
		thread a = spawn this.work();
		thread b = spawn this.work();
		join(a);
		join(b);
		print(c.n);
	}
}
`, detCfg(seed))
		if races != 0 {
			t.Fatalf("seed %d: synchronized counter raced", seed)
		}
		if out != "50\n" {
			t.Errorf("seed %d: out = %q", seed, out)
		}
	}
}

func TestInterpRaceCaughtWithTry(t *testing.T) {
	caught := 0
	for seed := int64(0); seed < 10; seed++ {
		_, out := runMJ(t, `
class D { int v; }
class Main {
	D d;
	void racer() { d.v = 1; }
	void main() {
		d = new D();
		thread t = spawn this.racer();
		try {
			d.v = 2;
			print("no exception here");
		} catch {
			print("caught race");
		}
		join(t);
	}
}
`, jrt.Config{Detector: core.New(), Policy: jrt.Throw, Mode: jrt.Deterministic, Seed: seed})
		if strings.Contains(out, "caught race") {
			caught++
		}
	}
	if caught == 0 {
		t.Error("no seed delivered the DataRaceException to the try/catch")
	}
}

func TestInterpVolatileHandshake(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		races, out := runMJ(t, `
class Box {
	int data;
	volatile boolean ready;
}
class Main {
	Box b;
	void consumer() {
		while (!b.ready) { }
		print(b.data);
	}
	void main() {
		b = new Box();
		thread t = spawn this.consumer();
		b.data = 42;
		b.ready = true;
		join(t);
	}
}
`, detCfg(seed))
		if races != 0 {
			t.Fatalf("seed %d: volatile publication raced", seed)
		}
		if out != "42\n" {
			t.Errorf("seed %d: out = %q", seed, out)
		}
	}
}

func TestInterpWaitNotify(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		races, out := runMJ(t, `
class Chan {
	int item;
	boolean full;
}
class Main {
	Chan ch;
	void producer() {
		for (int i = 1; i <= 3; i = i + 1) {
			synchronized (ch) {
				while (ch.full) { wait(ch); }
				ch.item = i * 10;
				ch.full = true;
				notifyall(ch);
			}
		}
	}
	void main() {
		ch = new Chan();
		thread p = spawn this.producer();
		for (int i = 0; i < 3; i = i + 1) {
			synchronized (ch) {
				while (!ch.full) { wait(ch); }
				print(ch.item);
				ch.full = false;
				notifyall(ch);
			}
		}
		join(p);
	}
}
`, detCfg(seed))
		if races != 0 {
			t.Fatalf("seed %d: wait/notify program raced", seed)
		}
		if out != "10\n20\n30\n" {
			t.Errorf("seed %d: out = %q", seed, out)
		}
	}
}

func TestInterpAtomicBlocks(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		races, out := runMJ(t, `
class Acct { int bal; }
class Main {
	Acct a;
	Acct b;
	void mover() {
		for (int i = 0; i < 10; i = i + 1) {
			atomic {
				a.bal = a.bal - 1;
				b.bal = b.bal + 1;
			}
		}
	}
	void main() {
		a = new Acct();
		b = new Acct();
		atomic { a.bal = 100; b.bal = 0; }
		thread t1 = spawn this.mover();
		thread t2 = spawn this.mover();
		join(t1);
		join(t2);
		int total = 0;
		atomic { total = a.bal + b.bal; }
		print(total, b.bal);
	}
}
`, detCfg(seed))
		if races != 0 {
			t.Fatalf("seed %d: transactional movers raced", seed)
		}
		if out != "100 20\n" {
			t.Errorf("seed %d: out = %q", seed, out)
		}
	}
}

// TestInterpAtomicLocalRollback: locals assigned inside an aborted
// transaction attempt are restored before the retry, so retries do not
// compound.
func TestInterpAtomicLocalRollback(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		_, out := runMJ(t, `
class Acct { int bal; }
class Main {
	Acct a;
	int observed;
	void bump() {
		atomic {
			int x = a.bal;
			x = x + 1;
			a.bal = x;
		}
	}
	void main() {
		a = new Acct();
		atomic { a.bal = 0; }
		thread t1 = spawn this.bump();
		thread t2 = spawn this.bump();
		join(t1);
		join(t2);
		atomic { observed = a.bal; }
		print(observed);
	}
}
`, detCfg(seed))
		if out != "2\n" {
			t.Errorf("seed %d: out = %q, want 2", seed, out)
		}
	}
}

func TestInterpMixedAtomicPlainRace(t *testing.T) {
	raced := false
	for seed := int64(0); seed < 20 && !raced; seed++ {
		rs, _, err := RunSource(`
class D { int v; }
class Main {
	D d;
	void plain() { d.v = 1; }
	void main() {
		d = new D();
		thread t = spawn this.plain();
		atomic { d.v = 2; }
		join(t);
	}
}
`, jrt.Config{Detector: core.New(), Policy: jrt.Log, Mode: jrt.Deterministic, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) > 0 {
			raced = true
		}
	}
	if !raced {
		t.Error("mixed atomic/plain conflict never reported in 20 seeds")
	}
}

func TestInterpNoMainErrors(t *testing.T) {
	if _, _, err := RunSource(`class Foo { void main() {} }`, detCfg(1)); err == nil {
		t.Error("missing Main class not reported")
	}
	if _, _, err := RunSource(`class Main { void main(int x) {} }`, detCfg(1)); err == nil {
		t.Error("main with params not reported")
	}
}

func TestInterpFreeMode(t *testing.T) {
	races, out := runMJ(t, `
class Counter { int n; synchronized void inc() { n = n + 1; } }
class Main {
	Counter c;
	void work() { for (int i = 0; i < 50; i = i + 1) { c.inc(); } }
	void main() {
		c = new Counter();
		thread a = spawn this.work();
		thread b = spawn this.work();
		thread d = spawn this.work();
		join(a); join(b); join(d);
		print(c.n);
	}
}
`, jrt.Config{Detector: core.New(), Policy: jrt.Throw, Mode: jrt.Free})
	if races != 0 {
		t.Fatal("free-mode counter raced")
	}
	if out != "150\n" {
		t.Errorf("out = %q", out)
	}
}

func TestInterpShadowingScopes(t *testing.T) {
	_, out := runMJ(t, `
class Main {
	void main() {
		int x = 1;
		{
			int y = x + 1;
			print(y);
		}
		for (int i = 0; i < 2; i = i + 1) { int z = i; print(z); }
		print(x);
	}
}
`, detCfg(1))
	if out != "2\n0\n1\n1\n" {
		t.Errorf("out = %q", out)
	}
}

// TestInterpSpawnedThreadException: a runtime exception in a spawned
// thread terminates that thread (Java semantics) and surfaces as an
// error from Run, rather than crashing the host process.
func TestInterpSpawnedThreadException(t *testing.T) {
	_, _, err := RunSource(`
class D { int v; }
class Main {
	void boom() {
		D d = null;
		d.v = 1;
	}
	void main() {
		thread t = spawn this.boom();
		join(t);
		print("main survived");
	}
}
`, detCfg(1))
	if err == nil || !strings.Contains(err.Error(), "null dereference") {
		t.Errorf("err = %v, want thread-terminating null dereference", err)
	}
}

// TestInterpTryWithControlFlow: return and break inside a try body
// escape the closure correctly.
func TestInterpTryWithControlFlow(t *testing.T) {
	_, out := runMJ(t, `
class Main {
	int f() {
		try {
			return 7;
		} catch {
			return 8;
		}
	}
	void main() {
		print(f());
		for (int i = 0; i < 10; i = i + 1) {
			try {
				if (i == 2) { break; }
			} catch { }
		}
		int i = 0;
		while (i < 5) {
			try {
				i = i + 1;
				if (i == 3) { continue; }
			} catch { }
		}
		print(i);
	}
}
`, detCfg(1))
	if out != "7\n5\n" {
		t.Errorf("out = %q", out)
	}
}

func TestInterpNumericEdgeCases(t *testing.T) {
	_, out := runMJ(t, `
class Main {
	void main() {
		print(-7 / 2, -7 % 2);
		print(0.1 + 0.2 > 0.3 - 0.0000001);
		double d = 10;
		print(d / 4);
		print(1 == 1.0, 2.5 == 2.5);
		int big = 1000000000;
		print(big * 3);
	}
}
`, detCfg(1))
	want := "-3 -1\ntrue\n2.5\ntrue true\n3000000000\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestInterpJoinNullThread(t *testing.T) {
	_, _, err := RunSource(`
class Main {
	void main() {
		thread t;
		join(t);
	}
}
`, detCfg(1))
	if err == nil || !strings.Contains(err.Error(), "null") {
		t.Errorf("err = %v, want null dereference on join of unset thread", err)
	}
}

func TestInterpDeepRecursion(t *testing.T) {
	_, out := runMJ(t, `
class Main {
	int sum(int n) {
		if (n == 0) { return 0; }
		return n + sum(n - 1);
	}
	void main() { print(sum(500)); }
}
`, detCfg(1))
	if out != "125250\n" {
		t.Errorf("out = %q", out)
	}
}

func TestInterpThreadArrayFanOut(t *testing.T) {
	races, out := runMJ(t, `
class Counter { int n; synchronized void inc() { n = n + 1; } }
class Main {
	Counter c;
	void work(int reps) { for (int i = 0; i < reps; i = i + 1) { c.inc(); } }
	void main() {
		c = new Counter();
		thread[] ts = new thread[6];
		for (int w = 0; w < 6; w = w + 1) { ts[w] = spawn this.work(w + 1); }
		for (int w = 0; w < 6; w = w + 1) { join(ts[w]); }
		print(c.n);
	}
}
`, detCfg(3))
	if races != 0 {
		t.Fatal("fan-out raced")
	}
	if out != "21\n" {
		t.Errorf("out = %q", out)
	}
}

func TestInterpStringEquality(t *testing.T) {
	_, out := runMJ(t, `
class Main {
	void main() {
		string a = "ab";
		string b = "a" + "b";
		print(a == b, a != b, a == "ab");
	}
}
`, detCfg(1))
	if out != "true false true\n" {
		t.Errorf("out = %q", out)
	}
}
