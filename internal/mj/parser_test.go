package mj

import (
	"testing"
)

func TestParseClassShape(t *testing.T) {
	prog := MustParse(`
class Point {
	int x;
	volatile boolean ready;
	double[] coords;
	synchronized void move(int dx, int dy) { x = x + dx; }
	int getX() { return x; }
}
`)
	if len(prog.Classes) != 1 {
		t.Fatalf("classes = %d", len(prog.Classes))
	}
	c := prog.Classes[0]
	if c.Name != "Point" || len(c.Fields) != 3 || len(c.Methods) != 2 {
		t.Fatalf("shape: %s fields=%d methods=%d", c.Name, len(c.Fields), len(c.Methods))
	}
	if !c.Fields[1].Volatile {
		t.Error("ready not volatile")
	}
	if c.Fields[2].Type.Kind != TypeArray || c.Fields[2].Type.Elem.Kind != TypeDouble {
		t.Errorf("coords type = %v", c.Fields[2].Type)
	}
	if !c.Methods[0].Synchronized {
		t.Error("move not synchronized")
	}
	if len(c.Methods[0].Params) != 2 {
		t.Error("move params")
	}
}

func TestParseStatements(t *testing.T) {
	prog := MustParse(`
class Main {
	int n;
	void main() {
		int i = 0;
		while (i < 10) { i = i + 1; if (i == 5) { break; } }
		for (int j = 0; j < 3; j = j + 1) { n = n + j; }
		synchronized (this) { n = 0; }
		atomic { n = 1; }
		try { n = 2; } catch { n = 3; }
		print("done", n);
		return;
	}
}
`)
	body := prog.Classes[0].Methods[0].Body
	wantKinds := []string{"*mj.VarDeclStmt", "*mj.WhileStmt", "*mj.ForStmt",
		"*mj.SyncStmt", "*mj.AtomicStmt", "*mj.TryStmt", "*mj.PrintStmt", "*mj.ReturnStmt"}
	if len(body.Stmts) != len(wantKinds) {
		t.Fatalf("stmts = %d, want %d", len(body.Stmts), len(wantKinds))
	}
	for i, s := range body.Stmts {
		if got := typeName(s); got != wantKinds[i] {
			t.Errorf("stmt %d = %s, want %s", i, got, wantKinds[i])
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *VarDeclStmt:
		return "*mj.VarDeclStmt"
	case *WhileStmt:
		return "*mj.WhileStmt"
	case *ForStmt:
		return "*mj.ForStmt"
	case *SyncStmt:
		return "*mj.SyncStmt"
	case *AtomicStmt:
		return "*mj.AtomicStmt"
	case *TryStmt:
		return "*mj.TryStmt"
	case *PrintStmt:
		return "*mj.PrintStmt"
	case *ReturnStmt:
		return "*mj.ReturnStmt"
	}
	return "?"
}

func TestParsePrecedence(t *testing.T) {
	prog := MustParse(`
class Main { void main() { boolean b = 1 + 2 * 3 == 7 && !false; } }
`)
	decl := prog.Classes[0].Methods[0].Body.Stmts[0].(*VarDeclStmt)
	and, ok := decl.Init.(*BinaryExpr)
	if !ok || and.Op != TokAnd {
		t.Fatalf("top = %T", decl.Init)
	}
	eq, ok := and.L.(*BinaryExpr)
	if !ok || eq.Op != TokEq {
		t.Fatalf("left of && = %T", and.L)
	}
	add, ok := eq.L.(*BinaryExpr)
	if !ok || add.Op != TokPlus {
		t.Fatalf("left of == = %T", eq.L)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != TokStar {
		t.Fatalf("right of + = %T", add.R)
	}
}

func TestParseNewForms(t *testing.T) {
	prog := MustParse(`
class Box { int v; }
class Main {
	void main() {
		Box b = new Box();
		int[] a = new int[10];
		int[][] m = new int[3][4];
		Box[] bs = new Box[5];
	}
}
`)
	stmts := prog.Classes[1].Methods[0].Body.Stmts
	if _, ok := stmts[0].(*VarDeclStmt).Init.(*NewExpr); !ok {
		t.Error("new Box() not a NewExpr")
	}
	na := stmts[2].(*VarDeclStmt).Init.(*NewArrayExpr)
	if len(na.ExtraDims()) != 1 {
		t.Errorf("2-d new dims = %d", len(na.ExtraDims()))
	}
}

func TestParseSpawnAndChaining(t *testing.T) {
	prog := MustParse(`
class Worker { void run(int id) { } }
class Main {
	Worker w;
	void main() {
		thread t = spawn w.run(1);
		join(t);
		wait(w);
		notify(w);
		notifyall(w);
	}
}
`)
	stmts := prog.Classes[1].Methods[0].Body.Stmts
	sp := stmts[0].(*VarDeclStmt).Init.(*SpawnExpr)
	if sp.Call.Name != "run" || len(sp.Call.Args) != 1 {
		t.Errorf("spawn call = %+v", sp.Call)
	}
}

func TestParseIndexVsArrayDecl(t *testing.T) {
	prog := MustParse(`
class Main {
	int[] a;
	void main() {
		int[] b = new int[2];
		a = b;
		a[0] = 1;
		b[a[0]] = 2;
	}
}
`)
	stmts := prog.Classes[0].Methods[0].Body.Stmts
	if _, ok := stmts[2].(*AssignStmt).Target.(*IndexExpr); !ok {
		t.Error("a[0] not an IndexExpr target")
	}
}

func TestParseElseIfChain(t *testing.T) {
	prog := MustParse(`
class Main { void main() { int x = 0;
	if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; }
} }
`)
	ifs := prog.Classes[0].Methods[0].Body.Stmts[1].(*IfStmt)
	if ifs.Else == nil || len(ifs.Else.Stmts) != 1 {
		t.Fatal("else-if not wrapped")
	}
	inner, ok := ifs.Else.Stmts[0].(*IfStmt)
	if !ok || inner.Else == nil {
		t.Fatal("chained else missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`class {}`,
		`class C`,
		`class C { int; }`,
		`class C { void m() { 1 = 2; } }`,
		`class C { void m() { if x { } } }`,
		`class C { volatile void m() {} }`,
		`class C { synchronized int f; }`,
		`class C { void f; }`,
		`class C { void m() { spawn 1; } }`,
		`class C { void m() { new int(); } }`,
		`class C { void m() { new C; } }`,
		`class C { void m() { x = ; } }`,
		`class C { void m() { try { } } }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}
