// Package mj implements MJ, a mini-Java language that runs on the jrt
// race-aware runtime: classes with data and volatile fields,
// synchronized methods and blocks, wait/notify, thread spawn/join,
// arrays, and atomic (transaction) blocks executed through the stm
// package. MJ is the vehicle for the paper's evaluation: the Table 1/2
// workloads are MJ programs interpreted on jrt (the analog of running
// Java benchmarks on the instrumented Kaffe interpreter), and the
// static race analyses of internal/static operate on MJ ASTs.
//
// The pipeline is conventional: Lex -> Parse -> Check -> Interp.
package mj

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString

	// Punctuation.
	TokLBrace
	TokRBrace
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokDot

	// Operators.
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokEq  // ==
	TokNe  // !=
	TokLt  // <
	TokLe  // <=
	TokGt  // >
	TokGe  // >=
	TokAnd // &&
	TokOr  // ||
	TokNot // !

	// Keywords.
	TokClass
	TokVolatile
	TokSynchronized
	TokAtomic
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokNew
	TokNull
	TokTrue
	TokFalse
	TokThis
	TokSpawn
	TokJoin
	TokWait
	TokNotify
	TokNotifyAll
	TokPrint
	TokInt_
	TokDouble_
	TokBoolean_
	TokString_
	TokVoid
	TokThread_
	TokBreak
	TokContinue
	TokTry
	TokCatch
	TokChan
	TokMake
	TokSend
	TokRecv
	TokClose
	TokSelect
	TokCase
	TokDefault
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "int literal",
	TokFloat: "float literal", TokString: "string literal",
	TokLBrace: "{", TokRBrace: "}", TokLParen: "(", TokRParen: ")",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",", TokDot: ".",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPercent: "%", TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=",
	TokGt: ">", TokGe: ">=", TokAnd: "&&", TokOr: "||", TokNot: "!",
	TokClass: "class", TokVolatile: "volatile", TokSynchronized: "synchronized",
	TokAtomic: "atomic", TokIf: "if", TokElse: "else", TokWhile: "while",
	TokFor: "for", TokReturn: "return", TokNew: "new", TokNull: "null",
	TokTrue: "true", TokFalse: "false", TokThis: "this", TokSpawn: "spawn",
	TokJoin: "join", TokWait: "wait", TokNotify: "notify", TokNotifyAll: "notifyall",
	TokPrint: "print", TokInt_: "int", TokDouble_: "double",
	TokBoolean_: "boolean", TokString_: "string", TokVoid: "void",
	TokThread_: "thread", TokBreak: "break", TokContinue: "continue",
	TokTry: "try", TokCatch: "catch", TokChan: "chan", TokMake: "make",
	TokSend: "send", TokRecv: "recv", TokClose: "close",
	TokSelect: "select", TokCase: "case", TokDefault: "default",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"class": TokClass, "volatile": TokVolatile, "synchronized": TokSynchronized,
	"atomic": TokAtomic, "if": TokIf, "else": TokElse, "while": TokWhile,
	"for": TokFor, "return": TokReturn, "new": TokNew, "null": TokNull,
	"true": TokTrue, "false": TokFalse, "this": TokThis, "spawn": TokSpawn,
	"join": TokJoin, "wait": TokWait, "notify": TokNotify,
	"notifyall": TokNotifyAll, "print": TokPrint, "int": TokInt_,
	"double": TokDouble_, "boolean": TokBoolean_, "string": TokString_,
	"void": TokVoid, "thread": TokThread_, "break": TokBreak,
	"continue": TokContinue, "try": TokTry, "catch": TokCatch,
	"chan": TokChan, "make": TokMake, "send": TokSend, "recv": TokRecv,
	"close": TokClose, "select": TokSelect, "case": TokCase,
	"default": TokDefault,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokInt, TokFloat, TokString:
		return fmt.Sprintf("%v(%s)", t.Kind, t.Text)
	}
	return t.Kind.String()
}
