package mj

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a program back to MJ source. The output parses to an
// identical AST (the printer/parser pair is fixpoint-tested), which
// makes it useful for golden tests, program transformation, and
// debugging the front end.
func Format(prog *Program) string {
	p := &printer{}
	for _, pr := range prog.Pragmas {
		p.linef("//@ %s", pr.Text)
	}
	for i, c := range prog.Classes {
		if i > 0 || len(prog.Pragmas) > 0 {
			p.line("")
		}
		p.class(c)
	}
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(s string) {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteByte('\t')
	}
	p.sb.WriteString(s)
	p.sb.WriteByte('\n')
}

func (p *printer) linef(format string, args ...any) { p.line(fmt.Sprintf(format, args...)) }

func (p *printer) class(c *ClassDecl) {
	p.linef("class %s {", c.Name)
	p.indent++
	for _, f := range c.Fields {
		mod := ""
		if f.Volatile {
			mod = "volatile "
		}
		p.linef("%s%s %s;", mod, f.Type, f.Name)
	}
	for _, m := range c.Methods {
		mod := ""
		if m.Synchronized {
			mod = "synchronized "
		}
		var params []string
		for _, pa := range m.Params {
			params = append(params, fmt.Sprintf("%s %s", pa.Type, pa.Name))
		}
		p.linef("%s%s %s(%s) {", mod, m.Ret, m.Name, strings.Join(params, ", "))
		p.indent++
		p.stmts(m.Body)
		p.indent--
		p.line("}")
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmts(b *Block) {
	for _, s := range b.Stmts {
		p.stmt(s)
	}
}

func (p *printer) blockLine(prefix string, b *Block) {
	p.linef("%s {", prefix)
	p.indent++
	p.stmts(b)
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		p.blockLine("", st)
	case *VarDeclStmt:
		if st.Init != nil {
			p.linef("%s %s = %s;", st.Type, st.Name, expr(st.Init))
		} else {
			p.linef("%s %s;", st.Type, st.Name)
		}
	case *AssignStmt:
		p.linef("%s = %s;", expr(st.Target), expr(st.Value))
	case *IfStmt:
		p.linef("if (%s) {", expr(st.Cond))
		p.indent++
		p.stmts(st.Then)
		p.indent--
		if st.Else != nil {
			p.line("} else {")
			p.indent++
			p.stmts(st.Else)
			p.indent--
		}
		p.line("}")
	case *WhileStmt:
		p.blockLine(fmt.Sprintf("while (%s)", expr(st.Cond)), st.Body)
	case *ForStmt:
		init, cond, post := "", "", ""
		if st.Init != nil {
			init = simple(st.Init)
		}
		if st.Cond != nil {
			cond = expr(st.Cond)
		}
		if st.Post != nil {
			post = simple(st.Post)
		}
		p.blockLine(fmt.Sprintf("for (%s; %s; %s)", init, cond, post), st.Body)
	case *ReturnStmt:
		if st.Value != nil {
			p.linef("return %s;", expr(st.Value))
		} else {
			p.line("return;")
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *ExprStmt:
		p.linef("%s;", expr(st.E))
	case *SyncStmt:
		p.blockLine(fmt.Sprintf("synchronized (%s)", expr(st.Lock)), st.Body)
	case *AtomicStmt:
		p.blockLine("atomic", st.Body)
	case *WaitStmt:
		p.linef("wait(%s);", expr(st.Obj))
	case *NotifyStmt:
		if st.All {
			p.linef("notifyall(%s);", expr(st.Obj))
		} else {
			p.linef("notify(%s);", expr(st.Obj))
		}
	case *JoinStmt:
		p.linef("join(%s);", expr(st.Thread))
	case *PrintStmt:
		var args []string
		for _, a := range st.Args {
			args = append(args, expr(a))
		}
		p.linef("print(%s);", strings.Join(args, ", "))
	case *TryStmt:
		p.line("try {")
		p.indent++
		p.stmts(st.Body)
		p.indent--
		p.line("} catch {")
		p.indent++
		p.stmts(st.Catch)
		p.indent--
		p.line("}")
	case *SendStmt:
		p.linef("send(%s, %s);", expr(st.Chan), expr(st.Value))
	case *CloseStmt:
		p.linef("close(%s);", expr(st.Chan))
	case *SelectStmt:
		p.line("select {")
		for _, arm := range st.Arms {
			switch {
			case arm.Send:
				p.blockLine(fmt.Sprintf("case send(%s, %s)", expr(arm.Chan), expr(arm.Value)), arm.Body)
			case arm.Bind != "":
				p.blockLine(fmt.Sprintf("case %s %s = recv(%s)", arm.BindType, arm.Bind, expr(arm.Chan)), arm.Body)
			default:
				p.blockLine(fmt.Sprintf("case recv(%s)", expr(arm.Chan)), arm.Body)
			}
		}
		if st.Default != nil {
			p.blockLine("default", st.Default)
		}
		p.line("}")
	default:
		panic(fmt.Sprintf("mj: printer: unhandled statement %T", s))
	}
}

// simple renders a for-clause statement without the trailing semicolon.
func simple(s Stmt) string {
	switch st := s.(type) {
	case *VarDeclStmt:
		if st.Init != nil {
			return fmt.Sprintf("%s %s = %s", st.Type, st.Name, expr(st.Init))
		}
		return fmt.Sprintf("%s %s", st.Type, st.Name)
	case *AssignStmt:
		return fmt.Sprintf("%s = %s", expr(st.Target), expr(st.Value))
	case *ExprStmt:
		return expr(st.E)
	}
	panic(fmt.Sprintf("mj: printer: bad for-clause %T", s))
}

// expr renders an expression, parenthesizing conservatively: any
// compound subexpression of a compound expression gets parentheses, so
// the output re-parses to the identical tree without a precedence
// table.
func expr(e Expr) string {
	switch ex := e.(type) {
	case *IntLit:
		return strconv.FormatInt(ex.V, 10)
	case *FloatLit:
		s := strconv.FormatFloat(ex.V, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	case *BoolLit:
		if ex.V {
			return "true"
		}
		return "false"
	case *StringLit:
		return quoteMJ(ex.V)
	case *NullLit:
		return "null"
	case *ThisExpr:
		return "this"
	case *IdentExpr:
		return ex.Name
	case *FieldExpr:
		return fmt.Sprintf("%s.%s", sub(ex.Recv), ex.Name)
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", sub(ex.Arr), expr(ex.Index))
	case *LenExpr:
		return fmt.Sprintf("%s.length", sub(ex.Arr))
	case *CallExpr:
		var args []string
		for _, a := range ex.Args {
			args = append(args, expr(a))
		}
		if _, isThis := ex.Recv.(*ThisExpr); isThis || ex.Recv == nil {
			return fmt.Sprintf("this.%s(%s)", ex.Name, strings.Join(args, ", "))
		}
		return fmt.Sprintf("%s.%s(%s)", sub(ex.Recv), ex.Name, strings.Join(args, ", "))
	case *NewExpr:
		return fmt.Sprintf("new %s()", ex.Class)
	case *NewArrayExpr:
		dims := fmt.Sprintf("[%s]", expr(ex.Len))
		for _, d := range ex.extraDims {
			dims += fmt.Sprintf("[%s]", expr(d))
		}
		// Elem already folds the inner dimensions; print the base type.
		base := ex.Elem
		for range ex.extraDims {
			base = base.Elem
		}
		return fmt.Sprintf("new %s%s", base, dims)
	case *SpawnExpr:
		return "spawn " + expr(ex.Call)
	case *MakeChanExpr:
		if ex.Cap != nil {
			return fmt.Sprintf("make(chan<%s>, %s)", ex.Elem, expr(ex.Cap))
		}
		return fmt.Sprintf("make(chan<%s>)", ex.Elem)
	case *RecvExpr:
		return fmt.Sprintf("recv(%s)", expr(ex.Chan))
	case *UnaryExpr:
		op := "!"
		if ex.Op == TokMinus {
			op = "-"
		}
		return op + sub(ex.E)
	case *BinaryExpr:
		return fmt.Sprintf("%s %s %s", sub(ex.L), tokNames[ex.Op], sub(ex.R))
	}
	panic(fmt.Sprintf("mj: printer: unhandled expression %T", e))
}

// sub renders a subexpression, parenthesizing compounds.
func sub(e Expr) string {
	switch e.(type) {
	case *BinaryExpr, *UnaryExpr, *SpawnExpr:
		return "(" + expr(e) + ")"
	}
	return expr(e)
}

func quoteMJ(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
