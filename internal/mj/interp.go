package mj

import (
	"fmt"
	"io"
	"sync"

	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/jrt"
	"goldilocks/internal/stm"
)

// NullPointer mirrors Java's NullPointerException.
type NullPointer struct {
	Pos Pos
}

func (e *NullPointer) Error() string { return fmt.Sprintf("%v: null dereference", e.Pos) }

// InterpConfig configures an interpreter instance.
type InterpConfig struct {
	// Runtime hosts execution; required.
	Runtime *jrt.Runtime
	// Out receives print output (nil discards it).
	Out io.Writer
	// SiteNoCheck disables race checking per access site (indexed by
	// SiteID), typically the Chord-style analysis result.
	SiteNoCheck []bool
}

// Interp executes a checked MJ program on the jrt runtime. Entry point
// is Main.main().
type Interp struct {
	prog    *Program
	rt      *jrt.Runtime
	tm      *stm.TM
	out     io.Writer
	outMu   sync.Mutex
	classes map[*ClassDecl]*jrt.Class
	sites   []bool

	errMu      sync.Mutex
	threadErrs []error
}

// NewInterp prepares prog (already Checked) for execution.
func NewInterp(prog *Program, cfg InterpConfig) (*Interp, error) {
	if prog.byName == nil {
		return nil, fmt.Errorf("mj: program must be checked before interpretation")
	}
	in := &Interp{
		prog:    prog,
		rt:      cfg.Runtime,
		tm:      stm.New(),
		out:     cfg.Out,
		classes: make(map[*ClassDecl]*jrt.Class),
		sites:   cfg.SiteNoCheck,
	}
	for _, cd := range prog.Classes {
		fields := make([]jrt.FieldDecl, len(cd.Fields))
		for i, f := range cd.Fields {
			fields[i] = jrt.FieldDecl{Name: f.Name, Volatile: f.Volatile, NoCheck: f.NoCheck}
		}
		in.classes[cd] = in.rt.DefineClass("mj."+cd.Name, fields...)
	}
	return in, nil
}

// TMStats reports the transaction manager's (commits, aborts) counters.
func (in *Interp) TMStats() (commits, aborts uint64) { return in.tm.Stats() }

func (in *Interp) noteThreadErr(t *jrt.Thread, err error) {
	in.errMu.Lock()
	in.threadErrs = append(in.threadErrs, fmt.Errorf("thread %v terminated: %w", t.ID(), err))
	in.errMu.Unlock()
}

// ThreadErrors returns the uncaught runtime exceptions that terminated
// spawned threads.
func (in *Interp) ThreadErrors() []error {
	in.errMu.Lock()
	defer in.errMu.Unlock()
	out := make([]error, len(in.threadErrs))
	copy(out, in.threadErrs)
	return out
}

// Run executes Main.main() to completion (including all spawned
// threads) and returns the races the runtime observed.
func (in *Interp) Run() ([]detect.Race, error) {
	mainClass := in.prog.ClassByName("Main")
	if mainClass == nil {
		return nil, fmt.Errorf("mj: no class Main")
	}
	mainMethod := mainClass.Method("main")
	if mainMethod == nil || len(mainMethod.Params) != 0 {
		return nil, fmt.Errorf("mj: Main must declare a zero-argument main() method")
	}
	var runErr error
	races := in.rt.Run(func(t *jrt.Thread) {
		defer func() {
			if r := recover(); r != nil {
				// An uncaught DataRaceException terminates the main
				// thread gracefully (the runtime records it); other MJ
				// runtime exceptions surface as the run's error.
				if _, isDRX := r.(*jrt.DataRaceException); isDRX {
					panic(r)
				}
				if err, ok := r.(error); ok {
					runErr = err
					return
				}
				panic(r)
			}
		}()
		ts := &threadState{in: in, jt: t}
		self := t.New(in.classes[mainClass])
		ts.invoke(self, mainClass, mainMethod, nil)
	})
	if runErr == nil {
		if errs := in.ThreadErrors(); len(errs) > 0 {
			runErr = errs[0]
		}
	}
	return races, runErr
}

// threadState is the per-MJ-thread interpreter state.
type threadState struct {
	in *Interp
	jt *jrt.Thread
	tx *stm.Tx // non-nil inside an atomic block
	// uncheckedDepth > 0 while executing methods whose accesses static
	// analysis proved race-free.
	uncheckedDepth int
}

// frame is a method activation: a scope stack over local variables.
type frame struct {
	this   *jrt.Object
	class  *ClassDecl
	scopes []map[string]jrt.Value
}

func (f *frame) push() { f.scopes = append(f.scopes, map[string]jrt.Value{}) }
func (f *frame) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *frame) declare(name string, v jrt.Value) {
	f.scopes[len(f.scopes)-1][name] = v
}

func (f *frame) assign(name string, v jrt.Value) {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if _, ok := f.scopes[i][name]; ok {
			f.scopes[i][name] = v
			return
		}
	}
	panic(fmt.Sprintf("mj: internal error: assign to undeclared %s", name))
}

func (f *frame) lookup(name string) jrt.Value {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if v, ok := f.scopes[i][name]; ok {
			return v
		}
	}
	panic(fmt.Sprintf("mj: internal error: read of undeclared %s", name))
}

// snapshot deep-copies the scope stack (restores locals across aborted
// transaction attempts).
func (f *frame) snapshot() []map[string]jrt.Value {
	out := make([]map[string]jrt.Value, len(f.scopes))
	for i, s := range f.scopes {
		c := make(map[string]jrt.Value, len(s))
		for k, v := range s {
			c[k] = v
		}
		out[i] = c
	}
	return out
}

func (f *frame) restore(snap []map[string]jrt.Value) {
	f.scopes = make([]map[string]jrt.Value, len(snap))
	for i, s := range snap {
		c := make(map[string]jrt.Value, len(s))
		for k, v := range s {
			c[k] = v
		}
		f.scopes[i] = c
	}
}

// control is the statement outcome.
type control uint8

const (
	ctrlNone control = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

// invoke runs method m on receiver self with arguments already
// evaluated.
func (ts *threadState) invoke(self *jrt.Object, cd *ClassDecl, m *MethodDecl, args []jrt.Value) jrt.Value {
	if m.Synchronized {
		ts.jt.MonitorEnter(self)
		defer ts.jt.MonitorExit(self)
	}
	if m.NoCheck {
		ts.uncheckedDepth++
		defer func() { ts.uncheckedDepth-- }()
	}
	fr := &frame{this: self, class: cd}
	fr.push()
	for i, p := range m.Params {
		fr.declare(p.Name, coerce(args[i], p.Type))
	}
	ctrl, ret := ts.execBlock(fr, m.Body)
	if ctrl == ctrlReturn {
		return coerce(ret, m.Ret)
	}
	return nil
}

func (ts *threadState) execBlock(fr *frame, b *Block) (control, jrt.Value) {
	fr.push()
	defer fr.pop()
	for _, s := range b.Stmts {
		ctrl, v := ts.execStmt(fr, s)
		if ctrl != ctrlNone {
			return ctrl, v
		}
	}
	return ctrlNone, nil
}

func (ts *threadState) execStmt(fr *frame, s Stmt) (control, jrt.Value) {
	switch st := s.(type) {
	case *Block:
		return ts.execBlock(fr, st)
	case *VarDeclStmt:
		var v jrt.Value
		if st.Init != nil {
			v = coerce(ts.eval(fr, st.Init), st.Type)
		} else {
			v = zeroValue(st.Type)
		}
		fr.declare(st.Name, v)
		return ctrlNone, nil
	case *AssignStmt:
		ts.execAssign(fr, st)
		return ctrlNone, nil
	case *IfStmt:
		if ts.evalBool(fr, st.Cond) {
			return ts.execBlock(fr, st.Then)
		}
		if st.Else != nil {
			return ts.execBlock(fr, st.Else)
		}
		return ctrlNone, nil
	case *WhileStmt:
		for ts.evalBool(fr, st.Cond) {
			ctrl, v := ts.execBlock(fr, st.Body)
			switch ctrl {
			case ctrlReturn:
				return ctrl, v
			case ctrlBreak:
				return ctrlNone, nil
			}
		}
		return ctrlNone, nil
	case *ForStmt:
		fr.push()
		defer fr.pop()
		if st.Init != nil {
			ts.execStmt(fr, st.Init)
		}
		for st.Cond == nil || ts.evalBool(fr, st.Cond) {
			ctrl, v := ts.execBlock(fr, st.Body)
			if ctrl == ctrlReturn {
				return ctrl, v
			}
			if ctrl == ctrlBreak {
				return ctrlNone, nil
			}
			if st.Post != nil {
				ts.execStmt(fr, st.Post)
			}
		}
		return ctrlNone, nil
	case *ReturnStmt:
		if st.Value != nil {
			return ctrlReturn, ts.eval(fr, st.Value)
		}
		return ctrlReturn, nil
	case *BreakStmt:
		return ctrlBreak, nil
	case *ContinueStmt:
		return ctrlContinue, nil
	case *ExprStmt:
		ts.eval(fr, st.E)
		return ctrlNone, nil
	case *SyncStmt:
		lock := ts.evalObject(fr, st.Lock, st.Pos)
		var ctrl control
		var v jrt.Value
		ts.jt.Synchronized(lock, func() {
			ctrl, v = ts.execBlock(fr, st.Body)
		})
		return ctrl, v
	case *AtomicStmt:
		snap := fr.snapshot()
		err := ts.in.tm.Atomic(ts.jt, func(tx *stm.Tx) {
			fr.restore(snap)
			ts.tx = tx
			defer func() { ts.tx = nil }()
			ts.execBlock(fr, st.Body)
		})
		if err != nil {
			panic(err)
		}
		return ctrlNone, nil
	case *WaitStmt:
		ts.jt.Wait(ts.evalObject(fr, st.Obj, st.Pos))
		return ctrlNone, nil
	case *NotifyStmt:
		o := ts.evalObject(fr, st.Obj, st.Pos)
		if st.All {
			ts.jt.NotifyAll(o)
		} else {
			ts.jt.Notify(o)
		}
		return ctrlNone, nil
	case *JoinStmt:
		th, ok := ts.eval(fr, st.Thread).(*jrt.Thread)
		if !ok || th == nil {
			panic(&NullPointer{Pos: st.Pos})
		}
		ts.jt.Join(th)
		return ctrlNone, nil
	case *PrintStmt:
		var parts []any
		for _, a := range st.Args {
			parts = append(parts, renderValue(ts.eval(fr, a)))
		}
		ts.in.outMu.Lock()
		if ts.in.out != nil {
			fmt.Fprintln(ts.in.out, parts...)
		}
		ts.in.outMu.Unlock()
		return ctrlNone, nil
	case *TryStmt:
		ctrl, v, drx := ts.runTry(fr, st)
		if drx != nil {
			return ts.execBlock(fr, st.Catch)
		}
		return ctrl, v
	case *SendStmt:
		c := ts.evalChan(fr, st.Chan, st.Pos)
		ts.jt.Send(c, coerce(ts.eval(fr, st.Value), st.Elem))
		return ctrlNone, nil
	case *CloseStmt:
		ts.jt.Close(ts.evalChan(fr, st.Chan, st.Pos))
		return ctrlNone, nil
	case *SelectStmt:
		cases := make([]jrt.SelectCase, len(st.Arms))
		for i, arm := range st.Arms {
			sc := jrt.SelectCase{Chan: ts.evalChan(fr, arm.Chan, arm.Pos), Send: arm.Send}
			if arm.Send {
				sc.Value = coerce(ts.eval(fr, arm.Value), arm.Elem)
			}
			cases[i] = sc
		}
		idx, v, _ := ts.jt.Select(cases, st.Default != nil)
		if idx < 0 {
			return ts.execBlock(fr, st.Default)
		}
		arm := st.Arms[idx]
		if !arm.Send && arm.Bind != "" {
			fr.push()
			defer fr.pop()
			fr.declare(arm.Bind, coerce(fill(v, arm.BindType), arm.BindType))
		}
		return ts.execBlock(fr, arm.Body)
	}
	panic(fmt.Sprintf("mj: internal error: unhandled statement %T", s))
}

// ctrlEscape tunnels return/break/continue out of a Try closure.
type ctrlEscape struct {
	ctrl control
	v    jrt.Value
}

// runTry executes a try body, catching DataRaceException and letting
// return/break/continue escape the closure intact.
func (ts *threadState) runTry(fr *frame, st *TryStmt) (ctrl control, v jrt.Value, drx *jrt.DataRaceException) {
	defer func() {
		if r := recover(); r != nil {
			if esc, ok := r.(ctrlEscape); ok {
				ctrl, v = esc.ctrl, esc.v
				return
			}
			panic(r)
		}
	}()
	drx = ts.jt.Try(func() {
		c, val := ts.execBlock(fr, st.Body)
		if c != ctrlNone {
			panic(ctrlEscape{c, val})
		}
	})
	return ctrl, v, drx
}

func (ts *threadState) execAssign(fr *frame, st *AssignStmt) {
	v := ts.eval(fr, st.Value)
	switch target := st.Target.(type) {
	case *IdentExpr:
		v = coerce(v, target.Type())
		fr.assign(target.Name, v)
	case *FieldExpr:
		recv := ts.evalObject(fr, target.Recv, target.Pos)
		v = coerce(v, target.Decl.Type)
		fid := event.FieldID(target.Decl.Index)
		switch {
		case ts.tx != nil:
			ts.tx.Set(recv, fid, v)
		case ts.skipCheck(target.SiteID, target.NoCheck) && !target.Decl.Volatile:
			ts.jt.SetUnchecked(recv, fid, v)
		default:
			ts.jt.Set(recv, fid, v)
		}
	case *IndexExpr:
		arr := ts.evalObject(fr, target.Arr, target.Pos)
		i := int(ts.evalInt(fr, target.Index))
		v = coerce(v, target.Type())
		switch {
		case ts.tx != nil:
			ts.tx.Store(arr, i, v)
		case ts.skipCheck(target.SiteID, target.NoCheck):
			ts.jt.StoreUnchecked(arr, i, v)
		default:
			ts.jt.Store(arr, i, v)
		}
	default:
		panic(fmt.Sprintf("mj: internal error: bad assign target %T", st.Target))
	}
}

// skipCheck decides whether this access site's dynamic check is
// statically eliminated.
func (ts *threadState) skipCheck(site int, noCheck bool) bool {
	if ts.uncheckedDepth > 0 || noCheck {
		return true
	}
	return site < len(ts.in.sites) && ts.in.sites[site]
}

func (ts *threadState) eval(fr *frame, e Expr) jrt.Value {
	switch ex := e.(type) {
	case *IntLit:
		return ex.V
	case *FloatLit:
		return ex.V
	case *BoolLit:
		return ex.V
	case *StringLit:
		return ex.V
	case *NullLit:
		return nil
	case *ThisExpr:
		return fr.this
	case *IdentExpr:
		return fr.lookup(ex.Name)
	case *FieldExpr:
		recv := ts.evalObject(fr, ex.Recv, ex.Pos)
		fid := event.FieldID(ex.Decl.Index)
		var v jrt.Value
		switch {
		case ts.tx != nil:
			v = ts.tx.Get(recv, fid)
		case ts.skipCheck(ex.SiteID, ex.NoCheck) && !ex.Decl.Volatile:
			v = ts.jt.GetUnchecked(recv, fid)
		default:
			v = ts.jt.Get(recv, fid)
		}
		return fill(v, ex.Decl.Type)
	case *IndexExpr:
		arr := ts.evalObject(fr, ex.Arr, ex.Pos)
		i := int(ts.evalInt(fr, ex.Index))
		var v jrt.Value
		switch {
		case ts.tx != nil:
			v = ts.tx.Load(arr, i)
		case ts.skipCheck(ex.SiteID, ex.NoCheck):
			v = ts.jt.LoadUnchecked(arr, i)
		default:
			v = ts.jt.Load(arr, i)
		}
		return fill(v, ex.Type())
	case *LenExpr:
		v := ts.eval(fr, ex.Arr)
		switch a := v.(type) {
		case *jrt.Object:
			return int64(a.Len())
		case string:
			return int64(len(a))
		case nil:
			panic(&NullPointer{Pos: ex.Pos})
		}
		panic(fmt.Sprintf("mj: internal error: length of %T", v))
	case *CallExpr:
		recv := ts.evalObject(fr, ex.Recv, ex.Pos)
		args := make([]jrt.Value, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = ts.eval(fr, a)
		}
		return ts.invoke(recv, ex.Decl.Class, ex.Decl, args)
	case *NewExpr:
		return ts.jt.New(ts.in.classes[ex.Decl])
	case *NewArrayExpr:
		dims := make([]int, 1+len(ex.extraDims))
		dims[0] = int(ts.evalInt(fr, ex.Len))
		for i, d := range ex.extraDims {
			dims[i+1] = int(ts.evalInt(fr, d))
		}
		return ts.allocArray(dims)
	case *SpawnExpr:
		call := ex.Call
		recv := ts.evalObject(fr, call.Recv, call.Pos)
		args := make([]jrt.Value, len(call.Args))
		for i, a := range call.Args {
			args[i] = ts.eval(fr, a)
		}
		return ts.jt.Spawn(func(u *jrt.Thread) {
			// As in Java, an uncaught runtime exception terminates the
			// thread (and is reported after the run), not the whole VM.
			// DataRaceException passes through: the runtime's own
			// uncaught-exception handling records it.
			defer func() {
				if r := recover(); r != nil {
					if _, isDRX := r.(*jrt.DataRaceException); isDRX {
						panic(r)
					}
					if err, ok := r.(error); ok {
						ts.in.noteThreadErr(u, err)
						return
					}
					panic(r)
				}
			}()
			child := &threadState{in: ts.in, jt: u}
			child.invoke(recv, call.Decl.Class, call.Decl, args)
		})
	case *MakeChanExpr:
		capacity := 0
		if ex.Cap != nil {
			capacity = int(ts.evalInt(fr, ex.Cap))
		}
		if capacity < 0 || capacity > event.ChanMaxCap {
			panic(&ArithmeticError{Pos: ex.Pos, Msg: fmt.Sprintf("invalid channel capacity %d", capacity)})
		}
		return ts.jt.NewChan(capacity)
	case *RecvExpr:
		c := ts.evalChan(fr, ex.Chan, ex.Pos)
		v, _ := ts.jt.Recv(c)
		// A closed, drained channel yields the element type's zero value.
		return fill(v, ex.Type())
	case *UnaryExpr:
		switch ex.Op {
		case TokNot:
			return !ts.evalBool(fr, ex.E)
		case TokMinus:
			v := ts.eval(fr, ex.E)
			switch n := v.(type) {
			case int64:
				return -n
			case float64:
				return -n
			}
		}
	case *BinaryExpr:
		return ts.evalBinary(fr, ex)
	}
	panic(fmt.Sprintf("mj: internal error: unhandled expression %T", e))
}

func (ts *threadState) allocArray(dims []int) *jrt.Object {
	arr := ts.jt.NewArray(dims[0])
	if len(dims) > 1 {
		for i := 0; i < dims[0]; i++ {
			ts.jt.Store(arr, i, ts.allocArray(dims[1:]))
		}
	}
	return arr
}

func (ts *threadState) evalBool(fr *frame, e Expr) bool {
	b, _ := ts.eval(fr, e).(bool)
	return b
}

func (ts *threadState) evalInt(fr *frame, e Expr) int64 {
	n, _ := ts.eval(fr, e).(int64)
	return n
}

// evalObject evaluates e to a non-null object.
func (ts *threadState) evalObject(fr *frame, e Expr, pos Pos) *jrt.Object {
	v := ts.eval(fr, e)
	o, ok := v.(*jrt.Object)
	if !ok || o == nil {
		panic(&NullPointer{Pos: pos})
	}
	return o
}

// evalChan evaluates e to a non-null channel.
func (ts *threadState) evalChan(fr *frame, e Expr, pos Pos) *jrt.Chan {
	c, ok := ts.eval(fr, e).(*jrt.Chan)
	if !ok || c == nil {
		panic(&NullPointer{Pos: pos})
	}
	return c
}

func (ts *threadState) evalBinary(fr *frame, ex *BinaryExpr) jrt.Value {
	// Short-circuit operators evaluate lazily.
	switch ex.Op {
	case TokAnd:
		return ts.evalBool(fr, ex.L) && ts.evalBool(fr, ex.R)
	case TokOr:
		return ts.evalBool(fr, ex.L) || ts.evalBool(fr, ex.R)
	}
	l := ts.eval(fr, ex.L)
	r := ts.eval(fr, ex.R)

	if ex.Op == TokPlus {
		if ls, ok := l.(string); ok {
			rs, _ := r.(string)
			return ls + rs
		}
	}

	if ex.Op == TokEq || ex.Op == TokNe {
		eq := valueEq(l, r)
		if ex.Op == TokNe {
			return !eq
		}
		return eq
	}

	li, lIsInt := l.(int64)
	ri, rIsInt := r.(int64)
	if lIsInt && rIsInt {
		switch ex.Op {
		case TokPlus:
			return li + ri
		case TokMinus:
			return li - ri
		case TokStar:
			return li * ri
		case TokSlash:
			if ri == 0 {
				panic(&ArithmeticError{Pos: ex.Pos, Msg: "division by zero"})
			}
			return li / ri
		case TokPercent:
			if ri == 0 {
				panic(&ArithmeticError{Pos: ex.Pos, Msg: "division by zero"})
			}
			return li % ri
		case TokLt:
			return li < ri
		case TokLe:
			return li <= ri
		case TokGt:
			return li > ri
		case TokGe:
			return li >= ri
		}
	}
	lf := toFloat(l)
	rf := toFloat(r)
	switch ex.Op {
	case TokPlus:
		return lf + rf
	case TokMinus:
		return lf - rf
	case TokStar:
		return lf * rf
	case TokSlash:
		return lf / rf
	case TokLt:
		return lf < rf
	case TokLe:
		return lf <= rf
	case TokGt:
		return lf > rf
	case TokGe:
		return lf >= rf
	}
	panic(fmt.Sprintf("mj: internal error: unhandled binary op %v", ex.Op))
}

// ArithmeticError mirrors Java's ArithmeticException.
type ArithmeticError struct {
	Pos Pos
	Msg string
}

func (e *ArithmeticError) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

func valueEq(l, r jrt.Value) bool {
	li, lOk := l.(int64)
	ri, rOk := r.(int64)
	if lOk && rOk {
		return li == ri
	}
	if (lOk || isFloat(l)) && (rOk || isFloat(r)) {
		return toFloat(l) == toFloat(r)
	}
	return l == r // bool, string, references (identity), nil
}

func isFloat(v jrt.Value) bool {
	_, ok := v.(float64)
	return ok
}

func toFloat(v jrt.Value) float64 {
	switch n := v.(type) {
	case int64:
		return float64(n)
	case float64:
		return n
	}
	return 0
}

// coerce applies the int->double widening conversion required by the
// static type.
func coerce(v jrt.Value, t *Type) jrt.Value {
	if t != nil && t.Kind == TypeDouble {
		if n, ok := v.(int64); ok {
			return float64(n)
		}
	}
	return v
}

// fill substitutes the typed zero value for a never-written slot (jrt
// slots start as Go nil; MJ semantics give fields and elements their
// type's zero value).
func fill(v jrt.Value, t *Type) jrt.Value {
	if v != nil {
		return v
	}
	return zeroValue(t)
}

func zeroValue(t *Type) jrt.Value {
	switch t.Kind {
	case TypeInt:
		return int64(0)
	case TypeDouble:
		return float64(0)
	case TypeBool:
		return false
	case TypeString:
		return ""
	default:
		return nil
	}
}

func renderValue(v jrt.Value) any {
	switch x := v.(type) {
	case nil:
		return "null"
	case *jrt.Object:
		return x.String()
	case *jrt.Thread:
		return fmt.Sprintf("thread-%d", x.ID())
	case *jrt.Chan:
		return fmt.Sprintf("chan-%d", x.Addr())
	default:
		return x
	}
}
