package mj

import "fmt"

// Type is an MJ static type.
type Type struct {
	Kind TypeKind
	// Class is the class name for KindObject.
	Class string
	// Elem is the element type for KindArray.
	Elem *Type
}

// TypeKind enumerates MJ types.
type TypeKind uint8

const (
	TypeInt TypeKind = iota
	TypeDouble
	TypeBool
	TypeString
	TypeVoid
	TypeThread
	TypeObject
	TypeArray
	TypeNull // type of the null literal; assignable to refs
	TypeChan // chan<Elem>
)

// Prebuilt scalar types.
var (
	IntType    = &Type{Kind: TypeInt}
	DoubleType = &Type{Kind: TypeDouble}
	BoolType   = &Type{Kind: TypeBool}
	StringType = &Type{Kind: TypeString}
	VoidType   = &Type{Kind: TypeVoid}
	ThreadType = &Type{Kind: TypeThread}
	NullType   = &Type{Kind: TypeNull}
)

// ObjectType returns the type of instances of class name.
func ObjectType(name string) *Type { return &Type{Kind: TypeObject, Class: name} }

// ArrayType returns the array type with the given element type.
func ArrayType(elem *Type) *Type { return &Type{Kind: TypeArray, Elem: elem} }

// ChanType returns the channel type carrying the given element type.
func ChanType(elem *Type) *Type { return &Type{Kind: TypeChan, Elem: elem} }

// IsRef reports whether the type is a reference type (object, array,
// string, thread, or null).
func (t *Type) IsRef() bool {
	switch t.Kind {
	case TypeObject, TypeArray, TypeString, TypeThread, TypeNull, TypeChan:
		return true
	}
	return false
}

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case TypeObject:
		return t.Class == u.Class
	case TypeArray, TypeChan:
		return t.Elem.Equal(u.Elem)
	}
	return true
}

// AssignableTo reports whether a value of type t can be assigned to a
// location of type u.
func (t *Type) AssignableTo(u *Type) bool {
	if t.Equal(u) {
		return true
	}
	if t.Kind == TypeNull && u.IsRef() {
		return true
	}
	if t.Kind == TypeInt && u.Kind == TypeDouble {
		return true
	}
	return false
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeDouble:
		return "double"
	case TypeBool:
		return "boolean"
	case TypeString:
		return "string"
	case TypeVoid:
		return "void"
	case TypeThread:
		return "thread"
	case TypeObject:
		return t.Class
	case TypeArray:
		return t.Elem.String() + "[]"
	case TypeNull:
		return "null"
	case TypeChan:
		return "chan<" + t.Elem.String() + ">"
	}
	return fmt.Sprintf("Type(%d)", t.Kind)
}

// Program is a parsed MJ compilation unit.
type Program struct {
	Classes []*ClassDecl
	Pragmas []Pragma

	// byName is filled by the checker.
	byName map[string]*ClassDecl
}

// ClassByName returns the class declaration, after Check.
func (p *Program) ClassByName(name string) *ClassDecl { return p.byName[name] }

// ClassDecl is a class declaration.
type ClassDecl struct {
	Pos     Pos
	Name    string
	Fields  []*FieldDeclNode
	Methods []*MethodDecl

	fieldsByName  map[string]*FieldDeclNode
	methodsByName map[string]*MethodDecl
}

// Field returns the field declaration, after Check.
func (c *ClassDecl) Field(name string) *FieldDeclNode { return c.fieldsByName[name] }

// Method returns the method declaration, after Check.
func (c *ClassDecl) Method(name string) *MethodDecl { return c.methodsByName[name] }

// FieldDeclNode is a field declaration.
type FieldDeclNode struct {
	Pos      Pos
	Name     string
	Type     *Type
	Volatile bool
	// Index is the field's runtime slot, assigned by the checker.
	Index int
	// NoCheck is set by static analysis: dynamic race checks are
	// skipped for this field.
	NoCheck bool
}

// MethodDecl is a method declaration.
type MethodDecl struct {
	Pos          Pos
	Name         string
	Class        *ClassDecl
	Synchronized bool
	Params       []*Param
	Ret          *Type
	Body         *Block
	// NoCheck is set by static analysis: accesses lexically inside this
	// method are race-free and skip dynamic checks.
	NoCheck bool
}

// QName returns Class.Method.
func (m *MethodDecl) QName() string { return m.Class.Name + "." + m.Name }

// Param is a method parameter.
type Param struct {
	Pos  Pos
	Name string
	Type *Type
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Block is a sequence of statements with its own scope.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDeclStmt declares (and optionally initializes) a local variable.
type VarDeclStmt struct {
	Pos  Pos
	Name string
	Type *Type
	Init Expr // may be nil
}

// AssignStmt assigns to a local, a field, or an array element.
type AssignStmt struct {
	Pos    Pos
	Target Expr // IdentExpr, FieldExpr, or IndexExpr
	Value  Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *Block
}

// ForStmt is for(init; cond; post) body. Init/Post are optional simple
// statements (VarDeclStmt, AssignStmt, or ExprStmt).
type ForStmt struct {
	Pos  Pos
	Init Stmt // may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // may be nil
	Body *Block
}

// ReturnStmt returns from a method.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for effect (call or spawn).
type ExprStmt struct {
	Pos Pos
	E   Expr
}

// SyncStmt is synchronized (lock) { body }.
type SyncStmt struct {
	Pos  Pos
	Lock Expr
	Body *Block
}

// AtomicStmt is atomic { body }: a software transaction.
type AtomicStmt struct {
	Pos  Pos
	Body *Block
}

// WaitStmt is wait(o); NotifyStmt covers notify/notifyall.
type WaitStmt struct {
	Pos Pos
	Obj Expr
}

// NotifyStmt is notify(o) or notifyall(o).
type NotifyStmt struct {
	Pos Pos
	Obj Expr
	All bool
}

// JoinStmt is join(t).
type JoinStmt struct {
	Pos    Pos
	Thread Expr
}

// PrintStmt is print(e).
type PrintStmt struct {
	Pos  Pos
	Args []Expr
}

// TryStmt is try { body } catch { handler }: the handler runs iff the
// body throws a DataRaceException (the only catchable exception in MJ).
type TryStmt struct {
	Pos   Pos
	Body  *Block
	Catch *Block
}

// SendStmt is send(c, v): deliver v into channel c, blocking while the
// buffer is full.
type SendStmt struct {
	Pos   Pos
	Chan  Expr
	Value Expr
	// Elem is the channel's element type, resolved by the checker (for
	// the int->double widening of the sent value).
	Elem *Type
}

// CloseStmt is close(c).
type CloseStmt struct {
	Pos  Pos
	Chan Expr
}

// SelectArm is one case of a select statement: a send, or a receive
// optionally binding the received value to a fresh local.
type SelectArm struct {
	Pos  Pos
	Send bool
	Chan Expr
	// Value is the sent expression (send arms only).
	Value Expr
	// Bind/BindType declare the receive binding ("" discards the value).
	Bind     string
	BindType *Type
	// Elem is the channel's element type, resolved by the checker.
	Elem *Type
	Body *Block
}

// SelectStmt is select { case ... } with an optional default block. The
// first ready arm runs; with no ready arm the statement blocks, unless a
// default is present — a default that fires performs no synchronization
// and creates no happens-before edge.
type SelectStmt struct {
	Pos     Pos
	Arms    []*SelectArm
	Default *Block // may be nil
}

func (*Block) stmtNode()        {}
func (*VarDeclStmt) stmtNode()  {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*SyncStmt) stmtNode()     {}
func (*AtomicStmt) stmtNode()   {}
func (*WaitStmt) stmtNode()     {}
func (*NotifyStmt) stmtNode()   {}
func (*JoinStmt) stmtNode()     {}
func (*PrintStmt) stmtNode()    {}
func (*TryStmt) stmtNode()      {}
func (*SendStmt) stmtNode()     {}
func (*CloseStmt) stmtNode()    {}
func (*SelectStmt) stmtNode()   {}

// StmtPos implementations.
func (s *Block) StmtPos() Pos        { return s.Pos }
func (s *VarDeclStmt) StmtPos() Pos  { return s.Pos }
func (s *AssignStmt) StmtPos() Pos   { return s.Pos }
func (s *IfStmt) StmtPos() Pos       { return s.Pos }
func (s *WhileStmt) StmtPos() Pos    { return s.Pos }
func (s *ForStmt) StmtPos() Pos      { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos   { return s.Pos }
func (s *BreakStmt) StmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) StmtPos() Pos { return s.Pos }
func (s *ExprStmt) StmtPos() Pos     { return s.Pos }
func (s *SyncStmt) StmtPos() Pos     { return s.Pos }
func (s *AtomicStmt) StmtPos() Pos   { return s.Pos }
func (s *WaitStmt) StmtPos() Pos     { return s.Pos }
func (s *NotifyStmt) StmtPos() Pos   { return s.Pos }
func (s *JoinStmt) StmtPos() Pos     { return s.Pos }
func (s *PrintStmt) StmtPos() Pos    { return s.Pos }
func (s *TryStmt) StmtPos() Pos      { return s.Pos }
func (s *SendStmt) StmtPos() Pos     { return s.Pos }
func (s *CloseStmt) StmtPos() Pos    { return s.Pos }
func (s *SelectStmt) StmtPos() Pos   { return s.Pos }

// Expr is an expression node. The checker fills each node's type.
type Expr interface {
	exprNode()
	ExprPos() Pos
	// Type returns the checked static type (nil before Check).
	Type() *Type
}

type typed struct{ typ *Type }

func (t *typed) Type() *Type     { return t.typ }
func (t *typed) setType(u *Type) { t.typ = u }

// IntLit is an integer literal.
type IntLit struct {
	typed
	Pos Pos
	V   int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	typed
	Pos Pos
	V   float64
}

// BoolLit is true/false.
type BoolLit struct {
	typed
	Pos Pos
	V   bool
}

// StringLit is a string literal.
type StringLit struct {
	typed
	Pos Pos
	V   string
}

// NullLit is null.
type NullLit struct {
	typed
	Pos Pos
}

// ThisExpr is this.
type ThisExpr struct {
	typed
	Pos Pos
}

// IdentExpr is a local variable or parameter reference.
type IdentExpr struct {
	typed
	Pos  Pos
	Name string
}

// FieldExpr is recv.Name. The checker resolves Decl.
type FieldExpr struct {
	typed
	Pos  Pos
	Recv Expr
	Name string
	Decl *FieldDeclNode
	// SiteID is the unique access-site id assigned by the checker, used
	// by the static analyses and their per-site check masks.
	SiteID int
	// NoCheck is set by static analysis for this site.
	NoCheck bool
}

// IndexExpr is arr[idx].
type IndexExpr struct {
	typed
	Pos    Pos
	Arr    Expr
	Index  Expr
	SiteID int
	// NoCheck is set by static analysis for this site.
	NoCheck bool
}

// LenExpr is arr.length (parsed from FieldExpr on arrays).
type LenExpr struct {
	typed
	Pos Pos
	Arr Expr
}

// CallExpr is recv.Name(args); the checker resolves Decl.
type CallExpr struct {
	typed
	Pos  Pos
	Recv Expr // nil means this
	Name string
	Args []Expr
	Decl *MethodDecl
}

// NewExpr is new C().
type NewExpr struct {
	typed
	Pos   Pos
	Class string
	Decl  *ClassDecl
}

// NewArrayExpr is new T[len], or new T[len][len2]... for eager
// multi-dimensional allocation; extraDims holds the inner lengths.
type NewArrayExpr struct {
	typed
	Pos       Pos
	Elem      *Type
	Len       Expr
	extraDims []Expr
}

// ExtraDims returns the inner dimension lengths of a multi-dimensional
// allocation (empty for one-dimensional arrays).
func (e *NewArrayExpr) ExtraDims() []Expr { return e.extraDims }

// SpawnExpr is spawn recv.Name(args): starts a thread running the
// method, evaluating to a thread handle.
type SpawnExpr struct {
	typed
	Pos  Pos
	Call *CallExpr
	// SpawnID is the unique spawn-site id assigned by the checker.
	SpawnID int
}

// MakeChanExpr is make(chan<T>) or make(chan<T>, cap).
type MakeChanExpr struct {
	typed
	Pos  Pos
	Elem *Type
	Cap  Expr // may be nil (unbuffered)
}

// RecvExpr is recv(c): take the next message, blocking while the
// channel is empty and open; a closed, drained channel yields the
// element type's zero value without blocking.
type RecvExpr struct {
	typed
	Pos  Pos
	Chan Expr
}

// UnaryExpr is !e or -e.
type UnaryExpr struct {
	typed
	Pos Pos
	Op  TokKind
	E   Expr
}

// BinaryExpr is e1 op e2.
type BinaryExpr struct {
	typed
	Pos  Pos
	Op   TokKind
	L, R Expr
}

func (*IntLit) exprNode()       {}
func (*FloatLit) exprNode()     {}
func (*BoolLit) exprNode()      {}
func (*StringLit) exprNode()    {}
func (*NullLit) exprNode()      {}
func (*ThisExpr) exprNode()     {}
func (*IdentExpr) exprNode()    {}
func (*FieldExpr) exprNode()    {}
func (*IndexExpr) exprNode()    {}
func (*LenExpr) exprNode()      {}
func (*CallExpr) exprNode()     {}
func (*NewExpr) exprNode()      {}
func (*NewArrayExpr) exprNode() {}
func (*SpawnExpr) exprNode()    {}
func (*UnaryExpr) exprNode()    {}
func (*BinaryExpr) exprNode()   {}
func (*MakeChanExpr) exprNode() {}
func (*RecvExpr) exprNode()     {}

// ExprPos implementations.
func (e *IntLit) ExprPos() Pos       { return e.Pos }
func (e *FloatLit) ExprPos() Pos     { return e.Pos }
func (e *BoolLit) ExprPos() Pos      { return e.Pos }
func (e *StringLit) ExprPos() Pos    { return e.Pos }
func (e *NullLit) ExprPos() Pos      { return e.Pos }
func (e *ThisExpr) ExprPos() Pos     { return e.Pos }
func (e *IdentExpr) ExprPos() Pos    { return e.Pos }
func (e *FieldExpr) ExprPos() Pos    { return e.Pos }
func (e *IndexExpr) ExprPos() Pos    { return e.Pos }
func (e *LenExpr) ExprPos() Pos      { return e.Pos }
func (e *CallExpr) ExprPos() Pos     { return e.Pos }
func (e *NewExpr) ExprPos() Pos      { return e.Pos }
func (e *NewArrayExpr) ExprPos() Pos { return e.Pos }
func (e *SpawnExpr) ExprPos() Pos    { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos    { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos   { return e.Pos }
func (e *MakeChanExpr) ExprPos() Pos { return e.Pos }
func (e *RecvExpr) ExprPos() Pos     { return e.Pos }
