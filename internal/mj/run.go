package mj

import (
	"bytes"

	"goldilocks/internal/detect"
	"goldilocks/internal/jrt"
)

// RunSource parses, checks, and runs an MJ program on a fresh runtime
// with the given configuration, returning the races observed, the
// program's print output, and any front-end or runtime error.
func RunSource(src string, cfg jrt.Config) ([]detect.Race, string, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, "", err
	}
	if err := Check(prog); err != nil {
		return nil, "", err
	}
	rt := jrt.NewRuntime(cfg)
	var out bytes.Buffer
	in, err := NewInterp(prog, InterpConfig{Runtime: rt, Out: &out})
	if err != nil {
		return nil, "", err
	}
	races, err := in.Run()
	return races, out.String(), err
}
