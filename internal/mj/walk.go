package mj

// WalkStmts calls f on every statement in the tree rooted at s,
// including s itself, in source order.
func WalkStmts(s Stmt, f func(Stmt)) {
	if s == nil {
		return
	}
	f(s)
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			WalkStmts(sub, f)
		}
	case *IfStmt:
		WalkStmts(st.Then, f)
		if st.Else != nil {
			WalkStmts(st.Else, f)
		}
	case *WhileStmt:
		WalkStmts(st.Body, f)
	case *ForStmt:
		if st.Init != nil {
			WalkStmts(st.Init, f)
		}
		if st.Post != nil {
			WalkStmts(st.Post, f)
		}
		WalkStmts(st.Body, f)
	case *SyncStmt:
		WalkStmts(st.Body, f)
	case *AtomicStmt:
		WalkStmts(st.Body, f)
	case *TryStmt:
		WalkStmts(st.Body, f)
		WalkStmts(st.Catch, f)
	case *SelectStmt:
		for _, arm := range st.Arms {
			WalkStmts(arm.Body, f)
		}
		if st.Default != nil {
			WalkStmts(st.Default, f)
		}
	}
}

// WalkExprs calls f on every expression in the tree rooted at s, in
// source order, descending into subexpressions.
func WalkExprs(s Stmt, f func(Expr)) {
	WalkStmts(s, func(st Stmt) {
		switch n := st.(type) {
		case *VarDeclStmt:
			walkExpr(n.Init, f)
		case *AssignStmt:
			walkExpr(n.Target, f)
			walkExpr(n.Value, f)
		case *IfStmt:
			walkExpr(n.Cond, f)
		case *WhileStmt:
			walkExpr(n.Cond, f)
		case *ForStmt:
			walkExpr(n.Cond, f)
		case *ReturnStmt:
			walkExpr(n.Value, f)
		case *ExprStmt:
			walkExpr(n.E, f)
		case *SyncStmt:
			walkExpr(n.Lock, f)
		case *WaitStmt:
			walkExpr(n.Obj, f)
		case *NotifyStmt:
			walkExpr(n.Obj, f)
		case *JoinStmt:
			walkExpr(n.Thread, f)
		case *PrintStmt:
			for _, a := range n.Args {
				walkExpr(a, f)
			}
		case *SendStmt:
			walkExpr(n.Chan, f)
			walkExpr(n.Value, f)
		case *CloseStmt:
			walkExpr(n.Chan, f)
		case *SelectStmt:
			for _, arm := range n.Arms {
				walkExpr(arm.Chan, f)
				walkExpr(arm.Value, f)
			}
		}
	})
}

func walkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch ex := e.(type) {
	case *FieldExpr:
		walkExpr(ex.Recv, f)
	case *IndexExpr:
		walkExpr(ex.Arr, f)
		walkExpr(ex.Index, f)
	case *LenExpr:
		walkExpr(ex.Arr, f)
	case *CallExpr:
		walkExpr(ex.Recv, f)
		for _, a := range ex.Args {
			walkExpr(a, f)
		}
	case *SpawnExpr:
		walkExpr(ex.Call, f)
	case *UnaryExpr:
		walkExpr(ex.E, f)
	case *BinaryExpr:
		walkExpr(ex.L, f)
		walkExpr(ex.R, f)
	case *NewArrayExpr:
		walkExpr(ex.Len, f)
		for _, d := range ex.extraDims {
			walkExpr(d, f)
		}
	case *MakeChanExpr:
		walkExpr(ex.Cap, f)
	case *RecvExpr:
		walkExpr(ex.Chan, f)
	}
}
