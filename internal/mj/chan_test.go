package mj

import (
	"strings"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/jrt"
)

// logCfg is detCfg with a logging policy, so racy channel programs run
// to completion and the test can count reports.
func logCfg(seed int64) jrt.Config {
	return jrt.Config{Detector: core.New(), Policy: jrt.Log, Mode: jrt.Deterministic, Seed: seed}
}

// TestChanWordsAsMemberNames pins the contextual-keyword rule: the
// channel operation words stay legal as field and method names
// (pre-channel programs declare methods like close()), because no
// channel form can begin in member position.
func TestChanWordsAsMemberNames(t *testing.T) {
	src := `
class Conn {
    int close;
    boolean send;
    void recv() { print("recv method"); }
    int make(int x) { return x + this.close; }
}
class Main {
    void main() {
        Conn c = new Conn();
        c.close = 4;
        c.send = true;
        c.recv();
        print(c.make(38), c.send);
    }
}`
	races, out := runMJ(t, src, logCfg(1))
	if races != 0 {
		t.Fatalf("races = %d, want 0", races)
	}
	if out != "recv method\n42 true\n" {
		t.Fatalf("out = %q", out)
	}
	fixpoint(t, src)
}

func TestParseChanForms(t *testing.T) {
	prog := MustParse(`
class Main {
	chan<int> c;
	chan<chan<boolean>> nested;
	chan<int>[] ring;
	void main() {
		chan<int> d = make(chan<int>, 4);
		send(d, 1);
		int x = recv(d);
		close(d);
		select {
		case send(d, 2) { }
		case recv(d) { }
		case int v = recv(d) { x = v; }
		default { x = 0; }
		}
	}
}
`)
	m := prog.Classes[0].Methods[0]
	var sends, closes, selects, recvs, makes int
	WalkStmts(m.Body, func(s Stmt) {
		switch st := s.(type) {
		case *SendStmt:
			sends++
		case *CloseStmt:
			closes++
		case *SelectStmt:
			selects++
			if len(st.Arms) != 3 || st.Default == nil {
				t.Errorf("select parsed %d arms, default %v", len(st.Arms), st.Default != nil)
			}
			if !st.Arms[0].Send || st.Arms[1].Send || st.Arms[2].Bind != "v" {
				t.Errorf("select arm shapes wrong: %+v", st.Arms)
			}
		}
	})
	WalkExprs(m.Body, func(e Expr) {
		switch e.(type) {
		case *RecvExpr:
			recvs++
		case *MakeChanExpr:
			makes++
		}
	})
	if sends != 1 || closes != 1 || selects != 1 || makes != 1 || recvs != 1 {
		t.Errorf("node counts: send %d close %d select %d make %d recv %d", sends, closes, selects, makes, recvs)
	}
	if got := prog.Classes[0].Fields[1].Type.String(); got != "chan<chan<boolean>>" {
		t.Errorf("nested chan type = %q", got)
	}
}

func TestParseChanErrors(t *testing.T) {
	cases := []string{
		`class C { void m() { chan c; } }`,                                         // missing <elem>
		`class C { void m() { chan<int> c = make(int); } }`,                        // make of non-chan
		`class C { void m() { send(c); } }`,                                        // missing value
		`class C { void m() { select { } } }`,                                      // empty select
		`class C { chan<int> c; void m() { select { default { } default { } } } }`, // two defaults
		`class C { chan<int> c; void m() { select { recv(c) { } } } }`,             // missing case keyword
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestPrinterFixpointChannels(t *testing.T) {
	fixpoint(t, `
class Main {
	chan<int> shared;
	void pump(chan<int> c, int n) {
		for (int i = 0; i < n; i = i + 1) { send(c, i); }
		close(c);
	}
	void main() {
		chan<int> c = make(chan<int>, 2);
		chan<chan<boolean>> meta = make(chan<chan<boolean>>);
		thread t = spawn this.pump(c, 5);
		int sum = 0;
		select {
		case send(c, 9) { sum = 9; }
		case int v = recv(c) { sum = sum + v; }
		case recv(c) { }
		default { sum = -1; }
		}
		close(meta);
		join(t);
	}
}
`)
}

func TestCheckChanTypes(t *testing.T) {
	prog := MustCheck(`
class Main {
	void main() {
		chan<double> c = make(chan<double>, 1);
		send(c, 3);
		double d = recv(c);
	}
}
`)
	var sendElem string
	WalkStmts(prog.ClassByName("Main").Method("main").Body, func(s Stmt) {
		if st, ok := s.(*SendStmt); ok {
			sendElem = st.Elem.String()
		}
	})
	if sendElem != "double" {
		t.Errorf("send elem type = %q, want double (int widens on send)", sendElem)
	}
}

func TestCheckChanErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class C { void m() { send(1, 2); } }`, "requires a channel"},
		{`class C { void m() { int x = recv(3); } }`, "requires a channel"},
		{`class C { void m() { close(true); } }`, "requires a channel"},
		{`class C { void m() { chan<int> c = make(chan<int>, true); } }`, "capacity must be int"},
		{`class C { void m() { chan<int> c = make(chan<boolean>); } }`, "cannot initialize"},
		{`class C { void m() { chan<int> c = make(chan<int>); send(c, true); } }`, "cannot send"},
		{`class C { void m() { chan<int> c = make(chan<int>); boolean b = recv(c); } }`, "cannot initialize"},
		{`class C { void m() { chan<D> c; } }`, "unknown class"},
		{`class C { chan<int> c; void m() { select { case boolean b = recv(c) { } } } }`, "cannot bind"},
		{`class C { chan<int> c; void m() { select { case send(c, true) { } } } }`, "cannot send"},
		{`class C { chan<int> c; void m() { select { case recv(c) { x = 1; } } } }`, "undefined variable"},
		{`class C { chan<int> c; void m() { select { case int v = recv(c) { } } int y = v; } }`, "undefined variable"},
	}
	for _, c := range cases {
		errContains(t, c.src, c.want)
	}
}

func TestCheckChanAtomicRestrictions(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class C { chan<int> c; void m() { atomic { send(c, 1); } } }`, "send inside atomic"},
		{`class C { chan<int> c; void m() { atomic { int x = recv(c); } } }`, "receive inside atomic"},
		{`class C { chan<int> c; void m() { atomic { close(c); } } }`, "close inside atomic"},
		{`class C { chan<int> c; void m() { atomic { select { default { } } } } }`, "select inside atomic"},
		{`class C { void m() { atomic { chan<int> c = make(chan<int>); } } }`, "make(chan) inside atomic"},
		{`class C { chan<int> c; void helper() { send(c, 1); } void m() { atomic { helper(); } } }`, "sends on a channel"},
		{`class C { chan<int> c; int helper() { return recv(c); } void m() { atomic { int x = helper(); } } }`, "receives from a channel"},
	}
	for _, c := range cases {
		errContains(t, c.src, c.want)
	}
}

// TestInterpChanHandoff: the message-passing idiom is race-free through
// the channel edge, and the payload arrives intact.
func TestInterpChanHandoff(t *testing.T) {
	races, out := runMJ(t, `
class Box { int v; }
class Main {
	Box b;
	void producer(chan<int> c) {
		b.v = 41;
		send(c, 1);
	}
	void main() {
		b = new Box();
		chan<int> c = make(chan<int>);
		thread t = spawn this.producer(c);
		int go = recv(c);
		b.v = b.v + go;
		print(b.v);
		join(t);
	}
}
`, logCfg(3))
	if races != 0 {
		t.Errorf("handoff raced: %d reports", races)
	}
	if out != "42\n" {
		t.Errorf("output = %q, want 42", out)
	}
}

// TestInterpChanNoSyncRaces: drop the channel from the same program
// shape and the race comes back — the edge was doing the work.
func TestInterpChanNoSyncRaces(t *testing.T) {
	races, _ := runMJ(t, `
class Box { int v; }
class Main {
	Box b;
	chan<int> c;
	void producer() {
		b.v = 41;
		send(c, 1);
	}
	void main() {
		b = new Box();
		c = make(chan<int>);
		thread t = spawn this.producer();
		b.v = 1;
		int go = recv(c);
		join(t);
	}
}
`, logCfg(3))
	if races != 1 {
		t.Errorf("races = %d, want exactly 1 (write before recv is unordered)", races)
	}
}

// TestInterpChanFIFOAndDrain: buffered FIFO order, and recv from a
// closed, drained channel yields the element zero value non-blockingly.
func TestInterpChanFIFOAndDrain(t *testing.T) {
	races, out := runMJ(t, `
class Main {
	void pump(chan<int> c) {
		for (int i = 1; i <= 5; i = i + 1) { send(c, i * 10); }
		close(c);
	}
	void main() {
		chan<int> c = make(chan<int>, 2);
		thread t = spawn this.pump(c);
		int sum = 0;
		for (int i = 0; i < 5; i = i + 1) { sum = sum * 10 + recv(c) / 10; }
		print(sum);
		print(recv(c), recv(c));
		chan<string> s = make(chan<string>);
		close(s);
		print(recv(s) + "empty");
		join(t);
	}
}
`, logCfg(7))
	if races != 0 {
		t.Errorf("unexpected races: %d", races)
	}
	want := "12345\n0 0\nempty\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

// TestInterpSelect: a ready arm binds the received value; with nothing
// ready the default fires.
func TestInterpSelect(t *testing.T) {
	_, out := runMJ(t, `
class Main {
	void main() {
		chan<int> c = make(chan<int>, 1);
		select {
		case int v = recv(c) { print("got", v); }
		default { print("empty"); }
		}
		send(c, 7);
		select {
		case int v = recv(c) { print("got", v); }
		default { print("empty"); }
		}
		select {
		case send(c, 8) { print("sent"); }
		default { print("full"); }
		}
		select {
		case send(c, 9) { print("sent again"); }
		default { print("full"); }
		}
	}
}
`, logCfg(5))
	want := "empty\ngot 7\nsent\nfull\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

// TestInterpSelectDefaultNoEdge: a fired default synchronizes nothing,
// so the cross-thread write pair stays racy.
func TestInterpSelectDefaultNoEdge(t *testing.T) {
	races, _ := runMJ(t, `
class Box { int v; }
class Main {
	Box b;
	chan<int> full;
	void worker() {
		select {
		case send(full, 2) { }
		default { }
		}
		b.v = 2;
	}
	void main() {
		b = new Box();
		full = make(chan<int>, 1);
		send(full, 1);
		thread t = spawn this.worker();
		b.v = 1;
		join(t);
	}
}
`, logCfg(9))
	if races != 1 {
		t.Errorf("races = %d, want exactly 1 (default must not create an edge)", races)
	}
}

func TestInterpSendOnClosedErrors(t *testing.T) {
	_, _, err := RunSource(`
class Main {
	void main() {
		chan<int> c = make(chan<int>);
		close(c);
		send(c, 1);
	}
}
`, detCfg(1))
	if err == nil || !strings.Contains(err.Error(), "closed channel") {
		t.Errorf("err = %v, want send-on-closed-channel error", err)
	}
}

func TestInterpNullChannel(t *testing.T) {
	_, _, err := RunSource(`
class Main { void main() { chan<int> c = null; send(c, 1); } }
`, detCfg(1))
	if err == nil || !strings.Contains(err.Error(), "null") {
		t.Errorf("err = %v, want null dereference", err)
	}
}

func TestInterpNegativeCapacity(t *testing.T) {
	_, _, err := RunSource(`
class Main { void main() { chan<int> c = make(chan<int>, 0 - 2); } }
`, detCfg(1))
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("err = %v, want invalid-capacity error", err)
	}
}

// TestInterpChanOfChan: channels are first-class values — they travel
// through fields, arrays, and other channels.
func TestInterpChanOfChan(t *testing.T) {
	races, out := runMJ(t, `
class Main {
	void serve(chan<chan<int>> requests) {
		chan<int> reply = recv(requests);
		send(reply, 99);
	}
	void main() {
		chan<chan<int>> requests = make(chan<chan<int>>, 1);
		thread t = spawn this.serve(requests);
		chan<int> reply = make(chan<int>, 1);
		send(requests, reply);
		print(recv(reply));
		join(t);
	}
}
`, logCfg(11))
	if races != 0 {
		t.Errorf("unexpected races: %d", races)
	}
	if out != "99\n" {
		t.Errorf("output = %q, want 99", out)
	}
}
