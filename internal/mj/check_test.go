package mj

import (
	"strings"
	"testing"
)

func TestCheckResolvesTypesAndSites(t *testing.T) {
	prog := MustCheck(`
class Box { int v; }
class Main {
	Box b;
	void main() {
		b = new Box();
		b.v = 3;
		int x = b.v + 1;
		int[] a = new int[4];
		a[0] = x;
	}
}
`)
	if NumSites(prog) == 0 {
		t.Error("no access sites assigned")
	}
	mainM := prog.ClassByName("Main").Method("main")
	seen := map[int]bool{}
	WalkExprs(mainM.Body, func(e Expr) {
		switch ex := e.(type) {
		case *FieldExpr:
			if ex.Decl == nil {
				t.Errorf("unresolved field %s", ex.Name)
			}
			if seen[ex.SiteID] {
				t.Errorf("duplicate site id %d", ex.SiteID)
			}
			seen[ex.SiteID] = true
		case *IndexExpr:
			if seen[ex.SiteID] {
				t.Errorf("duplicate site id %d", ex.SiteID)
			}
			seen[ex.SiteID] = true
		}
	})
}

func TestCheckLengthRewrite(t *testing.T) {
	prog := MustCheck(`
class Main { void main() { int[] a = new int[3]; int n = a.length; string s = "abc"; int m = s.length; } }
`)
	var lens int
	WalkExprs(prog.ClassByName("Main").Method("main").Body, func(e Expr) {
		if _, ok := e.(*LenExpr); ok {
			lens++
		}
	})
	if lens != 2 {
		t.Errorf("LenExpr count = %d, want 2", lens)
	}
}

func TestCheckImplicitThisField(t *testing.T) {
	MustCheck(`
class Main {
	int n;
	void main() { n = n + 1; }
}
`)
}

func TestCheckIntToDoubleWidening(t *testing.T) {
	MustCheck(`
class Main {
	double d;
	double half(double x) { return x / 2; }
	void main() { d = 3; d = half(7); }
}
`)
}

func errContains(t *testing.T, src, want string) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	err = Check(prog)
	if err == nil {
		t.Fatalf("Check succeeded, want error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error = %q, want substring %q", err, want)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class C {} class C {}`, "duplicate class"},
		{`class C { int x; int x; }`, "duplicate field"},
		{`class C { void m() {} void m() {} }`, "duplicate method"},
		{`class C { D d; }`, "unknown class"},
		{`class C { void m() { x = 1; } }`, "undefined variable"},
		{`class C { int x; void m() { x = true; } }`, "cannot assign"},
		{`class C { void m() { int x = 1; int x = 2; } }`, "redeclaration"},
		{`class C { void m(int a, int a) {} }`, "duplicate parameter"},
		{`class C { void m() { if (1) {} } }`, "must be boolean"},
		{`class C { void m() { break; } }`, "break outside loop"},
		{`class C { int m() { return; } }`, "missing return value"},
		{`class C { void m() { return 1; } }`, "returns a value"},
		{`class C { void m() { this.q(); } }`, "no method"},
		{`class C { int f; void m() { this.g = 1; } }`, "no field"},
		{`class C { void m(int a) {} void n() { m(); } }`, "takes 1 arguments"},
		{`class C { void m() { synchronized (1) {} } }`, "requires an object"},
		{`class C { void m() { wait(3); } }`, "requires an object"},
		{`class C { void m() { join(3); } }`, "requires a thread"},
		{`class C { void m() { int[] a = new int[2]; a[true] = 1; } }`, "index must be int"},
		{`class C { void m() { int x = 1; x[0] = 2; } }`, "indexing non-array"},
		{`class C { volatile int[] va; }`, "volatile array"},
		{`class C { void m() { int x = 1 + true; } }`, "requires numbers"},
		{`class C { void m() { boolean b = 1 && true; } }`, "requires booleans"},
		{`class C { int m(int x) { return x; } void n() { thread t = spawn this.m(1); } }`, "must return void"},
		{`class C { void m() { int[] a = new int[2]; a.length = 3; } }`, "cannot assign to length"},
	}
	for _, c := range cases {
		errContains(t, c.src, c.want)
	}
}

func TestCheckAtomicRestrictions(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class C { void m() { atomic { synchronized (this) {} } } }`, "synchronized inside atomic"},
		{`class C { void m() { atomic { wait(this); } } }`, "wait inside atomic"},
		{`class C { void m() { atomic { notify(this); } } }`, "notify inside atomic"},
		{`class C { void m() { atomic { atomic { } } } }`, "nested atomic"},
		{`class C { void m() { atomic { print(1); } } }`, "I/O"},
		{`class C { void w() {} void m() { atomic { thread t = spawn this.w(); } } }`, "spawn inside atomic"},
		{`class C { volatile int v; void m() { atomic { v = 1; } } }`, "volatile access inside atomic"},
		{`class C { volatile int v; void m() { atomic { int x = v; } } }`, "volatile access inside atomic"},
		{`class C { int m2() { return 1; } void m() { while(true) { atomic { break; } } } }`, "break outside loop"},
		{`class C { synchronized void s() {} void m() { atomic { s(); } } }`, "synchronized"},
		{`class C { void deep() { print(1); } void mid() { deep(); } void m() { atomic { mid(); } } }`, "I/O"},
		{`class C { int m() { atomic { return; } } }`, "return inside atomic"},
	}
	for _, c := range cases {
		errContains(t, c.src, c.want)
	}

	// Legal atomic usage: plain field access and calls to pure methods.
	MustCheck(`
class C {
	int n;
	int bump(int x) { return x + 1; }
	void m() { atomic { n = bump(n); } }
}
`)
}
