package mj

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, _, err := Lex(`class Foo { int x; }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokClass, TokIdent, TokLBrace, TokInt_, TokIdent, TokSemi, TokRBrace, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, _, err := Lex(`== != <= >= && || = < > ! + - * / %`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokEq, TokNe, TokLe, TokGe, TokAnd, TokOr, TokAssign,
		TokLt, TokGt, TokNot, TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbersAndStrings(t *testing.T) {
	toks, _, err := Lex(`42 3.14 "hi\n\"there\""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokInt || toks[0].Text != "42" {
		t.Errorf("int token = %v", toks[0])
	}
	if toks[1].Kind != TokFloat || toks[1].Text != "3.14" {
		t.Errorf("float token = %v", toks[1])
	}
	if toks[2].Kind != TokString || toks[2].Text != "hi\n\"there\"" {
		t.Errorf("string token = %q", toks[2].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, pragmas, err := Lex(`
// plain comment
//@ race_free Foo.x guarded_by_this
/* block
   comment */ class
`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokClass {
		t.Errorf("comments not skipped: %v", toks[0])
	}
	if len(pragmas) != 1 || pragmas[0].Text != "race_free Foo.x guarded_by_this" {
		t.Errorf("pragmas = %v", pragmas)
	}
}

func TestLexPositions(t *testing.T) {
	toks, _, err := Lex("class\n  Foo")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("class pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("Foo pos = %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`"bad \q escape"`,
		`@`,
		`/* unterminated`,
		"\"newline\nin string\"",
	}
	for _, src := range cases {
		if _, _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, _, err := Lex("classes atomicx spawned")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if toks[i].Kind != TokIdent {
			t.Errorf("token %d (%s) lexed as %v, want identifier", i, toks[i].Text, toks[i].Kind)
		}
	}
}

func TestTokenString(t *testing.T) {
	if s := (Token{Kind: TokIdent, Text: "x"}).String(); !strings.Contains(s, "x") {
		t.Errorf("Token.String = %q", s)
	}
	if s := TokClass.String(); s != "class" {
		t.Errorf("TokClass.String = %q", s)
	}
}
