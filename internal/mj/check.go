package mj

import "fmt"

// CheckError is a semantic error with its position.
type CheckError struct {
	Pos Pos
	Msg string
}

func (e *CheckError) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

// Check resolves and typechecks a parsed program in place: class, field
// and method references are resolved, every expression receives its
// static type, access sites and spawn sites receive unique ids, and the
// structural restrictions on atomic blocks (no synchronization or
// thread operations inside a transaction, transitively through calls)
// are enforced.
func Check(prog *Program) error {
	c := &checker{prog: prog}
	return c.run()
}

// MustCheck parses and checks src (test and workload support).
func MustCheck(src string) *Program {
	prog := MustParse(src)
	if err := Check(prog); err != nil {
		panic(err)
	}
	return prog
}

type checker struct {
	prog       *Program
	method     *MethodDecl
	scopes     []map[string]*Type
	loopDepth  int
	atomicNest int
	nextSite   int
	nextSpawn  int
}

func (c *checker) errf(pos Pos, format string, args ...any) error {
	return &CheckError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) run() error {
	c.prog.byName = make(map[string]*ClassDecl)
	for _, cd := range c.prog.Classes {
		if _, dup := c.prog.byName[cd.Name]; dup {
			return c.errf(cd.Pos, "duplicate class %s", cd.Name)
		}
		c.prog.byName[cd.Name] = cd
		cd.fieldsByName = make(map[string]*FieldDeclNode)
		cd.methodsByName = make(map[string]*MethodDecl)
		for i, f := range cd.Fields {
			if _, dup := cd.fieldsByName[f.Name]; dup {
				return c.errf(f.Pos, "duplicate field %s.%s", cd.Name, f.Name)
			}
			f.Index = i
			cd.fieldsByName[f.Name] = f
		}
		for _, m := range cd.Methods {
			if _, dup := cd.methodsByName[m.Name]; dup {
				return c.errf(m.Pos, "duplicate method %s", m.QName())
			}
			if _, clash := cd.fieldsByName[m.Name]; clash {
				return c.errf(m.Pos, "method %s clashes with a field name", m.QName())
			}
			cd.methodsByName[m.Name] = m
		}
	}

	// Validate declared types now that the class table exists.
	for _, cd := range c.prog.Classes {
		for _, f := range cd.Fields {
			if err := c.validType(f.Pos, f.Type); err != nil {
				return err
			}
			if f.Volatile && f.Type.Kind == TypeArray {
				return c.errf(f.Pos, "volatile array fields are not supported")
			}
		}
		for _, m := range cd.Methods {
			if m.Ret.Kind != TypeVoid {
				if err := c.validType(m.Pos, m.Ret); err != nil {
					return err
				}
			}
			for _, p := range m.Params {
				if err := c.validType(p.Pos, p.Type); err != nil {
					return err
				}
			}
		}
	}

	for _, cd := range c.prog.Classes {
		for _, m := range cd.Methods {
			if err := c.checkMethod(m); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *checker) validType(pos Pos, t *Type) error {
	switch t.Kind {
	case TypeObject:
		if _, ok := c.prog.byName[t.Class]; !ok {
			return c.errf(pos, "unknown class %s", t.Class)
		}
	case TypeArray, TypeChan:
		return c.validType(pos, t.Elem)
	case TypeVoid:
		return c.errf(pos, "void is not a value type")
	}
	return nil
}

func (c *checker) checkMethod(m *MethodDecl) error {
	c.method = m
	c.scopes = []map[string]*Type{{}}
	c.loopDepth = 0
	c.atomicNest = 0
	for _, p := range m.Params {
		if _, dup := c.scopes[0][p.Name]; dup {
			return c.errf(p.Pos, "duplicate parameter %s", p.Name)
		}
		c.scopes[0][p.Name] = p.Type
	}
	return c.checkBlock(m.Body)
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Type{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }
func (c *checker) declare(name string, t *Type) bool {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return false
	}
	top[name] = t
	return true
}

func (c *checker) lookup(name string) (*Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (c *checker) checkBlock(b *Block) error {
	c.push()
	defer c.pop()
	for i, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
		_ = i
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return c.checkBlock(st)
	case *VarDeclStmt:
		if err := c.validType(st.Pos, st.Type); err != nil {
			return err
		}
		if st.Init != nil {
			it, err := c.checkExprP(&st.Init)
			if err != nil {
				return err
			}
			if !it.AssignableTo(st.Type) {
				return c.errf(st.Pos, "cannot initialize %s %s with %s", st.Type, st.Name, it)
			}
		}
		if !c.declare(st.Name, st.Type) {
			return c.errf(st.Pos, "redeclaration of %s", st.Name)
		}
		return nil
	case *AssignStmt:
		tt, err := c.checkExprP(&st.Target)
		if err != nil {
			return err
		}
		if fe, ok := st.Target.(*FieldExpr); ok && fe.Decl == nil {
			return c.errf(st.Pos, "cannot assign to length")
		}
		if _, isLen := st.Target.(*LenExpr); isLen {
			return c.errf(st.Pos, "cannot assign to length")
		}
		vt, err := c.checkExprP(&st.Value)
		if err != nil {
			return err
		}
		if !vt.AssignableTo(tt) {
			return c.errf(st.Pos, "cannot assign %s to %s", vt, tt)
		}
		if c.atomicNest > 0 {
			if fe, ok := st.Target.(*FieldExpr); ok && fe.Decl.Volatile {
				return c.errf(st.Pos, "volatile access inside atomic block")
			}
		}
		return nil
	case *IfStmt:
		ct, err := c.checkExprP(&st.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != TypeBool {
			return c.errf(st.Pos, "if condition must be boolean, got %s", ct)
		}
		if err := c.checkBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkBlock(st.Else)
		}
		return nil
	case *WhileStmt:
		ct, err := c.checkExprP(&st.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != TypeBool {
			return c.errf(st.Pos, "while condition must be boolean, got %s", ct)
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(st.Body)
	case *ForStmt:
		c.push()
		defer c.pop()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			ct, err := c.checkExprP(&st.Cond)
			if err != nil {
				return err
			}
			if ct.Kind != TypeBool {
				return c.errf(st.Pos, "for condition must be boolean, got %s", ct)
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(st.Body)
	case *ReturnStmt:
		if c.atomicNest > 0 {
			return c.errf(st.Pos, "return inside atomic block is not supported")
		}
		if st.Value == nil {
			if c.method.Ret.Kind != TypeVoid {
				return c.errf(st.Pos, "missing return value in %s", c.method.QName())
			}
			return nil
		}
		if c.method.Ret.Kind == TypeVoid {
			return c.errf(st.Pos, "void method %s returns a value", c.method.QName())
		}
		vt, err := c.checkExprP(&st.Value)
		if err != nil {
			return err
		}
		if !vt.AssignableTo(c.method.Ret) {
			return c.errf(st.Pos, "cannot return %s from %s (want %s)", vt, c.method.QName(), c.method.Ret)
		}
		return nil
	case *BreakStmt:
		if c.loopDepth == 0 {
			return c.errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return c.errf(st.Pos, "continue outside loop")
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExprP(&st.E)
		return err
	case *SyncStmt:
		if c.atomicNest > 0 {
			return c.errf(st.Pos, "synchronized inside atomic block")
		}
		lt, err := c.checkExprP(&st.Lock)
		if err != nil {
			return err
		}
		if lt.Kind != TypeObject {
			return c.errf(st.Pos, "synchronized requires an object, got %s", lt)
		}
		return c.checkBlock(st.Body)
	case *AtomicStmt:
		if c.atomicNest > 0 {
			return c.errf(st.Pos, "nested atomic blocks are not supported")
		}
		c.atomicNest++
		savedLoops := c.loopDepth
		c.loopDepth = 0 // break/continue must not cross the transaction boundary
		defer func() { c.atomicNest--; c.loopDepth = savedLoops }()
		return c.checkBlock(st.Body)
	case *TryStmt:
		if c.atomicNest > 0 {
			return c.errf(st.Pos, "try inside atomic block")
		}
		if err := c.checkBlock(st.Body); err != nil {
			return err
		}
		return c.checkBlock(st.Catch)
	case *SendStmt:
		if c.atomicNest > 0 {
			return c.errf(st.Pos, "channel send inside atomic block")
		}
		ct, err := c.checkExprP(&st.Chan)
		if err != nil {
			return err
		}
		if ct.Kind != TypeChan {
			return c.errf(st.Pos, "send requires a channel, got %s", ct)
		}
		vt, err := c.checkExprP(&st.Value)
		if err != nil {
			return err
		}
		if !vt.AssignableTo(ct.Elem) {
			return c.errf(st.Pos, "cannot send %s on %s", vt, ct)
		}
		st.Elem = ct.Elem
		return nil
	case *CloseStmt:
		if c.atomicNest > 0 {
			return c.errf(st.Pos, "channel close inside atomic block")
		}
		ct, err := c.checkExprP(&st.Chan)
		if err != nil {
			return err
		}
		if ct.Kind != TypeChan {
			return c.errf(st.Pos, "close requires a channel, got %s", ct)
		}
		return nil
	case *SelectStmt:
		if c.atomicNest > 0 {
			return c.errf(st.Pos, "select inside atomic block")
		}
		for _, arm := range st.Arms {
			ct, err := c.checkExprP(&arm.Chan)
			if err != nil {
				return err
			}
			if ct.Kind != TypeChan {
				return c.errf(arm.Pos, "select case requires a channel, got %s", ct)
			}
			arm.Elem = ct.Elem
			if arm.Send {
				vt, err := c.checkExprP(&arm.Value)
				if err != nil {
					return err
				}
				if !vt.AssignableTo(ct.Elem) {
					return c.errf(arm.Pos, "cannot send %s on %s", vt, ct)
				}
			} else if arm.Bind != "" {
				if err := c.validType(arm.Pos, arm.BindType); err != nil {
					return err
				}
				if !ct.Elem.AssignableTo(arm.BindType) {
					return c.errf(arm.Pos, "cannot bind %s received from %s", arm.BindType, ct)
				}
				// The binding scopes over the arm body only.
				c.push()
				c.declare(arm.Bind, arm.BindType)
				err := c.checkBlock(arm.Body)
				c.pop()
				if err != nil {
					return err
				}
				continue
			}
			if err := c.checkBlock(arm.Body); err != nil {
				return err
			}
		}
		if st.Default != nil {
			return c.checkBlock(st.Default)
		}
		return nil
	case *WaitStmt:
		if c.atomicNest > 0 {
			return c.errf(st.Pos, "wait inside atomic block")
		}
		ot, err := c.checkExprP(&st.Obj)
		if err != nil {
			return err
		}
		if ot.Kind != TypeObject {
			return c.errf(st.Pos, "wait requires an object, got %s", ot)
		}
		return nil
	case *NotifyStmt:
		if c.atomicNest > 0 {
			return c.errf(st.Pos, "notify inside atomic block")
		}
		ot, err := c.checkExprP(&st.Obj)
		if err != nil {
			return err
		}
		if ot.Kind != TypeObject {
			return c.errf(st.Pos, "notify requires an object, got %s", ot)
		}
		return nil
	case *JoinStmt:
		if c.atomicNest > 0 {
			return c.errf(st.Pos, "join inside atomic block")
		}
		tt, err := c.checkExprP(&st.Thread)
		if err != nil {
			return err
		}
		if tt.Kind != TypeThread {
			return c.errf(st.Pos, "join requires a thread, got %s", tt)
		}
		return nil
	case *PrintStmt:
		if c.atomicNest > 0 {
			return c.errf(st.Pos, "print (I/O) inside atomic block")
		}
		for i := range st.Args {
			if _, err := c.checkExprP(&st.Args[i]); err != nil {
				return err
			}
		}
		return nil
	}
	return c.errf(s.StmtPos(), "unhandled statement %T", s)
}

// checkExprP checks the expression at *pe, replacing the node when the
// checker rewrites it (length access), and returns its type.
func (c *checker) checkExprP(pe *Expr) (*Type, error) {
	e2, t, err := c.checkExpr(*pe)
	if err != nil {
		return nil, err
	}
	*pe = e2
	return t, nil
}

func (c *checker) checkExpr(e Expr) (Expr, *Type, error) {
	switch ex := e.(type) {
	case *IntLit:
		ex.setType(IntType)
		return ex, IntType, nil
	case *FloatLit:
		ex.setType(DoubleType)
		return ex, DoubleType, nil
	case *BoolLit:
		ex.setType(BoolType)
		return ex, BoolType, nil
	case *StringLit:
		ex.setType(StringType)
		return ex, StringType, nil
	case *NullLit:
		ex.setType(NullType)
		return ex, NullType, nil
	case *ThisExpr:
		t := ObjectType(c.method.Class.Name)
		ex.setType(t)
		return ex, t, nil
	case *IdentExpr:
		t, ok := c.lookup(ex.Name)
		if !ok {
			// An unqualified name may be a field of this.
			if f := c.method.Class.Field(ex.Name); f != nil {
				fe := &FieldExpr{Pos: ex.Pos, Recv: &ThisExpr{Pos: ex.Pos}, Name: ex.Name}
				return c.checkExpr(fe)
			}
			return nil, nil, c.errf(ex.Pos, "undefined variable %s", ex.Name)
		}
		ex.setType(t)
		return ex, t, nil
	case *FieldExpr:
		recv, rt, err := c.checkExpr(ex.Recv)
		if err != nil {
			return nil, nil, err
		}
		ex.Recv = recv
		if rt.Kind == TypeArray || rt.Kind == TypeString {
			if ex.Name == "length" {
				le := &LenExpr{Pos: ex.Pos, Arr: recv}
				le.setType(IntType)
				return le, IntType, nil
			}
			return nil, nil, c.errf(ex.Pos, "%s has no field %s", rt, ex.Name)
		}
		if rt.Kind != TypeObject {
			return nil, nil, c.errf(ex.Pos, "field access on non-object %s", rt)
		}
		cd := c.prog.byName[rt.Class]
		f := cd.Field(ex.Name)
		if f == nil {
			return nil, nil, c.errf(ex.Pos, "class %s has no field %s", rt.Class, ex.Name)
		}
		if c.atomicNest > 0 && f.Volatile {
			return nil, nil, c.errf(ex.Pos, "volatile access inside atomic block")
		}
		ex.Decl = f
		ex.SiteID = c.nextSite
		c.nextSite++
		ex.setType(f.Type)
		return ex, f.Type, nil
	case *IndexExpr:
		arr, at, err := c.checkExpr(ex.Arr)
		if err != nil {
			return nil, nil, err
		}
		ex.Arr = arr
		if at.Kind != TypeArray {
			return nil, nil, c.errf(ex.Pos, "indexing non-array %s", at)
		}
		idx, it, err := c.checkExpr(ex.Index)
		if err != nil {
			return nil, nil, err
		}
		ex.Index = idx
		if it.Kind != TypeInt {
			return nil, nil, c.errf(ex.Pos, "array index must be int, got %s", it)
		}
		ex.SiteID = c.nextSite
		c.nextSite++
		ex.setType(at.Elem)
		return ex, at.Elem, nil
	case *CallExpr:
		return c.checkCall(ex)
	case *NewExpr:
		cd, ok := c.prog.byName[ex.Class]
		if !ok {
			return nil, nil, c.errf(ex.Pos, "unknown class %s", ex.Class)
		}
		ex.Decl = cd
		t := ObjectType(ex.Class)
		ex.setType(t)
		return ex, t, nil
	case *NewArrayExpr:
		if err := c.validType(ex.Pos, ex.Elem); err != nil {
			return nil, nil, err
		}
		dims := append([]Expr{ex.Len}, ex.extraDims...)
		for i := range dims {
			d, dt, err := c.checkExpr(dims[i])
			if err != nil {
				return nil, nil, err
			}
			if dt.Kind != TypeInt {
				return nil, nil, c.errf(ex.Pos, "array length must be int, got %s", dt)
			}
			dims[i] = d
		}
		ex.Len = dims[0]
		ex.extraDims = dims[1:]
		// The parser folded the inner dimensions into Elem already; the
		// allocation's own type is one array layer on top.
		t := ArrayType(ex.Elem)
		ex.setType(t)
		return ex, t, nil
	case *SpawnExpr:
		if c.atomicNest > 0 {
			return nil, nil, c.errf(ex.Pos, "spawn inside atomic block")
		}
		call, _, err := c.checkCall(ex.Call)
		if err != nil {
			return nil, nil, err
		}
		ex.Call = call.(*CallExpr)
		if ex.Call.Decl.Ret.Kind != TypeVoid {
			return nil, nil, c.errf(ex.Pos, "spawned method %s must return void", ex.Call.Decl.QName())
		}
		ex.SpawnID = c.nextSpawn
		c.nextSpawn++
		ex.setType(ThreadType)
		return ex, ThreadType, nil
	case *MakeChanExpr:
		if c.atomicNest > 0 {
			return nil, nil, c.errf(ex.Pos, "make(chan) inside atomic block")
		}
		if err := c.validType(ex.Pos, ex.Elem); err != nil {
			return nil, nil, err
		}
		if ex.Cap != nil {
			capE, capT, err := c.checkExpr(ex.Cap)
			if err != nil {
				return nil, nil, err
			}
			ex.Cap = capE
			if capT.Kind != TypeInt {
				return nil, nil, c.errf(ex.Pos, "channel capacity must be int, got %s", capT)
			}
		}
		t := ChanType(ex.Elem)
		ex.setType(t)
		return ex, t, nil
	case *RecvExpr:
		if c.atomicNest > 0 {
			return nil, nil, c.errf(ex.Pos, "channel receive inside atomic block")
		}
		ch, ct, err := c.checkExpr(ex.Chan)
		if err != nil {
			return nil, nil, err
		}
		ex.Chan = ch
		if ct.Kind != TypeChan {
			return nil, nil, c.errf(ex.Pos, "recv requires a channel, got %s", ct)
		}
		ex.setType(ct.Elem)
		return ex, ct.Elem, nil
	case *UnaryExpr:
		sub, st, err := c.checkExpr(ex.E)
		if err != nil {
			return nil, nil, err
		}
		ex.E = sub
		switch ex.Op {
		case TokNot:
			if st.Kind != TypeBool {
				return nil, nil, c.errf(ex.Pos, "! requires boolean, got %s", st)
			}
			ex.setType(BoolType)
			return ex, BoolType, nil
		case TokMinus:
			if st.Kind != TypeInt && st.Kind != TypeDouble {
				return nil, nil, c.errf(ex.Pos, "- requires a number, got %s", st)
			}
			ex.setType(st)
			return ex, st, nil
		}
		return nil, nil, c.errf(ex.Pos, "unhandled unary op %v", ex.Op)
	case *BinaryExpr:
		return c.checkBinary(ex)
	case *LenExpr:
		ex.setType(IntType)
		return ex, IntType, nil
	}
	return nil, nil, c.errf(e.ExprPos(), "unhandled expression %T", e)
}

func (c *checker) checkCall(call *CallExpr) (Expr, *Type, error) {
	var cd *ClassDecl
	if call.Recv == nil {
		cd = c.method.Class
		call.Recv = &ThisExpr{Pos: call.Pos}
		if _, _, err := c.checkExpr(call.Recv); err != nil {
			return nil, nil, err
		}
	} else {
		recv, rt, err := c.checkExpr(call.Recv)
		if err != nil {
			return nil, nil, err
		}
		call.Recv = recv
		if rt.Kind != TypeObject {
			return nil, nil, c.errf(call.Pos, "method call on non-object %s", rt)
		}
		cd = c.prog.byName[rt.Class]
	}
	m := cd.Method(call.Name)
	if m == nil {
		return nil, nil, c.errf(call.Pos, "class %s has no method %s", cd.Name, call.Name)
	}
	if c.atomicNest > 0 {
		if err := c.atomicSafe(m, map[*MethodDecl]bool{}); err != nil {
			return nil, nil, c.errf(call.Pos, "call to %s inside atomic block: %v", m.QName(), err)
		}
	}
	if len(call.Args) != len(m.Params) {
		return nil, nil, c.errf(call.Pos, "%s takes %d arguments, got %d", m.QName(), len(m.Params), len(call.Args))
	}
	for i := range call.Args {
		a, at, err := c.checkExpr(call.Args[i])
		if err != nil {
			return nil, nil, err
		}
		call.Args[i] = a
		if !at.AssignableTo(m.Params[i].Type) {
			return nil, nil, c.errf(call.Pos, "argument %d of %s: cannot pass %s as %s", i+1, m.QName(), at, m.Params[i].Type)
		}
	}
	call.Decl = m
	call.setType(m.Ret)
	return call, m.Ret, nil
}

// atomicSafe verifies that a method called from inside a transaction
// performs no synchronization or thread operations, transitively.
func (c *checker) atomicSafe(m *MethodDecl, seen map[*MethodDecl]bool) error {
	if seen[m] {
		return nil
	}
	seen[m] = true
	if m.Synchronized {
		return fmt.Errorf("%s is synchronized", m.QName())
	}
	var verify func(s Stmt) error
	var verifyExpr func(e Expr) error
	verifyExpr = func(e Expr) error {
		switch ex := e.(type) {
		case *SpawnExpr:
			return fmt.Errorf("%s spawns a thread", m.QName())
		case *MakeChanExpr:
			return fmt.Errorf("%s makes a channel", m.QName())
		case *RecvExpr:
			return fmt.Errorf("%s receives from a channel", m.QName())
		case *FieldExpr:
			if ex.Decl != nil && ex.Decl.Volatile {
				return fmt.Errorf("%s accesses a volatile field", m.QName())
			}
			return verifyExpr(ex.Recv)
		case *IndexExpr:
			if err := verifyExpr(ex.Arr); err != nil {
				return err
			}
			return verifyExpr(ex.Index)
		case *LenExpr:
			return verifyExpr(ex.Arr)
		case *CallExpr:
			if ex.Recv != nil {
				if err := verifyExpr(ex.Recv); err != nil {
					return err
				}
			}
			for _, a := range ex.Args {
				if err := verifyExpr(a); err != nil {
					return err
				}
			}
			if ex.Decl != nil {
				return c.atomicSafe(ex.Decl, seen)
			}
			return nil
		case *UnaryExpr:
			return verifyExpr(ex.E)
		case *BinaryExpr:
			if err := verifyExpr(ex.L); err != nil {
				return err
			}
			return verifyExpr(ex.R)
		case *NewArrayExpr:
			if err := verifyExpr(ex.Len); err != nil {
				return err
			}
			for _, d := range ex.extraDims {
				if err := verifyExpr(d); err != nil {
					return err
				}
			}
		}
		return nil
	}
	verify = func(s Stmt) error {
		switch st := s.(type) {
		case *Block:
			for _, sub := range st.Stmts {
				if err := verify(sub); err != nil {
					return err
				}
			}
		case *SyncStmt:
			return fmt.Errorf("%s uses synchronized", m.QName())
		case *SendStmt:
			return fmt.Errorf("%s sends on a channel", m.QName())
		case *CloseStmt:
			return fmt.Errorf("%s closes a channel", m.QName())
		case *SelectStmt:
			return fmt.Errorf("%s uses select", m.QName())
		case *WaitStmt:
			return fmt.Errorf("%s uses wait", m.QName())
		case *NotifyStmt:
			return fmt.Errorf("%s uses notify", m.QName())
		case *JoinStmt:
			return fmt.Errorf("%s joins a thread", m.QName())
		case *PrintStmt:
			return fmt.Errorf("%s performs I/O", m.QName())
		case *AtomicStmt:
			return fmt.Errorf("%s nests atomic", m.QName())
		case *VarDeclStmt:
			if st.Init != nil {
				return verifyExpr(st.Init)
			}
		case *AssignStmt:
			if err := verifyExpr(st.Target); err != nil {
				return err
			}
			return verifyExpr(st.Value)
		case *IfStmt:
			if err := verifyExpr(st.Cond); err != nil {
				return err
			}
			if err := verify(st.Then); err != nil {
				return err
			}
			if st.Else != nil {
				return verify(st.Else)
			}
		case *WhileStmt:
			if err := verifyExpr(st.Cond); err != nil {
				return err
			}
			return verify(st.Body)
		case *ForStmt:
			if st.Init != nil {
				if err := verify(st.Init); err != nil {
					return err
				}
			}
			if st.Cond != nil {
				if err := verifyExpr(st.Cond); err != nil {
					return err
				}
			}
			if st.Post != nil {
				if err := verify(st.Post); err != nil {
					return err
				}
			}
			return verify(st.Body)
		case *ReturnStmt:
			if st.Value != nil {
				return verifyExpr(st.Value)
			}
		case *ExprStmt:
			return verifyExpr(st.E)
		}
		return nil
	}
	return verify(m.Body)
}

func (c *checker) checkBinary(ex *BinaryExpr) (Expr, *Type, error) {
	l, lt, err := c.checkExpr(ex.L)
	if err != nil {
		return nil, nil, err
	}
	r, rt, err := c.checkExpr(ex.R)
	if err != nil {
		return nil, nil, err
	}
	ex.L, ex.R = l, r

	numeric := func() (*Type, bool) {
		if lt.Kind == TypeInt && rt.Kind == TypeInt {
			return IntType, true
		}
		if (lt.Kind == TypeInt || lt.Kind == TypeDouble) && (rt.Kind == TypeInt || rt.Kind == TypeDouble) {
			return DoubleType, true
		}
		return nil, false
	}

	switch ex.Op {
	case TokPlus:
		if lt.Kind == TypeString && rt.Kind == TypeString {
			ex.setType(StringType)
			return ex, StringType, nil
		}
		fallthrough
	case TokMinus, TokStar, TokSlash:
		t, ok := numeric()
		if !ok {
			return nil, nil, c.errf(ex.Pos, "operator %v requires numbers, got %s and %s", ex.Op, lt, rt)
		}
		ex.setType(t)
		return ex, t, nil
	case TokPercent:
		if lt.Kind != TypeInt || rt.Kind != TypeInt {
			return nil, nil, c.errf(ex.Pos, "%% requires ints, got %s and %s", lt, rt)
		}
		ex.setType(IntType)
		return ex, IntType, nil
	case TokLt, TokLe, TokGt, TokGe:
		if _, ok := numeric(); !ok {
			return nil, nil, c.errf(ex.Pos, "comparison requires numbers, got %s and %s", lt, rt)
		}
		ex.setType(BoolType)
		return ex, BoolType, nil
	case TokEq, TokNe:
		ok := false
		if _, num := numeric(); num {
			ok = true
		}
		if lt.Kind == TypeBool && rt.Kind == TypeBool {
			ok = true
		}
		if lt.Kind == TypeString && rt.Kind == TypeString {
			ok = true
		}
		if lt.IsRef() && rt.IsRef() && (lt.AssignableTo(rt) || rt.AssignableTo(lt)) {
			ok = true
		}
		if !ok {
			return nil, nil, c.errf(ex.Pos, "cannot compare %s and %s", lt, rt)
		}
		ex.setType(BoolType)
		return ex, BoolType, nil
	case TokAnd, TokOr:
		if lt.Kind != TypeBool || rt.Kind != TypeBool {
			return nil, nil, c.errf(ex.Pos, "%v requires booleans, got %s and %s", ex.Op, lt, rt)
		}
		ex.setType(BoolType)
		return ex, BoolType, nil
	}
	return nil, nil, c.errf(ex.Pos, "unhandled binary op %v", ex.Op)
}

// NumSites returns the number of access sites assigned by Check.
func NumSites(prog *Program) int {
	n := 0
	forEachAccessSite(prog, func(int, *MethodDecl) { n++ })
	return n
}

// forEachAccessSite visits every field/index access site id with its
// enclosing method.
func forEachAccessSite(prog *Program, f func(site int, m *MethodDecl)) {
	for _, cd := range prog.Classes {
		for _, m := range cd.Methods {
			WalkExprs(m.Body, func(e Expr) {
				switch ex := e.(type) {
				case *FieldExpr:
					f(ex.SiteID, m)
				case *IndexExpr:
					f(ex.SiteID, m)
				}
			})
		}
	}
}
