package mj

import (
	"fmt"
	"strconv"
)

// ParseError is a syntax error with its position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

// Parse lexes and parses an MJ source file.
func Parse(src string) (*Program, error) {
	toks, pragmas, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Pragmas: pragmas}
	for !p.at(TokEOF) {
		c, err := p.classDecl()
		if err != nil {
			return nil, err
		}
		prog.Classes = append(prog.Classes, c)
	}
	return prog, nil
}

// MustParse parses src, panicking on error (test and workload support).
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) peek() Token { return p.toks[min(p.i+1, len(p.toks)-1)] }
func (p *parser) peek2() Token {
	return p.toks[min(p.i+2, len(p.toks)-1)]
}

func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *parser) advance() Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) accept(k TokKind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errf("expected %v, found %v", k, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// memberName parses a field/method name. The channel operation words
// are contextual keywords: `make`, `send`, `recv`, and `close` remain
// legal member names (pre-channel programs declare methods like
// close()), because in member position — after a type or a `.` — no
// channel form can begin.
func (p *parser) memberName() (Token, error) {
	switch p.cur().Kind {
	case TokIdent, TokMake, TokSend, TokRecv, TokClose:
		return p.advance(), nil
	}
	return Token{}, p.errf("expected identifier, found %v", p.cur())
}

func (p *parser) classDecl() (*ClassDecl, error) {
	kw, err := p.expect(TokClass)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	c := &ClassDecl{Pos: kw.Pos, Name: name.Text}
	for !p.at(TokRBrace) && !p.at(TokEOF) {
		if err := p.member(c); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return c, nil
}

// member parses one field or method.
//
//	field:  ["volatile"] type Ident ";"
//	method: ["synchronized"] (type | "void") Ident "(" params ")" block
func (p *parser) member(c *ClassDecl) error {
	pos := p.cur().Pos
	vol := p.accept(TokVolatile)
	sync := false
	if !vol {
		sync = p.accept(TokSynchronized)
	}

	var ret *Type
	if p.accept(TokVoid) {
		ret = VoidType
	} else {
		t, err := p.typeName()
		if err != nil {
			return err
		}
		ret = t
	}
	name, err := p.memberName()
	if err != nil {
		return err
	}

	if p.at(TokLParen) {
		if vol {
			return p.errf("volatile is not a method modifier")
		}
		m := &MethodDecl{Pos: pos, Name: name.Text, Class: c, Synchronized: sync, Ret: ret}
		p.advance() // (
		for !p.at(TokRParen) {
			pt, err := p.typeName()
			if err != nil {
				return err
			}
			pn, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			m.Params = append(m.Params, &Param{Pos: pn.Pos, Name: pn.Text, Type: pt})
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return err
		}
		body, err := p.block()
		if err != nil {
			return err
		}
		m.Body = body
		c.Methods = append(c.Methods, m)
		return nil
	}

	if sync {
		return p.errf("synchronized is not a field modifier")
	}
	if ret.Kind == TypeVoid {
		return p.errf("fields cannot have type void")
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	c.Fields = append(c.Fields, &FieldDeclNode{Pos: pos, Name: name.Text, Type: ret, Volatile: vol})
	return nil
}

// typeName parses a type: basetype with [] suffixes.
func (p *parser) typeName() (*Type, error) {
	var t *Type
	switch p.cur().Kind {
	case TokInt_:
		t = IntType
	case TokDouble_:
		t = DoubleType
	case TokBoolean_:
		t = BoolType
	case TokString_:
		t = StringType
	case TokThread_:
		t = ThreadType
	case TokIdent:
		t = ObjectType(p.cur().Text)
	case TokChan:
		return p.chanType()
	default:
		return nil, p.errf("expected type, found %v", p.cur())
	}
	p.advance()
	for p.at(TokLBracket) && p.peek().Kind == TokRBracket {
		p.advance()
		p.advance()
		t = ArrayType(t)
	}
	return t, nil
}

// chanType parses "chan<elem>" with [] suffixes.
func (p *parser) chanType() (*Type, error) {
	p.advance() // chan
	if _, err := p.expect(TokLt); err != nil {
		return nil, err
	}
	elem, err := p.typeName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokGt); err != nil {
		return nil, err
	}
	t := ChanType(elem)
	for p.at(TokLBracket) && p.peek().Kind == TokRBracket {
		p.advance()
		p.advance()
		t = ArrayType(t)
	}
	return t, nil
}

func (p *parser) block() (*Block, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for !p.at(TokRBrace) && !p.at(TokEOF) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return b, nil
}

// startsVarDecl reports whether the current position begins a local
// variable declaration.
func (p *parser) startsVarDecl() bool {
	switch p.cur().Kind {
	case TokInt_, TokDouble_, TokBoolean_, TokString_, TokThread_, TokChan:
		return true
	case TokIdent:
		// "C x", "C[] x".
		if p.peek().Kind == TokIdent {
			return true
		}
		if p.peek().Kind == TokLBracket && p.peek2().Kind == TokRBracket {
			return true
		}
	}
	return false
}

func (p *parser) stmt() (Stmt, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case TokLBrace:
		return p.block()
	case TokIf:
		return p.ifStmt()
	case TokWhile:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
	case TokFor:
		return p.forStmt()
	case TokReturn:
		p.advance()
		var val Expr
		if !p.at(TokSemi) {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			val = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: pos, Value: val}, nil
	case TokBreak:
		p.advance()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil
	case TokContinue:
		p.advance()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil
	case TokSynchronized:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		lock, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &SyncStmt{Pos: pos, Lock: lock, Body: body}, nil
	case TokAtomic:
		p.advance()
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &AtomicStmt{Pos: pos, Body: body}, nil
	case TokWait, TokNotify, TokNotifyAll, TokJoin:
		kind := p.advance().Kind
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		switch kind {
		case TokWait:
			return &WaitStmt{Pos: pos, Obj: e}, nil
		case TokNotify:
			return &NotifyStmt{Pos: pos, Obj: e}, nil
		case TokNotifyAll:
			return &NotifyStmt{Pos: pos, Obj: e, All: true}, nil
		default:
			return &JoinStmt{Pos: pos, Thread: e}, nil
		}
	case TokSend:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		ch, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &SendStmt{Pos: pos, Chan: ch, Value: v}, nil
	case TokClose:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		ch, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &CloseStmt{Pos: pos, Chan: ch}, nil
	case TokSelect:
		return p.selectStmt()
	case TokTry:
		p.advance()
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokCatch); err != nil {
			return nil, err
		}
		handler, err := p.block()
		if err != nil {
			return nil, err
		}
		return &TryStmt{Pos: pos, Body: body, Catch: handler}, nil
	case TokPrint:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var args []Expr
		for !p.at(TokRParen) {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &PrintStmt{Pos: pos, Args: args}, nil
	}

	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	pos := p.advance().Pos // if
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.accept(TokElse) {
		if p.at(TokIf) {
			elif, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = &Block{Pos: elif.StmtPos(), Stmts: []Stmt{elif}}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) forStmt() (Stmt, error) {
	pos := p.advance().Pos // for
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: pos}
	if !p.at(TokSemi) {
		init, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokSemi) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// selectStmt parses
//
//	select {
//	  case send(c, e) { ... }
//	  case recv(c) { ... }
//	  case T x = recv(c) { ... }
//	  default { ... }
//	}
//
// with at least one arm or default, and at most one default.
func (p *parser) selectStmt() (Stmt, error) {
	pos := p.advance().Pos // select
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	st := &SelectStmt{Pos: pos}
	for !p.at(TokRBrace) && !p.at(TokEOF) {
		switch {
		case p.accept(TokCase):
			arm, err := p.selectArm()
			if err != nil {
				return nil, err
			}
			st.Arms = append(st.Arms, arm)
		case p.at(TokDefault):
			dpos := p.advance().Pos
			if st.Default != nil {
				return nil, &ParseError{Pos: dpos, Msg: "select has more than one default"}
			}
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			st.Default = body
		default:
			return nil, p.errf("expected case or default in select, found %v", p.cur())
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if len(st.Arms) == 0 && st.Default == nil {
		return nil, &ParseError{Pos: pos, Msg: "empty select"}
	}
	return st, nil
}

// selectArm parses one case clause (after the case keyword).
func (p *parser) selectArm() (*SelectArm, error) {
	arm := &SelectArm{Pos: p.cur().Pos}
	parseChanArg := func() error {
		if _, err := p.expect(TokLParen); err != nil {
			return err
		}
		ch, err := p.expr()
		if err != nil {
			return err
		}
		arm.Chan = ch
		return nil
	}
	switch {
	case p.accept(TokSend):
		arm.Send = true
		if err := parseChanArg(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		arm.Value = v
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	case p.accept(TokRecv):
		if err := parseChanArg(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	default:
		// "T name = recv(c)": a typed binding for the received value.
		bt, err := p.typeName()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRecv); err != nil {
			return nil, err
		}
		if err := parseChanArg(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		arm.Bind, arm.BindType = name.Text, bt
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	arm.Body = body
	return arm, nil
}

// simpleStmt parses a declaration, assignment, or expression statement
// (without the trailing semicolon).
func (p *parser) simpleStmt() (Stmt, error) {
	pos := p.cur().Pos
	if p.startsVarDecl() {
		t, err := p.typeName()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		st := &VarDeclStmt{Pos: pos, Name: name.Text, Type: t}
		if p.accept(TokAssign) {
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Init = init
		}
		return st, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(TokAssign) {
		switch e.(type) {
		case *IdentExpr, *FieldExpr, *IndexExpr:
		default:
			return nil, &ParseError{Pos: e.ExprPos(), Msg: "invalid assignment target"}
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos, Target: e, Value: v}, nil
	}
	return &ExprStmt{Pos: pos, E: e}, nil
}

// Expression grammar, precedence climbing.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOr) {
		pos := p.advance().Pos
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: TokOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.eqExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokAnd) {
		pos := p.advance().Pos
		r, err := p.eqExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: pos, Op: TokAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) eqExpr() (Expr, error) {
	l, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokEq) || p.at(TokNe) {
		op := p.advance()
		r, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) relExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokLt) || p.at(TokLe) || p.at(TokGt) || p.at(TokGe) {
		op := p.advance()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) || p.at(TokMinus) {
		op := p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokStar) || p.at(TokSlash) || p.at(TokPercent) {
		op := p.advance()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.at(TokNot) || p.at(TokMinus) {
		op := p.advance()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: op.Pos, Op: op.Kind, E: e}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokDot):
			p.advance()
			name, err := p.memberName()
			if err != nil {
				return nil, err
			}
			if p.at(TokLParen) {
				args, err := p.callArgs()
				if err != nil {
					return nil, err
				}
				e = &CallExpr{Pos: name.Pos, Recv: e, Name: name.Text, Args: args}
			} else {
				e = &FieldExpr{Pos: name.Pos, Recv: e, Name: name.Text}
			}
		case p.at(TokLBracket):
			pos := p.advance().Pos
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &IndexExpr{Pos: pos, Arr: e, Index: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) callArgs() ([]Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.at(TokRParen) {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, &ParseError{Pos: t.Pos, Msg: "invalid integer literal"}
		}
		return &IntLit{Pos: t.Pos, V: v}, nil
	case TokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, &ParseError{Pos: t.Pos, Msg: "invalid float literal"}
		}
		return &FloatLit{Pos: t.Pos, V: v}, nil
	case TokString:
		p.advance()
		return &StringLit{Pos: t.Pos, V: t.Text}, nil
	case TokTrue, TokFalse:
		p.advance()
		return &BoolLit{Pos: t.Pos, V: t.Kind == TokTrue}, nil
	case TokNull:
		p.advance()
		return &NullLit{Pos: t.Pos}, nil
	case TokThis:
		p.advance()
		return &ThisExpr{Pos: t.Pos}, nil
	case TokLParen:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokNew:
		return p.newExpr()
	case TokMake:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if !p.at(TokChan) {
			return nil, p.errf("make requires a channel type")
		}
		typ, err := p.chanType()
		if err != nil {
			return nil, err
		}
		if typ.Kind != TypeChan {
			return nil, &ParseError{Pos: t.Pos, Msg: "make requires a channel type"}
		}
		e := &MakeChanExpr{Pos: t.Pos, Elem: typ.Elem}
		if p.accept(TokComma) {
			capE, err := p.expr()
			if err != nil {
				return nil, err
			}
			e.Cap = capE
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokRecv:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		ch, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &RecvExpr{Pos: t.Pos, Chan: ch}, nil
	case TokSpawn:
		p.advance()
		e, err := p.postfixExpr()
		if err != nil {
			return nil, err
		}
		call, ok := e.(*CallExpr)
		if !ok {
			return nil, &ParseError{Pos: t.Pos, Msg: "spawn requires a method call"}
		}
		return &SpawnExpr{Pos: t.Pos, Call: call}, nil
	case TokIdent:
		p.advance()
		if p.at(TokLParen) {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Pos: t.Pos, Name: t.Text, Args: args}, nil
		}
		return &IdentExpr{Pos: t.Pos, Name: t.Text}, nil
	}
	return nil, p.errf("unexpected token %v in expression", t)
}

// newExpr parses "new C()" or "new T[len]{[len]}".
func (p *parser) newExpr() (Expr, error) {
	pos := p.advance().Pos // new
	var base *Type
	switch p.cur().Kind {
	case TokInt_:
		base = IntType
	case TokDouble_:
		base = DoubleType
	case TokBoolean_:
		base = BoolType
	case TokString_:
		base = StringType
	case TokThread_:
		base = ThreadType
	case TokIdent:
		base = ObjectType(p.cur().Text)
	default:
		return nil, p.errf("expected class or element type after new")
	}
	name := p.cur().Text
	p.advance()

	if p.at(TokLParen) {
		if base.Kind != TypeObject {
			return nil, p.errf("cannot construct %v with new()", base)
		}
		p.advance()
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &NewExpr{Pos: pos, Class: name}, nil
	}

	// Array allocation: one or more sized dimensions.
	var lens []Expr
	for p.at(TokLBracket) {
		p.advance()
		ln, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		lens = append(lens, ln)
	}
	if len(lens) == 0 {
		return nil, p.errf("expected () or [length] after new %v", base)
	}
	// new int[a][b] desugars to nested NewArrayExpr handled by the
	// interpreter via the Dims list.
	elem := base
	for i := 1; i < len(lens); i++ {
		elem = ArrayType(elem)
	}
	e := &NewArrayExpr{Pos: pos, Elem: elem, Len: lens[0]}
	e.extraDims = lens[1:]
	return e, nil
}
