package mj

import (
	"strings"
	"testing"
)

// FuzzParse: the front end must never panic on arbitrary input — it
// either produces a program or an error — and anything that parses must
// survive checking, printing, and reparsing without panics.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"class Main { void main() { } }",
		"class D { int v; volatile boolean b; }",
		`class Main { void main() { int x = 1 + 2 * 3; print(x); } }`,
		`class Main { void main() { atomic { } } }`,
		`class Main { void main() { try { } catch { } } }`,
		`class W { void run() {} } class Main { W w; void main() { thread t = spawn w.run(); join(t); } }`,
		`class Main { void main() { int[][] m = new int[2][3]; m[0][1] = m.length; } }`,
		`class Main { void main() { synchronized (this) { wait(this); notifyall(this); } } }`,
		"class { broken",
		"//@ race_free D.v trusted\nclass D { int v; }",
		"class Main { void main() { string s = \"a\\n\\\"b\\\"\"; print(s, s.length); } }",
		`class Main { void main() { chan<int> c = make(chan<int>, 2); send(c, 1); int x = recv(c); close(c); } }`,
		`class Main { chan<chan<boolean>> meta; void main() { select { case send(meta, make(chan<boolean>)) { } case chan<boolean> b = recv(meta) { close(b); } default { } } } }`,
		`class Main { void main() { chan<int>[] ring = new chan<int>[3]; select { case recv(ring[0]) { } } } }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if err := Check(prog); err != nil {
			return
		}
		printed := Format(prog)
		re, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed output does not reparse: %v\n%s", err, printed)
		}
		if err := Check(re); err != nil {
			t.Fatalf("printed output does not recheck: %v\n%s", err, printed)
		}
		if again := Format(re); again != printed {
			t.Fatalf("printer not a fixpoint:\n%s\nvs\n%s", printed, again)
		}
	})
}

// FuzzLex: the lexer never panics and pragma extraction stays in
// bounds.
func FuzzLex(f *testing.F) {
	for _, s := range []string{
		"class", "//@ pragma text", "/* block */ x", "\"str\"", "1.25 && ||",
		"//@\n//@ x\nclass C { }", "\x00\xff", strings.Repeat("(", 1000),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, _, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatal("token stream must end in EOF")
		}
	})
}
