package mj

import (
	"strings"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/jrt"
)

// fixpoint asserts Format(Parse(src)) reaches a fixpoint after one
// round trip: printing the reparsed output reproduces itself exactly.
func fixpoint(t *testing.T, src string) string {
	t.Helper()
	p1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	out1 := Format(p1)
	p2, err := Parse(out1)
	if err != nil {
		t.Fatalf("reparse printed output: %v\n%s", err, out1)
	}
	out2 := Format(p2)
	if out1 != out2 {
		t.Fatalf("printer not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
	return out1
}

func TestPrinterFixpointBasics(t *testing.T) {
	fixpoint(t, `
class Point {
	int x;
	volatile boolean ready;
	double[] coords;
	synchronized void move(int dx) { x = x + dx; }
	int getX() { return x; }
}
`)
}

func TestPrinterFixpointStatements(t *testing.T) {
	fixpoint(t, `
class Main {
	int n;
	void main() {
		int i = 0;
		while (i < 10) { i = i + 1; if (i == 5) { break; } else { continue; } }
		for (int j = 0; j < 3; j = j + 1) { n = n + j; }
		for (; ; ) { break; }
		synchronized (this) { n = 0; }
		atomic { n = 1; }
		try { n = 2; } catch { n = 3; }
		print("done", n, 1.5, true, null);
		{ int k = 9; n = k; }
		return;
	}
}
`)
}

func TestPrinterFixpointExpressions(t *testing.T) {
	fixpoint(t, `
class Worker { void run(int id) { } int f(int x) { return -x; } }
class Main {
	Worker w;
	int[] a;
	void main() {
		boolean b = 1 + 2 * 3 == 7 && !(false || true);
		int[][] m = new int[3][4];
		m[1][2] = w.f(m[0][0]) % 5;
		a = new int[10];
		int n = a.length + "xy".length;
		thread t = spawn w.run(a[0] - 1);
		join(t);
		wait(w);
		notify(w);
		notifyall(w);
		double d = 0.5 / 2.0;
		string s = "a\nb\t\"c\"\\";
	}
}
`)
}

// TestPrinterFixpointWorkloads round-trips every real workload source:
// the strongest corpus we have.
func TestPrinterFixpointWorkloads(t *testing.T) {
	// Reuse the spec-engine scenario sources indirectly via the bench
	// package would create an import cycle; instead use representative
	// snippets plus the embedded test programs above, and the biggest MJ
	// grammar surface: a transaction-heavy program.
	fixpoint(t, `
class Multiset {
	int[] vals;
	boolean[] used;
}
class Client {
	Multiset set;
	int size;
	void insert(int[] a) {
		int n = 0;
		boolean ok = true;
		for (int i = 0; i < a.length; i = i + 1) {
			int slot = -1;
			atomic {
				for (int s = 0; s < size; s = s + 1) {
					if (slot < 0 && !set.used[s]) {
						set.used[s] = true;
						set.vals[s] = a[i];
						slot = s;
					}
				}
			}
			if (slot < 0) { ok = false; } else { n = n + 1; }
		}
	}
}
class Main { void main() { } }
`)
}

// TestPrinterPreservesSemantics: the printed program runs identically.
func TestPrinterPreservesSemantics(t *testing.T) {
	src := `
class Main {
	int acc;
	void main() {
		for (int i = 1; i <= 5; i = i + 1) { acc = acc + i * i; }
		print(acc, acc % 7, acc / 2);
	}
}
`
	prog := MustParse(src)
	printed := Format(prog)
	r1, out1, err := RunSource(src, jrt.Config{Detector: core.New(), Mode: jrt.Deterministic, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, out2, err := RunSource(printed, jrt.Config{Detector: core.New(), Mode: jrt.Deterministic, Seed: 1})
	if err != nil {
		t.Fatalf("printed program failed: %v\n%s", err, printed)
	}
	if out1 != out2 || len(r1) != len(r2) {
		t.Errorf("semantics changed: %q vs %q", out1, out2)
	}
}

func TestPrinterPragmas(t *testing.T) {
	out := fixpoint(t, `
//@ race_free D.v trusted
class D { int v; }
class Main { void main() { } }
`)
	if !strings.Contains(out, "//@ race_free D.v trusted") {
		t.Errorf("pragma lost:\n%s", out)
	}
}
