package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"goldilocks/internal/core"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/server"
)

// The ingest benchmark answers the question the stage histograms were
// built for: where does an event's end-to-end latency go between a
// client and a verdict? It runs the same synthetic workload four ways —
// "local" applies actions directly to an engine (epoch fast path on),
// "local_lockset" does the same with the fast path off (the pure
// Goldilocks apply point), "remote" streams through an in-process
// goldilocksd over loopback TCP on the binary wire format, and
// "remote_json" forces the line-JSON protocol — with a tracer on every
// side, and reports events/sec plus per-stage p50/p99 from the tracer's
// histograms. local vs local_lockset is the epoch fast path's win at
// the apply point; remote vs remote_json is the binary framing's win on
// the wire.

// IngestConfig sizes the ingest benchmark.
type IngestConfig struct {
	// Sessions is how many concurrent client sessions stream. Default 4.
	Sessions int
	// Events is how many actions each session streams. Default 20000.
	Events int
	// SampleEvery is the tracer sampling interval (rounded up to a power
	// of two). Default 8 — dense enough for stable p99s on a short run.
	SampleEvery int
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Events <= 0 {
		c.Events = 20000
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 8
	}
	return c
}

// IngestStage is one stage's latency summary in the report.
type IngestStage struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	MeanUS float64 `json:"mean_us"`
}

// IngestSide is one quadrant of the comparison.
type IngestSide struct {
	Events       int           `json:"events"`
	ElapsedMS    float64       `json:"elapsed_ms"`
	EventsPerSec float64       `json:"events_per_sec"`
	Stages       []IngestStage `json:"stages"`
}

// IngestReport is the machine-readable output behind BENCH_ingest.json.
type IngestReport struct {
	NumCPU           int        `json:"num_cpu"`
	GoVersion        string     `json:"go_version"`
	GitCommit        string     `json:"git_commit"`
	Sessions         int        `json:"sessions"`
	EventsPerSession int        `json:"events_per_session"`
	SampleEvery      int        `json:"sample_every"`
	Local            IngestSide `json:"local"`
	LocalLockset     IngestSide `json:"local_lockset"`
	Remote           IngestSide `json:"remote"`
	RemoteJSON       IngestSide `json:"remote_json"`
}

// ingestAction returns the i-th action of session worker w's workload:
// a lock-protected read-modify-write loop over a per-session variable,
// the service's steady-state shape (rules fire on acquire/release, no
// races, nonempty lockset transfers). The per-session variable stays
// thread-owned throughout, so the data accesses are exactly the traffic
// the epoch fast path exists for.
func ingestAction(w, i int) event.Action {
	t := event.Tid(w*2 + 1)
	lock := event.Addr(10 + w)
	obj := event.Addr(1000 + w)
	switch i % 4 {
	case 0:
		return event.Acquire(t, lock)
	case 1:
		return event.Write(t, obj, 0)
	case 2:
		return event.Read(t, obj, 0)
	default:
		return event.Release(t, lock)
	}
}

// stageSummaries extracts the nonempty stages of a tracer.
func stageSummaries(tr *obs.Tracer) []IngestStage {
	var out []IngestStage
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		h := tr.StageHist(st)
		if h == nil || h.Count() == 0 {
			continue
		}
		out = append(out, IngestStage{
			Stage: st.String(), Count: h.Count(),
			P50US: h.Quantile(0.50), P99US: h.Quantile(0.99), MeanUS: h.Mean(),
		})
	}
	return out
}

// ingestLocal runs the direct-apply side with the given fast-path
// setting: one engine per session, direct Step calls, the apply stage
// timed through the same tracer the daemon would use.
func ingestLocal(cfg IngestConfig, fastPath bool) IngestSide {
	total := cfg.Sessions * cfg.Events
	tracer := obs.NewTracer(cfg.SampleEvery)
	start := time.Now()
	for w := 0; w < cfg.Sessions; w++ {
		opts := core.DefaultOptions()
		opts.FastPath = fastPath
		eng := core.NewEngine(opts)
		for i := 0; i < cfg.Events; i++ {
			a := ingestAction(w, i)
			if tracer.Sample() {
				t0 := time.Now()
				eng.Step(a)
				tracer.Observe(obs.StageApply, time.Since(t0))
			} else {
				eng.Step(a)
			}
		}
	}
	elapsed := time.Since(start)
	return IngestSide{
		Events:       total,
		ElapsedMS:    float64(elapsed) / float64(time.Millisecond),
		EventsPerSec: float64(total) / elapsed.Seconds(),
		Stages:       stageSummaries(tracer),
	}
}

// ingestRemote runs the loopback-daemon side on the chosen wire format:
// an in-process goldilocksd, one traced fleet of clients streaming the
// same workload.
func ingestRemote(cfg IngestConfig, forceJSON bool) (IngestSide, error) {
	total := cfg.Sessions * cfg.Events
	serverTracer := obs.NewTracer(cfg.SampleEvery)
	clientTracer := obs.NewTracer(cfg.SampleEvery)
	srv, err := server.New("127.0.0.1:0", server.Config{
		Registry: obs.NewRegistry(),
		Tracer:   serverTracer,
	})
	if err != nil {
		return IngestSide{}, err
	}
	defer srv.Close()

	ctx := context.Background()
	start := time.Now()
	errs := make(chan error, cfg.Sessions)
	for w := 0; w < cfg.Sessions; w++ {
		go func(w int) {
			c, err := server.DialContext(ctx, srv.Addr(), fmt.Sprintf("ingest-%d", w),
				server.DialConfig{Tracer: clientTracer, ForceJSON: forceJSON})
			if err != nil {
				errs <- err
				return
			}
			if c.Binary() == forceJSON {
				c.Abandon()
				errs <- fmt.Errorf("session %d: negotiated binary=%v with forceJSON=%v", w, c.Binary(), forceJSON)
				return
			}
			for i := 0; i < cfg.Events; i++ {
				if err := c.Send(ingestAction(w, i)); err != nil {
					c.Abandon()
					errs <- err
					return
				}
			}
			_, err = c.Close()
			errs <- err
		}(w)
	}
	var firstErr error
	for w := 0; w < cfg.Sessions; w++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return IngestSide{}, firstErr
	}
	elapsed := time.Since(start)

	// The client and server tracers cover disjoint stages, so their
	// union is the remote pipeline.
	return IngestSide{
		Events:       total,
		ElapsedMS:    float64(elapsed) / float64(time.Millisecond),
		EventsPerSec: float64(total) / elapsed.Seconds(),
		Stages:       append(stageSummaries(clientTracer), stageSummaries(serverTracer)...),
	}, nil
}

// Ingest runs the four-way ingest comparison and returns the report.
// progress receives one line per phase.
func Ingest(cfg IngestConfig, progress func(string)) (IngestReport, error) {
	cfg = cfg.withDefaults()
	rep := IngestReport{
		NumCPU: runtime.NumCPU(), GoVersion: runtime.Version(), GitCommit: gitCommit(),
		Sessions: cfg.Sessions, EventsPerSession: cfg.Events, SampleEvery: cfg.SampleEvery,
	}
	report := func(name string, sd IngestSide) {
		progress(fmt.Sprintf("ingest: %-13s %d events in %.0fms (%.0f events/sec)",
			name, sd.Events, sd.ElapsedMS, sd.EventsPerSec))
	}

	rep.Local = ingestLocal(cfg, true)
	report("local", rep.Local)
	rep.LocalLockset = ingestLocal(cfg, false)
	report("local-lockset", rep.LocalLockset)

	var err error
	if rep.Remote, err = ingestRemote(cfg, false); err != nil {
		return rep, err
	}
	report("remote-bin", rep.Remote)
	if rep.RemoteJSON, err = ingestRemote(cfg, true); err != nil {
		return rep, err
	}
	report("remote-json", rep.RemoteJSON)
	return rep, nil
}

// FormatIngest renders the report as the text table racebench prints
// alongside the JSON artifact.
func FormatIngest(rep IngestReport) string {
	s := fmt.Sprintf("Ingest pipeline (NumCPU=%d, %s, %d sessions x %d events, sample 1/%d)\n",
		rep.NumCPU, rep.GoVersion, rep.Sessions, rep.EventsPerSession, rep.SampleEvery)
	side := func(name string, sd IngestSide) string {
		out := fmt.Sprintf("%-14s %.0f events/sec\n", name, sd.EventsPerSec)
		out += fmt.Sprintf("  %-18s %8s %10s %10s %10s\n", "stage", "count", "p50(us)", "p99(us)", "mean(us)")
		for _, st := range sd.Stages {
			out += fmt.Sprintf("  %-18s %8d %10.1f %10.1f %10.1f\n", st.Stage, st.Count, st.P50US, st.P99US, st.MeanUS)
		}
		return out
	}
	s += side("local (epoch)", rep.Local) + side("local-lockset", rep.LocalLockset)
	s += side("remote (bin)", rep.Remote) + side("remote-json", rep.RemoteJSON)
	if rep.RemoteJSON.EventsPerSec > 0 {
		s += fmt.Sprintf("wire speedup (bin/json): %.2fx; apply speedup (epoch/lockset): %.2fx\n",
			rep.Remote.EventsPerSec/rep.RemoteJSON.EventsPerSec,
			rep.Local.EventsPerSec/rep.LocalLockset.EventsPerSec)
	}
	return s
}

// MarshalIngest serializes the report for BENCH_ingest.json.
func MarshalIngest(rep IngestReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
