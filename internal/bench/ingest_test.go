package bench

import (
	"encoding/json"
	"testing"
)

// A scaled-down end-to-end run: both sides complete, throughput and
// stage summaries are populated, and the report survives the JSON
// round trip the artifact depends on.
func TestIngestSmall(t *testing.T) {
	rep, err := Ingest(IngestConfig{Sessions: 2, Events: 400, SampleEvery: 2}, func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 2 || rep.EventsPerSession != 400 || rep.SampleEvery != 2 {
		t.Fatalf("config echo = %+v", rep)
	}
	for name, side := range map[string]IngestSide{
		"local": rep.Local, "local_lockset": rep.LocalLockset,
		"remote": rep.Remote, "remote_json": rep.RemoteJSON,
	} {
		if side.Events != 800 {
			t.Fatalf("%s events = %d, want 800", name, side.Events)
		}
		if side.EventsPerSec <= 0 || side.ElapsedMS <= 0 {
			t.Fatalf("%s throughput not measured: %+v", name, side)
		}
		if len(side.Stages) == 0 {
			t.Fatalf("%s has no stage summaries", name)
		}
		for _, st := range side.Stages {
			if st.Count == 0 {
				t.Fatalf("%s stage %s reported with zero count", name, st.Stage)
			}
			if st.P99US < st.P50US {
				t.Fatalf("%s stage %s: p99 %g < p50 %g", name, st.Stage, st.P99US, st.P50US)
			}
		}
	}
	// The remote side must cover both halves of the pipeline: a
	// client-observed stage and a server-observed one.
	stages := map[string]bool{}
	for _, st := range rep.Remote.Stages {
		stages[st.Stage] = true
	}
	if !stages["client_encode"] || !stages["apply"] {
		t.Fatalf("remote stages = %v, want client_encode and apply", stages)
	}

	data, err := MarshalIngest(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back IngestReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Remote.Events != rep.Remote.Events || len(back.Remote.Stages) != len(rep.Remote.Stages) {
		t.Fatal("report did not survive the JSON round trip")
	}
	if FormatIngest(rep) == "" {
		t.Fatal("empty text rendering")
	}
}
