package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table1Row is one row of Table 1: per-workload runtimes and slowdowns
// for the four configurations, plus short-circuit success rates.
type Table1Row struct {
	Name    string
	Lines   int
	Threads int

	Uninstrumented time.Duration
	NoStatic       time.Duration
	Chord          time.Duration
	Rcc            time.Duration

	NoStaticSlowdown float64
	ChordSlowdown    float64
	RccSlowdown      float64

	ChordSC float64 // short-circuit success rate with Chord outputs
	RccSC   float64
}

// Table1 measures every workload in all four configurations.
// fullScale selects the benchmark parameters; progress, if non-nil,
// receives a line per measurement.
func Table1(fullScale bool, progress func(string)) ([]Table1Row, error) {
	return Table1Reps(fullScale, 1, progress)
}

// Table1Reps measures each configuration reps times and records the
// fastest run (the standard way to suppress scheduler noise on a loaded
// machine).
func Table1Reps(fullScale bool, reps int, progress func(string)) ([]Table1Row, error) {
	if reps < 1 {
		reps = 1
	}
	var rows []Table1Row
	for _, w := range Table1Workloads() {
		row := Table1Row{Name: w.Name, Lines: w.Lines, Threads: w.Threads}
		for _, mode := range []Mode{Uninstrumented, NoStatic, WithChord, WithRcc} {
			var m Metrics
			for r := 0; r < reps; r++ {
				mr, err := Run(w, RunOptions{Mode: mode, FullScale: fullScale})
				if err != nil {
					return nil, err
				}
				if r == 0 || mr.Elapsed < m.Elapsed {
					m = mr
				}
			}
			if progress != nil {
				progress(fmt.Sprintf("%-12s %-14s %10v  (checked %d/%d accesses)",
					w.Name, mode, m.Elapsed.Round(time.Millisecond),
					m.Runtime.CheckedAccesses, m.Runtime.TotalAccesses))
			}
			switch mode {
			case Uninstrumented:
				row.Uninstrumented = m.Elapsed
			case NoStatic:
				row.NoStatic = m.Elapsed
			case WithChord:
				row.Chord = m.Elapsed
				row.ChordSC = m.Engine.ShortCircuitRate()
			case WithRcc:
				row.Rcc = m.Elapsed
				row.RccSC = m.Engine.ShortCircuitRate()
			}
		}
		base := row.Uninstrumented.Seconds()
		if base > 0 {
			row.NoStaticSlowdown = row.NoStatic.Seconds() / base
			row.ChordSlowdown = row.Chord.Seconds() / base
			row.RccSlowdown = row.Rcc.Seconds() / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders rows like the paper's Table 1.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1. Race-aware runtime on the benchmark suite\n")
	fmt.Fprintf(&sb, "%-12s %6s %8s | %10s | %10s %5s | %10s %5s | %10s %5s | %7s %7s\n",
		"Benchmark", "#Lines", "#Threads", "Uninstr", "NoStatic", "slow", "Chord", "slow", "RccJava", "slow", "SC-Ch%", "SC-Rcc%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %6d %8d | %10s | %10s %4.1fx | %10s %4.1fx | %10s %4.1fx | %6.1f%% %6.1f%%\n",
			r.Name, r.Lines, r.Threads,
			fmtDur(r.Uninstrumented),
			fmtDur(r.NoStatic), r.NoStaticSlowdown,
			fmtDur(r.Chord), r.ChordSlowdown,
			fmtDur(r.Rcc), r.RccSlowdown,
			100*r.ChordSC, 100*r.RccSC)
	}
	return sb.String()
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// Table2Row is one row of Table 2: variables and accesses checked (%)
// under each static analysis.
type Table2Row struct {
	Name          string
	ChordVars     float64
	RccVars       float64
	ChordAccesses float64
	RccAccesses   float64
}

// Table2 measures check coverage. It runs deterministically (the
// percentages are schedule-insensitive up to thread interleaving noise;
// a fixed seed makes them reproducible).
func Table2(fullScale bool) ([]Table2Row, error) {
	var rows []Table2Row
	for _, w := range Table1Workloads() {
		row := Table2Row{Name: w.Name}
		for _, mode := range []Mode{WithChord, WithRcc} {
			m, err := Run(w, RunOptions{Mode: mode, FullScale: fullScale, Deterministic: true, Seed: 1})
			if err != nil {
				return nil, err
			}
			vars := 0.0
			if m.Runtime.VarsCreated > 0 {
				vars = float64(m.Engine.VarsTracked) / float64(m.Runtime.VarsCreated)
			}
			accs := 0.0
			if m.Runtime.TotalAccesses > 0 {
				accs = float64(m.Runtime.CheckedAccesses) / float64(m.Runtime.TotalAccesses)
			}
			if mode == WithChord {
				row.ChordVars, row.ChordAccesses = vars, accs
			} else {
				row.RccVars, row.RccAccesses = vars, accs
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2. Statistics on experiments with static analyses\n")
	fmt.Fprintf(&sb, "%-12s | %22s | %22s\n", "", "Variables checked (%)", "Accesses checked (%)")
	fmt.Fprintf(&sb, "%-12s | %10s %10s | %10s %10s\n", "Benchmark", "Chord", "RccJava", "Chord", "RccJava")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s | %9.1f%% %9.1f%% | %9.1f%% %9.1f%%\n",
			r.Name, 100*r.ChordVars, 100*r.RccVars, 100*r.ChordAccesses, 100*r.RccAccesses)
	}
	return sb.String()
}

// Table3Row is one row of Table 3: the transactional Multiset.
type Table3Row struct {
	Threads        int
	Uninstrumented time.Duration
	Goldilocks     time.Duration
	Slowdown       float64
	Accesses       uint64 // shared variable accesses
	Transactions   uint64
}

// Table3 measures the transactional Multiset for each thread count. ops
// is the per-thread operation count.
func Table3(threadCounts []int, ops int, progress func(string)) ([]Table3Row, error) {
	var rows []Table3Row
	for _, n := range threadCounts {
		w := MultisetWorkload(n, ops)
		base, err := Run(w, RunOptions{Mode: Uninstrumented, FullScale: true})
		if err != nil {
			return nil, err
		}
		inst, err := Run(w, RunOptions{Mode: NoStatic, FullScale: true})
		if err != nil {
			return nil, err
		}
		row := Table3Row{
			Threads:        n,
			Uninstrumented: base.Elapsed,
			Goldilocks:     inst.Elapsed,
			Accesses:       inst.Runtime.TotalAccesses,
			Transactions:   inst.Commits,
		}
		if base.Elapsed > 0 {
			row.Slowdown = inst.Elapsed.Seconds() / base.Elapsed.Seconds()
		}
		if progress != nil {
			progress(fmt.Sprintf("multiset threads=%-4d uninstr=%v goldilocks=%v slowdown=%.2fx",
				n, base.Elapsed.Round(time.Millisecond), inst.Elapsed.Round(time.Millisecond), row.Slowdown))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable3 renders rows like the paper's Table 3.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3. Performance of checking races for transactional Multiset\n")
	fmt.Fprintf(&sb, "%8s | %12s | %12s %8s | %12s %14s\n",
		"#Threads", "Uninstr", "Goldilocks", "slow", "#Accesses", "#Transactions")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8d | %12s | %12s %7.2fx | %12d %14d\n",
			r.Threads, fmtDur(r.Uninstrumented), fmtDur(r.Goldilocks), r.Slowdown,
			r.Accesses, r.Transactions)
	}
	return sb.String()
}
