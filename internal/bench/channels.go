package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
)

// channelLadderSrc is the channel-style rung of the contention ladder:
// a capacity-1 token channel serializes the critical section, so the
// workers mutually exclude through the channel conveyor alone. The
// weight parameter scales the critical-section body (distinct cells
// touched under the token).
const channelLadderSrc = `
class Cell { int v; }
class Main {
	Cell[] cells;
	chan<int> tok;
	void worker(int iters) {
		for (int i = 0; i < iters; i = i + 1) {
			int t = recv(tok);
			for (int k = 0; k < @WEIGHT@; k = k + 1) { cells[k].v = cells[k].v + 1; }
			send(tok, t);
		}
	}
	void main() {
		cells = new Cell[@WEIGHT@];
		for (int k = 0; k < @WEIGHT@; k = k + 1) { cells[k] = new Cell(); }
		tok = make(chan<int>, 1);
		thread[] ts = new thread[@WORKERS@];
		for (int w = 0; w < @WORKERS@; w = w + 1) { ts[w] = spawn this.worker(@ITERS@); }
		send(tok, 1);
		for (int w = 0; w < @WORKERS@; w = w + 1) { join(ts[w]); }
		print("sum", cells[0].v);
	}
}
`

// monitorLadderSrc is the monitor-style rung: the same critical section
// guarded by synchronized(this) instead of the token channel.
const monitorLadderSrc = `
class Cell { int v; }
class Main {
	Cell[] cells;
	void worker(int iters) {
		for (int i = 0; i < iters; i = i + 1) {
			synchronized (this) {
				for (int k = 0; k < @WEIGHT@; k = k + 1) { cells[k].v = cells[k].v + 1; }
			}
		}
	}
	void main() {
		cells = new Cell[@WEIGHT@];
		for (int k = 0; k < @WEIGHT@; k = k + 1) { cells[k] = new Cell(); }
		thread[] ts = new thread[@WORKERS@];
		for (int w = 0; w < @WORKERS@; w = w + 1) { ts[w] = spawn this.worker(@ITERS@); }
		for (int w = 0; w < @WORKERS@; w = w + 1) { join(ts[w]); }
		print("sum", cells[0].v);
	}
}
`

// channelStyles pairs each sync style with its source template. Both
// programs are race-free by construction; a nonzero report from an
// approximate backend is a false alarm, recorded but not an error.
var channelStyles = []struct {
	name string
	src  string
}{
	{"channels", channelLadderSrc},
	{"monitors", monitorLadderSrc},
}

// channelBackends is the per-backend overhead matrix: "none" runs the
// interpreter with no detector attached and is the overhead baseline
// every other backend is normalized against.
var channelBackends = func() []struct {
	name string
	mk   func() jrt.Detector
} {
	backends := []struct {
		name string
		mk   func() jrt.Detector
	}{
		{"none", func() jrt.Detector { return nil }},
	}
	return append(backends, detectorUnderTest...)
}()

// ChannelPoint is one cell of the sweep: a (style, workers, weight,
// backend) combination with its race count, wall time, critical-section
// throughput, and overhead relative to the detector-free baseline of
// the same rung.
type ChannelPoint struct {
	Style     string  `json:"style"`
	Workers   int     `json:"workers"`
	Weight    int     `json:"weight"`
	Backend   string  `json:"backend"`
	Races     int     `json:"races"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// SectionsPerSec is critical sections retired per second
	// (workers x iters / elapsed).
	SectionsPerSec float64 `json:"sections_per_sec"`
	// Overhead is ElapsedMS divided by the "none" backend's ElapsedMS on
	// the same rung (1.0 for the baseline itself).
	Overhead float64 `json:"overhead_vs_none"`
}

// ChannelSweepConfig shapes the contention ladder.
type ChannelSweepConfig struct {
	Workers []int // worker tiers, e.g. 2, 4, 8
	Weights []int // critical-section weights (cells touched per section)
	Iters   int   // critical sections per worker
	Seed    int64 // deterministic-scheduler seed
}

// DefaultChannelSweep is the configuration the BENCH_channels.json
// artifact is generated with.
func DefaultChannelSweep() ChannelSweepConfig {
	return ChannelSweepConfig{Workers: []int{2, 4, 8}, Weights: []int{1, 8}, Iters: 150, Seed: 1}
}

// ChannelReport is the machine-readable output of the -channels sweep.
type ChannelReport struct {
	GoVersion string         `json:"go_version"`
	GitCommit string         `json:"git_commit"`
	Iters     int            `json:"iters"`
	Seed      int64          `json:"seed"`
	Points    []ChannelPoint `json:"points"`
}

func instantiateLadder(src string, workers, weight, iters int) string {
	src = strings.ReplaceAll(src, "@WORKERS@", fmt.Sprint(workers))
	src = strings.ReplaceAll(src, "@WEIGHT@", fmt.Sprint(weight))
	src = strings.ReplaceAll(src, "@ITERS@", fmt.Sprint(iters))
	return src
}

// ChannelSweep runs the channels-vs-monitors contention ladder: every
// (style, workers, weight) rung under every backend, deterministic
// schedule, and reports per-backend overhead against the detector-free
// baseline.
func ChannelSweep(cfg ChannelSweepConfig, progress func(string)) (ChannelReport, error) {
	rep := ChannelReport{
		GoVersion: runtime.Version(),
		GitCommit: gitCommit(),
		Iters:     cfg.Iters,
		Seed:      cfg.Seed,
	}
	for _, style := range channelStyles {
		for _, workers := range cfg.Workers {
			for _, weight := range cfg.Weights {
				src := instantiateLadder(style.src, workers, weight, cfg.Iters)
				var baseline float64
				for _, b := range channelBackends {
					races, elapsed, err := runLadder(src, b.mk(), cfg.Seed)
					if err != nil {
						return rep, fmt.Errorf("%s w=%d x%d %s: %w",
							style.name, workers, weight, b.name, err)
					}
					p := ChannelPoint{
						Style:     style.name,
						Workers:   workers,
						Weight:    weight,
						Backend:   b.name,
						Races:     races,
						ElapsedMS: float64(elapsed) / float64(time.Millisecond),
						SectionsPerSec: float64(workers*cfg.Iters) /
							elapsed.Seconds(),
					}
					if b.name == "none" {
						baseline = p.ElapsedMS
					}
					if baseline > 0 {
						p.Overhead = p.ElapsedMS / baseline
					}
					rep.Points = append(rep.Points, p)
					progress(fmt.Sprintf("channels: %s workers=%d weight=%d %s: %d races, %.1fms (%.2fx)",
						p.Style, p.Workers, p.Weight, p.Backend, p.Races, p.ElapsedMS, p.Overhead))
				}
			}
		}
	}
	return rep, nil
}

// runLadder executes one rung under one backend and returns the race
// count and wall time.
func runLadder(src string, det jrt.Detector, seed int64) (int, time.Duration, error) {
	prog, err := mj.Parse(src)
	if err != nil {
		return 0, 0, err
	}
	if err := mj.Check(prog); err != nil {
		return 0, 0, err
	}
	rt := jrt.NewRuntime(jrt.Config{
		Detector: det,
		Policy:   jrt.Log,
		Mode:     jrt.Deterministic,
		Seed:     seed,
	})
	interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	races, err := interp.Run()
	if err != nil {
		return 0, 0, err
	}
	return len(races), time.Since(start), nil
}

// FormatChannels renders the sweep as the aligned table racebench
// prints alongside the JSON artifact.
func FormatChannels(rep ChannelReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Channel/monitor contention ladder (%d sections per worker, %s)\n",
		rep.Iters, rep.GoVersion)
	fmt.Fprintf(&sb, "%-10s %7s %6s %-13s %6s %10s %9s\n",
		"style", "workers", "weight", "backend", "races", "ms", "overhead")
	for _, p := range rep.Points {
		fmt.Fprintf(&sb, "%-10s %7d %6d %-13s %6d %10.1f %8.2fx\n",
			p.Style, p.Workers, p.Weight, p.Backend, p.Races, p.ElapsedMS, p.Overhead)
	}
	return sb.String()
}

// MarshalChannels serializes the report for BENCH_channels.json.
func MarshalChannels(rep ChannelReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
