package bench

import (
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/event"
)

// Apply-point microbenchmarks behind docs/PERFORMANCE.md: the same
// single-threaded workload stepped through an engine with the epoch
// fast path on (the tiered detector's O(1) check) and off (the pure
// lockset apply point, where thread-owned accesses resolve through the
// SC1 short-circuit instead). SC1 is itself an epoch-style owner
// comparison, so the expected result is near-parity here — the fast
// path's contract is "never slower, identical verdicts", with its
// structural win being the bounded per-access work that needs no HB
// cache or lock-snapshot consultation.

func benchApply(b *testing.B, fast bool, op func(e *core.Engine, i int)) {
	opts := core.DefaultOptions()
	opts.FastPath = fast
	eng := core.NewEngine(opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op(eng, i)
	}
}

// lockMix is the ingest workload: acquire/write/read/release rounds.
func lockMix(e *core.Engine, i int) { e.Step(ingestAction(0, i)) }

// plainMix is pure thread-owned data traffic, no synchronization.
func plainMix(e *core.Engine, i int) {
	e.Write(1, 1000, event.FieldID(i&3))
	e.Read(1, 1000, event.FieldID(i&3))
}

func BenchmarkApplyEpochLockMix(b *testing.B)   { benchApply(b, true, lockMix) }
func BenchmarkApplyLocksetLockMix(b *testing.B) { benchApply(b, false, lockMix) }
func BenchmarkApplyEpochPlain(b *testing.B)     { benchApply(b, true, plainMix) }
func BenchmarkApplyLocksetPlain(b *testing.B)   { benchApply(b, false, plainMix) }
