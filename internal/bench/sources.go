// Package bench reproduces the paper's evaluation: the eleven Table 1
// workloads re-implemented in MJ with the same synchronization idioms as
// the originals (Java Grande: lufact, moldyn, montecarlo, raytracer,
// series, sor/sor2; von Praun & Gross suite: colt, hedc, philo, tsp),
// the transactional Multiset of Table 3, and the measurement harness
// that regenerates Tables 1, 2, and 3 and the Figure 6/7 lockset
// traces.
//
// Sources are parameterized with @TOKENS@ so tests run scaled-down
// instances and the benchmark harness runs full ones.
package bench

// Each workload note names the synchronization idiom that drives its
// row in Tables 1 and 2.

// coltSrc: mostly thread-local dense linear algebra; a single shared
// accumulator behind a synchronized method. Static analyses eliminate
// nearly everything (paper: 0.1% variables checked).
const coltSrc = `
class Result {
	double sum;
	synchronized void add(double x) { sum = sum + x; }
	synchronized double get() { return sum; }
}
class Worker {
	Result res;
	void run(int n, int reps) {
		double[] a = new double[n * n];
		double[] b = new double[n * n];
		double[] c = new double[n * n];
		for (int r = 0; r < reps; r = r + 1) {
			for (int i = 0; i < n * n; i = i + 1) {
				a[i] = i + r;
				b[i] = i - r;
			}
			for (int i = 0; i < n; i = i + 1) {
				for (int j = 0; j < n; j = j + 1) {
					double s = 0.0;
					for (int k = 0; k < n; k = k + 1) {
						s = s + a[i * n + k] * b[k * n + j];
					}
					c[i * n + j] = s;
				}
			}
			double t = 0.0;
			for (int i = 0; i < n; i = i + 1) { t = t + c[i * n + i]; }
			res.add(t);
		}
	}
}
class Main {
	void main() {
		Result res = new Result();
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			Worker wk = new Worker();
			wk.res = res;
			ts[w] = spawn wk.run(@SIZE@, @REPS@);
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("colt", res.get());
	}
}
`

// hedcSrc: a crawler-style task pool; workers pull task ids from a
// monitor-guarded queue and process them thread-locally.
const hedcSrc = `
class Queue {
	int next;
	int limit;
	synchronized int take() {
		if (next >= limit) { return -1; }
		int t = next;
		next = next + 1;
		return t;
	}
}
class Stats {
	int done;
	synchronized void tick() { done = done + 1; }
	synchronized int total() { return done; }
}
class Worker {
	Queue q;
	Stats st;
	void run(int work) {
		int t = q.take();
		while (t >= 0) {
			int[] page = new int[work];
			for (int i = 0; i < work; i = i + 1) { page[i] = (t * 31 + i) % 97; }
			int links = 0;
			for (int i = 0; i < work; i = i + 1) {
				if (page[i] % 7 == 0) { links = links + 1; }
			}
			st.tick();
			t = q.take();
		}
	}
}
class Main {
	void main() {
		Queue q = new Queue();
		synchronized (q) { q.next = 0; q.limit = @TASKS@; }
		Stats st = new Stats();
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			Worker wk = new Worker();
			wk.q = q;
			wk.st = st;
			ts[w] = spawn wk.run(@WORK@);
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("hedc", st.total());
	}
}
`

// lufactSrc: LU factorization over thread-local matrices with a shared
// monitor-guarded progress counter; the paper's lufact is dominated by
// eliminable accesses under Chord.
const lufactSrc = `
class Progress {
	int columns;
	synchronized void done() { columns = columns + 1; }
	synchronized int get() { return columns; }
}
class Worker {
	Progress p;
	void run(int n) {
		double[] m = new double[n * n];
		for (int i = 0; i < n * n; i = i + 1) { m[i] = (i % 13) + 1.0; }
		for (int k = 0; k < n; k = k + 1) {
			double pivot = m[k * n + k];
			if (pivot == 0.0) { pivot = 1.0; }
			for (int i = k + 1; i < n; i = i + 1) {
				double f = m[i * n + k] / pivot;
				for (int j = k; j < n; j = j + 1) {
					m[i * n + j] = m[i * n + j] - f * m[k * n + j];
				}
			}
			p.done();
		}
	}
}
class Main {
	void main() {
		Progress p = new Progress();
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			Worker wk = new Worker();
			wk.p = p;
			ts[w] = spawn wk.run(@SIZE@);
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("lufact", p.get());
	}
}
`

// moldynSrc: the barrier workload. Workers update disjoint partitions
// of shared particle arrays between volatile-spin barrier phases. The
// volatile barrier defeats the Chord-style analysis (every particle
// access stays checked and every check crosses barrier traffic in the
// event list), while the RccJava-style run accepts the annotation that
// barrier phasing protects the arrays — reproducing the paper's
// moldyn row. Forces are accumulated pairwise, so every element is read
// and written by several threads across phases.
const moldynSrc = `
//@ race_free array:double trusted
//@ race_free Sim.pos trusted
//@ race_free Sim.force trusted
//@ race_free Sim.n trusted
//@ race_free Sim.bar trusted
//@ race_free Barrier.parties trusted
class Barrier {
	int count;
	int parties;
	volatile boolean sense;
	void await() {
		boolean s = sense;
		boolean last = false;
		synchronized (this) {
			count = count + 1;
			if (count == parties) { count = 0; last = true; }
		}
		if (last) { sense = !s; } else {
			// Spin with exponential local backoff: the volatile poll is
			// a synchronization action, so polling less often keeps the
			// event list from drowning in barrier traffic.
			int backoff = 4;
			while (sense == s) {
				int sink = 0;
				for (int i = 0; i < backoff; i = i + 1) { sink = sink + i; }
				if (backoff < 4096) { backoff = backoff * 2; }
			}
		}
	}
}
class Sim {
	double[] pos;
	double[] force;
	Barrier bar;
	int n;
	void run(int id, int workers, int steps) {
		for (int s = 0; s < steps; s = s + 1) {
			for (int i = id; i < n; i = i + workers) {
				double f = 0.0;
				for (int j = 0; j < n; j = j + 1) {
					f = f + (pos[j] - pos[i]) * 0.001;
				}
				force[i] = f;
			}
			bar.await();
			for (int i = id; i < n; i = i + workers) {
				pos[i] = pos[i] + force[i] * 0.01;
			}
			bar.await();
		}
	}
}
class Main {
	void main() {
		Sim sim = new Sim();
		sim.n = @SIZE@;
		sim.pos = new double[@SIZE@];
		sim.force = new double[@SIZE@];
		for (int i = 0; i < @SIZE@; i = i + 1) { sim.pos[i] = i * 0.5; }
		Barrier b = new Barrier();
		synchronized (b) { b.count = 0; }
		b.parties = @THREADS@;
		b.sense = false;
		sim.bar = b;
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			ts[w] = spawn sim.run(w, @THREADS@, @STEPS@);
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("moldyn", sim.pos[0]);
	}
}
`

// montecarloSrc: independent simulations with results merged under a
// monitor; matches the paper's low-overhead montecarlo row.
const montecarloSrc = `
class Gather {
	double total;
	int count;
	synchronized void put(double x) { total = total + x; count = count + 1; }
	synchronized double avg() { if (count == 0) { return 0.0; } return total / count; }
}
class Walker {
	Gather g;
	void run(int paths, int steps, int seed) {
		for (int p = 0; p < paths; p = p + 1) {
			double v = 100.0;
			int state = seed + p;
			for (int s = 0; s < steps; s = s + 1) {
				state = (state * 1103515245 + 12345) % 2147483647;
				if (state < 0) { state = -state; }
				double shock = (state % 200) - 100;
				v = v + v * shock * 0.0001;
			}
			g.put(v);
		}
	}
}
class Main {
	void main() {
		Gather g = new Gather();
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			Walker wk = new Walker();
			wk.g = g;
			ts[w] = spawn wk.run(@PATHS@, @STEPS@, w * 7919 + 17);
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("montecarlo", g.avg());
	}
}
`

// philoSrc: dining philosophers on fork monitors with wait/notify; all
// shared state is monitor-guarded, so overhead is near zero.
const philoSrc = `
class Fork {
	boolean held;
	synchronized void take() {
		while (held) { wait(this); }
		held = true;
	}
	synchronized void drop() {
		held = false;
		notifyall(this);
	}
}
class Table {
	Fork[] forks;
	int meals;
	synchronized void ate() { meals = meals + 1; }
	synchronized int total() { return meals; }
	void dine(int seat, int n, int rounds) {
		int left = seat;
		int right = (seat + 1) % n;
		int first = left;
		int second = right;
		if (seat % 2 == 1) { first = right; second = left; }
		for (int r = 0; r < rounds; r = r + 1) {
			Fork a = forks[first];
			Fork b = forks[second];
			a.take();
			b.take();
			ate();
			b.drop();
			a.drop();
		}
	}
}
class Main {
	void main() {
		Table t = new Table();
		t.forks = new Fork[@THREADS@];
		for (int i = 0; i < @THREADS@; i = i + 1) {
			Fork f = new Fork();
			synchronized (f) { f.held = false; }
			t.forks[i] = f;
		}
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			ts[w] = spawn t.dine(w, @THREADS@, @ROUNDS@);
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("philo", t.total());
	}
}
`

// raytracerSrc: a read-mostly shared scene (written by main during
// setup) plus a shared pixel buffer written in disjoint rows, with a
// volatile-spin barrier per frame. Chord keeps scene and pixels checked
// (flow-insensitive: main's setup writes look parallel with worker
// reads); the annotated RccJava run eliminates them.
const raytracerSrc = `
//@ race_free array:double trusted
//@ race_free Scene.ox trusted
//@ race_free Scene.oy trusted
//@ race_free Scene.oz trusted
//@ race_free Scene.radius trusted
//@ race_free Tracer.scene trusted
//@ race_free Tracer.check trusted
//@ race_free Tracer.bar trusted
//@ race_free Tracer.pixels trusted
//@ race_free Tracer.width trusted
//@ race_free Tracer.height trusted
//@ race_free Barrier.parties trusted
class Barrier {
	int count;
	int parties;
	volatile boolean sense;
	void await() {
		boolean s = sense;
		boolean last = false;
		synchronized (this) {
			count = count + 1;
			if (count == parties) { count = 0; last = true; }
		}
		if (last) { sense = !s; } else {
			// Spin with exponential local backoff: the volatile poll is
			// a synchronization action, so polling less often keeps the
			// event list from drowning in barrier traffic.
			int backoff = 4;
			while (sense == s) {
				int sink = 0;
				for (int i = 0; i < backoff; i = i + 1) { sink = sink + i; }
				if (backoff < 4096) { backoff = backoff * 2; }
			}
		}
	}
}
class Scene {
	double ox;
	double oy;
	double oz;
	double radius;
}
class Checksum {
	double sum;
	synchronized void add(double x) { sum = sum + x; }
	synchronized double get() { return sum; }
}
class Tracer {
	Scene scene;
	Checksum check;
	Barrier bar;
	double[] pixels;
	int width;
	int height;
	void render(int id, int workers, int frames) {
		for (int f = 0; f < frames; f = f + 1) {
			double local = 0.0;
			for (int y = id; y < height; y = y + workers) {
				for (int x = 0; x < width; x = x + 1) {
					double dx = x - scene.ox;
					double dy = y - scene.oy;
					double d2 = dx * dx + dy * dy + scene.oz * scene.oz;
					double hit = 0.0;
					if (d2 < scene.radius * scene.radius * (f + 1)) { hit = 1.0; }
					pixels[y * width + x] = hit;
					local = local + hit;
				}
			}
			check.add(local);
			bar.await();
		}
	}
}
class Main {
	void main() {
		Scene s = new Scene();
		s.ox = 32.0;
		s.oy = 32.0;
		s.oz = 4.0;
		s.radius = 11.0;
		Checksum c = new Checksum();
		Barrier b = new Barrier();
		synchronized (b) { b.count = 0; }
		b.parties = @THREADS@;
		b.sense = false;
		Tracer tr = new Tracer();
		tr.scene = s;
		tr.check = c;
		tr.bar = b;
		tr.width = @SIZE@;
		tr.height = @SIZE@;
		tr.pixels = new double[@SIZE@ * @SIZE@];
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			ts[w] = spawn tr.render(w, @THREADS@, @FRAMES@);
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("raytracer", c.get());
	}
}
`

// seriesSrc: embarrassingly parallel Fourier-style coefficients, each
// worker fully local with one synchronized merge; near-zero overhead.
const seriesSrc = `
class Merge {
	double sum;
	synchronized void add(double x) { sum = sum + x; }
	synchronized double get() { return sum; }
}
class Coeff {
	Merge m;
	void run(int terms, int id) {
		double[] local = new double[terms];
		for (int k = 0; k < terms; k = k + 1) {
			double acc = 0.0;
			for (int i = 1; i <= 40; i = i + 1) {
				double x = i * 0.025;
				acc = acc + x * ((k + id) % 9 - 4) / (i + k + 1);
			}
			local[k] = acc;
		}
		double total = 0.0;
		for (int k = 0; k < terms; k = k + 1) { total = total + local[k]; }
		m.add(total);
	}
}
class Main {
	void main() {
		Merge m = new Merge();
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			Coeff c = new Coeff();
			c.m = m;
			ts[w] = spawn c.run(@TERMS@, w);
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("series", m.get());
	}
}
`

// sorSrc: successive over-relaxation on thread-local strips with
// monitor-guarded boundary exchange; cheap to check.
const sorSrc = `
class Edge {
	double up;
	double down;
	synchronized void setUp(double v) { up = v; }
	synchronized void setDown(double v) { down = v; }
	synchronized double getUp() { return up; }
	synchronized double getDown() { return down; }
}
class Strip {
	Edge top;
	Edge bottom;
	void relax(int rows, int cols, int iters) {
		double[] g = new double[rows * cols];
		for (int i = 0; i < rows * cols; i = i + 1) { g[i] = (i % 11) * 0.1; }
		for (int it = 0; it < iters; it = it + 1) {
			double north = 0.0;
			double south = 0.0;
			if (top != null) { north = top.getDown(); }
			if (bottom != null) { south = bottom.getUp(); }
			for (int r = 1; r < rows - 1; r = r + 1) {
				for (int c = 1; c < cols - 1; c = c + 1) {
					g[r * cols + c] = 0.25 * (g[(r - 1) * cols + c] + g[(r + 1) * cols + c]
						+ g[r * cols + c - 1] + g[r * cols + c + 1]) + north * 0.001 - south * 0.001;
				}
			}
			if (top != null) { top.setUp(g[cols + 1]); }
			if (bottom != null) { bottom.setDown(g[(rows - 2) * cols + 1]); }
		}
	}
}
class Main {
	void main() {
		Edge[] edges = new Edge[@THREADS@ + 1];
		for (int i = 0; i <= @THREADS@; i = i + 1) {
			Edge e = new Edge();
			synchronized (e) { e.up = 0.0; e.down = 0.0; }
			edges[i] = e;
		}
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			Strip s = new Strip();
			s.top = edges[w];
			s.bottom = edges[w + 1];
			ts[w] = spawn s.relax(@ROWS@, @COLS@, @ITERS@);
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("sor", 1);
	}
}
`

// sor2Src: the same relaxation but with volatile handshakes protecting
// unsynchronized boundary fields — dynamically race-free, statically
// hopeless for Chord (the paper's most expensive row), eliminated by the
// annotated RccJava run.
const sor2Src = `
//@ race_free Edge.up trusted
//@ race_free Edge.down trusted
//@ race_free Strip.top trusted
//@ race_free Strip.bottom trusted
class Edge {
	double up;
	double down;
	volatile int upSeq;
	volatile int downSeq;
	volatile int upAck;
	volatile int downAck;
}
class Strip {
	Edge top;
	Edge bottom;
	void relax(int rows, int cols, int iters) {
		double[] g = new double[rows * cols];
		for (int i = 0; i < rows * cols; i = i + 1) { g[i] = (i % 11) * 0.1; }
		for (int it = 0; it < iters; it = it + 1) {
			double north = 0.0;
			double south = 0.0;
			if (it > 0) {
				// Consume the neighbours' values for the previous
				// iteration, then acknowledge so they may overwrite.
				if (top != null) {
					int b1 = 4;
					while (top.downSeq < it) {
						int sink = 0;
						for (int i = 0; i < b1; i = i + 1) { sink = sink + i; }
						if (b1 < 4096) { b1 = b1 * 2; }
					}
					north = top.down;
					top.downAck = it;
				}
				if (bottom != null) {
					int b2 = 4;
					while (bottom.upSeq < it) {
						int sink = 0;
						for (int i = 0; i < b2; i = i + 1) { sink = sink + i; }
						if (b2 < 4096) { b2 = b2 * 2; }
					}
					south = bottom.up;
					bottom.upAck = it;
				}
			}
			for (int r = 1; r < rows - 1; r = r + 1) {
				for (int c = 1; c < cols - 1; c = c + 1) {
					g[r * cols + c] = 0.25 * (g[(r - 1) * cols + c] + g[(r + 1) * cols + c]
						+ g[r * cols + c - 1] + g[r * cols + c + 1]) + north * 0.001 - south * 0.001;
				}
			}
			// Publish this iteration's boundary values once the
			// neighbour has consumed the previous ones.
			if (top != null) {
				int b3 = 4;
				while (top.upAck < it) {
					int sink = 0;
					for (int i = 0; i < b3; i = i + 1) { sink = sink + i; }
					if (b3 < 4096) { b3 = b3 * 2; }
				}
				top.up = g[cols + 1];
				top.upSeq = it + 1;
			}
			if (bottom != null) {
				int b4 = 4;
				while (bottom.downAck < it) {
					int sink = 0;
					for (int i = 0; i < b4; i = i + 1) { sink = sink + i; }
					if (b4 < 4096) { b4 = b4 * 2; }
				}
				bottom.down = g[(rows - 2) * cols + 1];
				bottom.downSeq = it + 1;
			}
		}
	}
}
class Main {
	void main() {
		Edge[] edges = new Edge[@THREADS@ + 1];
		for (int i = 0; i <= @THREADS@; i = i + 1) {
			Edge e = new Edge();
			e.up = 0.0;
			e.down = 0.0;
			e.upSeq = 0;
			e.downSeq = 0;
			e.upAck = 0;
			e.downAck = 0;
			edges[i] = e;
		}
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			Strip s = new Strip();
			if (w > 0) { s.top = edges[w]; }
			if (w < @THREADS@ - 1) { s.bottom = edges[w + 1]; }
			ts[w] = spawn s.relax(@ROWS@, @COLS@, @ITERS@);
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("sor2", 1);
	}
}
`

// tspSrc: branch-and-bound with a monitor-guarded global best bound and
// a read-mostly distance matrix initialized by main (kept checked by
// Chord, annotated away in the RccJava run).
const tspSrc = `
//@ race_free array:int trusted
class Best {
	int bound;
	synchronized void update(int b) { if (b < bound) { bound = b; } }
	synchronized int get() { return bound; }
}
class Search {
	int[] dist;
	int n;
	Best best;
	void run(int first) {
		int[] tour = new int[n];
		boolean[] used = new boolean[n];
		for (int i = 0; i < n; i = i + 1) { used[i] = false; }
		tour[0] = 0;
		used[0] = true;
		tour[1] = first;
		used[first] = true;
		explore(tour, used, 2, dist[first]);
	}
	void explore(int[] tour, boolean[] used, int depth, int cost) {
		if (cost >= best.get()) { return; }
		if (depth == n) {
			best.update(cost + dist[tour[n - 1] * n]);
			return;
		}
		for (int city = 1; city < n; city = city + 1) {
			if (!used[city]) {
				used[city] = true;
				tour[depth] = city;
				explore(tour, used, depth + 1, cost + dist[tour[depth - 1] * n + city]);
				used[city] = false;
			}
		}
	}
}
class Main {
	void main() {
		int n = @CITIES@;
		int[] dist = new int[n * n];
		for (int i = 0; i < n; i = i + 1) {
			for (int j = 0; j < n; j = j + 1) {
				int d = (i * 7 + j * 13) % 29 + 1;
				if (i == j) { d = 0; }
				dist[i * n + j] = d;
			}
		}
		Best best = new Best();
		synchronized (best) { best.bound = 1000000; }
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			Search s = new Search();
			s.dist = dist;
			s.n = n;
			s.best = best;
			ts[w] = spawn s.run(1 + w % (n - 1));
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("tsp", best.get());
	}
}
`

// multisetSrc is the Table 3 microbenchmark: a Multiset of integers in a
// slot array, every operation a transaction (Section 6.1). Insert
// first reserves slots one transaction per element, then publishes all
// of them in a single transaction; on contention failure it frees the
// reserved slots in one transaction, mimicking rollback. Input arrays
// come from a monitor-guarded factory manipulated outside transactions,
// so lock-based and transactional synchronization mix.
const multisetSrc = `
class Multiset {
	int[] vals;
	boolean[] used;
	boolean[] visible;
}
class Factory {
	int next;
	synchronized int fresh() { next = next + 3; return next; }
}
class Client {
	Multiset set;
	Factory fab;
	int size;
	void run(int ops, int id) {
		for (int op = 0; op < ops; op = op + 1) {
			int kind = (op + id) % 3;
			if (kind == 0) {
				int[] a = new int[2];
				a[0] = fab.fresh();
				a[1] = fab.fresh();
				insert(a);
			} else {
				if (kind == 1) { remove(id + op); } else { int c = count(id); }
			}
		}
	}
	void insert(int[] a) {
		int[] got = new int[a.length];
		int n = 0;
		boolean ok = true;
		for (int i = 0; i < a.length; i = i + 1) {
			int slot = -1;
			atomic {
				for (int s = 0; s < size; s = s + 1) {
					if (slot < 0 && !set.used[s]) {
						set.used[s] = true;
						set.vals[s] = a[i];
						slot = s;
					}
				}
			}
			if (slot < 0) { ok = false; } else { got[n] = slot; n = n + 1; }
		}
		if (ok) {
			atomic {
				for (int i = 0; i < n; i = i + 1) { set.visible[got[i]] = true; }
			}
		} else {
			atomic {
				for (int i = 0; i < n; i = i + 1) {
					set.used[got[i]] = false;
					set.visible[got[i]] = false;
				}
			}
		}
	}
	void remove(int v) {
		atomic {
			for (int s = 0; s < size; s = s + 1) {
				if (set.visible[s] && set.vals[s] % 5 == v % 5) {
					set.visible[s] = false;
					set.used[s] = false;
				}
			}
		}
	}
	int count(int v) {
		int c = 0;
		atomic {
			for (int s = 0; s < size; s = s + 1) {
				if (set.visible[s] && set.vals[s] % 3 == v % 3) { c = c + 1; }
			}
		}
		return c;
	}
}
class Main {
	void main() {
		int size = @SIZE@;
		Multiset set = new Multiset();
		set.vals = new int[size];
		set.used = new boolean[size];
		set.visible = new boolean[size];
		atomic {
			for (int s = 0; s < size; s = s + 1) {
				set.used[s] = false;
				set.visible[s] = false;
			}
		}
		Factory fab = new Factory();
		synchronized (fab) { fab.next = 0; }
		thread[] ts = new thread[@THREADS@];
		for (int w = 0; w < @THREADS@; w = w + 1) {
			Client c = new Client();
			c.set = set;
			c.fab = fab;
			c.size = size;
			ts[w] = spawn c.run(@OPS@, w);
		}
		for (int w = 0; w < @THREADS@; w = w + 1) { join(ts[w]); }
		print("multiset done");
	}
}
`
