package bench

import (
	"fmt"
	"strings"

	"goldilocks/internal/core"
	"goldilocks/internal/event"
	"goldilocks/internal/scenarios"
)

// Figure6 renders the lockset evolution of LS(o.data) on the Example 2
// execution, reproducing Figure 6 of the paper.
func Figure6() string {
	sc := scenarios.Ownership()
	v := scenarios.Var(scenarios.IntBox, scenarios.FieldData)
	return renderEvolution("Figure 6. Evolution of LS(o.data) on Example 2", sc, v, map[int]string{
		0:  "tmp1 = new IntBox()",
		1:  "tmp1.data = 0",
		2:  "acq(ma)",
		3:  "a = tmp1",
		4:  "rel(ma)",
		5:  "acq(ma)",
		6:  "tmp2 = a",
		7:  "acq(mb)",
		8:  "b = tmp2",
		9:  "rel(mb)",
		10: "rel(ma)",
		11: "acq(mb)",
		12: "b.data = 2",
		13: "tmp3 = b",
		14: "rel(mb)",
		15: "tmp3.data = 3",
	})
}

// Figure7 renders the lockset evolution of LS(o.data) on the Example 3
// execution, reproducing Figure 7 of the paper.
func Figure7() string {
	sc := scenarios.TxList()
	v := scenarios.Var(scenarios.Foo, scenarios.FieldData)
	return renderEvolution("Figure 7. Evolution of LS(o.data) on Example 3", sc, v, map[int]string{
		0: "t1 = new Foo()",
		1: "t1.data = 42",
		2: "T1: atomic { t1.nxt = head; head = t1 }",
		3: "T2: atomic { for iter = head .. iter.data = 0 }",
		4: "T3: atomic { t3 = head; head = t3.nxt }",
		5: "t3.data (read)",
		6: "t3.data++ (write)",
	})
}

func renderEvolution(title string, sc scenarios.Scenario, v event.Variable, labels map[int]string) string {
	spec := core.NewSpecEngine()
	var sb strings.Builder
	fmt.Fprintln(&sb, title)
	for i := 0; i < sc.Trace.Len(); i++ {
		a := sc.Trace.At(i)
		races := spec.Step(a)
		ls := spec.WriteLockset(v)
		lsStr := "∅"
		if ls != nil {
			lsStr = ls.String()
		}
		label := labels[i]
		if label == "" {
			label = a.String()
		}
		verdict := ""
		if a.Accesses(v) {
			verdict = "  (no race)"
			for _, r := range races {
				if r.Var == v {
					verdict = "  ** RACE **"
				}
			}
		}
		fmt.Fprintf(&sb, "  %-44s LS(o.data) = %s%s\n", label+"  ["+a.Thread.String()+"]", lsStr, verdict)
	}
	return sb.String()
}
