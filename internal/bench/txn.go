package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"goldilocks/internal/core"
	"goldilocks/internal/event"
)

// TxnPoint is one (mix, threads) measurement of the transactional
// sweep: fixed work per thread, so elapsed time is the cost of pushing
// that many commit(R,W) actions through the detector at the given
// concurrency. Governor fields record how the memory ladder behaved
// under the load (nonzero only for the governed mix).
type TxnPoint struct {
	Mix           string  `json:"mix"`
	Threads       int     `json:"threads"`
	Commits       int64   `json:"commits"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	Races         uint64  `json:"races"`
	// XactHits counts pair checks short-circuited by the transactions
	// rule — the detector-side win transactional synchronization buys.
	XactHits uint64 `json:"xact_hits"`
	// VarsTracked and the governor counters tie throughput to memory
	// pressure: the governed mix must show rung climbs, not OOM.
	VarsTracked    uint64 `json:"vars_tracked"`
	GovernorRung   int    `json:"governor_rung"`
	Escalations    uint64 `json:"escalations"`
	DegradedChecks uint64 `json:"degraded_checks"`
}

// TxnReport is the machine-readable output of the -txn sweep
// (BENCH_txn.json). Interpretation notes live in docs/PERFORMANCE.md:
// the contended mix bounds the per-variable serialization floor (every
// commit conflicts, every commit synchronizes), the disjoint mix is the
// scalable end (per-thread variables, commits only synchronize through
// the global commit chain), and the governed mix reruns disjoint under
// a deliberately tiny memory budget to measure throughput under
// degradation instead of failure.
type TxnReport struct {
	NumCPU           int          `json:"num_cpu"`
	GoVersion        string       `json:"go_version"`
	GitCommit        string       `json:"git_commit"`
	Engine           EngineConfig `json:"engine"`
	CommitsPerThread int          `json:"commits_per_thread"`
	Points           []TxnPoint   `json:"points"`
}

// txnMix names one commit pattern. op issues one iteration for worker w
// (distinct thread id per worker): a checked read followed by a
// commit(R,W), the shape the stm layer produces for every transaction.
type txnMix struct {
	name string
	// budget, when nonzero, replaces the default memory budget so the
	// governor's degradation ladder engages during the sweep.
	budget int
	op     func(e *core.Engine, w, i int)
}

var txnMixes = []txnMix{
	{
		// Every thread commits against the same two fields: maximal
		// conflict, every commit pair intersects, so this measures the
		// per-variable serialization floor of the commit path.
		name: "contended",
		op: func(e *core.Engine, w, i int) {
			t := event.Tid(w + 1)
			e.Read(t, 7, 1)
			e.Commit(t,
				[]event.Variable{{Obj: 7, Field: 1}},
				[]event.Variable{{Obj: 7, Field: 0}})
		},
	},
	{
		// Per-thread objects: read and write sets never intersect across
		// threads, the regime transactional scaling claims apply to.
		name: "disjoint",
		op: func(e *core.Engine, w, i int) {
			t := event.Tid(w + 1)
			o := event.Addr(1000 + w)
			e.Read(t, o, event.FieldID(i&3))
			e.Commit(t,
				[]event.Variable{{Obj: o, Field: event.FieldID(i & 3)}},
				[]event.Variable{{Obj: o, Field: event.FieldID((i + 1) & 3)}})
		},
	},
	{
		// The disjoint pattern under a budget far below its working set:
		// the governor must climb its rungs and keep serving commits.
		name:   "governed",
		budget: 4096,
		op: func(e *core.Engine, w, i int) {
			t := event.Tid(w + 1)
			o := event.Addr(1000 + w)
			e.Read(t, o, event.FieldID(i&3))
			e.Commit(t,
				[]event.Variable{{Obj: o, Field: event.FieldID(i & 3)}},
				[]event.Variable{{Obj: o, Field: event.FieldID((i + 1) & 3)}})
		},
	},
}

// DefaultTxnThreads is the thread ladder of the -txn sweep. The top
// rungs are the point of the exercise: commit processing at thousands
// of concurrent threads, far past the paper's 500-thread Table 3.
func DefaultTxnThreads(full bool) []int {
	if full {
		return []int{64, 256, 1000, 2000, 4000}
	}
	return []int{64, 256, 1000, 2000}
}

// Txn runs the transactional sweep: for each mix and thread count,
// threads goroutines (each a distinct detector thread id) issue
// commitsPerThread read+commit pairs against a fresh engine.
func Txn(threadsList []int, commitsPerThread int, progress func(string)) TxnReport {
	opts := txnOptions(0)
	rep := TxnReport{
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		GitCommit: gitCommit(),
		Engine: EngineConfig{
			Shards:       core.NewEngine(opts).ShardCount(),
			MemoryBudget: opts.MemoryBudget,
			GCThreshold:  opts.GCThreshold,
			FastPath:     opts.FastPath,
			Detector:     core.NewEngine(opts).Name(),
		},
		CommitsPerThread: commitsPerThread,
	}
	for _, mix := range txnMixes {
		for _, threads := range threadsList {
			p := txnOnePoint(mix, threads, commitsPerThread)
			rep.Points = append(rep.Points, p)
			progress(fmt.Sprintf("txn: %s threads=%d %.0f commits/sec (rung %d)",
				p.Mix, p.Threads, p.CommitsPerSec, p.GovernorRung))
		}
	}
	return rep
}

func txnOptions(budget int) core.Options {
	opts := core.DefaultOptions()
	opts.MemoryBudget = 1 << 20
	if budget != 0 {
		opts.MemoryBudget = budget
	}
	return opts
}

func txnOnePoint(mix txnMix, threads, commitsPerThread int) TxnPoint {
	e := core.NewEngine(txnOptions(mix.budget))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < commitsPerThread; i++ {
				mix.op(e, w, i)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := e.Stats()
	commits := int64(threads) * int64(commitsPerThread)
	return TxnPoint{
		Mix:            mix.name,
		Threads:        threads,
		Commits:        commits,
		ElapsedMS:      float64(elapsed) / float64(time.Millisecond),
		CommitsPerSec:  float64(commits) / elapsed.Seconds(),
		Races:          st.Races,
		XactHits:       st.XactHits,
		VarsTracked:    st.VarsTracked,
		GovernorRung:   int(st.GovernorRung),
		Escalations:    st.Escalations,
		DegradedChecks: st.DegradedChecks,
	}
}

// FormatTxn renders the report as the aligned text table racebench
// prints alongside the JSON artifact.
func FormatTxn(rep TxnReport) string {
	s := fmt.Sprintf("Transactional commit sweep (NumCPU=%d, %s, %d commits/thread)\n",
		rep.NumCPU, rep.GoVersion, rep.CommitsPerThread)
	s += fmt.Sprintf("%-10s %8s %14s %10s %6s %12s\n",
		"mix", "threads", "commits/sec", "xact-hits", "rung", "degraded")
	for _, p := range rep.Points {
		s += fmt.Sprintf("%-10s %8d %14.0f %10d %6d %12d\n",
			p.Mix, p.Threads, p.CommitsPerSec, p.XactHits, p.GovernorRung, p.DegradedChecks)
	}
	return s
}

// MarshalTxn serializes the report for BENCH_txn.json.
func MarshalTxn(rep TxnReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
