package bench

import (
	"fmt"
	"regexp"
	"strings"
)

// paramToken matches an unsubstituted @PARAM@ placeholder (pragma
// comments also contain '@', so a plain byte search is not enough).
var paramToken = regexp.MustCompile(`@[A-Z]+@`)

// Workload is one benchmark program: an MJ source template plus the
// parameter sets for test-scale and full-scale runs.
type Workload struct {
	Name string
	// Src is the MJ source with @TOKEN@ placeholders.
	Src string
	// Full are the Table 1 parameters; Small the test-scale ones.
	Full, Small map[string]int
	// Lines is the approximate source size, reported like the paper's
	// "#Lines" column.
	Lines int
	// Threads for the run (reported in Table 1).
	Threads int
}

// Instantiate substitutes parameters into the source. scale "full" or
// "small".
func (w Workload) Instantiate(full bool) string {
	params := w.Small
	if full {
		params = w.Full
	}
	src := w.Src
	src = strings.ReplaceAll(src, "@THREADS@", fmt.Sprint(w.Threads))
	for k, v := range params {
		src = strings.ReplaceAll(src, "@"+k+"@", fmt.Sprint(v))
	}
	if loc := paramToken.FindString(src); loc != "" {
		panic(fmt.Sprintf("bench: workload %s: unsubstituted parameter %s", w.Name, loc))
	}
	return src
}

// Table1Workloads returns the eleven benchmark programs of Table 1 in
// the paper's row order.
func Table1Workloads() []Workload {
	return []Workload{
		{
			Name: "colt", Src: coltSrc, Threads: 10, Lines: srcLines(coltSrc),
			Full:  map[string]int{"SIZE": 24, "REPS": 4},
			Small: map[string]int{"SIZE": 6, "REPS": 2},
		},
		{
			Name: "hedc", Src: hedcSrc, Threads: 10, Lines: srcLines(hedcSrc),
			Full:  map[string]int{"TASKS": 300, "WORK": 600},
			Small: map[string]int{"TASKS": 12, "WORK": 30},
		},
		{
			Name: "lufact", Src: lufactSrc, Threads: 10, Lines: srcLines(lufactSrc),
			Full:  map[string]int{"SIZE": 28},
			Small: map[string]int{"SIZE": 8},
		},
		{
			Name: "moldyn", Src: moldynSrc, Threads: 5, Lines: srcLines(moldynSrc),
			Full:  map[string]int{"SIZE": 64, "STEPS": 6},
			Small: map[string]int{"SIZE": 16, "STEPS": 3},
		},
		{
			Name: "montecarlo", Src: montecarloSrc, Threads: 5, Lines: srcLines(montecarloSrc),
			Full:  map[string]int{"PATHS": 120, "STEPS": 160},
			Small: map[string]int{"PATHS": 8, "STEPS": 12},
		},
		{
			Name: "philo", Src: philoSrc, Threads: 8, Lines: srcLines(philoSrc),
			Full:  map[string]int{"ROUNDS": 120},
			Small: map[string]int{"ROUNDS": 8},
		},
		{
			Name: "raytracer", Src: raytracerSrc, Threads: 5, Lines: srcLines(raytracerSrc),
			Full:  map[string]int{"SIZE": 48, "FRAMES": 6},
			Small: map[string]int{"SIZE": 10, "FRAMES": 2},
		},
		{
			Name: "series", Src: seriesSrc, Threads: 10, Lines: srcLines(seriesSrc),
			Full:  map[string]int{"TERMS": 2200},
			Small: map[string]int{"TERMS": 60},
		},
		{
			Name: "sor", Src: sorSrc, Threads: 5, Lines: srcLines(sorSrc),
			Full:  map[string]int{"ROWS": 36, "COLS": 36, "ITERS": 24},
			Small: map[string]int{"ROWS": 8, "COLS": 8, "ITERS": 3},
		},
		{
			Name: "sor2", Src: sor2Src, Threads: 10, Lines: srcLines(sor2Src),
			Full:  map[string]int{"ROWS": 26, "COLS": 26, "ITERS": 24},
			Small: map[string]int{"ROWS": 8, "COLS": 8, "ITERS": 3},
		},
		{
			Name: "tsp", Src: tspSrc, Threads: 10, Lines: srcLines(tspSrc),
			Full:  map[string]int{"CITIES": 8},
			Small: map[string]int{"CITIES": 6},
		},
	}
}

// MultisetWorkload returns the Table 3 microbenchmark for a given
// thread count. Size is the multiset capacity (the paper uses 10).
func MultisetWorkload(threads, ops int) Workload {
	return Workload{
		Name: fmt.Sprintf("multiset-%d", threads), Src: multisetSrc,
		Threads: threads, Lines: srcLines(multisetSrc),
		Full:  map[string]int{"SIZE": 10, "OPS": ops},
		Small: map[string]int{"SIZE": 10, "OPS": ops},
	}
}

// MultisetLockWorkload is the Table 3 ablation: the same Multiset with
// every atomic block replaced by a synchronized block on the set — the
// detector then sees the lock-based implementation of each transaction
// (its acquires, releases, and every individual slot access) instead of
// one commit(R, W) action. The paper reports >10x slowdowns when
// transactions are not treated as high-level synchronization; this
// variant measures the same effect.
func MultisetLockWorkload(threads, ops int) Workload {
	src := strings.ReplaceAll(multisetSrc, "atomic {", "synchronized (set) {")
	return Workload{
		Name: fmt.Sprintf("multiset-locks-%d", threads), Src: src,
		Threads: threads, Lines: srcLines(src),
		Full:  map[string]int{"SIZE": 10, "OPS": ops},
		Small: map[string]int{"SIZE": 10, "OPS": ops},
	}
}

func srcLines(src string) int { return strings.Count(src, "\n") }
