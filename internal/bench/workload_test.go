package bench_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goldilocks/internal/bench"
	"goldilocks/internal/core"
	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
	"goldilocks/internal/static"
)

// TestWorkloadsFrontEnd: every workload parses and checks at both
// scales, and its pragmas are accepted by the Rcc analysis.
func TestWorkloadsFrontEnd(t *testing.T) {
	ws := append(bench.Table1Workloads(), bench.MultisetWorkload(5, 4))
	for _, w := range ws {
		for _, full := range []bool{false, true} {
			src := w.Instantiate(full)
			prog, err := mj.Parse(src)
			if err != nil {
				t.Fatalf("%s (full=%v): parse: %v", w.Name, full, err)
			}
			if err := mj.Check(prog); err != nil {
				t.Fatalf("%s (full=%v): check: %v", w.Name, full, err)
			}
			if _, err := static.Rcc(prog); err != nil {
				t.Fatalf("%s: rcc rejected pragmas: %v", w.Name, err)
			}
		}
	}
}

// TestWorkloadsRaceFree: every workload is race-free under the
// deterministic scheduler across several seeds at test scale — the
// precision claim on real programs. Free-running races would make the
// slowdown columns meaningless.
func TestWorkloadsRaceFree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ws := append(bench.Table1Workloads(), bench.MultisetWorkload(3, 3))
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 3; seed++ {
				m, err := bench.Run(w, bench.RunOptions{
					Mode: bench.NoStatic, Deterministic: true, Seed: seed,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if m.Races != 0 {
					t.Fatalf("seed %d: %d races reported on a race-free workload", seed, m.Races)
				}
			}
		})
	}
}

// TestWorkloadsStaticSound: static elimination must not change the
// (empty) race verdicts, and each mode runs successfully in free mode.
func TestWorkloadsStaticSound(t *testing.T) {
	ws := append(bench.Table1Workloads(), bench.MultisetWorkload(3, 3))
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range []bench.Mode{bench.Uninstrumented, bench.NoStatic, bench.WithChord, bench.WithRcc} {
				m, err := bench.Run(w, bench.RunOptions{Mode: mode})
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				if m.Races != 0 {
					t.Errorf("%s: races = %d", mode, m.Races)
				}
			}
		})
	}
}

// TestWorkloadOutputsDeterministic: the deterministic scheduler plus
// identical seeds yield identical program output across detector modes
// (the instrumentation must not perturb semantics).
func TestWorkloadOutputsDeterministic(t *testing.T) {
	for _, w := range bench.Table1Workloads() {
		var outputs []string
		for _, mode := range []bench.Mode{bench.Uninstrumented, bench.NoStatic, bench.WithChord, bench.WithRcc} {
			var sb strings.Builder
			_, err := bench.Run(w, bench.RunOptions{
				Mode: mode, Deterministic: true, Seed: 42, Out: &sb,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, mode, err)
			}
			outputs = append(outputs, sb.String())
		}
		for i := 1; i < len(outputs); i++ {
			if outputs[i] != outputs[0] {
				t.Errorf("%s: output differs across modes:\n%q\nvs\n%q", w.Name, outputs[0], outputs[i])
			}
		}
		if outputs[0] == "" {
			t.Errorf("%s: produced no output", w.Name)
		}
	}
}

// checkedFraction measures the dynamic fraction of accesses that stayed
// race-checked under a mode (the "Accesses checked (%)" of Table 2).
func checkedFraction(t *testing.T, w bench.Workload, mode bench.Mode) float64 {
	t.Helper()
	m, err := bench.Run(w, bench.RunOptions{Mode: mode, Deterministic: true, Seed: 1})
	if err != nil {
		t.Fatalf("%s/%s: %v", w.Name, mode, err)
	}
	if m.Runtime.TotalAccesses == 0 {
		t.Fatalf("%s/%s: no accesses recorded", w.Name, mode)
	}
	return float64(m.Runtime.CheckedAccesses) / float64(m.Runtime.TotalAccesses)
}

// TestStaticEliminationEffectiveness pins the qualitative Table 2 shape
// on dynamic access counts: barrier/volatile workloads stay mostly
// checked under Chord but are mostly eliminated under the annotated Rcc
// run; lock-disciplined and thread-local ones are mostly eliminated
// under both.
func TestStaticEliminationEffectiveness(t *testing.T) {
	type expectation struct {
		name       string
		chordBelow float64 // checked fraction must be under this with Chord
		chordAbove float64 // ... and over this (barrier workloads stay hot)
		rccBelow   float64
	}
	cases := []expectation{
		{"colt", 0.10, 0, 0.10},
		{"philo", 0.35, 0, 0.35},
		{"series", 0.10, 0, 0.10},
		{"lufact", 0.15, 0, 0.15},
		{"moldyn", 1.01, 0.50, 0.25},
		{"raytracer", 1.01, 0.50, 0.25},
		{"sor2", 1.01, 0.02, 0.25},
	}
	byName := map[string]bench.Workload{}
	for _, w := range bench.Table1Workloads() {
		byName[w.Name] = w
	}
	for _, c := range cases {
		w := byName[c.name]
		chord := checkedFraction(t, w, bench.WithChord)
		rcc := checkedFraction(t, w, bench.WithRcc)
		if chord >= c.chordBelow {
			t.Errorf("%s: chord checked fraction %.2f, want < %.2f", c.name, chord, c.chordBelow)
		}
		if chord < c.chordAbove {
			t.Errorf("%s: chord checked fraction %.2f, want >= %.2f (barrier traffic must stay checked)", c.name, chord, c.chordAbove)
		}
		if rcc >= c.rccBelow {
			t.Errorf("%s: rcc checked fraction %.2f, want < %.2f", c.name, rcc, c.rccBelow)
		}
		if c.chordAbove > 0 && chord < 2*rcc {
			t.Errorf("%s: chord checked fraction %.3f not clearly above rcc %.3f", c.name, chord, rcc)
		}
	}
}

// TestWorkloadPrinterRoundTrip: every workload source survives a
// Format/Parse round trip with identical deterministic output — the
// printer fixpoint property on the largest MJ corpus in the repo.
func TestWorkloadPrinterRoundTrip(t *testing.T) {
	for _, w := range append(bench.Table1Workloads(), bench.MultisetWorkload(3, 3)) {
		src := w.Instantiate(false)
		prog, err := mj.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		printed := mj.Format(prog)
		reparsed, err := mj.Parse(printed)
		if err != nil {
			t.Fatalf("%s: reparse: %v", w.Name, err)
		}
		if again := mj.Format(reparsed); again != printed {
			t.Errorf("%s: printer not a fixpoint", w.Name)
		}
		// Identical behaviour under the same seed.
		w2 := w
		w2.Src = printed
		var out1, out2 strings.Builder
		if _, err := bench.Run(w, bench.RunOptions{Mode: bench.NoStatic, Deterministic: true, Seed: 5, Out: &out1}); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if _, err := bench.Run(w2, bench.RunOptions{Mode: bench.NoStatic, Deterministic: true, Seed: 5, Out: &out2}); err != nil {
			t.Fatalf("%s printed: %v", w.Name, err)
		}
		if out1.String() != out2.String() {
			t.Errorf("%s: printed program diverges: %q vs %q", w.Name, out1.String(), out2.String())
		}
	}
}

// TestSampleMJPrograms keeps the examples/mj programs green: they parse,
// check, and run; racy.mj is the only one allowed to race.
func TestSampleMJPrograms(t *testing.T) {
	dir := "../../examples/mj"
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 4 {
		t.Fatalf("expected at least 4 sample programs, found %d", len(entries))
	}
	for _, e := range entries {
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := mj.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if err := mj.Check(prog); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		rt := jrt.NewRuntime(jrt.Config{Detector: core.New(), Policy: jrt.Log, Mode: jrt.Deterministic, Seed: 4})
		interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt})
		if err != nil {
			t.Fatal(err)
		}
		races, err := interp.Run()
		if err != nil {
			t.Fatalf("%s: run: %v", e.Name(), err)
		}
		racyExpected := e.Name() == "racy.mj"
		if racyExpected && len(races) == 0 {
			t.Errorf("%s: expected a race under seed 4", e.Name())
		}
		if !racyExpected && len(races) != 0 {
			t.Errorf("%s: unexpected races: %d", e.Name(), len(races))
		}
	}
}
