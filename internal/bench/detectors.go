package bench

import (
	"fmt"
	"strings"
	"time"

	"goldilocks/internal/core"
	"goldilocks/internal/detectors/basic"
	"goldilocks/internal/detectors/eraser"
	"goldilocks/internal/hb"
	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
)

// DetectorRow compares the detectors on one workload: precise detectors
// must report zero races on the (race-free) benchmark programs, while
// the Eraser-style baselines' nonzero counts are false alarms — the
// precision gap of Section 4.1 measured on real workloads rather than
// toy examples.
type DetectorRow struct {
	Workload string
	// Reports maps detector name to the number of races reported.
	Reports map[string]int
	// Elapsed maps detector name to wall-clock time.
	Elapsed map[string]time.Duration
}

// detectorUnderTest builds each runtime detector fresh per run.
var detectorUnderTest = []struct {
	name string
	mk   func() jrt.Detector
}{
	{"goldilocks", func() jrt.Detector { return core.New() }},
	{"vectorclock", func() jrt.Detector { return jrt.Serialize(hb.NewDetector()) }},
	{"eraser", func() jrt.Detector { return jrt.Serialize(eraser.New()) }},
	{"basic-lockset", func() jrt.Detector { return jrt.Serialize(basic.New()) }},
}

// DetectorComparison runs every Table 1 workload (test scale,
// deterministic schedule) under each detector.
func DetectorComparison(seed int64) ([]DetectorRow, error) {
	var rows []DetectorRow
	for _, w := range Table1Workloads() {
		row := DetectorRow{
			Workload: w.Name,
			Reports:  make(map[string]int),
			Elapsed:  make(map[string]time.Duration),
		}
		src := w.Instantiate(false)
		for _, d := range detectorUnderTest {
			prog, err := mj.Parse(src)
			if err != nil {
				return nil, err
			}
			if err := mj.Check(prog); err != nil {
				return nil, err
			}
			rt := jrt.NewRuntime(jrt.Config{
				Detector: d.mk(),
				Policy:   jrt.Log,
				Mode:     jrt.Deterministic,
				Seed:     seed,
			})
			interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			races, err := interp.Run()
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, d.name, err)
			}
			row.Elapsed[d.name] = time.Since(start)
			row.Reports[d.name] = len(races)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatDetectorComparison renders the comparison. The workloads are
// race-free, so every nonzero report is a false alarm.
func FormatDetectorComparison(rows []DetectorRow) string {
	var sb strings.Builder
	sb.WriteString("Detector comparison on the benchmark suite (all workloads race-free;\n")
	sb.WriteString("reports by imprecise detectors are false alarms)\n")
	fmt.Fprintf(&sb, "%-12s", "Benchmark")
	for _, d := range detectorUnderTest {
		fmt.Fprintf(&sb, " | %13s", d.name)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s", r.Workload)
		for _, d := range detectorUnderTest {
			fmt.Fprintf(&sb, " | %2d in %7s", r.Reports[d.name],
				r.Elapsed[d.name].Round(time.Millisecond))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
