package bench

import (
	"encoding/json"
	"fmt"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goldilocks/internal/core"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
)

// ScalePoint is one (mix, GOMAXPROCS) measurement of the scalability
// sweep: raw operation count, wall time, throughput, and the speedup
// relative to the single-proc point of the same mix.
type ScalePoint struct {
	Mix       string  `json:"mix"`
	Procs     int     `json:"procs"`
	Ops       int64   `json:"ops"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup_vs_1proc"`
	// Oversubscribed marks points where procs exceeds the hardware
	// parallelism (runtime.NumCPU): more workers than CPUs cannot speed
	// up, only add scheduler churn and preempted-lock-holder convoys, so
	// a sub-1x Speedup here is oversubscription, not a scaling
	// regression. See docs/PERFORMANCE.md.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// EngineConfig records the engine configuration a sweep ran with, so a
// BENCH_scale.json number can be tied to the shard count, memory
// budget, and detector that produced it.
type EngineConfig struct {
	Shards       int    `json:"shards"`
	MemoryBudget int    `json:"memory_budget"`
	GCThreshold  int    `json:"gc_threshold"`
	FastPath     bool   `json:"fast_path"`
	Detector     string `json:"detector"`
}

// ScaleReport is the machine-readable output of the -scale sweep.
// NumCPU records the hardware parallelism actually available: on a
// single-CPU machine raising GOMAXPROCS cannot yield speedup, and the
// sweep is a contention (not a scaling) measurement — consumers must
// interpret Speedup against NumCPU, not against Procs. GitCommit and
// Engine identify what was measured: the source revision and the
// engine configuration.
type ScaleReport struct {
	NumCPU     int          `json:"num_cpu"`
	GoVersion  string       `json:"go_version"`
	GitCommit  string       `json:"git_commit"`
	Engine     EngineConfig `json:"engine"`
	PerPointMS float64      `json:"per_point_ms"`
	Points     []ScalePoint `json:"points"`
}

// gitCommit resolves the source revision the binary was built from: the
// vcs.revision build setting when the binary was built inside a
// checkout, falling back to asking git directly (test binaries), or
// "unknown" outside any repository.
func gitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

// scaleMix names one access pattern of the sweep and the per-worker
// operation it hammers the engine with.
type scaleMix struct {
	name string
	// lockset forces the epoch fast path off for this mix, pinning the
	// pure-lockset apply point as the comparison baseline.
	lockset bool
	// op performs one iteration for worker w (distinct thread id per
	// worker) against e; i is the iteration counter.
	op func(e *core.Engine, w, i int)
}

// scaleMixes are the two ends of the sharing spectrum. "disjoint"
// touches per-worker variables only — every layer of the hot path
// (variable shard, varState mutex, lock records) is private, so this is
// the pattern the de-serialized engine should scale on given hardware
// parallelism. "shared" has every worker read the same variable —
// varState serialization is inherent to the algorithm (per-variable
// check-then-install must be atomic), so this bounds the contention
// floor rather than demonstrating speedup.
// The "disjoint-lockset" mix is the same access pattern with the epoch
// fast path disabled: the gap between it and "disjoint" at every procs
// point is the fast path's win on thread-owned traffic, measured at
// scale (docs/PERFORMANCE.md).
var scaleMixes = []scaleMix{
	{
		name: "disjoint",
		op: func(e *core.Engine, w, i int) {
			t := event.Tid(w + 1)
			o := event.Addr(1000 + w)
			d := event.FieldID(i & 3)
			e.Write(t, o, d)
			e.Read(t, o, d)
		},
	},
	{
		name:    "disjoint-lockset",
		lockset: true,
		op: func(e *core.Engine, w, i int) {
			t := event.Tid(w + 1)
			o := event.Addr(1000 + w)
			d := event.FieldID(i & 3)
			e.Write(t, o, d)
			e.Read(t, o, d)
		},
	},
	{
		name: "shared",
		op: func(e *core.Engine, w, i int) {
			e.Read(event.Tid(w+1), 42, 0)
		},
	},
}

// Scale runs the scalability sweep: for each mix and each GOMAXPROCS
// value it spins up procs workers against a fresh engine for roughly
// perPoint and records throughput. The returned report carries
// runtime.NumCPU so a flat speedup curve on a small machine is
// distinguishable from a contention regression. tel, when non-nil, is
// shared by every point's engine, so a live -metrics-addr endpoint sees
// the cumulative rule-fire counters across the sweep.
func Scale(procsList []int, perPoint time.Duration, tel *obs.Telemetry, progress func(string)) ScaleReport {
	opts := scaleOptions(tel, false)
	rep := ScaleReport{
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		GitCommit: gitCommit(),
		Engine: EngineConfig{
			Shards:       core.NewEngine(opts).ShardCount(),
			MemoryBudget: opts.MemoryBudget,
			GCThreshold:  opts.GCThreshold,
			FastPath:     opts.FastPath,
			Detector:     core.NewEngine(opts).Name(),
		},
		PerPointMS: float64(perPoint) / float64(time.Millisecond),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, mix := range scaleMixes {
		var base float64
		for _, procs := range procsList {
			runtime.GOMAXPROCS(procs)
			ops, elapsed := scaleOnePoint(mix, procs, perPoint, tel)
			p := ScalePoint{
				Mix:            mix.name,
				Procs:          procs,
				Ops:            ops,
				ElapsedMS:      float64(elapsed) / float64(time.Millisecond),
				OpsPerSec:      float64(ops) / elapsed.Seconds(),
				Oversubscribed: procs > rep.NumCPU,
			}
			if base == 0 {
				base = p.OpsPerSec
			}
			p.Speedup = p.OpsPerSec / base
			rep.Points = append(rep.Points, p)
			progress(fmt.Sprintf("scale: %s procs=%d %.0f ops/sec (%.2fx)",
				p.Mix, p.Procs, p.OpsPerSec, p.Speedup))
		}
	}
	return rep
}

// scaleOptions is the engine configuration every sweep point runs with.
func scaleOptions(tel *obs.Telemetry, lockset bool) core.Options {
	opts := core.DefaultOptions()
	opts.MemoryBudget = 1 << 20
	opts.Telemetry = tel
	if lockset {
		opts.FastPath = false
	}
	return opts
}

// scaleOnePoint measures one cell of the sweep: procs workers hammer a
// fresh engine until the deadline, and the total operation count and
// true elapsed time come back.
func scaleOnePoint(mix scaleMix, procs int, perPoint time.Duration, tel *obs.Telemetry) (int64, time.Duration) {
	e := core.NewEngine(scaleOptions(tel, mix.lockset))

	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n int64
			for i := 0; !stop.Load(); i++ {
				mix.op(e, w, i)
				n++
			}
			total.Add(n)
		}(w)
	}
	time.Sleep(perPoint)
	stop.Store(true)
	wg.Wait()
	return total.Load(), time.Since(start)
}

// FormatScale renders the report as the aligned text table racebench
// prints alongside the JSON artifact.
func FormatScale(rep ScaleReport) string {
	s := fmt.Sprintf("Scalability sweep (NumCPU=%d, %s)\n", rep.NumCPU, rep.GoVersion)
	s += fmt.Sprintf("%-10s %6s %14s %10s\n", "mix", "procs", "ops/sec", "speedup")
	for _, p := range rep.Points {
		over := ""
		if p.Oversubscribed {
			over = "  (oversubscribed)"
		}
		s += fmt.Sprintf("%-10s %6d %14.0f %9.2fx%s\n", p.Mix, p.Procs, p.OpsPerSec, p.Speedup, over)
	}
	return s
}

// MarshalScale serializes the report for BENCH_scale.json.
func MarshalScale(rep ScaleReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
