package bench

import (
	"fmt"
	"io"
	"time"

	"goldilocks/internal/core"
	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
	"goldilocks/internal/static"
)

// Mode selects the Table 1 column.
type Mode string

// The four measurement configurations of Table 1.
const (
	Uninstrumented Mode = "uninstrumented" // interpreter, race detection off
	NoStatic       Mode = "nostatic"       // Goldilocks, no static elimination
	WithChord      Mode = "chord"          // Goldilocks + Chord-style elimination
	WithRcc        Mode = "rcc"            // Goldilocks + RccJava-style elimination
)

// Metrics is one measured run.
type Metrics struct {
	Elapsed time.Duration
	Races   int
	Engine  core.Stats
	Runtime jrt.Stats
	// SafeSites / TotalSites report the static analysis outcome.
	SafeSites, TotalSites int
	// Commits and Aborts are transaction counts (Table 3).
	Commits, Aborts uint64
}

// RunOptions tunes a harness run.
type RunOptions struct {
	Mode Mode
	// FullScale selects the Table 1 parameters instead of test-scale.
	FullScale bool
	// Deterministic runs under the seeded scheduler (tests); benchmarks
	// use the free scheduler.
	Deterministic bool
	Seed          int64
	// EngineOptions overrides the detector configuration (ablations);
	// nil means the paper configuration (DefaultOptions +
	// DisableAfterRace).
	EngineOptions *core.Options
	// Out receives program output; nil discards it.
	Out io.Writer
}

// Run executes one workload under one configuration and reports
// measurements. Front-end work (parse, check, static analysis) happens
// before the clock starts, matching the paper's ahead-of-time use of the
// static tools.
func Run(w Workload, opts RunOptions) (Metrics, error) {
	src := w.Instantiate(opts.FullScale)
	prog, err := mj.Parse(src)
	if err != nil {
		return Metrics{}, fmt.Errorf("%s: %w", w.Name, err)
	}
	if err := mj.Check(prog); err != nil {
		return Metrics{}, fmt.Errorf("%s: %w", w.Name, err)
	}

	var mask []bool
	var m Metrics
	m.TotalSites = mj.NumSites(prog)
	switch opts.Mode {
	case WithChord:
		r := static.Chord(prog)
		mask = r.Apply(prog)
		m.SafeSites = r.SafeSiteCount()
	case WithRcc:
		r, err := static.Rcc(prog)
		if err != nil {
			return Metrics{}, fmt.Errorf("%s: rcc: %w", w.Name, err)
		}
		mask = r.Apply(prog)
		m.SafeSites = r.SafeSiteCount()
	}

	// DisableArrayAfterRace mirrors the paper's measurement policy; the
	// workloads are race-free, so it only matters if a bug introduces a
	// race (where it keeps the run measurable rather than flooding).
	cfg := jrt.Config{Policy: jrt.Log, Mode: jrt.Free, DisableArrayAfterRace: true}
	if opts.Deterministic {
		cfg.Mode = jrt.Deterministic
		cfg.Seed = opts.Seed
	}
	var engine *core.Engine
	if opts.Mode != Uninstrumented {
		eopts := core.DefaultOptions()
		eopts.DisableAfterRace = true
		if opts.EngineOptions != nil {
			eopts = *opts.EngineOptions
		}
		engine = core.NewEngine(eopts)
		cfg.Detector = engine
	}
	rt := jrt.NewRuntime(cfg)
	interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt, Out: opts.Out, SiteNoCheck: mask})
	if err != nil {
		return Metrics{}, fmt.Errorf("%s: %w", w.Name, err)
	}

	start := time.Now()
	races, err := interp.Run()
	m.Elapsed = time.Since(start)
	if err != nil {
		return Metrics{}, fmt.Errorf("%s: run: %w", w.Name, err)
	}
	m.Races = len(races)
	m.Runtime = rt.Stats()
	if engine != nil {
		m.Engine = engine.Stats()
	}
	m.Commits, m.Aborts = interp.TMStats()
	return m, nil
}
