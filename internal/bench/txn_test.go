package bench

import (
	"encoding/json"
	"testing"
)

// TestTxnSweepSmoke runs a miniature sweep and checks the report's
// structural invariants: every mix×threads cell present, commit
// accounting exact, the contended mix short-circuiting through the
// transactions rule, and the governed mix actually degrading.
func TestTxnSweepSmoke(t *testing.T) {
	// 1024 threads keeps the smoke fast but gives the governed mix a
	// working set (4 fields per thread) that actually breaches its budget.
	threads := []int{4, 1024}
	const per = 8
	rep := Txn(threads, per, func(string) {})

	if want := len(txnMixes) * len(threads); len(rep.Points) != want {
		t.Fatalf("points = %d, want %d", len(rep.Points), want)
	}
	sawGoverned := false
	for _, p := range rep.Points {
		if p.Commits != int64(p.Threads)*per {
			t.Errorf("%s/%d: commits = %d, want %d", p.Mix, p.Threads, p.Commits, int64(p.Threads)*per)
		}
		if p.CommitsPerSec <= 0 {
			t.Errorf("%s/%d: commits/sec = %f", p.Mix, p.Threads, p.CommitsPerSec)
		}
		if p.Races != 0 {
			t.Errorf("%s/%d: %d races in a race-free workload", p.Mix, p.Threads, p.Races)
		}
		if p.Mix == "contended" && p.Threads > 1 && p.XactHits == 0 {
			t.Errorf("contended/%d: no transactions-rule short circuits", p.Threads)
		}
		if p.Mix == "governed" && p.Threads == 1024 {
			sawGoverned = true
			if p.Escalations == 0 {
				t.Errorf("governed/1024: governor never escalated under a %d-var load", p.VarsTracked)
			}
		}
	}
	if !sawGoverned {
		t.Fatal("governed mix missing from sweep")
	}

	data, err := MarshalTxn(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back TxnReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Points) != len(rep.Points) {
		t.Errorf("round-trip lost points: %d != %d", len(back.Points), len(rep.Points))
	}
	if FormatTxn(rep) == "" {
		t.Error("empty formatted table")
	}
}

// TestDefaultTxnThreadsReachesThousands pins the artifact contract:
// the default ladder must measure commit processing at >= 1000 threads.
func TestDefaultTxnThreadsReachesThousands(t *testing.T) {
	for _, full := range []bool{false, true} {
		max := 0
		for _, n := range DefaultTxnThreads(full) {
			if n > max {
				max = n
			}
		}
		if max < 1000 {
			t.Errorf("full=%v: max threads %d < 1000", full, max)
		}
	}
}
