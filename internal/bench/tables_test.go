package bench_test

import (
	"strings"
	"testing"

	"goldilocks/internal/bench"
)

// TestTable1SmallScale generates a complete Table 1 at test scale and
// sanity-checks its structure. Absolute timings are not asserted — only
// that every cell is populated and slowdowns are sane.
func TestTable1SmallScale(t *testing.T) {
	rows, err := bench.Table1(false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	for _, r := range rows {
		if r.Uninstrumented <= 0 || r.NoStatic <= 0 || r.Chord <= 0 || r.Rcc <= 0 {
			t.Errorf("%s: missing timing: %+v", r.Name, r)
		}
		if r.NoStaticSlowdown <= 0 {
			t.Errorf("%s: bad slowdown %v", r.Name, r.NoStaticSlowdown)
		}
	}
	out := bench.FormatTable1(rows)
	for _, name := range []string{"colt", "moldyn", "sor2", "tsp"} {
		if !strings.Contains(out, name) {
			t.Errorf("formatted table missing %s", name)
		}
	}
}

// TestTable2SmallScale checks Table 2 generation and its headline
// claims at small scale.
func TestTable2SmallScale(t *testing.T) {
	rows, err := bench.Table2(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]bench.Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The paper's qualitative claims: moldyn/raytracer keep most
	// accesses checked under Chord, and drop substantially under Rcc.
	if m := byName["moldyn"]; m.ChordAccesses < 0.5 || m.RccAccesses > m.ChordAccesses/2 {
		t.Errorf("moldyn coverage shape wrong: %+v", m)
	}
	if r := byName["raytracer"]; r.ChordAccesses < 0.5 || r.RccAccesses > r.ChordAccesses/2 {
		t.Errorf("raytracer coverage shape wrong: %+v", r)
	}
	if c := byName["colt"]; c.ChordAccesses > 0.1 {
		t.Errorf("colt should be almost fully eliminated: %+v", c)
	}
	if s := bench.FormatTable2(rows); !strings.Contains(s, "Accesses checked") {
		t.Error("Table 2 header missing")
	}
}

// TestTable3SmallScale checks Table 3 generation: transaction counts
// grow with the thread count and slowdown stays moderate.
func TestTable3SmallScale(t *testing.T) {
	rows, err := bench.Table3([]int{2, 5, 10}, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Transactions <= rows[i-1].Transactions {
			t.Errorf("transactions did not grow: %d then %d", rows[i-1].Transactions, rows[i].Transactions)
		}
		if rows[i].Accesses <= rows[i-1].Accesses {
			t.Errorf("accesses did not grow: %d then %d", rows[i-1].Accesses, rows[i].Accesses)
		}
	}
	if s := bench.FormatTable3(rows); !strings.Contains(s, "#Transactions") {
		t.Error("Table 3 header missing")
	}
}

// TestFigures reproduces the lockset evolutions of Figures 6 and 7.
func TestFigures(t *testing.T) {
	f6 := bench.Figure6()
	for _, want := range []string{
		"LS(o.data) = {T1}",
		"LS(o.data) = {T1, o20.lock}",
		"LS(o.data) = {T1, T2, o20.lock}",
		"LS(o.data) = {T1, T2, o20.lock, o21.lock}",
		"LS(o.data) = {T1, T2, T3, o20.lock, o21.lock}",
		"LS(o.data) = {T3}",
		"LS(o.data) = {T3, o21.lock}",
	} {
		if !strings.Contains(f6, want) {
			t.Errorf("Figure 6 missing %q:\n%s", want, f6)
		}
	}
	if strings.Contains(f6, "RACE") {
		t.Error("Figure 6 reported a race on the race-free Example 2")
	}

	f7 := bench.Figure7()
	for _, want := range []string{
		"LS(o.data) = {T1}",
		"LS(o.data) = {T1, o1.f2, o11.f1}",             // {T1, &head, o.nxt}
		"LS(o.data) = {T2, TL, o1.f2, o11.f0, o11.f1}", // after T2's commit
		"LS(o.data) = {T3}",
	} {
		if !strings.Contains(f7, want) {
			t.Errorf("Figure 7 missing %q:\n%s", want, f7)
		}
	}
	if strings.Contains(f7, "RACE") {
		t.Error("Figure 7 reported a race on the race-free Example 3")
	}
}

// TestMultisetLockAblation: the transaction-aware detector beats the
// transaction-oblivious treatment (exposing the lock-based transaction
// implementation) on detector work per run, and both stay race-free.
func TestMultisetLockAblation(t *testing.T) {
	aware, err := bench.Run(bench.MultisetWorkload(5, 6), bench.RunOptions{Mode: bench.NoStatic, Deterministic: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	oblivious, err := bench.Run(bench.MultisetLockWorkload(5, 6), bench.RunOptions{Mode: bench.NoStatic, Deterministic: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if aware.Races != 0 || oblivious.Races != 0 {
		t.Fatalf("unexpected races: aware=%d oblivious=%d", aware.Races, oblivious.Races)
	}
	if aware.Commits == 0 {
		t.Error("transaction-aware run committed no transactions")
	}
	// The oblivious variant puts every slot access and the lock traffic
	// through the detector individually.
	if oblivious.Engine.EventsEnqueued <= aware.Engine.EventsEnqueued {
		t.Errorf("oblivious events %d <= aware %d; lock traffic should dominate",
			oblivious.Engine.EventsEnqueued, aware.Engine.EventsEnqueued)
	}
}

// TestDetectorComparison: the precise detectors report nothing on the
// race-free workloads; the Eraser-style baselines false-alarm on at
// least the ownership-transfer-style ones.
func TestDetectorComparison(t *testing.T) {
	rows, err := bench.DetectorComparison(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	falseAlarms := 0
	for _, r := range rows {
		if n := r.Reports["goldilocks"]; n != 0 {
			t.Errorf("%s: goldilocks reported %d races on a race-free workload", r.Workload, n)
		}
		if n := r.Reports["vectorclock"]; n != 0 {
			t.Errorf("%s: vectorclock reported %d races on a race-free workload", r.Workload, n)
		}
		falseAlarms += r.Reports["eraser"] + r.Reports["basic-lockset"]
	}
	if falseAlarms == 0 {
		t.Error("baseline detectors produced no false alarms across the suite; the precision gap should be visible")
	}
	if s := bench.FormatDetectorComparison(rows); !strings.Contains(s, "goldilocks") {
		t.Error("formatting broken")
	}
}

// TestTable1RepsTakesFastest: the repetition wrapper keeps the minimum
// timing per cell.
func TestTable1RepsTakesFastest(t *testing.T) {
	rows, err := bench.Table1Reps(false, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Uninstrumented <= 0 || r.NoStatic <= 0 {
			t.Errorf("%s: empty cells: %+v", r.Name, r)
		}
	}
}
