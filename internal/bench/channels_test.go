package bench

import "testing"

// TestChannelSweepSmall runs a reduced ladder and checks the invariants
// the BENCH_channels.json artifact is trusted for: full coverage of the
// (style, workers, weight, backend) grid, zero races from the precise
// detectors on both race-free sync styles, and a recorded overhead for
// every non-baseline backend.
func TestChannelSweepSmall(t *testing.T) {
	cfg := ChannelSweepConfig{Workers: []int{2, 3}, Weights: []int{1, 4}, Iters: 8, Seed: 1}
	rep, err := ChannelSweep(cfg, func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := 2 * len(cfg.Workers) * len(cfg.Weights) * len(channelBackends)
	if len(rep.Points) != wantPoints {
		t.Fatalf("points = %d, want %d", len(rep.Points), wantPoints)
	}
	for _, p := range rep.Points {
		if p.Backend == "goldilocks" || p.Backend == "vectorclock" {
			if p.Races != 0 {
				t.Errorf("%s on %s workers=%d weight=%d: %d false races",
					p.Backend, p.Style, p.Workers, p.Weight, p.Races)
			}
		}
		if p.Backend == "none" && p.Races != 0 {
			t.Errorf("baseline reported %d races with no detector", p.Races)
		}
		if p.Overhead <= 0 {
			t.Errorf("%s/%s: overhead %.3f not recorded", p.Style, p.Backend, p.Overhead)
		}
	}
	if _, err := MarshalChannels(rep); err != nil {
		t.Fatal(err)
	}
}

// TestChannelLadderDeterministic: the same seed must reproduce the same
// race counts (the timing columns may differ).
func TestChannelLadderDeterministic(t *testing.T) {
	src := instantiateLadder(channelLadderSrc, 3, 2, 5)
	for _, b := range channelBackends {
		r1, _, err := runLadder(src, b.mk(), 7)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		r2, _, err := runLadder(src, b.mk(), 7)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		if r1 != r2 {
			t.Errorf("%s: race count not deterministic: %d vs %d", b.name, r1, r2)
		}
	}
}
