package core

import (
	"testing"

	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/hb"
)

// chanBackends returns fresh instances of every precise detector that
// must agree on channel-bearing traces.
func chanBackends() map[string]detect.Detector {
	return map[string]detect.Detector{
		"spec":        NewSpecEngine(),
		"engine":      New(),
		"vectorclock": hb.NewDetector(),
	}
}

// runTrace feeds tr to d and returns whether any race was reported.
func runTrace(t *testing.T, d detect.Detector, tr *event.Trace) bool {
	t.Helper()
	racy := false
	for i := 0; i < tr.Len(); i++ {
		if len(d.Step(tr.At(i))) > 0 {
			racy = true
		}
	}
	return racy
}

// chanTraceCases is the channel-semantics truth table every backend must
// reproduce: the pair (trace, racy?) for each synchronization shape.
var chanTraceCases = []struct {
	name string
	racy bool
	tr   func() *event.Trace
}{
	{
		// Unbuffered message transfer: send releases, recv acquires.
		name: "unbuffered-transfer-orders",
		racy: false,
		tr: func() *event.Trace {
			return event.NewBuilder().
				ChanMake(1, 10, 0).
				Write(1, 20, 0).
				ChanSend(1, 10).
				ChanRecv(2, 10).
				Write(2, 20, 0).
				Trace()
		},
	},
	{
		// No channel op between the accesses: the race stays visible.
		name: "no-sync-races",
		racy: true,
		tr: func() *event.Trace {
			return event.NewBuilder().
				ChanMake(1, 10, 0).
				Write(1, 20, 0).
				Write(2, 20, 0).
				ChanSend(1, 10).
				ChanRecv(2, 10).
				Trace()
		},
	},
	{
		// Buffered, capacity 2: send #0 pairs with recv #0 across the
		// conveyor even with another message in between.
		name: "buffered-fifo-pairing",
		racy: false,
		tr: func() *event.Trace {
			return event.NewBuilder().
				ChanMake(1, 10, 2).
				Write(1, 20, 0).
				ChanSend(1, 10). // slot 0
				ChanSend(1, 10). // slot 1
				ChanRecv(2, 10). // slot 0: acquires the first send
				Write(2, 20, 0).
				Trace()
		},
	},
	{
		// Capacity conveyor back-edge: recv #0 happens-before send #W, so
		// the receiver's write is ordered before the sender's later write.
		name: "conveyor-back-edge",
		racy: false,
		tr: func() *event.Trace {
			return event.NewBuilder().
				ChanMake(1, 10, 1).
				ChanSend(1, 10). // slot 0 (#0)
				Write(2, 20, 0).
				ChanRecv(2, 10). // slot 0 (#0): releases room
				ChanSend(1, 10). // slot 0 (#1): acquires the recv edge
				Write(1, 20, 0).
				Trace()
		},
	},
	{
		// Two sends into spare buffer capacity use different slots, so —
		// exactly as in Go — concurrent senders do not synchronize with
		// each other.
		name: "concurrent-sends-race",
		racy: true,
		tr: func() *event.Trace {
			return event.NewBuilder().
				ChanMake(1, 10, 2).
				Write(1, 20, 0).
				ChanSend(1, 10). // slot 0
				ChanSend(2, 10). // slot 1: no edge from slot 0
				Write(2, 20, 0).
				Trace()
		},
	},
	{
		// Close is a broadcast release: a recv from the drained closed
		// channel acquires it (still an HB edge, zero-value transfer).
		name: "recv-from-closed-orders",
		racy: false,
		tr: func() *event.Trace {
			return event.NewBuilder().
				ChanMake(1, 10, 0).
				Write(1, 20, 0).
				ChanClose(1, 10).
				ChanRecv(2, 10). // drain: acquires the close broadcast
				Write(2, 20, 0).
				Trace()
		},
	},
	{
		// A drain recv releases nothing: a second thread draining later
		// sees the close, not the first drainer's accesses.
		name: "drain-recv-releases-nothing",
		racy: true,
		tr: func() *event.Trace {
			return event.NewBuilder().
				ChanMake(1, 10, 0).
				ChanClose(1, 10).
				Write(2, 20, 0).
				ChanRecv(2, 10). // drain by T2
				ChanRecv(3, 10). // drain by T3: no edge from T2
				Write(3, 20, 0).
				Trace()
		},
	},
	{
		// The closed element carries the closer's history (including what
		// it acquired from earlier recvs) but NOT what other senders did
		// after their sends.
		name: "close-carries-closer-history-only",
		racy: true,
		tr: func() *event.Trace {
			return event.NewBuilder().
				ChanMake(1, 10, 1).
				ChanSend(2, 10).
				Write(2, 20, 0). // after T2's send: the close never sees this
				ChanRecv(1, 10).
				ChanClose(1, 10).
				ChanRecv(3, 10). // drain
				Write(3, 20, 0).
				Trace()
		},
	},
}

// TestChanSemanticsMatrix pins the channel happens-before truth table on
// every precise backend and on the extended-HB oracle.
func TestChanSemanticsMatrix(t *testing.T) {
	for _, tc := range chanTraceCases {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.tr()
			if err := tr.Validate(); err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
			for name, d := range chanBackends() {
				if got := runTrace(t, d, tr); got != tc.racy {
					t.Errorf("%s: racy = %v, want %v", name, got, tc.racy)
				}
			}
			o := hb.NewOracle(tr)
			if _, got := o.FirstRacePos(); got != tc.racy {
				t.Errorf("oracle: racy = %v, want %v", got, tc.racy)
			}
		})
	}
}

// TestChanInvalidOps pins the validity rules: operations that could not
// have completed in a real execution are rejected by Trace.Validate.
func TestChanInvalidOps(t *testing.T) {
	cases := []struct {
		name string
		tr   *event.Trace
	}{
		{"send-unmade", event.NewBuilder().ChanSend(1, 10).Trace()},
		{"recv-unmade", event.NewBuilder().ChanRecv(1, 10).Trace()},
		{"close-unmade", event.NewBuilder().ChanClose(1, 10).Trace()},
		{"double-make", event.NewBuilder().ChanMake(1, 10, 0).ChanMake(1, 10, 0).Trace()},
		{"send-closed", event.NewBuilder().ChanMake(1, 10, 1).ChanClose(1, 10).ChanSend(1, 10).Trace()},
		{"double-close", event.NewBuilder().ChanMake(1, 10, 0).ChanClose(1, 10).ChanClose(1, 10).Trace()},
		{"recv-empty-open", event.NewBuilder().ChanMake(1, 10, 1).ChanRecv(1, 10).Trace()},
		{"send-overflow", event.NewBuilder().ChanMake(1, 10, 1).ChanSend(1, 10).ChanSend(2, 10).Trace()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.tr.Validate(); err == nil {
				t.Fatalf("Validate accepted an impossible channel linearization")
			}
		})
	}
}

// TestEngineDropsInvalidChanOps pins the production engine's tolerance:
// an invalid channel op is dropped (no enqueue, no panic), costing at
// most a synchronization edge.
func TestEngineDropsInvalidChanOps(t *testing.T) {
	e := New()
	e.Sync(event.ChanSend(1, 10)) // never made: dropped
	if n := e.ListLen(); n != 0 {
		t.Fatalf("invalid send was enqueued (list len %d)", n)
	}
	e.Sync(event.ChanMake(1, 10, 0))
	e.Sync(event.ChanSend(1, 10))
	if n := e.ListLen(); n != 2 {
		t.Fatalf("valid chmake+send should enqueue 2 cells, got %d", n)
	}
}
