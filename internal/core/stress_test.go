package core

import (
	"sync"
	"testing"

	"goldilocks/internal/event"
)

// TestPartialEagerGCStress hammers one engine from many goroutines while
// collection runs continuously at a tiny GCThreshold: concurrent
// checkers, concurrent partially-eager advances, explicit Collect calls,
// and stats reads all interleave. Run under `go test -race` (CI does)
// this doubles as the detector-on-the-detector check: the engine itself
// must be free of data races. The seeded race between two lock-less
// writers of one variable must survive all the trimming — collection may
// never lose a race.
func TestPartialEagerGCStress(t *testing.T) {
	opts := DefaultOptions()
	opts.GCThreshold = 32 // collect constantly
	opts.GCTrimFraction = 0.25
	e := NewEngine(opts)

	const (
		workers = 8
		rounds  = 400
	)
	seeded := event.Variable{Obj: 999, Field: 0}

	// Seeded race, part 1: T100 writes X with no protection before the
	// storm starts.
	if r := e.Write(100, seeded.Obj, seeded.Field); r != nil {
		t.Fatalf("first write raced: %v", r)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid := event.Tid(w + 1)
			lock := event.Addr(2000 + w)
			obj := event.Addr(3000 + w)
			for i := 0; i < rounds; i++ {
				e.Sync(event.Acquire(tid, lock))
				e.Write(tid, obj, event.FieldID(i%4))
				e.Read(tid, obj, event.FieldID(i%4))
				e.Sync(event.Release(tid, lock))
				if i%64 == 0 {
					e.Collect()
					_ = e.Stats()
					_ = e.ListLen()
				}
			}
		}()
	}
	wg.Wait()

	// Seeded race, part 2: T101 writes X. No synchronization connects
	// T100 and T101 (disjoint locks everywhere), so this must race no
	// matter how much of the event list was collected in between.
	if r := e.Write(101, seeded.Obj, seeded.Field); r == nil {
		t.Fatal("seeded race lost: collection dropped the evidence")
	}

	st := e.Stats()
	if st.Collections == 0 {
		t.Error("no collections ran at GCThreshold=32")
	}
	if st.Races != 1 {
		t.Errorf("races = %d, want exactly the seeded one", st.Races)
	}
	// Per-worker accesses were lock-protected and per-worker-private:
	// none of them may be misreported as races.
	if n := e.ListLen(); n > 10*32 {
		t.Errorf("list length %d: collection not keeping up", n)
	}
}

// TestGovernorStressConcurrent drives the governor from many goroutines
// at once (escalation, aggressive collection, and eager sweeps racing
// with checks), for the -race run in CI.
func TestGovernorStressConcurrent(t *testing.T) {
	opts := DefaultOptions()
	opts.GCThreshold = 0
	opts.MemoryBudget = 48
	e := NewEngine(opts)

	e.Write(100, 999, 0) // seeded race, part 1

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid := event.Tid(w + 1)
			for i := 0; i < 300; i++ {
				e.Sync(event.Acquire(tid, event.Addr(2000+w)))
				e.Write(tid, event.Addr(3000+w), 0)
				e.Sync(event.Release(tid, event.Addr(2000+w)))
			}
		}()
	}
	wg.Wait()

	if r := e.Write(101, 999, 0); r == nil {
		t.Fatal("seeded race lost under governor stress")
	}
	if n := e.ListLen(); n > opts.MemoryBudget*2 {
		t.Errorf("list length %d far exceeds budget %d", n, opts.MemoryBudget)
	}
}
