package core

import (
	"testing"

	"goldilocks/internal/event"
)

func TestSyncListEnqueueAndSnapshot(t *testing.T) {
	l := newSyncList()
	if l.len() != 0 {
		t.Fatal("fresh list not empty")
	}
	s0 := l.snapshotTail()
	if s0.filled {
		t.Fatal("sentinel marked filled")
	}
	n := l.enqueue(event.Acquire(1, 20))
	if n != 1 || l.len() != 1 {
		t.Errorf("len after enqueue = %d", n)
	}
	if !s0.filled || s0.action.Kind != event.KindAcquire {
		t.Error("enqueue did not fill the old sentinel")
	}
	s1 := l.snapshotTail()
	if s1 == s0 || s1.filled {
		t.Error("tail did not advance to a fresh sentinel")
	}
	if s0.next != s1 {
		t.Error("cells not linked")
	}
	if s1.seq != s0.seq+1 {
		t.Errorf("seq %d after %d", s1.seq, s0.seq)
	}
}

func TestSyncListTrimRespectsRefs(t *testing.T) {
	l := newSyncList()
	var cells []*cell
	for i := 0; i < 10; i++ {
		cells = append(cells, l.snapshotTail())
		l.enqueue(event.Release(1, 20))
	}
	// Pin the 4th cell.
	cells[3].refs.Add(1)
	dropped := l.trim(nil)
	if dropped != 3 {
		t.Errorf("dropped = %d, want 3 (stop at pinned cell)", dropped)
	}
	if l.len() != 7 {
		t.Errorf("len = %d", l.len())
	}
	// Unpin and trim fully.
	cells[3].refs.Add(-1)
	dropped = l.trim(nil)
	if dropped != 7 {
		t.Errorf("second trim dropped = %d, want 7", dropped)
	}
	if l.len() != 0 {
		t.Errorf("len = %d after full trim", l.len())
	}
	if l.collected.Load() != 10 {
		t.Errorf("collected counter = %d", l.collected.Load())
	}
}

func TestSyncListTrimLimit(t *testing.T) {
	l := newSyncList()
	var cells []*cell
	for i := 0; i < 8; i++ {
		cells = append(cells, l.snapshotTail())
		l.enqueue(event.Release(1, 20))
	}
	dropped := l.trim(cells[5])
	if dropped != 5 {
		t.Errorf("dropped = %d, want 5 (limit)", dropped)
	}
}

func TestSyncListCellAt(t *testing.T) {
	l := newSyncList()
	if l.cellAt(0) != nil {
		t.Error("cellAt on empty list should be nil")
	}
	first := l.snapshotTail()
	for i := 0; i < 5; i++ {
		l.enqueue(event.Acquire(1, 20))
	}
	if got := l.cellAt(0); got != first {
		t.Error("cellAt(0) is not head")
	}
	if got := l.cellAt(2); got.seq != first.seq+2 {
		t.Errorf("cellAt(2).seq = %d", got.seq)
	}
	// Past the end: clamps to the last filled cell.
	if got := l.cellAt(50); got.seq != first.seq+4 {
		t.Errorf("cellAt(50).seq = %d, want last filled", got.seq)
	}
}

func TestWalkUntilEarlyExit(t *testing.T) {
	l := newSyncList()
	start := l.snapshotTail()
	l.enqueue(event.Release(1, 20))        // adds lock 20 (T1 owns)
	l.enqueue(event.Acquire(2, 20))        // adds T2 -> verdict
	l.enqueue(event.VolatileRead(3, 1, 0)) // never visited
	end := l.snapshotTail()

	ls := NewLockset(ThreadElem(1))
	found, viaTL, stopped, n := walkUntil(ls, start, end, ruleSet{sem: event.TxnSharedVariable}, false, 1, 2, false, nil)
	if !found || viaTL {
		t.Fatalf("found=%v viaTL=%v", found, viaTL)
	}
	if n != 2 {
		t.Errorf("visited %d cells, want 2 (early exit)", n)
	}
	if stopped == end {
		t.Error("claimed to reach end despite early exit")
	}

	// A non-member target walks to the end.
	ls2 := NewLockset(ThreadElem(1))
	found, _, stopped, n = walkUntil(ls2, start, end, ruleSet{sem: event.TxnSharedVariable}, false, 1, 9, false, nil)
	if found {
		t.Error("found absent thread")
	}
	if stopped != end || n != 3 {
		t.Errorf("stopped short: n=%d", n)
	}
}
