package core

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
)

// Options configures the optimized Engine. The zero value is not useful;
// start from DefaultOptions. Each toggle corresponds to an
// implementation technique of Section 5, so ablation benchmarks can
// measure its contribution.
type Options struct {
	// SC1 enables the same-thread short-circuit check.
	SC1 bool
	// SC2 enables the alock short-circuit check (a lock held by the
	// previous accessor at access time is held by the current accessor
	// now).
	SC2 bool
	// SC3 enables the two-thread filtered traversal before a full
	// lockset computation.
	SC3 bool
	// SC3MaxSegment caps the event-list segment length SC3 will
	// traverse; longer checks go straight to the full (memoized) walk,
	// whose result advances the Info so the long segment is never
	// rescanned. Zero means no cap.
	SC3MaxSegment int
	// XactSC enables the transactions short-circuit: two transactional
	// accesses never race.
	XactSC bool
	// Memoize stores the lockset computed by a full traversal back into
	// the Info record and advances its position, so the next check
	// resumes where this one stopped.
	Memoize bool
	// HBCache records, on each Info, the threads already proven to be
	// ordered after its access. Happens-before is transitive through
	// program order, so once an edge to thread t is established every
	// later access by t is ordered too; repeated mixed
	// plain/transactional checks then cost O(1).
	HBCache bool
	// FastPath enables the FastTrack-style epoch check in front of the
	// lockset machinery: a plain access whose variable is still owned by
	// the accessing thread (same last writer, no foreign readers for a
	// write) is checked and installed in O(1), without touching the
	// happens-before cache, the walk machinery, or the provenance path.
	// The fast path is a derived view of the lockset state — it keeps no
	// state of its own — and escalates to the full engine the moment
	// ownership transfers (a foreign write/read-shared epoch, a
	// transactional access, a traced variable). It is exact: verdicts,
	// Figure 5 rule fires, and every Stats counter except FastPathHits
	// are identical with the fast path on and off, which the conformance
	// matrix (internal/conformance) enforces over the whole corpus.
	FastPath bool
	// DisableAfterRace stops checking a variable after its first race,
	// matching the paper's measurement methodology. Arrays: the caller
	// (runtime) is responsible for widening this to whole arrays.
	DisableAfterRace bool
	// GCThreshold triggers event-list garbage collection when the list
	// grows beyond this many cells. Zero disables automatic collection.
	GCThreshold int
	// GCTrimFraction is the fraction of the list that partially-eager
	// evaluation tries to free per collection (the paper trims the
	// first 10%).
	GCTrimFraction float64
	// PartialEager enables partially-eager lockset evaluation during
	// collection: Infos stuck at the head of the list have their
	// locksets advanced so the prefix can be freed.
	PartialEager bool
	// TxnSemantics selects how commits enter the synchronizes-with
	// relation (Section 3's alternative strong-atomicity
	// interpretations). The zero value is the paper's shared-variable
	// semantics.
	TxnSemantics event.TxnSemantics
	// OnError selects what the engine does when a detector check
	// panics: quarantine the offending variable (the zero value) and
	// let the monitored program continue, or abort by re-raising.
	OnError resilience.ErrorPolicy
	// MemoryBudget caps the retained event-list cells. When the list
	// exceeds it, the memory governor climbs the degradation ladder
	// (aggressive collection → cache shedding with fully-eager sweeps →
	// short-circuit-only checking) instead of letting the process OOM.
	// Zero disables the governor.
	MemoryBudget int
	// VarShards is the number of stripes the variable table is split
	// into. Zero means the default (64); other values are rounded up to
	// the next power of two. Shard count is a pure scalability knob —
	// verdicts must not depend on it, which the conformance matrix
	// checks by running every trace at 1 shard and at the default.
	VarShards int
	// BrokenRule, when 1..12, disables that lockset update rule (the
	// nine Figure 5 rules plus the channel rules 10–12) in this engine —
	// an intentionally unsound configuration that MUST diverge from
	// SpecEngine on some trace. It exists solely for the conformance
	// mutation tests (internal/conformance), which prove the
	// differential matrix catches rule-level bugs by injecting one and
	// watching the fuzzer find and shrink a counterexample. Rule 1 (the
	// access reset) and rule 8 (alloc) are not droppable: rule 1 is the
	// install path itself, and rule 8 is unobservable on valid traces
	// (an alloc of an address with prior state fails Trace.Validate).
	BrokenRule int
	// Injector injects faults for resilience testing; nil injects
	// nothing.
	Injector *resilience.Injector
	// Telemetry, when non-nil, receives per-rule fire counts, walk-depth
	// observations, and lockset traces (docs/OBSERVABILITY.md). Nil —
	// the default — costs the access hot path one nil-check branch per
	// instrumentation site and nothing else.
	Telemetry *obs.Telemetry
}

// DefaultOptions returns the configuration used by the paper's
// implementation: all short-circuits on, lazy evaluation with
// memoization, partially-eager collection above one million events.
func DefaultOptions() Options {
	return Options{
		SC1:            true,
		SC2:            true,
		SC3:            true,
		SC3MaxSegment:  512,
		XactSC:         true,
		Memoize:        true,
		HBCache:        true,
		FastPath:       true,
		GCThreshold:    1 << 20,
		GCTrimFraction: 0.10,
		PartialEager:   true,
	}
}

// Stats are cumulative counters describing the work the engine did.
// They feed the short-circuit and coverage columns of Tables 1 and 2.
type Stats struct {
	AccessesChecked uint64 // data accesses (incl. transactional) checked
	PairChecks      uint64 // happens-before checks between two Infos
	SC1Hits         uint64
	SC2Hits         uint64
	SC3Hits         uint64
	XactHits        uint64
	HBCacheHits     uint64 // pair checks resolved by the transitivity cache
	FastPathHits    uint64 // accesses fully handled by the epoch fast path
	FullWalks       uint64 // pair checks that needed a full traversal
	WalkCells       uint64 // cells visited across all traversals
	Races           uint64
	VarsTracked     uint64 // distinct variables that received state
	EventsEnqueued  uint64
	CellsCollected  uint64
	Collections     uint64
	InfosAdvanced   uint64 // partially-eager advances

	// Resilience counters (docs/ROBUSTNESS.md).
	PanicsRecovered uint64 // detector-check panics caught by the barrier
	VarsQuarantined uint64 // variables no longer checked after a panic
	GovernorRung    resilience.DegradationRung
	Escalations     uint64 // governor rung climbs
	AggressiveGCs   uint64 // rung-1 aggressive collections
	CacheSheds      uint64 // rung-2 happens-before cache sheds
	EagerSweeps     uint64 // rung-2/3 fully-eager Info sweeps
	DegradedChecks  uint64 // rung-3 checks resolved by assumption
}

// ShortCircuitRate returns the fraction of pair checks resolved by a
// short-circuit (including the transactions check), in [0, 1]; it is the
// "short-circuit checks (%)" statistic of Table 1. Like every ratio
// helper on Stats it returns 0, not NaN, when the denominator is zero
// (an engine that checked nothing).
func (s Stats) ShortCircuitRate() float64 {
	if s.PairChecks == 0 {
		return 0
	}
	sc := s.SC1Hits + s.SC2Hits + s.SC3Hits + s.XactHits + s.HBCacheHits
	return float64(sc) / float64(s.PairChecks)
}

// FastPathRate returns the fraction of checked accesses fully handled
// by the epoch fast path, in [0, 1]; 0 when no accesses were checked.
func (s Stats) FastPathRate() float64 {
	if s.AccessesChecked == 0 {
		return 0
	}
	return float64(s.FastPathHits) / float64(s.AccessesChecked)
}

// FullWalkRate returns the fraction of pair checks that fell through to
// a full lockset computation, in [0, 1]; 0 when no checks ran.
func (s Stats) FullWalkRate() float64 {
	if s.PairChecks == 0 {
		return 0
	}
	return float64(s.FullWalks) / float64(s.PairChecks)
}

// AvgWalkCells returns the mean number of event-list cells visited per
// pair check; 0 when no checks ran.
func (s Stats) AvgWalkCells() float64 {
	if s.PairChecks == 0 {
		return 0
	}
	return float64(s.WalkCells) / float64(s.PairChecks)
}

// GCReclaimRate returns the fraction of enqueued events whose cells have
// been reclaimed, in [0, 1]; 0 when nothing was enqueued.
func (s Stats) GCReclaimRate() float64 {
	if s.EventsEnqueued == 0 {
		return 0
	}
	return float64(s.CellsCollected) / float64(s.EventsEnqueued)
}

// info is the Info record of Figure 8: metadata for the last write (or
// last read per thread) of a data variable. ls is the lockset of the
// variable just after the access, valid at list position pos; the
// lockset at any later position is obtained by applying the update rules
// to the events between pos and that position.
type info struct {
	pos    *cell
	owner  event.Tid
	ls     *Lockset
	alock  event.Addr // a lock held by owner at access time; NilAddr if none
	xact   bool
	action event.Action
	// origSeq is the list position of the access itself. pos advances
	// with memoization and partially-eager evaluation; origSeq does not,
	// so race provenance can replay the examined path from the access —
	// as long as those cells are still retained.
	origSeq uint64
	// hbAfter caches threads proven ordered after this access (guarded
	// by the variable's mutex, like the rest of the record).
	hbAfter map[event.Tid]struct{}
}

// varState is the per-variable detector state, serialized by mu (the
// KL(o,d) lock of Section 5). readsAllXact tracks whether every reader
// Info since the last write is transactional, so a transactional write
// can take the commit/commit exemption for the whole reader set in O(1)
// instead of per reader — without it, Table 3's per-access cost would
// grow with the thread count.
type varState struct {
	mu           sync.Mutex
	write        *info
	reads        map[event.Tid]*info
	readsAllXact bool
	disabled     bool
	// quarantined marks a variable whose check panicked under the
	// Quarantine policy: it is never checked again (until its object is
	// reallocated, which makes it a fresh variable).
	quarantined bool
}

// varShardCount is the default number of shards the variable table is
// split into (Options.VarShards overrides it), and the fixed number of
// hot-counter stat stripes. It must be a power of two; 64 keeps shard
// contention negligible up to far more cores than commodity hardware
// has while costing ~3 KiB of empty maps per engine.
const varShardCount = 64

// varShard is one stripe of the variable table. The shard RWMutex only
// guards the map structure; each varState carries its own mutex (the
// KL(o,d) lock), so the shard lock is held just long enough to find or
// insert the state pointer.
type varShard struct {
	mu   sync.RWMutex
	vars map[event.Addr]map[event.FieldID]*varState
}

// varHash hashes (o, d); the low bits index both the variable shard
// (masked by the engine's shard count) and the stat stripe (always
// varShardCount stripes). Fibonacci-style mixing with an xor-fold keeps
// sequentially allocated addresses (the common case: the runtime hands
// out consecutive Addrs) from clustering.
func varHash(o event.Addr, d event.FieldID) uint64 {
	h := uint64(o)*0x9E3779B97F4A7C15 + uint64(uint32(d))*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return h
}

// statStripe holds the per-access hot-path counters for one stripe of
// the engine. Accesses to variables in different shards update
// different stripes, so the counters stop being a point of cross-core
// cache-line contention (they were the second bottleneck after the
// global mutexes). The trailing padding rounds the struct up to two
// cache lines so adjacent stripes never share one.
type statStripe struct {
	accessesChecked atomic.Uint64
	pairChecks      atomic.Uint64
	sc1Hits         atomic.Uint64
	sc2Hits         atomic.Uint64
	sc3Hits         atomic.Uint64
	xactHits        atomic.Uint64
	hbCacheHits     atomic.Uint64
	fastPathHits    atomic.Uint64
	fullWalks       atomic.Uint64
	walkCells       atomic.Uint64
	races           atomic.Uint64
	degradedChecks  atomic.Uint64
	_               [4]uint64
}

// threadLocks tracks the monitors one thread currently holds, for the
// alock short-circuit. Reentrant acquires are counted. Mutations
// (acquire/release) serialize on mu; readers never take it — they load
// the immutable stack snapshot published through snap, so the SC2 path
// (holds/heldLock on every pair check) is mutation-free readable.
type threadLocks struct {
	mu    sync.Mutex
	held  map[event.Addr]int
	stack []event.Addr // acquisition order; most recent last

	// snap is the published copy of stack: immutable once stored,
	// replaced wholesale whenever the set of held monitors changes
	// (reentrant acquires/releases leave it untouched).
	snap atomic.Pointer[[]event.Addr]
}

// publishLocked re-publishes the stack snapshot; caller holds tl.mu.
func (tl *threadLocks) publishLocked() {
	s := make([]event.Addr, len(tl.stack))
	copy(s, tl.stack)
	tl.snap.Store(&s)
}

// Engine is the optimized generalized-Goldilocks race detector: the
// production counterpart of SpecEngine, implementing the techniques of
// Section 5. It is safe for concurrent use, and — matching the paper's
// KL(o,d) design — data accesses serialize only per variable:
//
//   - the synchronization event list publishes its sentinel tail through
//     an atomic pointer, so the per-access position snapshot is
//     lock-free (the list mutex serializes only enqueue and trim);
//   - variable states live in a 64-way sharded table keyed by a hash of
//     (Addr, FieldID), so state lookup contends only within a shard and
//     the check itself only on that variable's own mutex;
//   - held-lock records are per thread, with an atomically published
//     stack snapshot, so the SC2 short-circuit reads them without any
//     shared lock.
//
// Synchronization actions still serialize on the event-list mutex: they
// are totally ordered in any case — that order is the extended
// synchronization order.
type Engine struct {
	opts Options
	list *syncList

	// tel is Options.Telemetry: nil when telemetry is disabled, which is
	// the single branch every instrumentation site is gated on. walkObs
	// is the walk observer feeding tel.WalkRuleHits, built once here so
	// the per-access setup does not allocate a closure.
	tel     *obs.Telemetry
	walkObs walkObserver

	// varShards has Options.VarShards entries (a power of two, default
	// varShardCount); shardMask is len(varShards)-1.
	varShards []varShard
	shardMask uint64

	locks sync.Map // event.Tid -> *threadLocks

	// chans normalizes channel operations to their conveyor-slot/closed
	// synchronization elements. chanMu is held across Normalize plus the
	// list enqueue so slot assignment order and extended-synchronization
	// order agree: the k-th send in the event list is the k-th send the
	// tracker saw. Normalization happens even in degraded mode (the list
	// is frozen but the conveyor must keep counting), and an operation
	// the tracker rejects — impossible in a valid linearization — is
	// dropped rather than crashing the monitored program.
	chanMu sync.Mutex
	chans  *event.ChanTracker

	gcMu sync.Mutex // at most one collection at a time

	// stats is striped by variable shard; Stats() sums the stripes.
	// Counters off the access hot path (collection, resilience) stay
	// single atomics below.
	stats [varShardCount]statStripe

	varsTracked   atomic.Uint64
	collections   atomic.Uint64
	infosAdvanced atomic.Uint64

	// Resilience state: the recover barrier's counters and the memory
	// governor's ladder position. degraded mirrors rung == RungDegraded
	// as a flag cheap enough for the per-check hot path.
	panicsRecovered atomic.Uint64
	varsQuarantined atomic.Uint64
	rung            atomic.Int32
	escalations     atomic.Uint64
	aggressiveGCs   atomic.Uint64
	cacheSheds      atomic.Uint64
	eagerSweeps     atomic.Uint64
	degraded        atomic.Bool
}

// NewEngine returns an Engine with the given options.
func NewEngine(opts Options) *Engine {
	nshards := opts.VarShards
	if nshards <= 0 {
		nshards = varShardCount
	}
	nshards = 1 << bits.Len(uint(nshards-1)) // round up to a power of two
	e := &Engine{
		opts:      opts,
		list:      newSyncList(),
		tel:       opts.Telemetry,
		chans:     event.NewChanTracker(),
		varShards: make([]varShard, nshards),
		shardMask: uint64(nshards - 1),
	}
	for i := range e.varShards {
		e.varShards[i].vars = make(map[event.Addr]map[event.FieldID]*varState)
	}
	if tel := e.tel; tel != nil {
		e.walkObs = func(_ *cell, rule int, _ *Lockset) { tel.WalkRuleHits[rule].Inc() }
	}
	return e
}

// New returns an Engine with DefaultOptions.
func New() *Engine { return NewEngine(DefaultOptions()) }

// Name implements detect.Detector.
func (e *Engine) Name() string { return "goldilocks" }

// Stats returns a snapshot of the engine's counters, summing the
// per-shard hot-path stripes.
func (e *Engine) Stats() Stats {
	s := Stats{
		VarsTracked:    e.varsTracked.Load(),
		EventsEnqueued: e.list.enqueued.Load(),
		CellsCollected: e.list.collected.Load(),
		Collections:    e.collections.Load(),
		InfosAdvanced:  e.infosAdvanced.Load(),

		PanicsRecovered: e.panicsRecovered.Load(),
		VarsQuarantined: e.varsQuarantined.Load(),
		GovernorRung:    resilience.DegradationRung(e.rung.Load()),
		Escalations:     e.escalations.Load(),
		AggressiveGCs:   e.aggressiveGCs.Load(),
		CacheSheds:      e.cacheSheds.Load(),
		EagerSweeps:     e.eagerSweeps.Load(),
	}
	for i := range e.stats {
		st := &e.stats[i]
		s.AccessesChecked += st.accessesChecked.Load()
		s.PairChecks += st.pairChecks.Load()
		s.SC1Hits += st.sc1Hits.Load()
		s.SC2Hits += st.sc2Hits.Load()
		s.SC3Hits += st.sc3Hits.Load()
		s.XactHits += st.xactHits.Load()
		s.HBCacheHits += st.hbCacheHits.Load()
		s.FastPathHits += st.fastPathHits.Load()
		s.FullWalks += st.fullWalks.Load()
		s.WalkCells += st.walkCells.Load()
		s.Races += st.races.Load()
		s.DegradedChecks += st.degradedChecks.Load()
	}
	return s
}

// Rung returns the memory governor's current degradation rung.
func (e *Engine) Rung() resilience.DegradationRung {
	return resilience.DegradationRung(e.rung.Load())
}

// ListLen returns the current synchronization event list length
// (exposed for GC tests and monitoring).
func (e *Engine) ListLen() int { return e.list.len() }

// VarsQuarantined returns how many variables the panic facade has
// quarantined so far (exposed so the service's flight recorder can
// detect a new quarantine without paying for a full Stats snapshot).
func (e *Engine) VarsQuarantined() uint64 { return e.varsQuarantined.Load() }

// Step implements detect.Detector: it dispatches one action of a
// linearized trace to the concurrent entry points.
func (e *Engine) Step(a event.Action) []detect.Race {
	switch a.Kind {
	case event.KindRead:
		if r := e.Read(a.Thread, a.Obj, a.Field); r != nil {
			return []detect.Race{*r}
		}
	case event.KindWrite:
		if r := e.Write(a.Thread, a.Obj, a.Field); r != nil {
			return []detect.Race{*r}
		}
	case event.KindCommit:
		return e.Commit(a.Thread, a.Reads, a.Writes)
	case event.KindAlloc:
		e.Alloc(a.Thread, a.Obj)
	case event.KindTxBegin, event.KindTxEnd:
		// Region markers annotate the trace for the serializability
		// checker (internal/detectors/regiontrack). They induce no
		// happens-before edges and fire no rule, so they must not reach
		// the event list or the telemetry: skipping them here keeps every
		// parity invariant (stats, rule fires, checkpoints) identical to
		// the marker-free trace.
	default:
		e.Sync(a)
	}
	return nil
}

// Sync records a synchronization action (acquire, release, volatile
// read/write, fork, join, channel operation) in the event list.
func (e *Engine) Sync(a event.Action) {
	if a.Kind.IsChan() {
		e.syncChan(a)
		return
	}
	if e.tel != nil {
		// One rule fire per synchronization action (rules 2–7, and 9 for
		// the commit enqueued by Commit), counted at the event level so
		// the spec and optimized engines agree on the same linearization.
		e.tel.FireKind(a.Kind)
	}
	switch a.Kind {
	case event.KindAcquire:
		tl := e.threadLocks(a.Thread)
		tl.mu.Lock()
		tl.held[a.Obj]++
		if tl.held[a.Obj] == 1 {
			tl.stack = append(tl.stack, a.Obj)
			tl.publishLocked()
		}
		tl.mu.Unlock()
	case event.KindRelease:
		tl := e.threadLocks(a.Thread)
		tl.mu.Lock()
		if tl.held[a.Obj] > 0 {
			tl.held[a.Obj]--
			if tl.held[a.Obj] == 0 {
				delete(tl.held, a.Obj)
				for i := len(tl.stack) - 1; i >= 0; i-- {
					if tl.stack[i] == a.Obj {
						tl.stack = append(tl.stack[:i], tl.stack[i+1:]...)
						break
					}
				}
				tl.publishLocked()
			}
		}
		tl.mu.Unlock()
	}
	if e.degraded.Load() {
		// Rung 3: the event list is frozen. Lock tracking above stays
		// live (it feeds the short-circuits), but no cell is appended,
		// hard-bounding memory.
		return
	}
	n := e.list.enqueue(a)
	if e.opts.GCThreshold > 0 && n > e.opts.GCThreshold {
		e.Collect()
	}
	if e.opts.MemoryBudget > 0 && n+e.opts.Injector.Pressure() > e.opts.MemoryBudget {
		e.govern()
	}
}

// syncChan records a channel operation: the tracker rewrites it to the
// conveyor-slot (or closed) element it synchronizes on, and the
// normalized action enters the event list. chanMu spans both steps so
// tracker order and list order agree (the slot a send gets is decided
// by its position in the extended synchronization order). An operation
// the tracker rejects could not have completed in any real execution;
// the production engine drops it — losing at most a synchronization
// edge, a false-positive-only degradation — instead of crashing.
func (e *Engine) syncChan(a event.Action) {
	e.chanMu.Lock()
	defer e.chanMu.Unlock()
	na, err := e.chans.Normalize(a)
	if err != nil {
		return
	}
	if e.tel != nil {
		e.tel.FireKind(na.Kind)
	}
	if e.degraded.Load() {
		// Rung 3: the list is frozen but the conveyor kept counting above,
		// so slot assignment stays consistent if the governor ever matters
		// for replay.
		return
	}
	n := e.list.enqueue(na)
	if e.opts.GCThreshold > 0 && n > e.opts.GCThreshold {
		e.Collect()
	}
	if e.opts.MemoryBudget > 0 && n+e.opts.Injector.Pressure() > e.opts.MemoryBudget {
		e.govern()
	}
}

// threadLocks returns (creating if needed) thread t's lock record.
func (e *Engine) threadLocks(t event.Tid) *threadLocks {
	if tl, ok := e.locks.Load(t); ok {
		return tl.(*threadLocks)
	}
	tl, _ := e.locks.LoadOrStore(t, &threadLocks{held: make(map[event.Addr]int)})
	return tl.(*threadLocks)
}

// lockSnapshot returns the published held-monitor stack of t, or nil.
// It is mutation-free: neither the registry nor the record is locked.
func (e *Engine) lockSnapshot(t event.Tid) []event.Addr {
	tl, ok := e.locks.Load(t)
	if !ok {
		return nil
	}
	s := tl.(*threadLocks).snap.Load()
	if s == nil {
		return nil
	}
	return *s
}

// heldLock returns the most recently acquired lock currently held by t,
// or NilAddr.
func (e *Engine) heldLock(t event.Tid) event.Addr {
	s := e.lockSnapshot(t)
	if len(s) == 0 {
		return event.NilAddr
	}
	return s[len(s)-1]
}

// holds reports whether t currently holds the monitor of o. The scan is
// linear in t's lock-nesting depth, which is small; when t is the
// thread running the check (the SC2 case) the snapshot is exact, since
// only t itself acquires and releases t's monitors.
func (e *Engine) holds(t event.Tid, o event.Addr) bool {
	for _, a := range e.lockSnapshot(t) {
		if a == o {
			return true
		}
	}
	return false
}

// Alloc records the allocation of object o: rule 8 resets the locksets
// of all of o's fields by dropping their state. The fields of one
// object hash to different shards, so every shard is visited; Alloc is
// off the access hot path, so the 64 lock acquisitions are acceptable.
func (e *Engine) Alloc(_ event.Tid, o event.Addr) {
	if e.tel != nil {
		e.tel.Fire(obs.RuleAlloc)
	}
	for i := range e.varShards {
		sh := &e.varShards[i]
		sh.mu.Lock()
		fields := sh.vars[o]
		delete(sh.vars, o)
		sh.mu.Unlock()
		for _, vs := range fields {
			vs.mu.Lock()
			vs.dropAll()
			vs.mu.Unlock()
		}
	}
}

// stateOf returns (creating if needed) the state for variable (o, d).
func (e *Engine) stateOf(o event.Addr, d event.FieldID) *varState {
	return e.stateOfHash(o, d, varHash(o, d))
}

// stateOfHash is stateOf with the variable hash already computed (the
// access path also needs it for the stat stripe).
func (e *Engine) stateOfHash(o event.Addr, d event.FieldID, h uint64) *varState {
	sh := &e.varShards[h&e.shardMask]
	if e.tel == nil {
		sh.mu.RLock()
	} else if !sh.mu.TryRLock() {
		// The shard read lock was contended (a writer holds or wants it);
		// count it, then wait normally. TryRLock costs nothing extra when
		// uncontended and runs only with telemetry enabled.
		e.tel.ShardContention.Inc()
		sh.mu.RLock()
	}
	fields, ok := sh.vars[o]
	if ok {
		if vs, ok := fields[d]; ok {
			sh.mu.RUnlock()
			return vs
		}
	}
	sh.mu.RUnlock()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	fields, ok = sh.vars[o]
	if !ok {
		fields = make(map[event.FieldID]*varState)
		sh.vars[o] = fields
	}
	vs, ok := fields[d]
	if !ok {
		vs = &varState{}
		fields[d] = vs
		e.varsTracked.Add(1)
	}
	return vs
}

// lookupState returns the state for (o, d) if it exists, without
// creating it.
func (e *Engine) lookupState(o event.Addr, d event.FieldID) *varState {
	sh := &e.varShards[varHash(o, d)&e.shardMask]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fields, ok := sh.vars[o]
	if !ok {
		return nil
	}
	return fields[d]
}

func (vs *varState) dropAll() {
	if vs.write != nil {
		vs.write.release()
		vs.write = nil
	}
	for _, in := range vs.reads {
		in.release()
	}
	vs.reads = nil
	vs.disabled = false
	vs.quarantined = false
}

func (in *info) release() { in.pos.refs.Add(-1) }
