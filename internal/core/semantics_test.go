package core_test

import (
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/hb"
	"goldilocks/internal/tracegen"
)

// TestTxnSemanticsProperty extends the Theorem 1 property to every
// implemented transaction semantics: under each interpretation of
// strong atomicity, the spec engine, the optimized engine, and the
// vector-clock detector must agree with the semantics-parameterized
// oracle on transaction-dense random traces.
func TestTxnSemanticsProperty(t *testing.T) {
	cfg := tracegen.Default()
	cfg.TxnBias = 0.6
	cfg.SyncBias = 0.3
	cfg.Steps = 70
	for _, sem := range event.AllTxnSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			for seed := int64(0); seed < 200; seed++ {
				tr := tracegen.FromSeedConfig(seed, cfg)
				pos, vars, racy := oracleFirstSem(tr, sem)

				if r := detect.FirstRace(core.NewSpecEngineSem(sem), tr); !agreesWithOracle(r, pos, vars, racy) {
					t.Fatalf("seed %d: spec = %v, oracle pos %d vars %v racy %v", seed, r, pos, vars, racy)
				}
				opts := core.DefaultOptions()
				opts.TxnSemantics = sem
				if r := detect.FirstRace(core.NewEngine(opts), tr); !agreesWithOracle(r, pos, vars, racy) {
					t.Fatalf("seed %d: engine = %v, oracle pos %d vars %v racy %v", seed, r, pos, vars, racy)
				}
				noSC := opts
				noSC.SC1, noSC.SC2, noSC.SC3, noSC.XactSC = false, false, false, false
				if r := detect.FirstRace(core.NewEngine(noSC), tr); !agreesWithOracle(r, pos, vars, racy) {
					t.Fatalf("seed %d: engine-noSC = %v, oracle pos %d vars %v racy %v", seed, r, pos, vars, racy)
				}
				if r := detect.FirstRace(hb.NewDetectorSem(sem), tr); !agreesWithOracle(r, pos, vars, racy) {
					t.Fatalf("seed %d: vectorclock = %v, oracle pos %d vars %v racy %v", seed, r, pos, vars, racy)
				}
			}
		})
	}
}

func oracleFirstSem(tr *event.Trace, sem event.TxnSemantics) (int, map[string]bool, bool) {
	return oracleFirst(hb.NewOracleSem(tr, sem))
}

// TestSemanticsOrdering: atomic-order is the strongest interpretation
// and write-to-read the weakest — a trace race-free under write-to-read
// is race-free under shared-variable, and race-free under
// shared-variable implies race-free under atomic-order.
func TestSemanticsOrdering(t *testing.T) {
	cfg := tracegen.Default()
	cfg.TxnBias = 0.6
	cfg.Steps = 70
	for seed := int64(0); seed < 200; seed++ {
		tr := tracegen.FromSeedConfig(seed, cfg)
		_, w2r := hb.NewOracleSem(tr, event.TxnWriteToRead).FirstRacePos()
		_, shared := hb.NewOracleSem(tr, event.TxnSharedVariable).FirstRacePos()
		_, atomicOrd := hb.NewOracleSem(tr, event.TxnAtomicOrder).FirstRacePos()
		if !w2r && shared {
			t.Fatalf("seed %d: race-free under write-to-read but racy under shared-variable", seed)
		}
		if !shared && atomicOrd {
			t.Fatalf("seed %d: race-free under shared-variable but racy under atomic-order", seed)
		}
	}
}

// TestSemanticsDiffer: the interpretations are genuinely different —
// there are traces whose verdicts diverge.
func TestSemanticsDiffer(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	w := event.Variable{Obj: 11, Field: 0}

	// Disjoint commits order the threads only under atomic-order:
	// T1 writes x, commits on v; T2 commits on w, then writes x.
	x := event.NewBuilder().
		Fork(1, 2).
		Write(1, 20, 0).
		Commit(1, nil, []event.Variable{v}).
		Commit(2, nil, []event.Variable{w}).
		Write(2, 20, 0).
		Trace()
	if _, racy := hb.NewOracleSem(x, event.TxnAtomicOrder).FirstRacePos(); racy {
		t.Error("atomic-order: disjoint commits must still order the writes")
	}
	if _, racy := hb.NewOracleSem(x, event.TxnSharedVariable).FirstRacePos(); !racy {
		t.Error("shared-variable: disjoint commits must not order the writes")
	}

	// A read-read commit pair orders the threads under shared-variable
	// but not under write-to-read (no publication).
	y := event.NewBuilder().
		Fork(1, 2).
		Write(1, 20, 0).
		Commit(1, []event.Variable{v}, nil). // T1 reads v
		Commit(2, []event.Variable{v}, nil). // T2 reads v
		Write(2, 20, 0).
		Trace()
	if _, racy := hb.NewOracleSem(y, event.TxnSharedVariable).FirstRacePos(); racy {
		t.Error("shared-variable: common variable must order the commits")
	}
	if _, racy := hb.NewOracleSem(y, event.TxnWriteToRead).FirstRacePos(); !racy {
		t.Error("write-to-read: read-read commits must not order the writes")
	}

	// Writer-to-reader publication orders under write-to-read too.
	z := event.NewBuilder().
		Fork(1, 2).
		Write(1, 20, 0).
		Commit(1, nil, []event.Variable{v}). // T1 writes v
		Commit(2, []event.Variable{v}, nil). // T2 reads v
		Write(2, 20, 0).
		Trace()
	if _, racy := hb.NewOracleSem(z, event.TxnWriteToRead).FirstRacePos(); racy {
		t.Error("write-to-read: publication must order the writes")
	}
}
