package core_test

import (
	"fmt"
	"sync"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/scenarios"
)

// engineConfigs enumerates option combinations the engine must be
// correct under: every short-circuit and optimization can be disabled
// without changing verdicts.
func engineConfigs() map[string]core.Options {
	all := core.DefaultOptions()
	noSC := all
	noSC.SC1, noSC.SC2, noSC.SC3, noSC.XactSC = false, false, false, false
	noMemo := all
	noMemo.Memoize = false
	aggressiveGC := all
	aggressiveGC.GCThreshold = 4
	aggressiveGC.GCTrimFraction = 0.5
	noEager := aggressiveGC
	noEager.PartialEager = false
	onlyXact := noSC
	onlyXact.XactSC = true
	noCache := all
	noCache.HBCache = false
	noCache.SC3MaxSegment = 0
	return map[string]core.Options{
		"default":        all,
		"noShortCircuit": noSC,
		"noHBCache":      noCache,
		"noMemoize":      noMemo,
		"aggressiveGC":   aggressiveGC,
		"gcNoEager":      noEager,
		"onlyXactSC":     onlyXact,
	}
}

// TestEngineScenarios checks verdicts on every paper scenario under
// every option configuration.
func TestEngineScenarios(t *testing.T) {
	for name, opts := range engineConfigs() {
		for _, sc := range scenarios.All() {
			t.Run(name+"/"+sc.Name, func(t *testing.T) {
				r := detect.FirstRace(core.NewEngine(opts), sc.Trace)
				if sc.Racy {
					if r == nil {
						t.Fatalf("no race, want %v at %d", sc.RaceVar, sc.RacePos)
					}
					if r.Pos != sc.RacePos || r.Var != sc.RaceVar {
						t.Errorf("race = %v at %d, want %v at %d", r.Var, r.Pos, sc.RaceVar, sc.RacePos)
					}
					if !r.HasPrev {
						t.Error("engine race missing previous access")
					}
				} else if r != nil {
					t.Errorf("false race: %v", r)
				}
			})
		}
	}
}

// TestEngineShortCircuitCounters verifies the cheap checks fire where
// they should.
func TestEngineShortCircuitCounters(t *testing.T) {
	// SC1: same-thread accesses.
	e := core.New()
	detect.RunTrace(e, event.NewBuilder().
		Write(1, 10, 0).Read(1, 10, 0).Write(1, 10, 0).Trace())
	st := e.Stats()
	if st.SC1Hits != 2 {
		t.Errorf("SC1 hits = %d, want 2", st.SC1Hits)
	}
	if st.FullWalks != 0 {
		t.Errorf("full walks = %d, want 0", st.FullWalks)
	}

	// SC2: both accesses under the same lock.
	e = core.New()
	detect.RunTrace(e, event.NewBuilder().
		Fork(1, 2).
		Acquire(1, 20).Write(1, 10, 0).Release(1, 20).
		Acquire(2, 20).Write(2, 10, 0).Release(2, 20).
		Trace())
	st = e.Stats()
	if st.SC2Hits != 1 {
		t.Errorf("SC2 hits = %d, want 1", st.SC2Hits)
	}
	if st.Races != 0 {
		t.Errorf("races = %d, want 0", st.Races)
	}

	// Xact short-circuit: transactional pair.
	e = core.New()
	v := event.Variable{Obj: 10, Field: 0}
	detect.RunTrace(e, event.NewBuilder().
		Fork(1, 2).
		Commit(1, nil, []event.Variable{v}).
		Commit(2, nil, []event.Variable{v}).
		Trace())
	st = e.Stats()
	if st.XactHits != 1 {
		t.Errorf("xact hits = %d, want 1", st.XactHits)
	}

	// SC3: handoff via a lock the second thread no longer holds at
	// access time (release-then-access), so SC2 cannot apply but the
	// two-thread traversal proves the edge.
	e = core.New()
	detect.RunTrace(e, event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Acquire(1, 20).Release(1, 20).
		Acquire(2, 20).Release(2, 20).
		Write(2, 10, 0).
		Trace())
	st = e.Stats()
	if st.SC3Hits != 1 {
		t.Errorf("SC3 hits = %d, want 1 (stats %+v)", st.SC3Hits, st)
	}
	if st.Races != 0 {
		t.Errorf("races = %d, want 0", st.Races)
	}
}

// TestEngineMemoization: a full lockset computation that runs to the
// end of the list stores its result back into the Info and advances its
// position, so repeated checks walk each segment once (linear) instead
// of rescanning from the access point (quadratic). The reads race, so
// every check is a failed one that must traverse its whole segment
// (successful checks stop early at the verdict and are covered by the
// early-exit tests).
func TestEngineMemoization(t *testing.T) {
	build := func() *event.Trace {
		b := event.NewBuilder()
		b.Fork(1, 2)
		b.Write(1, 10, 0)
		for i := 0; i < 20; i++ {
			b.VolatileWrite(1, 1, 0)
			b.VolatileWrite(1, 1, 1)
			b.VolatileWrite(1, 1, 2)
			b.Read(2, 10, 0) // races with the write every time
		}
		return b.Trace()
	}
	opts := core.DefaultOptions()
	opts.SC2, opts.SC3 = false, false
	opts.HBCache = false

	memoized := core.NewEngine(opts)
	if rs := detect.RunTrace(memoized, build()); len(rs) == 0 {
		t.Fatal("expected races")
	}

	opts.Memoize = false
	plain := core.NewEngine(opts)
	if rs := detect.RunTrace(plain, build()); len(rs) == 0 {
		t.Fatal("expected races")
	}

	m, p := memoized.Stats().WalkCells, plain.Stats().WalkCells
	if m >= p {
		t.Errorf("memoized walk = %d cells, plain = %d; memoization should reduce traversal", m, p)
	}
	// Memoized traversal is linear in list length: each cell is visited
	// at most once per info chain.
	if m > 100 {
		t.Errorf("memoized walk = %d cells, expected linear (<= 100)", m)
	}
}

// TestEngineGC: the event list is trimmed once every info has moved past
// the prefix.
func TestEngineGC(t *testing.T) {
	opts := core.DefaultOptions()
	opts.GCThreshold = 8
	opts.GCTrimFraction = 0.5
	e := core.NewEngine(opts)

	b := event.NewBuilder()
	b.Fork(1, 2)
	b.Write(1, 10, 0) // early access pins the list head until advanced
	for i := 0; i < 100; i++ {
		b.Acquire(1, 20)
		b.Release(1, 20)
	}
	b.Acquire(2, 20)
	b.Write(2, 10, 0) // would race without the lock-chain edges? (no: T1 held 20 repeatedly)
	b.Release(2, 20)
	rs := detect.RunTrace(e, b.Trace())
	if len(rs) != 0 {
		t.Fatalf("unexpected races: %v", rs)
	}
	st := e.Stats()
	if st.Collections == 0 {
		t.Error("no collections ran")
	}
	if st.CellsCollected == 0 {
		t.Error("no cells were collected")
	}
	if st.InfosAdvanced == 0 {
		t.Error("partially-eager evaluation never advanced an info")
	}
	if got := e.ListLen(); got > 150 {
		t.Errorf("list length %d, expected trimming", got)
	}
}

// TestEngineGCCorrectness: aggressive collection must not change
// verdicts on a handoff that spans collected prefix.
func TestEngineGCCorrectness(t *testing.T) {
	mk := func(opts core.Options) *detect.Race {
		b := event.NewBuilder()
		b.Fork(1, 2)
		b.Write(1, 10, 0)
		b.Acquire(1, 20)
		b.Release(1, 20)           // LS(o.data) grows to {T1, l20}
		for i := 0; i < 200; i++ { // unrelated noise to force collections
			b.VolatileWrite(1, 1, 0)
			b.VolatileRead(1, 1, 0)
		}
		b.Acquire(2, 20) // T2 becomes an owner
		b.Write(2, 10, 0)
		b.Release(2, 20)
		return detect.FirstRace(core.NewEngine(opts), b.Trace())
	}
	opts := core.DefaultOptions()
	opts.GCThreshold = 16
	opts.GCTrimFraction = 0.3
	if r := mk(opts); r != nil {
		t.Errorf("handoff flagged under aggressive GC: %v", r)
	}
}

// TestEngineDisableAfterRace: with the paper's measurement policy a
// variable stops being checked after its first race.
func TestEngineDisableAfterRace(t *testing.T) {
	opts := core.DefaultOptions()
	opts.DisableAfterRace = true
	e := core.NewEngine(opts)
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Write(2, 10, 0). // race
		Write(1, 10, 0). // would race again; disabled
		Write(2, 10, 0).
		Trace()
	rs := detect.RunTrace(e, tr)
	if len(rs) != 1 {
		t.Errorf("races = %d, want 1 (disable after first)", len(rs))
	}

	// Without the policy every subsequent conflicting access reports.
	e2 := core.New()
	rs2 := detect.RunTrace(e2, tr)
	if len(rs2) != 3 {
		t.Errorf("races = %d, want 3 without disabling", len(rs2))
	}
}

// TestEngineAllocReset: reusing state after alloc starts fresh.
func TestEngineAllocReset(t *testing.T) {
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Write(2, 11, 0).
		Alloc(1, 12).
		Write(1, 12, 0).
		Trace()
	rs := detect.RunTrace(core.New(), tr)
	if len(rs) != 0 {
		t.Errorf("unexpected races: %v", rs)
	}
}

// TestEngineConcurrentUse drives the engine from many goroutines; run
// with -race. Each goroutine works on its own variables under a shared
// lock discipline, so no race reports are expected.
func TestEngineConcurrentUse(t *testing.T) {
	e := core.New()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := event.Tid(w + 1)
			obj := event.Addr(100 + w)
			lock := event.Addr(200)
			for i := 0; i < 200; i++ {
				e.Sync(event.Acquire(tid, lock))
				if r := e.Write(tid, obj, 0); r != nil {
					t.Errorf("worker %d: unexpected race %v", w, r)
				}
				if r := e.Read(tid, obj, 0); r != nil {
					t.Errorf("worker %d: unexpected race %v", w, r)
				}
				e.Sync(event.Release(tid, lock))
			}
		}(w)
	}
	wg.Wait()
	if st := e.Stats(); st.Races != 0 {
		t.Errorf("races = %d", st.Races)
	}
}

// TestEngineConcurrentSharedVar: shared variable under a lock from many
// goroutines, with aggressive GC running concurrently.
func TestEngineConcurrentSharedVar(t *testing.T) {
	opts := core.DefaultOptions()
	opts.GCThreshold = 64
	opts.GCTrimFraction = 0.25
	e := core.NewEngine(opts)
	const workers = 6
	lock := event.Addr(200)
	obj := event.Addr(100)
	var wg sync.WaitGroup
	var mu sync.Mutex // the real lock backing the modeled one
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := event.Tid(w + 1)
			for i := 0; i < 300; i++ {
				mu.Lock()
				e.Sync(event.Acquire(tid, lock))
				if r := e.Write(tid, obj, 0); r != nil {
					t.Errorf("worker %d iter %d: %v", w, i, r)
				}
				e.Sync(event.Release(tid, lock))
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if st := e.Stats(); st.Races != 0 {
		t.Errorf("races = %d (stats %+v)", st.Races, e.Stats())
	}
}

// TestStatsShortCircuitRate sanity-checks the Table 1 statistic.
func TestStatsShortCircuitRate(t *testing.T) {
	s := core.Stats{PairChecks: 10, SC1Hits: 2, SC2Hits: 3, SC3Hits: 1, XactHits: 1}
	if got := s.ShortCircuitRate(); got != 0.7 {
		t.Errorf("ShortCircuitRate = %v, want 0.7", got)
	}
	if got := (core.Stats{}).ShortCircuitRate(); got != 0 {
		t.Errorf("empty rate = %v", got)
	}
}

// TestLocksetOps covers the lockset container directly.
func TestLocksetOps(t *testing.T) {
	ls := core.NewLockset(core.ThreadElem(1))
	if ls.Empty() || ls.Len() != 1 || !ls.HasThread(1) {
		t.Error("constructor broken")
	}
	ls.Add(core.TL)
	ls.AddVars([]event.Variable{{Obj: 10, Field: 0}})
	if !ls.Has(core.TL) || !ls.IntersectsVars([]event.Variable{{Obj: 10, Field: 0}}) {
		t.Error("Add/Has broken")
	}
	if ls.IntersectsVars([]event.Variable{{Obj: 10, Field: 1}}) {
		t.Error("IntersectsVars false positive")
	}
	c := ls.Clone()
	c.Add(core.ThreadElem(2))
	if ls.HasThread(2) {
		t.Error("Clone shares state")
	}
	if !c.Equal(c.Clone()) || c.Equal(ls) {
		t.Error("Equal broken")
	}
	got := core.NewLockset(core.ThreadElem(1), core.LockElem(20), core.TL).String()
	want := "{T1, TL, o20.lock}"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	ls.Reset(core.ThreadElem(3))
	if ls.Len() != 1 || !ls.HasThread(3) {
		t.Error("Reset broken")
	}
	if len(ls.Elems()) != 1 {
		t.Error("Elems broken")
	}
}

// TestElemString covers element rendering used in diagnostics.
func TestElemString(t *testing.T) {
	cases := []struct {
		e    core.Elem
		want string
	}{
		{core.ThreadElem(3), "T3"},
		{core.LockElem(20), "o20.lock"},
		{core.VolatileElem(event.Volatile{Obj: 1, Field: 2}), "o1.v2"},
		{core.VarElem(event.Variable{Obj: 10, Field: 0}), "o10.f0"},
		{core.TL, "TL"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func ExampleEngine() {
	e := core.New()
	e.Sync(event.Fork(1, 2))
	e.Write(1, 10, 0)
	r := e.Write(2, 10, 0)
	fmt.Println(r.Var, r.HasPrev)
	// Output: o10.f0 true
}

// TestEngineHBCache: once an edge to a thread is established, repeated
// checks against the same info are O(1) and walk no cells.
func TestEngineHBCache(t *testing.T) {
	e := core.New()
	b := event.NewBuilder()
	b.Fork(1, 2)
	b.Write(1, 10, 0)
	b.VolatileWrite(1, 1, 0)
	b.VolatileRead(2, 1, 0) // T1's write now happens-before T2
	for i := 0; i < 50; i++ {
		b.Read(2, 10, 0)
		b.VolatileRead(2, 1, 1) // noise so SC1 does not absorb the reads
		b.VolatileWrite(2, 1, 1)
	}
	if rs := detect.RunTrace(e, b.Trace()); len(rs) != 0 {
		t.Fatalf("unexpected races: %v", rs)
	}
	st := e.Stats()
	if st.HBCacheHits < 45 {
		t.Errorf("HB cache hits = %d, want most of the 50 repeat checks", st.HBCacheHits)
	}
}

// TestEngineSC3SegmentCap: a failed check must traverse its whole
// segment; with SC3 uncapped it does so twice (the filtered walk, then
// the full walk), while the cap sends long segments straight to the
// full walk. Racy reads force failed checks.
func TestEngineSC3SegmentCap(t *testing.T) {
	build := func() *event.Trace {
		b := event.NewBuilder()
		b.Fork(1, 2)
		b.Write(1, 10, 0)
		for i := 0; i < 10; i++ {
			for j := 0; j < 50; j++ {
				b.VolatileWrite(1, 1, 0) // noise
			}
			b.Read(2, 10, 0) // races: no handshake anywhere
		}
		return b.Trace()
	}
	capped := core.DefaultOptions()
	capped.HBCache = false
	capped.SC3MaxSegment = 16
	e1 := core.NewEngine(capped)
	if rs := detect.RunTrace(e1, build()); len(rs) == 0 {
		t.Fatal("expected races")
	}
	uncapped := capped
	uncapped.SC3MaxSegment = 0
	e2 := core.NewEngine(uncapped)
	if rs := detect.RunTrace(e2, build()); len(rs) == 0 {
		t.Fatal("expected races")
	}
	c1, c2 := e1.Stats().WalkCells, e2.Stats().WalkCells
	// The uncapped configuration pays roughly double (filtered + full
	// traversal per failed check).
	if c1*3 >= c2*2 {
		t.Errorf("capped SC3 walked %d cells, uncapped %d; cap should roughly halve failed-check work", c1, c2)
	}
}

// TestEngineReentrantLocks: reentrant acquire/release sequences keep
// SC2 and the lockset rules sound (the paper notes reentrant locks are
// an easy extension; the engine counts depth in its held-lock table and
// the runtime emits only outermost acquire/release events).
func TestEngineReentrantLocks(t *testing.T) {
	e := core.New()
	tr := event.NewBuilder().
		Fork(1, 2).
		Acquire(1, 20).
		Acquire(1, 20). // reentrant
		Write(1, 10, 0).
		Release(1, 20).
		Write(1, 10, 1). // still held once: alock usable
		Release(1, 20).
		Acquire(2, 20).
		Write(2, 10, 0).
		Write(2, 10, 1).
		Release(2, 20).
		Trace()
	if rs := detect.RunTrace(e, tr); len(rs) != 0 {
		t.Errorf("reentrant lock discipline flagged: %v", rs)
	}
	if got := e.HeldLocks(1); len(got) != 0 {
		t.Errorf("T1 still holds %v", got)
	}
}

// TestEngineCommitDuplicateVars: duplicate entries in R and W are
// deduplicated (one check and one race per variable).
func TestEngineCommitDuplicateVars(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Commit(2, []event.Variable{v, v}, []event.Variable{v, v}).
		Trace()
	rs := detect.RunTrace(core.New(), tr)
	if len(rs) != 1 {
		t.Errorf("races = %d, want exactly 1 for duplicated commit vars", len(rs))
	}
	specRs := detect.RunTrace(core.NewSpecEngine(), tr)
	if len(specRs) != 1 {
		t.Errorf("spec races = %d, want 1", len(specRs))
	}
}

// TestEngineAllocReenablesDisabledVar: rule 8's reset also clears the
// disable-after-race flag — a fresh object at a recycled address is
// checked again.
func TestEngineAllocReenablesDisabledVar(t *testing.T) {
	opts := core.DefaultOptions()
	opts.DisableAfterRace = true
	e := core.NewEngine(opts)
	e.Sync(event.Fork(1, 2))
	e.Write(1, 10, 0)
	if r := e.Write(2, 10, 0); r == nil {
		t.Fatal("expected a race")
	}
	if r := e.Write(1, 10, 0); r != nil {
		t.Fatal("variable should be disabled after its first race")
	}
	e.Alloc(1, 10) // address reuse after allocation
	e.Write(1, 10, 0)
	if r := e.Write(2, 10, 0); r == nil {
		t.Error("fresh allocation no longer checked")
	}
}
