package core

import (
	"fmt"
	"slices"

	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
)

// walkObserver, when non-nil, is invoked by walkUntil for every rule
// application that grew the lockset: the cell that fired, the rule
// number, and the lockset after the application. It feeds the
// WalkRuleHits counters and the lockset trace hook; the disabled-
// telemetry path passes nil.
type walkObserver func(c *cell, rule int, after *Lockset)

// Read checks a plain (non-transactional) read of (o, d) by thread t and
// records it. It returns the race the read causes, or nil.
func (e *Engine) Read(t event.Tid, o event.Addr, d event.FieldID) *detect.Race {
	a := event.Read(t, o, d)
	return e.access(t, o, d, a, false, false, nil)
}

// Write checks a plain (non-transactional) write of (o, d) by thread t
// and records it. It returns the race the write causes, or nil.
func (e *Engine) Write(t event.Tid, o event.Addr, d event.FieldID) *detect.Race {
	a := event.Write(t, o, d)
	return e.access(t, o, d, a, true, false, nil)
}

// Commit records a transaction commit with read set reads and write set
// writes: the commit action enters the synchronization event list, and
// every variable in the sets is then checked as a transactional access
// (lines 24–28 of Figure 8). It returns the races found, one per racy
// variable.
func (e *Engine) Commit(t event.Tid, reads, writes []event.Variable) []detect.Race {
	a := event.Commit(t, reads, writes)
	e.Sync(a)

	// The lockset of a variable just after a transactional access is
	// {t, TL} plus the outgoing-edge witnesses of the configured
	// transaction semantics (rule 9: {t, TL} ∪ R ∪ W under the paper's
	// shared-variable interpretation); starting each Info's lazy lockset
	// there lets later traversals pick up commit-to-commit
	// synchronizes-with edges.
	base := NewLockset(ThreadElem(t), TL)
	switch e.opts.TxnSemantics {
	case event.TxnAtomicOrder:
		// TL itself is the witness.
	case event.TxnWriteToRead:
		base.AddVars(writes)
	default:
		base.AddVars(reads)
		base.AddVars(writes)
	}

	var races []detect.Race
	written := make(map[event.Variable]bool, len(writes))
	for _, v := range writes {
		written[v] = true
	}
	seen := make(map[event.Variable]bool, len(reads)+len(writes))
	for _, v := range writes {
		if seen[v] {
			continue
		}
		seen[v] = true
		if r := e.access(t, v.Obj, v.Field, a, true, true, base.Clone()); r != nil {
			races = append(races, *r)
		}
	}
	for _, v := range reads {
		if seen[v] || written[v] {
			continue
		}
		seen[v] = true
		if r := e.access(t, v.Obj, v.Field, a, false, true, base.Clone()); r != nil {
			races = append(races, *r)
		}
	}
	return races
}

// access is the common entry point for all data accesses: it performs
// the happens-before checks required by the read/write distinction and
// installs the resulting Info record. ls is the post-access lockset for
// a transactional access; nil means the plain-access lockset {t}, built
// in place (recycling the superseded record's storage when possible).
//
// The whole check runs behind a recover barrier: under the Quarantine
// policy a panicking check (a detector bug, or an injected fault)
// quarantines the variable — its state is dropped, it is never checked
// again — and the access proceeds race-free from the monitored
// program's point of view. Under Abort the panic propagates unchanged.
func (e *Engine) access(t event.Tid, o event.Addr, d event.FieldID, a event.Action, isWrite, xact bool, ls *Lockset) (race *detect.Race) {
	h := varHash(o, d)
	st := &e.stats[h&(varShardCount-1)]
	vs := e.stateOfHash(o, d, h)
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if vs.disabled || vs.quarantined {
		return nil
	}
	st.accessesChecked.Add(1)
	v := event.Variable{Obj: o, Field: d}

	// Telemetry (all nil when disabled): a plain access fires rule 1 (a
	// transactional one is covered by the commit's rule 9 fire); the walk
	// observer feeds WalkRuleHits, and — for traced variables — the
	// lockset trace hook.
	var onFire walkObserver
	var vname string
	traced := false
	if e.tel != nil {
		if !xact {
			e.tel.Fire(obs.RuleAccess)
		}
		onFire = e.walkObs
		if e.tel.Trace.Enabled() {
			vname = v.String()
			if traced = e.tel.Trace.Match(vname); traced {
				tel := e.tel
				onFire = func(c *cell, rule int, after *Lockset) {
					tel.WalkRuleHits[rule].Inc()
					tel.Trace.Record(obs.LocksetTransition{
						Seq: c.seq, Var: vname, Rule: rule,
						Action: c.action.String(), Lockset: after.String(),
					})
				}
			}
		}
	}

	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if e.opts.OnError == resilience.Abort {
			panic(r)
		}
		// Quarantine (o, d): drop the variable's state and stop checking
		// it. (An uninstalled Info owns no list reference, so there is
		// nothing to unpin.)
		vs.dropAll()
		vs.quarantined = true
		e.panicsRecovered.Add(1)
		e.varsQuarantined.Add(1)
		race = nil
	}()
	if e.opts.Injector.ShouldPanic(v) {
		panic(fmt.Sprintf("resilience: injected detector fault on %v", v))
	}

	// Epoch fast path: a plain access to a variable this thread still
	// owns needs no walk machinery, no provenance, and no reader sort. A
	// traced variable stays on the slow path so its lockset transitions
	// keep being recorded.
	if e.opts.FastPath && !xact && !traced && e.fastPath(vs, st, t, a, isWrite) {
		return nil
	}

	pos := e.list.snapshotTail()
	var racePrev *info // the Info the failed check was against
	// Every access is checked against the last write.
	if !e.checkHB(vs.write, t, xact, pos, st, onFire) {
		race = &detect.Race{Var: v, Access: a, Prev: vs.write.action, HasPrev: true}
		racePrev = vs.write
	}
	// A write is additionally checked against every read since that
	// write. When the writer and every reader are transactional, the
	// commit/commit exemption applies to the entire reader set at once.
	if race == nil && isWrite && len(vs.reads) > 0 {
		if xact && vs.readsAllXact && e.opts.XactSC && e.opts.TxnSemantics != event.TxnWriteToRead {
			st.pairChecks.Add(uint64(len(vs.reads)))
			st.xactHits.Add(uint64(len(vs.reads)))
		} else if len(vs.reads) == 1 {
			// Single reader: trivially deterministic, no sort needed.
			for u, prev := range vs.reads {
				if u != t && !e.checkHB(prev, t, xact, pos, st, onFire) {
					race = &detect.Race{Var: v, Access: a, Prev: prev.action, HasPrev: true}
					racePrev = prev
				}
			}
		} else {
			// Deterministic reader order: a racy reader ends the loop
			// early, so map-order iteration would make the short-circuit
			// counters (and the reported previous access) vary between
			// replays of the same linearization.
			tids := make([]event.Tid, 0, len(vs.reads))
			for u := range vs.reads {
				if u != t {
					tids = append(tids, u)
				}
			}
			slices.Sort(tids)
			for _, u := range tids {
				prev := vs.reads[u]
				if !e.checkHB(prev, t, xact, pos, st, onFire) {
					race = &detect.Race{Var: v, Access: a, Prev: prev.action, HasPrev: true}
					racePrev = prev
					break
				}
			}
		}
	}

	// Race provenance is reconstructed before the install phase recycles
	// racePrev's record in place. A cold path: a race ends checking for
	// the variable (under DisableAfterRace) and is rare regardless.
	if race != nil {
		race.Prov = e.buildProvenance(v, racePrev, t, pos)
	}

	// Install the record: a write supersedes the previous write and all
	// reads; a read supersedes this thread's previous read. The
	// superseded record of the same slot is recycled in place — it is
	// exclusively owned once replaced — including its list reference
	// when the position is unchanged, so between synchronization events
	// the install phase allocates nothing and touches no shared atomics.
	if isWrite {
		vs.write = e.installInfo(vs.write, pos, t, a, xact, ls)
		for _, prev := range vs.reads {
			prev.release()
		}
		clear(vs.reads)
		vs.readsAllXact = true
	} else {
		if vs.reads == nil {
			vs.reads = make(map[event.Tid]*info)
			vs.readsAllXact = true
		}
		vs.reads[t] = e.installInfo(vs.reads[t], pos, t, a, xact, ls)
		vs.readsAllXact = vs.readsAllXact && xact
	}
	if traced {
		// The access itself is a transition too: rule 1 (or 9 inside a
		// transaction) reset the lockset to the just-installed one.
		in := vs.write
		if !isWrite {
			in = vs.reads[t]
		}
		rule := obs.RuleAccess
		if xact {
			rule = obs.RuleCommit
		}
		e.tel.Trace.Record(obs.LocksetTransition{
			Seq: pos.seq, Var: vname, Rule: rule,
			Action: a.String(), Lockset: in.ls.String(),
		})
	}

	if race != nil {
		st.races.Add(1)
		if e.opts.DisableAfterRace {
			vs.disabled = true
		}
	}
	return race
}

// fastPath is the O(1) FastTrack-style epoch check in front of the
// lockset machinery (Options.FastPath). The "epoch" is not stored
// anywhere: it is the derived view (Info.owner, Info.pos vs the current
// list tail) of the state the lockset engine already keeps, so the fast
// path needs no state of its own, nothing extra to checkpoint, and no
// invalidation protocol — the moment ownership transfers, the ordinary
// Info records already describe the handoff and the slow path takes
// over (escalation is simply "this function returns false").
//
// A hit must be observationally identical to the slow path, counters
// included: the same-owner pair check is exactly an SC1 hit, so it
// increments PairChecks and SC1Hits precisely as checkHB would, and the
// install goes through the same installInfo (which clears the
// happens-before cache and recycles the record in place). Readers owned
// by the accessing thread contribute no pair checks on a write, exactly
// like the slow path's u != t skip. Anything else — a foreign last
// writer, a foreign reader before a write, a transactional access —
// escalates. SC1 must be enabled for the owned-pair case, or the slow
// path would have walked (and counted FullWalks/WalkCells) where the
// fast path would not.
//
// Caller holds vs.mu and has already bumped AccessesChecked and fired
// the event-level rule-1 telemetry.
func (e *Engine) fastPath(vs *varState, st *statStripe, t event.Tid, a event.Action, isWrite bool) bool {
	w := vs.write
	if w != nil && (!e.opts.SC1 || w.owner != t) {
		return false
	}
	if isWrite {
		for u := range vs.reads {
			if u != t {
				return false
			}
		}
	}
	if w != nil {
		st.pairChecks.Add(1)
		st.sc1Hits.Add(1)
	}
	st.fastPathHits.Add(1)

	pos := e.list.snapshotTail()
	if isWrite {
		vs.write = e.installInfo(w, pos, t, a, false, nil)
		for _, prev := range vs.reads {
			prev.release()
		}
		clear(vs.reads)
		vs.readsAllXact = true
	} else {
		if vs.reads == nil {
			vs.reads = make(map[event.Tid]*info)
		}
		vs.reads[t] = e.installInfo(vs.reads[t], pos, t, a, false, nil)
		vs.readsAllXact = false
	}
	return true
}

// installInfo builds the Info record for the access just checked,
// recycling the superseded record old (nil if the slot was empty). The
// returned record owns a list reference on pos: stolen from old when
// the position is unchanged, freshly acquired otherwise. When ls is nil
// (a plain access) the lockset {t} is built in place, reusing old's
// lockset storage unless a clone still shares it.
func (e *Engine) installInfo(old *info, pos *cell, t event.Tid, a event.Action, xact bool, ls *Lockset) *info {
	in := old
	if in == nil {
		in = &info{}
		pos.refs.Add(1)
	} else if in.pos != pos {
		pos.refs.Add(1)
		in.release()
	}
	if ls == nil {
		if in.ls != nil && !in.ls.shared {
			in.ls.Reset(ThreadElem(t))
			ls = in.ls
		} else {
			ls = NewLockset(ThreadElem(t))
		}
	}
	in.pos = pos
	in.owner = t
	in.ls = ls
	in.alock = e.heldLock(t)
	in.xact = xact
	in.action = a
	in.origSeq = pos.seq
	in.hbAfter = nil
	return in
}

// checkHB implements Check-Happens-Before of Figure 8: it decides
// whether the access described by prev happens-before the current access
// by thread t (whose Info position is end), trying the cheap sufficient
// checks first and falling back to lockset computation over the
// synchronization event list.
func (e *Engine) checkHB(prev *info, t event.Tid, xact bool, end *cell, st *statStripe, onFire walkObserver) bool {
	if prev == nil {
		return true // fresh variable: empty lockset
	}
	st.pairChecks.Add(1)

	// Transactions short-circuit: two transactional accesses never race
	// (the extended-race definition exempts commit/commit pairs).
	// Under the write-to-read semantics the exemption does not exist.
	if e.opts.XactSC && prev.xact && xact && e.opts.TxnSemantics != event.TxnWriteToRead {
		st.xactHits.Add(1)
		return true
	}
	// SC1: same thread — ordered by program order.
	if e.opts.SC1 && prev.owner == t {
		st.sc1Hits.Add(1)
		return true
	}
	// Transitivity cache: an edge to t established once holds for every
	// later access by t (happens-before composes with program order).
	if e.opts.HBCache && prev.hbAfter != nil {
		if _, ok := prev.hbAfter[t]; ok {
			st.hbCacheHits.Add(1)
			return true
		}
	}
	// SC2: the previous accessor held prev.alock at its access, and the
	// current thread holds the same lock now; mutual exclusion implies
	// the release/acquire pair ordering the two accesses. holds reads
	// t's published lock snapshot without any shared lock.
	if e.opts.SC2 && prev.alock != event.NilAddr && e.holds(t, prev.alock) {
		st.sc2Hits.Add(1)
		e.cacheHB(prev, t)
		return true
	}
	// Rung 3 of the degradation ladder: the event list is frozen, so a
	// lockset walk would be built on stale data. Short-circuit-only mode
	// assumes inconclusive pairs are ordered — races that needed a walk
	// are missed, counted in DegradedChecks, and the program keeps
	// running in bounded memory.
	if e.degraded.Load() {
		st.degradedChecks.Add(1)
		return true
	}
	acceptTL := xact && e.opts.TxnSemantics != event.TxnWriteToRead
	// SC3: traverse only the events of the two involved threads. The
	// rules are monotone, so ownership established on the subsequence
	// also holds on the full sequence; failure is inconclusive. Long
	// segments skip SC3: a successful filtered walk is never memoized
	// (its lockset is a subset), so repeating it over a long stale
	// segment costs more than one full walk that advances the Info.
	walked := 0 // cells visited across this check's traversals, for WalkDepth
	if e.opts.SC3 && (e.opts.SC3MaxSegment == 0 || end.seq-prev.pos.seq <= uint64(e.opts.SC3MaxSegment)) {
		ls := prev.ls.Clone()
		found, viaTL, _, n := walkUntil(ls, prev.pos, end, e.rules(), true, prev.owner, t, acceptTL, onFire)
		st.walkCells.Add(uint64(n))
		if found {
			st.sc3Hits.Add(1)
			if e.tel != nil {
				e.tel.WalkDepth.Observe(uint64(n))
			}
			if !viaTL {
				e.cacheHB(prev, t)
			}
			return true
		}
		walked = n
	}
	// Full lockset computation (Apply-Lockset-Rules), lazily evaluating
	// the lockset of the variable at the current access. Locksets only
	// grow along the walk, so the traversal stops as soon as the
	// verdict is decided; only a walk that reaches the end computes the
	// complete lockset and can be memoized.
	st.fullWalks.Add(1)
	ls := prev.ls.Clone()
	found, viaTL, stopped, n := walkUntil(ls, prev.pos, end, e.rules(), false, prev.owner, t, acceptTL, onFire)
	st.walkCells.Add(uint64(n))
	if e.tel != nil {
		e.tel.WalkDepth.Observe(uint64(walked + n))
	}
	if e.opts.Memoize && stopped == end {
		// The computed lockset is the variable's lockset at position
		// end; remember it so the next check resumes from here.
		prev.pos.refs.Add(-1)
		end.refs.Add(1)
		prev.pos = end
		prev.ls = ls
	}
	if found && !viaTL {
		e.cacheHB(prev, t)
	}
	return found
}

// ruleSet configures the lockset update rules a walk applies: the
// transaction semantics and — conformance mutation testing only — a
// rule to drop (Options.BrokenRule).
type ruleSet struct {
	sem  event.TxnSemantics
	drop int
}

// rules returns the engine's rule configuration.
func (e *Engine) rules() ruleSet {
	return ruleSet{sem: e.opts.TxnSemantics, drop: e.opts.BrokenRule}
}

// walkUntil applies the lockset update rules from cell from toward end,
// stopping early once the target verdict is decided: the accessing
// thread t entered the lockset, or (when acceptTL is set) TL did. It
// returns whether the verdict is positive, whether it was via TL, the
// cell the walk stopped at (== end iff it ran to completion), and the
// number of cells visited. onFire, when non-nil, observes every rule
// application that grew the lockset.
func walkUntil(ls *Lockset, from, end *cell, rs ruleSet, filtered bool, t1, t2 event.Tid, acceptTL bool, onFire walkObserver) (found, viaTL bool, stopped *cell, n int) {
	target := ThreadElem(t2)
	check := func() (bool, bool) {
		if ls.Has(target) {
			return true, false
		}
		if acceptTL && ls.Has(TL) {
			return true, true
		}
		return false, false
	}
	if ok, tl := check(); ok {
		return true, tl, from, 0
	}
	c := from
	for ; c != end && c != nil && c.filled; c = c.next {
		n++
		before := ls.Len()
		applyRuleCell(ls, c.action, rs, filtered, t1, t2)
		if ls.Len() != before {
			if onFire != nil {
				onFire(c, obs.RuleOf(c.action.Kind), ls)
			}
			if ok, tl := check(); ok {
				return true, tl, c.next, n
			}
		}
	}
	return false, false, c, n
}

// cacheHB records that prev's access happens-before everything thread t
// does from now on.
func (e *Engine) cacheHB(prev *info, t event.Tid) {
	if !e.opts.HBCache {
		return
	}
	if prev.hbAfter == nil {
		prev.hbAfter = make(map[event.Tid]struct{}, 4)
	}
	prev.hbAfter[t] = struct{}{}
}

// applyRules applies the Goldilocks lockset update rules (Figure 5,
// rules 2–7 and 9) to ls for every filled cell in [from, end). When
// filtered is set, only events performed by t1 or t2 are considered.
// It returns the number of cells visited.
func applyRules(ls *Lockset, from, end *cell, rs ruleSet, filtered bool, t1, t2 event.Tid) int {
	n := 0
	for c := from; c != end && c != nil && c.filled; c = c.next {
		n++
		applyRuleCell(ls, c.action, rs, filtered, t1, t2)
	}
	return n
}

// applyRuleCell applies the update rules for one synchronization action.
func applyRuleCell(ls *Lockset, a event.Action, rs ruleSet, filtered bool, t1, t2 event.Tid) {
	sem := rs.sem
	{
		if filtered && a.Thread != t1 && a.Thread != t2 {
			return
		}
		if rs.drop != 0 && rs.drop == obs.RuleOf(a.Kind) {
			return // Options.BrokenRule: the injected mutation
		}
		u := ThreadElem(a.Thread)
		switch a.Kind {
		case event.KindAcquire:
			if ls.Has(LockElem(a.Obj)) {
				ls.Add(u)
			}
		case event.KindRelease:
			if ls.Has(u) {
				ls.Add(LockElem(a.Obj))
			}
		case event.KindVolatileRead:
			if ls.Has(VolatileElem(a.Volatile())) {
				ls.Add(u)
			}
		case event.KindVolatileWrite:
			if ls.Has(u) {
				ls.Add(VolatileElem(a.Volatile()))
			}
		case event.KindFork:
			if ls.Has(u) {
				ls.Add(ThreadElem(a.Peer))
			}
		case event.KindJoin:
			if ls.Has(ThreadElem(a.Peer)) {
				ls.Add(u)
			}
		case event.KindChanSend:
			// Rule 10: the send acquires the slot's prior recv edge before
			// releasing the message — acquire-then-release, in that order,
			// so a send does not synchronize with itself through the slot.
			ce := VolatileElem(a.Volatile())
			if ls.Has(ce) {
				ls.Add(u)
			}
			if ls.Has(u) {
				ls.Add(ce)
			}
		case event.KindChanRecv:
			// Rule 11: the dual of rule 10 on the same conveyor slot. A
			// drain recv (normalized to the closed element) only acquires:
			// it carries no message for a later send to synchronize with.
			ce := VolatileElem(a.Volatile())
			if ls.Has(ce) {
				ls.Add(u)
			}
			if a.Field != event.ChanClosedField && ls.Has(u) {
				ls.Add(ce)
			}
		case event.KindChanClose:
			// Rule 12: close broadcasts a release onto the closed element;
			// only drain recvs acquire from it.
			if ls.Has(u) {
				ls.Add(VolatileElem(a.Volatile()))
			}
		case event.KindCommit:
			switch sem {
			case event.TxnAtomicOrder:
				if ls.Has(TL) {
					ls.Add(u)
				}
				if ls.Has(u) {
					ls.Add(TL)
				}
			case event.TxnWriteToRead:
				if ls.IntersectsVars(a.Reads) {
					ls.Add(u)
				}
				if ls.Has(u) {
					ls.AddVars(a.Writes)
				}
			default:
				if ls.IntersectsVars(a.Reads) || ls.IntersectsVars(a.Writes) {
					ls.Add(u)
				}
				if ls.Has(u) {
					ls.AddVars(a.Reads)
					ls.AddVars(a.Writes)
				}
			}
		}
	}
}
