package core_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/scenarios"
	"goldilocks/internal/tracegen"
)

// ckptRaceKey mirrors the conformance harness's race identity: the
// global linearization position of the completing access plus the
// variable.
func ckptRaceKey(r detect.Race) string { return fmt.Sprintf("%d:%v", r.Pos, r.Var) }

func sortedKeys(races []detect.Race) []string {
	keys := make([]string, len(races))
	for i, r := range races {
		keys[i] = ckptRaceKey(r)
	}
	sort.Strings(keys)
	return keys
}

// checkpointTraces returns the round-trip corpus: the Section 2
// scenarios plus every counterexample trace in the conformance corpus
// (loaded directly from testdata — the core tests cannot import
// internal/conformance, which imports core).
func checkpointTraces(t *testing.T) map[string]*event.Trace {
	t.Helper()
	out := make(map[string]*event.Trace)
	for _, sc := range scenarios.All() {
		out["scenario-"+sc.Name] = sc.Trace
	}
	dir := filepath.Join("..", "conformance", "testdata")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("opening %s: %v", e.Name(), err)
		}
		tr, dropped, err := event.ReadTraceAuto(f)
		f.Close()
		if err != nil {
			t.Fatalf("reading %s: %v", e.Name(), err)
		}
		if dropped != 0 {
			t.Fatalf("%s: %d corrupt records in checked-in corpus", e.Name(), dropped)
		}
		out["corpus-"+strings.TrimSuffix(e.Name(), ".jsonl")] = tr
	}
	// Commit-heavy marked traces: every-prefix cutting then lands inside
	// transactions mid-flight (between the commits of a publication
	// chain) and inside open txbegin/txend regions, so commit-set and
	// TL-element state must round-trip through the snapshot.
	for seed := int64(1); seed <= 3; seed++ {
		out[fmt.Sprintf("commit-heavy-%d", seed)] = tracegen.FromSeedConfig(seed, tracegen.CommitHeavy())
	}
	// A deterministic TL handoff: the cut between the two commits
	// snapshots the variable while its lockset carries the TL element.
	out["txn-handoff"] = event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		TxBegin(1).
		Commit(1, nil, []event.Variable{{Obj: 10, Field: 0}}).
		TxEnd(1).
		Commit(2, []event.Variable{{Obj: 10, Field: 0}}, nil).
		Write(2, 10, 0).
		Trace()
	if len(out) < 5 {
		t.Fatalf("suspiciously small corpus: %d traces", len(out))
	}
	return out
}

// runGlobal drives det over tr[from:] assigning global linearization
// positions, so verdicts from a restored engine are comparable to the
// uninterrupted run's.
func runGlobal(det detect.Detector, tr *event.Trace, from int) []detect.Race {
	var out []detect.Race
	for i := from; i < tr.Len(); i++ {
		for _, r := range det.Step(tr.At(i)) {
			r.Pos = i
			out = append(out, r)
		}
	}
	return out
}

// ckptConfigs are the engine configurations the round-trip test covers:
// the default configuration (with telemetry attached, so rule-fire
// restoration is checked too), an aggressive garbage collector (small
// retained list, infos advanced across checkpoints), and a tight memory
// budget (the governor's degradation ladder engages and must survive
// the restart).
func ckptConfigs() map[string]struct {
	opts core.Options
	tel  bool
} {
	agg := core.DefaultOptions()
	agg.GCThreshold = 8
	agg.GCTrimFraction = 0.5

	budget := core.DefaultOptions()
	budget.GCThreshold = 0
	budget.MemoryBudget = 8

	// The default configuration runs with the epoch fast path on (its
	// hit counter and enablement flag must survive the restart); the
	// fastpath-off variant pins that a checkpoint written by either tier
	// restores into a pure-lockset engine unchanged.
	fpOff := core.DefaultOptions()
	fpOff.FastPath = false

	// The non-default transaction semantics change which commits
	// synchronize, so the snapshot's TxnSemantics field and the
	// Xact/ReadsAllXact bits it guards must restore into identical
	// verdicts on the suffix.
	txnAtomic := core.DefaultOptions()
	txnAtomic.TxnSemantics = event.TxnAtomicOrder
	txnW2R := core.DefaultOptions()
	txnW2R.TxnSemantics = event.TxnWriteToRead

	return map[string]struct {
		opts core.Options
		tel  bool
	}{
		"default":          {core.DefaultOptions(), true},
		"gc-aggressive":    {agg, false},
		"budget-8":         {budget, false},
		"fastpath-off":     {fpOff, true},
		"txn-atomic-order": {txnAtomic, false},
		"txn-write-toread": {txnW2R, false},
	}
}

// TestCheckpointEveryPrefix is the restart-transparency wall: for every
// corpus trace and engine configuration, checkpoint at every prefix,
// restore into a fresh engine, replay the suffix, and require verdicts,
// Figure 5 rule-fire counts, and the complete Stats struct to equal the
// uninterrupted run's. A restored engine is indistinguishable from one
// that never stopped.
func TestCheckpointEveryPrefix(t *testing.T) {
	traces := checkpointTraces(t)
	for cfgName, cfg := range ckptConfigs() {
		for name, tr := range traces {
			t.Run(cfgName+"/"+name, func(t *testing.T) {
				opts := cfg.opts
				var baseTel *obs.Telemetry
				if cfg.tel {
					baseTel = obs.NewTelemetry()
					opts.Telemetry = baseTel
				}
				base := core.NewEngine(opts)
				baseRaces := runGlobal(base, tr, 0)
				baseKeys := sortedKeys(baseRaces)
				baseStats := base.Stats()
				var baseFires [obs.NumRules + 1]uint64
				if baseTel != nil {
					baseFires = baseTel.RuleFires()
				}

				for cut := 0; cut <= tr.Len(); cut++ {
					popts := cfg.opts
					var prefTel *obs.Telemetry
					if cfg.tel {
						prefTel = obs.NewTelemetry()
						popts.Telemetry = prefTel
					}
					pref := core.NewEngine(popts)
					var got []detect.Race
					for i := 0; i < cut; i++ {
						for _, r := range pref.Step(tr.At(i)) {
							r.Pos = i
							got = append(got, r)
						}
					}

					var snap bytes.Buffer
					if err := pref.Checkpoint(&snap); err != nil {
						t.Fatalf("cut %d: checkpoint: %v", cut, err)
					}

					attach := core.RestoreAttach{}
					var resTel *obs.Telemetry
					if cfg.tel {
						resTel = obs.NewTelemetry()
						attach.Telemetry = resTel
					}
					restored, err := core.RestoreEngine(bytes.NewReader(snap.Bytes()), attach)
					if err != nil {
						t.Fatalf("cut %d: restore: %v", cut, err)
					}
					got = append(got, runGlobal(restored, tr, cut)...)

					if gk := sortedKeys(got); !equalStrings(gk, baseKeys) {
						t.Fatalf("cut %d: races %v, uninterrupted %v", cut, gk, baseKeys)
					}
					if gs := restored.Stats(); gs != baseStats {
						t.Fatalf("cut %d: stats diverged\nrestored:      %+v\nuninterrupted: %+v", cut, gs, baseStats)
					}
					if resTel != nil {
						if gf := resTel.RuleFires(); gf != baseFires {
							t.Fatalf("cut %d: rule fires %v, uninterrupted %v", cut, gf, baseFires)
						}
					}
				}
			})
		}
	}
}

// TestCheckpointDetectsCorruption flips one byte of the serialized
// payload and requires restore to refuse it — a torn or bit-rotten
// snapshot must never silently restore a wrong detector.
func TestCheckpointDetectsCorruption(t *testing.T) {
	tr := scenarios.All()[0].Trace
	e := core.NewEngine(core.DefaultOptions())
	for i := 0; i < tr.Len(); i++ {
		e.Step(tr.At(i))
	}
	var snap bytes.Buffer
	if err := e.Checkpoint(&snap); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Sanity: the pristine snapshot restores.
	if _, err := core.RestoreEngine(bytes.NewReader(snap.Bytes()), core.RestoreAttach{}); err != nil {
		t.Fatalf("pristine restore: %v", err)
	}

	raw := snap.Bytes()
	// Flip a byte inside the payload (past the header line, before the
	// trailing CRC field at line end).
	idx := bytes.IndexByte(raw, '\n') + 40
	corrupt := append([]byte(nil), raw...)
	if corrupt[idx] == 'x' {
		corrupt[idx] = 'y'
	} else {
		corrupt[idx] = 'x'
	}
	if _, err := core.RestoreEngine(bytes.NewReader(corrupt), core.RestoreAttach{}); err == nil {
		t.Fatal("corrupted snapshot restored without error")
	}

	// A torn snapshot (header only) must fail too.
	torn := raw[:bytes.IndexByte(raw, '\n')+1]
	if _, err := core.RestoreEngine(bytes.NewReader(torn), core.RestoreAttach{}); err == nil {
		t.Fatal("torn snapshot restored without error")
	}

	// Garbage must fail.
	if _, err := core.RestoreEngine(strings.NewReader("not a checkpoint\n"), core.RestoreAttach{}); err == nil {
		t.Fatal("garbage restored without error")
	}
}
