// Package core implements the generalized Goldilocks algorithm of
// Elmas, Qadeer, and Tasiran (PLDI 2007): a precise lockset-based
// dynamic data-race detector that distinguishes read and write accesses
// and handles software transactions as a first-class synchronization
// idiom.
//
// Two engines are provided:
//
//   - SpecEngine applies the lockset update rules of Figure 5 eagerly,
//     updating the lockset of every tracked variable at every
//     synchronization action. It is the executable specification: easy
//     to audit against the paper, and the reference the optimized
//     engine is property-tested against.
//   - Engine is the optimized implementation of Section 5 (the Kaffe
//     implementation): a synchronization event list with lazy lockset
//     evaluation, short-circuit checks, per-variable serialization,
//     reference-counted garbage collection, and partially-eager lockset
//     propagation.
//
// Both implement detect.Detector and report exactly the extended races
// of Section 3 (Theorem 1): sound and precise.
package core

import (
	"fmt"
	"sort"
	"strings"

	"goldilocks/internal/event"
)

// ElemKind discriminates lockset elements.
type ElemKind uint8

const (
	// ElemThread is a thread id t: t owns the variable.
	ElemThread ElemKind = iota + 1
	// ElemVolatile is a synchronization variable (o, v) — including lock
	// variables (o, l): acquiring the lock or reading the volatile makes
	// the acting thread an owner.
	ElemVolatile
	// ElemVar is a data variable (o', d'): accessing it inside a
	// transaction makes the acting thread an owner.
	ElemVar
	// ElemTL is the fictitious transaction lock TL: the last access was
	// performed inside a transaction.
	ElemTL
)

// Elem is one element of a lockset: a thread id, a volatile/lock
// variable, a data variable, or TL. Elem is comparable and usable as a
// map key.
type Elem struct {
	Kind  ElemKind
	Tid   event.Tid
	Obj   event.Addr
	Field event.FieldID
}

// ThreadElem returns the lockset element for thread t.
func ThreadElem(t event.Tid) Elem { return Elem{Kind: ElemThread, Tid: t} }

// VolatileElem returns the lockset element for synchronization variable v.
func VolatileElem(v event.Volatile) Elem {
	return Elem{Kind: ElemVolatile, Obj: v.Obj, Field: v.Field}
}

// LockElem returns the lockset element for the monitor lock of o.
func LockElem(o event.Addr) Elem { return VolatileElem(event.Lock(o)) }

// VarElem returns the lockset element for data variable v.
func VarElem(v event.Variable) Elem {
	return Elem{Kind: ElemVar, Obj: v.Obj, Field: v.Field}
}

// TL is the transaction-lock element.
var TL = Elem{Kind: ElemTL}

func (e Elem) String() string {
	switch e.Kind {
	case ElemThread:
		return e.Tid.String()
	case ElemVolatile:
		return event.Volatile{Obj: e.Obj, Field: e.Field}.String()
	case ElemVar:
		return event.Variable{Obj: e.Obj, Field: e.Field}.String()
	case ElemTL:
		return "TL"
	}
	return fmt.Sprintf("Elem(%d)", e.Kind)
}

// smallMax is the size up to which a lockset stays in its linear-scan
// slice representation. Locksets are small in the common case ({t},
// {t, TL}, or {t, TL} ∪ R ∪ W for a transaction of a few dozen
// variables); linear scans of a few cache lines beat hashing Elem
// structs on the hot Has/Add paths of the lockset traversals, and
// copy-on-write materialization is a memmove instead of a map rebuild.
const smallMax = 64

// Lockset is a set of lockset elements. The zero value is an empty set
// ready for use. Clone is copy-on-write: clones share the backing until
// one side mutates, which makes the per-access lockset snapshots of the
// optimized engine nearly free.
type Lockset struct {
	small  []Elem
	m      map[Elem]struct{} // non-nil once the set outgrows small
	shared bool              // backing shared with a clone; copy before mutating
}

// NewLockset returns a lockset holding the given elements.
func NewLockset(elems ...Elem) *Lockset {
	ls := &Lockset{}
	for _, e := range elems {
		ls.Add(e)
	}
	return ls
}

// Len returns the number of elements.
func (ls *Lockset) Len() int {
	if ls.m != nil {
		return len(ls.m)
	}
	return len(ls.small)
}

// Empty reports whether the set has no elements.
func (ls *Lockset) Empty() bool { return ls.Len() == 0 }

// Has reports membership of e.
func (ls *Lockset) Has(e Elem) bool {
	if ls.m != nil {
		_, ok := ls.m[e]
		return ok
	}
	for _, x := range ls.small {
		if x == e {
			return true
		}
	}
	return false
}

// HasThread reports membership of thread t.
func (ls *Lockset) HasThread(t event.Tid) bool { return ls.Has(ThreadElem(t)) }

// materialize makes the backing exclusively owned.
func (ls *Lockset) materialize() {
	if ls.m != nil {
		m2 := make(map[Elem]struct{}, len(ls.m))
		for e := range ls.m {
			m2[e] = struct{}{}
		}
		ls.m = m2
	} else if ls.small != nil {
		s2 := make([]Elem, len(ls.small))
		copy(s2, ls.small)
		ls.small = s2
	}
	ls.shared = false
}

// Add inserts e.
func (ls *Lockset) Add(e Elem) {
	if ls.Has(e) {
		return
	}
	if ls.shared {
		ls.materialize()
	}
	if ls.m != nil {
		ls.m[e] = struct{}{}
		return
	}
	if len(ls.small) < smallMax {
		ls.small = append(ls.small, e)
		return
	}
	ls.m = make(map[Elem]struct{}, len(ls.small)+1)
	for _, x := range ls.small {
		ls.m[x] = struct{}{}
	}
	ls.m[e] = struct{}{}
	ls.small = nil
}

// AddVars inserts the data-variable elements for each of vs.
func (ls *Lockset) AddVars(vs []event.Variable) {
	for _, v := range vs {
		ls.Add(VarElem(v))
	}
}

// IntersectsVars reports whether the set contains the data-variable
// element of any v in vs.
func (ls *Lockset) IntersectsVars(vs []event.Variable) bool {
	for _, v := range vs {
		if ls.Has(VarElem(v)) {
			return true
		}
	}
	return false
}

// Clone returns a copy sharing the backing until either side mutates.
func (ls *Lockset) Clone() *Lockset {
	ls.shared = true
	return &Lockset{small: ls.small, m: ls.m, shared: true}
}

// Reset empties the set and inserts the given elements, reusing the
// small backing array when it is exclusively owned.
func (ls *Lockset) Reset(elems ...Elem) {
	ls.m = nil
	if ls.shared {
		ls.small = nil
		ls.shared = false
	} else {
		ls.small = ls.small[:0]
	}
	for _, e := range elems {
		ls.Add(e)
	}
}

// Elems returns the elements in an unspecified order.
func (ls *Lockset) Elems() []Elem {
	if ls.m != nil {
		out := make([]Elem, 0, len(ls.m))
		for e := range ls.m {
			out = append(out, e)
		}
		return out
	}
	out := make([]Elem, len(ls.small))
	copy(out, ls.small)
	return out
}

// Equal reports set equality.
func (ls *Lockset) Equal(other *Lockset) bool {
	if ls.Len() != other.Len() {
		return false
	}
	for _, e := range ls.Elems() {
		if !other.Has(e) {
			return false
		}
	}
	return true
}

// String renders the set deterministically, e.g. "{T1, ma.lock, TL}".
func (ls *Lockset) String() string {
	elems := ls.Elems()
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = e.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
