package core_test

import (
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/scenarios"
)

// TestFigure6LocksetEvolution replays the Example 2 linearization and
// checks the lockset of o.data after each step against Figure 6 of the
// paper.
func TestFigure6LocksetEvolution(t *testing.T) {
	sc := scenarios.Ownership()
	odata := scenarios.Var(scenarios.IntBox, scenarios.FieldData)

	la := core.LockElem(scenarios.LockA)
	lb := core.LockElem(scenarios.LockB)
	t1, t2, t3 := core.ThreadElem(1), core.ThreadElem(2), core.ThreadElem(3)

	// Expected write lockset of o.data after each action (nil: no write
	// info yet).
	want := []*core.Lockset{
		0:  nil,                                 // alloc
		1:  core.NewLockset(t1),                 // tmp1.data = 0: first access
		2:  core.NewLockset(t1),                 // acq(ma)
		3:  core.NewLockset(t1),                 // a = tmp1
		4:  core.NewLockset(t1, la),             // rel(ma): T1 in LS, add ma
		5:  core.NewLockset(t1, la, t2),         // acq(ma) by T2: ma in LS, add T2
		6:  core.NewLockset(t1, la, t2),         // tmp2 = a
		7:  core.NewLockset(t1, la, t2),         // acq(mb)
		8:  core.NewLockset(t1, la, t2),         // b = tmp2
		9:  core.NewLockset(t1, la, t2, lb),     // rel(mb): T2 in LS, add mb
		10: core.NewLockset(t1, la, t2, lb),     // rel(ma): ma already in LS
		11: core.NewLockset(t1, la, t2, lb, t3), // acq(mb) by T3: mb in LS, add T3
		12: core.NewLockset(t3),                 // b.data = 2: T3 in LS, no race, reset
		13: core.NewLockset(t3),                 // tmp3 = b
		14: core.NewLockset(t3, lb),             // rel(mb): T3 in LS, add mb
		15: core.NewLockset(t3),                 // tmp3.data = 3: no race, reset
	}

	spec := core.NewSpecEngine()
	for i := 0; i < sc.Trace.Len(); i++ {
		if races := spec.Step(sc.Trace.At(i)); len(races) > 0 {
			t.Fatalf("step %d (%v): unexpected race %v", i, sc.Trace.At(i), races)
		}
		got := spec.WriteLockset(odata)
		if want[i] == nil {
			if got != nil {
				t.Errorf("step %d: lockset = %v, want none", i, got)
			}
			continue
		}
		if got == nil || !got.Equal(want[i]) {
			t.Errorf("step %d (%v): LS(o.data) = %v, want %v", i, sc.Trace.At(i), got, want[i])
		}
	}
}

// TestFigure7LocksetEvolution replays the Example 3 linearization and
// checks the lockset of o.data after each step against Figure 7.
func TestFigure7LocksetEvolution(t *testing.T) {
	sc := scenarios.TxList()
	odata := scenarios.Var(scenarios.Foo, scenarios.FieldData)

	head := core.VarElem(scenarios.Var(scenarios.Globals, scenarios.FieldHead))
	data := core.VarElem(odata)
	nxt := core.VarElem(scenarios.Var(scenarios.Foo, scenarios.FieldNxt))
	t1, t2, t3 := core.ThreadElem(1), core.ThreadElem(2), core.ThreadElem(3)

	want := []*core.Lockset{
		0: nil,                                               // alloc
		1: core.NewLockset(t1),                               // t1.data = 42
		2: core.NewLockset(t1, nxt, head),                    // T1 commit: add {o.nxt, &head}
		3: core.NewLockset(core.TL, t2, head, data, nxt),     // T2 commit: reset {T2,TL}, add R∪W
		4: core.NewLockset(core.TL, t2, head, data, nxt, t3), // T3 commit: add T3 (shares &head, o.nxt)
		5: core.NewLockset(core.TL, t2, head, data, nxt, t3), // t3 reads o.data: read info only
		6: core.NewLockset(t3),                               // t3.data++ write: no race, reset
	}

	spec := core.NewSpecEngine()
	for i := 0; i < sc.Trace.Len(); i++ {
		if races := spec.Step(sc.Trace.At(i)); len(races) > 0 {
			t.Fatalf("step %d (%v): unexpected race %v", i, sc.Trace.At(i), races)
		}
		got := spec.WriteLockset(odata)
		if want[i] == nil {
			if got != nil {
				t.Errorf("step %d: lockset = %v, want none", i, got)
			}
			continue
		}
		if got == nil || !got.Equal(want[i]) {
			t.Errorf("step %d (%v): LS(o.data) = %v, want %v", i, sc.Trace.At(i), got, want[i])
		}
	}
}

// raceKeys normalizes detector output to (position, variable) pairs.
func raceKeys(races []detect.Race) []string {
	out := make([]string, len(races))
	for i, r := range races {
		out[i] = r.Var.String() + "@" + itoa(r.Pos)
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// TestSpecScenarios checks the spec engine's verdicts on every paper
// scenario.
func TestSpecScenarios(t *testing.T) {
	for _, sc := range scenarios.All() {
		t.Run(sc.Name, func(t *testing.T) {
			if err := sc.Trace.Validate(); err != nil {
				t.Fatalf("invalid scenario trace: %v", err)
			}
			r := detect.FirstRace(core.NewSpecEngine(), sc.Trace)
			if sc.Racy {
				if r == nil {
					t.Fatalf("no race reported, want race on %v at %d", sc.RaceVar, sc.RacePos)
				}
				if r.Pos != sc.RacePos || r.Var != sc.RaceVar {
					t.Errorf("race = %v at %d, want %v at %d", r.Var, r.Pos, sc.RaceVar, sc.RacePos)
				}
			} else if r != nil {
				t.Errorf("false race: %v", r)
			}
		})
	}
}

// TestSpecReadsDoNotRace checks the read/write distinction: concurrent
// reads after a properly published write are race-free, while the
// undistinguished Figure 5 rules would have flagged them.
func TestSpecReadsDoNotRace(t *testing.T) {
	tr := event.NewBuilder().
		Write(1, 10, 0).
		Fork(1, 2).
		Fork(1, 3).
		Read(2, 10, 0). // concurrent with T3's read: fine
		Read(3, 10, 0).
		Read(2, 10, 0).
		Trace()
	if r := detect.FirstRace(core.NewSpecEngine(), tr); r != nil {
		t.Errorf("read-read flagged: %v", r)
	}
}

// TestSpecWriteAfterConcurrentReads: a write must be checked against
// every thread's reads, not just the last write.
func TestSpecWriteAfterConcurrentReads(t *testing.T) {
	tr := event.NewBuilder().
		Write(1, 10, 0).
		Fork(1, 2).
		Fork(1, 3).
		Read(2, 10, 0).
		Read(3, 10, 0).
		Write(1, 10, 0). // races with both reads
		Trace()
	r := detect.FirstRace(core.NewSpecEngine(), tr)
	if r == nil || r.Pos != 5 {
		t.Errorf("write-after-reads race = %v, want at 5", r)
	}
}

// TestSpecVolatileHandshake: ownership transfer through a volatile
// flag (rule 2/3), the idiom behind barrier synchronization.
func TestSpecVolatileHandshake(t *testing.T) {
	tr := event.NewBuilder().
		Write(1, 10, 0).
		VolatileWrite(1, 1, 0). // T1 in LS: add (g, v0)
		Fork(1, 2).
		VolatileRead(2, 1, 0). // (g, v0) in LS: add T2
		Write(2, 10, 0).       // no race
		Trace()
	if r := detect.FirstRace(core.NewSpecEngine(), tr); r != nil {
		t.Errorf("volatile handshake flagged: %v", r)
	}

	// Without the volatile read, the same access races. The write still
	// happens after fork so the fork edge cannot save it.
	tr2 := event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		VolatileWrite(1, 1, 0).
		Write(2, 10, 0).
		Trace()
	if r := detect.FirstRace(core.NewSpecEngine(), tr2); r == nil || r.Pos != 3 {
		t.Errorf("unsynchronized write = %v, want race at 3", r)
	}
}

// TestSpecForkJoin: rules 6 and 7.
func TestSpecForkJoin(t *testing.T) {
	tr := event.NewBuilder().
		Write(1, 10, 0).
		Fork(1, 2).
		Write(2, 10, 0). // ordered by fork
		Join(1, 2).
		Write(1, 10, 0). // ordered by join
		Trace()
	if r := detect.FirstRace(core.NewSpecEngine(), tr); r != nil {
		t.Errorf("fork/join flagged: %v", r)
	}
}

// TestSpecAllocResets: rule 8 — reusing an address after allocation
// starts with empty locksets.
func TestSpecAllocResets(t *testing.T) {
	tr := event.NewBuilder().
		Alloc(1, 10).
		Write(1, 10, 0).
		Fork(1, 2).
		Alloc(2, 11).
		Write(2, 11, 0).
		Trace()
	if r := detect.FirstRace(core.NewSpecEngine(), tr); r != nil {
		t.Errorf("fresh allocations flagged: %v", r)
	}
}

// TestSpecTransactionVsPlainSameThread: a thread's own transactional and
// plain accesses never race.
func TestSpecTransactionVsPlainSameThread(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	tr := event.NewBuilder().
		Write(1, 10, 0).
		Commit(1, nil, []event.Variable{v}).
		Write(1, 10, 0).
		Trace()
	if r := detect.FirstRace(core.NewSpecEngine(), tr); r != nil {
		t.Errorf("same-thread txn/plain flagged: %v", r)
	}
}

// TestSpecTransactionReadVsPlainRead: a transactional read and a plain
// read do not conflict even when unordered (no write anywhere).
func TestSpecTransactionReadVsPlainRead(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	tr := event.NewBuilder().
		Fork(1, 2).
		Read(1, 10, 0).
		Commit(2, []event.Variable{v}, nil).
		Trace()
	if r := detect.FirstRace(core.NewSpecEngine(), tr); r != nil {
		t.Errorf("txn-read vs plain-read flagged: %v", r)
	}
}

// TestSpecTransactionWriteVsPlainRead: an unordered transactional write
// against a plain read is a race (case 3 of the definition).
func TestSpecTransactionWriteVsPlainRead(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	tr := event.NewBuilder().
		Fork(1, 2).
		Read(1, 10, 0).
		Commit(2, nil, []event.Variable{v}).
		Trace()
	r := detect.FirstRace(core.NewSpecEngine(), tr)
	if r == nil || r.Pos != 2 || r.Var != v {
		t.Errorf("txn-write vs plain-read = %v, want race at 2", r)
	}
}

// TestSpecTwoTransactionsNeverRace: commit/commit pairs are exempt.
func TestSpecTwoTransactionsNeverRace(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	tr := event.NewBuilder().
		Fork(1, 2).
		Commit(1, nil, []event.Variable{v}).
		Commit(2, nil, []event.Variable{v}).
		Trace()
	if r := detect.FirstRace(core.NewSpecEngine(), tr); r != nil {
		t.Errorf("txn-txn flagged: %v", r)
	}
}

// TestSpecOwnershipTransferThroughTransaction: a variable never touched
// by any transaction can still be handed over through one — the
// data-variable lockset elements at work (Section 4's "ownership
// transfer of variable without accessing the variable").
func TestSpecOwnershipTransferThroughTransaction(t *testing.T) {
	shared := event.Variable{Obj: 11, Field: 0}
	tr := event.NewBuilder().
		Fork(1, 2). // T2 exists before the writes: only the commits order them
		Write(1, 10, 0).
		Commit(1, nil, []event.Variable{shared}).
		Commit(2, []event.Variable{shared}, nil).
		Write(2, 10, 0).
		Trace()
	if r := detect.FirstRace(core.NewSpecEngine(), tr); r != nil {
		t.Errorf("transaction handoff flagged: %v", r)
	}
}
