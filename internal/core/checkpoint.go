package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
	"sort"

	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/resilience"
)

// This file implements engine checkpoint/restore: the complete detector
// state of an optimized Engine — the sharded variable table (Write/Read
// Info records with their memoized locksets, positions, and
// happens-before caches), the per-thread lock records, the retained
// synchronization event list, the governor ladder position, and every
// Stats counter — serialized to a checksummed snapshot and rebuilt into
// a fresh engine. A restored engine is stats-identical to one that
// never stopped: replaying the suffix of a trace after restore yields
// the same verdicts, the same Figure 5 rule-fire counts, and the same
// Stats as the uninterrupted run (pinned by TestCheckpointEveryPrefix).
//
// The format mirrors the streaming trace format's durability story: a
// header line identifying the format, then one body line whose payload
// carries a CRC-32 (IEEE), so a torn or bit-rotten snapshot is detected
// on load instead of silently restoring a corrupt detector.
//
//	{"format":"goldilocks-checkpoint","version":1}
//	{"engine":{...},"crc":"7f1c0d3a"}
//
// Checkpoint requires quiescence: the caller must ensure no concurrent
// Step/Read/Write/Sync while the snapshot is taken (goldilocksd pauses
// the session's apply loop first). Restore builds a brand-new engine.

// CheckpointFormatName identifies the snapshot format.
const CheckpointFormatName = "goldilocks-checkpoint"

// CheckpointFormatVersion is the current snapshot version.
const CheckpointFormatVersion = 1

type ckptHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

type ckptBody struct {
	Engine json.RawMessage `json:"engine"`
	CRC    string          `json:"crc"`
}

// ckptOptions is Options minus the non-serializable attachments
// (Telemetry, Injector), which the restoring process supplies fresh.
type ckptOptions struct {
	SC1              bool               `json:"sc1,omitempty"`
	SC2              bool               `json:"sc2,omitempty"`
	SC3              bool               `json:"sc3,omitempty"`
	SC3MaxSegment    int                `json:"sc3_max_segment,omitempty"`
	XactSC           bool               `json:"xact_sc,omitempty"`
	Memoize          bool               `json:"memoize,omitempty"`
	HBCache          bool               `json:"hb_cache,omitempty"`
	FastPath         bool               `json:"fast_path,omitempty"`
	DisableAfterRace bool               `json:"disable_after_race,omitempty"`
	GCThreshold      int                `json:"gc_threshold,omitempty"`
	GCTrimFraction   float64            `json:"gc_trim_fraction,omitempty"`
	PartialEager     bool               `json:"partial_eager,omitempty"`
	TxnSemantics     event.TxnSemantics `json:"txn_semantics,omitempty"`
	OnError          uint8              `json:"on_error,omitempty"`
	MemoryBudget     int                `json:"memory_budget,omitempty"`
	VarShards        int                `json:"var_shards,omitempty"`
	BrokenRule       int                `json:"broken_rule,omitempty"`
}

type ckptElem struct {
	K event.FieldID `json:"k"` // ElemKind (FieldID-typed to keep tags terse)
	T event.Tid     `json:"t,omitempty"`
	O event.Addr    `json:"o,omitempty"`
	F event.FieldID `json:"f,omitempty"`
}

type ckptInfo struct {
	Owner   event.Tid       `json:"t"`
	Pos     uint64          `json:"pos"`
	OrigSeq uint64          `json:"orig"`
	ALock   event.Addr      `json:"alock,omitempty"`
	Xact    bool            `json:"xact,omitempty"`
	Action  json.RawMessage `json:"a"`
	Lockset []ckptElem      `json:"ls"`
	HBAfter []event.Tid     `json:"hb,omitempty"`
}

type ckptVar struct {
	Obj          event.Addr    `json:"o"`
	Field        event.FieldID `json:"f"`
	Write        *ckptInfo     `json:"w,omitempty"`
	Reads        []ckptInfo    `json:"r,omitempty"` // sorted by owner tid
	ReadsAllXact bool          `json:"rx,omitempty"`
	Disabled     bool          `json:"disabled,omitempty"`
	Quarantined  bool          `json:"quarantined,omitempty"`
}

type ckptThread struct {
	Tid   event.Tid    `json:"t"`
	Stack []event.Addr `json:"stack,omitempty"` // distinct held monitors, acquisition order
	Depth []int        `json:"depth,omitempty"` // reentrancy count per stack entry
}

// ckptChan is one channel's conveyor state (the ChanTracker entry).
// Absent from pre-channel snapshots, so version 1 stays readable.
type ckptChan struct {
	Obj    event.Addr `json:"o"`
	Cap    int32      `json:"cap,omitempty"`
	Sends  uint64     `json:"sends,omitempty"`
	Recvs  uint64     `json:"recvs,omitempty"`
	Closed bool       `json:"closed,omitempty"`
}

type ckptList struct {
	HeadSeq   uint64            `json:"head_seq"`
	Actions   []json.RawMessage `json:"actions"` // filled cells, head to tail
	Enqueued  uint64            `json:"enqueued"`
	Collected uint64            `json:"collected"`
}

// ckptCounters carries every Stats field plus the internals Stats is
// derived from, so the restored engine's Stats() is bit-identical.
type ckptCounters struct {
	AccessesChecked uint64 `json:"accesses_checked,omitempty"`
	PairChecks      uint64 `json:"pair_checks,omitempty"`
	SC1Hits         uint64 `json:"sc1_hits,omitempty"`
	SC2Hits         uint64 `json:"sc2_hits,omitempty"`
	SC3Hits         uint64 `json:"sc3_hits,omitempty"`
	XactHits        uint64 `json:"xact_hits,omitempty"`
	HBCacheHits     uint64 `json:"hb_cache_hits,omitempty"`
	FastPathHits    uint64 `json:"fast_path_hits,omitempty"`
	FullWalks       uint64 `json:"full_walks,omitempty"`
	WalkCells       uint64 `json:"walk_cells,omitempty"`
	Races           uint64 `json:"races,omitempty"`
	DegradedChecks  uint64 `json:"degraded_checks,omitempty"`
	VarsTracked     uint64 `json:"vars_tracked,omitempty"`
	Collections     uint64 `json:"collections,omitempty"`
	InfosAdvanced   uint64 `json:"infos_advanced,omitempty"`
	PanicsRecovered uint64 `json:"panics_recovered,omitempty"`
	VarsQuarantined uint64 `json:"vars_quarantined,omitempty"`
	Rung            int32  `json:"rung,omitempty"`
	Escalations     uint64 `json:"escalations,omitempty"`
	AggressiveGCs   uint64 `json:"aggressive_gcs,omitempty"`
	CacheSheds      uint64 `json:"cache_sheds,omitempty"`
	EagerSweeps     uint64 `json:"eager_sweeps,omitempty"`
	Degraded        bool   `json:"degraded,omitempty"`
}

type ckptPayload struct {
	Opts     ckptOptions  `json:"opts"`
	List     ckptList     `json:"list"`
	Threads  []ckptThread `json:"threads,omitempty"` // sorted by tid
	Chans    []ckptChan   `json:"chans,omitempty"`   // sorted by obj
	Vars     []ckptVar    `json:"vars,omitempty"`    // sorted by (obj, field)
	Counters ckptCounters `json:"counters"`
	// Telemetry counters, present when the checkpointed engine had
	// telemetry attached: event-level rule fires and walk-effect hits
	// (indexed 0..NumRules), added into the restoring telemetry so
	// rule-fire counts stay linearization-exact across a restart.
	RuleFires    []uint64 `json:"rule_fires,omitempty"`
	WalkRuleHits []uint64 `json:"walk_rule_hits,omitempty"`
}

// RestoreAttach carries the process-local attachments a restored engine
// cannot read from the snapshot: a telemetry bundle (checkpointed rule
// fires are added into it) and a fault injector. Both may be nil.
type RestoreAttach struct {
	Telemetry *obs.Telemetry
	Injector  *resilience.Injector
}

// Checkpoint serializes the engine's complete detector state to w. The
// engine must be quiescent: no concurrent Step/Read/Write/Sync calls.
func (e *Engine) Checkpoint(w io.Writer) error {
	payload, err := e.snapshot()
	if err != nil {
		return err
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	hdr, err := json.Marshal(ckptHeader{Format: CheckpointFormatName, Version: CheckpointFormatVersion})
	if err != nil {
		return err
	}
	rec, err := json.Marshal(ckptBody{Engine: body, CRC: fmt.Sprintf("%08x", crc32.ChecksumIEEE(body))})
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	bw.Write(append(hdr, '\n'))
	bw.Write(append(rec, '\n'))
	return bw.Flush()
}

// snapshot assembles the checkpoint payload.
func (e *Engine) snapshot() (*ckptPayload, error) {
	o := e.opts
	p := &ckptPayload{
		Opts: ckptOptions{
			SC1: o.SC1, SC2: o.SC2, SC3: o.SC3, SC3MaxSegment: o.SC3MaxSegment,
			XactSC: o.XactSC, Memoize: o.Memoize, HBCache: o.HBCache,
			FastPath:         o.FastPath,
			DisableAfterRace: o.DisableAfterRace,
			GCThreshold:      o.GCThreshold, GCTrimFraction: o.GCTrimFraction,
			PartialEager: o.PartialEager, TxnSemantics: o.TxnSemantics,
			OnError: uint8(o.OnError), MemoryBudget: o.MemoryBudget,
			VarShards: len(e.varShards), BrokenRule: o.BrokenRule,
		},
	}

	// Event list: the retained filled cells are a contiguous seq range
	// from head to the sentinel (trim only ever drops a prefix).
	e.list.mu.Lock()
	head := e.list.head
	e.list.mu.Unlock()
	tail := e.list.snapshotTail()
	p.List.HeadSeq = head.seq
	p.List.Enqueued = e.list.enqueued.Load()
	p.List.Collected = e.list.collected.Load()
	for c := head; c != tail && c != nil && c.filled; c = c.next {
		a, err := event.MarshalAction(c.action)
		if err != nil {
			return nil, err
		}
		p.List.Actions = append(p.List.Actions, a)
	}

	// Per-thread lock records.
	e.locks.Range(func(k, v any) bool {
		t := k.(event.Tid)
		tl := v.(*threadLocks)
		tl.mu.Lock()
		ct := ckptThread{Tid: t, Stack: slices.Clone(tl.stack)}
		for _, a := range ct.Stack {
			ct.Depth = append(ct.Depth, tl.held[a])
		}
		tl.mu.Unlock()
		p.Threads = append(p.Threads, ct)
		return true
	})
	sort.Slice(p.Threads, func(i, j int) bool { return p.Threads[i].Tid < p.Threads[j].Tid })

	// Channel conveyor state.
	e.chanMu.Lock()
	for c, cs := range e.chans.Snapshot() {
		p.Chans = append(p.Chans, ckptChan{Obj: c, Cap: cs.Cap, Sends: cs.Sends, Recvs: cs.Recvs, Closed: cs.Closed})
	}
	e.chanMu.Unlock()
	sort.Slice(p.Chans, func(i, j int) bool { return p.Chans[i].Obj < p.Chans[j].Obj })

	// Variable table: every tracked state, including info-less ones
	// (quarantined or alloc-reset variables still occupy a table slot,
	// which VarsTracked counts).
	for i := range e.varShards {
		sh := &e.varShards[i]
		sh.mu.RLock()
		for obj, fields := range sh.vars {
			for field, vs := range fields {
				cv, err := snapshotVar(obj, field, vs)
				if err != nil {
					sh.mu.RUnlock()
					return nil, err
				}
				p.Vars = append(p.Vars, cv)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(p.Vars, func(i, j int) bool {
		a, b := p.Vars[i], p.Vars[j]
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Field < b.Field
	})

	// Counters: the summed stat stripes plus the off-path atomics.
	s := e.Stats()
	p.Counters = ckptCounters{
		AccessesChecked: s.AccessesChecked, PairChecks: s.PairChecks,
		SC1Hits: s.SC1Hits, SC2Hits: s.SC2Hits, SC3Hits: s.SC3Hits,
		XactHits: s.XactHits, HBCacheHits: s.HBCacheHits,
		FastPathHits: s.FastPathHits,
		FullWalks:    s.FullWalks, WalkCells: s.WalkCells, Races: s.Races,
		DegradedChecks: s.DegradedChecks, VarsTracked: s.VarsTracked,
		Collections: s.Collections, InfosAdvanced: s.InfosAdvanced,
		PanicsRecovered: s.PanicsRecovered, VarsQuarantined: s.VarsQuarantined,
		Rung: int32(s.GovernorRung), Escalations: s.Escalations,
		AggressiveGCs: s.AggressiveGCs, CacheSheds: s.CacheSheds,
		EagerSweeps: s.EagerSweeps, Degraded: e.degraded.Load(),
	}

	if e.tel != nil {
		fires := e.tel.RuleFires()
		p.RuleFires = fires[:]
		p.WalkRuleHits = make([]uint64, obs.NumRules+1)
		for i := 1; i <= obs.NumRules; i++ {
			p.WalkRuleHits[i] = e.tel.WalkRuleHits[i].Load()
		}
	}
	return p, nil
}

// snapshotVar serializes one variable state under its own mutex.
func snapshotVar(obj event.Addr, field event.FieldID, vs *varState) (ckptVar, error) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	cv := ckptVar{
		Obj: obj, Field: field,
		ReadsAllXact: vs.readsAllXact,
		Disabled:     vs.disabled,
		Quarantined:  vs.quarantined,
	}
	if vs.write != nil {
		ci, err := snapshotInfo(vs.write)
		if err != nil {
			return cv, err
		}
		cv.Write = &ci
	}
	tids := make([]event.Tid, 0, len(vs.reads))
	for t := range vs.reads {
		tids = append(tids, t)
	}
	slices.Sort(tids)
	for _, t := range tids {
		ci, err := snapshotInfo(vs.reads[t])
		if err != nil {
			return cv, err
		}
		cv.Reads = append(cv.Reads, ci)
	}
	return cv, nil
}

func snapshotInfo(in *info) (ckptInfo, error) {
	a, err := event.MarshalAction(in.action)
	if err != nil {
		return ckptInfo{}, err
	}
	ci := ckptInfo{
		Owner: in.owner, Pos: in.pos.seq, OrigSeq: in.origSeq,
		ALock: in.alock, Xact: in.xact, Action: a,
	}
	elems := in.ls.Elems()
	sort.Slice(elems, func(i, j int) bool {
		a, b := elems[i], elems[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Field < b.Field
	})
	for _, el := range elems {
		ci.Lockset = append(ci.Lockset, ckptElem{K: event.FieldID(el.Kind), T: el.Tid, O: el.Obj, F: el.Field})
	}
	for t := range in.hbAfter {
		ci.HBAfter = append(ci.HBAfter, t)
	}
	slices.Sort(ci.HBAfter)
	return ci, nil
}

// RestoreEngine rebuilds an engine from a checkpoint written by
// Checkpoint. The snapshot carries the engine's configuration; attach
// supplies the process-local telemetry and fault-injection attachments.
// A corrupt snapshot (torn write, checksum mismatch, unknown version)
// is an error — never a silently wrong detector.
//
// RestoreEngine consumes exactly the checkpoint's two lines and nothing
// past them: callers that pass a *bufio.Reader can keep reading their
// own trailing records from the same stream (composed snapshots rely on
// this — e.g. a serializability checker appending its graph state after
// the engine snapshot).
func RestoreEngine(r io.Reader, attach RestoreAttach) (*Engine, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	line, err := readCkptLine(br)
	if err != nil {
		return nil, fmt.Errorf("core: empty checkpoint")
	}
	var hdr ckptHeader
	if err := json.Unmarshal(line, &hdr); err != nil || hdr.Format != CheckpointFormatName {
		return nil, fmt.Errorf("core: not a %s snapshot", CheckpointFormatName)
	}
	if hdr.Version != CheckpointFormatVersion {
		return nil, fmt.Errorf("core: unsupported checkpoint version %d", hdr.Version)
	}
	line, err = readCkptLine(br)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint body missing (torn write?)")
	}
	var body ckptBody
	if err := json.Unmarshal(line, &body); err != nil || len(body.Engine) == 0 {
		return nil, fmt.Errorf("core: unreadable checkpoint body")
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(body.Engine)); got != body.CRC {
		return nil, fmt.Errorf("core: checkpoint checksum mismatch (got %s, recorded %s)", got, body.CRC)
	}
	var p ckptPayload
	if err := json.Unmarshal(body.Engine, &p); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	return restore(&p, attach)
}

// readCkptLine reads one newline-terminated record without consuming
// anything beyond it. A final unterminated line (no trailing newline
// before EOF) is accepted; an empty read is an error.
func readCkptLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if len(line) > 0 && line[len(line)-1] == '\n' {
		return line[:len(line)-1], nil
	}
	if err == io.EOF && len(line) > 0 {
		return line, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return nil, err
}

func restore(p *ckptPayload, attach RestoreAttach) (*Engine, error) {
	co := p.Opts
	opts := Options{
		SC1: co.SC1, SC2: co.SC2, SC3: co.SC3, SC3MaxSegment: co.SC3MaxSegment,
		XactSC: co.XactSC, Memoize: co.Memoize, HBCache: co.HBCache,
		FastPath:         co.FastPath,
		DisableAfterRace: co.DisableAfterRace,
		GCThreshold:      co.GCThreshold, GCTrimFraction: co.GCTrimFraction,
		PartialEager: co.PartialEager, TxnSemantics: co.TxnSemantics,
		OnError: resilience.ErrorPolicy(co.OnError), MemoryBudget: co.MemoryBudget,
		VarShards: co.VarShards, BrokenRule: co.BrokenRule,
		Telemetry: attach.Telemetry, Injector: attach.Injector,
	}
	e := NewEngine(opts)

	// Event list: rebuild the contiguous cell chain and a seq index for
	// re-anchoring Info positions.
	cells := make(map[uint64]*cell, len(p.List.Actions)+1)
	head := &cell{seq: p.List.HeadSeq}
	cells[head.seq] = head
	cur := head
	for _, raw := range p.List.Actions {
		a, err := event.UnmarshalAction(raw)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint list: %w", err)
		}
		cur.action = a
		cur.filled = true
		cur.next = &cell{seq: cur.seq + 1}
		cur = cur.next
		cells[cur.seq] = cur
	}
	e.list.head = head
	e.list.tail.Store(cur)
	e.list.length.Store(int64(len(p.List.Actions)))
	e.list.enqueued.Store(p.List.Enqueued)
	e.list.collected.Store(p.List.Collected)

	// Per-thread lock records, with published snapshots.
	for _, ct := range p.Threads {
		if len(ct.Depth) != len(ct.Stack) {
			return nil, fmt.Errorf("core: checkpoint thread %v: %d stack entries, %d depths", ct.Tid, len(ct.Stack), len(ct.Depth))
		}
		tl := &threadLocks{held: make(map[event.Addr]int, len(ct.Stack))}
		tl.stack = slices.Clone(ct.Stack)
		for i, a := range ct.Stack {
			tl.held[a] = ct.Depth[i]
		}
		tl.mu.Lock()
		tl.publishLocked()
		tl.mu.Unlock()
		e.locks.Store(ct.Tid, tl)
	}

	// Channel conveyor state.
	if len(p.Chans) > 0 {
		snap := make(map[event.Addr]event.ChanState, len(p.Chans))
		for _, cc := range p.Chans {
			snap[cc.Obj] = event.ChanState{Cap: cc.Cap, Sends: cc.Sends, Recvs: cc.Recvs, Closed: cc.Closed}
		}
		e.chans.Restore(snap)
	}

	// Variable table.
	for _, cv := range p.Vars {
		vs := &varState{
			readsAllXact: cv.ReadsAllXact,
			disabled:     cv.Disabled,
			quarantined:  cv.Quarantined,
		}
		if cv.Write != nil {
			in, err := restoreInfo(*cv.Write, cells)
			if err != nil {
				return nil, err
			}
			vs.write = in
		}
		if len(cv.Reads) > 0 {
			vs.reads = make(map[event.Tid]*info, len(cv.Reads))
			for _, ci := range cv.Reads {
				in, err := restoreInfo(ci, cells)
				if err != nil {
					return nil, err
				}
				vs.reads[ci.Owner] = in
			}
		}
		sh := &e.varShards[varHash(cv.Obj, cv.Field)&e.shardMask]
		fields, ok := sh.vars[cv.Obj]
		if !ok {
			fields = make(map[event.FieldID]*varState)
			sh.vars[cv.Obj] = fields
		}
		fields[cv.Field] = vs
	}

	// Counters: the hot-path sums land on stripe 0 (Stats sums stripes,
	// so the distribution is unobservable); the rest on their atomics.
	c := p.Counters
	st := &e.stats[0]
	st.accessesChecked.Store(c.AccessesChecked)
	st.pairChecks.Store(c.PairChecks)
	st.sc1Hits.Store(c.SC1Hits)
	st.sc2Hits.Store(c.SC2Hits)
	st.sc3Hits.Store(c.SC3Hits)
	st.xactHits.Store(c.XactHits)
	st.hbCacheHits.Store(c.HBCacheHits)
	st.fastPathHits.Store(c.FastPathHits)
	st.fullWalks.Store(c.FullWalks)
	st.walkCells.Store(c.WalkCells)
	st.races.Store(c.Races)
	st.degradedChecks.Store(c.DegradedChecks)
	e.varsTracked.Store(c.VarsTracked)
	e.collections.Store(c.Collections)
	e.infosAdvanced.Store(c.InfosAdvanced)
	e.panicsRecovered.Store(c.PanicsRecovered)
	e.varsQuarantined.Store(c.VarsQuarantined)
	e.rung.Store(c.Rung)
	e.escalations.Store(c.Escalations)
	e.aggressiveGCs.Store(c.AggressiveGCs)
	e.cacheSheds.Store(c.CacheSheds)
	e.eagerSweeps.Store(c.EagerSweeps)
	e.degraded.Store(c.Degraded)

	if attach.Telemetry != nil {
		for i := 1; i <= obs.NumRules && i < len(p.RuleFires); i++ {
			attach.Telemetry.Rules[i].Add(p.RuleFires[i])
		}
		for i := 1; i <= obs.NumRules && i < len(p.WalkRuleHits); i++ {
			attach.Telemetry.WalkRuleHits[i].Add(p.WalkRuleHits[i])
		}
	}
	return e, nil
}

// restoreInfo rebuilds one Info record and re-acquires its list
// reference.
func restoreInfo(ci ckptInfo, cells map[uint64]*cell) (*info, error) {
	pos, ok := cells[ci.Pos]
	if !ok {
		return nil, fmt.Errorf("core: checkpoint info at seq %d: cell not retained", ci.Pos)
	}
	a, err := event.UnmarshalAction(ci.Action)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint info action: %w", err)
	}
	ls := NewLockset()
	for _, el := range ci.Lockset {
		ls.Add(Elem{Kind: ElemKind(el.K), Tid: el.T, Obj: el.O, Field: el.F})
	}
	in := &info{
		pos: pos, owner: ci.Owner, ls: ls, alock: ci.ALock,
		xact: ci.Xact, action: a, origSeq: ci.OrigSeq,
	}
	if len(ci.HBAfter) > 0 {
		in.hbAfter = make(map[event.Tid]struct{}, len(ci.HBAfter))
		for _, t := range ci.HBAfter {
			in.hbAfter[t] = struct{}{}
		}
	}
	pos.refs.Add(1)
	return in, nil
}
