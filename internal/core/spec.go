package core

import (
	"slices"

	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/report"
)

// SpecEngine is the executable specification of the generalized
// Goldilocks algorithm: the lockset update rules of Figure 5 applied
// eagerly to every tracked lockset at every synchronization action,
// extended with the read/write distinction of Section 5.
//
// Per data variable it maintains the lockset of the last write access
// and, for each thread, the lockset of that thread's last read access
// since the last write (mirroring WriteInfo/ReadInfo in the optimized
// engine, but with explicit, eagerly-updated locksets). A read access is
// checked against the write lockset only; a write access is checked
// against the write lockset and every read lockset.
//
// The engine is deliberately simple and slow (every synchronization
// action touches every lockset); it exists as ground truth and for the
// lockset-evolution traces of Figures 6 and 7.
type SpecEngine struct {
	sem    event.TxnSemantics
	writes map[event.Variable]*Lockset
	reads  map[event.Variable]map[event.Tid]*Lockset

	// chans normalizes channel operations to the conveyor-slot or closed
	// synchronization elements they transfer locksets through. A channel
	// operation that could not have completed (send on a closed channel,
	// recv with nothing in flight) is a malformed linearization: the spec
	// engine panics with a structured corruption report rather than guess
	// at semantics.
	chans *event.ChanTracker

	// log records every processed synchronization action (the spec
	// engine's equivalent of the optimized engine's event list), and
	// writesAt/readsAt record, per tracked lockset, the access that
	// created it and its log position. Together they let a detected race
	// be explained with the same provenance the optimized engine
	// reconstructs (obs.Provenance).
	log      []event.Action
	writesAt map[event.Variable]*specAccess
	readsAt  map[event.Variable]map[event.Tid]*specAccess

	// observer, if non-nil, is invoked after each action with the
	// variable locksets it changed; used to print Figure 6/7 traces.
	observer func(a event.Action)

	// tel receives the per-rule fire counters; nil when disabled.
	tel *obs.Telemetry
}

// specAccess describes the access that created a tracked lockset: who
// performed it, the action, whether it was transactional, and the log
// position just after it (the point its lockset was valid at).
type specAccess struct {
	owner  event.Tid
	action event.Action
	xact   bool
	idx    int
}

// NewSpecEngine returns an empty specification engine using the
// paper's shared-variable transaction semantics.
func NewSpecEngine() *SpecEngine {
	return NewSpecEngineSem(event.TxnSharedVariable)
}

// NewSpecEngineSem returns a specification engine under the chosen
// transaction semantics (Section 3's alternative interpretations of
// strong atomicity).
func NewSpecEngineSem(sem event.TxnSemantics) *SpecEngine {
	return &SpecEngine{
		sem:      sem,
		writes:   make(map[event.Variable]*Lockset),
		reads:    make(map[event.Variable]map[event.Tid]*Lockset),
		chans:    event.NewChanTracker(),
		writesAt: make(map[event.Variable]*specAccess),
		readsAt:  make(map[event.Variable]map[event.Tid]*specAccess),
	}
}

// SetTelemetry attaches (or detaches, with nil) a telemetry bundle; the
// spec engine feeds its per-rule fire counters the same event-level way
// the optimized engine does, so both report identical counts for the
// same linearization.
func (s *SpecEngine) SetTelemetry(tel *obs.Telemetry) { s.tel = tel }

// Name implements detect.Detector.
func (s *SpecEngine) Name() string { return "goldilocks-spec" }

// SetObserver registers f to run after every processed action.
func (s *SpecEngine) SetObserver(f func(a event.Action)) { s.observer = f }

// WriteLockset returns the current lockset guarding the last write to v,
// or nil if v has not been written. The caller must not modify it.
func (s *SpecEngine) WriteLockset(v event.Variable) *Lockset { return s.writes[v] }

// ReadLocksets returns the per-thread locksets guarding reads of v since
// the last write. The caller must not modify the result.
func (s *SpecEngine) ReadLocksets(v event.Variable) map[event.Tid]*Lockset { return s.reads[v] }

// forEach applies f to every tracked lockset.
func (s *SpecEngine) forEach(f func(ls *Lockset)) {
	for _, ls := range s.writes {
		f(ls)
	}
	for _, byTid := range s.reads {
		for _, ls := range byTid {
			f(ls)
		}
	}
}

// Step implements detect.Detector.
func (s *SpecEngine) Step(a event.Action) []detect.Race {
	var races []detect.Race
	t := a.Thread
	te := ThreadElem(t)

	if a.Kind.IsMarker() {
		// Region markers are serializability-checker annotations, not
		// synchronization: no rule fires, no log entry, no lockset
		// update. Mirrors the optimized engine's skip so both engines
		// stay event-for-event identical on marked traces.
		return nil
	}
	if a.Kind.IsChan() {
		na, err := s.chans.Normalize(a)
		if err != nil {
			panic(&report.Report{Kind: report.Corruption, Detail: "spec engine: malformed linearization: " + err.Error()})
		}
		a = na
	}

	if s.tel != nil {
		// Event-level rule fires, matching the optimized engine: rule 1
		// per plain data access, the action's own rule otherwise.
		if a.Kind.IsData() {
			s.tel.Fire(obs.RuleAccess)
		} else {
			s.tel.FireKind(a.Kind)
		}
	}
	if a.Kind.IsSync() {
		// The log position of an access is the log length at the access;
		// a commit joins the log before its variables are checked, the
		// same order the optimized engine enqueues it.
		s.log = append(s.log, a)
	}

	switch a.Kind {
	case event.KindVolatileRead:
		ve := VolatileElem(a.Volatile())
		s.forEach(func(ls *Lockset) {
			if ls.Has(ve) {
				ls.Add(te)
			}
		})
	case event.KindVolatileWrite:
		ve := VolatileElem(a.Volatile())
		s.forEach(func(ls *Lockset) {
			if ls.Has(te) {
				ls.Add(ve)
			}
		})
	case event.KindAcquire:
		le := LockElem(a.Obj)
		s.forEach(func(ls *Lockset) {
			if ls.Has(le) {
				ls.Add(te)
			}
		})
	case event.KindRelease:
		le := LockElem(a.Obj)
		s.forEach(func(ls *Lockset) {
			if ls.Has(te) {
				ls.Add(le)
			}
		})
	case event.KindFork:
		ue := ThreadElem(a.Peer)
		s.forEach(func(ls *Lockset) {
			if ls.Has(te) {
				ls.Add(ue)
			}
		})
	case event.KindJoin:
		ue := ThreadElem(a.Peer)
		s.forEach(func(ls *Lockset) {
			if ls.Has(ue) {
				ls.Add(te)
			}
		})
	case event.KindChanMake:
		// No rule fires: chmake only registers the channel in the tracker
		// (already done by the Normalize above).
	case event.KindChanSend:
		// Rule 10: acquire the slot's prior recv edge, then release the
		// message onto the slot — in that order, per lockset.
		ce := VolatileElem(a.Volatile())
		s.forEach(func(ls *Lockset) {
			if ls.Has(ce) {
				ls.Add(te)
			}
			if ls.Has(te) {
				ls.Add(ce)
			}
		})
	case event.KindChanRecv:
		// Rule 11: the dual of rule 10; a drain recv from a closed channel
		// (normalized to the closed element) only acquires.
		ce := VolatileElem(a.Volatile())
		drain := a.Field == event.ChanClosedField
		s.forEach(func(ls *Lockset) {
			if ls.Has(ce) {
				ls.Add(te)
			}
			if !drain && ls.Has(te) {
				ls.Add(ce)
			}
		})
	case event.KindChanClose:
		// Rule 12: broadcast release onto the channel's closed element.
		ce := VolatileElem(a.Volatile())
		s.forEach(func(ls *Lockset) {
			if ls.Has(te) {
				ls.Add(ce)
			}
		})
	case event.KindAlloc:
		// Rule 8: fresh object, fresh (empty) locksets for its fields.
		for v := range s.writes {
			if v.Obj == a.Obj {
				delete(s.writes, v)
				delete(s.writesAt, v)
			}
		}
		for v := range s.reads {
			if v.Obj == a.Obj {
				delete(s.reads, v)
				delete(s.readsAt, v)
			}
		}
	case event.KindRead:
		v := a.Variable()
		if r := s.checkAccess(v, t, false, a); r != nil {
			races = append(races, *r)
		}
		s.readerSet(v, t, NewLockset(te), s.accessRecord(t, a, false))
	case event.KindWrite:
		v := a.Variable()
		if r := s.checkAccess(v, t, false, a); r != nil {
			races = append(races, *r)
		}
		s.writes[v] = NewLockset(te)
		s.writesAt[v] = s.accessRecord(t, a, false)
		delete(s.reads, v)
		delete(s.readsAt, v)
	case event.KindCommit:
		races = s.commit(a)
	}

	if s.observer != nil {
		s.observer(a)
	}
	return races
}

// checkAccess performs the race-freedom check for an access to v by t.
// A read is checked against the write lockset; a write additionally
// against every read lockset. inTxn relaxes the check with TL
// membership: an access inside a transaction is race-free against a
// previous access that was also inside a transaction.
func (s *SpecEngine) checkAccess(v event.Variable, t event.Tid, inTxn bool, a event.Action) *detect.Race {
	ok := func(ls *Lockset) bool {
		if ls == nil || ls.Empty() {
			return true
		}
		if ls.HasThread(t) {
			return true
		}
		// The TL exemption encodes "commit/commit pairs never race",
		// which only holds when the semantics orders commits over a
		// common variable; under write-to-read it does not apply.
		return inTxn && s.sem != event.TxnWriteToRead && ls.Has(TL)
	}
	if !ok(s.writes[v]) {
		return s.raceAt(v, t, a, s.writesAt[v])
	}
	if a.Kind == event.KindWrite || (a.Kind == event.KindCommit && a.WritesVar(v)) {
		// Sorted reader order: the first racy reader is reported, so
		// map-order iteration would make the previous access (and its
		// provenance) vary between replays of the same linearization.
		tids := make([]event.Tid, 0, len(s.reads[v]))
		for u := range s.reads[v] {
			if u != t {
				tids = append(tids, u)
			}
		}
		slices.Sort(tids)
		for _, u := range tids {
			if !ok(s.reads[v][u]) {
				return s.raceAt(v, t, a, s.readsAt[v][u])
			}
		}
	}
	return nil
}

// raceAt builds the race report for an access a by t on v that
// conflicts with the earlier access prev, attaching provenance when the
// record is available.
func (s *SpecEngine) raceAt(v event.Variable, t event.Tid, a event.Action, prev *specAccess) *detect.Race {
	r := &detect.Race{Var: v, Access: a}
	if prev != nil {
		r.Prev = prev.action
		r.HasPrev = true
		r.Prov = s.buildProvenance(v, prev, t)
	}
	return r
}

// buildProvenance is the spec engine's provenance reconstruction: the
// same base-lockset re-derivation and rule replay as the optimized
// engine's, over the log segment after the previous access.
func (s *SpecEngine) buildProvenance(v event.Variable, prev *specAccess, t event.Tid) *obs.Provenance {
	p := &obs.Provenance{
		Var:    v.String(),
		Prev:   prev.action.String(),
		Thread: t.String(),
	}
	ls := baseLockset(prev.owner, prev.xact, prev.action, s.sem)
	p.Base = ls.String()
	provReplay(p, ls, s.log[prev.idx:], uint64(prev.idx), ruleSet{sem: s.sem})
	return p
}

// accessRecord builds the specAccess for an access happening now.
func (s *SpecEngine) accessRecord(t event.Tid, a event.Action, xact bool) *specAccess {
	return &specAccess{owner: t, action: a, xact: xact, idx: len(s.log)}
}

// commit applies rule 9 of Figure 5, generalized with the read/write
// distinction: an acquire phase over all locksets, a per-accessed-
// variable check-and-reset phase, and a release phase over all locksets.
func (s *SpecEngine) commit(a event.Action) []detect.Race {
	t := a.Thread
	te := ThreadElem(t)
	rw := make([]event.Variable, 0, len(a.Reads)+len(a.Writes))
	rw = append(rw, a.Reads...)
	rw = append(rw, a.Writes...)

	// Acquire phase: the committing thread becomes an owner of every
	// variable whose lockset witnesses an incoming synchronizes-with
	// edge under the configured transaction semantics.
	acquires := func(ls *Lockset) bool {
		switch s.sem {
		case event.TxnAtomicOrder:
			return ls.Has(TL)
		case event.TxnWriteToRead:
			return ls.IntersectsVars(a.Reads)
		default:
			return ls.IntersectsVars(rw)
		}
	}
	s.forEach(func(ls *Lockset) {
		if acquires(ls) {
			ls.Add(te)
		}
	})

	// Access phase: check and reset each accessed variable. A variable
	// in both R and W is treated as a write.
	var races []detect.Race
	written := make(map[event.Variable]bool, len(a.Writes))
	for _, v := range a.Writes {
		written[v] = true
	}
	checked := make(map[event.Variable]bool, len(rw))
	for _, v := range a.Writes {
		if checked[v] {
			continue
		}
		checked[v] = true
		if r := s.checkAccess(v, t, true, a); r != nil {
			races = append(races, *r)
		}
		s.writes[v] = NewLockset(te, TL)
		s.writesAt[v] = s.accessRecord(t, a, true)
		delete(s.reads, v)
		delete(s.readsAt, v)
	}
	for _, v := range a.Reads {
		if checked[v] || written[v] {
			continue
		}
		checked[v] = true
		if r := s.checkAccess(v, t, true, a); r != nil {
			races = append(races, *r)
		}
		s.readerSet(v, t, NewLockset(te, TL), s.accessRecord(t, a, true))
	}

	// Release phase: every variable owned by the committing thread can
	// now be re-acquired through the outgoing edge witnesses.
	release := func(ls *Lockset) {
		switch s.sem {
		case event.TxnAtomicOrder:
			ls.Add(TL)
		case event.TxnWriteToRead:
			ls.AddVars(a.Writes)
		default:
			ls.AddVars(rw)
		}
	}
	s.forEach(func(ls *Lockset) {
		if ls.Has(te) {
			release(ls)
		}
	})
	return races
}

func (s *SpecEngine) readerSet(v event.Variable, t event.Tid, ls *Lockset, rec *specAccess) {
	byTid, ok := s.reads[v]
	if !ok {
		byTid = make(map[event.Tid]*Lockset)
		s.reads[v] = byTid
	}
	byTid[t] = ls
	byRec, ok := s.readsAt[v]
	if !ok {
		byRec = make(map[event.Tid]*specAccess)
		s.readsAt[v] = byRec
	}
	byRec[t] = rec
}
