package core

import (
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
)

// SpecEngine is the executable specification of the generalized
// Goldilocks algorithm: the lockset update rules of Figure 5 applied
// eagerly to every tracked lockset at every synchronization action,
// extended with the read/write distinction of Section 5.
//
// Per data variable it maintains the lockset of the last write access
// and, for each thread, the lockset of that thread's last read access
// since the last write (mirroring WriteInfo/ReadInfo in the optimized
// engine, but with explicit, eagerly-updated locksets). A read access is
// checked against the write lockset only; a write access is checked
// against the write lockset and every read lockset.
//
// The engine is deliberately simple and slow (every synchronization
// action touches every lockset); it exists as ground truth and for the
// lockset-evolution traces of Figures 6 and 7.
type SpecEngine struct {
	sem    event.TxnSemantics
	writes map[event.Variable]*Lockset
	reads  map[event.Variable]map[event.Tid]*Lockset

	// observer, if non-nil, is invoked after each action with the
	// variable locksets it changed; used to print Figure 6/7 traces.
	observer func(a event.Action)
}

// NewSpecEngine returns an empty specification engine using the
// paper's shared-variable transaction semantics.
func NewSpecEngine() *SpecEngine {
	return NewSpecEngineSem(event.TxnSharedVariable)
}

// NewSpecEngineSem returns a specification engine under the chosen
// transaction semantics (Section 3's alternative interpretations of
// strong atomicity).
func NewSpecEngineSem(sem event.TxnSemantics) *SpecEngine {
	return &SpecEngine{
		sem:    sem,
		writes: make(map[event.Variable]*Lockset),
		reads:  make(map[event.Variable]map[event.Tid]*Lockset),
	}
}

// Name implements detect.Detector.
func (s *SpecEngine) Name() string { return "goldilocks-spec" }

// SetObserver registers f to run after every processed action.
func (s *SpecEngine) SetObserver(f func(a event.Action)) { s.observer = f }

// WriteLockset returns the current lockset guarding the last write to v,
// or nil if v has not been written. The caller must not modify it.
func (s *SpecEngine) WriteLockset(v event.Variable) *Lockset { return s.writes[v] }

// ReadLocksets returns the per-thread locksets guarding reads of v since
// the last write. The caller must not modify the result.
func (s *SpecEngine) ReadLocksets(v event.Variable) map[event.Tid]*Lockset { return s.reads[v] }

// forEach applies f to every tracked lockset.
func (s *SpecEngine) forEach(f func(ls *Lockset)) {
	for _, ls := range s.writes {
		f(ls)
	}
	for _, byTid := range s.reads {
		for _, ls := range byTid {
			f(ls)
		}
	}
}

// Step implements detect.Detector.
func (s *SpecEngine) Step(a event.Action) []detect.Race {
	var races []detect.Race
	t := a.Thread
	te := ThreadElem(t)

	switch a.Kind {
	case event.KindVolatileRead:
		ve := VolatileElem(a.Volatile())
		s.forEach(func(ls *Lockset) {
			if ls.Has(ve) {
				ls.Add(te)
			}
		})
	case event.KindVolatileWrite:
		ve := VolatileElem(a.Volatile())
		s.forEach(func(ls *Lockset) {
			if ls.Has(te) {
				ls.Add(ve)
			}
		})
	case event.KindAcquire:
		le := LockElem(a.Obj)
		s.forEach(func(ls *Lockset) {
			if ls.Has(le) {
				ls.Add(te)
			}
		})
	case event.KindRelease:
		le := LockElem(a.Obj)
		s.forEach(func(ls *Lockset) {
			if ls.Has(te) {
				ls.Add(le)
			}
		})
	case event.KindFork:
		ue := ThreadElem(a.Peer)
		s.forEach(func(ls *Lockset) {
			if ls.Has(te) {
				ls.Add(ue)
			}
		})
	case event.KindJoin:
		ue := ThreadElem(a.Peer)
		s.forEach(func(ls *Lockset) {
			if ls.Has(ue) {
				ls.Add(te)
			}
		})
	case event.KindAlloc:
		// Rule 8: fresh object, fresh (empty) locksets for its fields.
		for v := range s.writes {
			if v.Obj == a.Obj {
				delete(s.writes, v)
			}
		}
		for v := range s.reads {
			if v.Obj == a.Obj {
				delete(s.reads, v)
			}
		}
	case event.KindRead:
		v := a.Variable()
		if r := s.checkAccess(v, t, false, a); r != nil {
			races = append(races, *r)
		}
		s.readerSet(v, t, NewLockset(te))
	case event.KindWrite:
		v := a.Variable()
		if r := s.checkAccess(v, t, false, a); r != nil {
			races = append(races, *r)
		}
		s.writes[v] = NewLockset(te)
		delete(s.reads, v)
	case event.KindCommit:
		races = s.commit(a)
	}

	if s.observer != nil {
		s.observer(a)
	}
	return races
}

// checkAccess performs the race-freedom check for an access to v by t.
// A read is checked against the write lockset; a write additionally
// against every read lockset. inTxn relaxes the check with TL
// membership: an access inside a transaction is race-free against a
// previous access that was also inside a transaction.
func (s *SpecEngine) checkAccess(v event.Variable, t event.Tid, inTxn bool, a event.Action) *detect.Race {
	ok := func(ls *Lockset) bool {
		if ls == nil || ls.Empty() {
			return true
		}
		if ls.HasThread(t) {
			return true
		}
		// The TL exemption encodes "commit/commit pairs never race",
		// which only holds when the semantics orders commits over a
		// common variable; under write-to-read it does not apply.
		return inTxn && s.sem != event.TxnWriteToRead && ls.Has(TL)
	}
	if !ok(s.writes[v]) {
		return &detect.Race{Var: v, Access: a}
	}
	if a.Kind == event.KindWrite || (a.Kind == event.KindCommit && a.WritesVar(v)) {
		for u, ls := range s.reads[v] {
			if u == t {
				continue
			}
			if !ok(ls) {
				return &detect.Race{Var: v, Access: a}
			}
		}
	}
	return nil
}

// commit applies rule 9 of Figure 5, generalized with the read/write
// distinction: an acquire phase over all locksets, a per-accessed-
// variable check-and-reset phase, and a release phase over all locksets.
func (s *SpecEngine) commit(a event.Action) []detect.Race {
	t := a.Thread
	te := ThreadElem(t)
	rw := make([]event.Variable, 0, len(a.Reads)+len(a.Writes))
	rw = append(rw, a.Reads...)
	rw = append(rw, a.Writes...)

	// Acquire phase: the committing thread becomes an owner of every
	// variable whose lockset witnesses an incoming synchronizes-with
	// edge under the configured transaction semantics.
	acquires := func(ls *Lockset) bool {
		switch s.sem {
		case event.TxnAtomicOrder:
			return ls.Has(TL)
		case event.TxnWriteToRead:
			return ls.IntersectsVars(a.Reads)
		default:
			return ls.IntersectsVars(rw)
		}
	}
	s.forEach(func(ls *Lockset) {
		if acquires(ls) {
			ls.Add(te)
		}
	})

	// Access phase: check and reset each accessed variable. A variable
	// in both R and W is treated as a write.
	var races []detect.Race
	written := make(map[event.Variable]bool, len(a.Writes))
	for _, v := range a.Writes {
		written[v] = true
	}
	checked := make(map[event.Variable]bool, len(rw))
	for _, v := range a.Writes {
		if checked[v] {
			continue
		}
		checked[v] = true
		if r := s.checkAccess(v, t, true, a); r != nil {
			races = append(races, *r)
		}
		s.writes[v] = NewLockset(te, TL)
		delete(s.reads, v)
	}
	for _, v := range a.Reads {
		if checked[v] || written[v] {
			continue
		}
		checked[v] = true
		if r := s.checkAccess(v, t, true, a); r != nil {
			races = append(races, *r)
		}
		s.readerSet(v, t, NewLockset(te, TL))
	}

	// Release phase: every variable owned by the committing thread can
	// now be re-acquired through the outgoing edge witnesses.
	release := func(ls *Lockset) {
		switch s.sem {
		case event.TxnAtomicOrder:
			ls.Add(TL)
		case event.TxnWriteToRead:
			ls.AddVars(a.Writes)
		default:
			ls.AddVars(rw)
		}
	}
	s.forEach(func(ls *Lockset) {
		if ls.Has(te) {
			release(ls)
		}
	})
	return races
}

func (s *SpecEngine) readerSet(v event.Variable, t event.Tid, ls *Lockset) {
	byTid, ok := s.reads[v]
	if !ok {
		byTid = make(map[event.Tid]*Lockset)
		s.reads[v] = byTid
	}
	byTid[t] = ls
}
