package core

import "goldilocks/internal/event"

// Collect garbage-collects the synchronization event list (Section 5.4).
//
// Cells whose reference count is zero and that precede every Info
// position can be dropped immediately. An Info stuck near the head of
// the list (a variable accessed early and never again) would otherwise
// pin the entire list; partially-eager lockset evaluation advances such
// Infos — applying the update rules up to an advance point roughly
// GCTrimFraction into the list and moving their positions there — after
// which the prefix is unreferenced and freed.
//
// Collect is triggered automatically when the list exceeds
// Options.GCThreshold, and may be called explicitly.
func (e *Engine) Collect() {
	e.gcMu.Lock()
	defer e.gcMu.Unlock()
	e.collections.Add(1)

	if e.opts.PartialEager {
		n := int(float64(e.list.len()) * e.opts.GCTrimFraction)
		if n < 1 {
			n = 1
		}
		if limit := e.list.cellAt(n); limit != nil {
			e.advanceInfosBefore(limit)
		}
	}
	e.list.trim(nil)
}

// advanceInfosBefore applies partially-eager evaluation: every Info
// positioned before limit has its lockset brought forward to limit.
func (e *Engine) advanceInfosBefore(limit *cell) {
	e.varsMu.RLock()
	states := make([]*varState, 0, len(e.vars))
	for _, fields := range e.vars {
		for _, vs := range fields {
			states = append(states, vs)
		}
	}
	e.varsMu.RUnlock()

	for _, vs := range states {
		vs.mu.Lock()
		e.advanceInfo(vs.write, limit)
		for _, in := range vs.reads {
			e.advanceInfo(in, limit)
		}
		vs.mu.Unlock()
	}
}

func (e *Engine) advanceInfo(in *info, limit *cell) {
	if in == nil || in.pos.seq >= limit.seq {
		return
	}
	n := applyRules(in.ls, in.pos, limit, e.opts.TxnSemantics, false, 0, 0)
	e.walkCells.Add(uint64(n))
	in.pos.refs.Add(-1)
	limit.refs.Add(1)
	in.pos = limit
	e.infosAdvanced.Add(1)
}

// HeldLocks returns the monitors thread t currently holds, for tests and
// debugging.
func (e *Engine) HeldLocks(t event.Tid) []event.Addr {
	e.locksMu.Lock()
	defer e.locksMu.Unlock()
	tl, ok := e.locks[t]
	if !ok {
		return nil
	}
	out := make([]event.Addr, len(tl.stack))
	copy(out, tl.stack)
	return out
}

// WriteLockset computes the current lockset guarding the last write of
// (o, d) by lazily evaluating the update rules up to the present, or
// nil if the variable has never been written. It is the optimized
// engine's counterpart of SpecEngine.WriteLockset, used for diagnostics
// and for the lockset-level equivalence tests; the returned set is a
// private copy.
func (e *Engine) WriteLockset(o event.Addr, d event.FieldID) *Lockset {
	e.varsMu.RLock()
	fields := e.vars[o]
	var vs *varState
	if fields != nil {
		vs = fields[d]
	}
	e.varsMu.RUnlock()
	if vs == nil {
		return nil
	}
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if vs.write == nil {
		return nil
	}
	end := e.list.snapshotTail()
	ls := vs.write.ls.Clone()
	applyRules(ls, vs.write.pos, end, e.opts.TxnSemantics, false, 0, 0)
	return ls
}
