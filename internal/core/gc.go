package core

import (
	"goldilocks/internal/event"
	"goldilocks/internal/resilience"
)

// Collect garbage-collects the synchronization event list (Section 5.4).
//
// Cells whose reference count is zero and that precede every Info
// position can be dropped immediately. An Info stuck near the head of
// the list (a variable accessed early and never again) would otherwise
// pin the entire list; partially-eager lockset evaluation advances such
// Infos — applying the update rules up to an advance point roughly
// GCTrimFraction into the list and moving their positions there — after
// which the prefix is unreferenced and freed.
//
// Collect is triggered automatically when the list exceeds
// Options.GCThreshold, and may be called explicitly.
func (e *Engine) Collect() {
	e.gcMu.Lock()
	defer e.gcMu.Unlock()
	e.collectLocked(e.opts.GCTrimFraction)
}

// collectLocked is Collect's body; the caller holds gcMu. frac is the
// fraction of the list the partially-eager advance targets.
func (e *Engine) collectLocked(frac float64) {
	e.collections.Add(1)
	if e.opts.PartialEager {
		n := int(float64(e.list.len()) * frac)
		if n < 1 {
			n = 1
		}
		if limit := e.list.cellAt(n); limit != nil {
			e.advanceInfosBefore(limit)
		}
	}
	e.list.trim(nil)
}

// aggressiveTrimFraction is the rung-1 partially-eager advance target:
// half the list, regardless of the configured GCTrimFraction.
const aggressiveTrimFraction = 0.5

// govern enforces Options.MemoryBudget: called after an enqueue that
// left the list over budget, it climbs the degradation ladder
// (resilience.DegradationRung) until the list fits or the engine is
// degraded to short-circuit-only checking. The ladder is a one-way
// ratchet: precision lost to pressure is not re-bought when pressure
// subsides, keeping the engine's behaviour explainable after the fact
// (the -stats rung says how far it fell).
func (e *Engine) govern() {
	e.gcMu.Lock()
	defer e.gcMu.Unlock()
	over := func() bool {
		return e.list.len()+e.opts.Injector.Pressure() > e.opts.MemoryBudget
	}
	for over() {
		switch resilience.DegradationRung(e.rung.Load()) {
		case resilience.RungNormal:
			e.escalateLocked(resilience.RungAggressiveGC)
		case resilience.RungAggressiveGC:
			e.aggressiveGCs.Add(1)
			e.collectLocked(aggressiveTrimFraction)
			if over() {
				e.escalateLocked(resilience.RungShedCaches)
			}
		case resilience.RungShedCaches:
			e.shedCaches()
			e.eagerSweepLocked()
			if over() {
				e.escalateLocked(resilience.RungDegraded)
			}
		case resilience.RungDegraded:
			// Freeze the list and flush what remains; from here on Sync
			// appends nothing and checkHB answers from short-circuits
			// alone.
			e.degraded.Store(true)
			e.eagerSweepLocked()
			return
		}
	}
}

func (e *Engine) escalateLocked(to resilience.DegradationRung) {
	e.rung.Store(int32(to))
	e.escalations.Add(1)
}

// shedCaches drops every memoized happens-before transitivity cache.
// The caches are pure accelerators — rebuilding them costs repeat pair
// checks, never precision.
func (e *Engine) shedCaches() {
	e.cacheSheds.Add(1)
	e.forEachVarState(func(vs *varState) {
		vs.mu.Lock()
		if vs.write != nil {
			vs.write.hbAfter = nil
		}
		for _, in := range vs.reads {
			in.hbAfter = nil
		}
		vs.mu.Unlock()
	})
}

// eagerSweepLocked advances every Info to the current list tail — a
// fully-eager evaluation pass, the opposite end of the lazy/eager
// spectrum from normal operation — so the entire retained prefix
// becomes unreferenced and is trimmed. Precision is preserved (the
// advance applies the same update rules a lazy walk would); the cost is
// O(vars × retained list) per sweep, paid only under memory pressure.
func (e *Engine) eagerSweepLocked() {
	e.eagerSweeps.Add(1)
	tail := e.list.snapshotTail()
	e.forEachVarState(func(vs *varState) {
		vs.mu.Lock()
		e.advanceInfo(vs.write, tail)
		for _, in := range vs.reads {
			e.advanceInfo(in, tail)
		}
		vs.mu.Unlock()
	})
	e.list.trim(nil)
}

// forEachVarState applies f to every tracked variable state, one shard
// at a time: each shard's states are snapshotted under that shard's
// read lock and processed after it is released, so a sweep never holds
// more than one shard lock and never blocks accesses to the other 63
// shards.
func (e *Engine) forEachVarState(f func(vs *varState)) {
	var states []*varState
	for i := range e.varShards {
		sh := &e.varShards[i]
		sh.mu.RLock()
		states = states[:0]
		for _, fields := range sh.vars {
			for _, vs := range fields {
				states = append(states, vs)
			}
		}
		sh.mu.RUnlock()
		for _, vs := range states {
			f(vs)
		}
	}
}

// advanceInfosBefore applies partially-eager evaluation: every Info
// positioned before limit has its lockset brought forward to limit.
func (e *Engine) advanceInfosBefore(limit *cell) {
	e.forEachVarState(func(vs *varState) {
		vs.mu.Lock()
		e.advanceInfo(vs.write, limit)
		for _, in := range vs.reads {
			e.advanceInfo(in, limit)
		}
		vs.mu.Unlock()
	})
}

func (e *Engine) advanceInfo(in *info, limit *cell) {
	if in == nil || in.pos.seq >= limit.seq {
		return
	}
	n := applyRules(in.ls, in.pos, limit, e.rules(), false, 0, 0)
	e.stats[0].walkCells.Add(uint64(n)) // collection walks land on stripe 0
	in.pos.refs.Add(-1)
	limit.refs.Add(1)
	in.pos = limit
	e.infosAdvanced.Add(1)
}

// HeldLocks returns the monitors thread t currently holds, for tests and
// debugging.
func (e *Engine) HeldLocks(t event.Tid) []event.Addr {
	s := e.lockSnapshot(t)
	if s == nil {
		return nil
	}
	out := make([]event.Addr, len(s))
	copy(out, s)
	return out
}

// WriteLockset computes the current lockset guarding the last write of
// (o, d) by lazily evaluating the update rules up to the present, or
// nil if the variable has never been written. It is the optimized
// engine's counterpart of SpecEngine.WriteLockset, used for diagnostics
// and for the lockset-level equivalence tests; the returned set is a
// private copy.
func (e *Engine) WriteLockset(o event.Addr, d event.FieldID) *Lockset {
	vs := e.lookupState(o, d)
	if vs == nil {
		return nil
	}
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if vs.write == nil {
		return nil
	}
	end := e.list.snapshotTail()
	ls := vs.write.ls.Clone()
	applyRules(ls, vs.write.pos, end, e.rules(), false, 0, 0)
	return ls
}
