package core

import (
	"time"

	"goldilocks/internal/obs"
)

// Telemetry returns the engine's telemetry bundle, nil when disabled.
func (e *Engine) Telemetry() *obs.Telemetry { return e.tel }

// ShardCount returns the number of variable-table shards, for reporting
// the engine configuration alongside benchmark results.
func (e *Engine) ShardCount() int { return len(e.varShards) }

// RegisterMetrics binds the engine's observable state into reg: the
// work counters of Stats (including the SC1/SC2/SC3 short-circuit hits,
// separately), the event-list and GC gauges, the resilience counters,
// and — when telemetry is enabled — the per-rule fire counters, walk-
// depth histogram, and trace gauge. Everything is read at scrape time,
// so registration itself adds no cost to the detection paths.
func (e *Engine) RegisterMetrics(reg *obs.Registry) {
	stat := func(name string, f func(Stats) float64) {
		reg.RegisterGaugeFunc("goldilocks_"+name, func() float64 { return f(e.Stats()) })
	}
	stat("accesses_checked_total", func(s Stats) float64 { return float64(s.AccessesChecked) })
	stat("pair_checks_total", func(s Stats) float64 { return float64(s.PairChecks) })
	stat("sc1_hits_total", func(s Stats) float64 { return float64(s.SC1Hits) })
	stat("sc2_hits_total", func(s Stats) float64 { return float64(s.SC2Hits) })
	stat("sc3_hits_total", func(s Stats) float64 { return float64(s.SC3Hits) })
	stat("xact_hits_total", func(s Stats) float64 { return float64(s.XactHits) })
	stat("hb_cache_hits_total", func(s Stats) float64 { return float64(s.HBCacheHits) })
	stat("full_walks_total", func(s Stats) float64 { return float64(s.FullWalks) })
	stat("walk_cells_total", func(s Stats) float64 { return float64(s.WalkCells) })
	stat("races_total", func(s Stats) float64 { return float64(s.Races) })
	stat("vars_tracked", func(s Stats) float64 { return float64(s.VarsTracked) })
	stat("events_enqueued_total", func(s Stats) float64 { return float64(s.EventsEnqueued) })
	stat("cells_collected_total", func(s Stats) float64 { return float64(s.CellsCollected) })
	stat("collections_total", func(s Stats) float64 { return float64(s.Collections) })
	stat("infos_advanced_total", func(s Stats) float64 { return float64(s.InfosAdvanced) })
	stat("panics_recovered_total", func(s Stats) float64 { return float64(s.PanicsRecovered) })
	stat("vars_quarantined_total", func(s Stats) float64 { return float64(s.VarsQuarantined) })
	stat("governor_rung", func(s Stats) float64 { return float64(s.GovernorRung) })
	stat("escalations_total", func(s Stats) float64 { return float64(s.Escalations) })
	stat("degraded_checks_total", func(s Stats) float64 { return float64(s.DegradedChecks) })
	stat("short_circuit_rate", Stats.ShortCircuitRate)
	stat("full_walk_rate", Stats.FullWalkRate)
	stat("avg_walk_cells", Stats.AvgWalkCells)
	stat("gc_reclaim_rate", Stats.GCReclaimRate)
	reg.RegisterGaugeFunc("goldilocks_list_len", func() float64 { return float64(e.ListLen()) })
	if e.tel != nil {
		e.tel.Register(reg)
	}
}

// StartSampling registers time series for the event-list length and the
// cumulative GC-reclaimed cells and starts a sampler recording them
// every interval. The caller owns the returned sampler and should Stop
// it on shutdown.
func (e *Engine) StartSampling(reg *obs.Registry, interval time.Duration) *obs.Sampler {
	const points = 512
	listLen := reg.RegisterSeries("goldilocks_list_len_series", obs.NewSeries(points))
	reclaimed := reg.RegisterSeries("goldilocks_cells_collected_series", obs.NewSeries(points))
	return obs.NewSampler(interval, func() {
		listLen.Add(float64(e.ListLen()))
		reclaimed.Add(float64(e.list.collected.Load()))
	})
}
