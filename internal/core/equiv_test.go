package core_test

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/hb"
	"goldilocks/internal/scenarios"
	"goldilocks/internal/tracegen"
)

// oracleFirst returns the position of the first extended race and the
// set of variables racing at that position. A single action (a commit)
// can complete races on several variables at once; a precise detector
// must report at the same position on one of those variables, but which
// one is representation-dependent.
func oracleFirst(o *hb.Oracle) (pos int, vars map[string]bool, ok bool) {
	first, found := o.FirstRacePos()
	if !found {
		return 0, nil, false
	}
	vars = make(map[string]bool)
	for _, p := range o.Races() {
		if p.J == first.J {
			vars[p.Var.String()] = true
		}
	}
	return first.J, vars, true
}

// agreesWithOracle checks a detector's first report against the oracle.
func agreesWithOracle(r *detect.Race, pos int, vars map[string]bool, racy bool) bool {
	if !racy {
		return r == nil
	}
	return r != nil && r.Pos == pos && vars[r.Var.String()]
}

// TestTheorem1Property is the paper's Theorem 1 as a property test: on a
// random well-formed trace, the spec engine, the optimized engine (in
// several configurations), and the vector-clock detector all report
// their first race exactly where the extended happens-before oracle says
// the first extended race completes — same position, same variable — and
// report nothing on race-free traces.
func TestTheorem1Property(t *testing.T) {
	configs := engineConfigs()
	check := func(seed int64) bool {
		tr := tracegen.FromSeed(seed)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid trace: %v", seed, err)
		}
		pos, vars, racy := oracleFirst(hb.NewOracle(tr))

		if r := detect.FirstRace(core.NewSpecEngine(), tr); !agreesWithOracle(r, pos, vars, racy) {
			t.Logf("seed %d: spec = %v, oracle pos %d vars %v racy %v", seed, r, pos, vars, racy)
			return false
		}
		if r := detect.FirstRace(hb.NewDetector(), tr); !agreesWithOracle(r, pos, vars, racy) {
			t.Logf("seed %d: vectorclock = %v, oracle pos %d vars %v racy %v", seed, r, pos, vars, racy)
			return false
		}
		for name, opts := range configs {
			if r := detect.FirstRace(core.NewEngine(opts), tr); !agreesWithOracle(r, pos, vars, racy) {
				t.Logf("seed %d: engine[%s] = %v, oracle pos %d vars %v racy %v", seed, name, r, pos, vars, racy)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTheorem1DenseTransactions repeats the property on transaction-
// heavy traces, where the commit rules carry most of the weight.
func TestTheorem1DenseTransactions(t *testing.T) {
	cfg := tracegen.Default()
	cfg.TxnBias = 0.7
	cfg.SyncBias = 0.3
	cfg.Steps = 80
	for seed := int64(0); seed < 300; seed++ {
		tr := tracegen.FromSeedConfig(seed, cfg)
		pos, vars, racy := oracleFirst(hb.NewOracle(tr))
		if r := detect.FirstRace(core.NewSpecEngine(), tr); !agreesWithOracle(r, pos, vars, racy) {
			t.Fatalf("seed %d: spec = %v, oracle pos %d vars %v racy %v", seed, r, pos, vars, racy)
		}
		if r := detect.FirstRace(core.New(), tr); !agreesWithOracle(r, pos, vars, racy) {
			t.Fatalf("seed %d: engine = %v, oracle pos %d vars %v racy %v", seed, r, pos, vars, racy)
		}
		if r := detect.FirstRace(hb.NewDetector(), tr); !agreesWithOracle(r, pos, vars, racy) {
			t.Fatalf("seed %d: vectorclock = %v, oracle pos %d vars %v racy %v", seed, r, pos, vars, racy)
		}
	}
}

// TestSpecEngineFullRunEquivalence: beyond the first race, the optimized
// engine and the spec engine must report the identical (position,
// variable) race sequence for the whole trace, under every
// configuration. (The happens-before oracle is only ground truth up to
// the first race — after a race the lockset semantics intentionally
// reset ownership rather than keep the full relation.)
func TestSpecEngineFullRunEquivalence(t *testing.T) {
	configs := engineConfigs()
	for seed := int64(0); seed < 400; seed++ {
		tr := tracegen.FromSeed(seed)
		specRaces := raceKeys(detect.RunTrace(core.NewSpecEngine(), tr))
		sort.Strings(specRaces)
		for name, opts := range configs {
			got := raceKeys(detect.RunTrace(core.NewEngine(opts), tr))
			sort.Strings(got)
			if !equalStrings(specRaces, got) {
				t.Fatalf("seed %d: engine[%s] races %v, spec races %v", seed, name, got, specRaces)
			}
		}
	}
}

// TestSeededRegressionTraces pins a handful of generator seeds with
// known verdicts so behaviour changes surface as explicit diffs.
func TestSeededRegressionTraces(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		tr := tracegen.FromSeed(seed)
		pos, vars, racy := oracleFirst(hb.NewOracle(tr))
		if r := detect.FirstRace(core.New(), tr); !agreesWithOracle(r, pos, vars, racy) {
			t.Errorf("seed %d: engine %v, oracle pos %d vars %v racy %v", seed, r, pos, vars, racy)
		}
	}
}

// TestScenarioOracleAgreement: the ground-truth verdicts recorded in the
// scenarios package agree with the oracle itself.
func TestScenarioOracleAgreement(t *testing.T) {
	for _, sc := range scenarios.All() {
		oracle := hb.NewOracle(sc.Trace)
		pair, racy := oracle.FirstRacePos()
		if racy != sc.Racy {
			t.Errorf("%s: oracle racy = %v, scenario says %v", sc.Name, racy, sc.Racy)
			continue
		}
		if racy && (pair.J != sc.RacePos || pair.Var != sc.RaceVar) {
			t.Errorf("%s: oracle first race %v at %d, scenario says %v at %d",
				sc.Name, pair.Var, pair.J, sc.RaceVar, sc.RacePos)
		}
	}
}

// TestVCDetectorScenarios: the vector-clock baseline is also precise on
// the paper's scenarios.
func TestVCDetectorScenarios(t *testing.T) {
	for _, sc := range scenarios.All() {
		r := detect.FirstRace(hb.NewDetector(), sc.Trace)
		if sc.Racy {
			if r == nil || r.Pos != sc.RacePos || r.Var != sc.RaceVar {
				t.Errorf("%s: vc race = %v, want %v at %d", sc.Name, r, sc.RaceVar, sc.RacePos)
			}
		} else if r != nil {
			t.Errorf("%s: vc false race %v", sc.Name, r)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGeneratorValidity: every generated trace passes Validate across a
// spread of configurations.
func TestGeneratorValidity(t *testing.T) {
	cfgs := []tracegen.Config{
		tracegen.Default(),
		{Steps: 200, MaxThreads: 8, Objects: 5, Fields: 3, Locks: 4, Volatiles: 3, TxnBias: 0.5, SyncBias: 0.6},
		{Steps: 30, MaxThreads: 2, Objects: 1, Fields: 1, Locks: 1, Volatiles: 1, TxnBias: 0, SyncBias: 0.8},
	}
	for ci, cfg := range cfgs {
		for seed := int64(0); seed < 100; seed++ {
			tr := tracegen.FromSeedConfig(seed, cfg)
			if err := tr.Validate(); err != nil {
				t.Fatalf("cfg %d seed %d: %v", ci, seed, err)
			}
		}
	}
}

// TestGeneratorProducesBothVerdicts guards against the generator
// degenerating into all-racy or all-race-free traces.
func TestGeneratorProducesBothVerdicts(t *testing.T) {
	racy, clean := 0, 0
	for seed := int64(0); seed < 200; seed++ {
		tr := tracegen.FromSeed(seed)
		if _, ok := hb.NewOracle(tr).FirstRacePos(); ok {
			racy++
		} else {
			clean++
		}
	}
	if racy < 10 || clean < 10 {
		t.Errorf("degenerate generator: %d racy, %d clean of 200", racy, clean)
	}
}

// TestEquivalenceStatsAfterRefactor replays the deterministic trace
// corpus through the de-serialized engine (lock-free tail snapshots,
// sharded variable table, per-thread lock records) and pins both halves
// of its observable behaviour: the race set must match SpecEngine
// exactly, and the Stats short-circuit counters must be deterministic —
// two replays of the same linearization produce identical counters —
// and satisfy the accounting identity (every pair check is resolved by
// exactly one of SC1/SC2/SC3/Xact/HBCache/full walk/degraded
// assumption). A refactor that changed what the short-circuits see
// (e.g. a stale lock snapshot or tail) would shift these counters even
// when the verdicts survive.
func TestEquivalenceStatsAfterRefactor(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		tr := tracegen.FromSeed(seed)
		specRaces := raceKeys(detect.RunTrace(core.NewSpecEngine(), tr))
		sort.Strings(specRaces)

		run := func() (keys []string, st core.Stats) {
			e := core.New()
			keys = raceKeys(detect.RunTrace(e, tr))
			sort.Strings(keys)
			return keys, e.Stats()
		}
		got1, st1 := run()
		got2, st2 := run()

		if !equalStrings(specRaces, got1) {
			t.Fatalf("seed %d: engine races %v, spec races %v", seed, got1, specRaces)
		}
		if !equalStrings(got1, got2) {
			t.Fatalf("seed %d: race set not deterministic: %v vs %v", seed, got1, got2)
		}
		if st1 != st2 {
			t.Fatalf("seed %d: stats not deterministic on identical replays:\n%+v\n%+v", seed, st1, st2)
		}
		resolved := st1.SC1Hits + st1.SC2Hits + st1.SC3Hits + st1.XactHits +
			st1.HBCacheHits + st1.FullWalks + st1.DegradedChecks
		if resolved != st1.PairChecks {
			t.Fatalf("seed %d: pair-check accounting broken: %d resolved of %d checks (%+v)",
				seed, resolved, st1.PairChecks, st1)
		}
		if r := st1.ShortCircuitRate(); r < 0 || r > 1 {
			t.Fatalf("seed %d: short-circuit rate %v out of range", seed, r)
		}
		if st1.Races != uint64(len(got1)) {
			t.Fatalf("seed %d: Stats.Races = %d, reported %d", seed, st1.Races, len(got1))
		}
	}
}

// TestLocksetLevelEquivalence goes beyond verdict equality: after every
// prefix-complete run of a random trace, the optimized engine's lazily
// evaluated write lockset of every variable equals the spec engine's
// eagerly maintained one. This pins the whole representation (event
// list, lazy walks, memoization, GC advances), not just race reports.
func TestLocksetLevelEquivalence(t *testing.T) {
	configs := map[string]core.Options{}
	d := core.DefaultOptions()
	configs["default"] = d
	gc := d
	gc.GCThreshold = 8
	gc.GCTrimFraction = 0.5
	configs["aggressiveGC"] = gc
	noMemo := d
	noMemo.Memoize = false
	configs["noMemoize"] = noMemo

	for seed := int64(0); seed < 150; seed++ {
		tr := tracegen.FromSeed(seed)
		for name, opts := range configs {
			spec := core.NewSpecEngine()
			eng := core.NewEngine(opts)
			detect.RunTrace(spec, tr)
			detect.RunTrace(eng, tr)
			for _, v := range tr.Vars() {
				want := spec.WriteLockset(v)
				got := eng.WriteLockset(v.Obj, v.Field)
				switch {
				case want == nil && got == nil:
				case want == nil || got == nil:
					t.Fatalf("seed %d [%s]: %v lockset presence differs (spec %v, engine %v)",
						seed, name, v, want, got)
				case !want.Equal(got):
					t.Fatalf("seed %d [%s]: LS(%v): spec %v, engine %v", seed, name, v, want, got)
				}
			}
		}
	}
}

// TestConformanceCounterexampleReplay replays every minimized
// counterexample committed under internal/conformance/testdata/ —
// traces that once witnessed (injected or real) detector bugs — through
// both engines. Each must agree with the happens-before oracle on the
// first race and with the spec engine on the complete race set, so a
// regression that resurrects an old bug fails here even without running
// the fuzzer.
func TestConformanceCounterexampleReplay(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "conformance", "testdata", "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no counterexamples under internal/conformance/testdata")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, dropped, err := event.ReadTraceAuto(f)
			if err != nil {
				t.Fatal(err)
			}
			if dropped != 0 {
				t.Fatalf("%d corrupt records dropped — corpus file damaged", dropped)
			}
			pos, vars, racy := oracleFirst(hb.NewOracle(tr))
			specKeys := raceKeys(detect.RunTrace(core.NewSpecEngine(), tr))
			sort.Strings(specKeys)
			if r := detect.FirstRace(core.New(), tr); !agreesWithOracle(r, pos, vars, racy) {
				t.Errorf("engine first race %v, oracle pos %d vars %v racy %v", r, pos, vars, racy)
			}
			engKeys := raceKeys(detect.RunTrace(core.New(), tr))
			sort.Strings(engKeys)
			if !equalStrings(engKeys, specKeys) {
				t.Errorf("engine races %v, spec %v", engKeys, specKeys)
			}
		})
	}
}
