package core

import (
	"strings"
	"testing"

	"goldilocks/internal/event"
	"goldilocks/internal/resilience"
)

// TestInjectedPanicQuarantinesVariable: a detector check made to panic
// quarantines that variable only; the access reports no race, later
// accesses to the variable are skipped, and other variables keep full
// precision.
func TestInjectedPanicQuarantinesVariable(t *testing.T) {
	bad := event.Variable{Obj: 10, Field: 0}
	opts := DefaultOptions()
	opts.Injector = &resilience.Injector{PanicOnVars: []event.Variable{bad}}
	e := NewEngine(opts)

	if r := e.Write(1, bad.Obj, bad.Field); r != nil {
		t.Fatalf("quarantined access reported race %v", r)
	}
	st := e.Stats()
	if st.PanicsRecovered != 1 || st.VarsQuarantined != 1 {
		t.Fatalf("stats = %d recovered / %d quarantined, want 1/1", st.PanicsRecovered, st.VarsQuarantined)
	}
	// The variable is dead to the detector now: a blatant race on it
	// goes unreported, by design.
	if r := e.Write(2, bad.Obj, bad.Field); r != nil {
		t.Errorf("access to quarantined variable still checked: %v", r)
	}
	if got := e.Stats().PanicsRecovered; got != 1 {
		t.Errorf("quarantined access re-entered the barrier: %d panics", got)
	}
	// A different variable still races normally.
	e.Write(1, 20, 0)
	if r := e.Write(2, 20, 0); r == nil {
		t.Error("race on healthy variable lost after a quarantine elsewhere")
	}
	// The quarantined variable's dropped Info must not pin the event
	// list: pile up sync events and collect.
	for i := 0; i < 100; i++ {
		e.Sync(event.Acquire(1, 99))
		e.Sync(event.Release(1, 99))
	}
	e.Collect()
	if n := e.ListLen(); n > 210 {
		t.Errorf("list length %d after collect: quarantined Info pinned the list", n)
	}
}

// TestAbortPolicyPropagates: under Abort the injected panic reaches the
// caller (the pre-hardening behaviour, for debugging the detector).
func TestAbortPolicyPropagates(t *testing.T) {
	bad := event.Variable{Obj: 10, Field: 0}
	opts := DefaultOptions()
	opts.OnError = resilience.Abort
	opts.Injector = &resilience.Injector{PanicOnVars: []event.Variable{bad}}
	e := NewEngine(opts)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("injected panic did not propagate under Abort")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "injected detector fault") {
			t.Fatalf("panic = %v, want injected fault", r)
		}
	}()
	e.Write(1, bad.Obj, bad.Field)
}

// TestAllocLiftsQuarantine: reallocating the object makes its fields
// fresh variables, checked again.
func TestAllocLiftsQuarantine(t *testing.T) {
	bad := event.Variable{Obj: 10, Field: 0}
	opts := DefaultOptions()
	opts.Injector = &resilience.Injector{PanicOnVars: []event.Variable{bad}}
	e := NewEngine(opts)
	e.Write(1, bad.Obj, bad.Field) // quarantines
	opts.Injector.PanicOnVars = nil
	e.Alloc(1, bad.Obj)
	e.Write(1, bad.Obj, bad.Field)
	if r := e.Write(2, bad.Obj, bad.Field); r == nil {
		t.Error("race on reallocated variable not reported: quarantine survived alloc")
	}
}

// TestGovernorKeepsBudgetAndFindsRace: under a tight cell budget the
// governor's collections keep the event list bounded while the seeded
// race — whose detection needs exactly the events the governor is
// trimming — is still reported, because partially-eager advances
// preserve lockset semantics.
func TestGovernorKeepsBudgetAndFindsRace(t *testing.T) {
	const budget = 64
	opts := DefaultOptions()
	opts.GCThreshold = 0 // all collection decisions go through the governor
	opts.MemoryBudget = budget
	e := NewEngine(opts)

	e.Write(1, 500, 0) // seeded race, part 1: T1 writes X unprotected
	for i := 0; i < 50*budget; i++ {
		lock := event.Addr(600 + i%8)
		e.Sync(event.Acquire(1, lock))
		e.Write(1, event.Addr(700+i%16), 0) // pinned Infos spread through the list
		e.Sync(event.Release(1, lock))
		if n := e.ListLen(); n > budget+1 {
			t.Fatalf("list length %d exceeds budget %d at event %d", n, budget, i)
		}
	}
	r := e.Write(2, 500, 0) // seeded race, part 2: T2, no ordering edge
	if r == nil {
		t.Fatal("seeded race lost under memory governor")
	}
	st := e.Stats()
	if st.Escalations == 0 || st.GovernorRung < resilience.RungAggressiveGC {
		t.Errorf("governor never escalated: rung %v, %d escalations", st.GovernorRung, st.Escalations)
	}
	if st.GovernorRung >= resilience.RungDegraded {
		t.Errorf("governor degraded (%v) though aggressive GC sufficed", st.GovernorRung)
	}
	if st.DegradedChecks != 0 {
		t.Errorf("%d degraded checks while precise", st.DegradedChecks)
	}
}

// TestGovernorDegradesUnderUnrelievablePressure: simulated allocation
// pressure that no collection can relieve ratchets the governor through
// cache shedding down to short-circuit-only mode; the engine keeps
// answering (imprecisely) in hard-bounded memory instead of dying.
func TestGovernorDegradesUnderUnrelievablePressure(t *testing.T) {
	const budget = 32
	opts := DefaultOptions()
	opts.GCThreshold = 0
	opts.MemoryBudget = budget
	opts.Injector = &resilience.Injector{ExtraListCells: budget * 2}
	e := NewEngine(opts)

	e.Write(1, 500, 0)
	e.Sync(event.Acquire(1, 600)) // first enqueue over budget: full ratchet
	st := e.Stats()
	if st.GovernorRung != resilience.RungDegraded {
		t.Fatalf("rung = %v, want degraded", st.GovernorRung)
	}
	if st.CacheSheds == 0 || st.EagerSweeps == 0 {
		t.Errorf("ladder skipped rung 2: %d sheds, %d sweeps", st.CacheSheds, st.EagerSweeps)
	}

	// The list is frozen: sync events no longer grow it.
	before := e.ListLen()
	for i := 0; i < 100; i++ {
		e.Sync(event.Acquire(1, event.Addr(600+i)))
	}
	if after := e.ListLen(); after > before {
		t.Errorf("frozen list grew %d -> %d", before, after)
	}

	// Checks still answer: same-thread pairs stay precise (SC1), cross-
	// thread inconclusive pairs are assumed ordered and counted.
	if r := e.Write(1, 500, 0); r != nil {
		t.Errorf("SC1 pair misreported in degraded mode: %v", r)
	}
	if r := e.Write(2, 500, 0); r != nil {
		t.Errorf("degraded mode reported a race it cannot prove: %v", r)
	}
	if got := e.Stats().DegradedChecks; got == 0 {
		t.Error("no degraded checks counted")
	}
}

// TestGovernorRungTransitionsExactlyOnce pins the one-way-ratchet
// contract of the degradation ladder: under unrelievable pressure the
// governor climbs Normal -> AggressiveGC -> ShedCaches -> Degraded,
// entering each rung exactly once (Escalations == 3), and further
// pressure after reaching the bottom neither re-escalates nor re-enters
// any rung.
func TestGovernorRungTransitionsExactlyOnce(t *testing.T) {
	const budget = 32
	opts := DefaultOptions()
	opts.GCThreshold = 0
	opts.MemoryBudget = budget
	opts.Injector = &resilience.Injector{ExtraListCells: budget * 2}
	e := NewEngine(opts)

	e.Write(1, 500, 0)
	e.Sync(event.Acquire(1, 600))
	st := e.Stats()
	if st.GovernorRung != resilience.RungDegraded {
		t.Fatalf("rung = %v, want degraded", st.GovernorRung)
	}
	if st.Escalations != 3 {
		t.Fatalf("Escalations = %d, want 3 (one per rung transition)", st.Escalations)
	}
	// Each intermediate rung did its work on the way down.
	if st.AggressiveGCs == 0 {
		t.Error("AggressiveGC rung left no trace")
	}
	if st.CacheSheds != 1 {
		t.Errorf("CacheSheds = %d, want 1 (ShedCaches entered once)", st.CacheSheds)
	}

	// Sustained pressure at the bottom: no further transitions, no
	// rung re-entry.
	for i := 0; i < 50; i++ {
		e.Sync(event.Acquire(1, event.Addr(700+i)))
		e.Write(1, 500, 0)
	}
	st2 := e.Stats()
	if st2.Escalations != 3 {
		t.Errorf("Escalations grew to %d under sustained pressure", st2.Escalations)
	}
	if st2.CacheSheds != st.CacheSheds {
		t.Errorf("ShedCaches re-entered: %d -> %d", st.CacheSheds, st2.CacheSheds)
	}
	if st2.GovernorRung != resilience.RungDegraded {
		t.Errorf("rung moved off degraded: %v", st2.GovernorRung)
	}
}

// TestGovernorStopsMidLadder: pressure the aggressive-GC rung can fully
// relieve leaves the governor parked there — lower rungs are never
// entered and the single escalation is reported once.
func TestGovernorStopsMidLadder(t *testing.T) {
	opts := DefaultOptions()
	opts.GCThreshold = 0 // no automatic GC: pressure only relieved by the governor
	opts.MemoryBudget = 16
	e := NewEngine(opts)

	// Fill the list with fully-applied sync events; they are collectable,
	// so the rung-1 aggressive collection relieves the pressure.
	for i := 0; i < 64; i++ {
		e.Sync(event.Acquire(1, 600))
		e.Sync(event.Release(1, 600))
	}
	st := e.Stats()
	if st.GovernorRung != resilience.RungAggressiveGC {
		t.Fatalf("rung = %v, want aggressive-gc", st.GovernorRung)
	}
	if st.Escalations != 1 {
		t.Errorf("Escalations = %d, want 1", st.Escalations)
	}
	if st.CacheSheds != 0 || st.DegradedChecks != 0 {
		t.Errorf("lower rungs entered: %d sheds, %d degraded checks", st.CacheSheds, st.DegradedChecks)
	}
}
