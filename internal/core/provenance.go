package core

import (
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
)

// This file reconstructs race provenance (obs.Provenance): the
// linearized synchronization path the detector examined between the
// previous conflicting access and the racing one, and how the
// variable's lockset evolved along it.
//
// Both engines reconstruct the same way — re-derive the lockset the
// variable had just after the previous access, then replay the update
// rules over the synchronization actions that followed — so for the
// same linearization they attach identical provenance, regardless of
// short-circuits, memoization, or eager-vs-lazy evaluation
// (TestMetricsDeterminism pins this). Reconstruction happens only when
// a race is detected: a cold path, and one that ends checking for the
// variable under DisableAfterRace.

// baseLockset re-derives the lockset of a variable just after an access
// by owner: {owner} for a plain access; {owner, TL} plus the outgoing-
// edge witnesses of the configured transaction semantics for a
// transactional one (mirroring Commit's base construction and the spec
// engine's access+release phases).
func baseLockset(owner event.Tid, xact bool, a event.Action, sem event.TxnSemantics) *Lockset {
	if !xact {
		return NewLockset(ThreadElem(owner))
	}
	ls := NewLockset(ThreadElem(owner), TL)
	switch sem {
	case event.TxnAtomicOrder:
		// TL itself is the witness.
	case event.TxnWriteToRead:
		ls.AddVars(a.Writes)
	default:
		ls.AddVars(a.Reads)
		ls.AddVars(a.Writes)
	}
	return ls
}

// provReplay applies the update rules to ls over the given actions
// (positions seq0, seq0+1, ...), appending to p a step for every
// application that changed the lockset, up to obs.MaxProvSteps; the
// surplus is counted in p.Elided. It finishes p with the final lockset.
func provReplay(p *obs.Provenance, ls *Lockset, actions []event.Action, seq0 uint64, rs ruleSet) {
	for i, a := range actions {
		before := ls.Len()
		applyRuleCell(ls, a, rs, false, 0, 0)
		if ls.Len() == before {
			continue
		}
		if len(p.Steps) < obs.MaxProvSteps {
			p.Steps = append(p.Steps, obs.ProvStep{
				Seq:    seq0 + uint64(i),
				Action: a.String(),
				Rule:   obs.RuleOf(a.Kind),
				After:  ls.String(),
			})
		} else {
			p.Elided++
		}
	}
	p.Final = ls.String()
}

// buildProvenance reconstructs the provenance of a race on v: the
// previous conflicting access is described by prev, the racing access
// was performed by t with list position end.
//
// The replay starts at the previous access itself (prev.origSeq) with
// the re-derived base lockset. When collection has already dropped
// those cells, it falls back to prev's current evaluation point
// (pos, ls) — a shorter, truncated path.
func (e *Engine) buildProvenance(v event.Variable, prev *info, t event.Tid, end *cell) *obs.Provenance {
	p := &obs.Provenance{
		Var:    v.String(),
		Prev:   prev.action.String(),
		Thread: t.String(),
	}
	ls := baseLockset(prev.owner, prev.xact, prev.action, e.opts.TxnSemantics)
	start := e.list.cellFor(prev.origSeq)
	if start == nil {
		p.Truncated = true
		ls = prev.ls.Clone()
		start = prev.pos
	}
	p.Base = ls.String()

	// Collect the retained segment [start, end); the cells are immutable
	// once filled, so reading them outside the list mutex is safe.
	var actions []event.Action
	for c := start; c != end && c != nil && c.filled; c = c.next {
		actions = append(actions, c.action)
	}
	provReplay(p, ls, actions, start.seq, e.rules())
	return p
}
