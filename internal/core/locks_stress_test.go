package core

import (
	"sync"
	"testing"

	"goldilocks/internal/event"
)

// TestLockRecordStressConcurrent hammers the per-thread lock records
// from many goroutines at once: acquire/release storms (including
// reentrant and cross-goroutine mutation of the *same* thread id's
// record), concurrent heldLock/holds/HeldLocks readers, and Reads/
// Writes on overlapping variables whose SC2 path reads the published
// snapshots. Run under `go test -race` (CI does) this checks that the
// mutation-free snapshot reads really are race-free against concurrent
// acquire/release.
func TestLockRecordStressConcurrent(t *testing.T) {
	e := New()

	const (
		workers = 8
		rounds  = 500
		locks   = 4
		objects = 4
	)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the goroutines share thread id 1 (same-record
			// mutation storm); the rest get distinct ids.
			tid := event.Tid(1)
			if w%2 == 1 {
				tid = event.Tid(w + 1)
			}
			for i := 0; i < rounds; i++ {
				lock := event.Addr(100 + i%locks)
				obj := event.Addr(500 + i%objects)
				e.Sync(event.Acquire(tid, lock))
				e.Sync(event.Acquire(tid, lock)) // reentrant
				e.Write(tid, obj, 0)
				e.Read(tid, obj, 0)
				e.Sync(event.Release(tid, lock))
				e.Sync(event.Release(tid, lock))
				// Mutation-free readers racing with the storm.
				_ = e.heldLock(tid)
				_ = e.holds(tid, lock)
				_ = e.HeldLocks(event.Tid(1))
			}
		}()
	}
	wg.Wait()

	// Every acquire was matched by a release; all records must drain.
	for tid := event.Tid(1); tid <= workers+1; tid++ {
		if got := e.HeldLocks(tid); len(got) != 0 {
			t.Errorf("thread %v still holds %v after balanced acquire/release", tid, got)
		}
		if l := e.heldLock(tid); l != event.NilAddr {
			t.Errorf("heldLock(%v) = %v, want NilAddr", tid, l)
		}
	}
}

// TestLockSnapshotSemantics pins the sequential behaviour of the
// published snapshots: ordering, reentrancy, and out-of-order release.
func TestLockSnapshotSemantics(t *testing.T) {
	e := New()
	if got := e.heldLock(7); got != event.NilAddr {
		t.Fatalf("heldLock on unknown thread = %v", got)
	}
	if e.holds(7, 10) {
		t.Fatal("holds on unknown thread")
	}

	e.Sync(event.Acquire(7, 10))
	e.Sync(event.Acquire(7, 11))
	e.Sync(event.Acquire(7, 10)) // reentrant: stack unchanged
	if got := e.heldLock(7); got != 11 {
		t.Errorf("heldLock = %v, want 11 (most recent first-acquire)", got)
	}
	if !e.holds(7, 10) || !e.holds(7, 11) || e.holds(7, 12) {
		t.Error("holds membership wrong")
	}

	e.Sync(event.Release(7, 10)) // count 2 -> 1: still held
	if !e.holds(7, 10) {
		t.Error("reentrant release dropped the lock early")
	}
	e.Sync(event.Release(7, 10)) // out-of-order full release
	if e.holds(7, 10) {
		t.Error("lock 10 still held after final release")
	}
	if got := e.heldLock(7); got != 11 {
		t.Errorf("heldLock after removing 10 = %v, want 11", got)
	}
	e.Sync(event.Release(7, 11))
	if got := e.HeldLocks(7); len(got) != 0 {
		t.Errorf("HeldLocks = %v, want empty", got)
	}
}

// TestSyncListConcurrentSnapshotEnqueue drives lock-free tail snapshots,
// walks, cellAt scans, and trims against a concurrent enqueue storm —
// the list-level counterpart of the engine stress tests, for `-race`.
func TestSyncListConcurrentSnapshotEnqueue(t *testing.T) {
	l := newSyncList()
	const (
		writers = 4
		readers = 4
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				l.enqueue(event.Acquire(event.Tid(w+1), event.Addr(20+w)))
				if i%64 == 0 {
					l.trim(nil)
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				start := l.snapshotTail()
				start.refs.Add(1)
				end := l.snapshotTail()
				// Walk the immutable segment [start, end).
				ls := NewLockset(ThreadElem(1))
				applyRules(ls, start, end, ruleSet{sem: event.TxnSharedVariable}, false, 0, 0)
				start.refs.Add(-1)
				_ = l.cellAt(16)
				_ = l.len()
			}
		}()
	}
	wg.Wait()
	if got, want := l.enqueued.Load(), uint64(writers*rounds); got != want {
		t.Errorf("enqueued = %d, want %d", got, want)
	}
}
