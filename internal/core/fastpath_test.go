package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"goldilocks/internal/conformance"
	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/tracegen"
)

// runBoth executes tr on two engines differing only in FastPath and
// returns (races with fast path, stats with fast path, races without).
func runBoth(tr *event.Trace) ([]detect.Race, core.Stats, []detect.Race) {
	on := core.DefaultOptions()
	on.FastPath = true
	off := core.DefaultOptions()
	off.FastPath = false
	onEng := core.NewEngine(on)
	onRaces := detect.RunTrace(onEng, tr)
	offRaces := detect.RunTrace(core.NewEngine(off), tr)
	return onRaces, onEng.Stats(), offRaces
}

// TestEscalationEdges drives every epoch→lockset ownership-transfer
// trigger through the fast path: in each case the variable starts
// thread-owned (so the fast path engages, asserted via FastPathHits),
// then ownership transfers through one synchronization vocabulary, and
// the escalated variable must produce verdicts — including the full
// provenance chain — identical to the always-lockset engine's.
func TestEscalationEdges(t *testing.T) {
	const (
		x    event.Addr = 10 // the handed-off data object
		lk   event.Addr = 20
		vol  event.Addr = 21
		ch   event.Addr = 22
		spin event.Addr = 23 // second object for read-shared cases
	)
	cases := []struct {
		name string
		tr   *event.Trace
		// racy is the ground-truth verdict, double-checked against both
		// engines so the table stays honest about what each case tests.
		racy bool
	}{
		{
			// Reads spread the variable across threads; t1's write then
			// finds a foreign reader. Properly synchronized: no race.
			name: "write-after-read-shared-synced",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(1, x, 0).
				Acquire(1, lk).Read(1, x, 0).Release(1, lk).
				Acquire(2, lk).Read(2, x, 0).Release(2, lk).
				Acquire(1, lk).Write(1, x, 0).Release(1, lk).
				Trace(),
			racy: false,
		},
		{
			name: "write-after-read-shared-racy",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(1, x, 0).
				Acquire(1, lk).Read(1, x, 0).Release(1, lk).
				Acquire(2, lk).Read(2, x, 0).Release(2, lk).
				Write(1, x, 0). // no lock this time: races with t2's read
				Trace(),
			racy: true,
		},
		{
			name: "lock-handoff",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(1, x, 0).Write(1, x, 0). // fast-path territory
				Acquire(1, lk).Write(1, x, 0).Release(1, lk).
				Acquire(2, lk).Write(2, x, 0).Release(2, lk). // escalates here
				Trace(),
			racy: false,
		},
		{
			// Disjoint locks: the lockset intersection between t1's release
			// and t2's acquire is empty, so escalation must report the race.
			name: "lock-handoff-racy",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(1, x, 0).Write(1, x, 0).
				Acquire(1, lk).Write(1, x, 0).Release(1, lk).
				Acquire(2, spin).Write(2, x, 0).Release(2, spin).
				Trace(),
			racy: true,
		},
		{
			name: "volatile-handoff",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(1, x, 0).Write(1, x, 0).
				VolatileWrite(1, vol, 0).
				VolatileRead(2, vol, 0).
				Write(2, x, 0).
				Trace(),
			racy: false,
		},
		{
			name: "channel-handoff",
			tr: event.NewBuilder().
				Fork(1, 2).
				ChanMake(1, ch, 1).
				Write(1, x, 0).Write(1, x, 0).
				ChanSend(1, ch).
				ChanRecv(2, ch).
				Write(2, x, 0).
				Trace(),
			racy: false,
		},
		{
			name: "channel-close-handoff",
			tr: event.NewBuilder().
				Fork(1, 2).
				ChanMake(1, ch, 1).
				Write(1, x, 0).Write(1, x, 0).
				ChanClose(1, ch).
				ChanRecv(2, ch). // receive from drained closed channel
				Write(2, x, 0).
				Trace(),
			racy: false,
		},
		{
			name: "fork-handoff",
			tr: event.NewBuilder().
				Write(1, x, 0).Write(1, x, 0).
				Fork(1, 2).
				Write(2, x, 0).
				Trace(),
			racy: false,
		},
		{
			name: "join-handoff",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(2, x, 0).Write(2, x, 0).
				Join(1, 2).
				Write(1, x, 0).
				Trace(),
			racy: false,
		},
		{
			name: "commit-handoff",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(1, spin, 0).Write(1, spin, 0). // plain fast-path traffic
				Commit(1, nil, []event.Variable{{Obj: x, Field: 0}}).
				Commit(2, []event.Variable{{Obj: x, Field: 0}}, nil).
				Trace(),
			racy: false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.tr.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			onRaces, onStats, offRaces := runBoth(c.tr)
			if onStats.FastPathHits == 0 {
				t.Error("fast path never engaged; the case does not test escalation")
			}
			if (len(onRaces) > 0) != c.racy {
				t.Errorf("fast-path engine racy=%v, ground truth %v (races %v)",
					len(onRaces) > 0, c.racy, onRaces)
			}
			if !reflect.DeepEqual(onRaces, offRaces) {
				t.Errorf("escalated verdicts diverge:\n fast path: %+v\n lockset:   %+v", onRaces, offRaces)
			}
			for i := range onRaces {
				if !reflect.DeepEqual(onRaces[i].Prov, offRaces[i].Prov) {
					t.Errorf("race %d provenance diverges:\n fast path: %v\n lockset:   %v",
						i, onRaces[i].Prov, offRaces[i].Prov)
				}
			}
		})
	}
}

// TestCommitEscalationSemantics audits the epoch fast path against
// transactional accesses: nested and interleaved commit(R,W) sequences
// — including R∩W overlaps and semantics-sensitive disjoint sets — must
// escalate fast-path-owned variables into the lockset machinery with
// verdicts, provenance chains, and Stats (except FastPathHits)
// identical to the always-lockset engine and to the executable
// specification, under every TxnSemantics interpretation.
func TestCommitEscalationSemantics(t *testing.T) {
	const (
		x event.Addr = 10
		y event.Addr = 11
		w event.Addr = 12 // warm-up object keeping the fast path engaged
	)
	vx := event.Variable{Obj: x, Field: 0}
	vy := event.Variable{Obj: y, Field: 0}
	cases := []struct {
		name string
		tr   *event.Trace
		// racy[sem] is the expected verdict under each interpretation.
		racy map[event.TxnSemantics]bool
	}{
		{
			// Publication edge W∩R': synchronized under all three.
			name: "commit-publication",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(1, w, 0).Write(1, x, 0).
				Commit(1, nil, []event.Variable{vx}).
				Commit(2, []event.Variable{vx}, nil).
				Write(2, x, 0).
				Trace(),
			racy: map[event.TxnSemantics]bool{
				event.TxnSharedVariable: false,
				event.TxnAtomicOrder:    false,
				event.TxnWriteToRead:    false,
			},
		},
		{
			// Disjoint variable sets: only the atomic-order interpretation
			// makes the two commits synchronize.
			name: "commit-disjoint-sets",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(1, w, 0).Write(1, x, 0).
				Commit(1, nil, []event.Variable{vx}).
				Commit(2, nil, []event.Variable{vy}).
				Write(2, x, 0).
				Trace(),
			racy: map[event.TxnSemantics]bool{
				event.TxnSharedVariable: true,
				event.TxnAtomicOrder:    false,
				event.TxnWriteToRead:    true,
			},
		},
		{
			// Read-read overlap: shared-variable and atomic-order
			// synchronize (R∪W intersects), write-to-read does not (W∩R'
			// is empty).
			name: "commit-read-read",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(1, w, 0).Write(1, x, 0).
				Commit(1, []event.Variable{vx}, nil).
				Commit(2, []event.Variable{vx}, nil).
				Write(2, x, 0).
				Trace(),
			racy: map[event.TxnSemantics]bool{
				event.TxnSharedVariable: false,
				event.TxnAtomicOrder:    false,
				event.TxnWriteToRead:    true,
			},
		},
		{
			// R∩W in both commits: the overlap generalizes to a write, so
			// every interpretation synchronizes.
			name: "commit-rw-overlap",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(1, w, 0).Write(1, x, 0).
				Commit(1, []event.Variable{vx}, []event.Variable{vx}).
				Commit(2, []event.Variable{vx}, []event.Variable{vx}).
				Write(2, x, 0).
				Trace(),
			racy: map[event.TxnSemantics]bool{
				event.TxnSharedVariable: false,
				event.TxnAtomicOrder:    false,
				event.TxnWriteToRead:    false,
			},
		},
		{
			// Interleaved commit chains across three threads: x publishes
			// to t2, which republishes through y to t1 — a nested
			// publication chain the fast path must follow rung by rung.
			name: "commit-chain",
			tr: event.NewBuilder().
				Fork(1, 2).
				Write(1, w, 0).Write(1, x, 0).
				Commit(1, nil, []event.Variable{vx}).
				Commit(2, []event.Variable{vx}, []event.Variable{vy}).
				Commit(1, []event.Variable{vy}, nil).
				Read(1, y, 0).
				Write(2, x, 0). // still inside t2's publication: no race
				Trace(),
			racy: map[event.TxnSemantics]bool{
				event.TxnSharedVariable: false,
				event.TxnAtomicOrder:    false,
				event.TxnWriteToRead:    false,
			},
		},
	}
	for _, c := range cases {
		for _, sem := range event.AllTxnSemantics() {
			t.Run(fmt.Sprintf("%s/%v", c.name, sem), func(t *testing.T) {
				if err := c.tr.Validate(); err != nil {
					t.Fatalf("invalid trace: %v", err)
				}
				on := core.DefaultOptions()
				on.FastPath = true
				on.TxnSemantics = sem
				off := core.DefaultOptions()
				off.FastPath = false
				off.TxnSemantics = sem
				onEng, offEng := core.NewEngine(on), core.NewEngine(off)
				onRaces := detect.RunTrace(onEng, c.tr)
				offRaces := detect.RunTrace(offEng, c.tr)

				if onEng.Stats().FastPathHits == 0 {
					t.Error("fast path never engaged; the case does not test escalation")
				}
				if got, want := len(onRaces) > 0, c.racy[sem]; got != want {
					t.Errorf("racy = %v, want %v (races %v)", got, want, onRaces)
				}
				if !reflect.DeepEqual(onRaces, offRaces) {
					t.Errorf("escalated verdicts diverge:\n fast path: %+v\n lockset:   %+v", onRaces, offRaces)
				}
				for i := range onRaces {
					if !reflect.DeepEqual(onRaces[i].Prov, offRaces[i].Prov) {
						t.Errorf("race %d provenance diverges:\n fast path: %v\n lockset:   %v",
							i, onRaces[i].Prov, offRaces[i].Prov)
					}
				}
				onStats, offStats := onEng.Stats(), offEng.Stats()
				onStats.FastPathHits = 0
				if onStats != offStats {
					t.Errorf("stats diverge\n fast path: %+v\n lockset:   %+v", onStats, offStats)
				}
				specRaces := detect.RunTrace(core.NewSpecEngineSem(sem), c.tr)
				if len(specRaces) != len(onRaces) {
					t.Errorf("spec reports %d races, engines %d", len(specRaces), len(onRaces))
				}
			})
		}
	}
}

// TestFastPathStatsParity pins the counter contract on a handoff-heavy
// generated workload: with the fast path on, every Stats field except
// FastPathHits must be identical to the slow engine's — the fast path
// replicates the short-circuit accounting it bypasses.
func TestFastPathStatsParity(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := tracegen.Default()
		cfg.Channels = int(seed) % 3
		tr := tracegen.FromSeedConfig(seed, cfg)
		on := core.DefaultOptions()
		on.FastPath = true
		off := core.DefaultOptions()
		off.FastPath = false
		onEng, offEng := core.NewEngine(on), core.NewEngine(off)
		detect.RunTrace(onEng, tr)
		detect.RunTrace(offEng, tr)
		onStats, offStats := onEng.Stats(), offEng.Stats()
		if onStats.FastPathHits == 0 {
			t.Errorf("seed %d: fast path never engaged", seed)
		}
		if r := onStats.FastPathRate(); r <= 0 || r > 1 {
			t.Errorf("seed %d: FastPathRate = %v, want (0,1]", seed, r)
		}
		onStats.FastPathHits = 0
		if onStats != offStats {
			t.Errorf("seed %d: stats diverge\n fast path: %+v\n lockset:   %+v", seed, onStats, offStats)
		}
	}
}

// TestEscalationStress hammers escalation under the race detector: a
// channel- and lock-heavy generated trace is delivered concurrently
// (one goroutine per trace thread, ticket-serialized to the trace
// order) into a fast-path engine, whose verdicts must match the serial
// always-lockset run. Any unsynchronized state shared between the
// epoch check and the walk machinery is a -race failure here.
func TestEscalationStress(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := tracegen.Default()
			cfg.Steps = 400
			cfg.MaxThreads = 6
			cfg.Channels = 2
			cfg.SyncBias = 0.8
			tr := tracegen.FromSeedConfig(seed, cfg)
			opts := core.DefaultOptions()
			opts.FastPath = true
			got := conformance.RunConcurrent(core.NewEngine(opts), tr)
			off := core.DefaultOptions()
			off.FastPath = false
			want := detect.RunTrace(core.NewEngine(off), tr)
			gotKeys := make([]string, len(got))
			for i, r := range got {
				gotKeys[i] = fmt.Sprintf("%d:%v", r.Pos, r.Var)
			}
			wantKeys := make([]string, len(want))
			for i, r := range want {
				wantKeys[i] = fmt.Sprintf("%d:%v", r.Pos, r.Var)
			}
			if !reflect.DeepEqual(gotKeys, wantKeys) {
				t.Errorf("concurrent fast-path verdicts %v, serial lockset %v", gotKeys, wantKeys)
			}
		})
	}
}
