package core

import (
	"sync"
	"sync/atomic"

	"goldilocks/internal/event"
)

// cell is one entry of the synchronization event list (the Cell record
// of Figure 8). The list always ends in an empty sentinel cell: an
// enqueue fills the current sentinel and links a fresh one. An Info's
// pos field points to the sentinel that was current when the access
// happened, so the events that came after the access are exactly the
// filled cells reachable from pos.
type cell struct {
	action event.Action
	seq    uint64 // position in the extended synchronization order
	next   *cell
	refs   atomic.Int32 // number of Info.pos pointers to this cell
	filled bool
}

// syncList is the synchronization event list: an append-only linked
// list of synchronization actions in extended synchronization order,
// with reference-counted prefix trimming.
//
// The sentinel tail is published through an atomic pointer, so readers
// (snapshotTail on every data access, and the walks it anchors) never
// take the mutex; mu serializes only the writers: enqueue and trim.
// The memory-model argument: enqueue fills the old sentinel (action,
// filled, next, and the new sentinel's seq) *before* the atomic store
// that publishes the new tail, so a reader that loads some tail T sees
// every cell strictly before T fully filled and immutable — those
// fields are never written again.
type syncList struct {
	mu     sync.Mutex
	head   *cell                // oldest retained cell; guarded by mu
	tail   atomic.Pointer[cell] // empty sentinel; lock-free readable
	length atomic.Int64         // filled cells reachable from head

	enqueued  atomic.Uint64 // total events ever enqueued
	collected atomic.Uint64 // total cells trimmed
}

func newSyncList() *syncList {
	sentinel := &cell{seq: 0}
	l := &syncList{head: sentinel}
	l.tail.Store(sentinel)
	return l
}

// enqueue appends a synchronization action and returns the new length.
func (l *syncList) enqueue(a event.Action) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.tail.Load()
	t.action = a
	t.filled = true
	t.next = &cell{seq: t.seq + 1}
	l.tail.Store(t.next) // publishes the fill to lock-free readers
	n := l.length.Add(1)
	l.enqueued.Add(1)
	return int(n)
}

// snapshotTail returns the current sentinel without locking. Every
// filled cell strictly before it is immutable; the happens-before edge
// established by the atomic tail publication makes those cells safe to
// read without further synchronization.
func (l *syncList) snapshotTail() *cell {
	return l.tail.Load()
}

// trim drops unreferenced cells from the front of the list, stopping at
// the first cell with a nonzero reference count, at limit, or at the
// sentinel. It returns the number of cells dropped.
func (l *syncList) trim(limit *cell) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	dropped := 0
	tail := l.tail.Load()
	for l.head != tail && l.head.refs.Load() == 0 {
		if limit != nil && l.head.seq >= limit.seq {
			break
		}
		l.head = l.head.next
		dropped++
	}
	l.length.Add(int64(-dropped))
	l.collected.Add(uint64(dropped))
	return dropped
}

// len returns the number of filled cells currently retained.
func (l *syncList) len() int {
	return int(l.length.Load())
}

// cellFor returns the retained cell at position seq, or nil if that
// prefix has been collected. The scan from head is linear — cellFor
// serves race provenance, a cold path that runs at most once per racy
// variable.
func (l *syncList) cellFor(seq uint64) *cell {
	l.mu.Lock()
	c := l.head
	l.mu.Unlock()
	if c.seq > seq {
		return nil
	}
	end := l.tail.Load()
	for c != end && c.seq < seq {
		c = c.next
	}
	if c.seq != seq {
		return nil
	}
	return c
}

// cellAt returns the retained cell that is n filled cells past head (or
// the last filled cell if the list is shorter), for choosing the
// partially-eager advance point. Returns nil if the list has no filled
// cells.
//
// Only the head read needs the mutex; the walk itself runs on the
// immutable filled cells between head and a tail snapshot, so an O(n)
// collection scan no longer blocks every concurrent enqueue and access.
// The head must be read before the tail: head never passes the tail, so
// a head read first is always at or before a tail read second, and the
// sentinel stays reachable from it.
func (l *syncList) cellAt(n int) *cell {
	l.mu.Lock()
	c := l.head
	l.mu.Unlock()
	end := l.tail.Load()
	if c == end {
		return nil // no filled cells
	}
	for i := 0; i < n && c.next != nil && c.next != end; i++ {
		c = c.next
	}
	return c
}
