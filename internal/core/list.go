package core

import (
	"sync"
	"sync/atomic"

	"goldilocks/internal/event"
)

// cell is one entry of the synchronization event list (the Cell record
// of Figure 8). The list always ends in an empty sentinel cell: an
// enqueue fills the current sentinel and links a fresh one. An Info's
// pos field points to the sentinel that was current when the access
// happened, so the events that came after the access are exactly the
// filled cells reachable from pos.
type cell struct {
	action event.Action
	seq    uint64 // position in the extended synchronization order
	next   *cell
	refs   atomic.Int32 // number of Info.pos pointers to this cell
	filled bool
}

// syncList is the synchronization event list: an append-only linked
// list of synchronization actions in extended synchronization order,
// with reference-counted prefix trimming.
type syncList struct {
	mu     sync.Mutex
	head   *cell // oldest retained cell
	tail   *cell // empty sentinel
	length int   // filled cells reachable from head

	enqueued  atomic.Uint64 // total events ever enqueued
	collected atomic.Uint64 // total cells trimmed
}

func newSyncList() *syncList {
	sentinel := &cell{seq: 0}
	return &syncList{head: sentinel, tail: sentinel}
}

// enqueue appends a synchronization action and returns the new length.
func (l *syncList) enqueue(a event.Action) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.tail
	t.action = a
	t.filled = true
	t.next = &cell{seq: t.seq + 1}
	l.tail = t.next
	l.length++
	l.enqueued.Add(1)
	return l.length
}

// snapshotTail returns the current sentinel. Every filled cell strictly
// before it is immutable; the happens-before edge established by the
// list mutex makes those cells safe to read without further locking.
func (l *syncList) snapshotTail() *cell {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// trim drops unreferenced cells from the front of the list, stopping at
// the first cell with a nonzero reference count, at limit, or at the
// sentinel. It returns the number of cells dropped.
func (l *syncList) trim(limit *cell) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	dropped := 0
	for l.head != l.tail && l.head.filled && l.head.refs.Load() == 0 {
		if limit != nil && l.head.seq >= limit.seq {
			break
		}
		l.head = l.head.next
		l.length--
		dropped++
	}
	l.collected.Add(uint64(dropped))
	return dropped
}

// len returns the number of filled cells currently retained.
func (l *syncList) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.length
}

// cellAt returns the retained cell that is n filled cells past head (or
// the last filled cell if the list is shorter), for choosing the
// partially-eager advance point. Returns nil if the list has no filled
// cells.
func (l *syncList) cellAt(n int) *cell {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := l.head
	if !c.filled {
		return nil
	}
	for i := 0; i < n && c.next != nil && c.next.filled; i++ {
		c = c.next
	}
	return c
}
