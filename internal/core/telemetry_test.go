package core_test

import (
	"strings"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/tracegen"
)

// runWithTelemetry drives one detector over tr and returns its races and
// rule-fire counters.
func runWithTelemetry(det detect.Detector, tel *obs.Telemetry, tr *event.Trace) ([]detect.Race, [obs.NumRules + 1]uint64) {
	races := detect.RunTrace(det, tr)
	return races, tel.RuleFires()
}

// provByKey indexes the provenance string of each race by its
// (position, variable) identity, the representation-independent race
// key the equivalence tests use.
func provByKey(t *testing.T, races []detect.Race) map[string]string {
	t.Helper()
	out := make(map[string]string, len(races))
	for _, r := range races {
		key := r.Var.String() + "@" + r.Access.String()
		if r.Prov == nil {
			t.Fatalf("race %v has no provenance", &r)
		}
		out[key] = r.Prov.String()
	}
	return out
}

// TestMetricsDeterminism is the determinism contract of the telemetry
// layer: processing one linearization through the spec engine and the
// optimized engine yields identical per-rule fire counters and identical
// provenance output. Rule fires count events of the linearization (not
// representation-dependent walk work, which WalkRuleHits tracks
// separately), so memoization, short-circuits, and sharding must not
// show through.
func TestMetricsDeterminism(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		tr := tracegen.FromSeed(seed)

		specTel := obs.NewTelemetry()
		spec := core.NewSpecEngine()
		spec.SetTelemetry(specTel)
		specRaces, specFires := runWithTelemetry(spec, specTel, tr)

		engTel := obs.NewTelemetry()
		opts := core.DefaultOptions()
		opts.Telemetry = engTel
		engRaces, engFires := runWithTelemetry(core.NewEngine(opts), engTel, tr)

		if specFires != engFires {
			t.Fatalf("seed %d: rule fires diverge\nspec:   %v\nengine: %v", seed, specFires, engFires)
		}
		specProv := provByKey(t, specRaces)
		engProv := provByKey(t, engRaces)
		if len(specProv) != len(engProv) {
			t.Fatalf("seed %d: %d spec races vs %d engine races", seed, len(specProv), len(engProv))
		}
		for key, want := range specProv {
			if got, ok := engProv[key]; !ok {
				t.Fatalf("seed %d: engine missing race %s", seed, key)
			} else if got != want {
				t.Fatalf("seed %d: provenance diverges for %s\nspec:   %s\nengine: %s", seed, key, want, got)
			}
		}
	}
}

// TestProvenancePath pins the provenance of a directed scenario: T1
// writes x under lock m and T3 later reads x with no synchronization to
// T1. The lockset must evolve {T1} → {T1, m} via rule 2 (release), and
// the report must state that no chain reached T3.
func TestProvenancePath(t *testing.T) {
	const (
		obj  = event.Addr(10)
		m    = event.Addr(20)
		fld  = event.FieldID(0)
		t1   = event.Tid(1)
		t2   = event.Tid(2)
		t3   = event.Tid(3)
		lock = "o20"
	)
	tr := event.NewTrace([]event.Action{
		event.Acquire(t1, m),
		event.Write(t1, obj, fld),
		event.Release(t1, m),
		event.Acquire(t2, m),
		event.Read(t2, obj, fld), // ordered: lockset holds m at T2's acquire
		event.Release(t2, m),
		event.Read(t3, obj, fld), // racy: no chain to T3
	})

	for _, det := range []detect.Detector{core.New(), core.NewSpecEngine()} {
		races := detect.RunTrace(det, tr)
		if len(races) != 1 {
			t.Fatalf("%s: got %d races, want 1", det.Name(), len(races))
		}
		p := races[0].Prov
		if p == nil {
			t.Fatalf("%s: race has no provenance", det.Name())
		}
		if p.Base != "{T1}" {
			t.Errorf("%s: base lockset %q, want {T1}", det.Name(), p.Base)
		}
		rules := p.Rules()
		if len(rules) == 0 || rules[0] != obs.RuleRelease {
			t.Errorf("%s: first provenance rule %v, want release (2)", det.Name(), rules)
		}
		if !strings.Contains(p.Path(), lock) {
			t.Errorf("%s: path %q never contains the lock %s", det.Name(), p.Path(), lock)
		}
		if !strings.Contains(p.String(), "no synchronization chain reached T3") {
			t.Errorf("%s: provenance %q lacks the unreached-thread clause", det.Name(), p)
		}
	}
}

// TestStatsRatioZeroDenominators: the ratio helpers must report 0, not
// NaN, before any work has been counted (a fresh engine scraped by the
// metrics endpoint).
func TestStatsRatioZeroDenominators(t *testing.T) {
	var s core.Stats
	if r := s.ShortCircuitRate(); r != 0 {
		t.Errorf("ShortCircuitRate() = %v, want 0", r)
	}
	if r := s.FullWalkRate(); r != 0 {
		t.Errorf("FullWalkRate() = %v, want 0", r)
	}
	if r := s.AvgWalkCells(); r != 0 {
		t.Errorf("AvgWalkCells() = %v, want 0", r)
	}
	if r := s.GCReclaimRate(); r != 0 {
		t.Errorf("GCReclaimRate() = %v, want 0", r)
	}
}

// TestEngineRegisterMetrics: a fresh engine with telemetry binds the
// rule counters and stats gauges into a registry, and the exports carry
// every Figure 5 rule plus the three short-circuit counters separately.
func TestEngineRegisterMetrics(t *testing.T) {
	tel := obs.NewTelemetry()
	opts := core.DefaultOptions()
	opts.Telemetry = tel
	e := core.NewEngine(opts)
	e.Sync(event.Acquire(1, 20))
	e.Write(1, 10, 0)

	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`goldilocks_rule_fires_total{rule="1"} 1`,
		`goldilocks_rule_fires_total{rule="3"} 1`,
		`goldilocks_rule_fires_total{rule="9"} 0`,
		"goldilocks_sc1_hits_total",
		"goldilocks_sc2_hits_total",
		"goldilocks_sc3_hits_total",
		"goldilocks_walk_depth_cells_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus export lacks %q", want)
		}
	}
}
