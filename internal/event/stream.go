package event

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"goldilocks/internal/report"
)

// The streaming trace format is line-delimited so that a truncated or
// partially corrupted file still yields its valid prefix: a header line
// identifying the format, then one record per action. Each record
// carries a CRC-32 (IEEE) checksum of the serialized action, so torn
// writes and bit rot are detected per record instead of poisoning the
// whole file.
//
//	{"format":"goldilocks-stream","version":1}
//	{"a":{"kind":"acquire","t":1,"o":2},"crc":"7f1c0d3a"}
//	...
//
// Trace validity is prefix-closed (Trace.Validate checks each action
// against the state built by the actions before it), so every valid
// prefix of a recorded execution is itself a replayable trace.

// StreamFormatName identifies the line-delimited trace format.
const StreamFormatName = "goldilocks-stream"

// StreamFormatVersion is the current format version. Version 2 added
// the channel event kinds (chmake/send/recv/close); the record layout
// is unchanged, so readers accept every version back to
// StreamMinVersion and old corpora stay readable.
const StreamFormatVersion = 2

// StreamMinVersion is the oldest stream version readers accept.
const StreamMinVersion = 1

type streamHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

type streamRecord struct {
	Action json.RawMessage `json:"a"`
	CRC    string          `json:"crc"`
	// Span is an optional trace span id stamped by a sampling client
	// (obs.Tracer). Zero means unsampled and is omitted, so spanless
	// records are byte-identical to the pre-span format and old readers
	// ignore the field entirely. The CRC covers only the action body, so
	// span stamping never invalidates a record.
	Span uint64 `json:"sp,omitempty"`
}

func actionCRC(serialized []byte) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(serialized))
}

// Auto-flush thresholds for StreamWriter: buffered records reach the
// underlying writer after at most autoFlushRecords appends or once
// autoFlushBytes are pending, whichever comes first. Without these, up
// to a full bufio buffer of records would sit in memory and be lost by
// a crash, contradicting the durability contract below.
const (
	autoFlushRecords = 32
	autoFlushBytes   = 2048
)

// StreamWriter writes actions incrementally in the streaming format.
// Unlike WriteTrace it needs no completed Trace up front, so a recording
// cut short by a crash (or by fault injection) keeps everything written
// so far — the header is flushed at creation and records auto-flush
// every autoFlushRecords appends (or autoFlushBytes pending bytes), so
// at most that window of records is at risk. Call Flush at commit
// points that must be durable immediately, and Close when done.
type StreamWriter struct {
	w       *bufio.Writer
	err     error
	pending int // records appended since the last flush
}

// NewStreamWriter writes and flushes the header and returns a writer
// ready for Append calls: a recording that crashes before its first
// record still salvages as a valid empty trace.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	sw := &StreamWriter{w: bufio.NewWriter(w)}
	if _, err := sw.w.Write(StreamHeaderLine()); err != nil {
		return nil, fmt.Errorf("event: writing stream header: %w", err)
	}
	if err := sw.w.Flush(); err != nil {
		return nil, fmt.Errorf("event: flushing stream header: %w", err)
	}
	return sw, nil
}

// Append writes one action record. After the first error every
// subsequent Append is a no-op returning that error.
func (sw *StreamWriter) Append(a Action) error {
	if sw.err != nil {
		return sw.err
	}
	rec, err := EncodeRecord(a)
	if err != nil {
		sw.err = err
		return err
	}
	if _, err := sw.w.Write(rec); err != nil {
		sw.err = fmt.Errorf("event: writing stream record: %w", err)
		return sw.err
	}
	sw.pending++
	if sw.pending >= autoFlushRecords || sw.w.Buffered() >= autoFlushBytes {
		if err := sw.w.Flush(); err != nil {
			sw.err = fmt.Errorf("event: flushing stream records: %w", err)
			return sw.err
		}
		sw.pending = 0
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (sw *StreamWriter) Flush() error {
	if sw.err != nil {
		return sw.err
	}
	if err := sw.w.Flush(); err != nil {
		sw.err = fmt.Errorf("event: flushing stream records: %w", err)
		return sw.err
	}
	sw.pending = 0
	return nil
}

// Close flushes buffered records and marks the writer finished: further
// Appends fail. It does not close the underlying writer (the caller
// owns it). Closing after a write error returns that error.
func (sw *StreamWriter) Close() error {
	if err := sw.Flush(); err != nil {
		return err
	}
	sw.err = fmt.Errorf("event: stream writer closed")
	return nil
}

// StreamHeaderLine returns the header line (newline-terminated) that
// opens every streaming trace.
func StreamHeaderLine() []byte {
	hdr, err := json.Marshal(streamHeader{Format: StreamFormatName, Version: StreamFormatVersion})
	if err != nil {
		panic(err) // static struct of two scalar fields; cannot fail
	}
	return append(hdr, '\n')
}

// CheckStreamHeader verifies that line is a usable stream header. Every
// version in [StreamMinVersion, StreamFormatVersion] is readable.
func CheckStreamHeader(line []byte) error {
	var hdr streamHeader
	if err := json.Unmarshal(line, &hdr); err != nil || hdr.Format != StreamFormatName {
		return fmt.Errorf("event: not a %s trace", StreamFormatName)
	}
	if hdr.Version < StreamMinVersion || hdr.Version > StreamFormatVersion {
		return fmt.Errorf("event: unsupported stream version %d (reader supports %d..%d)",
			hdr.Version, StreamMinVersion, StreamFormatVersion)
	}
	return nil
}

// EncodeRecord serializes one action as a checksummed record line
// (newline-terminated), the unit of the streaming format and of the
// goldilocksd wire protocol.
func EncodeRecord(a Action) ([]byte, error) {
	return EncodeRecordSpan(a, 0)
}

// EncodeRecordSpan is EncodeRecord with a trace span id riding the
// record. span 0 (unsampled) produces a line byte-identical to
// EncodeRecord's.
func EncodeRecordSpan(a Action, span uint64) ([]byte, error) {
	ja := jsonAction{
		Kind:   a.Kind.String(),
		Thread: a.Thread,
		Obj:    a.Obj,
		Field:  a.Field,
		Peer:   a.Peer,
		Reads:  a.Reads,
		Writes: a.Writes,
	}
	body, err := json.Marshal(ja)
	if err != nil {
		return nil, err
	}
	rec, err := json.Marshal(streamRecord{Action: body, CRC: actionCRC(body), Span: span})
	if err != nil {
		return nil, err
	}
	return append(rec, '\n'), nil
}

// DecodeRecord parses and checksum-verifies one record line; ok is
// false for a torn, corrupt, or unknown-kind record.
func DecodeRecord(line []byte) (a Action, ok bool) {
	a, _, st, _ := decodeStreamLine(line)
	return a, st == recOK
}

// DecodeRecordSpan is DecodeRecord plus the record's span id (0 when
// the record carries none).
func DecodeRecordSpan(line []byte) (a Action, span uint64, ok bool) {
	a, span, st, _ := decodeStreamLine(line)
	return a, span, st == recOK
}

// WriteTraceStream writes a whole trace in the streaming format.
func WriteTraceStream(w io.Writer, tr *Trace) error {
	sw, err := NewStreamWriter(w)
	if err != nil {
		return err
	}
	for i := 0; i < tr.Len(); i++ {
		if err := sw.Append(tr.At(i)); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// ReadTraceStream reads a streaming-format trace, salvaging the longest
// valid prefix. It stops at the first unreadable record — truncated
// line, malformed JSON, checksum mismatch, or an action that is invalid
// after the prefix before it — and returns the prefix trace together
// with the number of records dropped (the bad record, if
// distinguishable, plus everything after it).
//
// A torn or checksum-failing record is what a crash leaves behind, so
// it ends the salvage silently. An *intact* record (checksum verifies,
// JSON parses) whose kind this reader does not know is different: it
// means the stream came from a newer writer, and silently discarding it
// would misreport the execution. That case still returns the salvaged
// prefix and dropped count, but err is a structured *report.Report
// (Corruption kind, same type as resilience.Report) naming the unknown
// kind and the version skew. err is otherwise non-nil only when the
// header itself is unusable.
func ReadTraceStream(r io.Reader) (tr *Trace, dropped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, 0, fmt.Errorf("event: empty stream trace")
	}
	if err := CheckStreamHeader(sc.Bytes()); err != nil {
		return nil, 0, err
	}

	var actions []Action
	var unknownRep *report.Report
	val := NewValidator()
	record := 0
	bad := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		record++
		if bad {
			dropped++
			continue
		}
		a, _, st, kindName := decodeStreamLine(line)
		if st != recOK {
			if st == recUnknownKind {
				unknownRep = &report.Report{
					Kind: report.Corruption,
					Detail: fmt.Sprintf("unknown event kind %q in intact record %d (stream version <= %d reader; writer is newer)",
						kindName, record, StreamFormatVersion),
				}
			}
			bad = true
			dropped++
			continue
		}
		// Validity is prefix-closed: check the extended trace before
		// accepting the record.
		if val.Step(a) != nil {
			bad = true
			dropped++
			continue
		}
		actions = append(actions, a)
	}
	// A read error (not io.EOF) ends the salvage the same way a bad
	// record does: the prefix is what we have.
	_ = sc.Err()
	if unknownRep != nil {
		return NewTrace(actions), dropped, unknownRep
	}
	return NewTrace(actions), dropped, nil
}

// Validator is Trace.Validate as an incremental state machine, so
// streaming consumers (trace salvage, the goldilocksd ingest path) pay
// O(1) per record instead of revalidating the whole prefix. Step(a)
// errors exactly when Validate would error on the prefix extended with
// a (both of Validate's passes are streamable: the alloc-after-access
// check only consults the already-seen touched set). A Validator whose
// Step errored must not be stepped further.
type Validator struct {
	lockOwner map[Addr]Tid
	lockDepth map[Addr]int
	forked    map[Tid]bool
	started   map[Tid]bool
	joined    map[Tid]bool
	touched   map[Addr]bool
	inRegion  map[Tid]bool
	chans     *ChanTracker
}

// NewValidator returns a validator for an empty prefix.
func NewValidator() *Validator {
	return &Validator{
		lockOwner: make(map[Addr]Tid),
		lockDepth: make(map[Addr]int),
		forked:    make(map[Tid]bool),
		started:   make(map[Tid]bool),
		joined:    make(map[Tid]bool),
		touched:   make(map[Addr]bool),
		inRegion:  make(map[Tid]bool),
		chans:     NewChanTracker(),
	}
}

// Step checks that a is valid after the prefix stepped so far.
func (v *Validator) Step(a Action) error {
	if a.Thread == NoTid {
		return fmt.Errorf("event: missing thread id in %v", a)
	}
	if v.joined[a.Thread] {
		return fmt.Errorf("event: thread %v acts after being joined", a.Thread)
	}
	v.started[a.Thread] = true
	switch a.Kind {
	case KindAcquire:
		if owner, held := v.lockOwner[a.Obj]; held && owner != a.Thread {
			return fmt.Errorf("event: lock %v held by %v", a.Obj, owner)
		}
		v.lockOwner[a.Obj] = a.Thread
		v.lockDepth[a.Obj]++
	case KindRelease:
		owner, held := v.lockOwner[a.Obj]
		if !held {
			return fmt.Errorf("event: release of unheld lock %v", a.Obj)
		}
		if owner != a.Thread {
			return fmt.Errorf("event: release by non-owner (owner %v)", owner)
		}
		v.lockDepth[a.Obj]--
		if v.lockDepth[a.Obj] == 0 {
			delete(v.lockOwner, a.Obj)
			delete(v.lockDepth, a.Obj)
		}
	case KindFork:
		if v.forked[a.Peer] {
			return fmt.Errorf("event: thread %v forked twice", a.Peer)
		}
		if v.started[a.Peer] {
			return fmt.Errorf("event: thread %v forked after it acted", a.Peer)
		}
		v.forked[a.Peer] = true
	case KindJoin:
		if !v.forked[a.Peer] && !v.started[a.Peer] {
			return fmt.Errorf("event: join of unknown thread %v", a.Peer)
		}
		v.joined[a.Peer] = true
	case KindAlloc:
		if v.touched[a.Obj] {
			return fmt.Errorf("event: alloc of %v after it was accessed", a.Obj)
		}
	case KindChanMake, KindChanSend, KindChanRecv, KindChanClose:
		if _, err := v.chans.Normalize(a); err != nil {
			return fmt.Errorf("event: %v", err)
		}
	case KindTxBegin:
		if v.inRegion[a.Thread] {
			return fmt.Errorf("event: nested txbegin by %v", a.Thread)
		}
		v.inRegion[a.Thread] = true
	case KindTxEnd:
		if !v.inRegion[a.Thread] {
			return fmt.Errorf("event: txend by %v without an open region", a.Thread)
		}
		v.inRegion[a.Thread] = false
	case KindRead, KindWrite:
		v.touched[a.Obj] = true
	case KindCommit:
		for _, x := range a.Reads {
			v.touched[x.Obj] = true
		}
		for _, x := range a.Writes {
			v.touched[x.Obj] = true
		}
	}
	return nil
}

// recDecodeStatus classifies one record line.
type recDecodeStatus uint8

const (
	recOK          recDecodeStatus = iota
	recCorrupt                     // torn line, bad JSON, or checksum mismatch
	recUnknownKind                 // intact record carrying an unrecognized kind name
)

// decodeStreamLine parses and checksum-verifies one record line,
// distinguishing corruption from version skew (an intact record with an
// unknown kind). span is the record's trace span id (0 when absent);
// kindName is the offending name in the unknown-kind case.
func decodeStreamLine(line []byte) (Action, uint64, recDecodeStatus, string) {
	var rec streamRecord
	if err := json.Unmarshal(line, &rec); err != nil || len(rec.Action) == 0 {
		return Action{}, 0, recCorrupt, ""
	}
	if actionCRC(rec.Action) != rec.CRC {
		return Action{}, 0, recCorrupt, ""
	}
	var ja jsonAction
	if err := json.Unmarshal(rec.Action, &ja); err != nil {
		return Action{}, 0, recCorrupt, ""
	}
	k, ok := kindByName[ja.Kind]
	if !ok || k == KindInvalid {
		return Action{}, 0, recUnknownKind, ja.Kind
	}
	return Action{
		Kind:   k,
		Thread: ja.Thread,
		Obj:    ja.Obj,
		Field:  ja.Field,
		Peer:   ja.Peer,
		Reads:  ja.Reads,
		Writes: ja.Writes,
	}, rec.Span, recOK, ""
}

// ReadTraceAuto sniffs the format: a binary header frame selects
// ReadTraceBin, a streaming header selects ReadTraceStream (both
// returning any salvage count), anything else is read as the legacy
// single-object format (dropped is always 0 there — the legacy format
// is all-or-nothing). The binary sniff runs first: BinFormatName and
// StreamFormatName are chosen so neither contains the other.
func ReadTraceAuto(r io.Reader) (tr *Trace, dropped int, err error) {
	br := bufio.NewReader(r)
	peek, _ := br.Peek(64)
	if bytes.Contains(peek, []byte(BinFormatName)) {
		return ReadTraceBin(br)
	}
	if bytes.Contains(peek, []byte(StreamFormatName)) {
		return ReadTraceStream(br)
	}
	tr, err = ReadTrace(br)
	return tr, 0, err
}
