package event

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"goldilocks/internal/report"
)

// sampleStream serializes a small valid trace in the streaming format,
// as seed material for the fuzz targets.
func sampleStream(tb testing.TB) []byte {
	tr := NewBuilder().
		Fork(1, 2).
		Acquire(1, 7).
		Write(1, 10, 0).
		Release(1, 7).
		Acquire(2, 7).
		Read(2, 10, 0).
		Release(2, 7).
		VolatileWrite(1, 1, 0).
		VolatileRead(2, 1, 0).
		Commit(2, []Variable{{Obj: 10, Field: 1}}, []Variable{{Obj: 11, Field: 0}}).
		Alloc(1, 42).
		ChanMake(1, 30, 1).
		ChanSend(1, 30).
		ChanRecv(2, 30).
		ChanClose(1, 30).
		Join(1, 2).
		Trace()
	var buf bytes.Buffer
	if err := WriteTraceStream(&buf, tr); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// preChannelStream serializes a trace using only version-1 kinds, the
// shape of every corpus recorded before the channel vocabulary existed.
func preChannelStream(tb testing.TB) []byte {
	tr := NewBuilder().
		Fork(1, 2).
		Acquire(1, 7).
		Write(1, 10, 0).
		Release(1, 7).
		Read(2, 10, 0).
		Join(1, 2).
		Trace()
	var buf bytes.Buffer
	if err := WriteTraceStream(&buf, tr); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadTraceStream throws arbitrary bytes at the streaming reader.
// Robustness contract: never panic, never return an invalid trace, and
// when the reader salvages (dropped > 0 or early stop) the salvaged
// prefix must itself be a valid, re-serializable trace.
func FuzzReadTraceStream(f *testing.F) {
	sample := sampleStream(f)
	f.Add(sample)
	f.Add([]byte(`{"format":"goldilocks-stream","version":1}` + "\n"))
	f.Add([]byte(`{"format":"goldilocks-stream","version":2}` + "\n"))
	f.Add([]byte("not a stream at all"))
	f.Add(sample[:len(sample)-9]) // torn final record
	f.Add(bytes.Replace(sample, []byte(`"crc":"`), []byte(`"crc":"0`), 1))
	// An old-corpus file: a v1 header over pre-channel records. The v2
	// reader must keep salvaging these (backward-compat regression).
	v1 := preChannelStream(f)
	f.Add(bytes.Replace(v1, []byte(`"version":2`), []byte(`"version":1`), 1))
	// Version skew the other way: an intact record with a kind from the
	// future must surface the structured report, not a silent drop.
	withUnknown := append(append([]byte(nil), sample...),
		[]byte(`{"a":{"kind":"warp","t":1,"o":2},"crc":"`+actionCRC([]byte(`{"kind":"warp","t":1,"o":2}`))+`"}`+"\n")...)
	f.Add(withUnknown)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, dropped, err := ReadTraceStream(bytes.NewReader(data))
		if err != nil {
			// Unusable header: fine, as long as it did not panic. The one
			// structured error — version skew on an intact record — still
			// hands back a salvage, which must be a valid trace.
			var rep *report.Report
			if errors.As(err, &rep) {
				if rep.Kind != report.Corruption {
					t.Fatalf("stream reader produced report kind %v", rep.Kind)
				}
				if verr := tr.Validate(); verr != nil {
					t.Fatalf("salvage alongside skew report invalid: %v", verr)
				}
			}
			return
		}
		if dropped < 0 {
			t.Fatalf("negative dropped count %d", dropped)
		}
		// Salvaged prefixes are full-fledged traces: valid and
		// round-trippable with zero drops.
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("salvaged trace invalid: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteTraceStream(&buf, tr); werr != nil {
			t.Fatalf("re-serialize: %v", werr)
		}
		tr2, dropped2, rerr := ReadTraceStream(&buf)
		if rerr != nil || dropped2 != 0 {
			t.Fatalf("round trip: err=%v dropped=%d", rerr, dropped2)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip length %d, want %d", tr2.Len(), tr.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			if tr2.At(i).String() != tr.At(i).String() {
				t.Fatalf("round trip action %d: %v != %v", i, tr2.At(i), tr.At(i))
			}
		}
	})
}

// FuzzReadTraceAuto exercises the format sniffer: arbitrary bytes must
// never panic, and whatever parses must be a valid trace.
func FuzzReadTraceAuto(f *testing.F) {
	f.Add(sampleStream(f))
	f.Add([]byte(`{"actions":[{"kind":"write","t":1,"o":10,"d":0}]}`))
	f.Add([]byte(`{"format":"goldilocks-stream"`))
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, dropped, err := ReadTraceAuto(bytes.NewReader(data))
		if err != nil {
			return
		}
		if dropped < 0 {
			t.Fatalf("negative dropped count %d", dropped)
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("parsed trace invalid: %v", verr)
		}
	})
}

// TestStreamSalvageTruncatedPrefix pins the salvage behavior the fuzz
// target relies on: cutting a stream mid-record yields the preceding
// records and counts the torn one as dropped.
func TestStreamSalvageTruncatedPrefix(t *testing.T) {
	sample := sampleStream(t)
	lines := strings.SplitAfter(string(sample), "\n")
	// Header + 12 records (+ trailing empty split).
	if len(lines) < 13 {
		t.Fatalf("unexpected sample layout: %d lines", len(lines))
	}
	// Keep the header and first 5 records, then tear record 6 in half.
	torn := strings.Join(lines[:6], "") + lines[6][:len(lines[6])/2]
	tr, dropped, err := ReadTraceStream(strings.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("salvaged %d actions, want 5", tr.Len())
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (the torn record)", dropped)
	}
	if verr := tr.Validate(); verr != nil {
		t.Fatalf("salvaged prefix invalid: %v", verr)
	}
}
