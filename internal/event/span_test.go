package event_test

import (
	"bytes"
	"testing"

	"goldilocks/internal/event"
)

// The span field is an optional trace annotation riding the stream-v2
// record envelope; these tests pin its wire compatibility in both
// directions — spanless readers accept spanned records and vice versa —
// and that the CRC discipline (checksum over the action body only) is
// unchanged by its presence.

func TestRecordSpanRoundTrip(t *testing.T) {
	a := event.Acquire(3, 20)
	line, err := event.EncodeRecordSpan(a, 77)
	if err != nil {
		t.Fatal(err)
	}
	got, span, ok := event.DecodeRecordSpan(line)
	if !ok {
		t.Fatal("spanned record rejected")
	}
	if span != 77 {
		t.Fatalf("span = %d, want 77", span)
	}
	if got.Kind != a.Kind || got.Thread != a.Thread || got.Obj != a.Obj {
		t.Fatalf("action = %v, want %v", got, a)
	}
	if !bytes.Contains(line, []byte(`"sp":77`)) {
		t.Fatalf("span not on the wire: %s", line)
	}
}

func TestRecordSpanZeroOmitted(t *testing.T) {
	// Span 0 means "unsampled" and must not appear on the wire, so
	// tracing-off daemons emit byte-identical records to pre-span ones.
	withSpan, err := event.EncodeRecordSpan(event.Write(1, 10, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := event.EncodeRecord(event.Write(1, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(withSpan, plain) {
		t.Fatalf("span-0 record differs from plain record:\n%s\n%s", withSpan, plain)
	}
	if bytes.Contains(plain, []byte(`"sp"`)) {
		t.Fatalf("sp field present on unsampled record: %s", plain)
	}
}

func TestRecordSpanBackwardCompatible(t *testing.T) {
	// Old decoder path (DecodeRecord) accepts spanned records — the span
	// is simply ignored.
	line, err := event.EncodeRecordSpan(event.Read(2, 10, 1), 123456)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := event.DecodeRecord(line)
	if !ok {
		t.Fatal("spanless decoder rejected a spanned record")
	}
	if a.Kind != event.KindRead || a.Thread != 2 {
		t.Fatalf("action = %v", a)
	}

	// New decoder accepts span-free records as span 0.
	plain, err := event.EncodeRecord(event.Read(2, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, span, ok := event.DecodeRecordSpan(plain); !ok || span != 0 {
		t.Fatalf("plain record: ok=%v span=%d, want ok, 0", ok, span)
	}
}

func TestRecordSpanCRCCoversActionOnly(t *testing.T) {
	// The CRC covers the action body, not the envelope: flipping the span
	// must not invalidate the checksum (span corruption only misroutes a
	// latency sample, never a verdict), while flipping the action must.
	line, err := event.EncodeRecordSpan(event.Release(1, 20), 5)
	if err != nil {
		t.Fatal(err)
	}
	reSpanned := bytes.Replace(line, []byte(`"sp":5`), []byte(`"sp":9`), 1)
	if a, span, ok := event.DecodeRecordSpan(reSpanned); !ok || span != 9 || a.Kind != event.KindRelease {
		t.Fatalf("re-spanned record: ok=%v span=%d kind=%v", ok, span, a.Kind)
	}
	damaged := bytes.Replace(line, []byte(`"t":1`), []byte(`"t":2`), 1)
	if _, _, ok := event.DecodeRecordSpan(damaged); ok {
		t.Fatal("action corruption not caught by the record CRC")
	}
}
