package event

import "fmt"

// ChanTracker assigns every channel operation the synchronization
// variable it transfers locksets through, and rejects operations that
// could not have completed in a real execution. It is the one
// implementation of channel semantics shared by trace validation
// (Trace.Validate, the streaming Validator) and by every detector
// backend, so all of them agree on which volatile element a given
// send/recv synchronizes on.
//
// The model is a capacity conveyor. A channel with declared capacity C
// has effective width W = max(C, 1); the k-th completed send and the
// k-th completed recv (counting from 0, in linearization order — FIFO
// pairing) both synchronize on slot k mod W, a reserved volatile field
// of the channel object (ChanSlotField). Because consecutive uses of a
// slot are W messages apart, the slot chain encodes exactly Go's
// buffered-channel guarantees: send #k happens-before recv #k, and
// recv #k happens-before send #(k+W). close(c) releases onto the
// distinguished ChanClosedField element; a recv from a drained closed
// channel acquires from it (close as broadcast release) and transfers
// no message. For unbuffered channels this drops only the reverse
// rendezvous edge (recv happens-before the sender's continuation),
// a deliberate approximation documented in docs/ALGORITHM.md.
//
// Validity (linearizations record completions, so a "blocked forever"
// operation never appears):
//
//   - chmake: channel not already made; 0 <= cap <= ChanMaxCap.
//   - send:   channel made, not closed, and fewer than W messages in
//     flight (a completed send implies buffer room, or a rendezvous
//     partner for W = 1).
//   - recv:   channel made, and either a message is in flight or the
//     channel is closed (the drain case).
//   - close:  channel made and not already closed.
type ChanTracker struct {
	chans map[Addr]*ChanState
}

// ChanState is the tracked state of one channel. Exported so engine
// checkpoints can serialize and restore tracker state verbatim.
type ChanState struct {
	Cap    int32  // declared capacity
	Sends  uint64 // completed message sends
	Recvs  uint64 // completed message receives (drain recvs excluded)
	Closed bool
}

// width is the effective conveyor width max(Cap, 1).
func (s *ChanState) width() uint64 {
	if s.Cap > 0 {
		return uint64(s.Cap)
	}
	return 1
}

// NewChanTracker returns an empty tracker.
func NewChanTracker() *ChanTracker { return &ChanTracker{chans: make(map[Addr]*ChanState)} }

// Normalize checks a for validity and, for channel operations, rewrites
// its Field to the synchronization variable the operation transfers
// locksets through: the conveyor slot for message sends/recvs, the
// closed element for close and drained recvs. Non-channel actions are
// returned unchanged. The tracker advances only on success; an error
// leaves its state untouched.
func (ct *ChanTracker) Normalize(a Action) (Action, error) {
	switch a.Kind {
	case KindChanMake:
		capacity := int32(a.Field)
		if capacity < 0 || capacity > ChanMaxCap {
			return a, fmt.Errorf("chmake(%v): capacity %d out of range [0, %d]", a.Obj, capacity, int64(ChanMaxCap))
		}
		if _, dup := ct.chans[a.Obj]; dup {
			return a, fmt.Errorf("chmake(%v): channel already made", a.Obj)
		}
		ct.chans[a.Obj] = &ChanState{Cap: capacity}
		return a, nil
	case KindChanSend:
		s, ok := ct.chans[a.Obj]
		if !ok {
			return a, fmt.Errorf("send(%v): channel not made", a.Obj)
		}
		if s.Closed {
			return a, fmt.Errorf("send(%v): channel closed", a.Obj)
		}
		if s.Sends-s.Recvs >= s.width() {
			return a, fmt.Errorf("send(%v): %d messages in flight exceeds capacity %d", a.Obj, s.Sends-s.Recvs, s.width())
		}
		a.Field = ChanSlotField(int32(s.Sends % s.width()))
		s.Sends++
		return a, nil
	case KindChanRecv:
		s, ok := ct.chans[a.Obj]
		if !ok {
			return a, fmt.Errorf("recv(%v): channel not made", a.Obj)
		}
		if s.Sends == s.Recvs {
			if !s.Closed {
				return a, fmt.Errorf("recv(%v): no message in flight and channel open", a.Obj)
			}
			// Drained closed channel: the recv acquires from the close's
			// broadcast release and transfers no message.
			a.Field = ChanClosedField
			return a, nil
		}
		a.Field = ChanSlotField(int32(s.Recvs % s.width()))
		s.Recvs++
		return a, nil
	case KindChanClose:
		s, ok := ct.chans[a.Obj]
		if !ok {
			return a, fmt.Errorf("close(%v): channel not made", a.Obj)
		}
		if s.Closed {
			return a, fmt.Errorf("close(%v): channel already closed", a.Obj)
		}
		s.Closed = true
		a.Field = ChanClosedField
		return a, nil
	}
	return a, nil
}

// State returns the tracked state of channel c, or nil if c was never
// made (read-only view for tests and checkpointing).
func (ct *ChanTracker) State(c Addr) *ChanState { return ct.chans[c] }

// Snapshot returns a deep copy of the per-channel state keyed by
// channel address, for engine checkpoints.
func (ct *ChanTracker) Snapshot() map[Addr]ChanState {
	if len(ct.chans) == 0 {
		return nil
	}
	out := make(map[Addr]ChanState, len(ct.chans))
	for c, s := range ct.chans {
		out[c] = *s
	}
	return out
}

// Restore replaces the tracker's state with the snapshot.
func (ct *ChanTracker) Restore(snap map[Addr]ChanState) {
	ct.chans = make(map[Addr]*ChanState, len(snap))
	for c, s := range snap {
		cp := s
		ct.chans[c] = &cp
	}
}
