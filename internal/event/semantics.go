package event

// TxnSemantics selects how transaction commits enter the extended
// synchronizes-with relation. Section 3 of the paper defines the
// shared-variable interpretation and notes that "other ways of
// specifying the interaction between strongly-atomic transactions and
// the Java memory model can easily be incorporated"; all three named
// variants are implemented uniformly by the oracle and every precise
// detector.
type TxnSemantics uint8

const (
	// TxnSharedVariable: commit(R,W) synchronizes-with a later
	// commit(R',W') iff (R∪W) ∩ (R'∪W') ≠ ∅ — the paper's primary
	// definition (transactions over disjoint variables do not
	// synchronize).
	TxnSharedVariable TxnSemantics = iota
	// TxnAtomicOrder: every commit synchronizes with every later commit
	// (the atomic order of all transactions is a synchronization
	// order).
	TxnAtomicOrder
	// TxnWriteToRead: commit(R,W) synchronizes-with a later
	// commit(R',W') iff W ∩ R' ≠ ∅ — publication edges only, the
	// weakest of the three.
	TxnWriteToRead
)

func (s TxnSemantics) String() string {
	switch s {
	case TxnSharedVariable:
		return "shared-variable"
	case TxnAtomicOrder:
		return "atomic-order"
	case TxnWriteToRead:
		return "write-to-read"
	}
	return "TxnSemantics(?)"
}

// AllTxnSemantics lists the implemented interpretations.
func AllTxnSemantics() []TxnSemantics {
	return []TxnSemantics{TxnSharedVariable, TxnAtomicOrder, TxnWriteToRead}
}
