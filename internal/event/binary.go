package event

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"goldilocks/internal/report"
)

// The binary stream format is the length-prefixed counterpart of the
// line-JSON streaming format: the same actions, the same per-record
// integrity checking, the same salvage-the-valid-prefix durability
// story, at a fraction of the bytes and the encode/decode cost. It is
// both a trace-file format (WriteTraceBin/ReadTraceBin, sniffed by
// ReadTraceAuto) and the goldilocksd wire format ("goldilocks-bin",
// negotiated in the handshake — internal/server).
//
// Every frame is
//
//	uvarint(m) | type byte | body (m-5 bytes) | crc32-IEEE (4 bytes, LE)
//
// where m counts everything after the length prefix and the checksum
// covers the type byte and the body. The length prefix is written as a
// fixed-width (zero-padded) four-byte uvarint so an event frame can be
// encoded into a caller-reused buffer in one pass with no allocation:
// the length hole is patched after the body and checksum are in place.
// Readers accept any uvarint encoding, padded or minimal.
//
// Integer fields use zigzag varints (Obj and Field are negative for
// the lock pseudo-field, the channel closed element, and conveyor
// slots); the span id uses a plain uvarint.

// BinFormatName identifies the binary stream format. It deliberately
// does not contain StreamFormatName as a substring, so ReadTraceAuto
// can sniff the two formats independently.
const BinFormatName = "goldilocks-binstream"

// BinFormatVersion is the current binary stream version.
const BinFormatVersion = 1

// BinMinVersion is the oldest binary stream version readers accept.
const BinMinVersion = 1

// Frame types. The event-stream types live here; higher-level
// protocols (the goldilocksd server messages) allocate from 0x10 up
// and reuse the same framing.
const (
	// FrameHeader opens every binary stream: body is uvarint(version)
	// followed by the format name bytes.
	FrameHeader byte = 0x01
	// FrameEvent carries one action record (and optionally a span id).
	FrameEvent byte = 0x02
	// FrameCtl carries a one-byte control verb (client to server).
	FrameCtl byte = 0x03
)

// Event frame flag bits.
const (
	frameFlagSpan byte = 1 << 0 // a span id follows the fixed fields
	frameFlagSets byte = 1 << 1 // commit read/write sets follow
)

// MaxFrameLen bounds one frame (length prefix excluded). A commit's
// read/write sets are the only unbounded payload; 16 MiB matches the
// line-JSON scanner's record bound.
const MaxFrameLen = 16 << 20

// minFrameLen is type byte + checksum: the smallest well-formed m.
const minFrameLen = 5

// Frame-decode errors. ErrTornFrame means the stream ended inside a
// frame (what a crash or a cut connection leaves behind);
// ErrCorruptFrame means the frame is structurally intact but fails its
// checksum or bounds. Both end a salvage; see ReadTraceBin.
var (
	ErrTornFrame    = errors.New("event: torn binary frame")
	ErrCorruptFrame = errors.New("event: corrupt binary frame")
)

// appendPaddedUvarint appends u as a fixed-width four-byte uvarint
// (three continuation bytes, one terminator). Values up to 2^28-1 fit;
// MaxFrameLen is far below that.
func appendPaddedUvarint(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u)|0x80,
		byte(u>>7)|0x80,
		byte(u>>14)|0x80,
		byte(u>>21)&0x7f)
}

// AppendFrame appends one framed payload to dst and returns the
// extended slice. body may be nil.
func AppendFrame(dst []byte, typ byte, body []byte) []byte {
	m := 1 + len(body) + 4
	dst = appendPaddedUvarint(dst, uint64(m))
	payloadStart := len(dst)
	dst = append(dst, typ)
	dst = append(dst, body...)
	crc := crc32.ChecksumIEEE(dst[payloadStart:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// AppendEventFrame appends one action record frame to dst — the binary
// counterpart of EncodeRecordSpan — and returns the extended slice. It
// allocates nothing beyond dst's growth, so a streaming sender reusing
// dst reaches steady-state zero allocations per event.
func AppendEventFrame(dst []byte, a Action, span uint64) []byte {
	start := len(dst)
	dst = appendPaddedUvarint(dst, 0) // length hole, patched below
	payloadStart := len(dst)
	dst = append(dst, FrameEvent)

	var flags byte
	if span != 0 {
		flags |= frameFlagSpan
	}
	if len(a.Reads) > 0 || len(a.Writes) > 0 {
		flags |= frameFlagSets
	}
	dst = append(dst, flags, byte(a.Kind))
	dst = binary.AppendVarint(dst, int64(a.Thread))
	dst = binary.AppendVarint(dst, int64(a.Obj))
	dst = binary.AppendVarint(dst, int64(a.Field))
	dst = binary.AppendVarint(dst, int64(a.Peer))
	if flags&frameFlagSpan != 0 {
		dst = binary.AppendUvarint(dst, span)
	}
	if flags&frameFlagSets != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(a.Reads)))
		for _, v := range a.Reads {
			dst = binary.AppendVarint(dst, int64(v.Obj))
			dst = binary.AppendVarint(dst, int64(v.Field))
		}
		dst = binary.AppendUvarint(dst, uint64(len(a.Writes)))
		for _, v := range a.Writes {
			dst = binary.AppendVarint(dst, int64(v.Obj))
			dst = binary.AppendVarint(dst, int64(v.Field))
		}
	}

	crc := crc32.ChecksumIEEE(dst[payloadStart:])
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	m := uint64(len(dst) - payloadStart)
	patched := appendPaddedUvarint(dst[start:start], m)
	_ = patched // writes in place into the hole
	return dst
}

// binReader wraps a byte slice for sequential varint decoding.
type binReader struct {
	b   []byte
	err bool
}

func (r *binReader) byte() byte {
	if r.err || len(r.b) == 0 {
		r.err = true
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *binReader) varint() int64 {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.err = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

// errUnknownBinKind marks an intact event frame carrying a kind byte
// this reader does not know: version skew, not corruption.
type errUnknownBinKind struct{ kind byte }

func (e *errUnknownBinKind) Error() string {
	return fmt.Sprintf("event: unknown binary event kind %d", e.kind)
}

// DecodeEventFrame parses an event frame body (the bytes between the
// type byte and the checksum — ReadFrame's body). The returned error is
// *errUnknownBinKind for an intact frame from a newer writer and
// ErrCorruptFrame for a structurally bad body.
func DecodeEventFrame(body []byte) (Action, uint64, error) {
	r := binReader{b: body}
	flags := r.byte()
	kind := r.byte()
	a := Action{
		Kind:   Kind(kind),
		Thread: Tid(r.varint()),
		Obj:    Addr(r.varint()),
		Field:  FieldID(r.varint()),
		Peer:   Tid(r.varint()),
	}
	var span uint64
	if flags&frameFlagSpan != 0 {
		span = r.uvarint()
	}
	if flags&frameFlagSets != 0 {
		nr := r.uvarint()
		if r.err || nr > uint64(len(r.b)) {
			return Action{}, 0, ErrCorruptFrame
		}
		a.Reads = make([]Variable, nr)
		for i := range a.Reads {
			a.Reads[i] = Variable{Obj: Addr(r.varint()), Field: FieldID(r.varint())}
		}
		nw := r.uvarint()
		if r.err || nw > uint64(len(r.b)) {
			return Action{}, 0, ErrCorruptFrame
		}
		a.Writes = make([]Variable, nw)
		for i := range a.Writes {
			a.Writes[i] = Variable{Obj: Addr(r.varint()), Field: FieldID(r.varint())}
		}
	}
	if r.err || len(r.b) != 0 {
		return Action{}, 0, ErrCorruptFrame
	}
	if int(kind) >= len(kindNames) || Kind(kind) == KindInvalid {
		return Action{}, 0, &errUnknownBinKind{kind: kind}
	}
	return a, span, nil
}

// BinHeaderFrame returns the header frame that opens every binary
// stream.
func BinHeaderFrame() []byte {
	body := binary.AppendUvarint(nil, BinFormatVersion)
	body = append(body, BinFormatName...)
	return AppendFrame(nil, FrameHeader, body)
}

// CheckBinHeader verifies a header frame body. Every version in
// [BinMinVersion, BinFormatVersion] is readable.
func CheckBinHeader(body []byte) error {
	r := binReader{b: body}
	v := r.uvarint()
	if r.err || string(r.b) != BinFormatName {
		return fmt.Errorf("event: not a %s stream", BinFormatName)
	}
	if v < BinMinVersion || v > BinFormatVersion {
		return fmt.Errorf("event: unsupported binary stream version %d (reader supports %d..%d)",
			v, BinMinVersion, BinFormatVersion)
	}
	return nil
}

// FrameReader reads frames sequentially, reusing one buffer: the body
// it returns is valid only until the next call.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewFrameReader returns a FrameReader over br.
func NewFrameReader(br *bufio.Reader) *FrameReader {
	return &FrameReader{br: br}
}

// Next reads one frame and returns its type and body. io.EOF means the
// stream ended cleanly at a frame boundary; ErrTornFrame that it ended
// inside a frame; ErrCorruptFrame a bad length or checksum. Any other
// error is an underlying read error.
func (fr *FrameReader) Next() (typ byte, body []byte, err error) {
	m, err := binary.ReadUvarint(fr.br)
	if err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF // clean end: no bytes of a next frame
		}
		if err == io.ErrUnexpectedEOF {
			return 0, nil, ErrTornFrame
		}
		return 0, nil, err
	}
	if m < minFrameLen || m > MaxFrameLen {
		return 0, nil, ErrCorruptFrame
	}
	if uint64(cap(fr.buf)) < m {
		fr.buf = make([]byte, m)
	}
	buf := fr.buf[:m]
	if _, err := io.ReadFull(fr.br, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, ErrTornFrame
		}
		return 0, nil, err
	}
	payload, sum := buf[:m-4], binary.LittleEndian.Uint32(buf[m-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, ErrCorruptFrame
	}
	return payload[0], payload[1:], nil
}

// BinWriter writes actions incrementally in the binary stream format,
// with the same auto-flush durability contract as StreamWriter. The
// encode buffer is reused across Appends, so steady-state appends
// allocate nothing.
type BinWriter struct {
	w       *bufio.Writer
	buf     []byte
	err     error
	pending int
}

// NewBinWriter writes and flushes the header frame and returns a
// writer ready for Append calls.
func NewBinWriter(w io.Writer) (*BinWriter, error) {
	bw := &BinWriter{w: bufio.NewWriter(w)}
	if _, err := bw.w.Write(BinHeaderFrame()); err != nil {
		return nil, fmt.Errorf("event: writing binary stream header: %w", err)
	}
	if err := bw.w.Flush(); err != nil {
		return nil, fmt.Errorf("event: flushing binary stream header: %w", err)
	}
	return bw, nil
}

// Append writes one action frame. After the first error every
// subsequent Append is a no-op returning that error.
func (bw *BinWriter) Append(a Action) error { return bw.AppendSpan(a, 0) }

// AppendSpan is Append with a trace span id riding the frame.
func (bw *BinWriter) AppendSpan(a Action, span uint64) error {
	if bw.err != nil {
		return bw.err
	}
	bw.buf = AppendEventFrame(bw.buf[:0], a, span)
	if _, err := bw.w.Write(bw.buf); err != nil {
		bw.err = fmt.Errorf("event: writing binary stream frame: %w", err)
		return bw.err
	}
	bw.pending++
	if bw.pending >= autoFlushRecords || bw.w.Buffered() >= autoFlushBytes {
		if err := bw.w.Flush(); err != nil {
			bw.err = fmt.Errorf("event: flushing binary stream frames: %w", err)
			return bw.err
		}
		bw.pending = 0
	}
	return nil
}

// Flush flushes buffered frames to the underlying writer.
func (bw *BinWriter) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	if err := bw.w.Flush(); err != nil {
		bw.err = fmt.Errorf("event: flushing binary stream frames: %w", err)
		return bw.err
	}
	bw.pending = 0
	return nil
}

// Close flushes buffered frames and marks the writer finished.
func (bw *BinWriter) Close() error {
	if err := bw.Flush(); err != nil {
		return err
	}
	bw.err = fmt.Errorf("event: binary stream writer closed")
	return nil
}

// WriteTraceBin writes a whole trace in the binary stream format.
func WriteTraceBin(w io.Writer, tr *Trace) error {
	bw, err := NewBinWriter(w)
	if err != nil {
		return err
	}
	for i := 0; i < tr.Len(); i++ {
		if err := bw.Append(tr.At(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceBin reads a binary stream trace, salvaging the longest valid
// prefix, mirroring ReadTraceStream's contract with one strengthening:
// a torn or checksum-failing frame also returns a structured
// *report.Report (Corruption kind, the same type as resilience.Report),
// because a binary frame boundary — unlike a JSON line boundary —
// distinguishes a crash-truncated tail from a clean end of stream. An
// intact frame with an unknown kind (version skew) reports the same
// way, naming the kind. A frame whose action is invalid after the
// salvaged prefix ends the salvage silently, as in the JSON reader.
func ReadTraceBin(r io.Reader) (tr *Trace, dropped int, err error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64*1024)
	}
	fr := NewFrameReader(br)
	typ, body, ferr := fr.Next()
	if ferr != nil {
		return nil, 0, fmt.Errorf("event: missing binary stream header: %w", ferr)
	}
	if typ != FrameHeader {
		return nil, 0, fmt.Errorf("event: not a %s stream", BinFormatName)
	}
	if err := CheckBinHeader(body); err != nil {
		return nil, 0, err
	}

	var actions []Action
	var rep *report.Report
	val := NewValidator()
	frame := 0
	bad := false
	for {
		typ, body, ferr := fr.Next()
		if ferr == io.EOF {
			break
		}
		frame++
		if ferr != nil {
			// Torn or corrupt frame: the length of anything after it is
			// untrustworthy, so the salvage ends here.
			dropped++
			rep = &report.Report{
				Kind:   report.Corruption,
				Detail: fmt.Sprintf("binary stream frame %d: %v (valid prefix of %d records salvaged)", frame, ferr, len(actions)),
			}
			break
		}
		if bad {
			dropped++
			continue
		}
		if typ != FrameEvent {
			dropped++
			bad = true
			rep = &report.Report{
				Kind:   report.Corruption,
				Detail: fmt.Sprintf("binary stream frame %d: unexpected frame type 0x%02x", frame, typ),
			}
			continue
		}
		a, _, derr := DecodeEventFrame(body)
		if derr != nil {
			dropped++
			bad = true
			var unk *errUnknownBinKind
			if errors.As(derr, &unk) {
				rep = &report.Report{
					Kind: report.Corruption,
					Detail: fmt.Sprintf("unknown event kind %d in intact frame %d (binary stream version <= %d reader; writer is newer)",
						unk.kind, frame, BinFormatVersion),
				}
			} else {
				rep = &report.Report{
					Kind:   report.Corruption,
					Detail: fmt.Sprintf("binary stream frame %d: %v", frame, derr),
				}
			}
			continue
		}
		if val.Step(a) != nil {
			dropped++
			bad = true
			continue
		}
		actions = append(actions, a)
	}
	if rep != nil {
		return NewTrace(actions), dropped, rep
	}
	return NewTrace(actions), dropped, nil
}
