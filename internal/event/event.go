// Package event defines the action vocabulary of Goldilocks (PLDI 2007,
// Section 3): thread and object identifiers, data and volatile variables,
// and the ten action kinds that make up a monitored execution.
//
// An execution is a per-thread sequence of actions together with a total
// order (the extended synchronization order) on the synchronization
// actions. The race detectors in this repository consume a linearization
// of the extended happens-before relation, represented here as a Trace.
package event

import (
	"fmt"
	"sort"
	"strings"
)

// Tid identifies a thread. Thread ids are small dense integers assigned
// by the runtime; NoTid is the zero value and never identifies a real
// thread.
type Tid int32

// NoTid is the absent thread id.
const NoTid Tid = 0

func (t Tid) String() string { return fmt.Sprintf("T%d", int32(t)) }

// Addr identifies a heap object. Object ids are assigned at allocation;
// NilAddr never identifies a real object.
type Addr int64

// NilAddr is the absent object id.
const NilAddr Addr = 0

func (a Addr) String() string { return fmt.Sprintf("o%d", int64(a)) }

// FieldID identifies a field within a class, or an array slot. The
// detector treats each (Addr, FieldID) pair as a distinct variable; array
// elements are modeled as distinct fields of the array object, as in the
// paper's evaluation ("arrays were checked by treating each array element
// as a separate variable").
type FieldID int32

// Variable is a data variable (o, d): a data field d of object o.
type Variable struct {
	Obj   Addr
	Field FieldID
}

func (v Variable) String() string { return fmt.Sprintf("%v.f%d", v.Obj, int32(v.Field)) }

// Volatile is a synchronization variable (o, v): a volatile field v of
// object o. The per-object monitor lock is modeled, as in the paper, as
// the distinguished volatile field LockField.
type Volatile struct {
	Obj   Addr
	Field FieldID
}

func (v Volatile) String() string {
	switch {
	case v.Field == LockField:
		return fmt.Sprintf("%v.lock", v.Obj)
	case v.Field == ChanClosedField:
		return fmt.Sprintf("%v.closed", v.Obj)
	case v.Field <= chanSlotBase:
		return fmt.Sprintf("%v.ch[%d]", v.Obj, int32(chanSlotBase-v.Field))
	}
	return fmt.Sprintf("%v.v%d", v.Obj, int32(v.Field))
}

// LockField is the distinguished volatile field l used to model object
// monitor locks (Section 3: "we use a special field l in Volatile ...
// to model the semantics of an object lock").
const LockField FieldID = -1

// ChanClosedField is the distinguished volatile field modeling the
// closed flag of a channel object: close(c) releases onto it and every
// receive from a drained closed channel acquires from it (close as a
// broadcast release).
const ChanClosedField FieldID = -2

// chanSlotBase anchors the reserved range of channel conveyor-slot
// fields: slot s is field chanSlotBase - s. The negative range keeps
// channel synchronization variables disjoint from real volatile fields
// (>= 0) and the lock/closed sentinels without widening Volatile.
const chanSlotBase FieldID = -16

// ChanSlotField returns the volatile field modeling conveyor slot s of
// a channel (s in [0, cap) for buffered channels, always 0 for
// unbuffered ones).
func ChanSlotField(s int32) FieldID { return chanSlotBase - FieldID(s) }

// ChanMaxCap bounds declared channel capacities, keeping the slot-field
// encoding (and per-slot detector state) well inside the FieldID range.
const ChanMaxCap = 1 << 20

// Lock returns the synchronization variable modeling the monitor of o.
func Lock(o Addr) Volatile { return Volatile{Obj: o, Field: LockField} }

// Kind enumerates the action kinds of Section 3.
type Kind uint8

const (
	// KindInvalid is the zero Kind and never appears in a valid trace.
	KindInvalid Kind = iota

	// Data actions.
	KindRead  // read(o, d)
	KindWrite // write(o, d)

	// Synchronization actions.
	KindAcquire       // acq(o)
	KindRelease       // rel(o)
	KindVolatileRead  // read(o, v)
	KindVolatileWrite // write(o, v)
	KindFork          // fork(u)
	KindJoin          // join(u)
	KindCommit        // commit(R, W)

	// Allocation.
	KindAlloc // alloc(o)

	// Channel synchronization (CSP vocabulary). A channel is a heap
	// object whose send/recv/close actions induce happens-before edges
	// through reserved volatile fields of the channel object (conveyor
	// slots and the closed flag); see ChanTracker.
	KindChanMake  // chmake(c, cap) — Field carries the declared capacity
	KindChanSend  // send(c)
	KindChanRecv  // recv(c)
	KindChanClose // close(c)

	// Region markers (RegionTrack/Velodrome-style serializability
	// checking). A txbegin/txend pair delimits an atomic region of one
	// thread: every action the thread performs between the markers
	// belongs to one region that a serializability checker must be able
	// to commute to a single point of the schedule. The markers are
	// annotations, not synchronization: they induce no happens-before
	// edges, fire no lockset rule, and every race detector ignores them.
	KindTxBegin // txbegin — the thread's current atomic region opens
	KindTxEnd   // txend — the thread's current atomic region closes
)

var kindNames = [...]string{
	KindInvalid:       "invalid",
	KindRead:          "read",
	KindWrite:         "write",
	KindAcquire:       "acq",
	KindRelease:       "rel",
	KindVolatileRead:  "vread",
	KindVolatileWrite: "vwrite",
	KindFork:          "fork",
	KindJoin:          "join",
	KindCommit:        "commit",
	KindAlloc:         "alloc",
	KindChanMake:      "chmake",
	KindChanSend:      "send",
	KindChanRecv:      "recv",
	KindChanClose:     "close",
	KindTxBegin:       "txbegin",
	KindTxEnd:         "txend",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsSync reports whether k is a synchronization action kind (a member of
// SyncKind in the paper). Commit actions are synchronization actions:
// they participate in the extended synchronization order.
func (k Kind) IsSync() bool {
	switch k {
	case KindAcquire, KindRelease, KindVolatileRead, KindVolatileWrite,
		KindFork, KindJoin, KindCommit,
		KindChanMake, KindChanSend, KindChanRecv, KindChanClose:
		return true
	}
	return false
}

// IsChan reports whether k is a channel operation kind.
func (k Kind) IsChan() bool {
	switch k {
	case KindChanMake, KindChanSend, KindChanRecv, KindChanClose:
		return true
	}
	return false
}

// IsData reports whether k is a data access kind.
func (k Kind) IsData() bool { return k == KindRead || k == KindWrite }

// IsMarker reports whether k is a region marker kind. Markers annotate
// the trace for the serializability checker; they are neither data nor
// synchronization actions and every race detector treats them as no-ops.
func (k Kind) IsMarker() bool { return k == KindTxBegin || k == KindTxEnd }

// Action is one step of an execution. The meaning of the fields depends
// on Kind:
//
//   - KindRead/KindWrite: Thread accesses data variable (Obj, Field).
//   - KindAcquire/KindRelease: Thread acquires/releases the monitor of Obj.
//   - KindVolatileRead/KindVolatileWrite: Thread reads/writes volatile
//     (Obj, Field).
//   - KindFork/KindJoin: Thread forks/joins the thread Peer.
//   - KindCommit: Thread commits a transaction with read set Reads and
//     write set Writes.
//   - KindAlloc: Thread allocates object Obj.
type Action struct {
	Kind   Kind
	Thread Tid
	Obj    Addr
	Field  FieldID
	Peer   Tid
	Reads  []Variable // commit only
	Writes []Variable // commit only
}

// Variable returns the data variable accessed by a KindRead/KindWrite
// action. It must not be called for other kinds.
func (a Action) Variable() Variable {
	if !a.Kind.IsData() {
		panic(fmt.Sprintf("event: Variable called on %v action", a.Kind))
	}
	return Variable{Obj: a.Obj, Field: a.Field}
}

// Volatile returns the synchronization variable touched by a volatile
// access, or the lock variable for acquire/release.
func (a Action) Volatile() Volatile {
	switch a.Kind {
	case KindVolatileRead, KindVolatileWrite:
		return Volatile{Obj: a.Obj, Field: a.Field}
	case KindAcquire, KindRelease:
		return Lock(a.Obj)
	case KindChanSend, KindChanRecv, KindChanClose:
		// Meaningful only after ChanTracker.Normalize assigned the slot
		// (or closed) field the operation synchronizes through.
		return Volatile{Obj: a.Obj, Field: a.Field}
	}
	panic(fmt.Sprintf("event: Volatile called on %v action", a.Kind))
}

// Accesses reports whether the action accesses the data variable v: it is
// a read or write of v, or a commit whose read or write set contains v.
// This is the access notion used by Theorem 1.
func (a Action) Accesses(v Variable) bool {
	switch a.Kind {
	case KindRead, KindWrite:
		return a.Obj == v.Obj && a.Field == v.Field
	case KindCommit:
		for _, r := range a.Reads {
			if r == v {
				return true
			}
		}
		for _, w := range a.Writes {
			if w == v {
				return true
			}
		}
	}
	return false
}

// WritesVar reports whether the action writes v (a plain write, or a
// commit whose write set contains v).
func (a Action) WritesVar(v Variable) bool {
	switch a.Kind {
	case KindWrite:
		return a.Obj == v.Obj && a.Field == v.Field
	case KindCommit:
		for _, w := range a.Writes {
			if w == v {
				return true
			}
		}
	}
	return false
}

func (a Action) String() string {
	switch a.Kind {
	case KindRead, KindWrite:
		return fmt.Sprintf("%v:%v(%v)", a.Thread, a.Kind, a.Variable())
	case KindAcquire, KindRelease, KindAlloc:
		return fmt.Sprintf("%v:%v(%v)", a.Thread, a.Kind, a.Obj)
	case KindVolatileRead, KindVolatileWrite:
		return fmt.Sprintf("%v:%v(%v)", a.Thread, a.Kind, a.Volatile())
	case KindFork, KindJoin:
		return fmt.Sprintf("%v:%v(%v)", a.Thread, a.Kind, a.Peer)
	case KindChanMake:
		return fmt.Sprintf("%v:chmake(%v, cap=%d)", a.Thread, a.Obj, int32(a.Field))
	case KindChanSend, KindChanRecv, KindChanClose:
		return fmt.Sprintf("%v:%v(%v)", a.Thread, a.Kind, a.Obj)
	case KindCommit:
		return fmt.Sprintf("%v:commit(R=%s, W=%s)", a.Thread, varSetString(a.Reads), varSetString(a.Writes))
	}
	return fmt.Sprintf("%v:%v", a.Thread, a.Kind)
}

func varSetString(vs []Variable) string {
	strs := make([]string, len(vs))
	for i, v := range vs {
		strs[i] = v.String()
	}
	sort.Strings(strs)
	return "{" + strings.Join(strs, ",") + "}"
}

// Convenience constructors. They make trace-building code in tests and
// workloads read close to the paper's notation.

// Read constructs a read(o, d) action by thread t.
func Read(t Tid, o Addr, d FieldID) Action {
	return Action{Kind: KindRead, Thread: t, Obj: o, Field: d}
}

// Write constructs a write(o, d) action by thread t.
func Write(t Tid, o Addr, d FieldID) Action {
	return Action{Kind: KindWrite, Thread: t, Obj: o, Field: d}
}

// Acquire constructs an acq(o) action by thread t.
func Acquire(t Tid, o Addr) Action {
	return Action{Kind: KindAcquire, Thread: t, Obj: o}
}

// Release constructs a rel(o) action by thread t.
func Release(t Tid, o Addr) Action {
	return Action{Kind: KindRelease, Thread: t, Obj: o}
}

// VolatileRead constructs a read(o, v) action by thread t.
func VolatileRead(t Tid, o Addr, v FieldID) Action {
	return Action{Kind: KindVolatileRead, Thread: t, Obj: o, Field: v}
}

// VolatileWrite constructs a write(o, v) action by thread t.
func VolatileWrite(t Tid, o Addr, v FieldID) Action {
	return Action{Kind: KindVolatileWrite, Thread: t, Obj: o, Field: v}
}

// Fork constructs a fork(u) action by thread t.
func Fork(t, u Tid) Action { return Action{Kind: KindFork, Thread: t, Peer: u} }

// Join constructs a join(u) action by thread t.
func Join(t, u Tid) Action { return Action{Kind: KindJoin, Thread: t, Peer: u} }

// Alloc constructs an alloc(o) action by thread t.
func Alloc(t Tid, o Addr) Action { return Action{Kind: KindAlloc, Thread: t, Obj: o} }

// Commit constructs a commit(R, W) action by thread t. The slices are
// retained, not copied.
func Commit(t Tid, reads, writes []Variable) Action {
	return Action{Kind: KindCommit, Thread: t, Reads: reads, Writes: writes}
}

// ChanMake constructs a chmake(c, cap) action by thread t: channel
// object c comes into existence with the given buffer capacity (0 for
// unbuffered). The capacity rides in the Field slot.
func ChanMake(t Tid, c Addr, capacity int32) Action {
	return Action{Kind: KindChanMake, Thread: t, Obj: c, Field: FieldID(capacity)}
}

// ChanSend constructs a send(c) action by thread t. The synchronizing
// slot field is assigned later by ChanTracker.Normalize.
func ChanSend(t Tid, c Addr) Action {
	return Action{Kind: KindChanSend, Thread: t, Obj: c}
}

// ChanRecv constructs a recv(c) action by thread t. The synchronizing
// slot (or closed-drain) field is assigned later by
// ChanTracker.Normalize.
func ChanRecv(t Tid, c Addr) Action {
	return Action{Kind: KindChanRecv, Thread: t, Obj: c}
}

// ChanClose constructs a close(c) action by thread t.
func ChanClose(t Tid, c Addr) Action {
	return Action{Kind: KindChanClose, Thread: t, Obj: c}
}

// TxBegin constructs a txbegin region marker by thread t.
func TxBegin(t Tid) Action { return Action{Kind: KindTxBegin, Thread: t} }

// TxEnd constructs a txend region marker by thread t.
func TxEnd(t Tid) Action { return Action{Kind: KindTxEnd, Thread: t} }
