package event

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"errors"
	"strings"
	"testing"

	"goldilocks/internal/report"
)

// sampleTrace is the shared valid-trace fixture covering every kind,
// including the channel vocabulary and a commit with read/write sets.
func sampleTrace() *Trace {
	return NewBuilder().
		Fork(1, 2).
		Acquire(1, 7).
		Write(1, 10, 0).
		Release(1, 7).
		Acquire(2, 7).
		Read(2, 10, 0).
		Release(2, 7).
		VolatileWrite(1, 1, 0).
		VolatileRead(2, 1, 0).
		Commit(2, []Variable{{Obj: 10, Field: 1}}, []Variable{{Obj: 11, Field: 0}}).
		Alloc(1, 42).
		ChanMake(1, 30, 1).
		ChanSend(1, 30).
		ChanRecv(2, 30).
		ChanClose(1, 30).
		Join(1, 2).
		Trace()
}

func sampleBin(tb testing.TB) []byte {
	var buf bytes.Buffer
	if err := WriteTraceBin(&buf, sampleTrace()); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryGoldenVectors pins the wire encoding byte for byte. A
// failure here means the format changed: bump BinFormatVersion and
// teach the reader the old layout before touching these strings.
func TestBinaryGoldenVectors(t *testing.T) {
	cases := []struct {
		name string
		a    Action
		span uint64
		hex  string
	}{
		{"plain-write", Action{Kind: KindWrite, Thread: 1, Obj: 10}, 0,
			"8b80800002000202140000105e15c1"},
		{"span-read", Action{Kind: KindRead, Thread: 2, Obj: 10, Field: 3}, 0x9d,
			"8d808000020101041406009d014bdf503a"},
		{"acquire-lockfield", Action{Kind: KindAcquire, Thread: 1, Obj: 7, Field: LockField}, 0,
			"8b808000020003020e01004760dff4"},
		{"chan-send-slot", Action{Kind: KindChanSend, Thread: 1, Obj: 30, Field: ChanSlotField(2)}, 0,
			"8b80800002000c023c23004880d2f6"},
		{"chan-close", Action{Kind: KindChanClose, Thread: 1, Obj: 30, Field: ChanClosedField}, 7,
			"8c80800002010e023c030007538d65e7"},
		{"fork", Action{Kind: KindFork, Thread: 1, Peer: 2}, 0,
			"8b80800002000702000004d51eb715"},
		{"commit-sets", Action{Kind: KindCommit, Thread: 2,
			Reads:  []Variable{{Obj: 10, Field: 1}, {Obj: 11, Field: LockField}},
			Writes: []Variable{{Obj: 12, Field: 0}}}, 0x1234,
			"9580800002030904000000b4240214021601011800925c7c4b"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := AppendEventFrame(nil, c.a, c.span)
			if hex.EncodeToString(got) != c.hex {
				t.Fatalf("encode = %s, want %s", hex.EncodeToString(got), c.hex)
			}
			// And the pinned bytes decode back to the same action.
			want, err := hex.DecodeString(c.hex)
			if err != nil {
				t.Fatal(err)
			}
			fr := NewFrameReader(bufio.NewReader(bytes.NewReader(want)))
			typ, body, err := fr.Next()
			if err != nil || typ != FrameEvent {
				t.Fatalf("Next: typ=%#x err=%v", typ, err)
			}
			a, span, err := DecodeEventFrame(body)
			if err != nil {
				t.Fatal(err)
			}
			if a.String() != c.a.String() || span != c.span {
				t.Fatalf("decode = %v span %#x, want %v span %#x", a, span, c.a, c.span)
			}
			if len(a.Reads) != len(c.a.Reads) || len(a.Writes) != len(c.a.Writes) {
				t.Fatalf("decode sets = %v/%v, want %v/%v", a.Reads, a.Writes, c.a.Reads, c.a.Writes)
			}
		})
	}
	const wantHeader = "9a8080000101676f6c64696c6f636b732d62696e73747265616d6961e614"
	if got := hex.EncodeToString(BinHeaderFrame()); got != wantHeader {
		t.Fatalf("header frame = %s, want %s", got, wantHeader)
	}
}

// TestBinaryMinimalLengthPrefix checks that readers accept a minimally
// encoded length prefix, not just the padded form writers emit.
func TestBinaryMinimalLengthPrefix(t *testing.T) {
	padded := AppendEventFrame(nil, Action{Kind: KindWrite, Thread: 1, Obj: 10}, 0)
	// Padded prefix is 4 bytes; the minimal encoding of any m < 128 is 1.
	minimal := append([]byte{padded[0] &^ 0x80}, padded[4:]...)
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(minimal)))
	typ, body, err := fr.Next()
	if err != nil || typ != FrameEvent {
		t.Fatalf("Next on minimal prefix: typ=%#x err=%v", typ, err)
	}
	a, _, err := DecodeEventFrame(body)
	if err != nil || a.Kind != KindWrite {
		t.Fatalf("decode: a=%v err=%v", a, err)
	}
}

// TestBinaryRoundTrip writes the full-vocabulary sample and reads it
// back with zero drops and identical actions.
func TestBinaryRoundTrip(t *testing.T) {
	want := sampleTrace()
	tr, dropped, err := ReadTraceBin(bytes.NewReader(sampleBin(t)))
	if err != nil || dropped != 0 {
		t.Fatalf("ReadTraceBin: err=%v dropped=%d", err, dropped)
	}
	if tr.Len() != want.Len() {
		t.Fatalf("round trip length %d, want %d", tr.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if tr.At(i).String() != want.At(i).String() {
			t.Fatalf("action %d: %v != %v", i, tr.At(i), want.At(i))
		}
	}
}

// TestBinaryAutoSniff checks ReadTraceAuto routes binary, line-JSON,
// and legacy inputs to the right reader.
func TestBinaryAutoSniff(t *testing.T) {
	tr, dropped, err := ReadTraceAuto(bytes.NewReader(sampleBin(t)))
	if err != nil || dropped != 0 || tr.Len() != sampleTrace().Len() {
		t.Fatalf("binary sniff: len=%d dropped=%d err=%v", tr.Len(), dropped, err)
	}
	var jbuf bytes.Buffer
	if err := WriteTraceStream(&jbuf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	tr, _, err = ReadTraceAuto(&jbuf)
	if err != nil || tr.Len() != sampleTrace().Len() {
		t.Fatalf("stream sniff: len=%d err=%v", tr.Len(), err)
	}
	tr, _, err = ReadTraceAuto(strings.NewReader(`{"actions":[{"kind":"write","t":1,"o":10}]}`))
	if err != nil || tr.Len() != 1 {
		t.Fatalf("legacy sniff: len=%d err=%v", tr.Len(), err)
	}
}

// TestBinarySalvageTorn cuts the sample mid-frame: the valid prefix
// must be salvaged and the error must be a structured corruption
// report (the same type as resilience.Report).
func TestBinarySalvageTorn(t *testing.T) {
	sample := sampleBin(t)
	for _, cut := range []int{len(sample) - 1, len(sample) - 5, len(sample) - 9} {
		tr, dropped, err := ReadTraceBin(bytes.NewReader(sample[:cut]))
		var rep *report.Report
		if !errors.As(err, &rep) {
			t.Fatalf("cut %d: err = %v, want *report.Report", cut, err)
		}
		if rep.Kind != report.Corruption {
			t.Fatalf("cut %d: report kind %v, want Corruption", cut, rep.Kind)
		}
		if dropped != 1 {
			t.Fatalf("cut %d: dropped = %d, want 1", cut, dropped)
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("cut %d: salvaged prefix invalid: %v", cut, verr)
		}
		if tr.Len() != sampleTrace().Len()-1 {
			t.Fatalf("cut %d: salvaged %d actions, want %d", cut, tr.Len(), sampleTrace().Len()-1)
		}
	}
}

// TestBinarySalvageCorruptCRC flips a payload byte in the middle of the
// stream: the prefix before the bad frame survives, the error is a
// corruption report, and nothing after the bad frame is trusted.
func TestBinarySalvageCorruptCRC(t *testing.T) {
	sample := sampleBin(t)
	corrupt := append([]byte(nil), sample...)
	// Flip a byte well past the header frame but before the end.
	corrupt[len(corrupt)/2] ^= 0xff
	tr, dropped, err := ReadTraceBin(bytes.NewReader(corrupt))
	var rep *report.Report
	if !errors.As(err, &rep) || rep.Kind != report.Corruption {
		t.Fatalf("err = %v, want corruption report", err)
	}
	if dropped < 1 {
		t.Fatalf("dropped = %d, want >= 1", dropped)
	}
	if verr := tr.Validate(); verr != nil {
		t.Fatalf("salvaged prefix invalid: %v", verr)
	}
	if tr.Len() >= sampleTrace().Len() {
		t.Fatalf("salvage kept %d actions out of %d despite corruption", tr.Len(), sampleTrace().Len())
	}
}

// TestBinaryUnknownKind feeds an intact frame carrying a future kind:
// the reader must salvage the prefix and name the kind in a structured
// report rather than failing the checksum path.
func TestBinaryUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Append(Action{Kind: KindWrite, Thread: 1, Obj: 10}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Hand-build an intact frame with kind byte 200.
	body := []byte{0 /* flags */, 200 /* kind */, 2, 0, 0, 0}
	buf.Write(AppendFrame(nil, FrameEvent, body))
	tr, dropped, rerr := ReadTraceBin(&buf)
	var rep *report.Report
	if !errors.As(rerr, &rep) || rep.Kind != report.Corruption {
		t.Fatalf("err = %v, want corruption report", rerr)
	}
	if !strings.Contains(rep.Detail, "kind 200") {
		t.Fatalf("report does not name the kind: %q", rep.Detail)
	}
	if tr.Len() != 1 || dropped != 1 {
		t.Fatalf("salvage = %d actions, %d dropped; want 1, 1", tr.Len(), dropped)
	}
}

// TestBinWriterFlushBoundaries mirrors the StreamWriter durability
// contract: after Flush, tearing the underlying buffer anywhere only
// loses frames appended since, bounding the loss window to under
// autoFlushRecords records.
func TestBinWriterFlushBoundaries(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr := sampleTrace()
	for i := 0; i < tr.Len(); i++ {
		if err := bw.Append(tr.At(i)); err != nil {
			t.Fatal(err)
		}
		if i == 4 {
			if err := bw.Flush(); err != nil {
				t.Fatal(err)
			}
			// Everything up to here must already be durable and readable.
			got, dropped, rerr := ReadTraceBin(bytes.NewReader(buf.Bytes()))
			if rerr != nil || dropped != 0 || got.Len() != 5 {
				t.Fatalf("after mid-stream flush: len=%d dropped=%d err=%v", got.Len(), dropped, rerr)
			}
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Append(Action{Kind: KindRead, Thread: 1, Obj: 10}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	got, dropped, rerr := ReadTraceBin(bytes.NewReader(buf.Bytes()))
	if rerr != nil || dropped != 0 || got.Len() != tr.Len() {
		t.Fatalf("after close: len=%d dropped=%d err=%v", got.Len(), dropped, rerr)
	}
}

// TestBinaryEncodeZeroAlloc pins the zero-alloc encode contract: with a
// warm reused buffer, AppendEventFrame allocates nothing.
func TestBinaryEncodeZeroAlloc(t *testing.T) {
	a := Action{Kind: KindWrite, Thread: 1, Obj: 10, Field: 3}
	buf := AppendEventFrame(nil, a, 99) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendEventFrame(buf[:0], a, 99)
	})
	if allocs != 0 {
		t.Fatalf("AppendEventFrame allocates %.1f times per op, want 0", allocs)
	}
}

// FuzzBinaryStream throws arbitrary bytes at the binary reader with the
// same robustness contract as FuzzReadTraceStream: never panic, never
// return an invalid trace, and any salvage is a valid re-serializable
// trace; every error surfaced past the header is a structured
// corruption report.
func FuzzBinaryStream(f *testing.F) {
	sample := sampleBin(f)
	f.Add(sample)
	f.Add(BinHeaderFrame())
	f.Add(sample[:len(sample)-3])       // torn final frame
	f.Add(sample[:len(BinHeaderFrame())+2]) // torn first event frame
	f.Add([]byte("not a stream at all"))
	corrupt := append([]byte(nil), sample...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, dropped, err := ReadTraceBin(bytes.NewReader(data))
		if err != nil {
			var rep *report.Report
			if errors.As(err, &rep) {
				if rep.Kind != report.Corruption {
					t.Fatalf("binary reader produced report kind %v", rep.Kind)
				}
				if verr := tr.Validate(); verr != nil {
					t.Fatalf("salvage alongside corruption report invalid: %v", verr)
				}
			}
			return
		}
		if dropped < 0 {
			t.Fatalf("negative dropped count %d", dropped)
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("salvaged trace invalid: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteTraceBin(&buf, tr); werr != nil {
			t.Fatalf("re-serialize: %v", werr)
		}
		tr2, dropped2, rerr := ReadTraceBin(&buf)
		if rerr != nil || dropped2 != 0 {
			t.Fatalf("round trip: err=%v dropped=%d", rerr, dropped2)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip length %d, want %d", tr2.Len(), tr.Len())
		}
	})
}
