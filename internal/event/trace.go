package event

import (
	"fmt"
)

// Trace is a linearization of an execution: a sequence of actions that is
// consistent with each thread's program order and with the extended
// synchronization order. Detectors consume traces action by action.
type Trace struct {
	actions []Action
}

// NewTrace returns a trace over the given actions. The slice is retained.
func NewTrace(actions []Action) *Trace { return &Trace{actions: actions} }

// Len returns the number of actions in the trace.
func (tr *Trace) Len() int { return len(tr.actions) }

// At returns the i-th action.
func (tr *Trace) At(i int) Action { return tr.actions[i] }

// Actions returns the underlying action slice. Callers must not modify it.
func (tr *Trace) Actions() []Action { return tr.actions }

// Threads returns the set of thread ids appearing in the trace, in first-
// appearance order.
func (tr *Trace) Threads() []Tid {
	seen := make(map[Tid]bool)
	var out []Tid
	for _, a := range tr.actions {
		if !seen[a.Thread] {
			seen[a.Thread] = true
			out = append(out, a.Thread)
		}
	}
	return out
}

// Vars returns the set of data variables accessed (directly or through
// commits) in the trace, in first-access order.
func (tr *Trace) Vars() []Variable {
	seen := make(map[Variable]bool)
	var out []Variable
	add := func(v Variable) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, a := range tr.actions {
		switch a.Kind {
		case KindRead, KindWrite:
			add(a.Variable())
		case KindCommit:
			for _, v := range a.Reads {
				add(v)
			}
			for _, v := range a.Writes {
				add(v)
			}
		}
	}
	return out
}

// Validate checks structural well-formedness of the trace:
//
//   - lock acquire/release alternate correctly per object (reentrancy is
//     permitted: nested acquires by the owner count up);
//   - a release is performed only by the lock's current owner;
//   - a fork(u) precedes any action of u, and each thread is forked at
//     most once;
//   - a join(u) is preceded by at least one action of u or a fork of u
//     (thread existence), and no action of u follows a join(u);
//   - every object accessed was allocated earlier, when allocations are
//     present for that object (traces without explicit allocs are
//     permitted: detectors treat first contact as creation);
//   - channel operations respect the capacity-conveyor semantics
//     (ChanTracker): a channel is made exactly once before use, a
//     completed send implies buffer room and an open channel, a
//     completed recv implies a message in flight or a closed channel,
//     and close happens at most once;
//   - region markers balance per thread: a txend requires an open
//     txbegin by the same thread, and regions do not nest. A region
//     left open at the end of the trace is permitted — every prefix of
//     a valid trace must itself be valid (truncated streaming traces
//     salvage their longest valid prefix, and checkpoint cuts land at
//     arbitrary positions, including mid-region).
//
// The first violation found is returned.
func (tr *Trace) Validate() error {
	lockOwner := make(map[Addr]Tid)
	lockDepth := make(map[Addr]int)
	forked := make(map[Tid]bool)
	started := make(map[Tid]bool)
	joined := make(map[Tid]bool)
	allocated := make(map[Addr]bool)
	inRegion := make(map[Tid]bool)
	chans := NewChanTracker()

	for i, a := range tr.actions {
		if a.Thread == NoTid {
			return fmt.Errorf("action %d (%v): missing thread id", i, a)
		}
		if joined[a.Thread] {
			return fmt.Errorf("action %d (%v): thread %v acts after being joined", i, a, a.Thread)
		}
		started[a.Thread] = true
		switch a.Kind {
		case KindAcquire:
			if owner, held := lockOwner[a.Obj]; held && owner != a.Thread {
				return fmt.Errorf("action %d (%v): lock %v held by %v", i, a, a.Obj, owner)
			}
			lockOwner[a.Obj] = a.Thread
			lockDepth[a.Obj]++
		case KindRelease:
			owner, held := lockOwner[a.Obj]
			if !held {
				return fmt.Errorf("action %d (%v): release of unheld lock %v", i, a, a.Obj)
			}
			if owner != a.Thread {
				return fmt.Errorf("action %d (%v): release by non-owner (owner %v)", i, a, owner)
			}
			lockDepth[a.Obj]--
			if lockDepth[a.Obj] == 0 {
				delete(lockOwner, a.Obj)
				delete(lockDepth, a.Obj)
			}
		case KindFork:
			if forked[a.Peer] {
				return fmt.Errorf("action %d (%v): thread %v forked twice", i, a, a.Peer)
			}
			if started[a.Peer] {
				return fmt.Errorf("action %d (%v): thread %v forked after it acted", i, a, a.Peer)
			}
			forked[a.Peer] = true
		case KindJoin:
			if !forked[a.Peer] && !started[a.Peer] {
				return fmt.Errorf("action %d (%v): join of unknown thread %v", i, a, a.Peer)
			}
			joined[a.Peer] = true
		case KindAlloc:
			allocated[a.Obj] = true
		case KindChanMake, KindChanSend, KindChanRecv, KindChanClose:
			if _, err := chans.Normalize(a); err != nil {
				return fmt.Errorf("action %d (%v): %v", i, a, err)
			}
		case KindTxBegin:
			if inRegion[a.Thread] {
				return fmt.Errorf("action %d (%v): nested txbegin by %v", i, a, a.Thread)
			}
			inRegion[a.Thread] = true
		case KindTxEnd:
			if !inRegion[a.Thread] {
				return fmt.Errorf("action %d (%v): txend by %v without an open region", i, a, a.Thread)
			}
			inRegion[a.Thread] = false
		case KindRead, KindWrite:
			// Accessing an object that is later allocated means the trace
			// reused an address without an intervening alloc: reject only
			// the clearly-inverted case (alloc after access) below.
		}
		if a.Kind == KindAlloc {
			continue
		}
	}
	// Second pass: an alloc(o) must not follow an access to o (address
	// reuse without allocation ordering makes lockset resets unsound).
	touched := make(map[Addr]bool)
	for i, a := range tr.actions {
		switch a.Kind {
		case KindRead, KindWrite:
			touched[a.Obj] = true
		case KindCommit:
			for _, v := range a.Reads {
				touched[v.Obj] = true
			}
			for _, v := range a.Writes {
				touched[v.Obj] = true
			}
		case KindAlloc:
			if touched[a.Obj] {
				return fmt.Errorf("action %d (%v): alloc of %v after it was accessed", i, a, a.Obj)
			}
		}
	}
	return nil
}

// Builder incrementally constructs a trace. It is a convenience for tests
// and workload generators; methods return the builder for chaining.
type Builder struct {
	actions []Action
}

// NewBuilder returns an empty trace builder.
func NewBuilder() *Builder { return &Builder{} }

// Append adds an arbitrary action.
func (b *Builder) Append(a Action) *Builder { b.actions = append(b.actions, a); return b }

// Read appends read(o, d) by t.
func (b *Builder) Read(t Tid, o Addr, d FieldID) *Builder { return b.Append(Read(t, o, d)) }

// Write appends write(o, d) by t.
func (b *Builder) Write(t Tid, o Addr, d FieldID) *Builder { return b.Append(Write(t, o, d)) }

// Acquire appends acq(o) by t.
func (b *Builder) Acquire(t Tid, o Addr) *Builder { return b.Append(Acquire(t, o)) }

// Release appends rel(o) by t.
func (b *Builder) Release(t Tid, o Addr) *Builder { return b.Append(Release(t, o)) }

// VolatileRead appends read(o, v) by t.
func (b *Builder) VolatileRead(t Tid, o Addr, v FieldID) *Builder {
	return b.Append(VolatileRead(t, o, v))
}

// VolatileWrite appends write(o, v) by t.
func (b *Builder) VolatileWrite(t Tid, o Addr, v FieldID) *Builder {
	return b.Append(VolatileWrite(t, o, v))
}

// Fork appends fork(u) by t.
func (b *Builder) Fork(t, u Tid) *Builder { return b.Append(Fork(t, u)) }

// Join appends join(u) by t.
func (b *Builder) Join(t, u Tid) *Builder { return b.Append(Join(t, u)) }

// Alloc appends alloc(o) by t.
func (b *Builder) Alloc(t Tid, o Addr) *Builder { return b.Append(Alloc(t, o)) }

// Commit appends commit(R, W) by t.
func (b *Builder) Commit(t Tid, reads, writes []Variable) *Builder {
	return b.Append(Commit(t, reads, writes))
}

// ChanMake appends chmake(c, cap) by t.
func (b *Builder) ChanMake(t Tid, c Addr, capacity int32) *Builder {
	return b.Append(ChanMake(t, c, capacity))
}

// ChanSend appends send(c) by t.
func (b *Builder) ChanSend(t Tid, c Addr) *Builder { return b.Append(ChanSend(t, c)) }

// ChanRecv appends recv(c) by t.
func (b *Builder) ChanRecv(t Tid, c Addr) *Builder { return b.Append(ChanRecv(t, c)) }

// ChanClose appends close(c) by t.
func (b *Builder) ChanClose(t Tid, c Addr) *Builder { return b.Append(ChanClose(t, c)) }

// TxBegin appends a txbegin region marker by t.
func (b *Builder) TxBegin(t Tid) *Builder { return b.Append(TxBegin(t)) }

// TxEnd appends a txend region marker by t.
func (b *Builder) TxEnd(t Tid) *Builder { return b.Append(TxEnd(t)) }

// Trace finalizes the builder. The builder may continue to be used; the
// returned trace sees no later appends.
func (b *Builder) Trace() *Trace {
	actions := make([]Action, len(b.actions))
	copy(actions, b.actions)
	return NewTrace(actions)
}
