package event

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonAction is the serialized form of an Action. Kind uses the String
// names so trace files are greppable.
type jsonAction struct {
	Kind   string     `json:"kind"`
	Thread Tid        `json:"t"`
	Obj    Addr       `json:"o,omitempty"`
	Field  FieldID    `json:"f,omitempty"`
	Peer   Tid        `json:"peer,omitempty"`
	Reads  []Variable `json:"reads,omitempty"`
	Writes []Variable `json:"writes,omitempty"`
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, name := range kindNames {
		m[name] = Kind(k)
	}
	return m
}()

// WriteTrace serializes tr as JSON (one object with an "actions" array).
func WriteTrace(w io.Writer, tr *Trace) error {
	out := struct {
		Actions []jsonAction `json:"actions"`
	}{Actions: make([]jsonAction, tr.Len())}
	for i := 0; i < tr.Len(); i++ {
		a := tr.At(i)
		out.Actions[i] = jsonAction{
			Kind:   a.Kind.String(),
			Thread: a.Thread,
			Obj:    a.Obj,
			Field:  a.Field,
			Peer:   a.Peer,
			Reads:  a.Reads,
			Writes: a.Writes,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadTrace deserializes a trace written by WriteTrace and validates it.
func ReadTrace(r io.Reader) (*Trace, error) {
	var in struct {
		Actions []jsonAction `json:"actions"`
	}
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("event: decoding trace: %w", err)
	}
	actions := make([]Action, len(in.Actions))
	for i, ja := range in.Actions {
		k, ok := kindByName[ja.Kind]
		if !ok || k == KindInvalid {
			return nil, fmt.Errorf("event: action %d: unknown kind %q", i, ja.Kind)
		}
		actions[i] = Action{
			Kind:   k,
			Thread: ja.Thread,
			Obj:    ja.Obj,
			Field:  ja.Field,
			Peer:   ja.Peer,
			Reads:  ja.Reads,
			Writes: ja.Writes,
		}
	}
	tr := NewTrace(actions)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("event: invalid trace: %w", err)
	}
	return tr, nil
}
