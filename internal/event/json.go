package event

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonAction is the serialized form of an Action. Kind uses the String
// names so trace files are greppable.
type jsonAction struct {
	Kind   string     `json:"kind"`
	Thread Tid        `json:"t"`
	Obj    Addr       `json:"o,omitempty"`
	Field  FieldID    `json:"f,omitempty"`
	Peer   Tid        `json:"peer,omitempty"`
	Reads  []Variable `json:"reads,omitempty"`
	Writes []Variable `json:"writes,omitempty"`
}

// MarshalAction serializes a single action in the same JSON shape trace
// files use (greppable kind names, omitted zero fields). It is the
// action payload of the goldilocksd wire protocol and of engine
// checkpoints.
func MarshalAction(a Action) ([]byte, error) {
	return json.Marshal(jsonAction{
		Kind:   a.Kind.String(),
		Thread: a.Thread,
		Obj:    a.Obj,
		Field:  a.Field,
		Peer:   a.Peer,
		Reads:  a.Reads,
		Writes: a.Writes,
	})
}

// UnmarshalAction parses an action serialized by MarshalAction.
func UnmarshalAction(data []byte) (Action, error) {
	var ja jsonAction
	if err := json.Unmarshal(data, &ja); err != nil {
		return Action{}, fmt.Errorf("event: decoding action: %w", err)
	}
	k, ok := kindByName[ja.Kind]
	if !ok || k == KindInvalid {
		return Action{}, fmt.Errorf("event: unknown action kind %q", ja.Kind)
	}
	return Action{
		Kind:   k,
		Thread: ja.Thread,
		Obj:    ja.Obj,
		Field:  ja.Field,
		Peer:   ja.Peer,
		Reads:  ja.Reads,
		Writes: ja.Writes,
	}, nil
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, name := range kindNames {
		m[name] = Kind(k)
	}
	return m
}()

// WriteTrace serializes tr as JSON (one object with an "actions" array).
func WriteTrace(w io.Writer, tr *Trace) error {
	out := struct {
		Actions []jsonAction `json:"actions"`
	}{Actions: make([]jsonAction, tr.Len())}
	for i := 0; i < tr.Len(); i++ {
		a := tr.At(i)
		out.Actions[i] = jsonAction{
			Kind:   a.Kind.String(),
			Thread: a.Thread,
			Obj:    a.Obj,
			Field:  a.Field,
			Peer:   a.Peer,
			Reads:  a.Reads,
			Writes: a.Writes,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadTrace deserializes a trace written by WriteTrace and validates it.
func ReadTrace(r io.Reader) (*Trace, error) {
	var in struct {
		Actions []jsonAction `json:"actions"`
	}
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("event: decoding trace: %w", err)
	}
	actions := make([]Action, len(in.Actions))
	for i, ja := range in.Actions {
		k, ok := kindByName[ja.Kind]
		if !ok || k == KindInvalid {
			return nil, fmt.Errorf("event: action %d: unknown kind %q", i, ja.Kind)
		}
		actions[i] = Action{
			Kind:   k,
			Thread: ja.Thread,
			Obj:    ja.Obj,
			Field:  ja.Field,
			Peer:   ja.Peer,
			Reads:  ja.Reads,
			Writes: ja.Writes,
		}
	}
	tr := NewTrace(actions)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("event: invalid trace: %w", err)
	}
	return tr, nil
}
