package event

import (
	"strings"
	"testing"
)

func TestKindIsSync(t *testing.T) {
	syncKinds := []Kind{KindAcquire, KindRelease, KindVolatileRead, KindVolatileWrite, KindFork, KindJoin, KindCommit}
	for _, k := range syncKinds {
		if !k.IsSync() {
			t.Errorf("%v.IsSync() = false, want true", k)
		}
		if k.IsData() {
			t.Errorf("%v.IsData() = true, want false", k)
		}
	}
	for _, k := range []Kind{KindRead, KindWrite} {
		if k.IsSync() {
			t.Errorf("%v.IsSync() = true, want false", k)
		}
		if !k.IsData() {
			t.Errorf("%v.IsData() = false, want true", k)
		}
	}
	if KindAlloc.IsSync() || KindAlloc.IsData() {
		t.Error("alloc must be neither sync nor data")
	}
}

func TestActionVariable(t *testing.T) {
	a := Read(1, 10, 2)
	if got := a.Variable(); got != (Variable{Obj: 10, Field: 2}) {
		t.Errorf("Variable() = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Variable() on acq action did not panic")
		}
	}()
	Acquire(1, 10).Variable()
}

func TestActionVolatile(t *testing.T) {
	if got := VolatileRead(1, 10, 3).Volatile(); got != (Volatile{Obj: 10, Field: 3}) {
		t.Errorf("Volatile() = %v", got)
	}
	if got := Acquire(1, 10).Volatile(); got != Lock(10) {
		t.Errorf("acq Volatile() = %v, want lock", got)
	}
	if Lock(10).Field != LockField {
		t.Error("Lock field is not LockField")
	}
}

func TestActionAccesses(t *testing.T) {
	v := Variable{Obj: 10, Field: 0}
	w := Variable{Obj: 10, Field: 1}
	cases := []struct {
		a       Action
		accV    bool
		writesV bool
	}{
		{Read(1, 10, 0), true, false},
		{Write(1, 10, 0), true, true},
		{Read(1, 10, 1), false, false},
		{Commit(1, []Variable{v}, nil), true, false},
		{Commit(1, nil, []Variable{v}), true, true},
		{Commit(1, []Variable{w}, []Variable{w}), false, false},
		{Acquire(1, 10), false, false},
	}
	for _, c := range cases {
		if got := c.a.Accesses(v); got != c.accV {
			t.Errorf("%v.Accesses(%v) = %v, want %v", c.a, v, got, c.accV)
		}
		if got := c.a.WritesVar(v); got != c.writesV {
			t.Errorf("%v.WritesVar(%v) = %v, want %v", c.a, v, got, c.writesV)
		}
	}
}

func TestActionString(t *testing.T) {
	cases := []struct {
		a    Action
		want string
	}{
		{Read(1, 10, 0), "T1:read(o10.f0)"},
		{Write(2, 10, 1), "T2:write(o10.f1)"},
		{Acquire(1, 5), "T1:acq(o5)"},
		{VolatileWrite(1, 5, 2), "T1:vwrite(o5.v2)"},
		{Fork(1, 2), "T1:fork(T2)"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	cs := Commit(1, []Variable{{10, 0}}, []Variable{{10, 1}}).String()
	if !strings.Contains(cs, "commit") || !strings.Contains(cs, "o10.f0") || !strings.Contains(cs, "o10.f1") {
		t.Errorf("commit String() = %q", cs)
	}
}

func TestTraceThreadsVars(t *testing.T) {
	tr := NewBuilder().
		Write(1, 10, 0).
		Fork(1, 2).
		Read(2, 10, 0).
		Commit(2, []Variable{{11, 0}}, []Variable{{10, 1}}).
		Trace()
	threads := tr.Threads()
	if len(threads) != 2 || threads[0] != 1 || threads[1] != 2 {
		t.Errorf("Threads() = %v", threads)
	}
	vars := tr.Vars()
	want := []Variable{{10, 0}, {11, 0}, {10, 1}}
	if len(vars) != len(want) {
		t.Fatalf("Vars() = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("Vars()[%d] = %v, want %v", i, vars[i], want[i])
		}
	}
}

func TestValidateOK(t *testing.T) {
	tr := NewBuilder().
		Alloc(1, 10).
		Write(1, 10, 0).
		Acquire(1, 20).
		Acquire(1, 20). // reentrant
		Release(1, 20).
		Release(1, 20).
		Fork(1, 2).
		Acquire(2, 20).
		Read(2, 10, 0).
		Release(2, 20).
		Join(1, 2).
		Trace()
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		trace *Trace
	}{
		{"acquire held lock", NewBuilder().Acquire(1, 20).Fork(1, 2).Acquire(2, 20).Trace()},
		{"release unheld", NewBuilder().Release(1, 20).Trace()},
		{"release by non-owner", NewBuilder().Acquire(1, 20).Fork(1, 2).Release(2, 20).Trace()},
		{"fork twice", NewBuilder().Fork(1, 2).Fork(1, 2).Trace()},
		{"act after join", NewBuilder().Fork(1, 2).Write(2, 10, 0).Join(1, 2).Write(2, 10, 0).Trace()},
		{"join unknown", NewBuilder().Join(1, 9).Trace()},
		{"alloc after access", NewBuilder().Write(1, 10, 0).Alloc(1, 10).Trace()},
		{"missing tid", NewTrace([]Action{{Kind: KindRead, Obj: 10}})},
	}
	for _, c := range cases {
		if err := c.trace.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", c.name)
		}
	}
}

func TestBuilderSnapshotIsolation(t *testing.T) {
	b := NewBuilder().Write(1, 10, 0)
	tr1 := b.Trace()
	b.Write(1, 10, 1)
	if tr1.Len() != 1 {
		t.Errorf("earlier trace grew: len = %d", tr1.Len())
	}
	if b.Trace().Len() != 2 {
		t.Errorf("builder lost actions")
	}
}
