package event

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	orig := NewBuilder().
		Alloc(1, 10).
		Write(1, 10, 0).
		Fork(1, 2).
		Acquire(2, 20).
		VolatileWrite(2, 1, 3).
		VolatileRead(1, 1, 3).
		Release(2, 20).
		Commit(2, []Variable{{10, 0}}, []Variable{{10, 1}, {11, 2}}).
		Join(1, 2).
		Trace()

	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("len %d, want %d", back.Len(), orig.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		a, b := orig.At(i), back.At(i)
		if a.String() != b.String() {
			t.Errorf("action %d: %v != %v", i, a, b)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`,
		`{"actions":[{"kind":"teleport","t":1}]}`,
		`{"actions":[{"kind":"invalid","t":1}]}`,
		// Structurally invalid: release of an unheld lock.
		`{"actions":[{"kind":"rel","t":1,"o":5}]}`,
	}
	for _, src := range cases {
		if _, err := ReadTrace(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestWriteTraceIsReadable(t *testing.T) {
	tr := NewBuilder().Write(1, 10, 0).Trace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"kind": "write"`, `"t": 1`, `"o": 10`} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized trace missing %q:\n%s", want, out)
		}
	}
}
