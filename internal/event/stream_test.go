package event_test

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"goldilocks/internal/event"
	"goldilocks/internal/resilience"
)

func sampleTrace() *event.Trace {
	return event.NewBuilder().
		Alloc(1, 10).
		Fork(1, 2).
		Acquire(1, 20).
		Write(1, 10, 0).
		Release(1, 20).
		Acquire(2, 20).
		Read(2, 10, 0).
		Release(2, 20).
		Join(1, 2).
		Trace()
}

func TestStreamRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := event.WriteTraceStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := event.ReadTraceStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		a, b := tr.At(i), got.At(i)
		if a.Kind != b.Kind || a.Thread != b.Thread || a.Obj != b.Obj || a.Field != b.Field || a.Peer != b.Peer {
			t.Fatalf("action %d: got %v, want %v", i, b, a)
		}
	}
}

// TestStreamTruncatedTail: a file cut mid-record (as a crash or the
// fault injector's truncating writer produces) yields the valid prefix.
func TestStreamTruncatedTail(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := event.WriteTraceStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut inside the last record's line.
	cut := bytes.LastIndexByte(full[:len(full)-1], '\n') + 4
	got, dropped, err := event.ReadTraceStream(bytes.NewReader(full[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len()-1 {
		t.Fatalf("prefix Len = %d, want %d", got.Len(), tr.Len()-1)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("salvaged prefix invalid: %v", err)
	}
}

// TestStreamCorruptRecord: a flipped byte in the middle fails that
// record's checksum; the prefix before it survives and everything from
// the corruption on is dropped.
func TestStreamCorruptRecord(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := event.WriteTraceStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Corrupt the 5th record (line 0 is the header): change a digit
	// inside its action body without touching the JSON structure.
	corrupt := strings.Replace(lines[5], `"t":`, `"t":4`, 1)
	if corrupt == lines[5] {
		t.Fatalf("corruption did not apply to %q", lines[5])
	}
	lines[5] = corrupt
	got, dropped, err := event.ReadTraceStream(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("prefix Len = %d, want 4", got.Len())
	}
	if dropped != len(lines)-1-4 {
		t.Fatalf("dropped = %d, want %d", dropped, len(lines)-1-4)
	}
}

// TestStreamInvalidSuffixRejected: records that decode fine but violate
// trace well-formedness after the prefix are dropped too (the salvage
// never returns an invalid trace).
func TestStreamInvalidSuffixRejected(t *testing.T) {
	var buf bytes.Buffer
	sw, err := event.NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	must := func(a event.Action) {
		if err := sw.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	must(event.Acquire(1, 7))
	must(event.Release(2, 7)) // invalid: release by non-owner
	must(event.Read(1, 3, 0))
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := event.ReadTraceStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || dropped != 2 {
		t.Fatalf("Len = %d dropped = %d, want 1 and 2", got.Len(), dropped)
	}
}

// TestStreamSalvageMatchesValidate: the incremental validator must agree
// with Trace.Validate — a salvaged prefix always validates.
func TestStreamSalvageMatchesValidate(t *testing.T) {
	var buf bytes.Buffer
	sw, _ := event.NewStreamWriter(&buf)
	b := event.NewBuilder().
		Fork(1, 2).
		Alloc(1, 5).
		Write(1, 5, 0).
		Commit(2, []event.Variable{{Obj: 5, Field: 0}}, nil).
		Alloc(2, 5) // invalid: alloc after access
	for _, a := range b.Trace().Actions() {
		sw.Append(a)
	}
	sw.Flush()
	got, dropped, err := event.ReadTraceStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("salvaged prefix invalid: %v", err)
	}
}

// TestStreamV1CorpusReadable pins backward compatibility: a corpus
// written before the channel kinds existed carries a version-1 header,
// and the version-2 reader must consume it with zero drops. The body
// record layout is unchanged across the bump, so rewriting the header
// of a current pre-channel trace reproduces a v1 file exactly.
func TestStreamV1CorpusReadable(t *testing.T) {
	tr := sampleTrace() // pre-channel kinds only
	var buf bytes.Buffer
	if err := event.WriteTraceStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	v1 := strings.Replace(buf.String(),
		fmt.Sprintf(`"version":%d`, event.StreamFormatVersion), `"version":1`, 1)
	if v1 == buf.String() {
		t.Fatal("header rewrite did not apply")
	}
	got, dropped, err := event.ReadTraceStream(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 corpus unreadable: %v", err)
	}
	if dropped != 0 || got.Len() != tr.Len() {
		t.Fatalf("v1 corpus: Len = %d dropped = %d, want %d and 0", got.Len(), dropped, tr.Len())
	}
}

// unknownKindRecord builds an intact (CRC-valid) record whose kind this
// reader does not know — what a stream from a newer writer looks like.
func unknownKindRecord(kind string) string {
	body := fmt.Sprintf(`{"kind":%q,"t":1,"o":2}`, kind)
	return fmt.Sprintf(`{"a":%s,"crc":"%08x"}`+"\n", body, crc32.ChecksumIEEE([]byte(body)))
}

// TestStreamUnknownKindStructuredReport: an intact record with an
// unrecognized kind is version skew, not corruption-by-crash. The
// reader must return the salvaged prefix AND a structured
// resilience.Report naming the unknown kind, instead of silently
// misreporting the execution.
func TestStreamUnknownKindStructuredReport(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := event.WriteTraceStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(unknownKindRecord("chan-rendezvous-v3"))
	buf.WriteString(unknownKindRecord("chan-rendezvous-v3")) // dropped with the rest

	got, dropped, err := event.ReadTraceStream(&buf)
	if err == nil {
		t.Fatal("unknown kind in intact record was swallowed silently")
	}
	var rep *resilience.Report
	if !errors.As(err, &rep) {
		t.Fatalf("err = %T %v, want *resilience.Report", err, err)
	}
	if rep.Kind != resilience.Corruption {
		t.Fatalf("report kind = %v, want corruption", rep.Kind)
	}
	if !strings.Contains(rep.Detail, "chan-rendezvous-v3") {
		t.Fatalf("report does not name the unknown kind: %q", rep.Detail)
	}
	if got.Len() != tr.Len() || dropped != 2 {
		t.Fatalf("salvage: Len = %d dropped = %d, want %d and 2", got.Len(), dropped, tr.Len())
	}
	if verr := got.Validate(); verr != nil {
		t.Fatalf("salvaged prefix invalid: %v", verr)
	}
}

// TestStreamFutureVersionRejected: a header from a newer format version
// is unusable as a whole (the reader cannot bound what changed).
func TestStreamFutureVersionRejected(t *testing.T) {
	hdr := fmt.Sprintf(`{"format":%q,"version":%d}`+"\n",
		event.StreamFormatName, event.StreamFormatVersion+1)
	if _, _, err := event.ReadTraceStream(strings.NewReader(hdr)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestReadTraceAuto(t *testing.T) {
	tr := sampleTrace()

	var legacy bytes.Buffer
	if err := event.WriteTrace(&legacy, tr); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := event.ReadTraceAuto(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || dropped != 0 {
		t.Fatalf("legacy auto-read: Len = %d dropped = %d", got.Len(), dropped)
	}

	var stream bytes.Buffer
	if err := event.WriteTraceStream(&stream, tr); err != nil {
		t.Fatal(err)
	}
	got, dropped, err = event.ReadTraceAuto(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || dropped != 0 {
		t.Fatalf("stream auto-read: Len = %d dropped = %d", got.Len(), dropped)
	}
}

// TestStreamSurvivesInjectedTruncation wires the fault injector's
// truncating writer in front of the stream writer: the tool believes
// every write succeeded, yet the reader still salvages a valid prefix.
func TestStreamSurvivesInjectedTruncation(t *testing.T) {
	tr := sampleTrace()
	var intact bytes.Buffer
	if err := event.WriteTraceStream(&intact, tr); err != nil {
		t.Fatal(err)
	}

	limit := intact.Len() / 2
	var buf bytes.Buffer
	inj := &resilience.Injector{TruncateTraceBytes: limit}
	w := inj.WrapTraceWriter(&buf)
	if err := event.WriteTraceStream(w, tr); err != nil {
		t.Fatalf("truncating writer leaked an error: %v", err)
	}
	if buf.Len() > limit {
		t.Fatalf("writer wrote %d bytes past the %d-byte fault", buf.Len(), limit)
	}

	got, dropped, err := event.ReadTraceStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 || got.Len() >= tr.Len() {
		t.Fatalf("salvaged Len = %d, want a proper non-empty prefix of %d", got.Len(), tr.Len())
	}
	if dropped == 0 {
		t.Fatal("truncation dropped no records")
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("salvaged prefix invalid: %v", err)
	}
}

// severedWriter forwards writes to buf until Sever is called, then
// fails every write — the write-side view of a cut connection or a
// crashed process whose kernel buffers were lost.
type severedWriter struct {
	buf     bytes.Buffer
	severed bool
}

func (w *severedWriter) Write(p []byte) (int, error) {
	if w.severed {
		return 0, errSevered
	}
	return w.buf.Write(p)
}

var errSevered = errors.New("underlying writer severed")

// TestStreamWriterSeveredMidStream pins the durability contract of the
// incremental writer: sever the underlying writer mid-stream, keep
// appending, and the salvaged prefix is exactly the complete records
// that reached the underlying writer before the sever — auto-flush
// bounds the loss window to under autoFlushRecords records.
func TestStreamWriterSeveredMidStream(t *testing.T) {
	const total, severAt = 100, 57
	var actions []event.Action
	b := event.NewBuilder()
	for i := 0; i < total/2; i++ {
		b.Acquire(1, 20).Release(1, 20)
	}
	actions = b.Trace().Actions()

	w := &severedWriter{}
	sw, err := event.NewStreamWriter(w)
	if err != nil {
		t.Fatal(err)
	}
	var appendErr error
	for i, a := range actions {
		if i == severAt {
			w.severed = true
		}
		if err := sw.Append(a); err != nil && appendErr == nil {
			appendErr = err
		}
	}
	if err := sw.Flush(); err != nil && appendErr == nil {
		appendErr = err
	}
	if appendErr == nil {
		t.Fatal("no append/flush error surfaced after the writer was severed")
	}

	// What reached the underlying writer: count the complete record
	// lines (header excluded; a torn trailing line is not a record).
	accepted := w.buf.Bytes()
	lines := bytes.Split(accepted, []byte("\n"))
	complete := len(lines) - 2 // header + ("" after final \n or a torn tail)
	if complete < severAt-40 {
		t.Fatalf("only %d records flushed before sever at %d; auto-flush window too large", complete, severAt)
	}

	got, _, err := event.ReadTraceStream(bytes.NewReader(accepted))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != complete {
		t.Fatalf("salvaged %d records, want the %d complete flushed records", got.Len(), complete)
	}
	for i := 0; i < got.Len(); i++ {
		a, b := actions[i], got.At(i)
		if a.Kind != b.Kind || a.Thread != b.Thread || a.Obj != b.Obj {
			t.Fatalf("salvaged action %d = %v, want %v", i, b, a)
		}
	}
}

// TestStreamWriterHeaderDurable: a recording that crashes before its
// first record still salvages as a valid empty trace (the header is
// flushed at creation).
func TestStreamWriterHeaderDurable(t *testing.T) {
	w := &severedWriter{}
	if _, err := event.NewStreamWriter(w); err != nil {
		t.Fatal(err)
	}
	tr, dropped, err := event.ReadTraceStream(bytes.NewReader(w.buf.Bytes()))
	if err != nil {
		t.Fatalf("header-only stream unreadable: %v", err)
	}
	if tr.Len() != 0 || dropped != 0 {
		t.Fatalf("got %d actions, %d dropped; want empty trace", tr.Len(), dropped)
	}
}

// TestStreamWriterClose: Close flushes pending records and poisons
// further appends.
func TestStreamWriterClose(t *testing.T) {
	var buf bytes.Buffer
	sw, err := event.NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(event.Acquire(1, 20)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(event.Release(1, 20)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	tr, dropped, err := event.ReadTraceStream(&buf)
	if err != nil || dropped != 0 || tr.Len() != 1 {
		t.Fatalf("got tr=%v dropped=%d err=%v; want the 1 closed-over record", tr, dropped, err)
	}
}
