package event_test

import (
	"bytes"
	"strings"
	"testing"

	"goldilocks/internal/event"
	"goldilocks/internal/resilience"
)

func sampleTrace() *event.Trace {
	return event.NewBuilder().
		Alloc(1, 10).
		Fork(1, 2).
		Acquire(1, 20).
		Write(1, 10, 0).
		Release(1, 20).
		Acquire(2, 20).
		Read(2, 10, 0).
		Release(2, 20).
		Join(1, 2).
		Trace()
}

func TestStreamRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := event.WriteTraceStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := event.ReadTraceStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		a, b := tr.At(i), got.At(i)
		if a.Kind != b.Kind || a.Thread != b.Thread || a.Obj != b.Obj || a.Field != b.Field || a.Peer != b.Peer {
			t.Fatalf("action %d: got %v, want %v", i, b, a)
		}
	}
}

// TestStreamTruncatedTail: a file cut mid-record (as a crash or the
// fault injector's truncating writer produces) yields the valid prefix.
func TestStreamTruncatedTail(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := event.WriteTraceStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut inside the last record's line.
	cut := bytes.LastIndexByte(full[:len(full)-1], '\n') + 4
	got, dropped, err := event.ReadTraceStream(bytes.NewReader(full[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len()-1 {
		t.Fatalf("prefix Len = %d, want %d", got.Len(), tr.Len()-1)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("salvaged prefix invalid: %v", err)
	}
}

// TestStreamCorruptRecord: a flipped byte in the middle fails that
// record's checksum; the prefix before it survives and everything from
// the corruption on is dropped.
func TestStreamCorruptRecord(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := event.WriteTraceStream(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Corrupt the 5th record (line 0 is the header): change a digit
	// inside its action body without touching the JSON structure.
	corrupt := strings.Replace(lines[5], `"t":`, `"t":4`, 1)
	if corrupt == lines[5] {
		t.Fatalf("corruption did not apply to %q", lines[5])
	}
	lines[5] = corrupt
	got, dropped, err := event.ReadTraceStream(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("prefix Len = %d, want 4", got.Len())
	}
	if dropped != len(lines)-1-4 {
		t.Fatalf("dropped = %d, want %d", dropped, len(lines)-1-4)
	}
}

// TestStreamInvalidSuffixRejected: records that decode fine but violate
// trace well-formedness after the prefix are dropped too (the salvage
// never returns an invalid trace).
func TestStreamInvalidSuffixRejected(t *testing.T) {
	var buf bytes.Buffer
	sw, err := event.NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	must := func(a event.Action) {
		if err := sw.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	must(event.Acquire(1, 7))
	must(event.Release(2, 7)) // invalid: release by non-owner
	must(event.Read(1, 3, 0))
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := event.ReadTraceStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || dropped != 2 {
		t.Fatalf("Len = %d dropped = %d, want 1 and 2", got.Len(), dropped)
	}
}

// TestStreamSalvageMatchesValidate: the incremental validator must agree
// with Trace.Validate — a salvaged prefix always validates.
func TestStreamSalvageMatchesValidate(t *testing.T) {
	var buf bytes.Buffer
	sw, _ := event.NewStreamWriter(&buf)
	b := event.NewBuilder().
		Fork(1, 2).
		Alloc(1, 5).
		Write(1, 5, 0).
		Commit(2, []event.Variable{{Obj: 5, Field: 0}}, nil).
		Alloc(2, 5) // invalid: alloc after access
	for _, a := range b.Trace().Actions() {
		sw.Append(a)
	}
	sw.Flush()
	got, dropped, err := event.ReadTraceStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("salvaged prefix invalid: %v", err)
	}
}

func TestReadTraceAuto(t *testing.T) {
	tr := sampleTrace()

	var legacy bytes.Buffer
	if err := event.WriteTrace(&legacy, tr); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := event.ReadTraceAuto(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || dropped != 0 {
		t.Fatalf("legacy auto-read: Len = %d dropped = %d", got.Len(), dropped)
	}

	var stream bytes.Buffer
	if err := event.WriteTraceStream(&stream, tr); err != nil {
		t.Fatal(err)
	}
	got, dropped, err = event.ReadTraceAuto(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || dropped != 0 {
		t.Fatalf("stream auto-read: Len = %d dropped = %d", got.Len(), dropped)
	}
}

// TestStreamSurvivesInjectedTruncation wires the fault injector's
// truncating writer in front of the stream writer: the tool believes
// every write succeeded, yet the reader still salvages a valid prefix.
func TestStreamSurvivesInjectedTruncation(t *testing.T) {
	tr := sampleTrace()
	var intact bytes.Buffer
	if err := event.WriteTraceStream(&intact, tr); err != nil {
		t.Fatal(err)
	}

	limit := intact.Len() / 2
	var buf bytes.Buffer
	inj := &resilience.Injector{TruncateTraceBytes: limit}
	w := inj.WrapTraceWriter(&buf)
	if err := event.WriteTraceStream(w, tr); err != nil {
		t.Fatalf("truncating writer leaked an error: %v", err)
	}
	if buf.Len() > limit {
		t.Fatalf("writer wrote %d bytes past the %d-byte fault", buf.Len(), limit)
	}

	got, dropped, err := event.ReadTraceStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 || got.Len() >= tr.Len() {
		t.Fatalf("salvaged Len = %d, want a proper non-empty prefix of %d", got.Len(), tr.Len())
	}
	if dropped == 0 {
		t.Fatal("truncation dropped no records")
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("salvaged prefix invalid: %v", err)
	}
}
