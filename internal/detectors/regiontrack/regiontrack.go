// Package regiontrack implements a RegionTrack/Velodrome-style sound
// and complete conflict-serializability checker over recorded traces,
// composed with the Goldilocks race engine so one pass over a trace
// yields both verdict families: data races (delegated to an embedded
// core.Engine, so race verdicts are key-for-key identical to the
// executable specification by construction) and atomicity violations
// (the new analysis this package adds).
//
// # Regions
//
// The unit of atomicity checking is the region: a maximal sequence of
// actions by one thread that the program intends to be atomic. Regions
// come from three sources:
//
//   - txbegin/txend markers (event.KindTxBegin/KindTxEnd) delimit an
//     explicit multi-event region;
//   - with Options.LockRegions, each outermost lock-protected span
//     (from the acquire that takes a thread's held-lock count from zero
//     to the release that returns it to zero) is a region — the
//     classical Atomizer/Velodrome convention for lock-based code;
//   - every other action is its own unary region. A commit(R, W) is a
//     unary region too: it is atomic by construction, but its read and
//     write sets participate in conflict edges like any other accesses.
//
// # The region serialization graph
//
// Nodes are regions; a directed edge u -> v records that some operation
// of u is ordered before some operation of v by program order, by a
// conflict (two accesses to the same variable, at least one a write),
// by synchronization (operations on the same lock, volatile, or
// channel conflict — the observed schedule ordered them through that
// synchronization object), or by fork/join. Every edge is oriented by
// the observed linearization, so an execution is conflict-serializable
// exactly when the graph is acyclic (Velodrome's soundness and
// completeness argument): a cycle requires two regions that overlap in
// time with conflicting operations in both orders, and any cycle-free
// graph topologically sorts into an equivalent serial schedule.
//
// Cycles are detected incrementally: a new edge u -> v closes a cycle
// iff u is already reachable from v. The closing edge, the cycle
// witness, and the trace position are recorded as a Violation; the
// whole-graph Kahn verdict (Acyclic) is exposed separately so tests can
// cross-check the incremental detector against an independent
// implementation.
package regiontrack

import (
	"fmt"
	"sort"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
)

// Options configures a Checker.
type Options struct {
	// Engine configures the embedded race-detection engine.
	Engine core.Options
	// LockRegions treats every outermost lock-protected span as an
	// atomic region, in addition to explicit txbegin/txend markers.
	// This is the mode for lock-based programs (MJ sync blocks) that
	// carry no markers.
	LockRegions bool
	// MaxViolations caps the retained violation witnesses (the total
	// count keeps incrementing past the cap). Zero means DefaultMaxViolations.
	MaxViolations int
}

// DefaultMaxViolations is the default witness retention cap.
const DefaultMaxViolations = 64

// DefaultOptions returns the default checker configuration.
func DefaultOptions() Options {
	return Options{Engine: core.DefaultOptions()}
}

// regionID numbers regions in creation order; 0 is never a region.
type regionID int

// region is one node of the serialization graph.
type region struct {
	ID     regionID  `json:"id"`
	Thread event.Tid `json:"t"`
	// Multi marks a marker- or lock-delimited region (it may span
	// several events and therefore participate in cycles).
	Multi bool `json:"multi,omitempty"`
	Open  bool `json:"open,omitempty"`
	Start int  `json:"start"` // trace position of the first operation
	Ops   int  `json:"ops"`   // operations observed in the region
}

func (r *region) String() string {
	kind := "op"
	if r.Multi {
		kind = "region"
	}
	return fmt.Sprintf("%s#%d(%v@%d)", kind, r.ID, r.Thread, r.Start)
}

// syncKey identifies a synchronization object for conflict tracking:
// a lock or volatile variable, or a whole channel (all operations on
// one channel conflict — message order is observable, so two regions
// exchanging positions around a send are not equivalent schedules).
type syncKey struct {
	Obj   event.Addr    `json:"o"`
	Field event.FieldID `json:"f,omitempty"`
	Chan  bool          `json:"ch,omitempty"`
}

// Violation is one detected serializability violation: the edge that
// closed a cycle in the region serialization graph, with the witness.
type Violation struct {
	// Pos is the trace position of the operation that closed the cycle.
	Pos int `json:"pos"`
	// From and To identify the closing edge From -> To.
	From regionID `json:"from"`
	To   regionID `json:"to"`
	// Cycle lists the region ids of the witness cycle in order,
	// starting at To and ending at From (the closing edge returns to
	// To).
	Cycle []regionID `json:"cycle"`
	// Threads are the distinct threads of the cycle's regions.
	Threads []event.Tid `json:"threads"`
}

func (v Violation) String() string {
	return fmt.Sprintf("serializability violation at %d: cycle %v (threads %v)", v.Pos, v.Cycle, v.Threads)
}

// Checker is the composed detector: Goldilocks races plus region
// serializability. It implements detect.Detector.
type Checker struct {
	opts Options
	eng  *core.Engine

	pos     int
	nextID  regionID
	regions map[regionID]*region

	cur       map[event.Tid]regionID // open multi-event region per thread
	lockSpan  map[event.Tid]bool     // cur region is a LockRegions span
	lockDepth map[event.Tid]int      // total held-lock count per thread
	prev      map[event.Tid]regionID // thread's most recent region
	pending   map[event.Tid][]regionID

	lastWrite map[event.Variable]regionID
	readers   map[event.Variable]map[regionID]struct{}
	syncLast  map[syncKey]regionID

	edges map[regionID]map[regionID]struct{}

	violations    []Violation
	violationsAll int
}

// New returns an empty checker.
func New(opts Options) *Checker {
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = DefaultMaxViolations
	}
	return &Checker{
		opts:      opts,
		eng:       core.NewEngine(opts.Engine),
		regions:   make(map[regionID]*region),
		cur:       make(map[event.Tid]regionID),
		lockSpan:  make(map[event.Tid]bool),
		lockDepth: make(map[event.Tid]int),
		prev:      make(map[event.Tid]regionID),
		pending:   make(map[event.Tid][]regionID),
		lastWrite: make(map[event.Variable]regionID),
		readers:   make(map[event.Variable]map[regionID]struct{}),
		syncLast:  make(map[syncKey]regionID),
		edges:     make(map[regionID]map[regionID]struct{}),
	}
}

// Name implements detect.Detector.
func (c *Checker) Name() string { return "regiontrack" }

// Engine exposes the embedded race engine (stats, telemetry).
func (c *Checker) Engine() *core.Engine { return c.eng }

// Step implements detect.Detector: the action feeds both the race
// engine and the region graph. Returned races are the engine's.
func (c *Checker) Step(a event.Action) []detect.Race {
	pos := c.pos
	c.pos++
	races := c.eng.Step(a) // markers are engine no-ops

	switch a.Kind {
	case event.KindTxBegin:
		// A marker region subsumes any lock span in progress: the
		// explicit annotation is the stronger claim of atomicity.
		c.openRegion(a.Thread, pos, false)
		return races
	case event.KindTxEnd:
		// A marker pair nested inside a LockRegions span closes nothing:
		// the enclosing lock span already claims the larger atomicity.
		if !c.lockSpan[a.Thread] {
			c.closeRegion(a.Thread)
		}
		return races
	}

	if c.opts.LockRegions && a.Kind == event.KindAcquire &&
		c.lockDepth[a.Thread] == 0 && c.cur[a.Thread] == 0 {
		c.openRegion(a.Thread, pos, true)
	}
	switch a.Kind {
	case event.KindAcquire:
		c.lockDepth[a.Thread]++
	case event.KindRelease:
		if c.lockDepth[a.Thread] > 0 {
			c.lockDepth[a.Thread]--
		}
	}

	r := c.regionFor(a.Thread, pos)
	r.Ops++
	c.observe(a, r, pos)

	if c.opts.LockRegions && a.Kind == event.KindRelease &&
		c.lockDepth[a.Thread] == 0 && c.lockSpan[a.Thread] {
		c.closeRegion(a.Thread)
	}
	return races
}

// openRegion starts a multi-event region for t. An already-open region
// is left in place for markers arriving inside a lock span: the open
// region absorbs the events either way.
func (c *Checker) openRegion(t event.Tid, pos int, lockSpan bool) {
	if c.cur[t] != 0 {
		return
	}
	r := c.newRegion(t, pos, true)
	r.Open = true
	c.cur[t] = r.ID
	c.lockSpan[t] = lockSpan
}

// closeRegion ends t's open region, if any.
func (c *Checker) closeRegion(t event.Tid) {
	if id := c.cur[t]; id != 0 {
		c.regions[id].Open = false
	}
	delete(c.cur, t)
	delete(c.lockSpan, t)
}

// regionFor returns the region the next operation of t belongs to: the
// thread's open region, or a fresh unary region.
func (c *Checker) regionFor(t event.Tid, pos int) *region {
	if id := c.cur[t]; id != 0 {
		return c.regions[id]
	}
	return c.newRegion(t, pos, false)
}

// newRegion creates a region and wires its program-order and pending
// fork edges.
func (c *Checker) newRegion(t event.Tid, pos int, multi bool) *region {
	c.nextID++
	r := &region{ID: c.nextID, Thread: t, Multi: multi, Start: pos}
	c.regions[r.ID] = r
	if p := c.prev[t]; p != 0 {
		c.addEdge(p, r.ID, pos)
	}
	for _, src := range c.pending[t] {
		c.addEdge(src, r.ID, pos)
	}
	delete(c.pending, t)
	c.prev[t] = r.ID
	return r
}

// observe adds the conflict and synchronization edges induced by one
// operation of region r.
func (c *Checker) observe(a event.Action, r *region, pos int) {
	switch a.Kind {
	case event.KindRead:
		c.readVar(a.Variable(), r.ID, pos)
	case event.KindWrite:
		c.writeVar(a.Variable(), r.ID, pos)
	case event.KindCommit:
		// R ∩ W counts as a write, matching the engines' generalization.
		written := make(map[event.Variable]bool, len(a.Writes))
		for _, v := range a.Writes {
			if !written[v] {
				written[v] = true
				c.writeVar(v, r.ID, pos)
			}
		}
		for _, v := range a.Reads {
			if !written[v] {
				c.readVar(v, r.ID, pos)
			}
		}
	case event.KindAcquire, event.KindRelease:
		c.syncOp(syncKey{Obj: a.Obj, Field: event.LockField}, r.ID, pos)
	case event.KindVolatileRead, event.KindVolatileWrite:
		c.syncOp(syncKey{Obj: a.Obj, Field: a.Field}, r.ID, pos)
	case event.KindChanMake, event.KindChanSend, event.KindChanRecv, event.KindChanClose:
		c.syncOp(syncKey{Obj: a.Obj, Chan: true}, r.ID, pos)
	case event.KindFork:
		c.pending[a.Peer] = append(c.pending[a.Peer], r.ID)
	case event.KindJoin:
		if last := c.prev[a.Peer]; last != 0 {
			c.addEdge(last, r.ID, pos)
		}
	}
}

// readVar records a read of v by region r: ordered after v's last
// writer.
func (c *Checker) readVar(v event.Variable, r regionID, pos int) {
	if lw := c.lastWrite[v]; lw != 0 && lw != r {
		c.addEdge(lw, r, pos)
	}
	rs := c.readers[v]
	if rs == nil {
		rs = make(map[regionID]struct{})
		c.readers[v] = rs
	}
	rs[r] = struct{}{}
}

// writeVar records a write of v by region r: ordered after v's last
// writer and after every reader since that write.
func (c *Checker) writeVar(v event.Variable, r regionID, pos int) {
	if lw := c.lastWrite[v]; lw != 0 && lw != r {
		c.addEdge(lw, r, pos)
	}
	// Sorted, so edge insertion order — and with it which edge closes a
	// cycle — is deterministic across runs.
	for _, reader := range sortedSet(c.readers[v]) {
		if reader != r {
			c.addEdge(reader, r, pos)
		}
	}
	delete(c.readers, v)
	c.lastWrite[v] = r
}

// sortedSet returns the ids of a region set in ascending order.
func sortedSet(set map[regionID]struct{}) []regionID {
	out := make([]regionID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// syncOp records an operation on a synchronization object: all
// operations on the same object conflict pairwise, so consecutive ones
// are edge-ordered (the transitive closure covers the rest).
func (c *Checker) syncOp(k syncKey, r regionID, pos int) {
	if last := c.syncLast[k]; last != 0 && last != r {
		c.addEdge(last, r, pos)
	}
	c.syncLast[k] = r
}

// addEdge inserts u -> v, detecting any cycle it closes. The edge is
// inserted even when it closes a cycle, so the end-of-trace Kahn
// verdict (Acyclic) agrees with the incremental one.
func (c *Checker) addEdge(u, v regionID, pos int) {
	if u == v {
		return
	}
	if _, ok := c.edges[u][v]; ok {
		return
	}
	if path := c.findPath(v, u); path != nil {
		c.violationsAll++
		if len(c.violations) < c.opts.MaxViolations {
			vi := Violation{Pos: pos, From: u, To: v, Cycle: path}
			seen := make(map[event.Tid]bool)
			for _, id := range path {
				if t := c.regions[id].Thread; !seen[t] {
					seen[t] = true
					vi.Threads = append(vi.Threads, t)
				}
			}
			c.violations = append(c.violations, vi)
		}
	}
	m := c.edges[u]
	if m == nil {
		m = make(map[regionID]struct{})
		c.edges[u] = m
	}
	m[v] = struct{}{}
}

// findPath returns a path from src to dst as a region-id sequence
// (inclusive of both ends), or nil if dst is unreachable.
func (c *Checker) findPath(src, dst regionID) []regionID {
	if src == dst {
		return []regionID{src}
	}
	parent := map[regionID]regionID{src: 0}
	stack := []regionID{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Sorted neighbors keep the witness path deterministic (map
		// iteration order would pick a different cycle on each run).
		for _, w := range sortedSet(c.edges[u]) {
			if _, seen := parent[w]; seen {
				continue
			}
			parent[w] = u
			if w == dst {
				var path []regionID
				for at := dst; at != 0; at = parent[at] {
					path = append(path, at)
				}
				// Reverse: parent chain walks dst -> src.
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			stack = append(stack, w)
		}
	}
	return nil
}

// Serializable reports whether the trace so far is conflict-
// serializable.
func (c *Checker) Serializable() bool { return c.violationsAll == 0 }

// Violations returns the retained violation witnesses in detection
// order.
func (c *Checker) Violations() []Violation {
	return append([]Violation(nil), c.violations...)
}

// ViolationCount returns the total number of cycle-closing edges seen,
// including ones past the retention cap.
func (c *Checker) ViolationCount() int { return c.violationsAll }

// RegionCount returns the number of regions created so far.
func (c *Checker) RegionCount() int { return len(c.regions) }

// MultiRegionCount returns how many of them are multi-event regions.
func (c *Checker) MultiRegionCount() int {
	n := 0
	for _, r := range c.regions {
		if r.Multi {
			n++
		}
	}
	return n
}

// Acyclic is the independent whole-graph verdict: Kahn's algorithm
// over the full serialization graph. It must agree with the
// incremental detector — Acyclic() == Serializable() is a checked
// invariant of the test suite.
func (c *Checker) Acyclic() bool {
	indeg := make(map[regionID]int, len(c.regions))
	for id := range c.regions {
		indeg[id] = 0
	}
	for _, outs := range c.edges {
		for v := range outs {
			indeg[v]++
		}
	}
	queue := make([]regionID, 0, len(c.regions))
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	done := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for v := range c.edges[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return done == len(c.regions)
}

// Summary is the machine-readable outcome of a checker run.
type Summary struct {
	Events       int         `json:"events"`
	Regions      int         `json:"regions"`
	MultiRegions int         `json:"multi_regions"`
	Edges        int         `json:"edges"`
	Serializable bool        `json:"serializable"`
	Violations   []Violation `json:"violations,omitempty"`
	// ViolationTotal counts every cycle-closing edge, including ones
	// past the witness retention cap.
	ViolationTotal int `json:"violation_total,omitempty"`
}

// Summarize returns the current summary.
func (c *Checker) Summarize() Summary {
	edges := 0
	for _, outs := range c.edges {
		edges += len(outs)
	}
	return Summary{
		Events:         c.pos,
		Regions:        len(c.regions),
		MultiRegions:   c.MultiRegionCount(),
		Edges:          edges,
		Serializable:   c.Serializable(),
		Violations:     c.Violations(),
		ViolationTotal: c.violationsAll,
	}
}

// Check runs a fresh checker over the whole trace and returns the
// races (with positions assigned, like detect.RunTrace) and the
// serializability summary.
func Check(tr *event.Trace, opts Options) ([]detect.Race, Summary) {
	c := New(opts)
	races := detect.RunTrace(c, tr)
	return races, c.Summarize()
}

// sortedRegionIDs returns every region id ascending (stable
// serialization order for checkpoints and tests).
func (c *Checker) sortedRegionIDs() []regionID {
	ids := make([]regionID, 0, len(c.regions))
	for id := range c.regions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
