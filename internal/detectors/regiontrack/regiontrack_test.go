package regiontrack

import (
	"bytes"
	"reflect"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
)

// corpusEntry is one hand-built serializability scenario with a known
// verdict.
type corpusEntry struct {
	name         string
	trace        *event.Trace
	opts         Options
	serializable bool
}

func v(o event.Addr, d event.FieldID) event.Variable {
	return event.Variable{Obj: o, Field: d}
}

// corpus returns the hand-built scenario set. Every trace must pass
// event.Trace.Validate.
func corpus() []corpusEntry {
	var out []corpusEntry
	add := func(name string, serializable bool, opts Options, b *event.Builder) {
		tr := b.Trace()
		out = append(out, corpusEntry{name: name, trace: tr, opts: opts, serializable: serializable})
	}
	def := DefaultOptions()
	locks := DefaultOptions()
	locks.LockRegions = true

	// Two marker regions on disjoint variables: trivially serializable.
	add("disjoint-regions", true, def, event.NewBuilder().
		TxBegin(1).Read(1, 10, 0).Write(1, 10, 0).TxEnd(1).
		TxBegin(2).Read(2, 20, 0).Write(2, 20, 0).TxEnd(2))

	// Serial schedule of conflicting regions: serializable (edges one way).
	add("serial-conflicting", true, def, event.NewBuilder().
		TxBegin(1).Read(1, 10, 0).Write(1, 10, 0).TxEnd(1).
		TxBegin(2).Read(2, 10, 0).Write(2, 10, 0).TxEnd(2))

	// Lost update: T2 writes x between T1's read and write of x.
	add("lost-update", false, def, event.NewBuilder().
		TxBegin(1).Read(1, 10, 0).
		Write(2, 10, 0).
		Write(1, 10, 0).TxEnd(1))

	// Write skew: T1 reads y writes x, T2 reads x writes y, interleaved.
	add("write-skew", false, def, event.NewBuilder().
		TxBegin(1).Read(1, 10, 1).
		TxBegin(2).Read(2, 10, 0).
		Write(1, 10, 0).TxEnd(1).
		Write(2, 10, 1).TxEnd(2))

	// The same write skew run serially is fine.
	add("write-skew-serial", true, def, event.NewBuilder().
		TxBegin(1).Read(1, 10, 1).Write(1, 10, 0).TxEnd(1).
		TxBegin(2).Read(2, 10, 0).Write(2, 10, 1).TxEnd(2))

	// Dirty read: T2 reads x mid-region, then T1 overwrites it before
	// closing — T1 -> T2 (w-r) and T2 -> T1 (r-w) on the same variable.
	add("dirty-read", false, def, event.NewBuilder().
		TxBegin(1).Write(1, 10, 0).
		Read(2, 10, 0).
		Write(1, 10, 0).TxEnd(1))

	// Commit interleaved into an open marker region: the commit's write
	// set conflicts both ways with the region.
	add("commit-lost-update", false, def, event.NewBuilder().
		TxBegin(1).Read(1, 10, 0).
		Commit(2, nil, []event.Variable{v(10, 0)}).
		Commit(1, nil, []event.Variable{v(10, 0)}).TxEnd(1))

	// Commits alone are unary regions: atomic by construction, so a
	// commit-only interleaving is always serializable.
	add("commits-only", true, def, event.NewBuilder().
		Commit(1, []event.Variable{v(10, 0)}, []event.Variable{v(10, 1)}).
		Commit(2, []event.Variable{v(10, 1)}, []event.Variable{v(10, 0)}).
		Commit(1, []event.Variable{v(10, 0)}, []event.Variable{v(10, 0)}))

	// Volatile ping-pong inside a region: sync-object conflicts order the
	// regions both ways.
	add("volatile-cycle", false, def, event.NewBuilder().
		TxBegin(1).VolatileWrite(1, 30, 7).
		VolatileWrite(2, 30, 7).
		VolatileRead(1, 30, 7).TxEnd(1))

	// Channel message order is observable: two regions interleaving their
	// sends/recvs on one channel are not serializable.
	add("channel-cycle", false, def, event.NewBuilder().
		ChanMake(1, 40, 2).
		TxBegin(1).ChanSend(1, 40).
		TxBegin(2).ChanSend(2, 40).
		ChanRecv(1, 40).TxEnd(1).
		ChanRecv(2, 40).TxEnd(2))

	// Fork/join edges are one-directional: serializable.
	add("fork-join", true, def, event.NewBuilder().
		TxBegin(1).Write(1, 10, 0).Fork(1, 2).TxEnd(1).
		TxBegin(2).Write(2, 10, 0).TxEnd(2).
		Join(1, 2).Read(1, 10, 0))

	// LockRegions: a marker region spanning two critical sections with a
	// conflicting critical section between them — the classical stale-
	// value atomicity violation (no data race: every access is locked).
	add("lock-stale-value", false, locks, event.NewBuilder().
		TxBegin(1).
		Acquire(1, 50).Read(1, 10, 0).Release(1, 50).
		Acquire(2, 50).Write(2, 10, 0).Release(2, 50).
		Acquire(1, 50).Write(1, 10, 0).Release(1, 50).
		TxEnd(1))

	// The same lock pattern without the enclosing marker region: three
	// independent critical sections, serializable.
	add("lock-sections-serial", true, locks, event.NewBuilder().
		Acquire(1, 50).Read(1, 10, 0).Release(1, 50).
		Acquire(2, 50).Write(2, 10, 0).Release(2, 50).
		Acquire(1, 50).Write(1, 10, 0).Release(1, 50))

	// Reentrant locking stays one region per outermost span.
	add("lock-reentrant", true, locks, event.NewBuilder().
		Acquire(1, 50).Acquire(1, 50).Write(1, 10, 0).Release(1, 50).Read(1, 10, 0).Release(1, 50).
		Acquire(2, 50).Write(2, 10, 0).Release(2, 50))

	// Marker pair nested inside a lock span must not split the span.
	add("marker-in-lock-span", true, locks, event.NewBuilder().
		Acquire(1, 50).TxBegin(1).Write(1, 10, 0).TxEnd(1).Write(1, 10, 1).Release(1, 50).
		Acquire(2, 50).Write(2, 10, 0).Write(2, 10, 1).Release(2, 50))

	// A region left open at end of trace (checkpoint-style cut) still
	// carries its edges.
	add("open-region-cut", false, def, event.NewBuilder().
		TxBegin(1).Read(1, 10, 0).
		Write(2, 10, 0).
		Write(1, 10, 0))

	// Unmarked data race: unary regions only, so serializable — but the
	// embedded engine must still report the race (checked separately).
	add("plain-race", true, def, event.NewBuilder().
		Write(1, 10, 0).
		Write(2, 10, 0))

	return out
}

func TestCorpusVerdicts(t *testing.T) {
	for _, c := range corpus() {
		t.Run(c.name, func(t *testing.T) {
			if err := c.trace.Validate(); err != nil {
				t.Fatalf("corpus trace invalid: %v", err)
			}
			_, sum := Check(c.trace, c.opts)
			if sum.Serializable != c.serializable {
				t.Fatalf("serializable = %v, want %v (summary %+v)", sum.Serializable, c.serializable, sum)
			}
			if !c.serializable && len(sum.Violations) == 0 {
				t.Fatalf("non-serializable verdict with no witness")
			}
		})
	}
}

// TestAcyclicMatchesIncremental pins the core invariant: the
// incremental cycle detector and the independent whole-graph Kahn
// verdict agree on every corpus trace.
func TestAcyclicMatchesIncremental(t *testing.T) {
	for _, c := range corpus() {
		ch := New(c.opts)
		detect.RunTrace(ch, c.trace)
		if ch.Acyclic() != ch.Serializable() {
			t.Errorf("%s: Acyclic()=%v but Serializable()=%v", c.name, ch.Acyclic(), ch.Serializable())
		}
	}
}

// TestRacesMatchPlainEngine: the composed checker's race verdicts are
// the embedded engine's, position for position.
func TestRacesMatchPlainEngine(t *testing.T) {
	for _, c := range corpus() {
		want := detect.RunTrace(core.NewEngine(c.opts.Engine), c.trace)
		got := detect.RunTrace(New(c.opts), c.trace)
		if len(got) != len(want) {
			t.Fatalf("%s: %d races from checker, %d from plain engine", c.name, len(got), len(want))
		}
		for i := range got {
			if got[i].Var != want[i].Var || got[i].Pos != want[i].Pos {
				t.Errorf("%s: race %d: got (%v,%d) want (%v,%d)",
					c.name, i, got[i].Var, got[i].Pos, want[i].Var, want[i].Pos)
			}
		}
	}
}

func TestPlainRaceStillDetected(t *testing.T) {
	for _, c := range corpus() {
		if c.name != "plain-race" {
			continue
		}
		races, sum := Check(c.trace, c.opts)
		if len(races) == 0 {
			t.Fatalf("unsynchronized write-write race not reported by embedded engine")
		}
		if !sum.Serializable {
			t.Fatalf("unary-region race must not be an atomicity violation")
		}
	}
}

// TestViolationWitness checks the recorded cycle is a real cycle in the
// final graph: consecutive edges exist and the closing edge returns
// from From to To.
func TestViolationWitness(t *testing.T) {
	for _, c := range corpus() {
		if c.serializable {
			continue
		}
		ch := New(c.opts)
		detect.RunTrace(ch, c.trace)
		for _, vi := range ch.Violations() {
			if len(vi.Cycle) == 0 || vi.Cycle[0] != vi.To || vi.Cycle[len(vi.Cycle)-1] != vi.From {
				t.Fatalf("%s: witness cycle %v does not run To(%d)..From(%d)", c.name, vi.Cycle, vi.To, vi.From)
			}
			for i := 0; i+1 < len(vi.Cycle); i++ {
				if _, ok := ch.edges[vi.Cycle[i]][vi.Cycle[i+1]]; !ok {
					t.Fatalf("%s: witness edge %d->%d missing from graph", c.name, vi.Cycle[i], vi.Cycle[i+1])
				}
			}
			if _, ok := ch.edges[vi.From][vi.To]; !ok {
				t.Fatalf("%s: closing edge %d->%d missing from graph", c.name, vi.From, vi.To)
			}
			if len(vi.Threads) == 0 {
				t.Fatalf("%s: witness has no threads", c.name)
			}
		}
	}
}

func TestMaxViolationsCap(t *testing.T) {
	b := event.NewBuilder()
	// Ten independent lost-update cycles between threads 1 and 2.
	for i := 0; i < 10; i++ {
		o := event.Addr(100 + i)
		b.TxBegin(1).Read(1, o, 0).
			Write(2, o, 0).
			Write(1, o, 0).TxEnd(1)
	}
	opts := DefaultOptions()
	opts.MaxViolations = 4
	ch := New(opts)
	detect.RunTrace(ch, b.Trace())
	if got := len(ch.Violations()); got != 4 {
		t.Fatalf("retained %d witnesses, want cap 4", got)
	}
	if ch.ViolationCount() < 10 {
		t.Fatalf("total violations %d, want >= 10", ch.ViolationCount())
	}
	if ch.Serializable() {
		t.Fatalf("capped checker must still report non-serializable")
	}
}

func TestRegionAccounting(t *testing.T) {
	tr := event.NewBuilder().
		TxBegin(1).Read(1, 10, 0).Write(1, 10, 0).TxEnd(1).
		Write(2, 10, 0).
		Trace()
	ch := New(DefaultOptions())
	detect.RunTrace(ch, tr)
	if ch.RegionCount() != 2 {
		t.Fatalf("RegionCount = %d, want 2 (one marker region, one unary)", ch.RegionCount())
	}
	if ch.MultiRegionCount() != 1 {
		t.Fatalf("MultiRegionCount = %d, want 1", ch.MultiRegionCount())
	}
	sum := ch.Summarize()
	if sum.Events != tr.Len() {
		t.Fatalf("Summary.Events = %d, want %d", sum.Events, tr.Len())
	}
}

// TestCheckpointEveryPrefix cuts every corpus trace at every position —
// including mid-region — snapshots, restores, and finishes both the
// original and the restored checker over the suffix. Verdicts, race
// output on the suffix, and the final snapshot bytes must all agree.
func TestCheckpointEveryPrefix(t *testing.T) {
	for _, c := range corpus() {
		for cut := 0; cut <= c.trace.Len(); cut++ {
			orig := New(c.opts)
			for i := 0; i < cut; i++ {
				orig.Step(c.trace.At(i))
			}
			var snap bytes.Buffer
			if err := orig.Checkpoint(&snap); err != nil {
				t.Fatalf("%s cut %d: checkpoint: %v", c.name, cut, err)
			}
			rest, err := Restore(bytes.NewReader(snap.Bytes()), core.RestoreAttach{})
			if err != nil {
				t.Fatalf("%s cut %d: restore: %v", c.name, cut, err)
			}
			for i := cut; i < c.trace.Len(); i++ {
				a := c.trace.At(i)
				ro := orig.Step(a)
				rr := rest.Step(a)
				if len(ro) != len(rr) {
					t.Fatalf("%s cut %d step %d: %d races original vs %d restored", c.name, cut, i, len(ro), len(rr))
				}
				for j := range ro {
					if ro[j].Var != rr[j].Var {
						t.Fatalf("%s cut %d step %d: race var %v vs %v", c.name, cut, i, ro[j].Var, rr[j].Var)
					}
				}
			}
			if !reflect.DeepEqual(orig.Summarize(), rest.Summarize()) {
				t.Fatalf("%s cut %d: summaries diverge:\n  orig %+v\n  rest %+v",
					c.name, cut, orig.Summarize(), rest.Summarize())
			}
			var so, sr bytes.Buffer
			if err := orig.Checkpoint(&so); err != nil {
				t.Fatalf("%s cut %d: final checkpoint (original): %v", c.name, cut, err)
			}
			if err := rest.Checkpoint(&sr); err != nil {
				t.Fatalf("%s cut %d: final checkpoint (restored): %v", c.name, cut, err)
			}
			if !bytes.Equal(so.Bytes(), sr.Bytes()) {
				t.Fatalf("%s cut %d: final snapshots diverge", c.name, cut)
			}
		}
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	ch := New(DefaultOptions())
	detect.RunTrace(ch, corpus()[0].trace)
	var snap bytes.Buffer
	if err := ch.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader([]byte("junk\n")), core.RestoreAttach{}); err == nil {
		t.Fatal("restore of junk header succeeded")
	}
	// Flip a byte inside the trailing graph line.
	raw := snap.Bytes()
	mut := append([]byte(nil), raw...)
	mut[len(mut)-10] ^= 0x01
	if _, err := Restore(bytes.NewReader(mut), core.RestoreAttach{}); err == nil {
		t.Fatal("restore of corrupted graph line succeeded")
	}
}
