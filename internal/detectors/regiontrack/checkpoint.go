package regiontrack

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"goldilocks/internal/core"
	"goldilocks/internal/event"
)

// Checker checkpoint/restore: the embedded race engine snapshots
// through core.Engine.Checkpoint (so the race side round-trips with
// the same guarantees TestCheckpointEveryPrefix pins), and the region
// graph — including regions still open mid-flight at the cut — is
// serialized as one CRC-checked JSON line after it. A restored checker
// stepped over a trace suffix yields the same races, the same regions,
// the same edges, and the same verdict as an uninterrupted run.
//
//	{"format":"goldilocks-regiontrack","version":1}
//	{"format":"goldilocks-checkpoint","version":1}   \  engine
//	{"engine":{...},"crc":"..."}                     /  snapshot
//	{"graph":{...},"crc":"..."}

// CheckpointFormatName identifies the checker snapshot format.
const CheckpointFormatName = "goldilocks-regiontrack"

// CheckpointFormatVersion is the current snapshot version.
const CheckpointFormatVersion = 1

type ckptHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

type ckptGraphBody struct {
	Graph json.RawMessage `json:"graph"`
	CRC   string          `json:"crc"`
}

type ckptThreadRegion struct {
	Thread event.Tid `json:"t"`
	Region regionID  `json:"r"`
}

type ckptThreadInt struct {
	Thread event.Tid `json:"t"`
	N      int       `json:"n"`
}

type ckptThreadRegions struct {
	Thread  event.Tid  `json:"t"`
	Regions []regionID `json:"rs"`
}

type ckptVarRegion struct {
	Obj    event.Addr    `json:"o"`
	Field  event.FieldID `json:"f"`
	Region regionID      `json:"r"`
}

type ckptVarRegions struct {
	Obj     event.Addr    `json:"o"`
	Field   event.FieldID `json:"f"`
	Regions []regionID    `json:"rs"`
}

type ckptSyncRegion struct {
	Key    syncKey  `json:"k"`
	Region regionID `json:"r"`
}

type ckptGraph struct {
	LockRegions   bool                `json:"lock_regions,omitempty"`
	MaxViolations int                 `json:"max_violations,omitempty"`
	Pos           int                 `json:"pos"`
	NextID        regionID            `json:"next_id"`
	Regions       []region            `json:"regions,omitempty"`
	Cur           []ckptThreadRegion  `json:"cur,omitempty"`
	LockSpan      []event.Tid         `json:"lock_span,omitempty"`
	LockDepth     []ckptThreadInt     `json:"lock_depth,omitempty"`
	Prev          []ckptThreadRegion  `json:"prev,omitempty"`
	Pending       []ckptThreadRegions `json:"pending,omitempty"`
	LastWrite     []ckptVarRegion     `json:"last_write,omitempty"`
	Readers       []ckptVarRegions    `json:"readers,omitempty"`
	SyncLast      []ckptSyncRegion    `json:"sync_last,omitempty"`
	Edges         [][2]regionID       `json:"edges,omitempty"`
	Violations    []Violation         `json:"violations,omitempty"`
	ViolationsAll int                 `json:"violations_all,omitempty"`
}

// Checkpoint serializes the complete checker state to w. The caller
// must ensure no concurrent Step.
func (c *Checker) Checkpoint(w io.Writer) error {
	hdr, err := json.Marshal(ckptHeader{Format: CheckpointFormatName, Version: CheckpointFormatVersion})
	if err != nil {
		return err
	}
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		return err
	}
	if err := c.eng.Checkpoint(w); err != nil {
		return err
	}
	raw, err := json.Marshal(c.graphSnapshot())
	if err != nil {
		return err
	}
	body, err := json.Marshal(ckptGraphBody{
		Graph: raw,
		CRC:   fmt.Sprintf("%08x", crc32.ChecksumIEEE(raw)),
	})
	if err != nil {
		return err
	}
	_, err = w.Write(append(body, '\n'))
	return err
}

// graphSnapshot flattens the map-shaped graph state into the sorted,
// slice-shaped checkpoint document.
func (c *Checker) graphSnapshot() ckptGraph {
	g := ckptGraph{
		LockRegions:   c.opts.LockRegions,
		MaxViolations: c.opts.MaxViolations,
		Pos:           c.pos,
		NextID:        c.nextID,
		Violations:    c.Violations(),
		ViolationsAll: c.violationsAll,
	}
	for _, id := range c.sortedRegionIDs() {
		g.Regions = append(g.Regions, *c.regions[id])
	}
	g.Cur = threadRegionSlice(c.cur)
	for t, on := range c.lockSpan {
		if on {
			g.LockSpan = append(g.LockSpan, t)
		}
	}
	sort.Slice(g.LockSpan, func(i, j int) bool { return g.LockSpan[i] < g.LockSpan[j] })
	for t, d := range c.lockDepth {
		if d != 0 {
			g.LockDepth = append(g.LockDepth, ckptThreadInt{Thread: t, N: d})
		}
	}
	sort.Slice(g.LockDepth, func(i, j int) bool { return g.LockDepth[i].Thread < g.LockDepth[j].Thread })
	g.Prev = threadRegionSlice(c.prev)
	for t, rs := range c.pending {
		g.Pending = append(g.Pending, ckptThreadRegions{Thread: t, Regions: append([]regionID(nil), rs...)})
	}
	sort.Slice(g.Pending, func(i, j int) bool { return g.Pending[i].Thread < g.Pending[j].Thread })
	for v, r := range c.lastWrite {
		g.LastWrite = append(g.LastWrite, ckptVarRegion{Obj: v.Obj, Field: v.Field, Region: r})
	}
	sortVarRegions(g.LastWrite)
	for v, rs := range c.readers {
		if len(rs) == 0 {
			continue
		}
		e := ckptVarRegions{Obj: v.Obj, Field: v.Field, Regions: sortedSet(rs)}
		g.Readers = append(g.Readers, e)
	}
	sort.Slice(g.Readers, func(i, j int) bool {
		if g.Readers[i].Obj != g.Readers[j].Obj {
			return g.Readers[i].Obj < g.Readers[j].Obj
		}
		return g.Readers[i].Field < g.Readers[j].Field
	})
	for k, r := range c.syncLast {
		g.SyncLast = append(g.SyncLast, ckptSyncRegion{Key: k, Region: r})
	}
	sort.Slice(g.SyncLast, func(i, j int) bool {
		a, b := g.SyncLast[i].Key, g.SyncLast[j].Key
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		if a.Field != b.Field {
			return a.Field < b.Field
		}
		return !a.Chan && b.Chan
	})
	for u, outs := range c.edges {
		for v := range outs {
			g.Edges = append(g.Edges, [2]regionID{u, v})
		}
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i][0] != g.Edges[j][0] {
			return g.Edges[i][0] < g.Edges[j][0]
		}
		return g.Edges[i][1] < g.Edges[j][1]
	})
	return g
}

func threadRegionSlice(m map[event.Tid]regionID) []ckptThreadRegion {
	var out []ckptThreadRegion
	for t, r := range m {
		if r != 0 {
			out = append(out, ckptThreadRegion{Thread: t, Region: r})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Thread < out[j].Thread })
	return out
}

func sortVarRegions(s []ckptVarRegion) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Obj != s[j].Obj {
			return s[i].Obj < s[j].Obj
		}
		return s[i].Field < s[j].Field
	})
}

// Restore rebuilds a checker from a snapshot written by Checkpoint.
// attach supplies the non-serializable engine attachments (telemetry).
func Restore(r io.Reader, attach core.RestoreAttach) (*Checker, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	line, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("regiontrack: reading snapshot header: %w", err)
	}
	var hdr ckptHeader
	if err := json.Unmarshal(line, &hdr); err != nil || hdr.Format != CheckpointFormatName {
		return nil, fmt.Errorf("regiontrack: not a %s snapshot", CheckpointFormatName)
	}
	if hdr.Version != CheckpointFormatVersion {
		return nil, fmt.Errorf("regiontrack: unsupported snapshot version %d", hdr.Version)
	}
	eng, err := core.RestoreEngine(br, attach)
	if err != nil {
		return nil, fmt.Errorf("regiontrack: restoring race engine: %w", err)
	}
	line, err = readLine(br)
	if err != nil {
		return nil, fmt.Errorf("regiontrack: reading graph body: %w", err)
	}
	var body ckptGraphBody
	if err := json.Unmarshal(line, &body); err != nil {
		return nil, fmt.Errorf("regiontrack: decoding graph body: %w", err)
	}
	if fmt.Sprintf("%08x", crc32.ChecksumIEEE(body.Graph)) != body.CRC {
		return nil, fmt.Errorf("regiontrack: graph checksum mismatch")
	}
	var g ckptGraph
	if err := json.Unmarshal(body.Graph, &g); err != nil {
		return nil, fmt.Errorf("regiontrack: decoding graph: %w", err)
	}

	// The restored engine carries its own options; the throwaway engine
	// New builds from the zero Options is discarded on the next line.
	c := New(Options{LockRegions: g.LockRegions, MaxViolations: g.MaxViolations})
	c.eng = eng
	c.pos = g.Pos
	c.nextID = g.NextID
	for i := range g.Regions {
		reg := g.Regions[i]
		c.regions[reg.ID] = &reg
	}
	for _, e := range g.Cur {
		c.cur[e.Thread] = e.Region
	}
	for _, t := range g.LockSpan {
		c.lockSpan[t] = true
	}
	for _, e := range g.LockDepth {
		c.lockDepth[e.Thread] = e.N
	}
	for _, e := range g.Prev {
		c.prev[e.Thread] = e.Region
	}
	for _, e := range g.Pending {
		c.pending[e.Thread] = append([]regionID(nil), e.Regions...)
	}
	for _, e := range g.LastWrite {
		c.lastWrite[event.Variable{Obj: e.Obj, Field: e.Field}] = e.Region
	}
	for _, e := range g.Readers {
		set := make(map[regionID]struct{}, len(e.Regions))
		for _, id := range e.Regions {
			set[id] = struct{}{}
		}
		c.readers[event.Variable{Obj: e.Obj, Field: e.Field}] = set
	}
	for _, e := range g.SyncLast {
		c.syncLast[e.Key] = e.Region
	}
	for _, e := range g.Edges {
		m := c.edges[e[0]]
		if m == nil {
			m = make(map[regionID]struct{})
			c.edges[e[0]] = m
		}
		m[e[1]] = struct{}{}
	}
	c.violations = g.Violations
	c.violationsAll = g.ViolationsAll
	return c, nil
}

// readLine reads one newline-terminated line without the terminator.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	return line[:len(line)-1], nil
}
