// Package basic implements the "most straightforward lockset algorithm"
// of Section 4.1: assume every shared variable is protected by a fixed
// set of locks, track the intersection of locks held at each access, and
// report a race the moment the intersection is empty.
//
// It exists to document the precision floor: it false-alarms on
// unprotected initialization (the very first access of Figure 6's
// execution), on lock rotation, and on every idiom Eraser's state
// machine was invented to patch.
package basic

import (
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
)

type varState struct {
	cand     map[event.Addr]bool // nil: not yet accessed
	reported bool
}

// Detector is the naive lockset-intersection detector.
type Detector struct {
	vars map[event.Variable]*varState
	held map[event.Tid]map[event.Addr]int
}

// New returns an empty detector.
func New() *Detector {
	return &Detector{
		vars: make(map[event.Variable]*varState),
		held: make(map[event.Tid]map[event.Addr]int),
	}
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return "basic-lockset" }

// Step implements detect.Detector.
func (d *Detector) Step(a event.Action) []detect.Race {
	switch a.Kind {
	case event.KindAcquire:
		m := d.held[a.Thread]
		if m == nil {
			m = make(map[event.Addr]int)
			d.held[a.Thread] = m
		}
		m[a.Obj]++
	case event.KindRelease:
		if m := d.held[a.Thread]; m[a.Obj] > 0 {
			m[a.Obj]--
		}
	case event.KindAlloc:
		for v := range d.vars {
			if v.Obj == a.Obj {
				delete(d.vars, v)
			}
		}
	case event.KindRead, event.KindWrite:
		if r := d.access(a.Thread, a.Variable(), a); r != nil {
			return []detect.Race{*r}
		}
	case event.KindCommit:
		var races []detect.Race
		seen := make(map[event.Variable]bool)
		for _, vs := range [][]event.Variable{a.Writes, a.Reads} {
			for _, v := range vs {
				if seen[v] {
					continue
				}
				seen[v] = true
				if r := d.access(a.Thread, v, a); r != nil {
					races = append(races, *r)
				}
			}
		}
		return races
	}
	return nil
}

func (d *Detector) access(t event.Tid, v event.Variable, a event.Action) *detect.Race {
	vs, ok := d.vars[v]
	if !ok {
		vs = &varState{}
		d.vars[v] = vs
	}
	held := make(map[event.Addr]bool)
	for l, n := range d.held[t] {
		if n > 0 {
			held[l] = true
		}
	}
	if vs.cand == nil {
		vs.cand = held
	} else {
		for l := range vs.cand {
			if !held[l] {
				delete(vs.cand, l)
			}
		}
	}
	if len(vs.cand) == 0 && !vs.reported {
		vs.reported = true
		return &detect.Race{Var: v, Access: a}
	}
	return nil
}
