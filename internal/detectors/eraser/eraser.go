// Package eraser implements the Eraser dynamic race detector (Savage et
// al., TOCS 1997) with its per-variable ownership state machine, as the
// sound-but-imprecise baseline the paper contrasts Goldilocks with
// (Section 4.1 and Related Work).
//
// Eraser enforces the discipline that every shared variable is protected
// by a fixed set of locks. The candidate lockset of a variable only
// shrinks; idioms such as ownership transfer, container-protected
// objects, barrier synchronization (volatiles), and permanent
// thread-locality after shared use all violate the discipline and
// produce false alarms — exactly the imprecision Example 2 demonstrates.
//
// Transactions are handled the only way a lockset-discipline checker
// can: accesses inside a transaction are treated as performed while
// holding a fictitious global transaction lock.
package eraser

import (
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
)

// state is the Eraser ownership state of one variable.
type state uint8

const (
	virgin state = iota
	exclusive
	shared
	sharedModified
)

// txnLock is the fictitious lock "held" during transactional accesses.
const txnLock event.Addr = -1

// chanLock maps channel c to the fictitious lock Eraser pretends the
// channel is. A lockset-discipline checker has no notion of message
// passing; the classical approximation models the mutex-via-channel
// idiom (recv the token, touch the data, send it back): a recv acquires
// the channel's pseudo-lock and a send or close releases it, so data
// accessed only while holding the token appears consistently protected.
// True handoff pipelines still false-alarm — exactly Eraser's
// documented imprecision. The offset keeps the pseudo-lock address
// space (-2 and below) disjoint from txnLock.
func chanLock(c event.Addr) event.Addr { return -(c + 2) }

type varState struct {
	st    state
	owner event.Tid
	// cand is the candidate lockset; nil means "all locks" (not yet
	// initialized — it is first set when the variable becomes shared).
	cand     map[event.Addr]bool
	reported bool
}

// Detector is an Eraser-style online detector implementing
// detect.Detector.
type Detector struct {
	vars map[event.Variable]*varState
	held map[event.Tid]map[event.Addr]int
}

// New returns an empty Eraser detector.
func New() *Detector {
	return &Detector{
		vars: make(map[event.Variable]*varState),
		held: make(map[event.Tid]map[event.Addr]int),
	}
}

// Name implements detect.Detector.
func (d *Detector) Name() string { return "eraser" }

func (d *Detector) locksHeld(t event.Tid) map[event.Addr]int {
	m, ok := d.held[t]
	if !ok {
		m = make(map[event.Addr]int)
		d.held[t] = m
	}
	return m
}

// lockset returns the set of locks t currently holds, plus extra.
func (d *Detector) lockset(t event.Tid, extra ...event.Addr) map[event.Addr]bool {
	out := make(map[event.Addr]bool)
	for l, n := range d.held[t] {
		if n > 0 {
			out[l] = true
		}
	}
	for _, l := range extra {
		out[l] = true
	}
	return out
}

// Step implements detect.Detector.
func (d *Detector) Step(a event.Action) []detect.Race {
	switch a.Kind {
	case event.KindAcquire:
		d.locksHeld(a.Thread)[a.Obj]++
	case event.KindRelease:
		if m := d.locksHeld(a.Thread); m[a.Obj] > 0 {
			m[a.Obj]--
		}
	case event.KindChanRecv:
		d.locksHeld(a.Thread)[chanLock(a.Obj)]++
	case event.KindChanSend, event.KindChanClose:
		if m := d.locksHeld(a.Thread); m[chanLock(a.Obj)] > 0 {
			m[chanLock(a.Obj)]--
		}
	case event.KindAlloc:
		for v := range d.vars {
			if v.Obj == a.Obj {
				delete(d.vars, v)
			}
		}
	case event.KindRead:
		if r := d.access(a.Thread, a.Variable(), false, a, nil); r != nil {
			return []detect.Race{*r}
		}
	case event.KindWrite:
		if r := d.access(a.Thread, a.Variable(), true, a, nil); r != nil {
			return []detect.Race{*r}
		}
	case event.KindCommit:
		var races []detect.Race
		extra := []event.Addr{txnLock}
		seen := make(map[event.Variable]bool)
		for _, v := range a.Writes {
			if !seen[v] {
				seen[v] = true
				if r := d.access(a.Thread, v, true, a, extra); r != nil {
					races = append(races, *r)
				}
			}
		}
		for _, v := range a.Reads {
			if !seen[v] {
				seen[v] = true
				if r := d.access(a.Thread, v, false, a, extra); r != nil {
					races = append(races, *r)
				}
			}
		}
		return races
	}
	return nil
}

// access runs the Eraser state machine for one access.
func (d *Detector) access(t event.Tid, v event.Variable, isWrite bool, a event.Action, extra []event.Addr) *detect.Race {
	vs, ok := d.vars[v]
	if !ok {
		vs = &varState{st: virgin}
		d.vars[v] = vs
	}
	held := d.lockset(t, extra...)

	switch vs.st {
	case virgin:
		vs.st = exclusive
		vs.owner = t
		return nil
	case exclusive:
		if t == vs.owner {
			return nil
		}
		// First access by a second thread: initialize the candidate set.
		vs.cand = held
		if isWrite {
			vs.st = sharedModified
		} else {
			vs.st = shared
		}
		if vs.st == sharedModified && len(vs.cand) == 0 {
			return d.report(vs, v, a)
		}
		return nil
	case shared:
		vs.intersect(held)
		if isWrite {
			vs.st = sharedModified
			if len(vs.cand) == 0 {
				return d.report(vs, v, a)
			}
		}
		// Reads in shared state refine the set without reporting.
		return nil
	default: // sharedModified
		vs.intersect(held)
		if len(vs.cand) == 0 {
			return d.report(vs, v, a)
		}
		return nil
	}
}

func (vs *varState) intersect(held map[event.Addr]bool) {
	for l := range vs.cand {
		if !held[l] {
			delete(vs.cand, l)
		}
	}
}

func (d *Detector) report(vs *varState, v event.Variable, a event.Action) *detect.Race {
	if vs.reported {
		return nil // one report per variable, like the original tool
	}
	vs.reported = true
	return &detect.Race{Var: v, Access: a}
}
