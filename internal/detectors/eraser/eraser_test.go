package eraser_test

import (
	"testing"

	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/basic"
	"goldilocks/internal/detectors/eraser"
	"goldilocks/internal/event"
	"goldilocks/internal/hb"
	"goldilocks/internal/scenarios"
	"goldilocks/internal/tracegen"
)

// TestEraserConsistentLockDiscipline: a variable always protected by the
// same lock never alarms.
func TestEraserConsistentLockDiscipline(t *testing.T) {
	b := event.NewBuilder()
	b.Fork(1, 2)
	for i := 0; i < 5; i++ {
		tid := event.Tid(1 + i%2)
		b.Acquire(tid, 20)
		b.Read(tid, 10, 0)
		b.Write(tid, 10, 0)
		b.Release(tid, 20)
	}
	if rs := detect.RunTrace(eraser.New(), b.Trace()); len(rs) != 0 {
		t.Errorf("consistent discipline flagged: %v", rs)
	}
}

// TestEraserInitializationTolerated: the Exclusive state absorbs
// unprotected initialization by one thread.
func TestEraserInitializationTolerated(t *testing.T) {
	tr := event.NewBuilder().
		Write(1, 10, 0). // no locks held: virgin -> exclusive
		Write(1, 10, 0).
		Fork(1, 2).
		Acquire(1, 20).Write(1, 10, 0).Release(1, 20).
		Acquire(2, 20).Read(2, 10, 0).Release(2, 20).
		Trace()
	if rs := detect.RunTrace(eraser.New(), tr); len(rs) != 0 {
		t.Errorf("initialization flagged: %v", rs)
	}
}

// TestEraserReadSharedNoAlarm: multiple readers without locks stay in
// the Shared state and never alarm.
func TestEraserReadSharedNoAlarm(t *testing.T) {
	tr := event.NewBuilder().
		Write(1, 10, 0).
		Fork(1, 2).
		Fork(1, 3).
		Read(2, 10, 0).
		Read(3, 10, 0).
		Trace()
	if rs := detect.RunTrace(eraser.New(), tr); len(rs) != 0 {
		t.Errorf("read sharing flagged: %v", rs)
	}
}

// TestEraserDetectsRealRace: an unprotected write-write race alarms.
func TestEraserDetectsRealRace(t *testing.T) {
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		Write(2, 10, 0).
		Trace()
	rs := detect.RunTrace(eraser.New(), tr)
	if len(rs) != 1 || rs[0].Pos != 2 {
		t.Errorf("races = %v, want one at 2", rs)
	}
}

// TestEraserFalseAlarmOnOwnershipTransfer is the paper's Section 4.1
// claim: Example 2 is race-free, yet Eraser reports a race at the last
// access (tmp3.data = 3) because the protecting lock changes over time.
func TestEraserFalseAlarmOnOwnershipTransfer(t *testing.T) {
	sc := scenarios.Ownership()
	rs := detect.RunTrace(eraser.New(), sc.Trace)
	if len(rs) == 0 {
		t.Fatal("Eraser did not false-alarm on Example 2 — the paper's precision gap disappeared")
	}
	odata := scenarios.Var(scenarios.IntBox, scenarios.FieldData)
	found := false
	for _, r := range rs {
		if r.Var == odata {
			found = true
			// The alarm fires at the final unprotected write.
			if r.Pos != 15 {
				t.Errorf("alarm at %d, want 15 (tmp3.data = 3)", r.Pos)
			}
		}
	}
	if !found {
		t.Errorf("no alarm on o.data: %v", rs)
	}
}

// TestEraserFalseAlarmOnVolatileHandshake: Eraser cannot see volatile
// synchronization (the barrier idiom).
func TestEraserFalseAlarmOnVolatileHandshake(t *testing.T) {
	tr := event.NewBuilder().
		Fork(1, 2).
		Write(1, 10, 0).
		VolatileWrite(1, 1, 0).
		VolatileRead(2, 1, 0).
		Write(2, 10, 0). // ordered by the volatile, but Eraser alarms
		Trace()
	if rs := detect.RunTrace(eraser.New(), tr); len(rs) == 0 {
		t.Error("Eraser saw through a volatile handshake; expected a false alarm")
	}
	// Goldilocks ground truth: race-free.
	if _, racy := hb.NewOracle(tr).FirstRacePos(); racy {
		t.Fatal("trace is actually racy; test is broken")
	}
}

// TestEraserTransactionalDiscipline: accesses always inside transactions
// share the fictitious transaction lock and never alarm.
func TestEraserTransactionalDiscipline(t *testing.T) {
	v := event.Variable{Obj: 10, Field: 0}
	tr := event.NewBuilder().
		Fork(1, 2).
		Commit(1, nil, []event.Variable{v}).
		Commit(2, nil, []event.Variable{v}).
		Commit(1, []event.Variable{v}, nil).
		Trace()
	if rs := detect.RunTrace(eraser.New(), tr); len(rs) != 0 {
		t.Errorf("transactional discipline flagged: %v", rs)
	}
}

// TestEraserCoverageOnRandomTraces: Eraser alarms on nearly every racy
// trace. It is not strictly sound — the read-shared state can absorb a
// racing read without refining the candidate set to empty — so a small
// miss rate is tolerated; what the test pins down is that the detector
// is a meaningful baseline: high recall, nonzero false-alarm rate on
// race-free traces (its documented imprecision).
func TestEraserCoverageOnRandomTraces(t *testing.T) {
	misses, falseAlarms, racyTotal, cleanTotal := 0, 0, 0, 0
	for seed := int64(0); seed < 200; seed++ {
		tr := tracegen.FromSeed(seed)
		_, racy := hb.NewOracle(tr).FirstRacePos()
		alarms := detect.RunTrace(eraser.New(), tr)
		switch {
		case racy:
			racyTotal++
			if len(alarms) == 0 {
				misses++
			}
		default:
			cleanTotal++
			if len(alarms) > 0 {
				falseAlarms++
			}
		}
	}
	if racyTotal == 0 || cleanTotal == 0 {
		t.Fatalf("degenerate sample: %d racy, %d clean", racyTotal, cleanTotal)
	}
	if misses*10 > racyTotal {
		t.Errorf("Eraser missed %d of %d racy traces (>10%%)", misses, racyTotal)
	}
	if falseAlarms == 0 {
		t.Errorf("Eraser produced no false alarms on %d race-free traces; the precision gap the paper measures should be visible", cleanTotal)
	}
}

// TestBasicLocksetFirstAccessAlarm: the paper's claim that the basic
// algorithm alarms at the very first unprotected access of Figure 6.
func TestBasicLocksetFirstAccessAlarm(t *testing.T) {
	sc := scenarios.Ownership()
	rs := detect.RunTrace(basic.New(), sc.Trace)
	if len(rs) == 0 {
		t.Fatal("basic lockset did not alarm on Example 2")
	}
	if rs[0].Pos != 1 {
		t.Errorf("first alarm at %d, want 1 (tmp1.data = 0, no locks held)", rs[0].Pos)
	}
}

// TestBasicLocksetConsistentDiscipline: fixed-lock programs stay quiet.
func TestBasicLocksetConsistentDiscipline(t *testing.T) {
	b := event.NewBuilder()
	b.Fork(1, 2)
	for i := 0; i < 4; i++ {
		tid := event.Tid(1 + i%2)
		b.Acquire(tid, 20)
		b.Write(tid, 10, 0)
		b.Release(tid, 20)
	}
	if rs := detect.RunTrace(basic.New(), b.Trace()); len(rs) != 0 {
		t.Errorf("fixed-lock program flagged: %v", rs)
	}
}

// TestBasicLocksetSound: alarms on every truly racy random trace.
func TestBasicLocksetSound(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		tr := tracegen.FromSeed(seed)
		if _, racy := hb.NewOracle(tr).FirstRacePos(); racy {
			if len(detect.RunTrace(basic.New(), tr)) == 0 {
				t.Errorf("seed %d: racy trace with no basic-lockset alarm", seed)
			}
		}
	}
}
