// Package explore enumerates thread schedules systematically: a
// CHESS-style depth-first search over the deterministic scheduler's
// decision points. Where seed-scanning samples the interleaving space,
// exploration covers it — for small programs exhaustively — turning
// statements like "a DataRaceException is thrown in some interleaving"
// or "no interleaving races" into checked facts.
//
// The explored program must be deterministic apart from scheduling: the
// same decision sequence must reproduce the same run (the jrt
// deterministic scheduler guarantees this for MJ and Go-API programs
// that don't consult outside state).
package explore

import (
	"time"

	"goldilocks/internal/jrt"
)

// Run is one explored schedule's outcome.
type Run struct {
	// Choices is the decision sequence that produced the run.
	Choices []int
	// Races is the number of races the schedule exhibited.
	Races int
}

// Result summarizes an exploration.
type Result struct {
	// Schedules is the number of schedules executed.
	Schedules int
	// Racy is the number of schedules with at least one race.
	Racy int
	// FirstRacy is the decision sequence of the first racy schedule
	// found (nil if none).
	FirstRacy []int
	// Exhausted reports whether the whole schedule space was covered
	// (false if MaxSchedules or Timeout stopped the search first).
	Exhausted bool
	// TimedOut reports that Options.Timeout expired before the space
	// was covered; the counts above describe the schedules completed in
	// time (a schedule in flight at the deadline finishes).
	TimedOut bool
	// Truncated counts runs that exceeded MaxDecisions and finished
	// under fair rotation instead of full branching.
	Truncated int
}

// Options bounds the search.
type Options struct {
	// MaxSchedules stops the search after this many runs (0: 10000).
	MaxSchedules int
	// MaxDecisions bounds the branching depth of a single schedule
	// (0: 1 << 16). A run that exceeds it — a thread pinned in a spin
	// loop by the DFS's continue-current default — switches to fair
	// rotation for the rest of the run, which terminates any program
	// that terminates under a fair scheduler; the run is counted in
	// Result.Truncated and not branched further.
	MaxDecisions int
	// PreemptionBound, when positive, limits each schedule to that many
	// preemptions (switching away from a thread that could continue) —
	// the CHESS result: most concurrency bugs manifest within two
	// preemptions, and the bounded space is polynomial instead of
	// exponential. Forced switches (the current thread blocked or
	// exited) are free. Zero means unbounded.
	PreemptionBound int
	// Timeout, when positive, bounds the wall-clock time of the whole
	// search. Exploration stops between schedules once it expires (the
	// schedule in flight completes), with Result.TimedOut set. It is a
	// robustness backstop for exploring programs whose schedule space
	// turns out to be far larger than anticipated.
	Timeout time.Duration
}

// dfsChooser replays a decision prefix, then takes the first candidate,
// recording the fan-out at every decision point. With a preemption
// bound, decision points after the budget is spent are forced to
// "continue the current thread" and recorded as non-branching.
type dfsChooser struct {
	prefix    []int
	chosen    []int
	counts    []int
	depth     int
	limit     int // soft: switch to fair rotation beyond this
	hardLimit int // fail loudly: the program does not terminate fairly
	bound     int // 0: unbounded
	preempts  int
	rr        int // fair-rotation state
	truncated bool
}

// Choose implements jrt.Chooser (used only if the scheduler does not
// pass preemption context).
func (c *dfsChooser) Choose(n int) int { return c.ChoosePreempt(n, false) }

// ChoosePreempt implements jrt.PreemptAware.
func (c *dfsChooser) ChoosePreempt(n int, currentRunnable bool) int {
	if c.depth >= c.hardLimit {
		panic("explore: program does not terminate even under fair scheduling")
	}
	if c.depth >= c.limit {
		c.truncated = true
	}
	if c.truncated || (c.bound > 0 && c.preempts >= c.bound) {
		// No more branching: rotate fairly instead of pinning the
		// current thread, so spin-waiting threads cannot livelock the
		// schedule (the rotation is deterministic, so the tail is still
		// a single schedule per prefix).
		c.rr++
		c.chosen = append(c.chosen, 0)
		c.counts = append(c.counts, 1)
		c.depth++
		return c.rr % n
	}
	pick := 0
	if c.depth < len(c.prefix) {
		pick = c.prefix[c.depth]
		if pick >= n {
			// The replayed prefix diverged (should not happen for
			// deterministic programs); clamp defensively.
			pick = n - 1
		}
	}
	if currentRunnable && pick > 0 {
		c.preempts++
	}
	c.chosen = append(c.chosen, pick)
	c.counts = append(c.counts, n)
	c.depth++
	return pick
}

// next computes the lexicographically-next decision prefix, or nil when
// the space is exhausted.
func nextPrefix(chosen, counts []int) []int {
	for i := len(chosen) - 1; i >= 0; i-- {
		if chosen[i]+1 < counts[i] {
			out := make([]int, i+1)
			copy(out, chosen[:i])
			out[i] = chosen[i] + 1
			return out
		}
	}
	return nil
}

// Schedules runs body once per schedule in depth-first order. body
// receives a jrt.Chooser to plug into jrt.Config and returns the number
// of races that schedule exhibited; visit (optional) observes each run.
func Schedules(opts Options, body func(c jrt.Chooser) int, visit func(Run)) Result {
	maxRuns := opts.MaxSchedules
	if maxRuns == 0 {
		maxRuns = 10000
	}
	maxDecisions := opts.MaxDecisions
	if maxDecisions == 0 {
		maxDecisions = 1 << 16
	}

	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}

	res := Result{}
	prefix := []int{}
	for {
		if res.Schedules >= maxRuns {
			return res
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			res.TimedOut = true
			return res
		}
		c := &dfsChooser{prefix: prefix, limit: maxDecisions, hardLimit: 64 * maxDecisions, bound: opts.PreemptionBound}
		races := body(c)
		res.Schedules++
		if c.truncated {
			res.Truncated++
		}
		if races > 0 {
			res.Racy++
			if res.FirstRacy == nil {
				res.FirstRacy = append([]int(nil), c.chosen...)
			}
		}
		if visit != nil {
			visit(Run{Choices: append([]int(nil), c.chosen...), Races: races})
		}
		prefix = nextPrefix(c.chosen, c.counts)
		if prefix == nil {
			res.Exhausted = true
			return res
		}
	}
}

// Replay runs body once under the given decision sequence.
func Replay(choices []int, body func(c jrt.Chooser) int) int {
	c := &dfsChooser{prefix: choices, limit: 1 << 16, hardLimit: 64 << 16}
	return body(c)
}
