package explore_test

import (
	"time"

	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/explore"
	"goldilocks/internal/hb"
	"goldilocks/internal/jrt"
	"goldilocks/internal/mj"
	"goldilocks/internal/mjgen"
)

// runMJ builds the schedule-runner for an MJ program: each call executes
// the program under the supplied chooser and returns the race count.
func runMJ(t *testing.T, src string) func(c jrt.Chooser) int {
	t.Helper()
	return func(c jrt.Chooser) int {
		prog := mj.MustCheck(src)
		rt := jrt.NewRuntime(jrt.Config{
			Detector: core.New(),
			Policy:   jrt.Log,
			Mode:     jrt.Deterministic,
			Chooser:  c,
		})
		interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt})
		if err != nil {
			t.Fatal(err)
		}
		races, err := interp.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return len(races)
	}
}

const racyProgram = `
class D { int v; }
class Main {
	D d;
	void racer() { d.v = 1; }
	void main() {
		d = new D();
		thread t = spawn this.racer();
		d.v = 2;
		join(t);
	}
}
`

// TestExploreFindsRaceInEverySchedule: the two unsynchronized writes
// race under every interleaving; exhaustive exploration proves it.
func TestExploreFindsRaceInEverySchedule(t *testing.T) {
	res := explore.Schedules(explore.Options{MaxSchedules: 5000}, runMJ(t, racyProgram), nil)
	if !res.Exhausted {
		t.Fatalf("space not exhausted in %d schedules", res.Schedules)
	}
	if res.Schedules < 2 {
		t.Fatalf("only %d schedules explored; expected real branching", res.Schedules)
	}
	if res.Racy != res.Schedules {
		t.Errorf("racy in %d of %d schedules; the race exists in all of them", res.Racy, res.Schedules)
	}
	if res.FirstRacy == nil {
		t.Fatal("no racy schedule recorded")
	}
	// The recorded decision sequence replays to the same verdict.
	if n := explore.Replay(res.FirstRacy, runMJ(t, racyProgram)); n == 0 {
		t.Error("replay of the racy schedule found no race")
	}
}

const guardedProgram = `
class D { int v; }
class L { int unused; }
class Main {
	D d;
	L lock;
	void worker() { synchronized (lock) { d.v = 1; } }
	void main() {
		d = new D();
		lock = new L();
		thread t = spawn this.worker();
		synchronized (lock) { d.v = 2; }
		join(t);
	}
}
`

// TestExploreProvesRaceFreedom: exhaustive exploration of the guarded
// program finds no racy schedule — "no interleaving races" as a checked
// fact rather than a sampled one. (Exhaustive coverage is only feasible
// for tiny programs; every yield with several runnable threads is a
// decision point.)
func TestExploreProvesRaceFreedom(t *testing.T) {
	res := explore.Schedules(explore.Options{MaxSchedules: 200000}, runMJ(t, guardedProgram), nil)
	if !res.Exhausted {
		t.Fatalf("space not exhausted in %d schedules", res.Schedules)
	}
	if res.Racy != 0 {
		t.Errorf("%d racy schedules on a race-free program (replay %v)", res.Racy, res.FirstRacy)
	}
	if res.Schedules < 10 {
		t.Errorf("only %d schedules; expected a nontrivial space", res.Schedules)
	}
}

const sometimesRacy = `
class D { int v; volatile boolean done; }
class Main {
	D d;
	void racer() {
		d.v = 1;
		d.done = true;
	}
	void main() {
		d = new D();
		thread t = spawn this.racer();
		if (d.done) {
			int x = d.v; // ordered: the volatile read observed the flag
		} else {
			d.v = 2; // races iff the racer has not finished
		}
		join(t);
	}
}
`

// TestExploreSchedulesDiffer: a program whose verdict depends on the
// schedule shows both outcomes under exploration, and every schedule's
// live verdict matches the oracle on its own recording.
func TestExploreSchedulesDiffer(t *testing.T) {
	racy, clean := 0, 0
	body := func(c jrt.Chooser) int {
		prog := mj.MustCheck(sometimesRacy)
		rec := jrt.Record(core.New())
		rt := jrt.NewRuntime(jrt.Config{
			Detector: rec,
			Policy:   jrt.Log,
			Mode:     jrt.Deterministic,
			Chooser:  c,
		})
		interp, err := mj.NewInterp(prog, mj.InterpConfig{Runtime: rt})
		if err != nil {
			t.Fatal(err)
		}
		races, err := interp.Run()
		if err != nil {
			t.Fatal(err)
		}
		_, oracleRacy := hb.NewOracle(rec.Trace()).FirstRacePos()
		if oracleRacy != (len(races) > 0) {
			t.Fatalf("live races %d, oracle racy %v", len(races), oracleRacy)
		}
		return len(races)
	}
	res := explore.Schedules(explore.Options{MaxSchedules: 20000}, body, func(r explore.Run) {
		if r.Races > 0 {
			racy++
		} else {
			clean++
		}
	})
	if !res.Exhausted {
		t.Fatalf("space not exhausted in %d schedules", res.Schedules)
	}
	if racy == 0 || clean == 0 {
		t.Errorf("expected both outcomes: %d racy, %d clean of %d", racy, clean, res.Schedules)
	}
}

// TestExploreGeneratedPrograms: exploration agrees with itself across
// replays on generated programs (determinism of the chooser protocol),
// bounded by MaxSchedules.
func TestExploreGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		src := mjgen.FromSeed(seed)
		body := runMJ(t, src)
		var first []explore.Run
		explore.Schedules(explore.Options{MaxSchedules: 25}, body, func(r explore.Run) {
			first = append(first, r)
		})
		for _, r := range first {
			if got := explore.Replay(r.Choices, body); (got > 0) != (r.Races > 0) {
				t.Fatalf("seed %d: schedule %v verdict changed on replay: %d vs %d",
					seed, r.Choices, r.Races, got)
			}
		}
	}
}

// TestExploreMaxSchedulesBound: the search respects its budget.
func TestExploreMaxSchedulesBound(t *testing.T) {
	res := explore.Schedules(explore.Options{MaxSchedules: 3}, runMJ(t, racyProgram), nil)
	if res.Schedules != 3 || res.Exhausted {
		t.Errorf("schedules = %d exhausted = %v, want exactly 3, not exhausted", res.Schedules, res.Exhausted)
	}
}

const incrementProgram = `
class D { int v; }
class L { int unused; }
class Main {
	D d;
	L lock;
	void worker() { synchronized (lock) { d.v = d.v + 1; } }
	void main() {
		d = new D();
		lock = new L();
		thread t = spawn this.worker();
		synchronized (lock) { d.v = d.v + 1; }
		join(t);
		int check = d.v;
	}
}
`

// TestPreemptionBoundedExploration: the unbounded space of the
// increment program is too large to exhaust cheaply, but the
// 2-preemption-bounded space covers it and proves race freedom — the
// CHESS trade.
func TestPreemptionBoundedExploration(t *testing.T) {
	unbounded := explore.Schedules(explore.Options{MaxSchedules: 2000}, runMJ(t, incrementProgram), nil)
	if unbounded.Exhausted {
		t.Skip("unbounded space unexpectedly small; bound adds nothing here")
	}
	bounded := explore.Schedules(explore.Options{MaxSchedules: 100000, PreemptionBound: 2}, runMJ(t, incrementProgram), nil)
	if !bounded.Exhausted {
		t.Fatalf("bounded space not exhausted in %d schedules", bounded.Schedules)
	}
	if bounded.Racy != 0 {
		t.Errorf("%d racy schedules on a race-free program", bounded.Racy)
	}
	if bounded.Schedules < 5 {
		t.Errorf("bounded exploration covered only %d schedules", bounded.Schedules)
	}
}

// TestPreemptionBoundFindsRaces: one preemption suffices to expose the
// always-racy program's race.
func TestPreemptionBoundFindsRaces(t *testing.T) {
	res := explore.Schedules(explore.Options{MaxSchedules: 10000, PreemptionBound: 1}, runMJ(t, racyProgram), nil)
	if !res.Exhausted {
		t.Fatalf("space not exhausted in %d schedules", res.Schedules)
	}
	if res.Racy != res.Schedules {
		t.Errorf("racy in %d of %d bounded schedules", res.Racy, res.Schedules)
	}
}

const spinProgram = `
class Box { int payload; volatile boolean ready; }
class Main {
	Box b;
	void consumer() {
		while (!b.ready) { }
		int got = b.payload;
	}
	void main() {
		b = new Box();
		thread t = spawn this.consumer();
		b.payload = 99;
		b.ready = true;
		join(t);
	}
}
`

// TestExploreSpinLoopTruncation: the DFS's continue-current default
// pins a spin-waiting thread into an infinite schedule; the decision
// budget flips such runs into fair rotation so they terminate, are
// counted as truncated, and the search proceeds. Every schedule of the
// handshake is race-free.
func TestExploreSpinLoopTruncation(t *testing.T) {
	res := explore.Schedules(explore.Options{MaxSchedules: 300, MaxDecisions: 256},
		runMJ(t, spinProgram), nil)
	if res.Schedules != 300 {
		t.Fatalf("schedules = %d", res.Schedules)
	}
	if res.Racy != 0 {
		t.Errorf("%d racy schedules on the race-free handshake", res.Racy)
	}
	if res.Truncated == 0 {
		t.Error("no truncated runs; the spin pin should have tripped the budget")
	}
}

// TestExploreTimeout: a wall-clock budget stops the search between
// schedules with TimedOut set instead of running the space dry.
func TestExploreTimeout(t *testing.T) {
	runs := 0
	res := explore.Schedules(explore.Options{MaxSchedules: 1 << 30, Timeout: 20 * time.Millisecond},
		func(c jrt.Chooser) int {
			runs++
			runMJ(t, racyProgram)(c)
			time.Sleep(5 * time.Millisecond)
			return 0
		}, nil)
	if !res.TimedOut {
		t.Fatalf("TimedOut = false after %d runs; result %+v", runs, res)
	}
	if res.Exhausted {
		t.Error("Exhausted set on a timed-out search")
	}
	if res.Schedules == 0 {
		t.Error("no schedules completed before the deadline")
	}
}

// TestExploreNoTimeoutUnaffected: Timeout zero keeps the old behavior.
func TestExploreNoTimeoutUnaffected(t *testing.T) {
	res := explore.Schedules(explore.Options{}, runMJ(t, racyProgram), nil)
	if res.TimedOut {
		t.Error("TimedOut set with no timeout configured")
	}
	if !res.Exhausted {
		t.Error("small space not exhausted")
	}
}

// TestExploreTimeoutAlreadyExpired pins the expiry edge case: a
// deadline that passes before the first schedule starts must return
// TimedOut with zero schedules — not run the body, not claim
// exhaustion, and not record a racy witness.
func TestExploreTimeoutAlreadyExpired(t *testing.T) {
	ran := false
	res := explore.Schedules(explore.Options{Timeout: time.Nanosecond},
		func(c jrt.Chooser) int {
			// The nanosecond deadline has long passed by the time the
			// search loop makes its first check.
			time.Sleep(time.Millisecond)
			ran = true
			return 1
		}, nil)
	if ran && res.Schedules == 0 {
		t.Error("body ran but Schedules == 0")
	}
	if !res.TimedOut {
		t.Fatalf("TimedOut = false: %+v", res)
	}
	if res.Exhausted {
		t.Error("Exhausted set on a timed-out search")
	}
	if res.Schedules > 1 {
		t.Errorf("%d schedules completed against an expired deadline", res.Schedules)
	}
	if res.FirstRacy != nil && res.Racy == 0 {
		t.Errorf("FirstRacy %v without racy schedules", res.FirstRacy)
	}
}

// TestExploreTimeoutResultConsistency: however the race between the
// deadline and the first schedules resolves, the result counters stay
// mutually consistent (Racy <= Schedules, Truncated <= Schedules,
// never TimedOut and Exhausted together).
func TestExploreTimeoutResultConsistency(t *testing.T) {
	for _, d := range []time.Duration{time.Nanosecond, 100 * time.Microsecond, 50 * time.Millisecond} {
		res := explore.Schedules(explore.Options{MaxSchedules: 100, Timeout: d},
			runMJ(t, racyProgram), nil)
		if res.TimedOut && res.Exhausted {
			t.Errorf("timeout %v: both TimedOut and Exhausted set: %+v", d, res)
		}
		if res.Racy > res.Schedules || res.Truncated > res.Schedules {
			t.Errorf("timeout %v: inconsistent counters: %+v", d, res)
		}
		if res.Racy > 0 && res.FirstRacy == nil {
			t.Errorf("timeout %v: racy schedules but no FirstRacy witness", d)
		}
	}
}
