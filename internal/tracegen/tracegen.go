// Package tracegen generates random well-formed execution traces for
// property testing and benchmarking the race detectors.
//
// Generated traces respect the structural rules checked by
// event.Trace.Validate: lock acquires block on ownership, releases are
// performed by owners, forked threads act only after their fork, joined
// threads never act again. Within those rules the generator freely mixes
// lock-based, volatile-based, fork/join and transactional
// synchronization with unsynchronized accesses, so both racy and
// race-free traces are produced; detectors are expected to agree on
// which is which.
package tracegen

import (
	"math/rand"

	"goldilocks/internal/event"
)

// Config bounds the shape of generated traces.
type Config struct {
	// Steps is the number of actions to generate.
	Steps int
	// MaxThreads bounds the number of threads (including the initial
	// thread T1).
	MaxThreads int
	// Objects is the number of shared data objects; each has Fields
	// data fields.
	Objects int
	// Fields is the number of data fields per object.
	Fields int
	// Locks is the number of dedicated lock objects.
	Locks int
	// Volatiles is the number of volatile flags (fields of a globals
	// object).
	Volatiles int
	// TxnBias, in [0,1], is the probability that a generated data
	// operation is folded into a transaction commit instead of a plain
	// access pair.
	TxnBias float64
	// SyncBias, in [0,1], is the probability that a thread performs a
	// synchronization action rather than a data access at each step.
	SyncBias float64
	// SyncWeights, when non-nil, biases which synchronization action a
	// sync step performs; index with the Sync* constants. Nil keeps the
	// historical uniform choice bit-for-bit (pinned generator seeds stay
	// stable). The conformance fuzzer uses weights to steer generation
	// toward Figure 5 rules its coverage map says are under-exercised.
	SyncWeights []float64
	// Channels is the number of channel objects. Zero — the default, and
	// the only value the historical configurations used — generates no
	// channel operations and keeps pinned seeds bit-stable; positive
	// values add chmake/send/recv/close to the synchronization mix
	// (uniform over all kinds when SyncWeights is nil).
	Channels int
	// Regions, in [0,1], is the per-step probability that the acting
	// thread toggles an explicit atomic-region marker: txbegin when the
	// thread has no open region, txend otherwise. Markers feed the
	// serializability checker (internal/detectors/regiontrack) and are
	// no-ops for every race detector. Zero — the default — draws no
	// extra random numbers and keeps pinned generator seeds bit-stable.
	Regions float64
}

// Indexes into Config.SyncWeights: the synchronization action kinds a
// sync step chooses between.
const (
	SyncAcquire = iota // lock acquire (Figure 5 rule 3)
	SyncRelease        // lock release (rule 2)
	SyncVWrite         // volatile write (rule 4)
	SyncVRead          // volatile read (rule 5)
	SyncFork           // fork (rule 6)
	SyncJoin           // join (rule 7)
	SyncAlloc          // allocation (rule 8)
	// NumSyncKinds is the count of channel-free kinds: the nil-weights
	// uniform draw ranges over exactly these when Config.Channels is
	// zero, which keeps the historical pinned seeds bit-stable.
	NumSyncKinds
)

// The channel operation kinds occupy the indices after NumSyncKinds;
// they join the mix only when Config.Channels is positive.
const (
	SyncChanMake  = NumSyncKinds + iota // channel make (no rule)
	SyncChanSend                        // channel send (rule 10)
	SyncChanRecv                        // channel recv (rule 11)
	SyncChanClose                       // channel close (rule 12)
	// NumSyncKindsChan is the total kind count including channels.
	NumSyncKindsChan
)

// Default returns a configuration that produces small, densely
// interacting traces: few objects and locks, frequent handoffs — the
// regime where precise and imprecise detectors disagree most.
func Default() Config {
	return Config{
		Steps:      60,
		MaxThreads: 4,
		Objects:    3,
		Fields:     2,
		Locks:      2,
		Volatiles:  2,
		TxnBias:    0.2,
		SyncBias:   0.5,
	}
}

// CommitHeavy returns a configuration tuned for serializability
// checking: most data operations are transaction commits, and explicit
// region markers wrap multi-event spans, so the generated traces
// exercise the region graph (conflict cycles, open regions at trace
// cuts) rather than just the race rules.
func CommitHeavy() Config {
	c := Default()
	c.TxnBias = 0.6
	c.SyncBias = 0.35
	c.Regions = 0.15
	return c
}

// Object ids used by the generator: globals object is 1, data objects
// start at 10, lock objects at 100, channels at 1000.
const (
	globalsObj  event.Addr = 1
	dataObjBase event.Addr = 10
	lockObjBase event.Addr = 100
	chanObjBase event.Addr = 1000
)

type genThread struct {
	id    event.Tid
	alive bool
	held  map[event.Addr]int
}

// genChan mirrors event.ChanState so the generator only emits channel
// operations that pass Trace.Validate: a send needs buffer room on an
// open channel, a recv needs a message in flight or a closed channel.
type genChan struct {
	made   bool
	closed bool
	cap    int32
	sends  uint64
	recvs  uint64
}

func (c *genChan) width() uint64 {
	if c.cap > 0 {
		return uint64(c.cap)
	}
	return 1
}

func (c *genChan) canSend() bool { return c.made && !c.closed && c.sends-c.recvs < c.width() }
func (c *genChan) canRecv() bool { return c.made && (c.sends > c.recvs || c.closed) }

// Generate produces a well-formed trace from rng under cfg.
func Generate(rng *rand.Rand, cfg Config) *event.Trace {
	b := event.NewBuilder()
	threads := []*genThread{{id: 1, alive: true, held: map[event.Addr]int{}}}
	lockOwner := map[event.Addr]event.Tid{}
	nextTid := event.Tid(2)

	// The object pool starts with the static objects and grows with
	// fresh allocations (exercising rule 8: allocation resets
	// locksets). Allocations replace a random pool slot so later
	// accesses use the fresh object.
	pool := make([]event.Addr, cfg.Objects)
	for i := range pool {
		pool[i] = dataObjBase + event.Addr(i)
	}
	nextFresh := dataObjBase + event.Addr(cfg.Objects)

	// Channel pool (empty unless cfg.Channels > 0). pickChan scans from a
	// random start for the first channel satisfying ok, keeping the draw
	// deterministic in rng.
	chans := make([]genChan, cfg.Channels)
	pickChan := func(ok func(*genChan) bool) int {
		if len(chans) == 0 {
			return -1
		}
		start := rng.Intn(len(chans))
		for i := 0; i < len(chans); i++ {
			j := (start + i) % len(chans)
			if ok(&chans[j]) {
				return j
			}
		}
		return -1
	}

	alive := func() []*genThread {
		var out []*genThread
		for _, t := range threads {
			if t.alive {
				out = append(out, t)
			}
		}
		return out
	}

	randVar := func() event.Variable {
		o := pool[rng.Intn(len(pool))]
		f := event.FieldID(rng.Intn(cfg.Fields))
		return event.Variable{Obj: o, Field: f}
	}

	nkinds := NumSyncKinds
	if cfg.Channels > 0 {
		nkinds = NumSyncKindsChan
	}

	inRegion := map[event.Tid]bool{}

	for step := 0; step < cfg.Steps; step++ {
		live := alive()
		if len(live) == 0 {
			break
		}
		th := live[rng.Intn(len(live))]
		t := th.id

		// Region markers toggle per thread. A region left open when its
		// thread is joined (or at end of trace) is deliberate: Validate
		// is prefix-closed, and open regions are exactly what checkpoint
		// cuts and truncated streams produce.
		if cfg.Regions > 0 && rng.Float64() < cfg.Regions {
			if inRegion[t] {
				b.TxEnd(t)
			} else {
				b.TxBegin(t)
			}
			inRegion[t] = !inRegion[t]
			continue
		}

		if rng.Float64() < cfg.SyncBias {
			switch pickSync(rng, cfg.SyncWeights, nkinds) {
			case 0: // acquire a lock that is free or already ours
				l := lockObjBase + event.Addr(rng.Intn(cfg.Locks))
				if owner, held := lockOwner[l]; !held || owner == t {
					lockOwner[l] = t
					th.held[l]++
					b.Acquire(t, l)
				}
			case 1: // release a held lock
				for l, n := range th.held {
					if n > 0 {
						th.held[l]--
						if th.held[l] == 0 {
							delete(th.held, l)
							delete(lockOwner, l)
						}
						b.Release(t, l)
						break
					}
				}
			case 2: // volatile write
				if cfg.Volatiles > 0 {
					b.VolatileWrite(t, globalsObj, event.FieldID(rng.Intn(cfg.Volatiles)))
				}
			case 3: // volatile read
				if cfg.Volatiles > 0 {
					b.VolatileRead(t, globalsObj, event.FieldID(rng.Intn(cfg.Volatiles)))
				}
			case 4: // fork
				if len(threads) < cfg.MaxThreads {
					u := nextTid
					nextTid++
					threads = append(threads, &genThread{id: u, alive: true, held: map[event.Addr]int{}})
					b.Fork(t, u)
				}
			case 5: // terminate + join a peer holding no locks
				for _, peer := range threads {
					if peer.alive && peer.id != t && len(peer.held) == 0 {
						peer.alive = false
						b.Join(t, peer.id)
						break
					}
				}
			case 6: // allocate a fresh object into a random pool slot
				o := nextFresh
				nextFresh++
				pool[rng.Intn(len(pool))] = o
				b.Alloc(t, o)
			case SyncChanMake: // make an unmade channel, capacity 0..2
				if i := pickChan(func(c *genChan) bool { return !c.made }); i >= 0 {
					capacity := int32(rng.Intn(3))
					chans[i].made = true
					chans[i].cap = capacity
					b.ChanMake(t, chanObjBase+event.Addr(i), capacity)
				}
			case SyncChanSend: // send where a real send could complete
				if i := pickChan((*genChan).canSend); i >= 0 {
					chans[i].sends++
					b.ChanSend(t, chanObjBase+event.Addr(i))
				}
			case SyncChanRecv: // recv a message in flight, or drain a closed channel
				if i := pickChan((*genChan).canRecv); i >= 0 {
					if chans[i].sends > chans[i].recvs {
						chans[i].recvs++
					}
					b.ChanRecv(t, chanObjBase+event.Addr(i))
				}
			case SyncChanClose: // close a made, open channel
				if i := pickChan(func(c *genChan) bool { return c.made && !c.closed }); i >= 0 {
					chans[i].closed = true
					b.ChanClose(t, chanObjBase+event.Addr(i))
				}
			}
			continue
		}

		if rng.Float64() < cfg.TxnBias {
			// A transaction over 1..3 distinct variables.
			n := 1 + rng.Intn(3)
			seen := map[event.Variable]bool{}
			var reads, writes []event.Variable
			for i := 0; i < n; i++ {
				v := randVar()
				if seen[v] {
					continue
				}
				seen[v] = true
				if rng.Intn(2) == 0 {
					writes = append(writes, v)
				} else {
					reads = append(reads, v)
				}
			}
			if len(reads)+len(writes) > 0 {
				b.Commit(t, reads, writes)
			}
			continue
		}

		v := randVar()
		if rng.Intn(2) == 0 {
			b.Read(t, v.Obj, v.Field)
		} else {
			b.Write(t, v.Obj, v.Field)
		}
	}
	return b.Trace()
}

// pickSync chooses a synchronization action kind among the first n:
// uniformly when weights is nil (the historical behavior — one rng.Intn
// draw), by weight otherwise. Non-positive weights exclude a kind; an
// all-non-positive slice falls back to uniform.
func pickSync(rng *rand.Rand, weights []float64, n int) int {
	if weights == nil {
		return rng.Intn(n)
	}
	total := 0.0
	for i := 0; i < n && i < len(weights); i++ {
		if weights[i] > 0 {
			total += weights[i]
		}
	}
	if total <= 0 {
		return rng.Intn(n)
	}
	x := rng.Float64() * total
	for i := 0; i < n && i < len(weights); i++ {
		if weights[i] <= 0 {
			continue
		}
		x -= weights[i]
		if x < 0 {
			return i
		}
	}
	return n - 1
}

// FromSeed generates a trace deterministically from a seed with the
// default configuration.
func FromSeed(seed int64) *event.Trace {
	return Generate(rand.New(rand.NewSource(seed)), Default())
}

// FromSeedConfig generates a trace deterministically from a seed under
// cfg.
func FromSeedConfig(seed int64, cfg Config) *event.Trace {
	return Generate(rand.New(rand.NewSource(seed)), cfg)
}
