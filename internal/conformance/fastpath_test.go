package conformance

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"goldilocks/internal/event"
	"goldilocks/internal/scenarios"
	"goldilocks/internal/tracegen"
)

// TestFastPathParityCorpus replays the entire seed corpus — the Section
// 2 scenarios, every checked-in counterexample, and a sweep of
// generated traces with and without channel operations — through the
// FastPath on/off differential. Zero divergences in verdicts,
// provenance, Stats, and rule fires is the acceptance gate for the
// epoch fast path.
func TestFastPathParityCorpus(t *testing.T) {
	traces := make(map[string]*event.Trace)
	for _, sc := range scenarios.All() {
		traces["scenario-"+sc.Name] = sc.Trace
	}
	entries, err := LoadCorpus("testdata")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	for _, e := range entries {
		traces["corpus-"+strings.TrimSuffix(e.Name, ".jsonl")] = e.Trace
	}
	// Generated sweep: plain, transaction-heavy, and channel-heavy
	// shapes, so the parity gate covers every synchronization vocabulary
	// (the channel seeds matter: channel handoff is an escalation
	// trigger the scenario corpus alone underexercises).
	for seed := int64(0); seed < 24; seed++ {
		cfg := tracegen.Default()
		cfg.Channels = int(seed) % 4
		if seed%3 == 1 {
			cfg.TxnBias = 0.5
		}
		traces[fmt.Sprintf("generated-%d-ch%d", seed, cfg.Channels)] = tracegen.FromSeedConfig(seed, cfg)
	}
	for name, tr := range traces {
		if d := FastPathParity(tr); d != nil {
			t.Errorf("%s: %v\n%s", name, d, Describe(d.Trace))
		}
	}
}

// FuzzFastPathParity is the native fuzz target for the epoch fast
// path: fuzz-chosen generator shapes (including channel traffic, the
// richest source of ownership transfers) must never produce a trace on
// which the fast path changes anything observable. Wired into the
// nightly CI fuzz job alongside FuzzConformanceMatrix.
func FuzzFastPathParity(f *testing.F) {
	f.Add(int64(1), uint8(60), uint8(4), uint8(3), uint8(51), uint8(128), uint8(0))
	f.Add(int64(42), uint8(80), uint8(5), uint8(2), uint8(153), uint8(100), uint8(2))
	f.Add(int64(7), uint8(110), uint8(6), uint8(2), uint8(0), uint8(220), uint8(3))
	f.Add(int64(23), uint8(90), uint8(5), uint8(3), uint8(102), uint8(180), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, steps, threads, objects, txnBias, syncBias, channels uint8) {
		cfg := tracegen.Config{
			Steps:      1 + int(steps)%120,
			MaxThreads: 1 + int(threads)%6,
			Objects:    1 + int(objects)%4,
			Fields:     2,
			Locks:      2,
			Volatiles:  2,
			TxnBias:    float64(txnBias) / 255,
			SyncBias:   float64(syncBias) / 255,
			Channels:   int(channels) % 4,
		}
		tr := tracegen.Generate(rand.New(rand.NewSource(seed)), cfg)
		if d := FastPathParity(tr); d != nil {
			t.Fatalf("%v\n%s", d, Describe(d.Trace))
		}
	})
}
