package conformance

import (
	"goldilocks/internal/event"
)

// This file minimizes failing traces with delta debugging. The
// interesting predicate is arbitrary (matrix divergence, a mutant
// engine disagreeing, a crash reproducer); candidates that fail
// event.Trace.Validate are simply not interesting — the structural
// rules do the repair work, no special-case surgery needed.
//
// Three passes run to fixpoint:
//
//  1. ddmin over the action sequence (classic Zeller/Hildebrandt:
//     try removing complements of ever-finer chunks),
//  2. a greedy single-action removal sweep (catches what ddmin's
//     chunking misses),
//  3. commit-set member removal (a commit over three variables often
//     fails because of one of them).
//
// The result is 1-minimal modulo validity: no single action and no
// single commit-set member can be removed without losing the failure.

// shrinkBudget caps predicate evaluations per Shrink call; minimization
// is best-effort within the budget (the budget is generous — typical
// fuzzer counterexamples minimize in well under a thousand runs).
const shrinkBudget = 20000

type shrinker struct {
	failing func(*event.Trace) bool
	budget  int
}

// interesting reports whether the candidate action sequence still
// reproduces the failure. Invalid traces never do.
func (s *shrinker) interesting(actions []event.Action) bool {
	if s.budget <= 0 || len(actions) == 0 {
		return false
	}
	s.budget--
	tr := traceFrom(actions)
	if tr.Validate() != nil {
		return false
	}
	return s.failing(tr)
}

// Shrink minimizes tr while failing keeps returning true. The failing
// predicate must be deterministic; it is never called with an invalid
// trace. Shrink returns tr unchanged if it does not fail to begin with.
func Shrink(tr *event.Trace, failing func(*event.Trace) bool) *event.Trace {
	s := &shrinker{failing: failing, budget: shrinkBudget}
	actions := cloneActions(tr)
	if !s.interesting(actions) {
		return tr
	}
	for {
		before := measure(actions)
		actions = s.ddmin(actions)
		actions = s.greedy(actions)
		actions = s.shrinkCommits(actions)
		if measure(actions) == before || s.budget <= 0 {
			break
		}
	}
	return traceFrom(actions)
}

// measure is the minimization objective: total actions plus commit-set
// members (so shrinking a commit's read set counts as progress even
// when the action count is unchanged).
func measure(actions []event.Action) int {
	n := len(actions)
	for _, a := range actions {
		n += len(a.Reads) + len(a.Writes)
	}
	return n
}

// ddmin is the classic delta-debugging minimization over the action
// sequence.
func (s *shrinker) ddmin(actions []event.Action) []event.Action {
	n := 2
	for len(actions) >= 2 {
		chunk := (len(actions) + n - 1) / n
		reduced := false
		for start := 0; start < len(actions); start += chunk {
			end := start + chunk
			if end > len(actions) {
				end = len(actions)
			}
			// Try the complement: everything except [start, end).
			cand := make([]event.Action, 0, len(actions)-(end-start))
			cand = append(cand, actions[:start]...)
			cand = append(cand, actions[end:]...)
			if s.interesting(cand) {
				actions = cand
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(actions) {
				break
			}
			n = min(n*2, len(actions))
		}
		if s.budget <= 0 {
			break
		}
	}
	return actions
}

// greedy removes single actions until no single removal reproduces the
// failure.
func (s *shrinker) greedy(actions []event.Action) []event.Action {
	for again := true; again; {
		again = false
		for i := 0; i < len(actions); i++ {
			cand := make([]event.Action, 0, len(actions)-1)
			cand = append(cand, actions[:i]...)
			cand = append(cand, actions[i+1:]...)
			if s.interesting(cand) {
				actions = cand
				again = true
				i--
			}
		}
	}
	return actions
}

// shrinkCommits removes individual members of commit read/write sets.
func (s *shrinker) shrinkCommits(actions []event.Action) []event.Action {
	for i := range actions {
		if actions[i].Kind != event.KindCommit {
			continue
		}
		drop := func(set []event.Variable, j int) []event.Variable {
			out := make([]event.Variable, 0, len(set)-1)
			out = append(out, set[:j]...)
			out = append(out, set[j+1:]...)
			return out
		}
		for j := 0; j < len(actions[i].Reads); j++ {
			cand := cloneSlice(actions)
			cand[i].Reads = drop(cand[i].Reads, j)
			if s.interesting(cand) {
				actions = cand
				j--
			}
		}
		for j := 0; j < len(actions[i].Writes); j++ {
			cand := cloneSlice(actions)
			cand[i].Writes = drop(cand[i].Writes, j)
			if s.interesting(cand) {
				actions = cand
				j--
			}
		}
	}
	return actions
}

func cloneSlice(actions []event.Action) []event.Action {
	out := make([]event.Action, len(actions))
	for i, a := range actions {
		if a.Kind == event.KindCommit {
			a.Reads = append([]event.Variable(nil), a.Reads...)
			a.Writes = append([]event.Variable(nil), a.Writes...)
		}
		out[i] = a
	}
	return out
}
