package conformance

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/regiontrack"
	"goldilocks/internal/event"
	"goldilocks/internal/tracegen"
)

// TestRegionTrackBackendOnSeedCorpus runs the RegionTrack backend
// through CheckBackend over every checked-in counterexample: race
// verdicts and rule fires must match the spec engine exactly.
func TestRegionTrackBackendOnSeedCorpus(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("testdata"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no seed corpus under testdata/")
	}
	backend := RegionTrackBackend(regiontrack.DefaultOptions())
	for _, e := range entries {
		if d := CheckBackend("regiontrack", backend, e.Trace); d != nil {
			t.Fatalf("%s: %v\n%s", e.Name, d, Describe(e.Trace))
		}
	}
}

// TestRegionTrackBackendGenerated is the differential acceptance run:
// commit-weighted generated traces (explicit region markers, mostly
// transactional data operations) through CheckBackend, with zero
// divergences allowed. The full battery is 5000 traces; -short trims it
// to keep the tier-1 suite fast.
func TestRegionTrackBackendGenerated(t *testing.T) {
	n := 5000
	if testing.Short() {
		n = 400
	}
	cfg := tracegen.CommitHeavy()
	backend := RegionTrackBackend(regiontrack.DefaultOptions())
	markers := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		tr := tracegen.FromSeedConfig(seed, cfg)
		for i := 0; i < tr.Len(); i++ {
			if tr.At(i).Kind.IsMarker() {
				markers++
				break
			}
		}
		if d := CheckBackend("regiontrack", backend, tr); d != nil {
			t.Fatalf("seed %d: %v\n%s", seed, d, Describe(tr))
		}
		if d := CheckSerializability(tr); d != nil {
			t.Fatalf("seed %d: %v\n%s", seed, d, Describe(tr))
		}
	}
	// The battery is pointless if the generator stopped emitting markers.
	if markers < n/2 {
		t.Fatalf("only %d/%d traces carried region markers — CommitHeavy regressed", markers, n)
	}
}

// TestMatrixOnMarkedSeeds runs commit-weighted marked traces through
// the complete differential matrix: markers must be invisible to every
// race backend and invariant.
func TestMatrixOnMarkedSeeds(t *testing.T) {
	cfg := tracegen.CommitHeavy()
	for seed := int64(1); seed <= 30; seed++ {
		if d := Check(tracegen.FromSeedConfig(seed, cfg)); d != nil {
			t.Fatalf("seed %d: %v\n%s", seed, d, Describe(d.Trace))
		}
	}
}

// TestMarkersInvisibleToRaceVerdicts is the direct statement of marker
// transparency: stripping every marker from a trace changes no race
// verdict and no rule-fire count.
func TestMarkersInvisibleToRaceVerdicts(t *testing.T) {
	cfg := tracegen.CommitHeavy()
	backend := RegionTrackBackend(regiontrack.DefaultOptions())
	for seed := int64(1); seed <= 50; seed++ {
		tr := tracegen.FromSeedConfig(seed, cfg)
		var bare []event.Action
		for i := 0; i < tr.Len(); i++ {
			if a := tr.At(i); !a.Kind.IsMarker() {
				bare = append(bare, a)
			}
		}
		marked, err := backend(tr)
		if err != nil {
			t.Fatal(err)
		}
		stripped, err := backend(event.NewTrace(bare))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := raceKeysIgnoringPos(marked.Races), raceKeysIgnoringPos(stripped.Races); !equalKeys(got, want) {
			t.Fatalf("seed %d: marked races %v, stripped %v", seed, got, want)
		}
		if marked.RuleFires != stripped.RuleFires {
			t.Fatalf("seed %d: marked fires %v, stripped %v", seed, marked.RuleFires, stripped.RuleFires)
		}
	}
}

// raceKeysIgnoringPos keys races by variable and completing access only
// — stripping markers shifts linearization positions, so positional
// keys cannot be compared across the two runs.
func raceKeysIgnoringPos(races []detect.Race) []string {
	keys := make([]string, len(races))
	for i, r := range races {
		keys[i] = r.Var.String() + "@" + r.Access.String()
	}
	sort.Strings(keys)
	return keys
}

// TestMutationPreservesMarkerBalance hammers the mutator on marked
// traces: every mutation (including drops, swaps, and moves that could
// orphan a txend) must keep the trace valid.
func TestMutationPreservesMarkerBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := tracegen.FromSeedConfig(3, tracegen.CommitHeavy())
	for i := 0; i < 300; i++ {
		tr = Mutate(rng, tr)
		if err := tr.Validate(); err != nil {
			t.Fatalf("mutation %d invalid: %v", i, err)
		}
	}
}
