package conformance

import (
	"fmt"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
)

// Backend runs a trace through an external detector — typically a
// goldilocksd session over TCP — and returns its verdicts. Race
// positions must be global linearization indices, so the keys are
// directly comparable to an in-process run.
type Backend func(tr *event.Trace) (BackendResult, error)

// BackendResult is what an external backend reports for one trace.
type BackendResult struct {
	// Races are the verdicts, with global linearization positions.
	Races []detect.Race
	// RuleFires are the Figure 5 rule-fire counts (indexed 1..9), when
	// the backend exposes them.
	RuleFires [obs.NumRules + 1]uint64
	// HasRuleFires reports whether RuleFires was populated.
	HasRuleFires bool
}

// CheckBackend extends the differential matrix across a process
// boundary: it runs tr through the executable specification in-process
// and through the external backend, and reports a divergence unless the
// verdict sets — and, when exposed, the Figure 5 rule-fire counts — are
// identical. This is how the harness proves daemon verdicts ≡
// in-process verdicts (ISSUE 5 acceptance).
func CheckBackend(name string, backend Backend, tr *event.Trace) *Divergence {
	fail := func(format string, args ...any) *Divergence {
		return &Divergence{Backend: name, Detail: fmt.Sprintf(format, args...), Trace: tr}
	}
	if err := tr.Validate(); err != nil {
		return fail("invalid trace: %v", err)
	}
	specTel := obs.NewTelemetry()
	spec := core.NewSpecEngine()
	spec.SetTelemetry(specTel)
	specKeys := raceKeys(detect.RunTrace(spec, tr))
	specFires := specTel.RuleFires()

	got, err := backend(tr)
	if err != nil {
		return fail("backend error: %v", err)
	}
	if keys := raceKeys(got.Races); !equalKeys(keys, specKeys) {
		return fail("races %v, spec %v", keys, specKeys)
	}
	if got.HasRuleFires && got.RuleFires != specFires {
		return fail("rule fires %v, spec %v", got.RuleFires, specFires)
	}
	return nil
}
