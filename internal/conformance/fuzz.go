package conformance

import (
	"math/rand"

	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/tracegen"
)

// This file is the coverage-guided fuzzing loop. Coverage is semantic,
// not branch-based: a trace's signature is which Figure 5 rules fired
// (a 12-bit mask from the spec engine's telemetry, including the
// channel rules 10–12), whether it raced, how many races, and a
// thread-count bucket. Traces with a never-seen signature join the
// corpus and become mutation parents; generation is steered toward
// rules the batch has under-exercised by biasing tracegen's
// synchronization-kind weights. The combination drives the batch to
// cover all rules quickly — including rule 9 (commit), which uniform
// generation starves at low TxnBias.

// signature is the semantic coverage key of one trace execution.
type signature struct {
	rules   uint16 // bit r set when Figure 5 rule r fired at least once
	racy    bool
	raceCnt int // number of races, capped
	threads int
}

func signatureOf(res Result) signature {
	var sig signature
	for r := 1; r <= obs.NumRules; r++ {
		if res.RuleFires[r] > 0 {
			sig.rules |= 1 << uint(r)
		}
	}
	sig.racy = res.Racy
	sig.raceCnt = min(res.Races, 4)
	sig.threads = min(res.Threads, 5)
	return sig
}

// Fuzzer runs traces through the conformance matrix, keeps a corpus of
// coverage-novel traces, and steers generation toward under-covered
// rules. It is deterministic for a given seed.
type Fuzzer struct {
	rng    *rand.Rand
	gen    tracegen.Config
	seen   map[signature]bool
	corpus []*event.Trace

	// Executed counts matrix runs; Racy counts ground-truth-racy traces.
	Executed int
	Racy     int
	// RuleFires accumulates total rule firings; RuleTraces counts traces
	// on which each rule fired at least once (the "no zero rows"
	// acceptance metric).
	RuleFires  [obs.NumRules + 1]uint64
	RuleTraces [obs.NumRules + 1]int
	// Failures collects every divergence found.
	Failures []*Divergence
}

// NewFuzzer returns a fuzzer seeded deterministically. cfg bounds the
// generated traces; a zero cfg gets tracegen.Default() plus two
// channels, so a default batch covers the channel rules 10–12 too.
func NewFuzzer(seed int64, cfg tracegen.Config) *Fuzzer {
	if cfg.Steps == 0 {
		cfg = tracegen.Default()
		cfg.Channels = 2
	}
	return &Fuzzer{
		rng:  rand.New(rand.NewSource(seed)),
		gen:  cfg,
		seen: make(map[signature]bool),
	}
}

// CorpusSize returns the number of coverage-novel traces retained.
func (f *Fuzzer) CorpusSize() int { return len(f.corpus) }

// NewCoverage returns the number of distinct coverage signatures seen.
func (f *Fuzzer) NewCoverage() int { return len(f.seen) }

// mutateFraction is the share of iterations that mutate a corpus parent
// instead of generating a fresh trace (once a corpus exists).
const mutateFraction = 0.5

// Next produces the next input: a mutation of a coverage-novel corpus
// member half the time, a freshly generated trace (rule-steered)
// otherwise.
func (f *Fuzzer) Next() *event.Trace {
	if len(f.corpus) > 0 && f.rng.Float64() < mutateFraction {
		parent := f.corpus[f.rng.Intn(len(f.corpus))]
		return Mutate(f.rng, parent)
	}
	cfg := f.gen
	cfg.SyncWeights = f.steerWeights()
	if f.RuleTraces[obs.RuleCommit] == 0 && f.Executed > 0 {
		// Rule 9 is reached through commits, not sync-kind choice.
		cfg.TxnBias = 0.5
	}
	return tracegen.Generate(f.rng, cfg)
}

// steerWeights biases the generator's synchronization-kind choice
// toward rules with few covering traces so far: each kind's weight is
// inversely proportional to how often its rule has been hit. Before
// anything has run the weights are uniform (nil).
func (f *Fuzzer) steerWeights() []float64 {
	if f.Executed == 0 {
		return nil
	}
	// tracegen sync kind -> Figure 5 rule exercised by that kind. A
	// chmake fires no rule itself, but is the structural prerequisite of
	// every channel op, so it rides on the least-covered channel rule.
	// When the configuration generates no channels, the generator only
	// consults the first NumSyncKinds entries and the channel weights
	// are inert.
	ruleOfKind := [tracegen.NumSyncKindsChan]int{
		tracegen.SyncAcquire:   obs.RuleAcquire,
		tracegen.SyncRelease:   obs.RuleRelease,
		tracegen.SyncVWrite:    obs.RuleVolatileWrite,
		tracegen.SyncVRead:     obs.RuleVolatileRead,
		tracegen.SyncFork:      obs.RuleFork,
		tracegen.SyncJoin:      obs.RuleJoin,
		tracegen.SyncAlloc:     obs.RuleAlloc,
		tracegen.SyncChanMake:  obs.RuleChanSend,
		tracegen.SyncChanSend:  obs.RuleChanSend,
		tracegen.SyncChanRecv:  obs.RuleChanRecv,
		tracegen.SyncChanClose: obs.RuleChanClose,
	}
	w := make([]float64, tracegen.NumSyncKindsChan)
	for k, rule := range ruleOfKind {
		w[k] = 1.0 / (1.0 + float64(f.RuleTraces[rule]))
	}
	least := f.RuleTraces[obs.RuleChanSend]
	for _, r := range []int{obs.RuleChanRecv, obs.RuleChanClose} {
		if f.RuleTraces[r] < least {
			least = f.RuleTraces[r]
		}
	}
	w[tracegen.SyncChanMake] = 1.0 / (1.0 + float64(least))
	return w
}

// Step runs one fuzzing iteration: produce an input, execute the
// matrix, fold the outcome into coverage. It returns the divergence
// found on this input, or nil.
func (f *Fuzzer) Step() *Divergence {
	tr := f.Next()
	res := Run(tr)
	f.Observe(tr, res)
	return res.Div
}

// Observe folds one executed result into the fuzzer's coverage state.
// Exported so a caller that runs the matrix itself (e.g. to interleave
// shrinking or parallel execution) can still feed the guidance map.
func (f *Fuzzer) Observe(tr *event.Trace, res Result) {
	f.Executed++
	if res.Racy {
		f.Racy++
	}
	for r := 1; r <= obs.NumRules; r++ {
		f.RuleFires[r] += res.RuleFires[r]
		if res.RuleFires[r] > 0 {
			f.RuleTraces[r]++
		}
	}
	if res.Div != nil {
		// Divergent traces never join the corpus — they become
		// counterexamples instead.
		f.Failures = append(f.Failures, res.Div)
		return
	}
	if sig := signatureOf(res); !f.seen[sig] {
		f.seen[sig] = true
		f.corpus = append(f.corpus, tr)
	}
}

// Run executes n fuzzing iterations and returns the divergences found
// (also retained in f.Failures).
func (f *Fuzzer) Run(n int) []*Divergence {
	start := len(f.Failures)
	for i := 0; i < n; i++ {
		f.Step()
	}
	return f.Failures[start:]
}
