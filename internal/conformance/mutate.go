package conformance

import (
	"math/rand"

	"goldilocks/internal/event"
)

// This file implements validity-preserving trace mutation for the
// coverage-guided fuzzer. Mutations are generate-and-filter: a candidate
// edit is applied to the action sequence and kept only if the result
// still passes event.Trace.Validate (lock ownership, fork-before-act,
// no alloc-after-access). Invalid candidates are cheap to discard — the
// validator is a single linear pass — and filtering keeps the mutation
// operators simple and composable instead of entangling each with the
// well-formedness rules.

// traceFrom rebuilds a Trace from an action slice.
func traceFrom(actions []event.Action) *event.Trace {
	b := event.NewBuilder()
	for _, a := range actions {
		b.Append(a)
	}
	return b.Trace()
}

// cloneActions deep-copies an action slice; commit read/write sets are
// copied too so mutations never alias the parent trace.
func cloneActions(tr *event.Trace) []event.Action {
	out := make([]event.Action, tr.Len())
	for i := range out {
		a := tr.At(i)
		if a.Kind == event.KindCommit {
			a.Reads = append([]event.Variable(nil), a.Reads...)
			a.Writes = append([]event.Variable(nil), a.Writes...)
		}
		out[i] = a
	}
	return out
}

// mutateAttempts bounds how many candidate edits Mutate tries before
// giving up and returning the parent unchanged.
const mutateAttempts = 8

// Mutate returns a valid mutation of tr, or tr itself if no candidate
// survived validation. The operator mix deliberately favors structural
// edits (drop, duplicate, swap, retarget) that move events across
// synchronization boundaries — the edits most likely to flip a verdict
// or exercise a different Figure 5 rule sequence.
func Mutate(rng *rand.Rand, tr *event.Trace) *event.Trace {
	if tr.Len() == 0 {
		return tr
	}
	for try := 0; try < mutateAttempts; try++ {
		actions := cloneActions(tr)
		switch rng.Intn(7) {
		case 0: // drop one action
			i := rng.Intn(len(actions))
			actions = append(actions[:i], actions[i+1:]...)
		case 1: // duplicate one action at another position
			i := rng.Intn(len(actions))
			j := rng.Intn(len(actions) + 1)
			a := actions[i]
			actions = append(actions, event.Action{})
			copy(actions[j+1:], actions[j:])
			actions[j] = a
		case 2: // swap two adjacent actions
			if len(actions) < 2 {
				continue
			}
			i := rng.Intn(len(actions) - 1)
			actions[i], actions[i+1] = actions[i+1], actions[i]
		case 3: // move an action by a small offset
			i := rng.Intn(len(actions))
			d := 1 + rng.Intn(4)
			if rng.Intn(2) == 0 {
				d = -d
			}
			j := i + d
			if j < 0 || j >= len(actions) {
				continue
			}
			a := actions[i]
			actions = append(actions[:i], actions[i+1:]...)
			actions = append(actions, event.Action{})
			copy(actions[j+1:], actions[j:])
			actions[j] = a
		case 4: // retarget: hand an action to a different trace thread
			i := rng.Intn(len(actions))
			threads := tr.Threads()
			if len(threads) < 2 {
				continue
			}
			actions[i].Thread = threads[rng.Intn(len(threads))]
		case 5: // flip a data access between read and write
			i := rng.Intn(len(actions))
			switch actions[i].Kind {
			case event.KindRead:
				actions[i].Kind = event.KindWrite
			case event.KindWrite:
				actions[i].Kind = event.KindRead
			default:
				continue
			}
		case 6: // commitify: fold a plain access into a transaction commit
			i := rng.Intn(len(actions))
			a := actions[i]
			if !a.Kind.IsData() {
				continue
			}
			c := event.Action{Kind: event.KindCommit, Thread: a.Thread}
			if a.Kind == event.KindWrite {
				c.Writes = []event.Variable{a.Variable()}
			} else {
				c.Reads = []event.Variable{a.Variable()}
			}
			actions[i] = c
		}
		if len(actions) == 0 {
			continue
		}
		mut := traceFrom(actions)
		if mut.Validate() == nil {
			return mut
		}
	}
	return tr
}
