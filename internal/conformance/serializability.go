package conformance

import (
	"bytes"
	"fmt"
	"reflect"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/regiontrack"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
)

// This file registers the RegionTrack serializability checker in the
// differential matrix. Its race side is an embedded core.Engine, so the
// race verdicts must be key-for-key (and rule-fire-for-rule-fire)
// identical to the executable specification on every trace; its
// serializability side has no second implementation to diff against, so
// it is gated by self-invariants instead: the incremental cycle
// detector must agree with an independent whole-graph Kahn pass, a
// marker-free trace without lock regions (all-unary regions) must
// always be serializable, reruns must be deterministic, and a
// checkpoint/restore cut must not move a verdict.

// RegionTrackBackend adapts the composed checker to the cross-process
// differential interface, with telemetry attached so CheckBackend also
// compares the Figure 5 rule-fire counts against the spec engine's.
func RegionTrackBackend(opts regiontrack.Options) Backend {
	return func(tr *event.Trace) (BackendResult, error) {
		o := opts
		o.Engine.Telemetry = obs.NewTelemetry()
		races := detect.RunTrace(regiontrack.New(o), tr)
		return BackendResult{
			Races:        races,
			RuleFires:    o.Engine.Telemetry.RuleFires(),
			HasRuleFires: true,
		}, nil
	}
}

// CheckSerializability runs tr through the RegionTrack checker (in both
// marker-only and LockRegions modes) and verifies every serializability
// self-invariant. It returns the first divergence found, or nil.
func CheckSerializability(tr *event.Trace) *Divergence {
	fail := func(format string, args ...any) *Divergence {
		return &Divergence{Backend: "regiontrack-invariants", Detail: fmt.Sprintf(format, args...), Trace: tr}
	}
	if err := tr.Validate(); err != nil {
		return fail("invalid trace: %v", err)
	}

	hasMarkers := false
	for i := 0; i < tr.Len(); i++ {
		if tr.At(i).Kind.IsMarker() {
			hasMarkers = true
			break
		}
	}

	for _, mode := range []struct {
		name string
		lock bool
	}{{"markers", false}, {"lock-regions", true}} {
		opts := regiontrack.DefaultOptions()
		opts.LockRegions = mode.lock

		// Stepwise run: the violation count may only grow, so a
		// non-serializable prefix can never become serializable again.
		ch := regiontrack.New(opts)
		prevCount := 0
		for i := 0; i < tr.Len(); i++ {
			ch.Step(tr.At(i))
			if n := ch.ViolationCount(); n < prevCount {
				return fail("%s: violation count shrank %d -> %d at %d", mode.name, prevCount, n, i)
			} else {
				prevCount = n
			}
		}
		if ch.Acyclic() != ch.Serializable() {
			return fail("%s: Kahn acyclicity %v but incremental verdict %v",
				mode.name, ch.Acyclic(), ch.Serializable())
		}
		if !mode.lock && !hasMarkers && !ch.Serializable() {
			return fail("markers: all-unary trace judged non-serializable: %+v", ch.Summarize())
		}

		// Determinism: a fresh rerun lands on the identical summary.
		_, again := regiontrack.Check(tr, opts)
		if !reflect.DeepEqual(ch.Summarize(), again) {
			return fail("%s: rerun diverged:\n  first %+v\n  again %+v", mode.name, ch.Summarize(), again)
		}

		// Checkpoint cut at the midpoint — mid-region for many generated
		// traces — must converge to the same summary and final snapshot.
		cut := tr.Len() / 2
		half := regiontrack.New(opts)
		for i := 0; i < cut; i++ {
			half.Step(tr.At(i))
		}
		var snap bytes.Buffer
		if err := half.Checkpoint(&snap); err != nil {
			return fail("%s: checkpoint at %d: %v", mode.name, cut, err)
		}
		rest, err := regiontrack.Restore(bytes.NewReader(snap.Bytes()), core.RestoreAttach{})
		if err != nil {
			return fail("%s: restore at %d: %v", mode.name, cut, err)
		}
		for i := cut; i < tr.Len(); i++ {
			rest.Step(tr.At(i))
		}
		if !reflect.DeepEqual(ch.Summarize(), rest.Summarize()) {
			return fail("%s: restored run diverged at cut %d:\n  full %+v\n  restored %+v",
				mode.name, cut, ch.Summarize(), rest.Summarize())
		}
	}
	return nil
}

// checkRegionTrackRaces gates the checker's race side against the spec
// keys the matrix already computed: composing the serializability graph
// with the engine must not move a single race verdict.
func checkRegionTrackRaces(tr *event.Trace, specKeys []string) *Divergence {
	got := raceKeys(detect.RunTrace(regiontrack.New(regiontrack.DefaultOptions()), tr))
	if !equalKeys(got, specKeys) {
		return &Divergence{
			Backend: "regiontrack",
			Detail:  fmt.Sprintf("races %v, spec %v", got, specKeys),
			Trace:   tr,
		}
	}
	return nil
}
