// Command gen regenerates the seed counterexample corpus under
// internal/conformance/testdata/: for every droppable Figure 5 rule it
// finds and minimizes a trace witnessing that rule's removal (the
// mutation-testing counterexamples), plus the Section 2 scenario
// traces. The corpus is deterministic; running gen twice writes the
// same content-addressed files.
//
// Usage: go run ./internal/conformance/gen [-dir internal/conformance/testdata]
package main

import (
	"flag"
	"fmt"
	"os"

	"goldilocks/internal/conformance"
	"goldilocks/internal/obs"
	"goldilocks/internal/scenarios"
)

func main() {
	dir := flag.String("dir", "internal/conformance/testdata", "corpus directory")
	flag.Parse()

	for _, sc := range scenarios.All() {
		path, err := conformance.WriteCounterexample(*dir, sc.Trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gen: scenario %s: %v\n", sc.Name, err)
			os.Exit(1)
		}
		fmt.Printf("scenario %-10s -> %s (%d events)\n", sc.Name, path, sc.Trace.Len())
	}

	for _, rule := range conformance.MutantRules {
		tr, ok := conformance.FindMutantCounterexample(rule, 1, 500)
		if !ok {
			fmt.Fprintf(os.Stderr, "gen: rule %d (%s): no counterexample found\n", rule, obs.RuleName(rule))
			os.Exit(1)
		}
		path, err := conformance.WriteCounterexample(*dir, tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gen: rule %d: %v\n", rule, err)
			os.Exit(1)
		}
		fmt.Printf("rule %d %-14s -> %s (%d events)\n", rule, obs.RuleName(rule), path, tr.Len())
	}
}
