package conformance

import (
	"math/rand"
	"testing"

	"goldilocks/internal/tracegen"
)

// FuzzConformanceMatrix is the native fuzzing entry point: the fuzz
// engine drives the generator's seed and shape parameters, and every
// generated trace must clear the full differential matrix. Run with
//
//	go test -fuzz FuzzConformanceMatrix ./internal/conformance
//
// The parameters are clamped to small dense traces — the regime where
// detectors disagree — so machine time goes into semantic diversity,
// not trace length.
func FuzzConformanceMatrix(f *testing.F) {
	f.Add(int64(1), uint8(60), uint8(4), uint8(3), uint8(51), uint8(128), uint8(0))
	f.Add(int64(42), uint8(80), uint8(5), uint8(2), uint8(153), uint8(100), uint8(0))
	f.Add(int64(7), uint8(30), uint8(2), uint8(1), uint8(0), uint8(200), uint8(0))
	f.Add(int64(11), uint8(70), uint8(4), uint8(2), uint8(51), uint8(160), uint8(2))
	f.Add(int64(23), uint8(90), uint8(5), uint8(3), uint8(102), uint8(180), uint8(1))
	f.Add(int64(5), uint8(50), uint8(3), uint8(2), uint8(0), uint8(220), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, steps, threads, objects, txnBias, syncBias, channels uint8) {
		cfg := tracegen.Config{
			Steps:      1 + int(steps)%120,
			MaxThreads: 1 + int(threads)%6,
			Objects:    1 + int(objects)%4,
			Fields:     2,
			Locks:      2,
			Volatiles:  2,
			TxnBias:    float64(txnBias) / 255,
			SyncBias:   float64(syncBias) / 255,
			Channels:   int(channels) % 4,
		}
		tr := tracegen.Generate(rand.New(rand.NewSource(seed)), cfg)
		if d := Check(tr); d != nil {
			t.Fatalf("%v\n%s", d, Describe(d.Trace))
		}
	})
}

// FuzzSerializabilityMatrix drives commit-weighted, marker-bearing
// generation: every trace must clear the full matrix (which includes
// the RegionTrack race-parity check) and the serializability
// self-invariants. Run with
//
//	go test -fuzz FuzzSerializabilityMatrix ./internal/conformance
func FuzzSerializabilityMatrix(f *testing.F) {
	f.Add(int64(1), uint8(60), uint8(4), uint8(153), uint8(38), uint8(0))
	f.Add(int64(42), uint8(90), uint8(5), uint8(204), uint8(64), uint8(2))
	f.Add(int64(7), uint8(40), uint8(2), uint8(255), uint8(128), uint8(0))
	f.Add(int64(23), uint8(110), uint8(6), uint8(102), uint8(13), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, steps, threads, txnBias, regions, channels uint8) {
		cfg := tracegen.CommitHeavy()
		cfg.Steps = 1 + int(steps)%120
		cfg.MaxThreads = 1 + int(threads)%6
		cfg.TxnBias = float64(txnBias) / 255
		cfg.Regions = float64(regions) / 255
		cfg.Channels = int(channels) % 4
		tr := tracegen.Generate(rand.New(rand.NewSource(seed)), cfg)
		if d := Check(tr); d != nil {
			t.Fatalf("%v\n%s", d, Describe(d.Trace))
		}
	})
}

// FuzzMutatedTraces drives the trace mutator from fuzz-chosen seeds
// (with and without channel operations in the parent trace): every
// mutation chain must stay valid and keep clearing the matrix.
func FuzzMutatedTraces(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(5), uint8(0))
	f.Add(int64(9), int64(31), uint8(12), uint8(0))
	f.Add(int64(4), int64(17), uint8(9), uint8(2))
	f.Add(int64(27), int64(8), uint8(14), uint8(1))
	f.Fuzz(func(t *testing.T, genSeed, mutSeed int64, rounds, channels uint8) {
		cfg := tracegen.Default()
		cfg.Channels = int(channels) % 4
		tr := tracegen.FromSeedConfig(genSeed, cfg)
		rng := rand.New(rand.NewSource(mutSeed))
		for i := 0; i < 1+int(rounds)%16; i++ {
			tr = Mutate(rng, tr)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("mutated trace invalid: %v", err)
		}
		if d := Check(tr); d != nil {
			t.Fatalf("%v\n%s", d, Describe(d.Trace))
		}
	})
}
