package conformance

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"goldilocks/internal/event"
)

// This file manages the on-disk counterexample corpus. Counterexamples
// are stored in the checksummed stream format (event.WriteTraceStream):
// a header line plus one CRC-tagged record per action, so a corpus file
// is self-describing, appendably diffable, and corrupt records are
// detected on load rather than silently misreplayed. File names embed
// the CRC-32 of the serialized bytes — content-addressed, so re-finding
// the same minimized counterexample is idempotent and the corpus never
// accumulates duplicates.

// CorpusEntry is one loaded corpus trace.
type CorpusEntry struct {
	Name  string // file base name
	Path  string
	Trace *event.Trace
}

// EncodeTrace serializes tr in the stream format and returns the bytes
// and their CRC-32 (IEEE), which doubles as the corpus file identity.
func EncodeTrace(tr *event.Trace) ([]byte, uint32, error) {
	var buf bytes.Buffer
	if err := event.WriteTraceStream(&buf, tr); err != nil {
		return nil, 0, err
	}
	b := buf.Bytes()
	return b, crc32.ChecksumIEEE(b), nil
}

// WriteCounterexample writes tr into dir as ce-<crc32>.jsonl and
// returns the file path. Writing the same trace twice is a no-op with
// the same name. The directory is created if missing.
func WriteCounterexample(dir string, tr *event.Trace) (string, error) {
	b, sum, err := EncodeTrace(tr)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("ce-%08x.jsonl", sum))
	if _, err := os.Stat(path); err == nil {
		return path, nil // content-addressed: already present
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCorpus reads every .jsonl trace under dir (sorted by name, so
// replay order is stable). Corpus files must load losslessly: a record
// dropped by checksum salvage means the corpus itself is corrupt, which
// is an error here, not a salvage.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var out []CorpusEntry
	for _, path := range names {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		tr, dropped, err := event.ReadTraceAuto(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("corpus %s: %w", filepath.Base(path), err)
		}
		if dropped != 0 {
			return nil, fmt.Errorf("corpus %s: %d corrupt records dropped", filepath.Base(path), dropped)
		}
		out = append(out, CorpusEntry{Name: filepath.Base(path), Path: path, Trace: tr})
	}
	return out, nil
}

// ReportCounterexample renders a human-readable failure report: the
// divergence, the minimized trace, and the replay command.
func ReportCounterexample(d *Divergence, path string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", d)
	fmt.Fprintf(&b, "minimized trace (%d events):\n%s", d.Trace.Len(), Describe(d.Trace))
	if path != "" {
		fmt.Fprintf(&b, "saved: %s\nreplay: go run ./cmd/racefuzz -check %s\n", path, path)
	}
	return b.String()
}
