// Package conformance is the correctness wall of the detection
// pipeline: a differential and metamorphic test harness that every
// optimization PR must pass before it can claim to preserve the paper's
// Theorem 1 (soundness and completeness of the generalized Goldilocks
// algorithm).
//
// The harness executes one trace through a matrix of backends —
//
//   - the executable specification (core.SpecEngine, eager locksets),
//   - the optimized engine (core.Engine) with serial delivery,
//   - the optimized engine with concurrent event delivery (each trace
//     thread steps the engine from its own goroutine, serialized to the
//     same linearization by a ticket, so cross-goroutine publication
//     inside the engine is exercised under -race),
//   - the vector-clock detector (internal/hb), and
//   - the extended happens-before oracle as ground truth
//
// — and fails on any verdict divergence. The Eraser baseline also runs,
// but only as a may-overapproximate detector: it both false-alarms (on
// ownership transfer) and misses races (its exclusive state hides
// first-owner accesses), so the matrix checks it solely for determinism
// and crash-freedom.
//
// On top of the backend matrix sit metamorphic invariants: the same
// trace must yield identical verdicts with GC off and aggressively on,
// with 1 variable shard and the default 64, with every short-circuit
// disabled, and with telemetry attached (whose rule-fire counts must
// match the spec engine's exactly). A memory-budget-degraded engine may
// only suppress reports, never invent them: its race set must be a
// subset of the precise one.
//
// See docs/TESTING.md for the operational story (fuzzing, shrinking,
// the counterexample corpus).
package conformance

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/detectors/eraser"
	"goldilocks/internal/event"
	"goldilocks/internal/hb"
	"goldilocks/internal/obs"
)

// Divergence describes one conformance failure: which backend or
// invariant disagreed on which trace, and how.
type Divergence struct {
	// Backend names the disagreeing matrix entry ("engine",
	// "engine-concurrent", "variant:shards-1", "oracle-vs-spec", ...).
	Backend string
	// Detail is a human-readable got/want description.
	Detail string
	// Trace is the offending trace (for shrinking and corpus writing).
	Trace *event.Trace
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("conformance: %s diverged: %s", d.Backend, d.Detail)
}

// Result is the outcome of running one trace through the matrix. The
// coverage fields feed the fuzzer's guidance map and the rule-coverage
// report of cmd/racefuzz.
type Result struct {
	// Div is nil when every backend and invariant agreed.
	Div *Divergence
	// Racy reports the ground-truth verdict.
	Racy bool
	// Races is the number of races the spec engine reported over the
	// whole trace.
	Races int
	// Threads is the number of distinct threads in the trace.
	Threads int
	// RuleFires are the Figure 5 rule-fire counts (indexed
	// 1..obs.NumRules) of the spec engine on this trace.
	RuleFires [obs.NumRules + 1]uint64
}

// Variants returns the metamorphic engine configurations that must be
// verdict-equivalent to the spec engine on every trace. Each entry
// stresses a different representation choice; all of them preserve
// precision by design, so any divergence is a bug.
func Variants() map[string]core.Options {
	d := core.DefaultOptions()

	gcOff := d
	gcOff.GCThreshold = 0
	gcOff.PartialEager = false

	gcAggressive := d
	gcAggressive.GCThreshold = 8
	gcAggressive.GCTrimFraction = 0.5

	oneShard := d
	oneShard.VarShards = 1

	noSC := d
	noSC.SC1, noSC.SC2, noSC.SC3, noSC.XactSC = false, false, false, false
	noSC.Memoize, noSC.HBCache = false, false
	noSC.FastPath = false

	fastPathOff := d
	fastPathOff.FastPath = false

	return map[string]core.Options{
		"gc-off":        gcOff,
		"gc-aggressive": gcAggressive,
		"shards-1":      oneShard,
		"no-shortcircs": noSC,
		"fastpath-off":  fastPathOff,
	}
}

// FastPathParity is the epoch-fast-path differential: one trace, two
// engines differing only in Options.FastPath, compared on everything
// observable — verdicts including full provenance chains, the engine
// Stats (modulo the FastPathHits counter itself, the one number the
// fast path is allowed to change), and the Figure 5 rule-fire counts.
// The fast path is a derived view of lockset state, so any difference
// at all is a bug, not a tolerance.
func FastPathParity(tr *event.Trace) *Divergence {
	fail := func(format string, args ...any) *Divergence {
		return &Divergence{Backend: "fastpath-parity", Detail: fmt.Sprintf(format, args...), Trace: tr}
	}
	if err := tr.Validate(); err != nil {
		return fail("invalid trace: %v", err)
	}
	run := func(fastPath bool) ([]detect.Race, core.Stats, [obs.NumRules + 1]uint64) {
		opts := core.DefaultOptions()
		opts.FastPath = fastPath
		opts.Telemetry = obs.NewTelemetry()
		eng := core.NewEngine(opts)
		races := detect.RunTrace(eng, tr)
		return races, eng.Stats(), opts.Telemetry.RuleFires()
	}
	onRaces, onStats, onFires := run(true)
	offRaces, offStats, offFires := run(false)

	if got, want := raceKeys(onRaces), raceKeys(offRaces); !equalKeys(got, want) {
		return fail("verdicts with fast path %v, without %v", got, want)
	}
	// Verdict identity is stronger than key equality: the completing and
	// previous accesses and the whole provenance chain must match, since
	// escalation hands the variable to the same lockset machinery.
	for i := range onRaces {
		if !reflect.DeepEqual(onRaces[i], offRaces[i]) {
			return fail("race %d with fast path %+v (prov %v), without %+v (prov %v)",
				i, onRaces[i], onRaces[i].Prov, offRaces[i], offRaces[i].Prov)
		}
	}
	if offStats.FastPathHits != 0 {
		return fail("FastPathHits = %d with the fast path disabled", offStats.FastPathHits)
	}
	onStats.FastPathHits = 0
	if onStats != offStats {
		return fail("stats with fast path %+v, without %+v", onStats, offStats)
	}
	if onFires != offFires {
		return fail("rule fires with fast path %v, without %v", onFires, offFires)
	}
	return nil
}

// DegradedOptions returns an engine configuration whose memory governor
// is guaranteed to ratchet all the way down on any non-trivial trace.
// Degradation trades false negatives for bounded memory, so this
// variant is checked with the subset invariant, not equality.
func DegradedOptions() core.Options {
	d := core.DefaultOptions()
	d.GCThreshold = 0
	d.MemoryBudget = 8
	return d
}

// raceKey is the canonical identity of a reported race: the
// linearization position of the completing access plus the variable.
func raceKey(r detect.Race) string {
	return fmt.Sprintf("%d:%v", r.Pos, r.Var)
}

func raceKeys(races []detect.Race) []string {
	keys := make([]string, len(races))
	for i, r := range races {
		keys[i] = raceKey(r)
	}
	sort.Strings(keys)
	return keys
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subsetKeys reports whether every key of sub appears in super.
func subsetKeys(sub, super []string) bool {
	set := make(map[string]bool, len(super))
	for _, k := range super {
		set[k] = true
	}
	for _, k := range sub {
		if !set[k] {
			return false
		}
	}
	return true
}

// oracleFirst extracts the ground-truth first race: its linearization
// position and the set of variables racing there (a commit can complete
// races on several variables at once; a precise detector must report at
// that position on one of them, but which one is representation-
// dependent).
func oracleFirst(o *hb.Oracle) (pos int, vars map[string]bool, racy bool) {
	first, found := o.FirstRacePos()
	if !found {
		return 0, nil, false
	}
	vars = make(map[string]bool)
	for _, p := range o.Races() {
		if p.J == first.J {
			vars[p.Var.String()] = true
		}
	}
	return first.J, vars, true
}

// agreesWithOracle checks a detector's first report against the oracle.
func agreesWithOracle(r *detect.Race, pos int, vars map[string]bool, racy bool) bool {
	if !racy {
		return r == nil
	}
	return r != nil && r.Pos == pos && vars[r.Var.String()]
}

// firstOf returns the first reported race of a full run, or nil.
func firstOf(races []detect.Race) *detect.Race {
	if len(races) == 0 {
		return nil
	}
	return &races[0]
}

// RunConcurrent delivers tr to det with one goroutine per trace thread.
// A ticket serializes the Step calls to exactly the trace order — the
// linearization (and therefore the expected verdicts) is unchanged —
// but every action runs on its own thread's goroutine, so the engine's
// cross-goroutine publication (atomic tail snapshots, lock-record
// snapshots, sharded state handoff) is exercised for real; under
// `go test -race` a missing synchronization inside the detector is a
// test failure, not a latent heisenbug.
func RunConcurrent(det detect.Detector, tr *event.Trace) []detect.Race {
	byThread := make(map[event.Tid][]int)
	for i := 0; i < tr.Len(); i++ {
		t := tr.At(i).Thread
		byThread[t] = append(byThread[t], i)
	}

	var (
		mu   sync.Mutex
		cond = sync.NewCond(&mu)
		next int
		out  []detect.Race
		wg   sync.WaitGroup
	)
	for _, idxs := range byThread {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				mu.Lock()
				for next != i {
					cond.Wait()
				}
				mu.Unlock()
				// The turn is ours: everyone else is parked in Wait, so the
				// Step below runs exclusively — but on this goroutine, with
				// no lock of ours held.
				rs := det.Step(tr.At(i))
				mu.Lock()
				for _, r := range rs {
					r.Pos = i
					out = append(out, r)
				}
				next = i + 1
				cond.Broadcast()
				mu.Unlock()
			}
		}(idxs)
	}
	wg.Wait()
	return out
}

// Check runs tr through the full differential matrix and returns the
// first divergence found, or nil.
func Check(tr *event.Trace) *Divergence { r := Run(tr); return r.Div }

// Run executes the full matrix on tr and reports the outcome together
// with the coverage information the fuzzer feeds on.
func Run(tr *event.Trace) Result {
	res := Result{Threads: len(tr.Threads())}
	fail := func(backend, format string, args ...any) Result {
		res.Div = &Divergence{Backend: backend, Detail: fmt.Sprintf(format, args...), Trace: tr}
		return res
	}

	// The matrix only judges well-formed linearizations; an invalid
	// trace here means the generator or mutator is broken.
	if err := tr.Validate(); err != nil {
		return fail("trace-validity", "invalid trace: %v", err)
	}

	// Ground truth: the extended happens-before oracle.
	pos, vars, racy := oracleFirst(hb.NewOracle(tr))
	res.Racy = racy

	// Executable specification, with telemetry so the rule-fire counts
	// are captured for coverage guidance and for the telemetry-
	// equivalence invariant below.
	specTel := obs.NewTelemetry()
	spec := core.NewSpecEngine()
	spec.SetTelemetry(specTel)
	specRaces := detect.RunTrace(spec, tr)
	specKeys := raceKeys(specRaces)
	res.Races = len(specKeys)
	res.RuleFires = specTel.RuleFires()

	if !agreesWithOracle(firstOf(specRaces), pos, vars, racy) {
		return fail("oracle-vs-spec", "spec first race %v, oracle pos %d vars %v racy %v",
			firstOf(specRaces), pos, vars, racy)
	}

	// Optimized engine, serial delivery, default options.
	engRaces := detect.RunTrace(core.New(), tr)
	if got := raceKeys(engRaces); !equalKeys(got, specKeys) {
		return fail("engine", "races %v, spec %v", got, specKeys)
	}

	// Optimized engine, concurrent event delivery.
	if got := raceKeys(RunConcurrent(core.New(), tr)); !equalKeys(got, specKeys) {
		return fail("engine-concurrent", "races %v, spec %v", got, specKeys)
	}

	// Vector-clock detector: precise on the first race by construction.
	if r := detect.FirstRace(hb.NewDetector(), tr); !agreesWithOracle(r, pos, vars, racy) {
		return fail("vectorclock", "first race %v, oracle pos %d vars %v racy %v", r, pos, vars, racy)
	}

	// Metamorphic invariants: precision-preserving representation
	// changes must not move a single verdict.
	for name, opts := range Variants() {
		if got := raceKeys(detect.RunTrace(core.NewEngine(opts), tr)); !equalKeys(got, specKeys) {
			return fail("variant:"+name, "races %v, spec %v", got, specKeys)
		}
	}

	// Telemetry on/off: identical verdicts, and event-level rule fires
	// identical to the spec engine's (both count per linearization, not
	// per representation).
	telOpts := core.DefaultOptions()
	telOpts.Telemetry = obs.NewTelemetry()
	if got := raceKeys(detect.RunTrace(core.NewEngine(telOpts), tr)); !equalKeys(got, specKeys) {
		return fail("variant:telemetry", "races %v, spec %v", got, specKeys)
	}
	if engFires := telOpts.Telemetry.RuleFires(); engFires != res.RuleFires {
		return fail("variant:telemetry", "rule fires %v, spec %v", engFires, res.RuleFires)
	}

	// The epoch fast path must be observationally invisible: verdicts,
	// provenance, Stats, and rule fires all identical with it on and off.
	if d := FastPathParity(tr); d != nil {
		res.Div = d
		return res
	}

	// Degradation may only suppress reports, never invent them.
	if got := raceKeys(detect.RunTrace(core.NewEngine(DegradedOptions()), tr)); !subsetKeys(got, specKeys) {
		return fail("variant:degraded", "degraded races %v not a subset of spec %v", got, specKeys)
	}

	// Eraser is may-overapproximate AND may-underapproximate (its
	// exclusive state hides first-owner accesses), so verdicts do not
	// gate; determinism and crash-freedom do.
	er1 := raceKeys(detect.RunTrace(eraser.New(), tr))
	er2 := raceKeys(detect.RunTrace(eraser.New(), tr))
	if !equalKeys(er1, er2) {
		return fail("eraser", "non-deterministic: %v vs %v", er1, er2)
	}

	// RegionTrack: the composed serializability checker must be
	// race-verdict-identical to the spec, and its serializability
	// self-invariants (Kahn cross-check, determinism, checkpoint cut)
	// must hold.
	if d := checkRegionTrackRaces(tr, specKeys); d != nil {
		res.Div = d
		return res
	}
	if d := CheckSerializability(tr); d != nil {
		res.Div = d
		return res
	}

	return res
}

// Describe renders a trace as numbered one-action-per-line text, for
// counterexample reports.
func Describe(tr *event.Trace) string {
	var b strings.Builder
	for i := 0; i < tr.Len(); i++ {
		fmt.Fprintf(&b, "%3d  %v\n", i, tr.At(i))
	}
	return b.String()
}
