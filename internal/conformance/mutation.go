package conformance

import (
	"math/rand"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/tracegen"
)

// This file is the mutation-testing side of the harness: it validates
// the *fuzzer* rather than the detector. Dropping one Figure 5 lockset
// update rule from the optimized engine (core.Options.BrokenRule) must
// make the differential matrix fail, and the shrinker must minimize the
// failure to a handful of events — otherwise the conformance wall has a
// hole where that rule should be.
//
// Two rules are not mutable this way. Rule 1 (access) is the lockset
// install path itself, not an update-rule application; removing it
// removes the detector. Rule 8 (alloc) is unobservable on valid traces:
// Trace.Validate rejects alloc-after-access, and the generator always
// allocates fresh addresses, so an alloc never has a lockset to reset.

// MutantRules lists the Figure 5 rules whose single-rule removal the
// harness must detect: rules 2–7, 9, and the channel rules 10–12.
var MutantRules = []int{
	obs.RuleRelease,
	obs.RuleAcquire,
	obs.RuleVolatileWrite,
	obs.RuleVolatileRead,
	obs.RuleFork,
	obs.RuleJoin,
	obs.RuleCommit,
	obs.RuleChanSend,
	obs.RuleChanRecv,
	obs.RuleChanClose,
}

// MutantOptions returns the default engine configuration with rule
// disabled — an intentionally unsound detector.
func MutantOptions(rule int) core.Options {
	o := core.DefaultOptions()
	o.BrokenRule = rule
	return o
}

// MutantDiverges reports whether the rule-dropped engine disagrees with
// the spec engine on tr — i.e. whether tr witnesses the injected bug.
func MutantDiverges(rule int, tr *event.Trace) bool {
	specKeys := raceKeys(detect.RunTrace(core.NewSpecEngine(), tr))
	gotKeys := raceKeys(detect.RunTrace(core.NewEngine(MutantOptions(rule)), tr))
	return !equalKeys(gotKeys, specKeys)
}

// mutantGenConfig returns a generator configuration biased to exercise
// the given rule: small and dense, with the synchronization kinds that
// feed the rule (and their structural prerequisites) weighted up.
func mutantGenConfig(rule int) tracegen.Config {
	cfg := tracegen.Default()
	cfg.Steps = 40
	cfg.Objects = 2
	cfg.Fields = 1
	cfg.Locks = 1
	cfg.Volatiles = 1
	w := make([]float64, tracegen.NumSyncKindsChan)
	for i := range w {
		w[i] = 1
	}
	boost := func(kinds ...int) {
		for _, k := range kinds {
			w[k] = 6
		}
	}
	switch rule {
	case obs.RuleRelease, obs.RuleAcquire:
		boost(tracegen.SyncAcquire, tracegen.SyncRelease)
	case obs.RuleVolatileWrite, obs.RuleVolatileRead:
		boost(tracegen.SyncVWrite, tracegen.SyncVRead)
	case obs.RuleFork:
		boost(tracegen.SyncFork)
	case obs.RuleJoin:
		boost(tracegen.SyncFork, tracegen.SyncJoin)
	case obs.RuleCommit:
		cfg.TxnBias = 0.6
	case obs.RuleChanSend, obs.RuleChanRecv:
		// Witnessing a missing send/recv edge needs full rendezvous
		// chains: make, sends and the recvs that acquire them.
		cfg.Channels = 2
		boost(tracegen.SyncChanMake, tracegen.SyncChanSend, tracegen.SyncChanRecv)
	case obs.RuleChanClose:
		// The close broadcast is only observed through a drain recv.
		cfg.Channels = 2
		boost(tracegen.SyncChanMake, tracegen.SyncChanClose, tracegen.SyncChanRecv)
	}
	cfg.SyncWeights = w
	return cfg
}

// FindMutantCounterexample searches up to maxTraces generated traces
// for one witnessing the rule-dropped engine's unsoundness, and returns
// it minimized. ok is false when no witness was found within the
// budget — with the default budget that means the fuzzer cannot catch
// the mutation, which callers should treat as a conformance-harness
// bug.
func FindMutantCounterexample(rule int, seed int64, maxTraces int) (tr *event.Trace, ok bool) {
	rng := rand.New(rand.NewSource(seed))
	cfg := mutantGenConfig(rule)
	for i := 0; i < maxTraces; i++ {
		cand := tracegen.Generate(rng, cfg)
		if MutantDiverges(rule, cand) {
			min := Shrink(cand, func(t *event.Trace) bool { return MutantDiverges(rule, t) })
			return min, true
		}
	}
	return nil, false
}
