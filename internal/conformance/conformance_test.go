package conformance

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"goldilocks/internal/core"
	"goldilocks/internal/detect"
	"goldilocks/internal/event"
	"goldilocks/internal/obs"
	"goldilocks/internal/scenarios"
	"goldilocks/internal/tracegen"
)

// TestMatrixOnScenarios runs every Section 2 scenario through the full
// differential matrix.
func TestMatrixOnScenarios(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if d := Check(sc.Trace); d != nil {
				t.Fatalf("%v", d)
			}
		})
	}
}

// TestMatrixOnSeeds runs generated traces (default and a denser, more
// transactional configuration) through the matrix.
func TestMatrixOnSeeds(t *testing.T) {
	dense := tracegen.Default()
	dense.Steps, dense.TxnBias, dense.MaxThreads = 80, 0.4, 5
	for seed := int64(1); seed <= 30; seed++ {
		if d := Check(tracegen.FromSeed(seed)); d != nil {
			t.Fatalf("seed %d: %v\n%s", seed, d, Describe(d.Trace))
		}
		if d := Check(tracegen.FromSeedConfig(seed, dense)); d != nil {
			t.Fatalf("dense seed %d: %v\n%s", seed, d, Describe(d.Trace))
		}
	}
}

// TestConcurrentDeliveryMatchesSerial pins the concurrent-delivery
// harness directly (the matrix also covers it, but a direct comparison
// localizes failures): same races, same order-insensitive key set, for
// both engines.
func TestConcurrentDeliveryMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		tr := tracegen.FromSeed(seed)
		serial := raceKeys(detect.RunTrace(core.New(), tr))
		conc := raceKeys(RunConcurrent(core.New(), tr))
		if !equalKeys(serial, conc) {
			t.Fatalf("seed %d: concurrent %v, serial %v", seed, conc, serial)
		}
	}
}

// TestFuzzerCoversAllRules runs a deterministic fuzzing batch and
// requires it to be clean and to exercise every Figure 5 rule — the "no
// zero rows" acceptance criterion, at test-suite scale.
func TestFuzzerCoversAllRules(t *testing.T) {
	f := NewFuzzer(1, tracegen.Config{})
	if divs := f.Run(200); len(divs) != 0 {
		t.Fatalf("fuzzer found %d divergences, first: %v\n%s",
			len(divs), divs[0], Describe(divs[0].Trace))
	}
	for r := 1; r <= obs.NumRules; r++ {
		if f.RuleTraces[r] == 0 {
			t.Errorf("rule %d (%s): zero covering traces in batch", r, obs.RuleName(r))
		}
	}
	if f.CorpusSize() == 0 {
		t.Error("fuzzer retained no coverage-novel traces")
	}
	if f.Racy == 0 || f.Racy == f.Executed {
		t.Errorf("degenerate verdict mix: %d racy of %d", f.Racy, f.Executed)
	}
}

// TestMutationsCaughtAndShrunk is the mutation-testing acceptance
// criterion: for every droppable Figure 5 rule, disabling the rule must
// produce a divergence the fuzzer finds, and the shrinker must minimize
// the witness to at most 12 events (8 for the channel rules, whose
// rendezvous chains shrink tighter) that still witness the bug.
func TestMutationsCaughtAndShrunk(t *testing.T) {
	for _, rule := range MutantRules {
		rule := rule
		t.Run(obs.RuleName(rule), func(t *testing.T) {
			min, ok := FindMutantCounterexample(rule, 1, 500)
			if !ok {
				t.Fatalf("rule %d: no counterexample in 500 traces — the fuzzer cannot catch this mutation", rule)
			}
			if !MutantDiverges(rule, min) {
				t.Fatalf("rule %d: minimized trace no longer witnesses the bug:\n%s", rule, Describe(min))
			}
			limit := 12
			if rule >= obs.RuleChanSend {
				limit = 8
			}
			if min.Len() > limit {
				t.Errorf("rule %d: minimized counterexample has %d events (want <= %d):\n%s",
					rule, min.Len(), limit, Describe(min))
			}
		})
	}
}

// TestShrinkPreservesPredicate shrinks a known racy generated trace
// down to the race itself.
func TestShrinkPreservesPredicate(t *testing.T) {
	racy := func(tr *event.Trace) bool {
		return len(detect.RunTrace(core.NewSpecEngine(), tr)) > 0
	}
	found := false
	for seed := int64(1); seed <= 20; seed++ {
		tr := tracegen.FromSeed(seed)
		if !racy(tr) {
			continue
		}
		found = true
		min := Shrink(tr, racy)
		if !racy(min) {
			t.Fatalf("seed %d: shrunk trace lost the predicate", seed)
		}
		if min.Len() > 3 {
			// The minimal racy trace is two conflicting accesses (or one
			// access + one commit); allow one extra structural event.
			t.Errorf("seed %d: shrunk racy trace still has %d events:\n%s", seed, min.Len(), Describe(min))
		}
		if err := min.Validate(); err != nil {
			t.Fatalf("seed %d: shrunk trace invalid: %v", seed, err)
		}
	}
	if !found {
		t.Fatal("no racy seed among 1..20 — generator regressed")
	}
}

// TestMutateProducesValidTraces hammers the mutator: every returned
// trace must validate, and mutation must actually change something a
// reasonable fraction of the time.
func TestMutateProducesValidTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := tracegen.FromSeed(3)
	changed := 0
	for i := 0; i < 300; i++ {
		mut := Mutate(rng, tr)
		if err := mut.Validate(); err != nil {
			t.Fatalf("mutation %d invalid: %v", i, err)
		}
		if mut != tr {
			changed++
		}
		tr = mut
	}
	if changed < 150 {
		t.Errorf("only %d/300 mutations changed the trace", changed)
	}
}

// TestCorpusRoundTrip checks content-addressed counterexample writing
// and lossless corpus loading.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := tracegen.FromSeed(5)
	path, err := WriteCounterexample(dir, tr)
	if err != nil {
		t.Fatal(err)
	}
	again, err := WriteCounterexample(dir, tr)
	if err != nil || again != path {
		t.Fatalf("re-write not idempotent: %q vs %q (err %v)", again, path, err)
	}
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("corpus has %d entries, want 1", len(entries))
	}
	got, want := entries[0].Trace, tr
	if got.Len() != want.Len() {
		t.Fatalf("round trip length %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.At(i).String() != want.At(i).String() {
			t.Fatalf("action %d: %v != %v", i, got.At(i), want.At(i))
		}
	}
}

// TestLoadCorpusRejectsCorruption flips a byte in a corpus file and
// requires LoadCorpus to refuse it (corpus files must be lossless; the
// salvage path is for live capture only).
func TestLoadCorpusRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteCounterexample(dir, tracegen.FromSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Fatal("LoadCorpus accepted a corrupted corpus file")
	}
}

// TestSeedCorpusReplays replays every checked-in counterexample under
// testdata/ through the full matrix: once a bug is minimized and
// committed, the matrix must keep passing on it forever.
func TestSeedCorpusReplays(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("testdata"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no seed corpus under testdata/ — the checked-in counterexamples are missing")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if d := Check(e.Trace); d != nil {
				t.Fatalf("%v\n%s", d, Describe(e.Trace))
			}
		})
	}
}

// TestDegradedSubsetOnPressure double-checks the degraded invariant on
// a trace long enough to force the full ladder climb: the degraded
// engine's reports are a subset of the precise ones.
func TestDegradedSubsetOnPressure(t *testing.T) {
	cfg := tracegen.Default()
	cfg.Steps = 400
	for seed := int64(1); seed <= 5; seed++ {
		tr := tracegen.FromSeedConfig(seed, cfg)
		spec := raceKeys(detect.RunTrace(core.NewSpecEngine(), tr))
		deg := raceKeys(detect.RunTrace(core.NewEngine(DegradedOptions()), tr))
		if !subsetKeys(deg, spec) {
			t.Fatalf("seed %d: degraded %v not subset of %v", seed, deg, spec)
		}
	}
}
